# Determinism gate: the same workload must emit byte-identical tables no
# matter how many worker lanes the process is given. Runs a multi-cell
# scenario sweep and a single-cell simulation (all worker lanes on
# intra-epoch sharding) under CARBONEDGE_THREADS=1 and =4 and fails on any
# byte difference. Invoked by CTest (examples.cli_determinism_smoke) and by
# the CI determinism-gate step.
#
#   cmake -DCLI=<carbonedge_cli> -DOUT_DIR=<scratch> -P determinism_smoke.cmake
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<carbonedge_cli> -DOUT_DIR=<dir> -P determinism_smoke.cmake")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})

# (label, argument list) probes: a grid wider than the budget (cells share
# lanes) and a single big cell (one simulation leases every lane).
set(PROBE_sweep "sweep;florida;128")
# 40-site CDN region: big enough that the single cell passes the engine's
# scale gate and really dispatches its epoch sections onto the shard pool.
# --metrics= puts the obs registry under the gate too: the snapshot's
# deterministic view is compared separately below (the timing view is
# allowed — required, even — to differ).
set(PROBE_single "sweep;cdn_us;96;--single;--metrics=${OUT_DIR}/metrics-single-t@THREADS@.json")
# Streaming serving mode: event-driven replay with windowed telemetry and an
# EMA re-optimization trigger; --export=- puts the per-window CSV rows into
# the diffed output, so window aggregation is under the gate too, and
# --metrics-rows interleaves per-window deterministic-view snapshots into
# those diffed bytes.
set(PROBE_serve "serve;cdn_us;--replay;--epochs=96;--window-epochs=8;--ema-reopt=load:2500:2000;--export=-;--metrics-rows")

foreach(probe sweep single serve)
  foreach(threads 1 4)
    string(REPLACE "@THREADS@" "${threads}" args "${PROBE_${probe}}")
    execute_process(
      # -E env: the worker budget under test reaches the probe process only.
      COMMAND ${CMAKE_COMMAND} -E env CARBONEDGE_THREADS=${threads} ${CLI} ${args}
      OUTPUT_FILE ${OUT_DIR}/${probe}-t${threads}.txt
      RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
      message(FATAL_ERROR "determinism probe '${probe}' failed with CARBONEDGE_THREADS=${threads} (exit ${status})")
    endif()
  endforeach()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/${probe}-t1.txt ${OUT_DIR}/${probe}-t4.txt
    RESULT_VARIABLE identical)
  if(NOT identical EQUAL 0)
    message(FATAL_ERROR "determinism gate: probe '${probe}' differs between "
                        "CARBONEDGE_THREADS=1 and =4 — compare ${OUT_DIR}/${probe}-t1.txt "
                        "against ${OUT_DIR}/${probe}-t4.txt")
  endif()
  message(STATUS "determinism gate: probe '${probe}' byte-identical across thread counts")
endforeach()

# Compiled-catalog probes: build the checked-in sample dump into a scratch
# store (no network — tests/data/sites_sample.tsv ships with the repo), then
# run a spatial-index radius query and a banded-latency catalog sweep under
# both thread counts. The build output carries the content-addressed key, so
# diffing it also pins key stability across lane counts.
set(CATALOG_TSV ${CMAKE_CURRENT_LIST_DIR}/../tests/data/sites_sample.tsv)
set(CATALOG_STORE ${OUT_DIR}/catalog-store)
file(MAKE_DIRECTORY ${CATALOG_STORE})
foreach(threads 1 4)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env CARBONEDGE_THREADS=${threads}
            ${CLI} catalog --dir ${CATALOG_STORE} build ${CATALOG_TSV}
    OUTPUT_FILE ${OUT_DIR}/catalog-build-t${threads}.txt
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "determinism probe 'catalog build' failed with CARBONEDGE_THREADS=${threads} (exit ${status})")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${OUT_DIR}/catalog-build-t1.txt ${OUT_DIR}/catalog-build-t4.txt
  RESULT_VARIABLE identical)
if(NOT identical EQUAL 0)
  message(FATAL_ERROR "determinism gate: catalog build output differs between thread counts")
endif()
file(READ ${OUT_DIR}/catalog-build-t1.txt build_output)
string(REGEX MATCH "key ([0-9a-f]+)" _ "${build_output}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "determinism gate: could not parse catalog key from build output:\n${build_output}")
endif()
set(CATALOG_KEY ${CMAKE_MATCH_1})

# Radius query (spatial index, exact distances) and a 12-site banded sweep
# (sparse LatencyProvider through region construction, solver, and engine).
set(PROBE_catalog_radius "catalog;--dir;${CATALOG_STORE};radius;${CATALOG_KEY};52.0;5.0;400")
set(PROBE_catalog_sweep "catalog;--dir;${CATALOG_STORE};sweep;${CATALOG_KEY};24;--max-sites=12;--band=12")
foreach(probe catalog_radius catalog_sweep)
  foreach(threads 1 4)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E env CARBONEDGE_THREADS=${threads} ${CLI} ${PROBE_${probe}}
      OUTPUT_FILE ${OUT_DIR}/${probe}-t${threads}.txt
      RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
      message(FATAL_ERROR "determinism probe '${probe}' failed with CARBONEDGE_THREADS=${threads} (exit ${status})")
    endif()
  endforeach()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/${probe}-t1.txt ${OUT_DIR}/${probe}-t4.txt
    RESULT_VARIABLE identical)
  if(NOT identical EQUAL 0)
    message(FATAL_ERROR "determinism gate: probe '${probe}' differs between "
                        "CARBONEDGE_THREADS=1 and =4 — compare ${OUT_DIR}/${probe}-t1.txt "
                        "against ${OUT_DIR}/${probe}-t4.txt")
  endif()
  message(STATUS "determinism gate: probe '${probe}' byte-identical across thread counts")
endforeach()

# The metrics snapshot's deterministic view is under the same contract: the
# counts/bytes/invocations it reports must not depend on the worker budget.
# Extract the "deterministic" object from each JSON snapshot (the exporter
# emits name-ordered keys, so equal objects have equal text) and compare.
foreach(threads 1 4)
  file(READ ${OUT_DIR}/metrics-single-t${threads}.json snapshot)
  string(JSON det_${threads} GET "${snapshot}" deterministic)
endforeach()
if(NOT det_1 STREQUAL det_4)
  file(WRITE ${OUT_DIR}/metrics-det-t1.json "${det_1}")
  file(WRITE ${OUT_DIR}/metrics-det-t4.json "${det_4}")
  message(FATAL_ERROR "determinism gate: deterministic metrics view differs between "
                      "CARBONEDGE_THREADS=1 and =4 — compare ${OUT_DIR}/metrics-det-t1.json "
                      "against ${OUT_DIR}/metrics-det-t4.json")
endif()
message(STATUS "determinism gate: deterministic metrics view byte-identical across thread counts")
