# CTest driver for examples.cli_store_smoke: exercises the carbonedge_cli
# store subcommands end to end against a scratch store directory.
#
#   warm   (cold)  -> synthesizes the region's traces into the store
#   warm   (again) -> must load everything from disk ("0 traces synthesized")
#   verify         -> every entry checksums clean
#
# Invoked as: cmake -DCLI=<binary> -DSTORE_DIR=<dir> -P store_smoke.cmake
file(REMOVE_RECURSE "${STORE_DIR}")

foreach(attempt cold warm)
  execute_process(
    COMMAND "${CLI}" store --dir "${STORE_DIR}" warm florida
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "store warm (${attempt}) failed (${status}):\n${output}")
  endif()
  if(attempt STREQUAL "warm" AND NOT output MATCHES "0 traces synthesized")
    message(FATAL_ERROR "warm rerun re-synthesized traces:\n${output}")
  endif()
endforeach()

execute_process(
  COMMAND "${CLI}" store --dir "${STORE_DIR}" verify
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output
  RESULT_VARIABLE status)
if(NOT status EQUAL 0 OR NOT output MATCHES "0 corrupt")
  message(FATAL_ERROR "store verify failed (${status}):\n${output}")
endif()
