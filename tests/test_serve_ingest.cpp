// Ingest-layer robustness: malformed CSV lines are rejected with their
// 1-based line number (or skipped-and-counted), late events follow the
// out-of-order policy, a full bounded queue drops-and-counts without ever
// blocking the producer, and a stalled export sink degrades to bounded
// buffering and counted drops while window accounting stays intact.
#include "serve/event_loop.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "serve/event_source.hpp"
#include "serve/export.hpp"
#include "serve/ingest.hpp"

namespace carbonedge::serve {
namespace {

std::string csv_with(const std::string& data_lines) {
  return std::string(CsvEventSource::kCsvHeader) + "\n" + data_lines;
}

sim::Application test_app(double rps = 4.0) {
  sim::Application app;
  app.model = sim::ModelType::kEfficientNetB0;
  app.origin_site = 0;
  app.rps = rps;
  app.latency_limit_rtt_ms = 25.0;
  app.remaining_epochs = 4;
  app.state_size_mb = 200.0;
  return app;
}

// ------------------------------------------------------------ CSV source --

TEST(CsvEventSource, ParsesArrivalAndFailureLines) {
  std::istringstream in(csv_with("0.5,arrival,2,ResNet50,4.5,25,12,400,3,,\n"
                                 "5.0,failure,,,,,,,,1,7\n"));
  CsvEventSource source(in);

  const auto arrival = source.next();
  ASSERT_TRUE(arrival.has_value());
  EXPECT_EQ(arrival->type, EventType::kArrival);
  EXPECT_DOUBLE_EQ(arrival->time_hours, 0.5);
  EXPECT_EQ(arrival->app.model, sim::ModelType::kResNet50);
  EXPECT_EQ(arrival->app.origin_site, 2u);
  EXPECT_DOUBLE_EQ(arrival->app.rps, 4.5);
  EXPECT_DOUBLE_EQ(arrival->app.latency_limit_rtt_ms, 25.0);
  EXPECT_EQ(arrival->app.remaining_epochs, 12u);
  EXPECT_DOUBLE_EQ(arrival->app.state_size_mb, 400.0);
  EXPECT_EQ(arrival->app.max_defer_epochs, 3u);

  const auto failure = source.next();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->type, EventType::kFailure);
  EXPECT_EQ(failure->failure.site, 1u);
  EXPECT_EQ(failure->failure.server_id, 7u);

  EXPECT_FALSE(source.next().has_value());
  EXPECT_EQ(source.rejected_lines(), 0u);
}

TEST(CsvEventSource, RejectsMalformedLinesWithLineNumbers) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"not,enough,cells", "line 2"},
      {"abc,arrival,0,ResNet50,4,25,12,400,0,,", "line 2"},
      {"1.0,teleport,0,ResNet50,4,25,12,400,0,,", "line 2"},
      {"1.0,arrival,0,GPT9,4,25,12,400,0,,", "line 2"},
      {"1.0,arrival,0,ResNet50,-4,25,12,400,0,,", "line 2"},
      {"1.0,arrival,0,ResNet50,nan,25,12,400,0,,", "line 2"},
      {"1.0,failure,,,,,,,,-1,0", "line 2"},
  };
  for (const auto& [line, expected] : cases) {
    SCOPED_TRACE(line);
    std::istringstream in(csv_with(line + "\n"));
    CsvEventSource source(in);
    try {
      (void)source.next();
      FAIL() << "expected rejection";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(expected), std::string::npos)
          << error.what();
    }
  }
}

TEST(CsvEventSource, SecondBadLineReportsItsOwnNumber) {
  std::istringstream in(csv_with("0.5,arrival,0,ResNet50,4,25,12,400,0,,\n"
                                 "bogus\n"));
  CsvEventSource source(in);
  ASSERT_TRUE(source.next().has_value());
  try {
    (void)source.next();
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos) << error.what();
  }
}

TEST(CsvEventSource, MissingHeaderIsLineOne) {
  std::istringstream in("0.5,arrival,0,ResNet50,4,25,12,400,0,,\n");
  CsvEventSource source(in);
  try {
    (void)source.next();
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 1"), std::string::npos) << error.what();
  }
}

TEST(CsvEventSource, SkipPolicyCountsAndContinues) {
  std::istringstream in(csv_with("garbage\n"
                                 "0.5,arrival,0,ResNet50,4,25,12,400,0,,\n"
                                 "1.0,arrival,0,ResNet50,zzz,25,12,400,0,,\n"
                                 "2.0,failure,,,,,,,,0,0\n"));
  CsvEventSource source(in, CsvEventSource::ErrorPolicy::kSkip);
  const auto first = source.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, EventType::kArrival);
  const auto second = source.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, EventType::kFailure);
  EXPECT_FALSE(source.next().has_value());
  EXPECT_EQ(source.rejected_lines(), 2u);
  EXPECT_NE(source.last_error().find("line 4"), std::string::npos) << source.last_error();
}

// ---------------------------------------------------------- ingest queue --

TEST(IngestQueue, OverflowDropsAndCountsWithoutBlocking) {
  IngestQueue queue(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    const bool accepted = queue.push(make_arrival(static_cast<double>(i), test_app()));
    EXPECT_EQ(accepted, i < 4);
  }
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.stats().accepted, 4u);
  EXPECT_EQ(queue.stats().dropped_overflow, 6u);
}

TEST(IngestQueue, DropPolicyRejectsStaleEvents) {
  IngestQueue queue(/*capacity=*/16, OutOfOrderPolicy::kDrop);
  queue.set_watermark(5.0);
  EXPECT_FALSE(queue.push(make_arrival(4.9, test_app())));
  EXPECT_TRUE(queue.push(make_arrival(5.0, test_app())));
  EXPECT_EQ(queue.stats().dropped_stale, 1u);
  EXPECT_EQ(queue.stats().accepted, 1u);
}

TEST(IngestQueue, ClampPolicyPullsStaleEventsForward) {
  IngestQueue queue(/*capacity=*/16, OutOfOrderPolicy::kClamp);
  queue.set_watermark(5.0);
  EXPECT_TRUE(queue.push(make_arrival(3.0, test_app())));
  EXPECT_EQ(queue.stats().clamped_stale, 1u);
  const auto event = queue.pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_DOUBLE_EQ(event->time_hours, 5.0);  // clamped to the watermark
}

TEST(IngestQueue, ProducerNeverBlocksAgainstConcurrentConsumer) {
  // A producer pushing far past capacity must always run to completion;
  // accepted + dropped reconciles with the attempt count. (Under the TSan
  // CI job this also exercises the queue's locking.)
  constexpr std::uint64_t kEvents = 20000;
  IngestQueue queue(/*capacity=*/64);
  std::atomic<bool> done{false};
  std::uint64_t popped = 0;
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire) || queue.size() > 0) {
      if (queue.pop().has_value()) {
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    (void)queue.push(make_arrival(static_cast<double>(i), test_app()));
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  const IngestStats stats = queue.stats();
  EXPECT_EQ(stats.accepted + stats.dropped_overflow, kEvents);
  EXPECT_EQ(popped, stats.accepted);
}

// -------------------------------------------------------- export degrade --

/// A sink that can be stalled and recovered on demand.
class FlakySink final : public ByteSink {
 public:
  bool accepting = true;
  std::vector<std::string> lines;
  [[nodiscard]] bool write(std::string_view line) override {
    if (!accepting) return false;
    lines.emplace_back(line);
    return true;
  }
};

WindowStats window_numbered(std::uint32_t index) {
  WindowStats w;
  w.window = index;
  w.epochs = 1;
  return w;
}

TEST(WindowCsvExporter, StallBuffersInOrderThenDropsBeyondBound) {
  FlakySink sink;
  WindowCsvExporter exporter(sink, /*max_buffered=*/2);

  exporter.export_window(window_numbered(0));
  ASSERT_EQ(sink.lines.size(), 2u);  // header + row 0
  EXPECT_EQ(sink.lines[0], WindowCsvExporter::header_line());

  sink.accepting = false;
  exporter.export_window(window_numbered(1));
  exporter.export_window(window_numbered(2));
  exporter.export_window(window_numbered(3));  // beyond the buffer: dropped
  EXPECT_EQ(exporter.stats().lines_dropped, 1u);
  EXPECT_EQ(exporter.stats().currently_buffered, 2u);
  EXPECT_EQ(exporter.stats().buffered_peak, 2u);

  sink.accepting = true;
  exporter.export_window(window_numbered(4));
  // Recovery delivers the buffered rows first, in window order; row 3 is
  // the only loss.
  ASSERT_EQ(sink.lines.size(), 5u);
  EXPECT_EQ(sink.lines[2].substr(0, 2), "1,");
  EXPECT_EQ(sink.lines[3].substr(0, 2), "2,");
  EXPECT_EQ(sink.lines[4].substr(0, 2), "4,");
  EXPECT_EQ(exporter.stats().currently_buffered, 0u);
  EXPECT_EQ(exporter.stats().lines_written, 5u);
}

TEST(WindowCsvExporter, FlushRetriesAfterRecovery) {
  FlakySink sink;
  WindowCsvExporter exporter(sink, /*max_buffered=*/4);
  sink.accepting = false;
  exporter.export_window(window_numbered(0));
  EXPECT_EQ(exporter.stats().lines_written, 0u);
  sink.accepting = true;
  exporter.flush();
  EXPECT_EQ(exporter.stats().lines_written, 2u);  // header + row
  EXPECT_EQ(exporter.stats().currently_buffered, 0u);
}

TEST(EventLoop, StalledSinkLosesVisibilityNeverAccounting) {
  const geo::Region region = geo::florida_region();
  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);

  core::SimulationConfig config;
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = 16;
  config.workload.arrivals_per_site = 1.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.seed = 42;

  ServeConfig serve_config;
  serve_config.sim = config;
  serve_config.window_epochs = 2;

  // Baseline: same replay with no exporter at all.
  TraceReplaySource baseline_source(config.workload, simulation.pristine_cluster(),
                                    config.epochs, config.epoch_hours);
  EventLoop baseline_loop(simulation, serve_config);
  const ServeResult baseline = baseline_loop.run(baseline_source);

  // Stalled run: the sink refuses everything, the buffer holds one line.
  FlakySink sink;
  sink.accepting = false;
  WindowCsvExporter exporter(sink, /*max_buffered=*/1);
  TraceReplaySource source(config.workload, simulation.pristine_cluster(), config.epochs,
                           config.epoch_hours);
  EventLoop loop(simulation, serve_config);
  const ServeResult stalled = loop.run(source, &exporter);

  EXPECT_EQ(stalled.exports.lines_written, 0u);
  EXPECT_GT(stalled.exports.lines_dropped, 0u);
  EXPECT_EQ(stalled.exports.currently_buffered, 1u);

  // Window accounting is identical to the exporter-free run.
  ASSERT_EQ(stalled.windows.size(), baseline.windows.size());
  for (std::size_t i = 0; i < stalled.windows.size(); ++i) {
    EXPECT_EQ(stalled.windows[i].arrivals, baseline.windows[i].arrivals);
    EXPECT_EQ(stalled.windows[i].apps_placed, baseline.windows[i].apps_placed);
    EXPECT_EQ(stalled.windows[i].carbon_g, baseline.windows[i].carbon_g);
    EXPECT_EQ(stalled.windows[i].energy_wh, baseline.windows[i].energy_wh);
  }
  EXPECT_EQ(stalled.sim.apps_placed, baseline.sim.apps_placed);
  EXPECT_EQ(stalled.sim.telemetry.total_carbon_g(),
            baseline.sim.telemetry.total_carbon_g());
}

}  // namespace
}  // namespace carbonedge::serve
