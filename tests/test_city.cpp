#include "geo/city.hpp"

#include <gtest/gtest.h>

#include <set>

namespace carbonedge::geo {
namespace {

TEST(CityDatabase, ContainsAllPaperNamedCities) {
  const auto& db = CityDatabase::builtin();
  for (const char* name :
       {"Jacksonville", "Miami", "Tampa", "Orlando", "Tallahassee", "Las Vegas", "Kingman",
        "San Diego", "Phoenix", "Flagstaff", "Milan", "Rome", "Cagliari", "Palermo", "Arezzo",
        "Bern", "Munich", "Lyon", "Graz", "Toronto", "New York", "Warsaw", "Paris", "Oslo",
        "Vienna", "Zagreb", "Salt Lake City"}) {
    EXPECT_TRUE(db.find(name).has_value()) << name;
  }
}

TEST(CityDatabase, IdsAreDenseAndStable) {
  const auto& db = CityDatabase::builtin();
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.by_id(static_cast<CityId>(i)).id, i);
  }
}

TEST(CityDatabase, NamesAreUnique) {
  const auto& db = CityDatabase::builtin();
  std::set<std::string> names;
  for (const City& c : db.all()) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate city: " << c.name;
  }
}

TEST(CityDatabase, CoordinatesAreValid) {
  const auto& db = CityDatabase::builtin();
  for (const City& c : db.all()) {
    EXPECT_GE(c.location.lat_deg, -90.0);
    EXPECT_LE(c.location.lat_deg, 90.0);
    EXPECT_GE(c.location.lon_deg, -180.0);
    EXPECT_LE(c.location.lon_deg, 180.0);
    EXPECT_GT(c.population_k, 0.0) << c.name;
  }
}

TEST(CityDatabase, ContinentsMatchLongitudeSplit) {
  const auto& db = CityDatabase::builtin();
  for (const City& c : db.all()) {
    if (c.continent == Continent::kNorthAmerica) {
      EXPECT_LT(c.location.lon_deg, -50.0) << c.name;
    } else {
      EXPECT_GT(c.location.lon_deg, -15.0) << c.name;
    }
  }
}

TEST(CityDatabase, RequireThrowsOnUnknown) {
  const auto& db = CityDatabase::builtin();
  EXPECT_THROW((void)db.require("Atlantis"), std::out_of_range);
  EXPECT_NO_THROW((void)db.require("Miami"));
}

TEST(CityDatabase, ByIdOutOfRangeThrows) {
  const auto& db = CityDatabase::builtin();
  EXPECT_THROW((void)db.by_id(static_cast<CityId>(db.size())), std::out_of_range);
}

TEST(CityDatabase, ByContinentSortedByPopulation) {
  const auto& db = CityDatabase::builtin();
  const auto us = db.by_continent(Continent::kNorthAmerica);
  ASSERT_GT(us.size(), 10u);
  for (std::size_t i = 1; i < us.size(); ++i) {
    EXPECT_GE(db.by_id(us[i - 1]).population_k, db.by_id(us[i]).population_k);
  }
  // New York is the largest North American metro in the set.
  EXPECT_EQ(db.by_id(us.front()).name, "New York");
}

TEST(CityDatabase, CoverageIsCdnScale) {
  const auto& db = CityDatabase::builtin();
  const auto us = db.by_continent(Continent::kNorthAmerica);
  const auto eu = db.by_continent(Continent::kEurope);
  // The paper's latency dataset covers 64 US and 64 EU cities; our builtin
  // set provides the same order of coverage.
  EXPECT_GE(us.size(), 55u);
  EXPECT_GE(eu.size(), 55u);
}

TEST(CityDatabase, NearestFindsAnchor) {
  const auto& db = CityDatabase::builtin();
  const City& miami = db.require("Miami");
  EXPECT_EQ(db.nearest(miami.location), miami.id);
  // A point in the Everglades is still closest to Miami.
  EXPECT_EQ(db.nearest({25.9, -80.7}), miami.id);
}

}  // namespace
}  // namespace carbonedge::geo
