#include "util/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace carbonedge::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexUnbiasedOverSmallRange) {
  Rng rng(11);
  std::array<int, 5> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[rng.uniform_index(5)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, UniformIndexZeroIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_index(0), 0u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(19);
  for (const double mean : {0.5, 3.0, 80.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(23);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(29);
  const std::array<double, 3> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) {
    const std::size_t k = rng.weighted_index(weights.data(), weights.size());
    ASSERT_LT(k, weights.size());
    ++counts[k];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  Rng rng(31);
  const std::array<double, 3> weights = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights.data(), weights.size()), weights.size());
  EXPECT_EQ(rng.weighted_index(weights.data(), 0), 0u);
}

TEST(Hashing, Fnv1aDistinguishesStrings) {
  EXPECT_NE(fnv1a("Miami"), fnv1a("Tampa"));
  EXPECT_EQ(fnv1a("Miami"), fnv1a("Miami"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Hashing, Mix64IsDeterministicAndSpread) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

}  // namespace
}  // namespace carbonedge::util
