// Regression tests for the re-optimization and lifetime accounting bugs:
//
//  * Re-optimization evicts live applications into the placement batch; when
//    the solver rejected one (capacity taken by a competing batch member),
//    the app used to vanish and be miscounted as a rejection. It must be
//    restored and counted as a skipped migration instead.
//  * `--remaining_epochs == 0` underflowed for applications admitted with
//    remaining_epochs == 0, making them immortal.
//  * Applications still deferred when the horizon ran out were invisible in
//    every counter; they now flush into apps_expired_deferred.
//  * Monthly re-optimization must align with calendar months, not a fixed
//    31-day cadence.
#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "carbon/caltime.hpp"
#include "carbon/service.hpp"
#include "geo/region.hpp"
#include "sim/datacenter.hpp"

namespace carbonedge::core {
namespace {

carbon::CarbonIntensityService make_service(const geo::Region& region) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  return service;
}

TEST(ReoptSafety, RejectedMigrantsAreRestoredNotLost) {
  // A saturated month-long CDN slice with aggressive daily re-optimization:
  // arrivals regularly compete with evicted migrants for the same slots, so
  // the solver rejects some migrants. Each must be restored to its previous
  // server and counted as a skipped migration. With cost_aware == false the
  // cost filter can never skip, so on the unfixed engine migrations_skipped
  // was structurally zero and the rejected migrants simply vanished — this
  // test fails there.
  const geo::Region region = geo::cdn_region(geo::Continent::kEurope, 12);
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.policy = PolicyConfig::carbon_edge();
  config.epochs = 31 * 8;  // one month, 3h epochs
  config.epoch_hours = 3.0;
  config.workload.arrivals_per_site = 0.6;
  config.workload.mean_lifetime_epochs = 40.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.latency_limit_rtt_ms = 20.0;
  config.reoptimize_every = 8;  // daily
  ASSERT_FALSE(config.migration.cost_aware);
  const SimulationResult result = simulation.run(config);

  // The scenario genuinely exercises the rejection path...
  EXPECT_GT(result.migrations, 0u);
  EXPECT_GT(result.migrations_skipped, 0u);
  // ... and no migrant leaked into the retry queue past the horizon.
  EXPECT_EQ(result.apps_expired_deferred, 0u);
}

TEST(ReoptSafety, ReoptimizationNeverReducesLiveAppsWithoutDepartures) {
  // Immortal applications, no arrivals, no failures: with per-epoch
  // re-optimization chasing two alternating-intensity zones, the set of
  // live applications must stay constant for the whole run — any loss to a
  // rejected re-placement would show up as a shrinking hosted count.
  const geo::Region region = geo::florida_region();
  carbon::CarbonIntensityService service;
  const auto cities = region.resolve();
  for (std::size_t i = 0; i < cities.size(); ++i) {
    std::vector<double> values(carbon::kHoursPerYear, 600.0);
    if (i < 2) {
      for (carbon::HourIndex h = 0; h < values.size(); ++h) {
        const bool first_half = (h / 12) % 2 == 0;
        values[h] = (i == 0) == first_half ? 50.0 : 550.0;
      }
    }
    service.add_trace(carbon::CarbonTrace(cities[i].name, std::move(values)));
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 48;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 2;  // immortal
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 30.0;
  config.reoptimize_every = 1;
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.migrations, 0u);
  for (const sim::EpochRecord& record : result.telemetry.epochs()) {
    std::uint32_t hosted = 0;
    for (const auto& site : record.sites) hosted += site.apps_hosted;
    EXPECT_EQ(hosted, 10u) << "live apps lost at epoch " << record.epoch;
  }
}

TEST(ReoptSafety, CrashVictimsRetryInsteadOfBeingRejected) {
  // Immortal applications on a near-full cluster with crash injection: when
  // a server fails, its apps are re-batched; on the unfixed engine any the
  // solver could not immediately re-place were dropped and counted as
  // rejections (8 lost apps in this exact configuration). They must park
  // and retry until the repaired capacity returns, so no app is ever
  // rejected and all survive to the end of the run.
  const geo::Region region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.policy = PolicyConfig::carbon_edge();
  config.epochs = 80;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 6;  // immortal
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 30.0;
  config.failures.mtbf_epochs = 25.0;
  config.failures.repair_epochs = 6;
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.server_failures, 0u);
  EXPECT_GT(result.apps_redeployed, 0u);
  EXPECT_EQ(result.apps_rejected, 0u);  // crash victims retry, never vanish
  std::uint32_t hosted = 0;
  for (const auto& site : result.telemetry.epochs().back().sites) hosted += site.apps_hosted;
  EXPECT_EQ(hosted, 30u);  // every immortal app survived the crash storm
}

TEST(ReoptSafety, ParkedLiveAppsAccrueDowntimeEpochs) {
  // Same crash storm on a near-full cluster: surviving displaced apps that
  // find no server park in the retry queue for the epoch. That epoch is
  // real downtime for a live application — previously invisible (the
  // ROADMAP's known modeling gap), now counted per parked epoch.
  const geo::Region region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.policy = PolicyConfig::carbon_edge();
  config.epochs = 80;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 6;  // immortal, cluster near-full
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 30.0;
  config.failures.mtbf_epochs = 25.0;
  config.failures.repair_epochs = 6;
  const SimulationResult result = simulation.run(config);
  // The saturated cluster cannot instantly re-host every crash victim, so
  // some app waits out at least one epoch — and each wait is accounted.
  EXPECT_GT(result.server_failures, 0u);
  EXPECT_GT(result.app_downtime_epochs, 0u);
  // Downtime is bounded by the queue residency implied by the run: a parked
  // app re-enters the batch every epoch, so the counter can never exceed
  // epochs * live apps.
  EXPECT_LE(result.app_downtime_epochs,
            static_cast<std::uint64_t>(config.epochs) * 30u);
}

TEST(ReoptSafety, ZeroLifetimeAppsDepartInsteadOfBecomingImmortal)  {
  // remaining_epochs == 0 used to underflow to ~4B on the first departure
  // sweep, keeping the app hosted for the rest of the run.
  const geo::Region region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 6;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.initial_lifetime_epochs = 0;  // admitted already expired
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 25.0;
  const SimulationResult result = simulation.run(config);
  ASSERT_EQ(result.apps_placed, 5u);
  // Hosted for at most their admission epoch, gone from epoch 1 onward.
  for (const sim::EpochRecord& record : result.telemetry.epochs()) {
    if (record.epoch == 0) continue;
    std::uint32_t hosted = 0;
    for (const auto& site : record.sites) hosted += site.apps_hosted;
    EXPECT_EQ(hosted, 0u) << "zero-lifetime app immortal at epoch " << record.epoch;
  }
}

TEST(ReoptSafety, ExpiredDeferredAppsAreCounted) {
  // Monotonically decreasing intensity: "wait awhile" never sees the current
  // hour beat the forecast, so deferred applications wait out any budget
  // longer than the horizon and used to end the run uncounted.
  const geo::Region region = geo::florida_region();
  carbon::CarbonIntensityService service;
  for (const geo::City& city : region.resolve()) {
    std::vector<double> values(carbon::kHoursPerYear);
    for (carbon::HourIndex h = 0; h < values.size(); ++h) {
      // Steep enough that "now" never beats the forecast window minimum
      // within the release heuristic's 2% tolerance.
      values[h] = std::max(1.0, 1000.0 - static_cast<double>(h) * 10.0);
    }
    service.add_trace(carbon::CarbonTrace(city.name, std::move(values)));
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 4;
  config.workload.arrivals_per_site = 1.0;
  config.workload.max_defer_epochs = 50;  // far beyond the horizon
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 25.0;
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.apps_deferred, 0u);
  EXPECT_EQ(result.apps_expired_deferred, result.apps_deferred);
  EXPECT_EQ(result.apps_placed, 0u);
  EXPECT_EQ(result.apps_rejected, 0u);
}

TEST(ReoptSafety, MonthlyReoptimizationAlignsWithCalendarMonths) {
  // reoptimize_monthly must fire exactly at the epochs whose hour crosses a
  // carbon::month_start_hour boundary (the old 31*8-epoch cadence drifted
  // off-calendar from February onward). Alternating-intensity zones make a
  // migration happen at every re-optimization opportunity, so the epochs
  // with migrations identify the cadence.
  const geo::Region region = geo::florida_region();
  carbon::CarbonIntensityService service;
  const auto cities = region.resolve();
  for (std::size_t i = 0; i < cities.size(); ++i) {
    std::vector<double> values(carbon::kHoursPerYear, 600.0);
    if (i < 2) {
      for (carbon::HourIndex h = 0; h < values.size(); ++h) {
        // Which of the two zones is green flips every month.
        const bool even_month = carbon::month_of_hour(h) % 2 == 0;
        values[h] = (i == 0) == even_month ? 50.0 : 550.0;
      }
    }
    service.add_trace(carbon::CarbonTrace(cities[i].name, std::move(values)));
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = carbon::month_start_hour(4) / 3;  // Jan-Apr, 3h epochs
  config.epoch_hours = 3.0;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;  // immortal
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 30.0;
  config.reoptimize_monthly = true;
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.migrations, 0u);

  std::set<std::uint32_t> month_start_epochs;
  for (std::uint32_t m = 1; m < carbon::kMonthsPerYear; ++m) {
    month_start_epochs.insert(carbon::month_start_hour(m) / 3);
  }
  for (const sim::EpochRecord& record : result.telemetry.epochs()) {
    if (record.migrations > 0) {
      EXPECT_TRUE(month_start_epochs.contains(record.epoch))
          << "migration at off-calendar epoch " << record.epoch;
    }
  }
}

}  // namespace
}  // namespace carbonedge::core
