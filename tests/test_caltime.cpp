#include "carbon/caltime.hpp"

#include <gtest/gtest.h>

namespace carbonedge::carbon {
namespace {

TEST(CalTime, Constants) {
  EXPECT_EQ(kHoursPerYear, 8760u);
  EXPECT_EQ(kDaysPerYear, 365u);
}

TEST(CalTime, HourOfDayWraps) {
  EXPECT_EQ(hour_of_day(0), 0u);
  EXPECT_EQ(hour_of_day(23), 23u);
  EXPECT_EQ(hour_of_day(24), 0u);
  EXPECT_EQ(hour_of_day(kHoursPerYear + 5), 5u);
}

TEST(CalTime, DayOfYearWraps) {
  EXPECT_EQ(day_of_year(0), 0u);
  EXPECT_EQ(day_of_year(23), 0u);
  EXPECT_EQ(day_of_year(24), 1u);
  EXPECT_EQ(day_of_year(kHoursPerYear), 0u);
}

TEST(CalTime, MonthLengthsSumToYear) {
  std::uint32_t total = 0;
  for (std::uint32_t m = 0; m < kMonthsPerYear; ++m) total += days_in_month(m);
  EXPECT_EQ(total, kDaysPerYear);
}

TEST(CalTime, MonthOfDayBoundaries) {
  EXPECT_EQ(month_of_day(0), 0u);     // Jan 1
  EXPECT_EQ(month_of_day(30), 0u);    // Jan 31
  EXPECT_EQ(month_of_day(31), 1u);    // Feb 1
  EXPECT_EQ(month_of_day(58), 1u);    // Feb 28
  EXPECT_EQ(month_of_day(59), 2u);    // Mar 1
  EXPECT_EQ(month_of_day(364), 11u);  // Dec 31
}

TEST(CalTime, MonthStartHourConsistent) {
  EXPECT_EQ(month_start_hour(0), 0u);
  EXPECT_EQ(month_start_hour(1), 31u * 24u);
  // Start of month m+1 equals start of m plus its span.
  for (std::uint32_t m = 0; m + 1 < kMonthsPerYear; ++m) {
    EXPECT_EQ(month_start_hour(m + 1), month_start_hour(m) + days_in_month(m) * kHoursPerDay);
  }
}

TEST(CalTime, MonthOfHourAgreesWithStartHours) {
  for (std::uint32_t m = 0; m < kMonthsPerYear; ++m) {
    EXPECT_EQ(month_of_hour(month_start_hour(m)), m);
    const HourIndex last = month_start_hour(m) + days_in_month(m) * kHoursPerDay - 1;
    EXPECT_EQ(month_of_hour(last), m);
  }
}

TEST(CalTime, MonthNames) {
  EXPECT_EQ(month_name(0), "Jan");
  EXPECT_EQ(month_name(11), "Dec");
  EXPECT_EQ(month_name(12), "Jan");  // wraps
}

}  // namespace
}  // namespace carbonedge::carbon
