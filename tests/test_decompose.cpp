#include "solver/decompose.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace carbonedge::solver {
namespace {

// K independent blocks glued into one problem: block-diagonal feasibility,
// two resources, one cold spare per block so activation decisions are in
// play. Mirrors a latency-filtered multi-metro batch.
AssignmentProblem block_instance(std::size_t blocks, std::size_t apps_per,
                                 std::size_t servers_per, std::uint64_t seed,
                                 double infeasible_p = 0.1) {
  util::Rng rng(seed);
  AssignmentProblem p(blocks * apps_per, blocks * servers_per, 2);
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t j = 0; j < servers_per; ++j) {
      p.set_capacity(b * servers_per + j, 0, rng.uniform(2.0, 6.0));
      p.set_capacity(b * servers_per + j, 1, rng.uniform(2.0, 6.0));
    }
    p.set_initially_on(b * servers_per + servers_per - 1, false);
    p.set_activation_cost(b * servers_per + servers_per - 1, rng.uniform(1.0, 6.0));
    for (std::size_t i = 0; i < apps_per; ++i) {
      for (std::size_t j = 0; j < servers_per; ++j) {
        if (rng.bernoulli(infeasible_p)) continue;
        const std::size_t row = b * apps_per + i;
        const std::size_t col = b * servers_per + j;
        p.set_cost(row, col, rng.uniform(0.5, 10.0));
        p.set_demand(row, col, 0, rng.uniform(0.2, 1.2));
        p.set_demand(row, col, 1, rng.uniform(0.2, 1.2));
      }
    }
  }
  return p;
}

TEST(ConnectedComponents, SplitsBlockDiagonalInstances) {
  const AssignmentProblem p = block_instance(3, 2, 2, 42, /*infeasible_p=*/0.0);
  const std::vector<Component> components = connected_components(p);
  ASSERT_EQ(components.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(components[b].apps, (std::vector<std::size_t>{2 * b, 2 * b + 1}));
    EXPECT_EQ(components[b].servers, (std::vector<std::size_t>{2 * b, 2 * b + 1}));
  }
}

TEST(ConnectedComponents, UnplaceableAppIsAnAppOnlySingleton) {
  AssignmentProblem p(3, 2, 1);
  p.set_cost(0, 0, 1.0);
  p.set_cost(2, 1, 1.0);  // app 1 has no feasible server
  const std::vector<Component> components = connected_components(p);
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[1].apps, (std::vector<std::size_t>{1}));
  EXPECT_TRUE(components[1].servers.empty());
}

TEST(ConnectedComponents, ServerWithoutFeasiblePairsJoinsNoComponent) {
  AssignmentProblem p(2, 3, 1);
  p.set_cost(0, 0, 1.0);
  p.set_cost(1, 2, 1.0);  // server 1 never appears
  const std::vector<Component> components = connected_components(p);
  ASSERT_EQ(components.size(), 2u);
  for (const Component& component : components) {
    for (const std::size_t j : component.servers) EXPECT_NE(j, 1u);
  }
}

TEST(ConnectedComponents, BridgingAppMergesBlocks) {
  AssignmentProblem p = block_instance(2, 2, 2, 7, /*infeasible_p=*/0.0);
  ASSERT_EQ(connected_components(p).size(), 2u);
  p.set_cost(0, 3, 5.0);  // app 0 can now reach block 2's server
  p.set_demand(0, 3, 0, 0.5);
  p.set_demand(0, 3, 1, 0.5);
  EXPECT_EQ(connected_components(p).size(), 1u);
}

TEST(ExtractComponent, PreservesCostsDemandsCapacitiesAndPowerState) {
  const AssignmentProblem p = block_instance(2, 3, 2, 11);
  const std::vector<Component> components = connected_components(p);
  for (const Component& component : components) {
    const AssignmentProblem sub = extract_component(p, component);
    ASSERT_EQ(sub.num_apps(), component.apps.size());
    ASSERT_EQ(sub.num_servers(), component.servers.size());
    ASSERT_EQ(sub.num_resources(), p.num_resources());
    for (std::size_t ii = 0; ii < component.apps.size(); ++ii) {
      for (std::size_t jj = 0; jj < component.servers.size(); ++jj) {
        const std::size_t i = component.apps[ii];
        const std::size_t j = component.servers[jj];
        EXPECT_EQ(sub.cost(ii, jj), p.cost(i, j));
        for (std::size_t k = 0; k < p.num_resources(); ++k) {
          EXPECT_EQ(sub.demand(ii, jj, k), p.demand(i, j, k));
        }
      }
    }
    for (std::size_t jj = 0; jj < component.servers.size(); ++jj) {
      const std::size_t j = component.servers[jj];
      for (std::size_t k = 0; k < p.num_resources(); ++k) {
        EXPECT_EQ(sub.capacity(jj, k), p.capacity(j, k));
      }
      EXPECT_EQ(sub.activation_cost(jj), p.activation_cost(j));
      EXPECT_EQ(sub.initially_on(jj), p.initially_on(j));
    }
  }
}

// Differential property: the stitched sharded solve must reproduce the
// monolithic exact optimum on multi-component instances (the decomposition
// is exact — nothing couples components).
class ShardedVsMonolithic : public ::testing::TestWithParam<int> {};

TEST_P(ShardedVsMonolithic, StitchedCostEqualsMonolithicExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::size_t blocks = 2 + seed % 3;
  const AssignmentProblem p = block_instance(blocks, 3, 2, seed * 6151 + 13);

  const AssignmentSolution mono = solve_exact(p);
  AssignmentOptions options;
  options.exact_size_limit = 64;  // every component is testbed scale
  const AssignmentSolution sharded = solve_sharded(p, options);

  // Random infeasible pairs can split a block further (or strand an app),
  // so the block count is a lower bound; every solved shard must have gone
  // through the MILP at this size limit.
  EXPECT_GE(sharded.stats.components, blocks) << "seed " << seed;
  ASSERT_EQ(mono.feasible, sharded.feasible) << "seed " << seed;
  if (!mono.feasible) return;
  EXPECT_TRUE(validate(p, sharded)) << "seed " << seed;
  EXPECT_NEAR(mono.total_cost, sharded.total_cost, 1e-6) << "seed " << seed;
  // A fully placed sharded answer means every component went through the
  // MILP at this size limit (no unplaceable singletons, no fallbacks).
  EXPECT_EQ(sharded.stats.exact_shards, sharded.stats.components) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardedVsMonolithic, ::testing::Range(0, 30));

// Sharded solve_auto must match the unsharded solve_auto cost exactly when
// both stay on exact paths, and never do worse when the monolith would have
// been heuristic.
class ShardedVsUnsharded : public ::testing::TestWithParam<int> {};

TEST_P(ShardedVsUnsharded, AutoCostNeverWorseThanMonolithicAuto) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const AssignmentProblem p = block_instance(2 + seed % 4, 3, 2, seed * 2953 + 5);

  AssignmentOptions sharded_options;  // defaults: shard = true
  AssignmentOptions mono_options;
  mono_options.shard = false;
  const AssignmentSolution sharded = solve_auto(p, sharded_options);
  const AssignmentSolution mono = solve_auto(p, mono_options);

  // Sharding never loses a placement the monolith found (each component is
  // testbed scale here, so every shard solves exactly); the reverse can
  // happen — the monolithic heuristic may strand a placeable app.
  if (mono.feasible) {
    ASSERT_TRUE(sharded.feasible) << "seed " << seed;
  }
  if (!sharded.feasible) return;
  EXPECT_TRUE(validate(p, sharded)) << "seed " << seed;
  // The sharded answer solves every component exactly, so it can only match
  // or beat whatever path the monolithic auto picked.
  if (mono.feasible) {
    EXPECT_LE(sharded.total_cost, mono.total_cost + 1e-6) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardedVsUnsharded, ::testing::Range(0, 30));

TEST(SolveSharded, BitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const AssignmentProblem p = block_instance(5, 3, 2, seed);
    AssignmentOptions one;
    one.shard_threads = 1;
    AssignmentOptions many;
    many.shard_threads = 4;
    const AssignmentSolution serial = solve_sharded(p, one);
    const AssignmentSolution parallel = solve_sharded(p, many);
    // Bit-identical, not approximately equal: disjoint slots mean the
    // schedule cannot perturb the arithmetic.
    EXPECT_EQ(serial.assignment, parallel.assignment) << "seed " << seed;
    EXPECT_EQ(serial.total_cost, parallel.total_cost) << "seed " << seed;
    EXPECT_EQ(serial.stats.components, parallel.stats.components) << "seed " << seed;
    EXPECT_EQ(serial.stats.milp_nodes, parallel.stats.milp_nodes) << "seed " << seed;
  }
}

TEST(SolveSharded, UnplaceableAppsAreIsolatedNotContagious) {
  // One app with no feasible server must not drag the rest of the batch
  // off the exact path: the other components still solve and stitch.
  AssignmentProblem p = block_instance(2, 2, 2, 21, /*infeasible_p=*/0.0);
  for (std::size_t j = 0; j < p.num_servers(); ++j) p.set_cost(2, j, kInfinity);
  AssignmentOptions options;
  const AssignmentSolution sharded = solve_sharded(p, options);
  EXPECT_FALSE(sharded.feasible);  // the batch as a whole is not fully placed
  EXPECT_EQ(sharded.unassigned_count, 1u);
  EXPECT_EQ(sharded.assignment[2], kUnassigned);
  EXPECT_EQ(sharded.stats.unplaceable_apps, 1u);
  // Every other app landed.
  for (const std::size_t i : {0u, 1u, 3u}) EXPECT_NE(sharded.assignment[i], kUnassigned);
}

TEST(SolveAuto, ShardingKeepsLargeMultiComponentBatchesExact) {
  // 6 blocks x (3x2) = 18x12 = 216 pairs: far beyond exact_size_limit as a
  // monolith, yet every component is 6 pairs. The sharded auto must agree
  // with the (limit-free) monolithic exact optimum.
  const AssignmentProblem p = block_instance(6, 3, 2, 1234);
  AssignmentOptions options;  // exact_size_limit = 64, shard = true
  const AssignmentSolution sharded = solve_auto(p, options);
  const AssignmentSolution exact = solve_exact(p);
  ASSERT_TRUE(exact.feasible);
  ASSERT_TRUE(sharded.feasible);
  EXPECT_NEAR(sharded.total_cost, exact.total_cost, 1e-6);
  EXPECT_EQ(sharded.stats.components, 6u);
  EXPECT_EQ(sharded.stats.exact_shards, 6u);
  EXPECT_EQ(sharded.stats.heuristic_shards, 0u);
}

TEST(SolveAuto, UnitSlotInstancesStayMonolithic) {
  // Block-diagonal unit-slot instance: flow is already exact, so solve_auto
  // keeps the monolithic flow path (flow_shards == 1, single component).
  AssignmentProblem p(4, 4, 1);
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        p.set_cost(2 * b + i, 2 * b + j, static_cast<double>(i + j + 1));
        p.set_demand(2 * b + i, 2 * b + j, 0, 1.0);
      }
    }
    p.set_capacity(2 * b, 0, 1.0);
    p.set_capacity(2 * b + 1, 0, 1.0);
  }
  ASSERT_TRUE(p.is_unit_slot());
  const AssignmentSolution sol = solve_auto(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.stats.components, 1u);
  EXPECT_EQ(sol.stats.flow_shards, 1u);
}

TEST(SolveSharded, SingleComponentSpanningProblemSkipsExtraction) {
  // Fully connected instance: one component covering everything routes
  // straight through solve_unsharded (stats come back monolithic).
  AssignmentProblem p(2, 2, 1);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      p.set_cost(i, j, static_cast<double>(i + j + 1));
      p.set_demand(i, j, 0, 1.0);
    }
    p.set_capacity(i, 0, 2.0);
  }
  const AssignmentSolution sol = solve_sharded(p, {});
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.stats.components, 1u);
}

}  // namespace
}  // namespace carbonedge::solver
