#include "carbon/synthesizer.hpp"

#include <gtest/gtest.h>

#include "geo/region.hpp"

namespace carbonedge::carbon {
namespace {

const ZoneCatalog& catalog() { return ZoneCatalog::builtin(); }
const geo::CityDatabase& db() { return geo::CityDatabase::builtin(); }

ZoneSpec spec(const char* city) { return catalog().spec_for(db().require(city)); }

TEST(ClearSky, ZeroAtNight) {
  EXPECT_DOUBLE_EQ(TraceSynthesizer::clear_sky(40.0, 0, 180), 0.0);
  EXPECT_DOUBLE_EQ(TraceSynthesizer::clear_sky(40.0, 23, 180), 0.0);
}

TEST(ClearSky, PeaksAtNoon) {
  const double noon = TraceSynthesizer::clear_sky(40.0, 12, 172);  // summer solstice
  const double morning = TraceSynthesizer::clear_sky(40.0, 8, 172);
  EXPECT_GT(noon, morning);
  EXPECT_GT(noon, 0.8);
  EXPECT_LE(noon, 1.0);
}

TEST(ClearSky, SummerStrongerThanWinterAtMidLatitudes) {
  const double summer = TraceSynthesizer::clear_sky(47.0, 12, 172);
  const double winter = TraceSynthesizer::clear_sky(47.0, 12, 355);
  EXPECT_GT(summer, winter);
}

TEST(ClearSky, PolarNightGivesZero) {
  // Latitude 75N around the December solstice: sun never rises.
  for (std::uint32_t h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(TraceSynthesizer::clear_sky(75.0, h, 355), 0.0);
  }
}

TEST(DemandShape, WithinConfiguredBand) {
  const ZoneSpec zone = spec("Miami");
  for (std::uint32_t d = 0; d < 365; d += 30) {
    for (std::uint32_t h = 0; h < 24; ++h) {
      const double demand = TraceSynthesizer::demand_shape(zone, h, d);
      EXPECT_GT(demand, zone.demand_base * 0.8);
      EXPECT_LT(demand, zone.demand_peak * 1.2);
    }
  }
}

TEST(DemandShape, EveningPeakExceedsNightTrough) {
  const ZoneSpec zone = spec("Munich");
  EXPECT_GT(TraceSynthesizer::demand_shape(zone, 19, 100),
            TraceSynthesizer::demand_shape(zone, 4, 100));
}

TEST(Synthesizer, ProducesFullYearNonNegative) {
  const TraceSynthesizer synth;
  const CarbonTrace trace = synth.synthesize(spec("Orlando"));
  ASSERT_EQ(trace.hours(), kHoursPerYear);
  for (const double v : trace.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1000.0);
  }
  EXPECT_EQ(trace.mixes().size(), kHoursPerYear);
}

TEST(Synthesizer, DeterministicPerZoneAndSeed) {
  const TraceSynthesizer synth;
  const CarbonTrace a = synth.synthesize(spec("Graz"));
  const CarbonTrace b = synth.synthesize(spec("Graz"));
  ASSERT_EQ(a.hours(), b.hours());
  for (std::size_t h = 0; h < a.hours(); h += 97) EXPECT_DOUBLE_EQ(a.at(h), b.at(h));
}

TEST(Synthesizer, IndependentOfGenerationOrder) {
  const TraceSynthesizer synth;
  const auto batch = synth.synthesize(std::vector<ZoneSpec>{spec("Bern"), spec("Munich")});
  const CarbonTrace solo = synth.synthesize(spec("Munich"));
  EXPECT_DOUBLE_EQ(batch[1].at(1234), solo.at(1234));
}

TEST(Synthesizer, SeedChangesTrace) {
  SynthesizerParams params;
  params.seed = 1;
  const CarbonTrace a = TraceSynthesizer(params).synthesize(spec("Rome"));
  params.seed = 2;
  const CarbonTrace b = TraceSynthesizer(params).synthesize(spec("Rome"));
  bool any_diff = false;
  for (std::size_t h = 0; h < a.hours(); h += 13) any_diff |= a.at(h) != b.at(h);
  EXPECT_TRUE(any_diff);
}

TEST(Synthesizer, WestUsYearlySpreadMatchesFigure3a) {
  // Paper: ~2.7x between Kingman (max) and San Diego (min).
  const TraceSynthesizer synth;
  const double kingman = synth.synthesize(spec("Kingman")).yearly_mean();
  const double san_diego = synth.synthesize(spec("San Diego")).yearly_mean();
  const double ratio = kingman / san_diego;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 3.8);
}

TEST(Synthesizer, CentralEuYearlySpreadMatchesFigure3b) {
  // Paper: ~10.8x between Munich and the hydro/nuclear zones.
  const TraceSynthesizer synth;
  double lo = 1e18;
  double hi = 0.0;
  for (const geo::City& city : geo::central_eu_region().resolve()) {
    const double mean = synth.synthesize(catalog().spec_for(city)).yearly_mean();
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
  }
  EXPECT_GT(hi / lo, 6.0);
  EXPECT_LT(hi / lo, 20.0);
}

TEST(Synthesizer, SolarZoneHasMiddayDip) {
  // Kingman has 22% solar over coal: its average day shape must dip around
  // noon relative to midnight (Figure 4a's diurnal swing).
  const TraceSynthesizer synth;
  const CarbonTrace trace = synth.synthesize(spec("Kingman"));
  std::array<double, 24> by_hour{};
  for (std::uint32_t h = 0; h < trace.hours(); ++h) by_hour[hour_of_day(h)] += trace.at(h);
  EXPECT_LT(by_hour[12], by_hour[2] * 0.97);
}

TEST(Synthesizer, ImportBlendRaisesCleanZoneFloor) {
  SynthesizerParams no_imports;
  no_imports.grid_import_fraction = 0.0;
  SynthesizerParams with_imports;
  with_imports.grid_import_fraction = 0.10;
  const double lo = TraceSynthesizer(no_imports).synthesize(spec("Oslo")).yearly_mean();
  const double hi = TraceSynthesizer(with_imports).synthesize(spec("Oslo")).yearly_mean();
  EXPECT_GT(hi, lo + 20.0);
}

TEST(Synthesizer, HourlyMixesAreNormalized) {
  const TraceSynthesizer synth;
  const CarbonTrace trace = synth.synthesize(spec("Madrid"));
  for (std::size_t h = 0; h < trace.hours(); h += 131) {
    EXPECT_NEAR(trace.mixes()[h].total(), 1.0, 1e-9);
  }
}

TEST(Synthesizer, CoalZoneMixIsCoalDominated) {
  const TraceSynthesizer synth;
  const GenerationMix avg = synth.synthesize(spec("Warsaw")).average_mix();
  EXPECT_GT(avg.at(EnergySource::kCoal), 0.4);
}

TEST(Synthesizer, ShorterHorizonSupported) {
  SynthesizerParams params;
  params.hours = 48;
  const CarbonTrace trace = TraceSynthesizer(params).synthesize(spec("Lyon"));
  EXPECT_EQ(trace.hours(), 48u);
}

}  // namespace
}  // namespace carbonedge::carbon
