#include "solver/lp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace carbonedge::solver {
namespace {

TEST(LinearProgram, VariableAndConstraintBookkeeping) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0, 0.0, 5.0);
  const int y = lp.add_variable(-2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 4.0);
  EXPECT_EQ(lp.num_variables(), 2u);
  EXPECT_EQ(lp.num_constraints(), 1u);
  EXPECT_DOUBLE_EQ(lp.objective_coeff(y), -2.0);
  EXPECT_DOUBLE_EQ(lp.upper_bound(x), 5.0);
}

TEST(LinearProgram, InvalidInputsThrow) {
  LinearProgram lp;
  EXPECT_THROW(lp.add_variable(0.0, 2.0, 1.0), std::invalid_argument);
  const int x = lp.add_variable(0.0);
  EXPECT_THROW(lp.add_constraint({{x + 5, 1.0}}, Sense::kEqual, 0.0), std::out_of_range);
}

TEST(LinearProgram, EvaluateAndFeasibility) {
  LinearProgram lp;
  const int x = lp.add_variable(3.0, 0.0, 10.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  EXPECT_DOUBLE_EQ(lp.evaluate({4.0}), 12.0);
  EXPECT_TRUE(lp.is_feasible({4.0}));
  EXPECT_FALSE(lp.is_feasible({1.0}));   // violates >= 2
  EXPECT_FALSE(lp.is_feasible({11.0}));  // violates upper bound
}

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of negative).
  LinearProgram lp;
  const int x = lp.add_variable(-3.0);
  const int y = lp.add_variable(-5.0);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 4.0);
  lp.add_constraint({{y, 2.0}}, Sense::kLessEqual, 12.0);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, Sense::kLessEqual, 18.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
  EXPECT_NEAR(sol.values[x], 2.0, 1e-7);
  EXPECT_NEAR(sol.values[y], 6.0, 1e-7);
}

TEST(Simplex, HandlesEqualityAndGeConstraints) {
  // min x + 2y s.t. x + y = 3, x >= 1.
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(2.0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 3.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 1.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 3.0, 1e-7);
  EXPECT_NEAR(sol.values[y], 0.0, 1e-7);
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);
}

TEST(Simplex, RespectsVariableBounds) {
  // min -x with x in [1, 2.5]: optimum at the upper bound.
  LinearProgram lp;
  const int x = lp.add_variable(-1.0, 1.0, 2.5);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 2.5, 1e-7);
}

TEST(Simplex, NonzeroLowerBoundsShiftCorrectly) {
  // min x + y with x >= 2, y >= 3, x + y >= 7.
  LinearProgram lp;
  const int x = lp.add_variable(1.0, 2.0, kInfinity);
  const int y = lp.add_variable(1.0, 3.0, kInfinity);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 7.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0, 0.0, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  const int x = lp.add_variable(-1.0);  // min -x, x unbounded above
  (void)x;
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, EmptyProgramIsTriviallyOptimal) {
  const LinearProgram lp;
  const LpSolution sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple identical constraints.
  LinearProgram lp;
  const int x = lp.add_variable(-1.0);
  for (int i = 0; i < 5; ++i) lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 1.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 1.0, 1e-7);
}

TEST(Simplex, NegativeRhsRowsNormalize) {
  // -x <= -2  ==  x >= 2.
  LinearProgram lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{x, -1.0}}, Sense::kLessEqual, -2.0);
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 2.0, 1e-7);
}

// Property suite: random 2-variable LPs checked against exhaustive vertex
// enumeration (intersections of all constraint/bound pairs).
class RandomLp2D : public ::testing::TestWithParam<int> {};

TEST_P(RandomLp2D, SimplexMatchesVertexEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  LinearProgram lp;
  const double c0 = rng.uniform(-5.0, 5.0);
  const double c1 = rng.uniform(-5.0, 5.0);
  const double ub0 = rng.uniform(1.0, 10.0);
  const double ub1 = rng.uniform(1.0, 10.0);
  const int x0 = lp.add_variable(c0, 0.0, ub0);
  const int x1 = lp.add_variable(c1, 0.0, ub1);

  struct Line {
    double a0, a1, b;  // a0 x0 + a1 x1 <= b
  };
  std::vector<Line> lines;
  const int num_rows = 2 + static_cast<int>(rng.uniform_index(4));
  for (int r = 0; r < num_rows; ++r) {
    Line line{rng.uniform(-2.0, 3.0), rng.uniform(-2.0, 3.0), rng.uniform(1.0, 12.0)};
    lines.push_back(line);
    lp.add_constraint({{x0, line.a0}, {x1, line.a1}}, Sense::kLessEqual, line.b);
  }
  // Bounds as lines for vertex enumeration.
  lines.push_back({1.0, 0.0, ub0});
  lines.push_back({0.0, 1.0, ub1});
  lines.push_back({-1.0, 0.0, 0.0});
  lines.push_back({0.0, -1.0, 0.0});

  const auto feasible = [&](double v0, double v1) {
    for (const Line& l : lines) {
      if (l.a0 * v0 + l.a1 * v1 > l.b + 1e-7) return false;
    }
    return true;
  };
  double best = kInfinity;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a0 * lines[j].a1 - lines[j].a0 * lines[i].a1;
      if (std::abs(det) < 1e-9) continue;
      const double v0 = (lines[i].b * lines[j].a1 - lines[j].b * lines[i].a1) / det;
      const double v1 = (lines[i].a0 * lines[j].b - lines[j].a0 * lines[i].b) / det;
      if (feasible(v0, v1)) best = std::min(best, c0 * v0 + c1 * v1);
    }
  }

  const LpSolution sol = solve_lp(lp);
  if (best == kInfinity) {
    EXPECT_EQ(sol.status, LpStatus::kInfeasible);
  } else {
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(sol.objective, best, 1e-5) << "seed " << GetParam();
    EXPECT_TRUE(lp.is_feasible(sol.values, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLp2D, ::testing::Range(0, 60));

// Property suite: on larger random feasible LPs the simplex answer must be
// feasible and no worse than any sampled feasible point.
class RandomLpNd : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpNd, OptimumDominatesSampledFeasiblePoints) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const std::size_t n = 3 + rng.uniform_index(5);
  LinearProgram lp;
  std::vector<double> ub(n);
  for (std::size_t i = 0; i < n; ++i) {
    ub[i] = rng.uniform(0.5, 4.0);
    lp.add_variable(rng.uniform(-3.0, 3.0), 0.0, ub[i]);
  }
  const std::size_t rows = 2 + rng.uniform_index(4);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t i = 0; i < n; ++i) {
      terms.emplace_back(static_cast<int>(i), rng.uniform(0.0, 2.0));
    }
    lp.add_constraint(std::move(terms), Sense::kLessEqual, rng.uniform(2.0, 10.0));
  }
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);  // origin is always feasible here
  ASSERT_TRUE(lp.is_feasible(sol.values, 1e-5));
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> candidate(n);
    for (std::size_t i = 0; i < n; ++i) candidate[i] = rng.uniform(0.0, ub[i]);
    if (lp.is_feasible(candidate)) {
      EXPECT_LE(sol.objective, lp.evaluate(candidate) + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpNd, ::testing::Range(0, 40));

}  // namespace
}  // namespace carbonedge::solver
