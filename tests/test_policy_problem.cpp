#include "core/problem.hpp"

#include <gtest/gtest.h>

#include "core/policy.hpp"

namespace carbonedge::core {
namespace {

struct Fixture {
  sim::EdgeCluster cluster;
  carbon::CarbonIntensityService carbon;
  geo::LatencyMatrix latency;

  explicit Fixture(sim::DeviceType device = sim::DeviceType::kA2)
      : cluster(sim::make_uniform_cluster(geo::florida_region(), 1, device)) {
    carbon.add_region(geo::florida_region());
    latency = geo::LatencyMatrix(geo::LatencyModel{}, cluster.cities());
  }

  PlacementInput input(carbon::HourIndex now = 12) {
    PlacementInput in;
    in.cluster = &cluster;
    in.latency = &latency;
    in.carbon = &carbon;
    in.now = now;
    return in;
  }
};

sim::Application app_at(std::size_t site, double rtt_limit = 20.0,
                        sim::ModelType model = sim::ModelType::kResNet50) {
  sim::Application app;
  app.id = 100 + site;
  app.model = model;
  app.origin_site = site;
  app.rps = 5.0;
  app.latency_limit_rtt_ms = rtt_limit;
  return app;
}

TEST(Policy, NamesAndDescribe) {
  EXPECT_STREQ(to_string(PolicyKind::kCarbonEdge), "CarbonEdge");
  EXPECT_STREQ(to_string(PolicyKind::kLatencyAware), "Latency-aware");
  EXPECT_EQ(describe(PolicyConfig::multi_objective(0.25)), "Multi-objective(alpha=0.25)");
  EXPECT_EQ(describe(PolicyConfig::carbon_edge()), "CarbonEdge");
}

TEST(BuildProblem, RequiresAllInputs) {
  Fixture f;
  PlacementInput bad;
  const std::vector<sim::Application> apps = {app_at(0)};
  EXPECT_THROW(build_problem(bad, apps, PolicyConfig::carbon_edge()), std::invalid_argument);
}

TEST(BuildProblem, DimensionsMatchClusterAndBatch) {
  Fixture f;
  const std::vector<sim::Application> apps = {app_at(0), app_at(1)};
  const BuiltProblem built = build_problem(f.input(), apps, PolicyConfig::carbon_edge());
  EXPECT_EQ(built.problem.num_apps(), 2u);
  EXPECT_EQ(built.problem.num_servers(), 5u);
  EXPECT_EQ(built.problem.num_resources(), 2u);
  EXPECT_EQ(built.servers.size(), 5u);
}

TEST(BuildProblem, LatencyFilterMarksDistantServersInfeasible) {
  Fixture f;
  // Very tight SLO: only the origin site qualifies.
  const std::vector<sim::Application> apps = {app_at(1, /*rtt_limit=*/1.0)};
  const BuiltProblem built = build_problem(f.input(), apps, PolicyConfig::carbon_edge());
  for (std::size_t j = 0; j < 5; ++j) {
    if (j == 1) {
      EXPECT_TRUE(built.problem.feasible_pair(0, j));
    } else {
      EXPECT_FALSE(built.problem.feasible_pair(0, j));
    }
  }
}

TEST(BuildProblem, UnsupportedModelsAreInfeasible) {
  Fixture f(sim::DeviceType::kA2);
  const std::vector<sim::Application> apps = {
      app_at(0, 20.0, sim::ModelType::kSciCpu)};  // CPU app on GPU-only cluster
  const BuiltProblem built = build_problem(f.input(), apps, PolicyConfig::carbon_edge());
  for (std::size_t j = 0; j < 5; ++j) EXPECT_FALSE(built.problem.feasible_pair(0, j));
}

TEST(BuildProblem, CarbonCostIsEnergyTimesIntensity) {
  Fixture f;
  const std::vector<sim::Application> apps = {app_at(0, 40.0)};
  const BuiltProblem built = build_problem(f.input(7), apps, PolicyConfig::carbon_edge());
  for (std::size_t j = 0; j < 5; ++j) {
    if (!built.problem.feasible_pair(0, j)) continue;
    const std::size_t cell = built.index(0, j);
    EXPECT_NEAR(built.carbon_g[cell],
                built.energy_wh[cell] / 1000.0 * built.mean_intensity[j], 1e-9);
    EXPECT_NEAR(built.problem.cost(0, j), built.carbon_g[cell], 1e-12);
  }
}

TEST(BuildProblem, MeanIntensityUsesForecastWindow) {
  Fixture f;
  const std::vector<sim::Application> apps = {app_at(0, 40.0)};
  PlacementInput in = f.input(100);
  in.forecast_horizon_hours = 24;
  const BuiltProblem built = build_problem(in, apps, PolicyConfig::carbon_edge());
  const auto& trace = f.carbon.trace("Jacksonville");
  EXPECT_NEAR(built.mean_intensity[0], trace.mean_over(100, 24), 1e-9);
}

TEST(BuildProblem, PolicyObjectivesDiffer) {
  Fixture f;
  const std::vector<sim::Application> apps = {app_at(2, 40.0)};
  const BuiltProblem latency = build_problem(f.input(), apps, PolicyConfig::latency_aware());
  const BuiltProblem energy = build_problem(f.input(), apps, PolicyConfig::energy_aware());
  const BuiltProblem intensity = build_problem(f.input(), apps, PolicyConfig::intensity_aware());
  for (std::size_t j = 0; j < 5; ++j) {
    if (!latency.problem.feasible_pair(0, j)) continue;
    const std::size_t cell = latency.index(0, j);
    EXPECT_NEAR(latency.problem.cost(0, j), latency.rtt_ms[cell], 1e-12);
    EXPECT_NEAR(energy.problem.cost(0, j), energy.energy_wh[cell], 1e-12);
    EXPECT_NEAR(intensity.problem.cost(0, j), intensity.mean_intensity[j], 1e-12);
  }
}

TEST(BuildProblem, MultiObjectiveEndpointsMatchPureObjectives) {
  Fixture f;
  const std::vector<sim::Application> apps = {app_at(0, 40.0), app_at(3, 40.0)};
  const BuiltProblem alpha0 = build_problem(f.input(), apps, PolicyConfig::multi_objective(0.0));
  const BuiltProblem alpha1 = build_problem(f.input(), apps, PolicyConfig::multi_objective(1.0));
  // alpha=0 costs are normalized carbon: ordering matches carbon ordering.
  for (std::size_t i = 0; i < apps.size(); ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      for (std::size_t k = j + 1; k < 5; ++k) {
        if (!alpha0.problem.feasible_pair(i, j) || !alpha0.problem.feasible_pair(i, k)) continue;
        const bool carbon_less =
            alpha0.carbon_g[alpha0.index(i, j)] < alpha0.carbon_g[alpha0.index(i, k)];
        const bool cost_less = alpha0.problem.cost(i, j) < alpha0.problem.cost(i, k);
        EXPECT_EQ(carbon_less, cost_less);
        const bool energy_less =
            alpha1.energy_wh[alpha1.index(i, j)] < alpha1.energy_wh[alpha1.index(i, k)];
        const bool cost1_less = alpha1.problem.cost(i, j) < alpha1.problem.cost(i, k);
        EXPECT_EQ(energy_less, cost1_less);
      }
    }
  }
}

TEST(BuildProblem, ActivationCostsOnlyForOffServers) {
  Fixture f;
  f.cluster.sites()[2].servers()[0].set_powered_on(false);
  const std::vector<sim::Application> apps = {app_at(0, 40.0)};
  const BuiltProblem built = build_problem(f.input(), apps, PolicyConfig::carbon_edge());
  for (std::size_t j = 0; j < 5; ++j) {
    if (j == 2) {
      EXPECT_GT(built.problem.activation_cost(j), 0.0);
      EXPECT_FALSE(built.problem.initially_on(j));
    } else {
      EXPECT_DOUBLE_EQ(built.problem.activation_cost(j), 0.0);
      EXPECT_TRUE(built.problem.initially_on(j));
    }
  }
}

TEST(BuildProblem, CapacitiesReflectCurrentLoad) {
  Fixture f;
  f.cluster.sites()[0].servers()[0].host({9, sim::ModelType::kYoloV4, 10.0});
  const std::vector<sim::Application> apps = {app_at(0, 40.0)};
  const BuiltProblem built = build_problem(f.input(), apps, PolicyConfig::carbon_edge());
  EXPECT_LT(built.problem.capacity(0, 0), built.problem.capacity(1, 0));  // memory
  EXPECT_LT(built.problem.capacity(0, 1), built.problem.capacity(1, 1));  // compute
}

TEST(BuildProblem, EnergyScalesWithEpochHours) {
  Fixture f;
  const std::vector<sim::Application> apps = {app_at(0, 40.0)};
  PlacementInput in1 = f.input();
  PlacementInput in2 = f.input();
  in2.epoch_hours = 2.0;
  const BuiltProblem b1 = build_problem(in1, apps, PolicyConfig::energy_aware());
  const BuiltProblem b2 = build_problem(in2, apps, PolicyConfig::energy_aware());
  const std::size_t cell = b1.index(0, 0);
  EXPECT_NEAR(b2.energy_wh[cell], 2.0 * b1.energy_wh[cell], 1e-9);
}

}  // namespace
}  // namespace carbonedge::core
