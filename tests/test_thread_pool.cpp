#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace carbonedge::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    (void)pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, TaskExceptionsSurfaceViaFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ComputesSameResultAsSerial) {
  ThreadPool pool(3);
  std::vector<double> out(2048, 0.0);
  parallel_for(pool, 0, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 0.5 * 2047.0 * 2048.0 / 2.0);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("failure at 37");
                   },
                   /*chunk=*/1),
      std::runtime_error);
}

TEST(ParallelFor, NestedUseOfTheSamePoolRunsInlineInsteadOfDeadlocking) {
  // Saturate a 2-worker pool with outer tasks that each parallel_for on the
  // same pool: without inline fallback every worker would block in
  // future.wait() on tasks no free worker can execute.
  ThreadPool pool(2);
  std::vector<std::vector<int>> out(4, std::vector<int>(8, 0));
  parallel_for(
      pool, 0, out.size(),
      [&](std::size_t outer) {
        EXPECT_TRUE(pool.on_worker_thread());
        parallel_for(pool, 0, out[outer].size(),
                     [&](std::size_t inner) { out[outer][inner] = static_cast<int>(inner) + 1; },
                     /*chunk=*/1);
      },
      /*chunk=*/1);
  for (const auto& row : out) {
    for (std::size_t i = 0; i < row.size(); ++i) EXPECT_EQ(row[i], static_cast<int>(i) + 1);
  }
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  auto f = global_pool().submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

}  // namespace
}  // namespace carbonedge::util
