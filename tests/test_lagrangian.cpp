#include "solver/lagrangian.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace carbonedge::solver {
namespace {

AssignmentProblem simple(std::size_t apps, std::size_t servers, double cap) {
  AssignmentProblem p(apps, servers, 1);
  for (std::size_t j = 0; j < servers; ++j) p.set_capacity(j, 0, cap);
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      p.set_cost(i, j, static_cast<double>(i + 2 * j + 1));
      p.set_demand(i, j, 0, 1.0);
    }
  }
  return p;
}

TEST(Lagrangian, UncapacitatedBoundIsExact) {
  // Plenty of capacity: the relaxation at lambda=0 equals the optimum.
  const AssignmentProblem p = simple(3, 2, 10.0);
  const LagrangianResult lr = lagrangian_lower_bound(p);
  const AssignmentSolution exact = solve_exact(p);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(lr.lower_bound, exact.total_cost, 1e-9);
}

TEST(Lagrangian, TightCapacityBoundImprovesOverRoot) {
  // Capacity 1 forces spreading: the capacity-ignoring root bound is loose;
  // subgradient ascent must close part of the gap.
  const AssignmentProblem p = simple(4, 4, 1.0);
  const LagrangianResult lr = lagrangian_lower_bound(p);
  EXPECT_GT(lr.lower_bound, lr.root_bound + 1e-9);
}

TEST(Lagrangian, BoundNeverExceedsOptimum) {
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t apps = 2 + rng.uniform_index(5);
    const std::size_t servers = 2 + rng.uniform_index(3);
    AssignmentProblem p(apps, servers, 2);
    for (std::size_t j = 0; j < servers; ++j) {
      p.set_capacity(j, 0, rng.uniform(2.0, 6.0));
      p.set_capacity(j, 1, rng.uniform(2.0, 6.0));
    }
    for (std::size_t i = 0; i < apps; ++i) {
      for (std::size_t j = 0; j < servers; ++j) {
        if (rng.bernoulli(0.1)) continue;
        p.set_cost(i, j, rng.uniform(0.5, 10.0));
        p.set_demand(i, j, 0, rng.uniform(0.2, 1.2));
        p.set_demand(i, j, 1, rng.uniform(0.2, 1.2));
      }
    }
    const AssignmentSolution exact = solve_exact(p);
    const LagrangianResult lr = lagrangian_lower_bound(p);
    if (!lr.feasible_instance) continue;
    if (exact.feasible) {
      EXPECT_LE(lr.lower_bound, exact.total_cost + 1e-6) << "trial " << trial;
      EXPECT_LE(lr.root_bound, lr.lower_bound + 1e-9);
    }
  }
}

TEST(Lagrangian, CertifiesGreedyQualityAtScale) {
  // A CDN-sized instance the exact solver cannot touch: the dual bound must
  // bracket greedy+LS within a reasonable gap.
  util::Rng rng(7);
  const std::size_t apps = 80;
  const std::size_t servers = 40;
  AssignmentProblem p(apps, servers, 1);
  for (std::size_t j = 0; j < servers; ++j) p.set_capacity(j, 0, 4.0);
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      p.set_cost(i, j, rng.uniform(1.0, 10.0));
      p.set_demand(i, j, 0, 1.0);
    }
  }
  AssignmentSolution heuristic = solve_greedy(p);
  improve_local_search(p, heuristic);
  ASSERT_TRUE(heuristic.feasible);
  LagrangianOptions options;
  options.upper_bound = heuristic.total_cost;
  const LagrangianResult lr = lagrangian_lower_bound(p, options);
  EXPECT_LE(lr.lower_bound, heuristic.total_cost + 1e-6);
  EXPECT_GT(lr.lower_bound, 0.0);
  // Unit-slot: the flow solver gives the true optimum to compare all three.
  const AssignmentSolution optimal = solve_flow(p);
  ASSERT_TRUE(optimal.feasible);
  EXPECT_LE(lr.lower_bound, optimal.total_cost + 1e-6);
  EXPECT_GE(lr.lower_bound, optimal.total_cost * 0.9);  // within 10% of OPT
}

TEST(Lagrangian, InfeasibleInstanceFlagged) {
  AssignmentProblem p(2, 2, 1);  // all costs at infinity
  const LagrangianResult lr = lagrangian_lower_bound(p);
  EXPECT_FALSE(lr.feasible_instance);
  EXPECT_EQ(lr.lower_bound, -kInfinity);
}

TEST(Lagrangian, RespectsIterationBudget) {
  const AssignmentProblem p = simple(6, 3, 2.0);
  LagrangianOptions options;
  options.max_iterations = 3;
  const LagrangianResult lr = lagrangian_lower_bound(p, options);
  EXPECT_LE(lr.iterations, 3u);
}

}  // namespace
}  // namespace carbonedge::solver
