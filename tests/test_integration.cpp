// Cross-module integration tests: full regional day runs and a CDN-style
// multi-week simulation, asserting the paper's qualitative results
// (Sections 6.2 and 6.3) end to end.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "util/stats.hpp"

namespace carbonedge::core {
namespace {

carbon::CarbonIntensityService make_service(const geo::Region& region) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  return service;
}

SimulationConfig regional_day() {
  SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {0.0, 0.0, 0.0, 1.0};  // CPU Sci app
  config.workload.latency_limit_rtt_ms = 25.0;
  return config;
}

std::vector<PolicyConfig> all_policies() {
  return {PolicyConfig::latency_aware(), PolicyConfig::energy_aware(),
          PolicyConfig::intensity_aware(), PolicyConfig::carbon_edge()};
}

TEST(Integration, Section62FloridaDay) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kXeonCpu), service);
  const auto results = run_policies(simulation, regional_day(),
                                    {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});
  const double saving = carbon_saving(results[0], results[1]);
  // Paper: 39.4% for Florida; our synthetic grids land in the same band.
  EXPECT_GT(saving, 0.25);
  EXPECT_LT(saving, 0.85);
  // Response-time increase stays below ~10.1 ms per Figure 9's bound, with
  // headroom for model differences.
  EXPECT_LT(latency_increase_ms(results[0], results[1]), 14.0);
}

TEST(Integration, Section62CentralEuDayBeatsFlorida) {
  const SimulationConfig config = regional_day();
  const auto florida = geo::florida_region();
  const auto eu = geo::central_eu_region();
  const auto florida_service = make_service(florida);
  const auto eu_service = make_service(eu);
  EdgeSimulation florida_sim(
      sim::make_uniform_cluster(florida, 1, sim::DeviceType::kXeonCpu), florida_service);
  EdgeSimulation eu_sim(sim::make_uniform_cluster(eu, 1, sim::DeviceType::kXeonCpu), eu_service);
  const auto fl = run_policies(florida_sim, config,
                               {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});
  const auto ce = run_policies(eu_sim, config,
                               {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});
  const double fl_saving = carbon_saving(fl[0], fl[1]);
  const double eu_saving = carbon_saving(ce[0], ce[1]);
  // Paper: Central EU (78.7%) saves more than Florida (39.4%).
  EXPECT_GT(eu_saving, fl_saving);
  EXPECT_GT(eu_saving, 0.6);
}

TEST(Integration, GpuAndCpuWorkloadsGetSamePlacementShape) {
  // Figure 10: "the proposed system implements the same placement decisions
  // apart from the application requirements" — savings are consistent
  // across the Sci CPU app and ResNet50.
  const auto region = geo::central_eu_region();
  const auto service = make_service(region);

  SimulationConfig cpu_config = regional_day();
  EdgeSimulation cpu_sim(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kXeonCpu), service);
  const auto cpu = run_policies(cpu_sim, cpu_config,
                                {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});

  SimulationConfig gpu_config = regional_day();
  gpu_config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};  // ResNet50
  EdgeSimulation gpu_sim(sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const auto gpu = run_policies(gpu_sim, gpu_config,
                                {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});

  const double cpu_saving = carbon_saving(cpu[0], cpu[1]);
  const double gpu_saving = carbon_saving(gpu[0], gpu[1]);
  EXPECT_NEAR(cpu_saving, gpu_saving, 0.15);
  // GPU app draws far less power than the CPU app -> lower absolute carbon.
  EXPECT_LT(gpu[0].telemetry.total_carbon_g(), cpu[0].telemetry.total_carbon_g());
}

TEST(Integration, PolicyOrderingOnHeterogeneousCluster) {
  // Figure 15's qualitative ordering: CarbonEdge emits least; Latency-aware
  // emits most; Energy/Intensity-aware in between.
  const auto region = geo::central_eu_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_hetero_cluster(region, 3,
                               {sim::DeviceType::kOrinNano, sim::DeviceType::kA2,
                                sim::DeviceType::kGtx1080}),
      service);
  SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 1.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.mean_lifetime_epochs = 8.0;
  config.workload.latency_limit_rtt_ms = 25.0;
  const auto results = run_policies(simulation, config, all_policies());
  const double latency_aware = results[0].telemetry.total_carbon_g();
  const double carbon_edge = results[3].telemetry.total_carbon_g();
  EXPECT_LT(carbon_edge, latency_aware);
  EXPECT_LE(carbon_edge, results[1].telemetry.total_carbon_g() + 1e-9);
  EXPECT_LE(carbon_edge, results[2].telemetry.total_carbon_g() + 1e-9);
  // Carbon-energy trade-off (Figure 15b): CarbonEdge uses at least as much
  // energy as Energy-aware.
  EXPECT_GE(results[3].telemetry.total_energy_wh(),
            results[1].telemetry.total_energy_wh() * 0.99);
}

TEST(Integration, CdnWeekAcrossEurope) {
  // A week of a 25-site European CDN: CarbonEdge saves carbon at a bounded
  // RTT increase (Figure 11's shape).
  const auto region = geo::cdn_region(geo::Continent::kEurope, 25);
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 7 * 24 / 3;
  config.epoch_hours = 3.0;
  config.workload.arrivals_per_site = 0.3;
  config.workload.mean_lifetime_epochs = 16.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.latency_limit_rtt_ms = 20.0;
  const auto results = run_policies(simulation, config,
                                    {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});
  const double saving = carbon_saving(results[0], results[1]);
  EXPECT_GT(saving, 0.3);
  const double dlat = latency_increase_ms(results[0], results[1]);
  EXPECT_GT(dlat, 0.0);
  EXPECT_LT(dlat, 20.0);
  // Load shifts toward low-intensity zones: the request-weighted intensity
  // distribution under CarbonEdge is stochastically smaller (Figure 11c).
  const util::EmpiricalCdf base_cdf(results[0].telemetry.load_intensity_sample());
  const util::EmpiricalCdf ce_cdf(results[1].telemetry.load_intensity_sample());
  EXPECT_GT(ce_cdf.at(200.0), base_cdf.at(200.0));
}

TEST(Integration, LatencyToleranceMonotonicity) {
  // Figure 12a: savings grow with the latency limit (diminishing returns).
  const auto region = geo::cdn_region(geo::Continent::kEurope, 15);
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 0.5;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  double previous = -1.0;
  for (const double limit : {5.0, 15.0, 30.0}) {
    config.workload.latency_limit_rtt_ms = limit;
    const auto results = run_policies(
        simulation, config, {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});
    const double saving = carbon_saving(results[0], results[1]);
    EXPECT_GE(saving, previous - 0.05) << "limit " << limit;
    previous = saving;
  }
  EXPECT_GT(previous, 0.2);
}

TEST(Integration, MultiObjectiveAlphaSweepTradesCarbonForEnergy) {
  // Figure 16: as alpha goes 0 -> 1, energy falls and carbon rises.
  const auto region = geo::central_eu_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_hetero_cluster(region, 2,
                               {sim::DeviceType::kOrinNano, sim::DeviceType::kGtx1080}),
      service);
  SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 1.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.latency_limit_rtt_ms = 25.0;
  const auto at_alpha = [&](double alpha) {
    SimulationConfig c = config;
    c.policy = PolicyConfig::multi_objective(alpha);
    return simulation.run(c);
  };
  const SimulationResult carbon_first = at_alpha(0.0);
  const SimulationResult energy_first = at_alpha(1.0);
  EXPECT_LE(carbon_first.telemetry.total_carbon_g(),
            energy_first.telemetry.total_carbon_g() * 1.02);
  EXPECT_GE(carbon_first.telemetry.total_energy_wh(),
            energy_first.telemetry.total_energy_wh() * 0.98);
}

}  // namespace
}  // namespace carbonedge::core
