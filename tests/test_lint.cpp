// Golden-snippet tests for carbonedge_lint: every rule must both fire on
// its target construct and stay quiet on the determinism-safe spelling —
// including that matches inside comments, string literals, and raw strings
// never false-positive, and that the suppression machinery (annotations +
// allowlist) is itself validated (unused suppressions are errors).
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "report.hpp"

namespace carbonedge::lint {
namespace {

std::vector<Finding> lint_one(const std::string& path, const std::string& content) {
  std::vector<SourceFile> files{{path, content}};
  std::vector<AllowlistEntry> allowlist;
  return run_lint(files, allowlist);
}

std::vector<Finding> lint_many(std::vector<SourceFile> files) {
  std::vector<AllowlistEntry> allowlist;
  return run_lint(files, allowlist);
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

// ----------------------------------------------------------------- lexer --

TEST(LintLexer, BlanksCommentsAndLiteralsButKeepsLineStructure) {
  const std::string src =
      "int a; // std::rand()\n"
      "/* std::rand()\n   spans lines */ int b;\n"
      "const char* s = \"std::rand()\";\n";
  const std::string stripped = strip_comments_and_literals(src);
  EXPECT_EQ(stripped.size(), src.size());
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintLexer, RawStringsAreBlanked) {
  const std::string src = "auto s = R\"(std::rand() time(nullptr))\"; int ok;\n";
  const std::string stripped = strip_comments_and_literals(src);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int ok;"), std::string::npos);
}

TEST(LintLexer, RawStringWithDelimiterAndEmbeddedQuote) {
  const std::string src =
      "auto s = R\"x(quote \" and )\" inside)x\"; srand(7);\n";
  const std::string stripped = strip_comments_and_literals(src);
  // The fake terminator )" inside the delimited raw string must not end it:
  // the srand after the real terminator survives stripping.
  EXPECT_NE(stripped.find("srand(7)"), std::string::npos);
  EXPECT_EQ(stripped.find("quote"), std::string::npos);
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  const std::string src = "const int n = 1'000'000; std::rand();\n";
  EXPECT_NE(strip_comments_and_literals(src).find("rand"), std::string::npos);
}

// ------------------------------------------------------------------- D1 --

TEST(LintD1, FiresOnEveryBannedPrimitive) {
  const char* bad[] = {
      "int f() { return std::rand(); }\n",
      "#include <random>\nstd::random_device dev;\n",
      "auto t = std::chrono::steady_clock::now();\n",
      "auto t = std::chrono::system_clock::now();\n",
      "auto t = std::filesystem::file_time_type::clock::now();\n",
      "auto t = time(nullptr);\n",
      "auto t = time(NULL);\n",
      "auto id = std::this_thread::get_id();\n",
      "#include <map>\nstd::map<const int*, double> by_ptr;\n",
      "#include <set>\nstd::set<Widget*> live;\n",
  };
  for (const char* snippet : bad) {
    const auto findings = lint_one("src/x.cpp", snippet);
    EXPECT_TRUE(has_rule(findings, "D1")) << snippet;
  }
}

TEST(LintD1, QuietOnDeterministicSpellings) {
  const std::string src =
      "#include <map>\n"
      "util::Rng rng(config.seed);\n"
      "std::map<std::pair<std::size_t, int>, double> by_id;\n"
      "auto d = std::chrono::minutes(10);\n"
      "double remaining_time(int epochs);\n"  // 'time' as a plain identifier
      "auto v = remaining_time(3);\n";
  EXPECT_FALSE(has_rule(lint_one("src/x.cpp", src), "D1"));
}

TEST(LintD1, NeverFiresInsideCommentsOrStrings) {
  const std::string src =
      "// std::rand() and time(nullptr) and steady_clock::now()\n"
      "/* std::random_device across\n   lines */\n"
      "const char* s = \"std::rand() time(nullptr)\";\n"
      "const char* r = R\"(this_thread::get_id())\";\n"
      "int clean;\n";
  EXPECT_TRUE(lint_one("src/x.cpp", src).empty());
}

TEST(LintD1, ClockFindingDirectsToTheObsShim) {
  // The fix-it half of the rule: a raw clock read's message must point at
  // the sanctioned replacement so the finding is actionable.
  const auto findings =
      lint_one("src/core/x.cpp", "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_TRUE(has_rule(findings, "D1"));
  EXPECT_NE(findings[0].message.find("obs::now_ns"), std::string::npos);
}

TEST(LintD1, ObsClockShimSanctionIsScopedToExactlyOneFile) {
  const std::string shim_like =
      "std::uint64_t now_ns() {\n"
      "  return static_cast<std::uint64_t>(\n"
      "      std::chrono::steady_clock::now().time_since_epoch().count());\n"
      "}\n";
  // Without its allowlist entry the shim body fires like any other file —
  // the sanction lives in the allowlist, not in the rule.
  EXPECT_TRUE(has_rule(lint_one("src/obs/clock.cpp", shim_like), "D1"));

  // With the repo's entry, the shim is quiet and every other clock read
  // still fires: the one escape hatch cannot widen.
  std::vector<Finding> parse_errors;
  std::vector<AllowlistEntry> allowlist = parse_allowlist(
      "D1 src/obs/clock.cpp the one sanctioned monotonic-clock read\n", "allowlist",
      parse_errors);
  ASSERT_TRUE(parse_errors.empty());
  std::vector<SourceFile> files{
      {"src/obs/clock.cpp", shim_like},
      {"src/core/sneaky.cpp", "auto t = std::chrono::steady_clock::now();\n"},
  };
  const auto findings = run_lint(files, allowlist);
  ASSERT_EQ(count_rule(findings, "D1"), 1u);
  const auto fired = std::find_if(findings.begin(), findings.end(),
                                  [](const Finding& f) { return f.rule == "D1"; });
  EXPECT_EQ(fired->file, "src/core/sneaky.cpp");
  EXPECT_TRUE(allowlist[0].used);
}

TEST(LintD1, SuppressedOnSameLineAndFromLineAbove) {
  const std::string same_line =
      "auto t0 = std::chrono::steady_clock::now();  // lint: nondeterminism-ok(telemetry only)\n";
  EXPECT_TRUE(lint_one("src/x.cpp", same_line).empty());
  const std::string line_above =
      "// lint: nondeterminism-ok(telemetry only)\n"
      "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_one("src/x.cpp", line_above).empty());
}

// ------------------------------------------------------------------- D2 --

TEST(LintD2, FiresOnRangeForAndBeginLoops) {
  const std::string range_for =
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> acc_;\n"
      "double total() { double t = 0; for (const auto& [k, v] : acc_) t += v; return t; }\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", range_for), "D2"));

  const std::string begin_loop =
      "#include <unordered_set>\n"
      "std::unordered_set<int> seen_;\n"
      "void f() { for (auto it = seen_.begin(); it != seen_.end(); ++it) {} }\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", begin_loop), "D2"));
}

TEST(LintD2, SeesMembersDeclaredInTheHeaderIteratedInTheCpp) {
  std::vector<SourceFile> files{
      {"src/cache.hpp",
       "#pragma once\n#include <unordered_map>\n"
       "struct Cache { std::unordered_map<int, int> entries_; };\n"},
      {"src/cache.cpp", "void dump(Cache& c) { for (const auto& [k, v] : c.entries_) {} }\n"},
  };
  const auto findings = lint_many(std::move(files));
  ASSERT_TRUE(has_rule(findings, "D2"));
  EXPECT_EQ(findings.front().file, "src/cache.cpp");
}

TEST(LintD2, QuietOnLookupsSnapshotsAndAnnotatedIteration) {
  const std::string lookups =
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> acc_;\n"
      "double g(int k) { return acc_.at(k); }\n"
      "bool h(int k) { return acc_.find(k) != acc_.end(); }\n";
  EXPECT_TRUE(lint_one("src/x.cpp", lookups).empty());

  const std::string snapshot_vector =
      "#include <vector>\n"
      "std::vector<int> snapshot_;\n"
      "void f() { for (int v : snapshot_) {} }\n";
  EXPECT_TRUE(lint_one("src/x.cpp", snapshot_vector).empty());

  const std::string annotated =
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> acc_;\n"
      "// lint: unordered-iteration-ok(coordinator-only snapshot build)\n"
      "void f() { for (const auto& [k, v] : acc_) {} }\n";
  EXPECT_TRUE(lint_one("src/x.cpp", annotated).empty());
}

// ------------------------------------------------------------------- D3 --

TEST(LintD3, FiresOnRngDrawInInlineParallelLambda) {
  const std::string src =
      "void step() {\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    slots_[k] = rng.bernoulli(0.5);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D3"));
}

TEST(LintD3, FiresOnSharedMutationViaNamedLambda) {
  const std::string src =
      "void sweep() {\n"
      "  const auto body = [&](std::size_t i) {\n"
      "    total_ += weigh(i);\n"
      "    log_.push_back(i);\n"
      "  };\n"
      "  util::parallel_for(pool, 0, n, body, 1);\n"
      "}\n";
  const auto findings = lint_one("src/x.cpp", src);
  EXPECT_EQ(count_rule(findings, "D3"), 2u);  // += and push_back
}

TEST(LintD3, QuietOnDisjointSlotWritesAndOutsideParallelSections) {
  const std::string disjoint =
      "void step() {\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    slots_[k] = compute(k);\n"
      "    local_sum[k] = slots_[k] * 2.0;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", disjoint).empty());

  const std::string serial =
      "void coordinator() {\n"
      "  total_ += rng.bernoulli(0.5);\n"  // fine: not a parallel section
      "  samples_.push_back(1);\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", serial).empty());
}

TEST(LintD3, FiresInSubmitLambdaAndHonorsAnnotation) {
  const std::string src =
      "void f() {\n"
      "  pool.submit([&] { counter_ += 1; });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D3"));

  const std::string annotated =
      "void f() {\n"
      "  // lint: parallel-state-ok(counter_ is atomic; relaxed telemetry only)\n"
      "  pool.submit([&] { counter_ += 1; });\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", annotated).empty());
}

// ------------------------------------------------------------------- D4 --

TEST(LintD4, FloatBannedOnlyInAccountingPaths) {
  const std::string src = "float share = 0.5f;\n";
  EXPECT_TRUE(has_rule(lint_one("src/sim/x.cpp", src), "D4"));
  EXPECT_TRUE(has_rule(lint_one("src/core/x.hpp", src), "D4"));
  EXPECT_FALSE(has_rule(lint_one("src/geo/x.cpp", src), "D4"));
  EXPECT_FALSE(has_rule(lint_one("bench/x.cpp", src), "D4"));
  // 'float' in comments/identifiers stays quiet.
  const std::string quiet =
      "// float-boundary drift\ndouble floating_share;\n";
  EXPECT_TRUE(lint_one("src/sim/x.cpp", quiet).empty());
}

// ------------------------------------------------------------------- D5 --

TEST(LintD5, GetenvFiresEverywhereIncludingStdQualified) {
  EXPECT_TRUE(has_rule(
      lint_one("src/x.cpp", "const char* v = std::getenv(\"HOME\");\n"), "D5"));
  EXPECT_TRUE(has_rule(lint_one("bench/x.cpp", "const char* v = getenv(\"HOME\");\n"), "D5"));
  // The shim's API is the clean spelling.
  EXPECT_TRUE(
      lint_one("src/x.cpp", "auto v = util::env::get_or(\"CARBONEDGE_THREADS\", \"\");\n")
          .empty());
}

// ------------------------------------------------------------------- H1 --

TEST(LintH1, HeaderHygiene) {
  EXPECT_TRUE(has_rule(lint_one("src/x.hpp", "int f();\n"), "H1"));  // no pragma once
  EXPECT_TRUE(has_rule(
      lint_one("src/x.hpp", "#pragma once\nusing namespace std;\n"), "H1"));
  EXPECT_TRUE(lint_one("src/x.hpp", "#pragma once\nint f();\n").empty());
  // .cpp files are exempt from both checks.
  EXPECT_TRUE(lint_one("src/x.cpp", "using namespace std;\nint f() { return 1; }\n").empty());
}

// ----------------------------------------------------- suppression audit --

TEST(LintSuppressions, UnusedAnnotationIsReported) {
  const std::string src =
      "// lint: nondeterminism-ok(stale reason, nothing here anymore)\n"
      "int clean;\n";
  const auto findings = lint_one("src/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "LINT");
  EXPECT_NE(findings[0].message.find("unused suppression"), std::string::npos);
}

TEST(LintSuppressions, MalformedAnnotationsAreReported) {
  for (const char* src : {
           "// lint: nondeterminism-ok\nint a = time(nullptr);\n",     // missing reason
           "// lint: nondeterminism-ok()\nint a = time(nullptr);\n",   // empty reason
           "// lint: no-such-token(reason)\nint a = time(nullptr);\n"  // unknown token
       }) {
    const auto findings = lint_one("src/x.cpp", src);
    EXPECT_TRUE(has_rule(findings, "LINT")) << src;
    EXPECT_TRUE(has_rule(findings, "D1")) << src;  // broken hatch suppresses nothing
  }
}

TEST(LintSuppressions, AnnotationInsideAStringLiteralIsNotAnAnnotation) {
  const std::string src =
      "const char* s = \"// lint: nondeterminism-ok(fake)\";\n"
      "auto t = time(nullptr);\n";
  const auto findings = lint_one("src/x.cpp", src);
  EXPECT_TRUE(has_rule(findings, "D1"));  // the fake annotation suppressed nothing
  EXPECT_FALSE(has_rule(findings, "LINT"));
}

TEST(LintSuppressions, WrongTokenDoesNotSuppressOtherRules) {
  const std::string src =
      "// lint: getenv-ok(wrong rule for a clock read)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  const auto findings = lint_one("src/x.cpp", src);
  EXPECT_TRUE(has_rule(findings, "D1"));   // still fires
  EXPECT_TRUE(has_rule(findings, "LINT"));  // and the annotation is unused
}

// --------------------------------------------------------------- allowlist --

TEST(LintAllowlist, EntrySuppressesAndUnusedEntryIsAnError) {
  std::vector<SourceFile> files{
      {"src/x.cpp", "const char* v = std::getenv(\"HOME\");\n"}};
  std::vector<Finding> parse_errors;
  std::vector<AllowlistEntry> allowlist = parse_allowlist(
      "# comment line\n"
      "\n"
      "D5 src/x.cpp legacy read, migration tracked elsewhere\n"
      "D1 src/never.cpp stale entry that matches nothing\n",
      "allowlist", parse_errors);
  EXPECT_TRUE(parse_errors.empty());
  ASSERT_EQ(allowlist.size(), 2u);

  const auto findings = run_lint(files, allowlist);
  EXPECT_FALSE(has_rule(findings, "D5"));  // suppressed by the first entry
  EXPECT_TRUE(allowlist[0].used);
  EXPECT_FALSE(allowlist[1].used);
  ASSERT_EQ(count_rule(findings, "LINT"), 1u);  // the stale entry is reported
  EXPECT_NE(findings.back().message.find("unused allowlist entry"), std::string::npos);
}

TEST(LintAllowlist, MalformedEntriesAreParseErrors) {
  std::vector<Finding> errors;
  const auto entries = parse_allowlist(
      "D9 src/x.cpp unknown rule id\n"
      "D5\n"
      "D5 src/x.cpp\n",
      "allowlist", errors);
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(errors.size(), 3u);
}

// ------------------------------------------------------------ diagnostics --

TEST(LintOutput, FormatIsFileLineRuleMessage) {
  const auto findings = lint_one("src/sim/x.cpp", "float f;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(format(findings[0]).rfind("src/sim/x.cpp:1: D4: ", 0), 0u);
}

TEST(LintOutput, FindingsAreSortedByFileThenLine) {
  std::vector<SourceFile> files{
      {"src/b.cpp", "auto t = time(nullptr);\nauto u = time(nullptr);\n"},
      {"src/a.cpp", "auto t = time(nullptr);\n"},
  };
  const auto findings = lint_many(std::move(files));
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/a.cpp");
  EXPECT_EQ(findings[1].file, "src/b.cpp");
  EXPECT_EQ(findings[1].line, 1u);
  EXPECT_EQ(findings[2].line, 2u);
}

// ------------------------------------------------------------------- D6 --

TEST(LintD6, FiresOnCapturedWriteThatIsNotASlotWrite) {
  const std::string src =
      "void sweep() {\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    best = evaluate(k);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D6"));
}

TEST(LintD6, FiresWhenSlotIndexDoesNotDeriveFromTheItemParameter) {
  const std::string src =
      "void sweep() {\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    out[cursor] = evaluate(k);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D6"));
}

TEST(LintD6, QuietOnSanctionedSlotWritesIncludingDerivedLocals) {
  const std::string src =
      "void sweep() {\n"
      "  parallel_items(n, [&](std::size_t k, const Scenario& cell) {\n"
      "    const std::size_t row = cell.index * stride + k;\n"
      "    out[row] = evaluate(cell);\n"
      "    double acc = 0.0;\n"
      "    acc += weigh(cell);\n"
      "    grid[k * 2 + 1] = acc;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", src).empty());
}

TEST(LintD6, ByValueCapturesAreSeedsAndAnnotationSuppresses) {
  const std::string by_value =
      "void sweep() {\n"
      "  pool.submit([&out, base](std::size_t k) { out[base + k] = 1.0; });\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", by_value).empty());

  const std::string annotated =
      "void sweep() {\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    // lint: slot-write-ok(guarded by the per-chunk mutex two lines up)\n"
      "    best = evaluate(k);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", annotated).empty());
}

// ------------------------------------------------------------------- D7 --

TEST(LintD7, FiresOnAccumulationIntoCapturedVariable) {
  const std::string src =
      "void sweep() {\n"
      "  double total = 0.0;\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    total += evaluate(k);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D7"));
}

TEST(LintD7, FiresOnSelfAssignmentFoldForm) {
  const std::string src =
      "void sweep() {\n"
      "  parallel_for(pool, 0, n, [&](std::size_t i) {\n"
      "    acc = acc + weigh(i);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D7"));
}

TEST(LintD7, FiresOnAccumulationOverUnorderedContainer) {
  const std::string src =
      "std::unordered_map<int, double> cells_;\n"
      "double total() {\n"
      "  double sum = 0.0;\n"
      "  for (const auto& [id, value] : cells_) sum += value;\n"
      "  return sum;\n"
      "}\n";
  // D2 flags the iteration itself; D7 flags the order-sensitive fold.
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D7"));
}

TEST(LintD7, QuietOnOrderedFoldAnnotationAndPerSlotWrites) {
  const std::string annotated =
      "void sweep() {\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    // lint: ordered-fold-ok(integer event counter; addition commutes)\n"
      "    events += count(k);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", annotated).empty());

  const std::string slots =
      "void sweep() {\n"
      "  parallel_items(n, [&](std::size_t k) { partial[k] = evaluate(k); });\n"
      "  double total = 0.0;\n"
      "  for (double p : partial) total += p;\n"  // serial fold: fine
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", slots).empty());
}

// ------------------------------------------------------------------- D8 --

TEST(LintD8, FiresOnRawLockAndUnlock) {
  const std::string src =
      "void f() {\n"
      "  mutex_.lock();\n"
      "  state_ = 1;\n"
      "  mutex_.unlock();\n"
      "}\n";
  EXPECT_EQ(count_rule(lint_one("src/x.cpp", src), "D8"), 2u);
}

TEST(LintD8, QuietOnRaiiGuardsAndTryLock) {
  const std::string src =
      "void f() {\n"
      "  std::lock_guard<std::mutex> guard(mutex_);\n"
      "  std::scoped_lock all(a_, b_);\n"
      "  if (mutex_.try_lock()) { mutex_.unlock(); }\n"
      "}\n";
  // try_lock is fine; the paired unlock still needs its reason.
  EXPECT_EQ(count_rule(lint_one("src/x.cpp", src), "D8"), 1u);
}

// ---------------------------------------------------------- architecture --

LintOutput lint_arch(std::vector<SourceFile> files, std::string layers = "") {
  std::vector<AllowlistEntry> allowlist;
  LintConfig config;
  config.layers_text = std::move(layers);
  return run_lint_full(files, allowlist, config);
}

constexpr const char* kLayers = "util:\nrunner: util\n";

TEST(LintA1, UpwardDependencyFiresAndDeclaredDependencyIsQuiet) {
  std::vector<SourceFile> files{
      {"src/util/u.hpp", "#pragma once\nint util_helper();\n"},
      {"src/runner/r.hpp",
       "#pragma once\n#include \"util/u.hpp\"\nint runner_uses() { return util_helper(); }\n"},
      {"src/util/bad.hpp",
       "#pragma once\n#include \"runner/r.hpp\"\nint up() { return runner_uses(); }\n"},
  };
  const LintOutput out = lint_arch(files, kLayers);
  ASSERT_EQ(count_rule(out.findings, "A1"), 1u);
  const auto found = std::find_if(out.findings.begin(), out.findings.end(),
                                  [](const Finding& f) { return f.rule == "A1"; });
  EXPECT_EQ(found->file, "src/util/bad.hpp");
  EXPECT_NE(found->message.find("src/runner/r.hpp"), std::string::npos);

  files.pop_back();  // drop the upward include: the declared edge is fine
  EXPECT_FALSE(has_rule(lint_arch(files, kLayers).findings, "A1"));
}

TEST(LintA1, UndeclaredModuleIsALintErrorAndNoLayersDisablesA1) {
  std::vector<SourceFile> files{
      {"src/store/s.hpp", "#pragma once\nint store_thing();\n"},
  };
  EXPECT_TRUE(has_rule(lint_arch(files, kLayers).findings, "LINT"));
  EXPECT_TRUE(lint_arch(files, "").findings.empty());  // unconfigured: no gate
}

TEST(LintA1, TransitiveClosureIsAdmitted) {
  const std::string layers = "util:\nsim: util\nrunner: sim\n";
  std::vector<SourceFile> files{
      {"src/util/u.hpp", "#pragma once\nint util_helper();\n"},
      {"src/sim/s.hpp", "#pragma once\n#include \"util/u.hpp\"\nint sim_u() { return util_helper(); }\n"},
      {"src/runner/r.hpp",
       "#pragma once\n#include \"util/u.hpp\"\nint r() { return util_helper(); }\n"},
  };
  // runner -> util is not a *direct* declaration, but reachable via sim.
  EXPECT_FALSE(has_rule(lint_arch(files, layers).findings, "A1"));
}

TEST(LintA2, IncludeCycleReportedOnceWithCanonicalPath) {
  std::vector<SourceFile> files{
      {"src/util/a.hpp", "#pragma once\n#include \"util/b.hpp\"\nint a_thing();\n"},
      {"src/util/b.hpp", "#pragma once\n#include \"util/a.hpp\"\nint b_thing();\n"},
  };
  const LintOutput out = lint_arch(files);
  ASSERT_EQ(count_rule(out.findings, "A2"), 1u);
  const auto found = std::find_if(out.findings.begin(), out.findings.end(),
                                  [](const Finding& f) { return f.rule == "A2"; });
  EXPECT_EQ(found->file, "src/util/a.hpp");  // lexicographically smallest
  EXPECT_NE(found->message.find("src/util/a.hpp -> src/util/b.hpp -> src/util/a.hpp"),
            std::string::npos);
}

TEST(LintA3, SrcMayNotIncludeFromHarnessTrees) {
  std::vector<SourceFile> files{
      {"src/util/x.cpp", "#include \"tests/helpers.hpp\"\nint x;\n"},
  };
  EXPECT_TRUE(has_rule(lint_arch(files).findings, "A3"));
}

TEST(LintA4, UnusedIncludeFiresWithRemovalEditAndUsedIncludeIsQuiet) {
  std::vector<SourceFile> files{
      {"src/util/leaf.hpp", "#pragma once\nstruct LeafThing { int v; };\n"},
      {"src/util/user.cpp", "#include \"util/leaf.hpp\"\nint unrelated() { return 3; }\n"},
  };
  const LintOutput unused = lint_arch(files);
  ASSERT_EQ(count_rule(unused.findings, "A4"), 1u);
  ASSERT_EQ(unused.edits.size(), 1u);
  EXPECT_TRUE(unused.edits[0].remove);
  EXPECT_EQ(unused.edits[0].file, "src/util/user.cpp");
  EXPECT_EQ(unused.edits[0].line, 1u);

  files[1].content = "#include \"util/leaf.hpp\"\nLeafThing make() { return {}; }\n";
  EXPECT_FALSE(has_rule(lint_arch(files).findings, "A4"));
}

TEST(LintA4, CompanionHeaderIsNeverAnUnusedInclude) {
  std::vector<SourceFile> files{
      {"src/util/thing.hpp", "#pragma once\nstruct OtherName { int v; };\n"},
      {"src/util/thing.cpp", "#include \"util/thing.hpp\"\nint impl() { return 1; }\n"},
  };
  EXPECT_FALSE(has_rule(lint_arch(files).findings, "A4"));
}

TEST(LintA5, TransitiveOnlyIncludeFiresWithChainAndInsertionEdit) {
  std::vector<SourceFile> files{
      {"src/util/leaf.hpp", "#pragma once\nstruct LeafThing { int v; };\n"},
      {"src/util/mid.hpp",
       "#pragma once\n#include \"util/leaf.hpp\"\nLeafThing wrap();\n"},
      {"src/util/top.cpp",
       "#include \"util/mid.hpp\"\nLeafThing direct_use() { return wrap(); }\n"},
  };
  const LintOutput out = lint_arch(files);
  ASSERT_EQ(count_rule(out.findings, "A5"), 1u);
  const auto found = std::find_if(out.findings.begin(), out.findings.end(),
                                  [](const Finding& f) { return f.rule == "A5"; });
  EXPECT_EQ(found->file, "src/util/top.cpp");
  EXPECT_NE(found->message.find("`LeafThing`"), std::string::npos);
  EXPECT_NE(found->message.find(
                "src/util/top.cpp -> src/util/mid.hpp -> src/util/leaf.hpp"),
            std::string::npos);
  ASSERT_EQ(out.edits.size(), 1u);
  EXPECT_FALSE(out.edits[0].remove);
  EXPECT_EQ(out.edits[0].text, "#include \"util/leaf.hpp\"");

  // Including the exporter directly resolves it.
  files[2].content =
      "#include \"util/leaf.hpp\"\n#include \"util/mid.hpp\"\n"
      "LeafThing direct_use() { return wrap(); }\n";
  EXPECT_FALSE(has_rule(lint_arch(files).findings, "A5"));
}

TEST(LintA5, CompanionHeaderChainIsExempt) {
  std::vector<SourceFile> files{
      {"src/util/leaf.hpp", "#pragma once\nstruct LeafThing { int v; };\n"},
      {"src/util/top.hpp",
       "#pragma once\n#include \"util/leaf.hpp\"\nLeafThing top_make();\n"},
      {"src/util/top.cpp",
       "#include \"util/top.hpp\"\nLeafThing top_make() { return {}; }\n"},
  };
  // top.cpp reaches LeafThing through its own companion header: that is the
  // declared interface, not a hidden transitive dependency.
  EXPECT_FALSE(has_rule(lint_arch(files).findings, "A5"));
}

TEST(LintArch, ModuleGraphDotListsObservedEdges) {
  std::vector<SourceFile> files{
      {"src/util/u.hpp", "#pragma once\nint util_helper();\n"},
      {"src/runner/r.hpp",
       "#pragma once\n#include \"util/u.hpp\"\nint r() { return util_helper(); }\n"},
  };
  const LintOutput out = lint_arch(files, kLayers);
  EXPECT_NE(out.module_graph_dot.find("\"runner\" -> \"util\""), std::string::npos);
}

TEST(LintLayers, MalformedUnknownDepAndCycleAreLintErrors) {
  std::vector<SourceFile> none;
  EXPECT_TRUE(has_rule(lint_arch(none, "not a layers line\n").findings, "LINT"));
  EXPECT_TRUE(has_rule(lint_arch(none, "util: ghost\n").findings, "LINT"));
  EXPECT_TRUE(
      has_rule(lint_arch(none, "a: b\nb: a\n").findings, "LINT"));  // declared cycle
  EXPECT_TRUE(lint_arch(none, "util:\nrunner: util\n").findings.empty());
}

// ------------------------------------------------------- engine options --

TEST(LintConfigTest, RuleFilterRunsOnlySelectedRules) {
  const std::string src = "auto t = time(nullptr);\nauto e = getenv(\"X\");\n";
  std::vector<SourceFile> files{{"src/x.cpp", src}};
  std::vector<AllowlistEntry> allowlist;
  LintConfig config;
  config.rules = {"D1"};
  const LintOutput out = run_lint_full(files, allowlist, config);
  EXPECT_TRUE(has_rule(out.findings, "D1"));
  EXPECT_FALSE(has_rule(out.findings, "D5"));
}

TEST(LintConfigTest, SuppressionForDisabledRuleIsNotCondemned) {
  const std::string src =
      "// lint: getenv-ok(read-only diagnostic toggle)\n"
      "auto e = getenv(\"X\");\n"
      "auto t = time(nullptr);\n";
  std::vector<SourceFile> files{{"src/x.cpp", src}};
  std::vector<AllowlistEntry> allowlist;
  LintConfig config;
  config.rules = {"D1"};
  const LintOutput out = run_lint_full(files, allowlist, config);
  // Only the D1 finding: the getenv-ok annotation is outside this run's
  // scope, neither used nor condemned as unused.
  ASSERT_EQ(out.findings.size(), 1u);
  EXPECT_EQ(out.findings[0].rule, "D1");
}

TEST(LintRules, CatalogCoversEveryRuleWithUniqueTokens) {
  std::set<std::string> ids;
  std::set<std::string> tokens;
  for (const RuleInfo& rule : rules()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << rule.id;
    EXPECT_TRUE(tokens.insert(rule.token).second) << rule.token;
    EXPECT_FALSE(rule.summary.empty());
  }
  for (const char* id : {"D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "H1", "A1",
                         "A2", "A3", "A4", "A5"}) {
    EXPECT_EQ(ids.count(id), 1u) << id;
  }
}

// ------------------------------------------------------------- reporting --

TEST(LintReport, JsonCarriesEveryFindingField) {
  const auto findings = lint_one("src/sim/x.cpp", "float f;\n");
  const std::string json = to_json(findings);
  EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/sim/x.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"D4\""), std::string::npos);
  EXPECT_EQ(to_json({}).find("{\"findings\": []}"), 0u);
}

TEST(LintReport, SarifHasSchemaRunsRulesAndResults) {
  const auto findings = lint_one("src/sim/x.cpp", "float f;\n");
  const std::string sarif = to_sarif(findings);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"carbonedge_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"D4\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/sim/x.cpp\""), std::string::npos);
  // The driver advertises its whole rule catalog even when nothing fires.
  EXPECT_NE(to_sarif({}).find("\"id\": \"A1\""), std::string::npos);
}

TEST(LintReport, BaselineFiltersKnownFindingsButKeepsNewOnes) {
  const auto old_findings = lint_one("src/sim/x.cpp", "float f;\n");
  const std::set<std::string> baseline = parse_baseline(write_baseline(old_findings));
  EXPECT_TRUE(filter_baseline(old_findings, baseline).empty());

  // Same rule, same message, different line: still baselined (line-free keys
  // survive unrelated edits shifting the file).
  const auto shifted = lint_one("src/sim/x.cpp", "\n\nfloat f;\n");
  EXPECT_TRUE(filter_baseline(shifted, baseline).empty());

  const auto new_findings = lint_one("src/sim/x.cpp", "float f;\nauto t = time(nullptr);\n");
  const auto fresh = filter_baseline(new_findings, baseline);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].rule, "D1");
}

TEST(LintReport, UnifiedDiffRendersRemovalsAndInsertions) {
  std::vector<SourceFile> files{
      {"src/util/user.cpp", "#include \"util/leaf.hpp\"\nint unrelated() { return 3; }\n"},
  };
  std::vector<IncludeEdit> edits{
      {"src/util/user.cpp", 1, true, "A4", ""},
      {"src/util/user.cpp", 2, false, "A5", "#include \"util/other.hpp\""},
  };
  const std::string diff = to_unified_diff(edits, files);
  EXPECT_NE(diff.find("--- src/util/user.cpp"), std::string::npos);
  EXPECT_NE(diff.find("-#include \"util/leaf.hpp\""), std::string::npos);
  EXPECT_NE(diff.find("+#include \"util/other.hpp\""), std::string::npos);
}

}  // namespace
}  // namespace carbonedge::lint
