// Golden-snippet tests for carbonedge_lint: every rule must both fire on
// its target construct and stay quiet on the determinism-safe spelling —
// including that matches inside comments, string literals, and raw strings
// never false-positive, and that the suppression machinery (annotations +
// allowlist) is itself validated (unused suppressions are errors).
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace carbonedge::lint {
namespace {

std::vector<Finding> lint_one(const std::string& path, const std::string& content) {
  std::vector<SourceFile> files{{path, content}};
  std::vector<AllowlistEntry> allowlist;
  return run_lint(files, allowlist);
}

std::vector<Finding> lint_many(std::vector<SourceFile> files) {
  std::vector<AllowlistEntry> allowlist;
  return run_lint(files, allowlist);
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

// ----------------------------------------------------------------- lexer --

TEST(LintLexer, BlanksCommentsAndLiteralsButKeepsLineStructure) {
  const std::string src =
      "int a; // std::rand()\n"
      "/* std::rand()\n   spans lines */ int b;\n"
      "const char* s = \"std::rand()\";\n";
  const std::string stripped = strip_comments_and_literals(src);
  EXPECT_EQ(stripped.size(), src.size());
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintLexer, RawStringsAreBlanked) {
  const std::string src = "auto s = R\"(std::rand() time(nullptr))\"; int ok;\n";
  const std::string stripped = strip_comments_and_literals(src);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int ok;"), std::string::npos);
}

TEST(LintLexer, RawStringWithDelimiterAndEmbeddedQuote) {
  const std::string src =
      "auto s = R\"x(quote \" and )\" inside)x\"; srand(7);\n";
  const std::string stripped = strip_comments_and_literals(src);
  // The fake terminator )" inside the delimited raw string must not end it:
  // the srand after the real terminator survives stripping.
  EXPECT_NE(stripped.find("srand(7)"), std::string::npos);
  EXPECT_EQ(stripped.find("quote"), std::string::npos);
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  const std::string src = "const int n = 1'000'000; std::rand();\n";
  EXPECT_NE(strip_comments_and_literals(src).find("rand"), std::string::npos);
}

// ------------------------------------------------------------------- D1 --

TEST(LintD1, FiresOnEveryBannedPrimitive) {
  const char* bad[] = {
      "int f() { return std::rand(); }\n",
      "#include <random>\nstd::random_device dev;\n",
      "auto t = std::chrono::steady_clock::now();\n",
      "auto t = std::chrono::system_clock::now();\n",
      "auto t = std::filesystem::file_time_type::clock::now();\n",
      "auto t = time(nullptr);\n",
      "auto t = time(NULL);\n",
      "auto id = std::this_thread::get_id();\n",
      "#include <map>\nstd::map<const int*, double> by_ptr;\n",
      "#include <set>\nstd::set<Widget*> live;\n",
  };
  for (const char* snippet : bad) {
    const auto findings = lint_one("src/x.cpp", snippet);
    EXPECT_TRUE(has_rule(findings, "D1")) << snippet;
  }
}

TEST(LintD1, QuietOnDeterministicSpellings) {
  const std::string src =
      "#include <map>\n"
      "util::Rng rng(config.seed);\n"
      "std::map<std::pair<std::size_t, int>, double> by_id;\n"
      "auto d = std::chrono::minutes(10);\n"
      "double remaining_time(int epochs);\n"  // 'time' as a plain identifier
      "auto v = remaining_time(3);\n";
  EXPECT_FALSE(has_rule(lint_one("src/x.cpp", src), "D1"));
}

TEST(LintD1, NeverFiresInsideCommentsOrStrings) {
  const std::string src =
      "// std::rand() and time(nullptr) and steady_clock::now()\n"
      "/* std::random_device across\n   lines */\n"
      "const char* s = \"std::rand() time(nullptr)\";\n"
      "const char* r = R\"(this_thread::get_id())\";\n"
      "int clean;\n";
  EXPECT_TRUE(lint_one("src/x.cpp", src).empty());
}

TEST(LintD1, SuppressedOnSameLineAndFromLineAbove) {
  const std::string same_line =
      "auto t0 = std::chrono::steady_clock::now();  // lint: nondeterminism-ok(telemetry only)\n";
  EXPECT_TRUE(lint_one("src/x.cpp", same_line).empty());
  const std::string line_above =
      "// lint: nondeterminism-ok(telemetry only)\n"
      "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_one("src/x.cpp", line_above).empty());
}

// ------------------------------------------------------------------- D2 --

TEST(LintD2, FiresOnRangeForAndBeginLoops) {
  const std::string range_for =
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> acc_;\n"
      "double total() { double t = 0; for (const auto& [k, v] : acc_) t += v; return t; }\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", range_for), "D2"));

  const std::string begin_loop =
      "#include <unordered_set>\n"
      "std::unordered_set<int> seen_;\n"
      "void f() { for (auto it = seen_.begin(); it != seen_.end(); ++it) {} }\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", begin_loop), "D2"));
}

TEST(LintD2, SeesMembersDeclaredInTheHeaderIteratedInTheCpp) {
  std::vector<SourceFile> files{
      {"src/cache.hpp",
       "#pragma once\n#include <unordered_map>\n"
       "struct Cache { std::unordered_map<int, int> entries_; };\n"},
      {"src/cache.cpp", "void dump(Cache& c) { for (const auto& [k, v] : c.entries_) {} }\n"},
  };
  const auto findings = lint_many(std::move(files));
  ASSERT_TRUE(has_rule(findings, "D2"));
  EXPECT_EQ(findings.front().file, "src/cache.cpp");
}

TEST(LintD2, QuietOnLookupsSnapshotsAndAnnotatedIteration) {
  const std::string lookups =
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> acc_;\n"
      "double g(int k) { return acc_.at(k); }\n"
      "bool h(int k) { return acc_.find(k) != acc_.end(); }\n";
  EXPECT_TRUE(lint_one("src/x.cpp", lookups).empty());

  const std::string snapshot_vector =
      "#include <vector>\n"
      "std::vector<int> snapshot_;\n"
      "void f() { for (int v : snapshot_) {} }\n";
  EXPECT_TRUE(lint_one("src/x.cpp", snapshot_vector).empty());

  const std::string annotated =
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> acc_;\n"
      "// lint: unordered-iteration-ok(coordinator-only snapshot build)\n"
      "void f() { for (const auto& [k, v] : acc_) {} }\n";
  EXPECT_TRUE(lint_one("src/x.cpp", annotated).empty());
}

// ------------------------------------------------------------------- D3 --

TEST(LintD3, FiresOnRngDrawInInlineParallelLambda) {
  const std::string src =
      "void step() {\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    slots_[k] = rng.bernoulli(0.5);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D3"));
}

TEST(LintD3, FiresOnSharedMutationViaNamedLambda) {
  const std::string src =
      "void sweep() {\n"
      "  const auto body = [&](std::size_t i) {\n"
      "    total_ += weigh(i);\n"
      "    log_.push_back(i);\n"
      "  };\n"
      "  util::parallel_for(pool, 0, n, body, 1);\n"
      "}\n";
  const auto findings = lint_one("src/x.cpp", src);
  EXPECT_EQ(count_rule(findings, "D3"), 2u);  // += and push_back
}

TEST(LintD3, QuietOnDisjointSlotWritesAndOutsideParallelSections) {
  const std::string disjoint =
      "void step() {\n"
      "  parallel_items(n, [&](std::size_t k) {\n"
      "    slots_[k] = compute(k);\n"
      "    local_sum[k] = slots_[k] * 2.0;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", disjoint).empty());

  const std::string serial =
      "void coordinator() {\n"
      "  total_ += rng.bernoulli(0.5);\n"  // fine: not a parallel section
      "  samples_.push_back(1);\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", serial).empty());
}

TEST(LintD3, FiresInSubmitLambdaAndHonorsAnnotation) {
  const std::string src =
      "void f() {\n"
      "  pool.submit([&] { counter_ += 1; });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_one("src/x.cpp", src), "D3"));

  const std::string annotated =
      "void f() {\n"
      "  // lint: parallel-state-ok(counter_ is atomic; relaxed telemetry only)\n"
      "  pool.submit([&] { counter_ += 1; });\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/x.cpp", annotated).empty());
}

// ------------------------------------------------------------------- D4 --

TEST(LintD4, FloatBannedOnlyInAccountingPaths) {
  const std::string src = "float share = 0.5f;\n";
  EXPECT_TRUE(has_rule(lint_one("src/sim/x.cpp", src), "D4"));
  EXPECT_TRUE(has_rule(lint_one("src/core/x.hpp", src), "D4"));
  EXPECT_FALSE(has_rule(lint_one("src/geo/x.cpp", src), "D4"));
  EXPECT_FALSE(has_rule(lint_one("bench/x.cpp", src), "D4"));
  // 'float' in comments/identifiers stays quiet.
  const std::string quiet =
      "// float-boundary drift\ndouble floating_share;\n";
  EXPECT_TRUE(lint_one("src/sim/x.cpp", quiet).empty());
}

// ------------------------------------------------------------------- D5 --

TEST(LintD5, GetenvFiresEverywhereIncludingStdQualified) {
  EXPECT_TRUE(has_rule(
      lint_one("src/x.cpp", "const char* v = std::getenv(\"HOME\");\n"), "D5"));
  EXPECT_TRUE(has_rule(lint_one("bench/x.cpp", "const char* v = getenv(\"HOME\");\n"), "D5"));
  // The shim's API is the clean spelling.
  EXPECT_TRUE(
      lint_one("src/x.cpp", "auto v = util::env::get_or(\"CARBONEDGE_THREADS\", \"\");\n")
          .empty());
}

// ------------------------------------------------------------------- H1 --

TEST(LintH1, HeaderHygiene) {
  EXPECT_TRUE(has_rule(lint_one("src/x.hpp", "int f();\n"), "H1"));  // no pragma once
  EXPECT_TRUE(has_rule(
      lint_one("src/x.hpp", "#pragma once\nusing namespace std;\n"), "H1"));
  EXPECT_TRUE(lint_one("src/x.hpp", "#pragma once\nint f();\n").empty());
  // .cpp files are exempt from both checks.
  EXPECT_TRUE(lint_one("src/x.cpp", "using namespace std;\nint f() { return 1; }\n").empty());
}

// ----------------------------------------------------- suppression audit --

TEST(LintSuppressions, UnusedAnnotationIsReported) {
  const std::string src =
      "// lint: nondeterminism-ok(stale reason, nothing here anymore)\n"
      "int clean;\n";
  const auto findings = lint_one("src/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "LINT");
  EXPECT_NE(findings[0].message.find("unused suppression"), std::string::npos);
}

TEST(LintSuppressions, MalformedAnnotationsAreReported) {
  for (const char* src : {
           "// lint: nondeterminism-ok\nint a = time(nullptr);\n",     // missing reason
           "// lint: nondeterminism-ok()\nint a = time(nullptr);\n",   // empty reason
           "// lint: no-such-token(reason)\nint a = time(nullptr);\n"  // unknown token
       }) {
    const auto findings = lint_one("src/x.cpp", src);
    EXPECT_TRUE(has_rule(findings, "LINT")) << src;
    EXPECT_TRUE(has_rule(findings, "D1")) << src;  // broken hatch suppresses nothing
  }
}

TEST(LintSuppressions, AnnotationInsideAStringLiteralIsNotAnAnnotation) {
  const std::string src =
      "const char* s = \"// lint: nondeterminism-ok(fake)\";\n"
      "auto t = time(nullptr);\n";
  const auto findings = lint_one("src/x.cpp", src);
  EXPECT_TRUE(has_rule(findings, "D1"));  // the fake annotation suppressed nothing
  EXPECT_FALSE(has_rule(findings, "LINT"));
}

TEST(LintSuppressions, WrongTokenDoesNotSuppressOtherRules) {
  const std::string src =
      "// lint: getenv-ok(wrong rule for a clock read)\n"
      "auto t = std::chrono::steady_clock::now();\n";
  const auto findings = lint_one("src/x.cpp", src);
  EXPECT_TRUE(has_rule(findings, "D1"));   // still fires
  EXPECT_TRUE(has_rule(findings, "LINT"));  // and the annotation is unused
}

// --------------------------------------------------------------- allowlist --

TEST(LintAllowlist, EntrySuppressesAndUnusedEntryIsAnError) {
  std::vector<SourceFile> files{
      {"src/x.cpp", "const char* v = std::getenv(\"HOME\");\n"}};
  std::vector<Finding> parse_errors;
  std::vector<AllowlistEntry> allowlist = parse_allowlist(
      "# comment line\n"
      "\n"
      "D5 src/x.cpp legacy read, migration tracked elsewhere\n"
      "D1 src/never.cpp stale entry that matches nothing\n",
      "allowlist", parse_errors);
  EXPECT_TRUE(parse_errors.empty());
  ASSERT_EQ(allowlist.size(), 2u);

  const auto findings = run_lint(files, allowlist);
  EXPECT_FALSE(has_rule(findings, "D5"));  // suppressed by the first entry
  EXPECT_TRUE(allowlist[0].used);
  EXPECT_FALSE(allowlist[1].used);
  ASSERT_EQ(count_rule(findings, "LINT"), 1u);  // the stale entry is reported
  EXPECT_NE(findings.back().message.find("unused allowlist entry"), std::string::npos);
}

TEST(LintAllowlist, MalformedEntriesAreParseErrors) {
  std::vector<Finding> errors;
  const auto entries = parse_allowlist(
      "D9 src/x.cpp unknown rule id\n"
      "D5\n"
      "D5 src/x.cpp\n",
      "allowlist", errors);
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(errors.size(), 3u);
}

// ------------------------------------------------------------ diagnostics --

TEST(LintOutput, FormatIsFileLineRuleMessage) {
  const auto findings = lint_one("src/sim/x.cpp", "float f;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(format(findings[0]).rfind("src/sim/x.cpp:1: D4: ", 0), 0u);
}

TEST(LintOutput, FindingsAreSortedByFileThenLine) {
  std::vector<SourceFile> files{
      {"src/b.cpp", "auto t = time(nullptr);\nauto u = time(nullptr);\n"},
      {"src/a.cpp", "auto t = time(nullptr);\n"},
  };
  const auto findings = lint_many(std::move(files));
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/a.cpp");
  EXPECT_EQ(findings[1].file, "src/b.cpp");
  EXPECT_EQ(findings[1].line, 1u);
  EXPECT_EQ(findings[2].line, 2u);
}

}  // namespace
}  // namespace carbonedge::lint
