#include "solver/assignment.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace carbonedge::solver {
namespace {

// Tiny helper: fully feasible 2-resource problem with unit demands.
AssignmentProblem simple_problem(std::size_t apps, std::size_t servers) {
  AssignmentProblem p(apps, servers, 1);
  for (std::size_t j = 0; j < servers; ++j) p.set_capacity(j, 0, static_cast<double>(apps));
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      p.set_cost(i, j, static_cast<double>(i + j));
      p.set_demand(i, j, 0, 1.0);
    }
  }
  return p;
}

TEST(AssignmentProblem, DefaultsAreInfeasibleCosts) {
  const AssignmentProblem p(2, 2, 1);
  EXPECT_FALSE(p.feasible_pair(0, 0));
  EXPECT_TRUE(p.initially_on(0));
}

TEST(Evaluate, ComputesCostAndPowerStates) {
  AssignmentProblem p = simple_problem(2, 2);
  p.set_initially_on(1, false);
  p.set_activation_cost(1, 10.0);
  const AssignmentSolution sol = evaluate(p, {0, 1});
  EXPECT_TRUE(sol.feasible);
  // cost(0,0)=0 + cost(1,1)=2 + activation(1)=10.
  EXPECT_DOUBLE_EQ(sol.total_cost, 12.0);
  EXPECT_TRUE(sol.powered_on[1]);
}

TEST(Evaluate, CountsUnassigned) {
  const AssignmentProblem p = simple_problem(3, 2);
  const AssignmentSolution sol = evaluate(p, {0, kUnassigned, 1});
  EXPECT_FALSE(sol.feasible);
  EXPECT_EQ(sol.unassigned_count, 1u);
}

TEST(Validate, RejectsCapacityViolation) {
  AssignmentProblem p = simple_problem(3, 1);
  p.set_capacity(0, 0, 2.0);  // only two unit slots
  AssignmentSolution sol = evaluate(p, {0, 0, 0});
  EXPECT_FALSE(sol.feasible);
  EXPECT_FALSE(validate(p, sol));
}

TEST(Validate, RejectsInfeasiblePairUse) {
  AssignmentProblem p = simple_problem(2, 2);
  p.set_cost(0, 1, kInfinity);  // latency-infeasible
  AssignmentSolution sol;
  sol.assignment = {1, 0};
  sol.powered_on = {1, 1};
  EXPECT_FALSE(validate(p, sol));
}

TEST(Validate, RejectsPoweredOffHosting) {
  AssignmentProblem p = simple_problem(1, 1);
  AssignmentSolution sol;
  sol.assignment = {0};
  sol.powered_on = {0};  // claims server off while hosting (Eq. 5)
  EXPECT_FALSE(validate(p, sol));
}

TEST(Validate, RejectsPoweringOffInitiallyOnServer) {
  AssignmentProblem p = simple_problem(1, 2);
  AssignmentSolution sol;
  sol.assignment = {0};
  sol.powered_on = {1, 0};  // server 1 initially on but reported off (Eq. 4)
  EXPECT_FALSE(validate(p, sol));
}

TEST(SolveExact, PicksCheapestFeasible) {
  AssignmentProblem p = simple_problem(2, 3);
  const AssignmentSolution sol = solve_exact(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.assignment[0], 0u);
  EXPECT_EQ(sol.assignment[1], 0u);  // costs i+j favor server 0
  EXPECT_DOUBLE_EQ(sol.total_cost, 0.0 + 1.0);
}

TEST(SolveExact, RespectsCapacity) {
  AssignmentProblem p = simple_problem(2, 2);
  p.set_capacity(0, 0, 1.0);
  const AssignmentSolution sol = solve_exact(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NE(sol.assignment[0], sol.assignment[1]);
}

TEST(SolveExact, WeighsActivationAgainstPlacement) {
  // Server 1 is cheaper per-app but off with a big activation cost: with one
  // app the optimizer stays on server 0; with three apps activation
  // amortizes and server 1 wins.
  const auto build = [](std::size_t apps) {
    AssignmentProblem p(apps, 2, 1);
    p.set_capacity(0, 0, 10.0);
    p.set_capacity(1, 0, 10.0);
    p.set_initially_on(1, false);
    p.set_activation_cost(1, 5.0);
    for (std::size_t i = 0; i < apps; ++i) {
      p.set_cost(i, 0, 4.0);
      p.set_cost(i, 1, 1.0);
      p.set_demand(i, 0, 0, 1.0);
      p.set_demand(i, 1, 0, 1.0);
    }
    return p;
  };
  const AssignmentSolution one = solve_exact(build(1));
  ASSERT_TRUE(one.feasible);
  EXPECT_EQ(one.assignment[0], 0u);  // 4 < 1 + 5
  const AssignmentSolution three = solve_exact(build(3));
  ASSERT_TRUE(three.feasible);
  for (const std::size_t j : three.assignment) EXPECT_EQ(j, 1u);  // 3+5 < 12
}

TEST(SolveExact, InfeasibleWhenAppHasNoServer) {
  AssignmentProblem p(1, 1, 1);  // cost left at infinity
  const AssignmentSolution sol = solve_exact(p);
  EXPECT_FALSE(sol.feasible);
  EXPECT_EQ(sol.unassigned_count, 1u);
}

TEST(SolveFlow, MatchesExactOnUnitSlotInstances) {
  AssignmentProblem p = simple_problem(4, 3);
  p.set_capacity(0, 0, 2.0);
  p.set_capacity(1, 0, 1.0);
  p.set_capacity(2, 0, 4.0);
  ASSERT_TRUE(p.is_unit_slot());
  const AssignmentSolution flow = solve_flow(p);
  const AssignmentSolution exact = solve_exact(p);
  ASSERT_TRUE(flow.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(flow.total_cost, exact.total_cost, 1e-9);
}

TEST(UnitSlotDetection, RejectsNonUnitDemand) {
  AssignmentProblem p = simple_problem(2, 2);
  p.set_demand(0, 1, 0, 2.0);
  EXPECT_FALSE(p.is_unit_slot());
}

TEST(UnitSlotDetection, RejectsFractionalCapacity) {
  AssignmentProblem p = simple_problem(2, 2);
  p.set_capacity(0, 0, 1.5);
  EXPECT_FALSE(p.is_unit_slot());
}

TEST(UnitSlotDetection, RejectsActivationCosts) {
  AssignmentProblem p = simple_problem(2, 2);
  p.set_initially_on(0, false);
  p.set_activation_cost(0, 1.0);
  EXPECT_FALSE(p.is_unit_slot());
}

TEST(SolveGreedy, FeasibleAndReasonable) {
  AssignmentProblem p = simple_problem(5, 3);
  const AssignmentSolution sol = solve_greedy(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_TRUE(validate(p, sol));
}

TEST(SolveGreedy, HandlesTightCapacities) {
  AssignmentProblem p = simple_problem(4, 4);
  for (std::size_t j = 0; j < 4; ++j) p.set_capacity(j, 0, 1.0);
  const AssignmentSolution sol = solve_greedy(p);
  ASSERT_TRUE(sol.feasible);
  // All four servers used exactly once.
  std::array<int, 4> used{};
  for (const std::size_t j : sol.assignment) ++used[j];
  for (const int u : used) EXPECT_EQ(u, 1);
}

TEST(LocalSearch, FixesGreedyMisstep) {
  // Construct an instance where a swap strictly improves: two apps with
  // opposite preferences on capacity-1 servers.
  AssignmentProblem p(2, 2, 1);
  p.set_capacity(0, 0, 1.0);
  p.set_capacity(1, 0, 1.0);
  p.set_cost(0, 0, 5.0);
  p.set_cost(0, 1, 1.0);
  p.set_cost(1, 0, 1.0);
  p.set_cost(1, 1, 5.0);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) p.set_demand(i, j, 0, 1.0);
  }
  AssignmentSolution sol = evaluate(p, {0, 1});  // the bad crossing, cost 10
  EXPECT_DOUBLE_EQ(sol.total_cost, 10.0);
  const std::size_t moves = improve_local_search(p, sol);
  EXPECT_GE(moves, 1u);
  EXPECT_DOUBLE_EQ(sol.total_cost, 2.0);
  EXPECT_TRUE(validate(p, sol));
}

TEST(SolveAuto, UsesFlowForUnitSlot) {
  AssignmentProblem p = simple_problem(3, 2);
  const AssignmentSolution sol = solve_auto(p);
  ASSERT_TRUE(sol.feasible);
  const AssignmentSolution exact = solve_exact(p);
  EXPECT_NEAR(sol.total_cost, exact.total_cost, 1e-9);
  EXPECT_EQ(sol.stats.flow_shards, 1u);
}

// Regression (fallback bug): solve_auto used to hand back the flow answer
// unconditionally on unit-slot instances. With an unplaceable app the whole
// solution came back infeasible-flagged without ever consulting the greedy
// + local-search fallback the exact path gets. The flow path must now fall
// back and return an answer that places every placeable app and is never
// worse than greedy + local search.
TEST(SolveAuto, FlowPathFallsBackWhenAppsComeBackUnassigned) {
  AssignmentProblem p = simple_problem(3, 2);
  p.set_capacity(0, 0, 1.0);
  p.set_capacity(1, 0, 1.0);
  p.set_cost(2, 0, kInfinity);  // app 2 has no feasible server at all
  p.set_cost(2, 1, kInfinity);
  ASSERT_TRUE(p.is_unit_slot());

  const AssignmentSolution sol = solve_auto(p);
  EXPECT_FALSE(sol.feasible);
  EXPECT_EQ(sol.unassigned_count, 1u);
  EXPECT_NE(sol.assignment[0], kUnassigned);  // placeable apps still land
  EXPECT_NE(sol.assignment[1], kUnassigned);
  EXPECT_EQ(sol.assignment[2], kUnassigned);

  // Never worse than the heuristic fallback it now consults.
  AssignmentSolution heuristic = solve_greedy(p);
  improve_local_search(p, heuristic);
  EXPECT_LE(sol.unassigned_count, heuristic.unassigned_count);
  if (sol.unassigned_count == heuristic.unassigned_count) {
    EXPECT_LE(sol.total_cost, heuristic.total_cost + 1e-9);
  }
}

// Regression (fallback bug): when B&B comes up with no incumbent at all
// (node budget exhausted before the first integer point, or a numerically
// stranded warm start — simulated here by rejecting every warm value via a
// hostile integrality tolerance on a zero-node budget), solve_exact used to
// discard the feasible greedy placement it had already computed and return
// an all-kUnassigned shell. It must return the greedy incumbent instead.
TEST(SolveExact, ReturnsGreedyIncumbentWhenSearchComesUpEmpty) {
  AssignmentProblem p = simple_problem(3, 2);
  MilpOptions starved;
  starved.max_nodes = 0;
  starved.integrality_tolerance = -1.0;
  const AssignmentSolution sol = solve_exact(p, starved);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.unassigned_count, 0u);
  EXPECT_TRUE(validate(p, sol));
  // The answer is the heuristic incumbent, not a proven optimum.
  EXPECT_EQ(sol.stats.heuristic_shards, 1u);
  EXPECT_EQ(sol.stats.exact_shards, 0u);
}

// Property suite: random multi-resource instances — exact is never worse
// than greedy+LS, both are valid, flow agrees on unit-slot restrictions.
class RandomAssignment : public ::testing::TestWithParam<int> {};

TEST_P(RandomAssignment, SolverHierarchyHolds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271828 + 7);
  const std::size_t apps = 2 + rng.uniform_index(5);
  const std::size_t servers = 2 + rng.uniform_index(3);
  AssignmentProblem p(apps, servers, 2);
  for (std::size_t j = 0; j < servers; ++j) {
    p.set_capacity(j, 0, rng.uniform(2.0, 8.0));
    p.set_capacity(j, 1, rng.uniform(2.0, 8.0));
    if (rng.bernoulli(0.3)) {
      p.set_initially_on(j, false);
      p.set_activation_cost(j, rng.uniform(0.0, 5.0));
    }
  }
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      if (rng.bernoulli(0.15)) continue;  // latency-infeasible pair
      p.set_cost(i, j, rng.uniform(0.0, 10.0));
      p.set_demand(i, j, 0, rng.uniform(0.3, 1.5));
      p.set_demand(i, j, 1, rng.uniform(0.3, 1.5));
    }
  }

  const AssignmentSolution exact = solve_exact(p);
  AssignmentSolution heuristic = solve_greedy(p);
  improve_local_search(p, heuristic);

  if (exact.feasible) {
    EXPECT_TRUE(validate(p, exact));
    if (heuristic.feasible) {
      EXPECT_LE(exact.total_cost, heuristic.total_cost + 1e-6) << "seed " << GetParam();
    }
  } else {
    // If the exact solver proves infeasibility the heuristic cannot find a
    // valid full assignment either.
    EXPECT_FALSE(heuristic.feasible) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomAssignment, ::testing::Range(0, 60));

}  // namespace
}  // namespace carbonedge::solver
