// The serving mode's differential oracle: an epoch-aligned replay of a
// synthesized workload through serve::EventLoop must reproduce
// EdgeSimulation::run bit for bit — same placements, same counters, same
// floating-point totals — because both drivers run the one extracted
// core::SimulationEngine epoch body. Any drift between the streaming and
// batch paths is a bug in one of them.
#include "serve/event_loop.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace carbonedge::serve {
namespace {

core::SimulationConfig replay_config(std::uint32_t epochs, std::uint64_t seed) {
  // Every engine feature the epoch body shards: deferral, fixed-cadence
  // cost-aware re-optimization, and failure injection.
  core::SimulationConfig config;
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = epochs;
  config.workload.arrivals_per_site = 1.0;
  config.workload.mean_lifetime_epochs = 12.0;
  config.workload.max_defer_epochs = 6;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.seed = seed;
  config.reoptimize_every = 16;
  config.migration.cost_aware = true;
  config.failures.mtbf_epochs = 120.0;
  return config;
}

// EXPECT_EQ on doubles deliberately: the oracle demands bitwise equality,
// not tolerance — both paths must execute the identical arithmetic.
void expect_identical(const core::SimulationResult& batch,
                      const core::SimulationResult& replay) {
  EXPECT_EQ(batch.apps_placed, replay.apps_placed);
  EXPECT_EQ(batch.apps_rejected, replay.apps_rejected);
  EXPECT_EQ(batch.migrations, replay.migrations);
  EXPECT_EQ(batch.migrations_skipped, replay.migrations_skipped);
  EXPECT_EQ(batch.migration_energy_wh, replay.migration_energy_wh);
  EXPECT_EQ(batch.migration_carbon_g, replay.migration_carbon_g);
  EXPECT_EQ(batch.server_failures, replay.server_failures);
  EXPECT_EQ(batch.apps_redeployed, replay.apps_redeployed);
  EXPECT_EQ(batch.apps_deferred, replay.apps_deferred);
  EXPECT_EQ(batch.apps_expired_deferred, replay.apps_expired_deferred);
  EXPECT_EQ(batch.app_downtime_epochs, replay.app_downtime_epochs);

  EXPECT_EQ(batch.telemetry.total_carbon_g(), replay.telemetry.total_carbon_g());
  EXPECT_EQ(batch.telemetry.total_energy_wh(), replay.telemetry.total_energy_wh());
  EXPECT_EQ(batch.telemetry.mean_rtt_ms(), replay.telemetry.mean_rtt_ms());
  EXPECT_EQ(batch.telemetry.mean_response_ms(), replay.telemetry.mean_response_ms());
  EXPECT_EQ(batch.telemetry.total_placed(), replay.telemetry.total_placed());
  EXPECT_EQ(batch.telemetry.total_rejected(), replay.telemetry.total_rejected());
  EXPECT_EQ(batch.telemetry.response_percentile(50.0),
            replay.telemetry.response_percentile(50.0));
  EXPECT_EQ(batch.telemetry.response_percentile(99.0),
            replay.telemetry.response_percentile(99.0));

  ASSERT_EQ(batch.telemetry.size(), replay.telemetry.size());
  for (std::size_t e = 0; e < batch.telemetry.size(); ++e) {
    const sim::EpochRecord& b = batch.telemetry.epochs()[e];
    const sim::EpochRecord& r = replay.telemetry.epochs()[e];
    EXPECT_EQ(b.energy_wh(), r.energy_wh()) << "epoch " << e;
    EXPECT_EQ(b.carbon_g(), r.carbon_g()) << "epoch " << e;
    EXPECT_EQ(b.rps_total, r.rps_total) << "epoch " << e;
    EXPECT_EQ(b.rtt_weighted_sum_ms, r.rtt_weighted_sum_ms) << "epoch " << e;
    EXPECT_EQ(b.apps_placed, r.apps_placed) << "epoch " << e;
    EXPECT_EQ(b.apps_rejected, r.apps_rejected) << "epoch " << e;
    EXPECT_EQ(b.migrations, r.migrations) << "epoch " << e;
    EXPECT_EQ(b.failures, r.failures) << "epoch " << e;
  }
}

core::SimulationResult replay_through_serve(core::EdgeSimulation& simulation,
                                            const core::SimulationConfig& config,
                                            ServeResult* full = nullptr) {
  TraceReplaySource source(config.workload, simulation.pristine_cluster(), config.epochs,
                           config.epoch_hours);
  ServeConfig serve_config;
  serve_config.sim = config;
  serve_config.window_epochs = 8;
  EventLoop loop(simulation, serve_config);
  ServeResult result = loop.run(source);
  if (full != nullptr) *full = result;
  return std::move(result.sim);
}

TEST(ServeReplay, MatchesBatchEngineBitForBit) {
  const geo::Region region = geo::florida_region();
  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);

  const core::SimulationConfig config = replay_config(/*epochs=*/40, /*seed=*/1234);
  const core::SimulationResult batch = simulation.run(config);

  ServeResult full;
  const core::SimulationResult replay = replay_through_serve(simulation, config, &full);
  expect_identical(batch, replay);

  // An epoch-aligned replay loses nothing on the way in. (apps_placed is
  // not comparable to the arrival count: it also counts re-placements of
  // displaced applications.)
  EXPECT_EQ(full.ingest.dropped(), 0u);
  EXPECT_EQ(full.ingest.clamped_stale, 0u);

  // Window accounting reconciles with the run: every epoch lands in exactly
  // one window (40 epochs in windows of 8), and the per-window placement
  // counters sum to the run totals.
  ASSERT_EQ(full.windows.size(), 5u);
  std::uint64_t window_placed = 0;
  std::uint64_t window_arrivals = 0;
  for (const WindowStats& w : full.windows) {
    EXPECT_EQ(w.epochs, 8u);
    window_placed += w.apps_placed;
    window_arrivals += w.arrivals;
  }
  EXPECT_EQ(window_placed, batch.apps_placed);
  EXPECT_EQ(window_arrivals, full.ingest.accepted);
}

TEST(ServeReplay, TenRandomizedSeedsStayIdentical) {
  const geo::Region region = geo::florida_region();
  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const core::SimulationConfig config = replay_config(/*epochs=*/48, seed);
    const core::SimulationResult batch = simulation.run(config);
    const core::SimulationResult replay = replay_through_serve(simulation, config);
    expect_identical(batch, replay);
  }
}

TEST(ServeReplay, WindowSinkNeverPerturbsRunAccounting) {
  // Running the serve loop with windowed telemetry attached must not change
  // the engine's run-level histogram: compare the replay's percentiles
  // against a second batch run (the sink is serve-only machinery).
  const geo::Region region = geo::florida_region();
  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);

  const core::SimulationConfig config = replay_config(/*epochs=*/24, /*seed=*/7);
  const core::SimulationResult batch = simulation.run(config);
  ServeResult full;
  (void)replay_through_serve(simulation, config, &full);
  EXPECT_EQ(batch.telemetry.response_percentile(95.0),
            full.sim.telemetry.response_percentile(95.0));
  // And the per-window tails are populated from the same sample stream.
  bool any_tail = false;
  for (const WindowStats& w : full.windows) {
    if (w.p99_response_ms > 0.0) any_tail = true;
    EXPECT_GE(w.p99_response_ms, w.p50_response_ms);
  }
  EXPECT_TRUE(any_tail);
}

}  // namespace
}  // namespace carbonedge::serve
