// The observability layer: registry semantics (register-once handles, kind
// safety), concurrency exactness (the TSan hammer — counters and histograms
// must lose no increments), span math under a fake clock, exporter goldens,
// the deterministic/timing view split, and the end-to-end contract the CI
// gate enforces: the deterministic view's per-run deltas are identical no
// matter how many worker lanes execute the workload.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "runner/scenario_grid.hpp"
#include "runner/scenario_runner.hpp"

namespace carbonedge::obs {
namespace {

// ---------------------------------------------------------------- registry --

TEST(Registry, RegisterOnceReturnsTheSameHandle) {
  Registry reg;
  Counter& a = reg.counter("x.calls", "first registration wins", View::kDeterministic);
  Counter& b = reg.counter("x.calls", "ignored on re-registration", View::kTiming);
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);

  // The recorded help/view are the first call's.
  reg.visit([](const MetricRef& m) {
    EXPECT_EQ(m.help, "first registration wins");
    EXPECT_EQ(m.view, View::kDeterministic);
  });
}

TEST(Registry, KindMismatchThrowsInsteadOfAliasing) {
  Registry reg;
  (void)reg.counter("dual", "a counter", View::kDeterministic);
  EXPECT_THROW((void)reg.gauge("dual", "now a gauge?", View::kDeterministic),
               std::logic_error);
  EXPECT_THROW(
      (void)reg.histogram("dual", "now a histogram?", View::kDeterministic, {1.0}),
      std::logic_error);
}

TEST(Registry, HistogramBoundsMustBeStrictlyIncreasingAndStable) {
  Registry reg;
  EXPECT_THROW((void)reg.histogram("h.empty", "", View::kTiming, {}), std::logic_error);
  EXPECT_THROW((void)reg.histogram("h.dup", "", View::kTiming, {1.0, 1.0}),
               std::logic_error);
  Histogram& h = reg.histogram("h.ok", "", View::kTiming, {1.0, 2.0});
  // Re-registration with different bounds would silently split the series.
  EXPECT_THROW((void)reg.histogram("h.ok", "", View::kTiming, {1.0, 3.0}),
               std::logic_error);
  EXPECT_EQ(&h, &reg.histogram("h.ok", "", View::kTiming, {1.0, 2.0}));
}

TEST(Registry, VisitEnumeratesInNameOrder) {
  Registry reg;
  (void)reg.counter("zebra", "", View::kDeterministic);
  (void)reg.counter("alpha", "", View::kDeterministic);
  (void)reg.gauge("mid", "", View::kTiming);
  std::vector<std::string> names;
  reg.visit([&](const MetricRef& m) { names.emplace_back(m.name); });
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST(Histogram, ObserveUsesLeSemanticsWithOverflowBucket) {
  Registry reg;
  Histogram& h = reg.histogram("le", "", View::kDeterministic, {1.0, 4.0, 16.0});
  for (const double v : {0.5, 1.0, 2.0, 4.0, 5.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.bucket(0), 2u);  // 0.5, 1.0 (le: boundary lands low)
  EXPECT_EQ(h.bucket(1), 2u);  // 2.0, 4.0
  EXPECT_EQ(h.bucket(2), 1u);  // 5.0
  EXPECT_EQ(h.bucket(3), 1u);  // 100.0 overflows
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 112.5);
}

TEST(Gauge, SetMaxIsMonotoneAndAddAccumulates) {
  Registry reg;
  Gauge& g = reg.gauge("g", "", View::kTiming);
  g.set_max(3.0);
  g.set_max(1.0);  // lower value must not regress the max
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set(0.0);
  g.add(1.5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

// ------------------------------------------------------------- TSan hammer --

TEST(RegistryConcurrency, HammeredHandlesLoseNothing) {
  // 8 threads x 20k updates through cached handles; also hammers lazy
  // registration of the same names from every thread. Run under TSan this
  // is the data-race gate for the whole hot path; the sums must be exact
  // regardless.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      Counter& c = reg.counter("hammer.count", "", View::kDeterministic);
      Gauge& g = reg.gauge("hammer.peak", "", View::kTiming);
      Histogram& h =
          reg.histogram("hammer.hist", "", View::kDeterministic, {8.0, 64.0, 512.0});
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        g.set_max(static_cast<double>(t * 1000 + 1));
        h.observe(static_cast<double>(i % 1000));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  Counter& c = reg.counter("hammer.count", "", View::kDeterministic);
  Histogram& h = reg.histogram("hammer.hist", "", View::kDeterministic, {8.0, 64.0, 512.0});
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.bucket(0) + h.bucket(1) + h.bucket(2) + h.bucket(3), h.count());
  // Exact commutative sum: every thread observed the same integer multiset.
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread * 499.5);
  EXPECT_DOUBLE_EQ(reg.gauge("hammer.peak", "", View::kTiming).value(), 7001.0);
}

// -------------------------------------------------------- spans, fake clock --

class FakeClock : public ClockSource {
 public:
  std::uint64_t t = 0;
  [[nodiscard]] std::uint64_t now_ns() override { return t; }
};

/// Installs a fake process clock for the test's scope and restores the
/// previous source on exit, so neighboring tests keep real time.
class ScopedFakeClock {
 public:
  ScopedFakeClock() : previous_(exchange_clock_source(&clock_)) {}
  ~ScopedFakeClock() { exchange_clock_source(previous_); }
  FakeClock& clock() noexcept { return clock_; }

 private:
  FakeClock clock_;
  ClockSource* previous_;
};

TEST(SpanTest, NestedSpansSplitSelfAndTotalExactly) {
  ScopedFakeClock fake;
  Registry reg;
  const Phase outer("test.outer", reg);
  const Phase inner("test.inner", reg);
  {
    const Span o(outer);  // opens at t=0
    fake.clock().t = 100;
    {
      const Span i(inner);  // opens at t=100
      fake.clock().t = 400;
    }  // inner: total 300, self 300
    {
      const Span i2(inner);  // opens at t=400
      fake.clock().t = 600;
    }  // inner: +200 -> totals 500
    fake.clock().t = 1000;
  }  // outer: total 1000, self 1000 - 500

  EXPECT_EQ(outer.calls().value(), 1u);
  EXPECT_EQ(outer.total_ns().value(), 1000u);
  EXPECT_EQ(outer.self_ns().value(), 500u);
  EXPECT_EQ(inner.calls().value(), 2u);
  EXPECT_EQ(inner.total_ns().value(), 500u);
  EXPECT_EQ(inner.self_ns().value(), 500u);
}

TEST(SpanTest, BackwardsClockClampsToZeroInsteadOfWrapping) {
  ScopedFakeClock fake;
  Registry reg;
  const Phase phase("test.backwards", reg);
  fake.clock().t = 500;
  {
    const Span s(phase);
    fake.clock().t = 100;  // a (buggy or fake) source running backwards
  }
  EXPECT_EQ(phase.calls().value(), 1u);
  EXPECT_EQ(phase.total_ns().value(), 0u);  // clamped, not ~2^64
}

TEST(SpanTest, PhaseRegistersCallsDeterministicAndTimesTiming) {
  Registry reg;
  const Phase phase("test.views", reg);
  std::map<std::string, View> views;
  reg.visit([&](const MetricRef& m) { views.emplace(std::string(m.name), m.view); });
  EXPECT_EQ(views.at("span.test.views.calls"), View::kDeterministic);
  EXPECT_EQ(views.at("span.test.views.total_ns"), View::kTiming);
  EXPECT_EQ(views.at("span.test.views.self_ns"), View::kTiming);
}

// --------------------------------------------------------------- exporters --

TEST(Export, JsonSnapshotSplitsViewsAndDeterministicJsonDropsTiming) {
  Registry reg;
  reg.counter("det.count", "", View::kDeterministic).add(7);
  reg.counter("timing.ns", "", View::kTiming).add(12345);
  reg.histogram("det.hist", "", View::kDeterministic, {1.0, 2.0}).observe(1.5);

  const std::string full = snapshot_json(reg);
  EXPECT_EQ(full,
            R"({"deterministic":{"det.count":7,"det.hist":{"count":1,"sum":1.5,)"
            R"("buckets":[0,1,0],"bounds":[1,2]}},"timing":{"timing.ns":12345}})");

  const std::string det = deterministic_json(reg);
  EXPECT_EQ(det.find("timing.ns"), std::string::npos);
  // The same object, embedded right after the "deterministic" key.
  EXPECT_EQ(full.compare(17, det.size(), det), 0);
}

TEST(Export, PrometheusGoldenWithHostileHelpText) {
  Registry reg;
  reg.counter("carbon.trace-cache hits", "line one\nline \\two", View::kDeterministic)
      .add(2);
  reg.gauge("load.now", "plain", View::kTiming).set(1.5);
  Histogram& h = reg.histogram("solve.apps", "per solve", View::kDeterministic, {2.0, 8.0});
  h.observe(1.0);
  h.observe(4.0);
  h.observe(100.0);

  EXPECT_EQ(snapshot_prometheus(reg),
            "# HELP carbonedge_carbon_trace_cache_hits line one\\nline \\\\two\n"
            "# TYPE carbonedge_carbon_trace_cache_hits counter\n"
            "carbonedge_carbon_trace_cache_hits{view=\"deterministic\"} 2\n"
            "# HELP carbonedge_load_now plain\n"
            "# TYPE carbonedge_load_now gauge\n"
            "carbonedge_load_now{view=\"timing\"} 1.5\n"
            "# HELP carbonedge_solve_apps per solve\n"
            "# TYPE carbonedge_solve_apps histogram\n"
            "carbonedge_solve_apps_bucket{view=\"deterministic\",le=\"2\"} 1\n"
            "carbonedge_solve_apps_bucket{view=\"deterministic\",le=\"8\"} 2\n"
            "carbonedge_solve_apps_bucket{view=\"deterministic\",le=\"+Inf\"} 3\n"
            "carbonedge_solve_apps_sum{view=\"deterministic\"} 105\n"
            "carbonedge_solve_apps_count{view=\"deterministic\"} 3\n");
}

// ------------------------------------------- the thread-count determinism --

/// Counter values of the global registry's deterministic view (counters and
/// histogram buckets; sampled gauges excluded — they are refreshed by the
/// exporters, not the workload).
std::map<std::string, std::uint64_t> deterministic_counters() {
  std::map<std::string, std::uint64_t> values;
  Registry::global().visit([&](const MetricRef& m) {
    if (m.view != View::kDeterministic) return;
    if (m.kind == MetricKind::kCounter) {
      values[std::string(m.name)] = m.counter->value();
    } else if (m.kind == MetricKind::kHistogram) {
      for (std::size_t i = 0; i <= m.histogram->bounds().size(); ++i) {
        values[std::string(m.name) + "#" + std::to_string(i)] = m.histogram->bucket(i);
      }
    }
  });
  return values;
}

std::map<std::string, std::uint64_t> delta(const std::map<std::string, std::uint64_t>& before,
                                           const std::map<std::string, std::uint64_t>& after) {
  std::map<std::string, std::uint64_t> d;
  for (const auto& [name, value] : after) {
    const auto it = before.find(name);
    d[name] = value - (it == before.end() ? 0 : it->second);
  }
  return d;
}

TEST(DeterministicView, IdenticalDeltasAcrossWorkerCounts) {
  // The in-process version of the CI gate: run the same sweep serial and
  // wide and require identical deterministic-view deltas. The first run
  // also warms the process trace cache so both measured runs see the same
  // cache state (syntheses vs memory hits is workload state, not thread
  // schedule).
  core::SimulationConfig config;
  config.epochs = 12;
  config.workload.arrivals_per_site = 1.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  runner::ScenarioGrid grid(config);
  grid.with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()})
      .with_workload_seeds({3, 9});

  (void)runner::ScenarioRunner(runner::ScenarioRunnerOptions{1}).run(grid);  // warm

  const auto before_serial = deterministic_counters();
  (void)runner::ScenarioRunner(runner::ScenarioRunnerOptions{1}).run(grid);
  const auto after_serial = deterministic_counters();
  (void)runner::ScenarioRunner(runner::ScenarioRunnerOptions{4}).run(grid);
  const auto after_parallel = deterministic_counters();

  const auto serial = delta(before_serial, after_serial);
  const auto parallel = delta(after_serial, after_parallel);
  EXPECT_EQ(serial, parallel);
  // And the runs did real work — the invariant is not vacuously true.
  EXPECT_GT(serial.at("sim.apps_placed"), 0u);
  EXPECT_GT(serial.at("solver.solves"), 0u);
}

// -------------------------------------------------- summarize store health --

class StubCache : public runner::CellCache {
 public:
  explicit StubCache(runner::CellCacheHealth health) : health_(health) {}
  [[nodiscard]] std::optional<core::SimulationResult> load(const runner::Scenario&) override {
    return std::nullopt;
  }
  void save(const runner::Scenario&, const core::SimulationResult&) override {}
  [[nodiscard]] runner::CellCacheHealth health() const override { return health_; }

 private:
  runner::CellCacheHealth health_;
};

TEST(SummarizeHealth, StoreColumnDistinguishesHealthyDegradedAndStoreless) {
  core::SimulationConfig config;
  config.epochs = 4;
  config.workload.arrivals_per_site = 0.5;
  config.workload.model_weights = {1.0, 0.0, 0.0, 0.0};
  runner::ScenarioGrid grid(config);
  grid.with_regions({geo::florida_region()});
  const auto outcomes = runner::ScenarioRunner().run(grid);

  const auto render = [&](const runner::CellCache* cache) {
    std::ostringstream out;
    runner::ScenarioRunner::summarize(outcomes, cache).print(out);
    return out.str();
  };

  const std::string storeless = render(nullptr);
  EXPECT_NE(storeless.find("Store"), std::string::npos);

  const StubCache healthy({/*stores=*/3, /*write_failures=*/0});
  EXPECT_NE(render(&healthy).find("ok"), std::string::npos);

  const StubCache degraded({/*stores=*/1, /*write_failures=*/2});
  EXPECT_NE(render(&degraded).find("FAIL:2w"), std::string::npos);

  // The no-store overload (what the determinism gate diffs) is untouched:
  // no Store column unless a caller asks for one.
  EXPECT_EQ(runner::ScenarioRunner::summarize(outcomes).to_string().find("Store"),
            std::string::npos);
}

}  // namespace
}  // namespace carbonedge::obs
