#include "core/placement_service.hpp"

#include <gtest/gtest.h>

namespace carbonedge::core {
namespace {

struct Fixture {
  sim::EdgeCluster cluster;
  carbon::CarbonIntensityService carbon;
  geo::LatencyMatrix latency;

  Fixture() : cluster(sim::make_uniform_cluster(geo::florida_region(), 1, sim::DeviceType::kA2)) {
    carbon.add_region(geo::florida_region());
    latency = geo::LatencyMatrix(geo::LatencyModel{}, cluster.cities());
  }

  PlacementInput input(carbon::HourIndex now = 12) {
    PlacementInput in;
    in.cluster = &cluster;
    in.latency = &latency;
    in.carbon = &carbon;
    in.now = now;
    return in;
  }

  std::vector<sim::Application> one_per_site(double rtt_limit = 30.0) {
    std::vector<sim::Application> apps;
    for (std::size_t s = 0; s < cluster.size(); ++s) {
      sim::Application app;
      app.id = s;
      app.model = sim::ModelType::kResNet50;
      app.origin_site = s;
      app.rps = 5.0;
      app.latency_limit_rtt_ms = rtt_limit;
      apps.push_back(app);
    }
    return apps;
  }
};

TEST(PlacementService, EmptyBatchIsNoop) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  const PlacementResult result = service.place(f.input(), {});
  EXPECT_TRUE(result.decisions.empty());
  EXPECT_TRUE(result.rejected.empty());
}

TEST(PlacementService, LatencyAwareKeepsAppsAtOrigin) {
  Fixture f;
  PlacementService service(PolicyConfig::latency_aware());
  const auto apps = f.one_per_site();
  const PlacementResult result = service.place(f.input(), apps);
  ASSERT_EQ(result.decisions.size(), apps.size());
  for (const PlacementDecision& d : result.decisions) {
    EXPECT_EQ(d.site, static_cast<std::size_t>(d.app));  // app id == origin site here
    EXPECT_DOUBLE_EQ(d.rtt_ms, 0.0);
  }
}

TEST(PlacementService, CarbonEdgeConcentratesInGreenestZone) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  const auto apps = f.one_per_site(/*rtt_limit=*/30.0);
  const PlacementResult result = service.place(f.input(), apps);
  ASSERT_EQ(result.decisions.size(), apps.size());
  // Miami (site 1) is the calibrated greenest Florida zone (Figure 8c).
  for (const PlacementDecision& d : result.decisions) EXPECT_EQ(d.site, 1u);
}

TEST(PlacementService, CommitsHostingToCluster) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  const auto apps = f.one_per_site();
  service.place(f.input(), apps);
  std::size_t hosted = 0;
  for (const auto& site : f.cluster.sites()) hosted += site.app_count();
  EXPECT_EQ(hosted, apps.size());
}

TEST(PlacementService, RespectsLatencySlo) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  const auto apps = f.one_per_site(/*rtt_limit=*/8.0);  // tight SLO
  const PlacementResult result = service.place(f.input(), apps);
  for (const PlacementDecision& d : result.decisions) {
    EXPECT_LE(d.rtt_ms, 8.0 + 1e-9);
  }
}

TEST(PlacementService, RejectsWhenNothingFeasible) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  std::vector<sim::Application> apps(1);
  apps[0].id = 7;
  apps[0].model = sim::ModelType::kSciCpu;  // unsupported on A2 cluster
  apps[0].origin_site = 0;
  apps[0].rps = 1.0;
  const PlacementResult result = service.place(f.input(), apps);
  EXPECT_TRUE(result.decisions.empty());
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0], 7u);
}

TEST(PlacementService, ActivatesOffServersWhenWorthIt) {
  Fixture f;
  // Power off everything except dirty Jacksonville; CarbonEdge should pay
  // Miami's activation to escape the dirty zone given enough load.
  for (std::size_t s = 1; s < f.cluster.size(); ++s) {
    f.cluster.sites()[s].servers()[0].set_powered_on(false);
  }
  PlacementService service(PolicyConfig::carbon_edge());
  std::vector<sim::Application> apps;
  for (int i = 0; i < 8; ++i) {
    sim::Application app;
    app.id = i;
    app.model = sim::ModelType::kYoloV4;  // heavy: large energy at stake
    app.origin_site = 0;
    app.rps = 9.0;
    app.latency_limit_rtt_ms = 30.0;
    apps.push_back(app);
  }
  const PlacementResult result = service.place(f.input(), apps);
  ASSERT_EQ(result.decisions.size(), apps.size());
  EXPECT_FALSE(result.activated.empty());
  EXPECT_TRUE(f.cluster.sites()[1].servers()[0].powered_on());
}

TEST(PlacementService, DoesNotActivateUnusedServers) {
  Fixture f;
  f.cluster.sites()[4].servers()[0].set_powered_on(false);
  PlacementService service(PolicyConfig::latency_aware());
  std::vector<sim::Application> apps = {f.one_per_site()[0]};  // single app at site 0
  service.place(f.input(), apps);
  EXPECT_FALSE(f.cluster.sites()[4].servers()[0].powered_on());
}

TEST(PlacementService, ReportsSolveTime) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  const PlacementResult result = service.place(f.input(), f.one_per_site());
  EXPECT_GT(result.solve_time_ms, 0.0);
  EXPECT_LT(result.solve_time_ms, 3000.0);  // Section 6.5 bound
}

TEST(PlacementService, ReportsPerShardSolverTelemetry) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  const PlacementResult result = service.place(f.input(), f.one_per_site());
  const solver::SolveStats& stats = result.solver_stats;
  EXPECT_GE(stats.components, 1u);
  // Every solved shard took exactly one of the three paths, and the
  // exact-solver flag mirrors "no shard fell through to the heuristic".
  EXPECT_EQ(stats.components,
            stats.exact_shards + stats.flow_shards + stats.heuristic_shards +
                stats.unplaceable_apps);
  EXPECT_EQ(result.used_exact_solver, stats.heuristic_shards == 0);
}

TEST(PlacementService, DecisionsCarryPhysicalQuantities) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  const PlacementResult result = service.place(f.input(), f.one_per_site());
  for (const PlacementDecision& d : result.decisions) {
    EXPECT_GT(d.energy_wh, 0.0);
    EXPECT_GT(d.carbon_g, 0.0);
    EXPECT_GE(d.rtt_ms, 0.0);
  }
}

TEST(PlacementService, IncrementalCallsRespectEarlierLoad) {
  Fixture f;
  PlacementService service(PolicyConfig::carbon_edge());
  // Saturate Miami's compute with repeated batches; later batches must
  // overflow to the next-greenest feasible zone without violating capacity.
  for (int round = 0; round < 12; ++round) {
    std::vector<sim::Application> apps;
    for (int i = 0; i < 4; ++i) {
      sim::Application app;
      app.id = round * 10 + i;
      app.model = sim::ModelType::kYoloV4;
      app.origin_site = 1;
      app.rps = 9.0;
      app.latency_limit_rtt_ms = 30.0;
      apps.push_back(app);
    }
    service.place(f.input(), apps);
  }
  for (const auto& site : f.cluster.sites()) {
    for (const auto& server : site.servers()) {
      EXPECT_LE(server.compute_used(), server.compute_capacity() + 1e-9);
      EXPECT_LE(server.memory_used_mb(), server.memory_capacity_mb() + 1e-9);
    }
  }
}

TEST(PlacementService, PolicyIsSwappable) {
  Fixture f;
  PlacementService service(PolicyConfig::latency_aware());
  EXPECT_EQ(service.policy().kind, PolicyKind::kLatencyAware);
  service.set_policy(PolicyConfig::carbon_edge());
  EXPECT_EQ(service.policy().kind, PolicyKind::kCarbonEdge);
}

}  // namespace
}  // namespace carbonedge::core
