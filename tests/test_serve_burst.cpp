// EMA-trigger semantics under flash-crowd load: a sustained threshold
// crossing fires the re-optimization trigger exactly once (hysteresis — no
// re-trigger storms while the signal hovers above the line), the trigger
// re-arms only after the signal falls below the rearm level, and a burst
// that stays within the queue bound loses zero events.
#include "serve/event_loop.hpp"

#include <gtest/gtest.h>

#include "serve/event_source.hpp"

namespace carbonedge::serve {
namespace {

// --------------------------------------------------- trigger unit tests --

TEST(ThresholdTrigger, FiresExactlyOncePerSustainedCrossing) {
  ThresholdTrigger trigger(/*fire=*/100.0, /*rearm=*/60.0);
  EXPECT_FALSE(trigger.update(50.0));
  EXPECT_TRUE(trigger.update(120.0));   // armed crossing
  EXPECT_FALSE(trigger.update(150.0));  // still above: no storm
  EXPECT_FALSE(trigger.update(110.0));
  EXPECT_FALSE(trigger.update(80.0));   // inside the hysteresis band: stays disarmed
  EXPECT_FALSE(trigger.update(120.0));  // re-crossing without re-arm: nothing
  EXPECT_FALSE(trigger.update(50.0));   // below rearm: re-arms
  EXPECT_TRUE(trigger.update(130.0));   // second sustained crossing
  EXPECT_EQ(trigger.fires(), 2u);
}

TEST(ThresholdTrigger, ExactThresholdDoesNotFire) {
  ThresholdTrigger trigger(/*fire=*/100.0, /*rearm=*/100.0);
  EXPECT_FALSE(trigger.update(100.0));  // strict crossing required
  EXPECT_TRUE(trigger.update(100.5));
  EXPECT_FALSE(trigger.update(100.0));  // strict re-arm required
  EXPECT_FALSE(trigger.armed());
}

TEST(ThresholdTrigger, RejectsInvertedBand) {
  EXPECT_THROW(ThresholdTrigger(10.0, 20.0), std::invalid_argument);
}

TEST(Ema, SeedsWithFirstObservationThenSmooths) {
  Ema ema(0.5);
  EXPECT_FALSE(ema.primed());
  EXPECT_DOUBLE_EQ(ema.update(10.0), 10.0);  // seeded, not pulled toward zero
  EXPECT_DOUBLE_EQ(ema.update(20.0), 15.0);
  EXPECT_DOUBLE_EQ(ema.update(20.0), 17.5);
  EXPECT_THROW(Ema(0.0), std::invalid_argument);
  EXPECT_THROW(Ema(1.5), std::invalid_argument);
}

// ------------------------------------------------------ burst scenarios --

sim::Application burst_app() {
  sim::Application app;
  app.model = sim::ModelType::kEfficientNetB0;
  app.rps = 5.0;
  app.latency_limit_rtt_ms = 25.0;
  app.remaining_epochs = 4;
  app.state_size_mb = 200.0;
  return app;
}

struct BurstRun {
  ServeResult result;
  std::uint64_t events_emitted = 0;
};

BurstRun run_burst(std::size_t queue_capacity) {
  const geo::Region region = geo::florida_region();
  carbon::CarbonIntensityService service;
  service.add_region(region);
  // Four servers per site: enough headroom that burst arrivals actually
  // land and drive the hosted-load signal up.
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 4, sim::DeviceType::kA2), service);
  const std::size_t sites = simulation.pristine_cluster().sites().size();

  core::SimulationConfig config;
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = 36;
  config.workload.arrivals_per_site = 0.0;  // the burst source is the only feed

  ServeConfig serve_config;
  serve_config.sim = config;
  serve_config.window_epochs = 2;
  serve_config.queue_capacity = queue_capacity;
  serve_config.ema_reopt.enabled = true;
  serve_config.ema_reopt.alpha = 0.5;
  serve_config.ema_reopt.load_rps.enabled = true;
  serve_config.ema_reopt.load_rps.fire = 80.0;
  serve_config.ema_reopt.load_rps.rearm = 50.0;

  // Two flash crowds over a light base load; each decays fully (app
  // lifetime 4 epochs) before the next, so the EMA falls below the rearm
  // level between them.
  std::vector<BurstPhase> phases = {
      BurstPhase{/*start_epoch=*/8, /*length_epochs=*/4, /*arrivals_per_epoch=*/12.0},
      BurstPhase{/*start_epoch=*/22, /*length_epochs=*/4, /*arrivals_per_epoch=*/12.0},
  };
  BurstSource source(sites, config.epochs, config.epoch_hours, /*base_per_epoch=*/1.0,
                     phases, burst_app());

  EventLoop loop(simulation, serve_config);
  BurstRun run;
  run.result = loop.run(source);
  run.events_emitted = 36 * 1 + 2 * 4 * 12;  // base + both bursts
  return run;
}

TEST(ServeBurst, EmaTriggerFiresOncePerBurstNoStorms) {
  const BurstRun run = run_burst(/*queue_capacity=*/65536);

  // Two sustained crossings, two fires — not one per above-threshold
  // window, and nothing while hovering inside the hysteresis band.
  EXPECT_EQ(run.result.reopt_fires, 2u);
  std::uint32_t fired_windows = 0;
  for (const WindowStats& w : run.result.windows) {
    if (w.reopt_fired) ++fired_windows;
  }
  EXPECT_EQ(fired_windows, 2u);

  // The load EMA actually saw the bursts.
  double peak_ema = 0.0;
  for (const WindowStats& w : run.result.windows) {
    peak_ema = std::max(peak_ema, w.ema_load_rps);
  }
  EXPECT_GT(peak_ema, 80.0);
}

TEST(ServeBurst, ZeroDropsBelowQueueBound) {
  const BurstRun run = run_burst(/*queue_capacity=*/65536);
  EXPECT_EQ(run.result.ingest.dropped(), 0u);
  EXPECT_EQ(run.result.ingest.accepted, run.events_emitted);
  std::uint64_t window_arrivals = 0;
  for (const WindowStats& w : run.result.windows) window_arrivals += w.arrivals;
  EXPECT_EQ(window_arrivals, run.events_emitted);
}

TEST(ServeBurst, OverflowCountsButNeverStallsTheLoop) {
  // A queue smaller than one burst epoch's batch: events are dropped and
  // counted, the loop still runs to completion, and accounting reconciles.
  const BurstRun run = run_burst(/*queue_capacity=*/8);
  EXPECT_GT(run.result.ingest.dropped_overflow, 0u);
  EXPECT_EQ(run.result.ingest.accepted + run.result.ingest.dropped_overflow,
            run.events_emitted);
  EXPECT_EQ(run.result.windows.back().ingest_dropped, run.result.ingest.dropped());
  std::uint64_t window_arrivals = 0;
  for (const WindowStats& w : run.result.windows) window_arrivals += w.arrivals;
  EXPECT_EQ(window_arrivals, run.result.ingest.accepted);
}

}  // namespace
}  // namespace carbonedge::serve
