#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"

namespace carbonedge::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Zone", "gCO2"});
  t.add_row({"Miami", "243"});
  t.add_row({"Tampa", "611"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Zone"), std::string::npos);
  EXPECT_NE(out.find("Miami"), std::string::npos);
  EXPECT_NE(out.find("611"), std::string::npos);
}

TEST(Table, TitleIsPrinted) {
  Table t({"a"});
  t.set_title("Figure 3a");
  EXPECT_NE(t.to_string().find("Figure 3a"), std::string::npos);
}

TEST(Table, NumericRowFormatsPrecision) {
  Table t({"label", "v1", "v2"});
  t.add_row("row", {1.234, 5.0}, 1);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.0"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, ColumnsAreAligned) {
  Table t({"n", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22222"});
  std::istringstream in(t.to_string());
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, CsvExportParses) {
  Table t({"zone", "ci"});
  t.add_row({"Miami", "243"});
  const auto doc = parse_csv(t.to_csv());
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "Miami");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(format_percent(0.787), "78.7%");
  EXPECT_EQ(format_percent(0.5, 0), "50%");
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(Formatting, Bar) {
  EXPECT_EQ(format_bar(5.0, 10.0, 10), "#####.....");
  EXPECT_EQ(format_bar(0.0, 10.0, 4), "....");
  EXPECT_EQ(format_bar(20.0, 10.0, 4), "####");  // clamped
  EXPECT_TRUE(format_bar(1.0, 0.0, 4).empty());  // degenerate max
}

}  // namespace
}  // namespace carbonedge::util
