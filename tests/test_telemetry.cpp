#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

namespace carbonedge::sim {
namespace {

EpochRecord make_record(std::uint32_t epoch, std::vector<SiteEpochRecord> sites) {
  EpochRecord r;
  r.epoch = epoch;
  r.sites = std::move(sites);
  return r;
}

TEST(EpochRecord, AggregatesSites) {
  EpochRecord r = make_record(0, {{100.0, 50.0, 500.0, 2, 10.0}, {200.0, 30.0, 150.0, 1, 5.0}});
  EXPECT_DOUBLE_EQ(r.energy_wh(), 300.0);
  EXPECT_DOUBLE_EQ(r.carbon_g(), 80.0);
}

TEST(EpochRecord, MeanLatencyIsRequestWeighted) {
  EpochRecord r;
  r.rtt_weighted_sum_ms = 100.0;
  r.response_weighted_sum_ms = 300.0;
  r.rps_total = 20.0;
  EXPECT_DOUBLE_EQ(r.mean_rtt_ms(), 5.0);
  EXPECT_DOUBLE_EQ(r.mean_response_ms(), 15.0);
  r.rps_total = 0.0;
  EXPECT_DOUBLE_EQ(r.mean_rtt_ms(), 0.0);
}

TEST(Telemetry, TotalsAcrossEpochs) {
  Telemetry t;
  t.record(make_record(0, {{100.0, 10.0, 100.0, 1, 2.0}}));
  t.record(make_record(1, {{50.0, 20.0, 400.0, 2, 3.0}}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.total_energy_wh(), 150.0);
  EXPECT_DOUBLE_EQ(t.total_carbon_g(), 30.0);
  EXPECT_DOUBLE_EQ(t.total_carbon_kg(), 0.03);
}

TEST(Telemetry, MeanRttPoolsAcrossEpochs) {
  Telemetry t;
  EpochRecord a;
  a.rtt_weighted_sum_ms = 10.0;
  a.rps_total = 2.0;
  EpochRecord b;
  b.rtt_weighted_sum_ms = 50.0;
  b.rps_total = 8.0;
  t.record(a);
  t.record(b);
  EXPECT_DOUBLE_EQ(t.mean_rtt_ms(), 6.0);
}

TEST(Telemetry, PlacementCounters) {
  Telemetry t;
  EpochRecord a;
  a.apps_placed = 3;
  a.apps_rejected = 1;
  t.record(a);
  t.record(a);
  EXPECT_EQ(t.total_placed(), 6u);
  EXPECT_EQ(t.total_rejected(), 2u);
}

TEST(Telemetry, CarbonBySiteWindows) {
  Telemetry t;
  t.record(make_record(0, {{0, 10.0, 0, 0, 0}, {0, 1.0, 0, 0, 0}}));
  t.record(make_record(1, {{0, 20.0, 0, 0, 0}, {0, 2.0, 0, 0, 0}}));
  t.record(make_record(2, {{0, 40.0, 0, 0, 0}, {0, 4.0, 0, 0, 0}}));
  const auto all = t.carbon_by_site();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0], 70.0);
  EXPECT_DOUBLE_EQ(all[1], 7.0);
  const auto window = t.carbon_by_site(1, 2);
  EXPECT_DOUBLE_EQ(window[0], 20.0);
}

TEST(Telemetry, AppsBySiteAveragesWindow) {
  Telemetry t;
  t.record(make_record(0, {{0, 0, 0, 4, 0}}));
  t.record(make_record(1, {{0, 0, 0, 6, 0}}));
  const auto avg = t.apps_by_site(0, 2);
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_DOUBLE_EQ(avg[0], 5.0);
}

TEST(Telemetry, LoadIntensitySampleWeightsByRps) {
  Telemetry t;
  // Site 0 hosts 3 rps at 100 g/kWh; site 1 idle.
  t.record(make_record(0, {{0, 0, 100.0, 1, 3.0}, {0, 0, 900.0, 0, 0.0}}));
  const auto sample = t.load_intensity_sample();
  ASSERT_EQ(sample.size(), 3u);
  for (const double v : sample) EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(Telemetry, EmptyTelemetryIsZero) {
  const Telemetry t;
  EXPECT_DOUBLE_EQ(t.total_carbon_g(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean_rtt_ms(), 0.0);
  EXPECT_TRUE(t.carbon_by_site().empty());
  EXPECT_TRUE(t.load_intensity_sample().empty());
}

}  // namespace
}  // namespace carbonedge::sim
