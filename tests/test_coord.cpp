#include "geo/coord.hpp"

#include <gtest/gtest.h>

namespace carbonedge::geo {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const GeoPoint p{25.76, -80.19};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{25.76, -80.19};
  const GeoPoint b{30.33, -81.66};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, KnownDistances) {
  // Miami - Jacksonville: ~530 km.
  EXPECT_NEAR(haversine_km({25.76, -80.19}, {30.33, -81.66}), 530.0, 15.0);
  // Bern - Munich: ~330 km.
  EXPECT_NEAR(haversine_km({46.95, 7.45}, {48.14, 11.58}), 335.0, 15.0);
  // New York - Los Angeles: ~3940 km.
  EXPECT_NEAR(haversine_km({40.71, -74.01}, {34.05, -118.24}), 3940.0, 60.0);
}

TEST(Haversine, QuarterCircumferenceAtEquator) {
  // 90 degrees of longitude at the equator is a quarter circumference.
  EXPECT_NEAR(haversine_km({0.0, 0.0}, {0.0, 90.0}), 10007.5, 10.0);
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  EXPECT_NEAR(haversine_km({0.0, 0.0}, {0.0, 180.0}), 20015.0, 15.0);
}

TEST(Haversine, TriangleInequalityHolds) {
  const GeoPoint a{25.76, -80.19};
  const GeoPoint b{28.54, -81.38};
  const GeoPoint c{30.44, -84.28};
  EXPECT_LE(haversine_km(a, c), haversine_km(a, b) + haversine_km(b, c) + 1e-9);
}

TEST(BoundingBox, ExtentMatchesPaperStyleAnnotations) {
  // Florida region bounding box should be on the order of 800 x 700 km
  // (Figure 2a annotates "807km x 712km" for a slightly larger window).
  BoundingBox box;
  box.extend({30.33, -81.66});  // Jacksonville
  box.extend({25.76, -80.19});  // Miami
  box.extend({27.95, -82.46});  // Tampa
  box.extend({28.54, -81.38});  // Orlando
  box.extend({30.44, -84.28});  // Tallahassee
  EXPECT_NEAR(box.height_km(), 520.0, 40.0);
  EXPECT_NEAR(box.width_km(), 400.0, 40.0);
}

TEST(BoundingBox, SinglePointHasZeroExtent) {
  BoundingBox box;
  box.extend({10.0, 20.0});
  EXPECT_DOUBLE_EQ(box.width_km(), 0.0);
  EXPECT_DOUBLE_EQ(box.height_km(), 0.0);
}

TEST(Continent, Names) {
  EXPECT_STREQ(to_string(Continent::kNorthAmerica), "North America");
  EXPECT_STREQ(to_string(Continent::kEurope), "Europe");
}

}  // namespace
}  // namespace carbonedge::geo
