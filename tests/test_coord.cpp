#include "geo/coord.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace carbonedge::geo {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const GeoPoint p{25.76, -80.19};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{25.76, -80.19};
  const GeoPoint b{30.33, -81.66};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, KnownDistances) {
  // Miami - Jacksonville: ~530 km.
  EXPECT_NEAR(haversine_km({25.76, -80.19}, {30.33, -81.66}), 530.0, 15.0);
  // Bern - Munich: ~330 km.
  EXPECT_NEAR(haversine_km({46.95, 7.45}, {48.14, 11.58}), 335.0, 15.0);
  // New York - Los Angeles: ~3940 km.
  EXPECT_NEAR(haversine_km({40.71, -74.01}, {34.05, -118.24}), 3940.0, 60.0);
}

TEST(Haversine, QuarterCircumferenceAtEquator) {
  // 90 degrees of longitude at the equator is a quarter circumference.
  EXPECT_NEAR(haversine_km({0.0, 0.0}, {0.0, 90.0}), 10007.5, 10.0);
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  EXPECT_NEAR(haversine_km({0.0, 0.0}, {0.0, 180.0}), 20015.0, 15.0);
}

TEST(Haversine, TriangleInequalityHolds) {
  const GeoPoint a{25.76, -80.19};
  const GeoPoint b{28.54, -81.38};
  const GeoPoint c{30.44, -84.28};
  EXPECT_LE(haversine_km(a, c), haversine_km(a, b) + haversine_km(b, c) + 1e-9);
}

TEST(BoundingBox, ExtentMatchesPaperStyleAnnotations) {
  // Florida region bounding box should be on the order of 800 x 700 km
  // (Figure 2a annotates "807km x 712km" for a slightly larger window).
  BoundingBox box;
  box.extend({30.33, -81.66});  // Jacksonville
  box.extend({25.76, -80.19});  // Miami
  box.extend({27.95, -82.46});  // Tampa
  box.extend({28.54, -81.38});  // Orlando
  box.extend({30.44, -84.28});  // Tallahassee
  EXPECT_NEAR(box.height_km(), 520.0, 40.0);
  EXPECT_NEAR(box.width_km(), 400.0, 40.0);
}

TEST(BoundingBox, SinglePointHasZeroExtent) {
  BoundingBox box;
  box.extend({10.0, 20.0});
  EXPECT_DOUBLE_EQ(box.width_km(), 0.0);
  EXPECT_DOUBLE_EQ(box.height_km(), 0.0);
}

TEST(BoundingBox, AntimeridianSpanningWidthIsTheShortSpan) {
  // Regression: an Aleutian box (Attu at 173E, Adak at 176.7W) spans the
  // antimeridian. The old width_km folded it into a ~350-degree interval
  // and reported a near-circumference width; the wrap-aware box must report
  // the true ~10-degree span (~700 km at 52N).
  const GeoPoint attu{52.8467, 173.1886};
  const GeoPoint adak{51.8800, -176.6581};
  const BoundingBox box = bounding_box(std::vector<GeoPoint>{attu, adak});
  EXPECT_GT(box.min.lon_deg, box.max.lon_deg);  // wrapped interval
  EXPECT_NEAR(box.lon_span_deg(), 10.15, 0.01);
  EXPECT_GT(box.width_km(), 500.0);
  EXPECT_LT(box.width_km(), 800.0);
  EXPECT_NEAR(box.height_km(), haversine_km({51.88, 0.0}, {52.8467, 0.0}), 1e-9);
}

TEST(BoundingBox, NonStraddlingMatchesExtendBitForBit) {
  // For point sets away from +-180 the largest-gap construction must give
  // exactly the per-axis min/max box extend() builds.
  const std::vector<GeoPoint> points = {
      {30.33, -81.66}, {25.76, -80.19}, {27.95, -82.46}, {48.14, 11.58}, {59.33, 18.07}};
  BoundingBox reference;
  for (const GeoPoint& p : points) reference.extend(p);
  const BoundingBox box = bounding_box(points);
  EXPECT_EQ(box.min.lat_deg, reference.min.lat_deg);
  EXPECT_EQ(box.min.lon_deg, reference.min.lon_deg);
  EXPECT_EQ(box.max.lat_deg, reference.max.lat_deg);
  EXPECT_EQ(box.max.lon_deg, reference.max.lon_deg);
  EXPECT_EQ(box.width_km(), reference.width_km());
}

TEST(BoundingBox, WrappedSpanBeyond180UsesSmallCircleArc) {
  // A wrapped interval wider than 180 degrees cannot be measured with one
  // haversine hop (it would report the complementary short way around);
  // width must still be monotone in the span.
  BoundingBox wide;
  wide.min = {10.0, 100.0};
  wide.max = {20.0, -80.0};  // wrapped: spans 180 degrees eastward
  BoundingBox wider;
  wider.min = {10.0, 90.0};
  wider.max = {20.0, -80.0};  // wrapped: spans 190 degrees eastward
  EXPECT_NEAR(wide.lon_span_deg(), 180.0, 1e-12);
  EXPECT_NEAR(wider.lon_span_deg(), 190.0, 1e-12);
  EXPECT_GT(wider.width_km(), wide.width_km());
}

TEST(Continent, Names) {
  EXPECT_STREQ(to_string(Continent::kNorthAmerica), "North America");
  EXPECT_STREQ(to_string(Continent::kEurope), "Europe");
}

}  // namespace
}  // namespace carbonedge::geo
