#include "carbon/zone.hpp"

#include <gtest/gtest.h>

#include "geo/region.hpp"

namespace carbonedge::carbon {
namespace {

const geo::CityDatabase& db() { return geo::CityDatabase::builtin(); }

TEST(ZoneCatalog, PaperNamedZonesHaveOverrides) {
  const auto& catalog = ZoneCatalog::builtin();
  for (const char* name : {"Miami", "Kingman", "Bern", "Lyon", "Munich", "Warsaw", "Oslo"}) {
    EXPECT_TRUE(catalog.has_override(db().require(name))) << name;
  }
}

TEST(ZoneCatalog, SpecsAreNormalized) {
  const auto& catalog = ZoneCatalog::builtin();
  for (const geo::City& city : db().all()) {
    const ZoneSpec spec = catalog.spec_for(city);
    EXPECT_NEAR(spec.capacity.total(), 1.0, 1e-9) << city.name;
    EXPECT_EQ(spec.name, city.name);
    EXPECT_DOUBLE_EQ(spec.latitude_deg, city.location.lat_deg);
    EXPECT_GT(spec.demand_peak, spec.demand_base) << city.name;
  }
}

TEST(ZoneCatalog, CalibratedContrasts) {
  const auto& catalog = ZoneCatalog::builtin();
  // Static capacity-mix intensity already orders the calibrated zones the
  // way the paper reports them.
  const auto ci = [&](const char* name) {
    return catalog.spec_for(db().require(name)).capacity.carbon_intensity();
  };
  // Florida: Miami greenest (Figure 8c places everything there).
  EXPECT_LT(ci("Miami"), ci("Orlando"));
  EXPECT_LT(ci("Miami"), ci("Tampa"));
  EXPECT_LT(ci("Miami"), ci("Jacksonville"));
  EXPECT_LT(ci("Miami"), ci("Tallahassee"));
  // West US: Kingman dirtiest, San Diego cleanest (Figure 3a).
  EXPECT_GT(ci("Kingman"), ci("Flagstaff"));
  EXPECT_LT(ci("San Diego"), ci("Las Vegas"));
  // Central EU: order Bern/Lyon << Graz << Milan < Munich (Figure 3b).
  EXPECT_LT(ci("Bern"), ci("Graz"));
  EXPECT_LT(ci("Lyon"), ci("Graz"));
  EXPECT_LT(ci("Graz"), ci("Milan"));
  // Macro (Figure 1): Ontario (Toronto) clean, Poland (Warsaw) coal-heavy.
  EXPECT_LT(ci("Toronto"), 100.0);
  EXPECT_GT(ci("Warsaw"), 500.0);
}

TEST(ZoneCatalog, CountryDefaultsDifferPerCity) {
  const auto& catalog = ZoneCatalog::builtin();
  // Two German cities without overrides share a country archetype but get
  // deterministic per-city perturbations — neighboring zones must differ
  // (that is the paper's core observation).
  const ZoneSpec a = catalog.spec_for(db().require("Frankfurt"));
  const ZoneSpec b = catalog.spec_for(db().require("Hamburg"));
  EXPECT_NE(a.capacity, b.capacity);
  // But they keep the country character: both burn some coal, both have wind.
  EXPECT_GT(a.capacity.at(EnergySource::kCoal), 0.0);
  EXPECT_GT(b.capacity.at(EnergySource::kWind), 0.0);
}

TEST(ZoneCatalog, SpecsAreDeterministic) {
  const auto& catalog = ZoneCatalog::builtin();
  const ZoneSpec a = catalog.spec_for(db().require("Prague"));
  const ZoneSpec b = catalog.spec_for(db().require("Prague"));
  EXPECT_EQ(a.capacity, b.capacity);
}

TEST(ZoneCatalog, NordicZonesAreHydroHeavy) {
  const auto& catalog = ZoneCatalog::builtin();
  const ZoneSpec oslo = catalog.spec_for(db().require("Oslo"));
  EXPECT_GT(oslo.capacity.at(EnergySource::kHydro), 0.8);
  const ZoneSpec bergen = catalog.spec_for(db().require("Bergen"));
  EXPECT_GT(bergen.capacity.at(EnergySource::kHydro), 0.6);
}

TEST(ZoneCatalog, SpecsForRegionPreserveOrder) {
  const auto& catalog = ZoneCatalog::builtin();
  const auto cities = geo::florida_region().resolve();
  const auto specs = catalog.specs_for(cities);
  ASSERT_EQ(specs.size(), cities.size());
  for (std::size_t i = 0; i < cities.size(); ++i) EXPECT_EQ(specs[i].name, cities[i].name);
}

}  // namespace
}  // namespace carbonedge::carbon
