// SiteCatalog API + TSV ingest + CEAF codec round-trip.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "geo/catalog.hpp"
#include "geo/catalog_io.hpp"
#include "geo/city.hpp"
#include "geo/site.hpp"
#include "store/artifact_store.hpp"
#include "store/codecs.hpp"
#include "store/site_catalog.hpp"
#include "store_test_util.hpp"

namespace carbonedge {
namespace {

constexpr const char* kGoodDump =
    "# comment line\n"
    "\n"
    "Springfield\tUS\tNA\t39.7817\t-89.6501\t208\n"
    "Shelbyville\tUS\tNA\t39.4067\t-88.7903\t12.5\r\n"
    "Ogdenville\tCA\tNA\t45.0\t-75.0\t40\n"
    "North Haverbrook\tNO\tEU\t69.1\t18.2\t3\n";

TEST(ParseSitesTsv, ParsesRowsSkippingCommentsAndBlanksAndCr) {
  const std::vector<geo::City> sites = geo::parse_sites_tsv(kGoodDump);
  ASSERT_EQ(sites.size(), 4u);
  EXPECT_EQ(sites[0].id, 0u);
  EXPECT_EQ(sites[0].name, "Springfield");
  EXPECT_EQ(sites[0].country, "US");
  EXPECT_EQ(sites[0].continent, geo::Continent::kNorthAmerica);
  EXPECT_DOUBLE_EQ(sites[0].location.lat_deg, 39.7817);
  EXPECT_DOUBLE_EQ(sites[0].location.lon_deg, -89.6501);
  EXPECT_DOUBLE_EQ(sites[0].population_k, 208.0);
  EXPECT_EQ(sites[1].name, "Shelbyville");  // trailing \r stripped
  EXPECT_DOUBLE_EQ(sites[1].population_k, 12.5);
  EXPECT_EQ(sites[3].id, 3u);
  EXPECT_EQ(sites[3].continent, geo::Continent::kEurope);
}

void expect_parse_error(const std::string& dump, const std::string& fragment) {
  try {
    (void)geo::parse_sites_tsv(dump);
    FAIL() << "expected a parse error containing '" << fragment << "'";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
        << "actual message: " << error.what();
  }
}

TEST(ParseSitesTsv, ErrorsNameTheOneBasedLine) {
  // Line 1 is a comment, line 2 the first data row, line 3 the bad one.
  expect_parse_error("# header\nA\tUS\tNA\t1\t2\t3\nB\tUS\tXX\t1\t2\t3\n", "line 3");
}

TEST(ParseSitesTsv, RejectsMalformedRows) {
  expect_parse_error("A\tUS\tNA\t1\t2\n", "line 1");               // missing column
  expect_parse_error("A\tUS\tNA\t1\t2\t3\t4\n", "line 1");         // extra column
  expect_parse_error("A\tUS\tSA\t1\t2\t3\n", "continent");          // unknown tag
  expect_parse_error("A\tUS\tNA\t91\t2\t3\n", "latitude");          // out of range
  expect_parse_error("A\tUS\tNA\t1\t-181\t3\n", "longitude");       // out of range
  expect_parse_error("A\tUS\tNA\t1\t2\t-3\n", "population");        // negative
  expect_parse_error("A\tUSA\tNA\t1\t2\t3\n", "country");           // not alpha-2
  expect_parse_error("\tUS\tNA\t1\t2\t3\n", "name");                // empty name
  expect_parse_error("A\tUS\tNA\t1\t2\t3\nA\tUS\tNA\t4\t5\t6\n", "duplicate");
  expect_parse_error("A\tUS\tNA\tabc\t2\t3\n", "line 1");           // non-numeric
}

TEST(SiteCatalog, CompiledFindMatchesLinearScanAndMissesCleanly) {
  const geo::CompiledSiteCatalog catalog(geo::parse_sites_tsv(kGoodDump));
  ASSERT_EQ(catalog.size(), 4u);
  for (const geo::City& city : catalog.all()) {
    const auto found = catalog.find(city.name);
    ASSERT_TRUE(found.has_value()) << city.name;
    EXPECT_EQ(*found, city.id);
  }
  EXPECT_FALSE(catalog.find("Atlantis").has_value());
  EXPECT_THROW((void)catalog.by_id(99), std::out_of_range);
}

TEST(SiteCatalog, RequireListsNearMissCandidates) {
  const geo::CompiledSiteCatalog catalog(geo::parse_sites_tsv(kGoodDump));
  try {
    (void)catalog.require("springfeld");  // case + one edit away
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown city: springfeld"), std::string::npos) << message;
    EXPECT_NE(message.find("Springfield"), std::string::npos) << message;
  }
}

TEST(SiteCatalog, ConstructorRejectsBrokenInvariants) {
  std::vector<geo::City> gap = geo::parse_sites_tsv(kGoodDump);
  gap[2].id = 7;  // ids must be dense in order
  EXPECT_THROW(geo::CompiledSiteCatalog{std::move(gap)}, std::invalid_argument);

  std::vector<geo::City> dupe = geo::parse_sites_tsv(kGoodDump);
  dupe[1].name = dupe[0].name;
  EXPECT_THROW(geo::CompiledSiteCatalog{std::move(dupe)}, std::invalid_argument);

  std::vector<geo::City> bad_lat = geo::parse_sites_tsv(kGoodDump);
  bad_lat[0].location.lat_deg = 123.0;
  EXPECT_THROW(geo::CompiledSiteCatalog{std::move(bad_lat)}, std::invalid_argument);
}

TEST(SiteCatalogCodec, RoundTripsBitExactly) {
  const geo::CompiledSiteCatalog catalog(geo::parse_sites_tsv(kGoodDump));
  const std::string payload = store::encode_site_catalog(catalog);
  const geo::CompiledSiteCatalog decoded = store::decode_site_catalog(payload);
  ASSERT_EQ(decoded.size(), catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const geo::City& a = catalog.all()[i];
    const geo::City& b = decoded.all()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.country, b.country);
    EXPECT_EQ(a.continent, b.continent);
    EXPECT_EQ(a.location.lat_deg, b.location.lat_deg);  // bit-exact, not NEAR
    EXPECT_EQ(a.location.lon_deg, b.location.lon_deg);
    EXPECT_EQ(a.population_k, b.population_k);
  }
  // Re-encoding the decoded catalog reproduces the payload byte for byte.
  EXPECT_EQ(store::encode_site_catalog(decoded), payload);
}

TEST(SiteCatalogCodec, BuiltinDatabaseRoundTrips) {
  const auto& builtin = geo::CityDatabase::builtin();
  const geo::CompiledSiteCatalog decoded =
      store::decode_site_catalog(store::encode_site_catalog(builtin));
  ASSERT_EQ(decoded.size(), builtin.size());
  EXPECT_EQ(decoded.all()[0].name, builtin.all()[0].name);
  EXPECT_EQ(decoded.all().back().name, builtin.all().back().name);
}

TEST(SiteCatalogCodec, RejectsGarbageAndTruncation) {
  EXPECT_THROW((void)store::decode_site_catalog("garbage"), std::runtime_error);
  const std::string payload =
      store::encode_site_catalog(geo::CompiledSiteCatalog(geo::parse_sites_tsv(kGoodDump)));
  EXPECT_THROW((void)store::decode_site_catalog(payload.substr(0, payload.size() - 3)),
               std::runtime_error);
  // Trailing bytes are schema drift, not slack.
  EXPECT_THROW((void)store::decode_site_catalog(payload + "x"), std::runtime_error);
}

TEST(SiteCatalogStore, BuildIsContentAddressedAcrossFormatting) {
  testutil::TempStoreDir scratch("carbonedge_sitecat");
  const store::ArtifactStore artifacts(scratch.dir);
  const std::string key = store::build_site_catalog(artifacts, kGoodDump);
  // Same sites, different formatting: extra comments and blank lines must
  // compile to the same key (the key hashes the canonical payload).
  const std::string reformatted = std::string("# other header\n\n\n") + kGoodDump + "\n# tail\n";
  EXPECT_EQ(store::build_site_catalog(artifacts, reformatted), key);

  const auto loaded = store::load_site_catalog(artifacts, key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 4u);
  EXPECT_EQ(loaded->all()[0].name, "Springfield");
}

TEST(SiteCatalogStore, CorruptOrUndecodableEntriesAreMisses) {
  testutil::TempStoreDir scratch("carbonedge_sitecat");
  const store::ArtifactStore artifacts(scratch.dir);
  EXPECT_FALSE(store::load_site_catalog(artifacts, "no-such-key").has_value());

  // Flipped payload byte: the container checksum catches it.
  const std::string key = store::build_site_catalog(artifacts, kGoodDump);
  const auto path = artifacts.entry_path(store::ArtifactKind::kSiteCatalog, key);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-1, std::ios::end);
    file.put('\x5a');
  }
  EXPECT_FALSE(store::load_site_catalog(artifacts, key).has_value());

  // Checksum-valid container whose payload is not a catalog: the codec
  // throws and the loader reports a miss instead of crashing.
  artifacts.save(store::ArtifactKind::kSiteCatalog, "bogus", "not a catalog payload");
  EXPECT_FALSE(store::load_site_catalog(artifacts, "bogus").has_value());
}

}  // namespace
}  // namespace carbonedge
