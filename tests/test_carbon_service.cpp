#include "carbon/service.hpp"

#include <gtest/gtest.h>

#include "geo/region.hpp"

namespace carbonedge::carbon {
namespace {

TEST(CarbonService, AddRegionRegistersAllZones) {
  CarbonIntensityService service;
  const auto names = service.add_region(geo::florida_region());
  EXPECT_EQ(names.size(), 5u);
  EXPECT_EQ(service.zone_count(), 5u);
  for (const std::string& name : names) EXPECT_TRUE(service.has_zone(name));
  EXPECT_FALSE(service.has_zone("Bern"));
}

TEST(CarbonService, IntensityMatchesTrace) {
  CarbonIntensityService service;
  service.add_region(geo::central_eu_region());
  const CarbonTrace& trace = service.trace("Munich");
  EXPECT_DOUBLE_EQ(service.intensity("Munich", 123), trace.at(123));
}

TEST(CarbonService, UnknownZoneThrows) {
  CarbonIntensityService service;
  EXPECT_THROW((void)service.intensity("Nowhere", 0), std::out_of_range);
  EXPECT_THROW((void)service.trace("Nowhere"), std::out_of_range);
  EXPECT_THROW((void)service.mean_forecast("Nowhere", 0, 1), std::out_of_range);
}

TEST(CarbonService, OracleMeanForecastEqualsTrueMean) {
  CarbonIntensityService service;  // defaults to oracle
  service.add_region(geo::west_us_region());
  const CarbonTrace& trace = service.trace("Kingman");
  EXPECT_DOUBLE_EQ(service.mean_forecast("Kingman", 100, 24), trace.mean_over(100, 24));
}

TEST(CarbonService, ForecasterSwappable) {
  CarbonIntensityService service;
  service.add_trace(CarbonTrace("z", {10.0, 20.0, 30.0, 40.0}));
  service.set_forecaster(std::make_unique<PersistenceForecaster>());
  // Persistence at t=2 holds trace[1] = 20 for the whole horizon.
  EXPECT_DOUBLE_EQ(service.mean_forecast("z", 2, 2), 20.0);
  EXPECT_EQ(service.forecaster().name(), "persistence");
  EXPECT_THROW(service.set_forecaster(nullptr), std::invalid_argument);
}

TEST(CarbonService, AddTraceReplacesExisting) {
  CarbonIntensityService service;
  service.add_trace(CarbonTrace("z", {1.0}));
  service.add_trace(CarbonTrace("z", {5.0}));
  EXPECT_EQ(service.zone_count(), 1u);
  EXPECT_DOUBLE_EQ(service.intensity("z", 0), 5.0);
}

TEST(CarbonService, ForecastSeriesHasRequestedHorizon) {
  CarbonIntensityService service;
  service.add_trace(CarbonTrace("z", {1.0, 2.0, 3.0}));
  EXPECT_EQ(service.forecast("z", 0, 5).size(), 5u);
}

TEST(CarbonService, NullForecasterCtorThrows) {
  EXPECT_THROW(CarbonIntensityService(nullptr), std::invalid_argument);
}

TEST(CarbonService, CustomSynthesizerParamsPropagate) {
  CarbonIntensityService a;
  SynthesizerParams params;
  params.seed = 99;
  a.add_region(geo::italy_region(), params);
  CarbonIntensityService b;
  b.add_region(geo::italy_region());  // default seed
  bool any_diff = false;
  for (HourIndex h = 0; h < 200; ++h) {
    any_diff |= a.intensity("Rome", h) != b.intensity("Rome", h);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace carbonedge::carbon
