// The planet-scale acceptance check: a 1000-site synthetic catalog runs a
// banded-geography simulation whose encoded outcome is byte-identical
// across worker-lane counts, without ever materializing the n^2 latency
// matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "carbon/service.hpp"
#include "carbon/synthesizer.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/catalog.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "geo/sparse_latency.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "store/codecs.hpp"
#include "util/parallelism.hpp"
#include "util/random.hpp"

namespace carbonedge {
namespace {

// 1000 synthetic sites spread over both study continents. Deterministic
// (hash-derived coordinates), so every run builds the identical catalog.
geo::CompiledSiteCatalog synthetic_catalog(std::size_t n) {
  std::vector<geo::City> sites;
  sites.reserve(n);
  const char* const countries_na[] = {"US", "CA", "MX"};
  const char* const countries_eu[] = {"DE", "FR", "ES", "PL", "IT"};
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t stream = 0x5ca1ab1eULL + i;
    geo::City c;
    c.id = static_cast<geo::SiteId>(i);
    c.name = "synth-" + std::to_string(i);
    const bool europe = i % 2 == 1;
    c.continent = europe ? geo::Continent::kEurope : geo::Continent::kNorthAmerica;
    const double u1 = static_cast<double>(util::splitmix64(stream) >> 11) * 0x1.0p-53;
    const double u2 = static_cast<double>(util::splitmix64(stream) >> 11) * 0x1.0p-53;
    const double u3 = static_cast<double>(util::splitmix64(stream) >> 11) * 0x1.0p-53;
    if (europe) {
      c.country = countries_eu[i / 2 % 5];
      c.location.lat_deg = 36.0 + 24.0 * u1;   // Iberia to Scandinavia
      c.location.lon_deg = -10.0 + 35.0 * u2;  // Lisbon to Warsaw
    } else {
      c.country = countries_na[i / 2 % 3];
      c.location.lat_deg = 25.0 + 25.0 * u1;    // Miami to Vancouver
      c.location.lon_deg = -125.0 + 55.0 * u2;  // west to east coast
    }
    c.population_k = 50.0 + 4000.0 * u3;
    sites.push_back(std::move(c));
  }
  return geo::CompiledSiteCatalog(std::move(sites));
}

core::SimulationConfig scale_config() {
  core::SimulationConfig config;
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = 4;
  config.workload.arrivals_per_site = 0.05;  // ~50 arrivals per epoch at n=1000
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.seed = 42;
  config.reoptimize_every = 2;
  return config;
}

// One full run under an injected lane budget; returns the encoded outcome
// so comparisons are over every byte of the result, not a summary.
std::string run_banded(const geo::SiteCatalog& catalog, std::size_t lanes) {
  const geo::Region region = geo::catalog_region(catalog, "synthetic-1000");
  carbon::CarbonIntensityService service;
  carbon::SynthesizerParams params;
  params.hours = 24 * 7;  // a week of trace is plenty for 4 epochs
  service.add_region(region, params);

  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service,
      geo::LatencyModel{}, /*latency_band_one_way_ms=*/8.0);
  util::ParallelismBudget budget(lanes);
  simulation.set_parallelism_budget(&budget);
  core::SimulationResult result = simulation.run(scale_config());
  if (lanes > 1) {
    // The comparison is only meaningful if the shard pool really engaged.
    EXPECT_GT(budget.peak_lanes(), 1u);
  }
  // Wall-clock solve/deploy timings are the one sanctioned nondeterministic
  // part of a result; zero them so the byte comparison covers everything
  // else (counters, per-site telemetry, histograms) and nothing spurious.
  result.total_solve_ms = 0.0;
  result.mean_solve_ms = 0.0;
  result.mean_deploy_ms = 0.0;
  return store::encode_outcome(result);
}

TEST(CatalogScale, ThousandSiteBandedSweepIsLaneCountInvariant) {
  const geo::CompiledSiteCatalog catalog = synthetic_catalog(1000);
  ASSERT_EQ(catalog.size(), 1000u);

  // The geography stays sparse: the 8 ms band must keep the support far
  // below the 10^6 dense pairs (this is what makes n=1000 tractable).
  const geo::BandedLatencyMatrix banded(geo::LatencyModel{}, catalog.all(), 8.0);
  EXPECT_LT(banded.stored_entries(), 1000u * 1000u / 4u);

  const std::string serial = run_banded(catalog, 1);
  const std::string parallel = run_banded(catalog, 4);
  // Byte-identical encoded outcomes: every counter, every telemetry sample,
  // every histogram bucket — not just the summary table.
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(CatalogScale, CatalogRegionHonorsMaxSitesByPopulation) {
  const geo::CompiledSiteCatalog catalog = synthetic_catalog(100);
  const geo::Region all = geo::catalog_region(catalog, "all");
  EXPECT_EQ(all.cities.size(), 100u);
  const geo::Region top = geo::catalog_region(catalog, "top", 10);
  ASSERT_EQ(top.cities.size(), 10u);
  // Every selected site out-populates every rejected one (stable sort by
  // descending population, SiteId tie-break).
  double min_selected = 1e18;
  for (const geo::SiteId id : top.cities) {
    min_selected = std::min(min_selected, catalog.by_id(id).population_k);
  }
  std::size_t better = 0;
  for (const geo::City& city : catalog.all()) {
    if (city.population_k > min_selected) ++better;
  }
  EXPECT_LE(better, 10u);
}

}  // namespace
}  // namespace carbonedge
