#include "solver/flow.hpp"

#include <gtest/gtest.h>

#include "solver/milp.hpp"
#include "util/random.hpp"

namespace carbonedge::solver {
namespace {

TEST(MinCostFlow, SingleArc) {
  MinCostFlow net(2);
  const std::size_t arc = net.add_arc(0, 1, 5, 2.0);
  const auto result = net.solve(0, 1);
  EXPECT_EQ(result.flow, 5);
  EXPECT_DOUBLE_EQ(result.cost, 10.0);
  EXPECT_EQ(net.flow_on(arc), 5);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel 0->1->3 / 0->2->3 paths; cheap one saturates first.
  MinCostFlow net(4);
  net.add_arc(0, 1, 3, 1.0);
  net.add_arc(1, 3, 3, 1.0);
  net.add_arc(0, 2, 10, 5.0);
  net.add_arc(2, 3, 10, 5.0);
  const auto result = net.solve(0, 3, 5);
  EXPECT_EQ(result.flow, 5);
  EXPECT_DOUBLE_EQ(result.cost, 3 * 2.0 + 2 * 10.0);
}

TEST(MinCostFlow, RespectsMaxFlowCap) {
  MinCostFlow net(2);
  net.add_arc(0, 1, 100, 1.0);
  const auto result = net.solve(0, 1, 7);
  EXPECT_EQ(result.flow, 7);
}

TEST(MinCostFlow, DisconnectedShipsNothing) {
  MinCostFlow net(3);
  net.add_arc(0, 1, 5, 1.0);
  const auto result = net.solve(0, 2);
  EXPECT_EQ(result.flow, 0);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST(MinCostFlow, ReroutesThroughResidualEdges) {
  // Classic diamond where optimal max-flow requires "undoing" flow.
  MinCostFlow net(4);
  net.add_arc(0, 1, 1, 1.0);
  net.add_arc(0, 2, 1, 3.0);
  net.add_arc(1, 2, 1, 1.0);
  net.add_arc(1, 3, 1, 4.0);
  net.add_arc(2, 3, 2, 1.0);
  const auto result = net.solve(0, 3);
  EXPECT_EQ(result.flow, 2);
  // Optimal: 0-1-2-3 (cost 3) + 0-2-3 (cost 4) = 7.
  EXPECT_DOUBLE_EQ(result.cost, 7.0);
}

TEST(MinCostFlow, NegativeCostsHandled) {
  MinCostFlow net(3);
  net.add_arc(0, 1, 2, -3.0);
  net.add_arc(1, 2, 2, 1.0);
  const auto result = net.solve(0, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, 2 * (-2.0));
}

TEST(MinCostFlow, InvalidInputsThrow) {
  MinCostFlow net(2);
  EXPECT_THROW(net.add_arc(0, 5, 1, 0.0), std::out_of_range);
  EXPECT_THROW(net.add_arc(0, 1, -1, 0.0), std::invalid_argument);
  EXPECT_THROW(net.solve(0, 9), std::out_of_range);
}

TEST(MinCostFlow, SourceEqualsSinkIsZero) {
  MinCostFlow net(2);
  net.add_arc(0, 1, 1, 1.0);
  const auto result = net.solve(0, 0);
  EXPECT_EQ(result.flow, 0);
}

TEST(MinCostFlow, AssignmentMatchesHungarianOptimum) {
  // 3x3 assignment with a known optimal matching.
  const double cost[3][3] = {{4.0, 1.0, 3.0}, {2.0, 0.0, 5.0}, {3.0, 2.0, 2.0}};
  // Optimum: a0->j1(1), a1->j0(2), a2->j2(2) = 5.
  MinCostFlow net(8);  // 0 src, 1-3 apps, 4-6 jobs, 7 sink
  for (std::size_t i = 0; i < 3; ++i) net.add_arc(0, 1 + i, 1, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) net.add_arc(1 + i, 4 + j, 1, cost[i][j]);
  }
  for (std::size_t j = 0; j < 3; ++j) net.add_arc(4 + j, 7, 1, 0.0);
  const auto result = net.solve(0, 7);
  EXPECT_EQ(result.flow, 3);
  EXPECT_DOUBLE_EQ(result.cost, 5.0);
}

// Property suite: random transportation problems cross-checked against the
// exact MILP solver.
class RandomTransport : public ::testing::TestWithParam<int> {};

TEST_P(RandomTransport, FlowMatchesMilp) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  const std::size_t apps = 2 + rng.uniform_index(4);
  const std::size_t servers = 2 + rng.uniform_index(3);
  std::vector<std::int64_t> slots(servers);
  std::int64_t total_slots = 0;
  for (auto& s : slots) {
    s = 1 + static_cast<std::int64_t>(rng.uniform_index(3));
    total_slots += s;
  }
  if (total_slots < static_cast<std::int64_t>(apps)) slots[0] += apps;  // keep feasible
  std::vector<std::vector<double>> cost(apps, std::vector<double>(servers));
  for (auto& row : cost) {
    for (double& c : row) c = rng.uniform(0.0, 10.0);
  }

  // Flow formulation.
  MinCostFlow net(apps + servers + 2);
  const std::size_t sink = apps + servers + 1;
  for (std::size_t i = 0; i < apps; ++i) net.add_arc(0, 1 + i, 1, 0.0);
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) net.add_arc(1 + i, 1 + apps + j, 1, cost[i][j]);
  }
  for (std::size_t j = 0; j < servers; ++j) net.add_arc(1 + apps + j, sink, slots[j], 0.0);
  const auto flow_result = net.solve(0, sink);

  // MILP formulation.
  LinearProgram lp;
  std::vector<int> vars;
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) vars.push_back(lp.add_variable(cost[i][j], 0.0, 1.0));
  }
  for (std::size_t i = 0; i < apps; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t j = 0; j < servers; ++j) {
      terms.emplace_back(static_cast<int>(i * servers + j), 1.0);
    }
    lp.add_constraint(std::move(terms), Sense::kEqual, 1.0);
  }
  for (std::size_t j = 0; j < servers; ++j) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t i = 0; i < apps; ++i) {
      terms.emplace_back(static_cast<int>(i * servers + j), 1.0);
    }
    lp.add_constraint(std::move(terms), Sense::kLessEqual, static_cast<double>(slots[j]));
  }
  const MilpSolution milp = solve_milp(lp, vars);

  ASSERT_EQ(milp.status, MilpStatus::kOptimal);
  EXPECT_EQ(flow_result.flow, static_cast<std::int64_t>(apps));
  EXPECT_NEAR(flow_result.cost, milp.objective, 1e-5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomTransport, ::testing::Range(0, 40));

}  // namespace
}  // namespace carbonedge::solver
