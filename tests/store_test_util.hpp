// Shared scratch-directory helper for the artifact-store test binaries.
#pragma once

#include <filesystem>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace carbonedge::testutil {

/// Unique per-construction scratch directory under the system temp dir,
/// removed on destruction. Tests from parallel ctest binaries never
/// collide: the name carries the prefix, the pid, and an in-process
/// counter.
struct TempStoreDir {
  explicit TempStoreDir(const std::string& prefix) {
    static int counter = 0;
#if defined(__unix__) || defined(__APPLE__)
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    dir = std::filesystem::temp_directory_path() /
          (prefix + "_" + std::to_string(pid) + "_" + std::to_string(counter++));
    std::filesystem::remove_all(dir);
  }
  ~TempStoreDir() { std::filesystem::remove_all(dir); }
  TempStoreDir(const TempStoreDir&) = delete;
  TempStoreDir& operator=(const TempStoreDir&) = delete;

  std::filesystem::path dir;
};

}  // namespace carbonedge::testutil
