// Failure-injection tests: infeasible batches, saturated and zero-capacity
// clusters, powered-down fleets, degenerate traces — the system must degrade
// gracefully (reject, not crash or corrupt state).
#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace carbonedge::core {
namespace {

carbon::CarbonIntensityService make_service(const geo::Region& region) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  return service;
}

TEST(FailureInjection, ImpossibleSloRejectsEverything) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 4;
  config.workload.arrivals_per_site = 1.0;
  config.workload.latency_limit_rtt_ms = -1.0;  // unsatisfiable
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  const SimulationResult result = simulation.run(config);
  EXPECT_EQ(result.apps_placed, 0u);
  EXPECT_GT(result.apps_rejected, 0u);
  EXPECT_DOUBLE_EQ(result.telemetry.total_carbon_g(), 0.0);
}

TEST(FailureInjection, SaturationRejectsOverflowOnly) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kOrinNano), service);
  SimulationConfig config;
  config.epochs = 8;
  config.workload.arrivals_per_site = 6.0;  // far beyond Orin Nano capacity
  config.workload.model_weights = {0.0, 0.0, 1.0, 0.0};  // heavy YOLOv4
  config.workload.min_rps = 8.0;
  config.workload.max_rps = 10.0;
  config.workload.mean_lifetime_epochs = 100.0;  // no departures
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.apps_placed, 0u);
  EXPECT_GT(result.apps_rejected, 0u);
  // Capacity invariants hold even under pressure.
  for (const auto& record : result.telemetry.epochs()) {
    for (const auto& site : record.sites) EXPECT_GE(site.energy_wh, 0.0);
  }
}

TEST(FailureInjection, AllServersPoweredOffStillServesByActivation) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  auto cluster = sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2);
  for (auto& site : cluster.sites()) {
    for (auto& server : site.servers()) server.set_powered_on(false);
  }
  EdgeSimulation simulation(std::move(cluster), service);
  SimulationConfig config;
  config.epochs = 4;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  const SimulationResult result = simulation.run(config);
  // CarbonEdge pays activation (Eq. 6's second term) and still places.
  EXPECT_EQ(result.apps_placed, 5u);
  EXPECT_EQ(result.apps_rejected, 0u);
}

TEST(FailureInjection, ZeroRateAppsCostNothingButPlace) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 2;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.min_rps = 0.0;
  config.workload.max_rps = 1e-9;
  config.workload.model_weights = {1.0, 0.0, 0.0, 0.0};
  const SimulationResult result = simulation.run(config);
  EXPECT_EQ(result.apps_placed, 5u);
  EXPECT_NEAR(result.telemetry.total_carbon_g(), 0.0, 1e-6);
}

TEST(FailureInjection, FlatTraceMakesPoliciesEquivalentOnCarbon) {
  // With a constant, identical intensity everywhere, CarbonEdge has no
  // spatial signal: its emissions match Latency-aware (energy decides).
  const auto region = geo::florida_region();
  carbon::CarbonIntensityService service;
  for (const geo::City& city : region.resolve()) {
    service.add_trace(
        carbon::CarbonTrace(city.name, std::vector<double>(carbon::kHoursPerYear, 250.0)));
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 12;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  const auto results = run_policies(simulation, config,
                                    {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});
  EXPECT_NEAR(carbon_saving(results[0], results[1]), 0.0, 0.02);
}

TEST(FailureInjection, ZeroIntensityZoneAttractsEverything) {
  const auto region = geo::florida_region();
  carbon::CarbonIntensityService service;
  const auto cities = region.resolve();
  for (std::size_t i = 0; i < cities.size(); ++i) {
    const double level = i == 3 ? 0.0 : 400.0;  // Orlando is carbon-free
    service.add_trace(carbon::CarbonTrace(
        cities[i].name, std::vector<double>(carbon::kHoursPerYear, level)));
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 4;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 30.0;
  const SimulationResult result = simulation.run(config);
  const auto apps = result.telemetry.apps_by_site(0, 4);
  EXPECT_DOUBLE_EQ(apps[3], 5.0);
  EXPECT_NEAR(result.telemetry.total_carbon_g(), 0.0, 1e-9);
}

TEST(FailureInjection, ShortTraceWrapsInsteadOfCrashing) {
  const auto region = geo::florida_region();
  carbon::CarbonIntensityService service;
  for (const geo::City& city : region.resolve()) {
    service.add_trace(carbon::CarbonTrace(city.name, {100.0, 200.0, 300.0}));  // 3 hours only
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 10;  // runs past the trace end -> cyclic replay
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  EXPECT_NO_THROW(simulation.run(config));
}

TEST(FailureInjection, SaturatedHeteroAlphaSweepNeverCorruptsState) {
  // Regression for a local-search bookkeeping bug: under heavy load on a
  // heterogeneous cluster, relocate/swap chains must never emit assignments
  // that exceed server capacity (previously crashed the commit path).
  const auto region = geo::central_eu_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_hetero_cluster(region, 3,
                               {sim::DeviceType::kOrinNano, sim::DeviceType::kA2,
                                sim::DeviceType::kGtx1080}),
      service);
  SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 4.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.mean_lifetime_epochs = 12.0;
  config.workload.latency_limit_rtt_ms = 25.0;
  for (double alpha = 0.0; alpha <= 1.001; alpha += 0.25) {
    config.policy = PolicyConfig::multi_objective(alpha);
    EXPECT_NO_THROW(simulation.run(config)) << "alpha " << alpha;
  }
}

TEST(FailureInjection, MixedUnsupportedModelsPartiallyPlace) {
  // GPU cluster receives a half CPU / half GPU batch: the GPU share places,
  // the CPU share is rejected.
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 2;
  config.workload.arrivals_per_site = 2.0;
  config.workload.model_weights = {0.0, 1.0, 0.0, 1.0};  // ResNet50 + SciCpu
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.apps_placed, 0u);
  EXPECT_GT(result.apps_rejected, 0u);
}

}  // namespace
}  // namespace carbonedge::core
