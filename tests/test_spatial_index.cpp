// SpatialIndex vs the brute-force oracle: the index's determinism contract
// is bit-identity with a linear scan, so every comparison here is EXPECT_EQ
// on indices and exact distances — never NEAR.
#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geo/catalog.hpp"
#include "geo/city.hpp"
#include "geo/coord.hpp"
#include "geo/site.hpp"
#include "geo/spatial_index.hpp"
#include "util/random.hpp"

namespace carbonedge::geo {
namespace {

double unit(util::Rng& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

// Random site set covering the awkward geometry: uniform sphere-ish spread
// plus clusters at both poles and on both sides of the antimeridian.
std::vector<City> fuzz_sites(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<City> sites;
  sites.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    City c;
    c.id = static_cast<SiteId>(i);
    c.name = "fuzz-" + std::to_string(i);
    c.country = "XX";
    switch (i % 7) {
      case 5:  // polar caps
        c.location.lat_deg = (rng() % 2 == 0 ? 1.0 : -1.0) * (80.0 + 10.0 * unit(rng));
        c.location.lon_deg = -180.0 + 360.0 * unit(rng);
        break;
      case 6:  // antimeridian strip
        c.location.lat_deg = -60.0 + 120.0 * unit(rng);
        c.location.lon_deg = 175.0 + 10.0 * unit(rng);
        if (c.location.lon_deg > 180.0) c.location.lon_deg -= 360.0;
        break;
      default:
        c.location.lat_deg = -90.0 + 180.0 * unit(rng);
        c.location.lon_deg = -180.0 + 360.0 * unit(rng);
        break;
    }
    sites.push_back(std::move(c));
  }
  return sites;
}

std::uint32_t brute_nearest(const std::vector<City>& sites, const GeoPoint& point) {
  double best_km = std::numeric_limits<double>::infinity();
  std::uint32_t best = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const double km = haversine_km(point, sites[i].location);
    if (km < best_km) {
      best_km = km;
      best = static_cast<std::uint32_t>(i);
    }
  }
  return best;
}

std::vector<std::uint32_t> brute_radius(const std::vector<City>& sites, const GeoPoint& point,
                                        double radius_km) {
  std::vector<std::uint32_t> hits;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (haversine_km(point, sites[i].location) <= radius_km) {
      hits.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return hits;
}

std::vector<GeoPoint> fuzz_queries(const std::vector<City>& sites, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<GeoPoint> queries;
  for (std::size_t q = 0; q < 64; ++q) {
    queries.push_back({-90.0 + 180.0 * unit(rng), -180.0 + 360.0 * unit(rng)});
  }
  // Exact site locations (distance 0 ties broken by index), both poles, and
  // points hugging the antimeridian from each side.
  for (std::size_t i = 0; i < sites.size(); i += 9) queries.push_back(sites[i].location);
  queries.push_back({90.0, 0.0});
  queries.push_back({-90.0, 135.0});
  queries.push_back({10.0, 180.0});
  queries.push_back({10.0, -180.0});
  queries.push_back({-45.0, 179.999});
  queries.push_back({67.0, -179.5});
  return queries;
}

TEST(SpatialIndex, NearestMatchesBruteForceOnFuzzedSets) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const std::vector<City> sites = fuzz_sites(257, seed);
    const SpatialIndex index(sites);
    for (const GeoPoint& q : fuzz_queries(sites, seed ^ 0xabcdefULL)) {
      const auto got = index.nearest(q);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, brute_nearest(sites, q))
          << "seed " << seed << " query (" << q.lat_deg << ", " << q.lon_deg << ")";
    }
  }
}

TEST(SpatialIndex, WithinRadiusMatchesBruteForceOnFuzzedSets) {
  const std::vector<City> sites = fuzz_sites(257, 44);
  const SpatialIndex index(sites);
  for (const GeoPoint& q : fuzz_queries(sites, 0x5eedULL)) {
    for (const double radius_km : {0.0, 150.0, 800.0, 3000.0, 12000.0, 25000.0}) {
      EXPECT_EQ(index.within_radius(q, radius_km), brute_radius(sites, q, radius_km))
          << "query (" << q.lat_deg << ", " << q.lon_deg << ") radius " << radius_km;
    }
  }
}

TEST(SpatialIndex, TinySetsAndDegenerateCells) {
  // 1-site and 2-site sets exercise the empty-cell ring expansion; antipodal
  // sites exercise the wrap distance-exactly-cols/2 column.
  std::vector<City> pair = fuzz_sites(2, 7);
  pair[0].location = {0.0, 0.0};
  pair[1].location = {0.0, 180.0};
  const SpatialIndex index(pair);
  EXPECT_EQ(*index.nearest({0.0, 89.0}), 0u);
  EXPECT_EQ(*index.nearest({0.0, 91.0}), 1u);
  EXPECT_EQ(*index.nearest({0.0, 90.0}), brute_nearest(pair, {0.0, 90.0}));

  const std::vector<City> one = fuzz_sites(1, 8);
  EXPECT_EQ(*SpatialIndex(one).nearest({45.0, 45.0}), 0u);
}

TEST(SpatialIndex, EmptyIndexReturnsNulloptAndNoHits) {
  const std::vector<City> none;
  const SpatialIndex index{std::span<const City>(none)};
  EXPECT_FALSE(index.nearest({0.0, 0.0}).has_value());
  EXPECT_TRUE(index.within_radius({0.0, 0.0}, 1000.0).empty());
}

TEST(SpatialIndex, CatalogOverloadReturnsSiteIds) {
  const auto& db = CityDatabase::builtin();
  const SpatialIndex index(db);
  // Miami's own location must come back as Miami's SiteId.
  const City& miami = db.require("Miami");
  EXPECT_EQ(*index.nearest(miami.location), miami.id);
  // And agree with the catalog's linear-scan nearest() on arbitrary points.
  for (const GeoPoint q : {GeoPoint{40.0, -100.0}, GeoPoint{48.0, 10.0}, GeoPoint{70.0, 20.0}}) {
    EXPECT_EQ(*index.nearest(q), db.nearest(q));
  }
}

TEST(SpatialIndex, PolarQueriesUseExactAnswers) {
  // Dense polar cluster: all meridians converge, which is exactly where the
  // grid metric degenerates and the k-d fallback kicks in. Still bit-equal
  // to brute force.
  std::vector<City> sites = fuzz_sites(64, 99);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    sites[i].location.lat_deg = 84.0 + 5.9 * (static_cast<double>(i) / sites.size());
    sites[i].location.lon_deg = -180.0 + 360.0 * (static_cast<double>(i * 37 % 64) / 64.0);
  }
  const SpatialIndex index(sites);
  util::Rng rng(123);
  for (int q = 0; q < 32; ++q) {
    const GeoPoint point{80.0 + 10.0 * unit(rng), -180.0 + 360.0 * unit(rng)};
    EXPECT_EQ(*index.nearest(point), brute_nearest(sites, point));
    EXPECT_EQ(index.within_radius(point, 300.0), brute_radius(sites, point, 300.0));
  }
}

}  // namespace
}  // namespace carbonedge::geo
