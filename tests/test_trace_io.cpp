#include "carbon/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "carbon/synthesizer.hpp"
#include "carbon/zone.hpp"
#include "geo/region.hpp"

namespace carbonedge::carbon {
namespace {

CarbonTrace small_trace(const std::string& zone) {
  CarbonTrace trace(zone, {100.0, 200.5, 0.0, 433.25});
  std::vector<GenerationMix> mixes(4);
  for (std::size_t h = 0; h < 4; ++h) {
    mixes[h].set(EnergySource::kGas, 0.5);
    mixes[h].set(EnergySource::kWind, 0.5);
  }
  trace.set_mixes(std::move(mixes));
  return trace;
}

TEST(TraceIo, RoundTripsIntensityAndMix) {
  std::ostringstream out;
  write_traces_csv(out, {small_trace("Alpha"), small_trace("Beta")});
  const auto traces = read_traces_csv(out.str());
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].zone(), "Alpha");
  EXPECT_EQ(traces[1].zone(), "Beta");
  ASSERT_EQ(traces[0].hours(), 4u);
  EXPECT_DOUBLE_EQ(traces[0].at(1), 200.5);
  EXPECT_DOUBLE_EQ(traces[0].at(3), 433.25);
  ASSERT_EQ(traces[0].mixes().size(), 4u);
  EXPECT_NEAR(traces[0].mixes()[0].at(EnergySource::kWind), 0.5, 1e-9);
}

TEST(TraceIo, SingleTraceWriter) {
  std::ostringstream out;
  write_trace_csv(out, small_trace("Solo"));
  const auto traces = read_traces_csv(out.str());
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].zone(), "Solo");
}

TEST(TraceIo, IntensityOnlyWithoutMixColumns) {
  const auto traces = read_traces_csv("zone,hour,intensity_g_kwh\nX,0,50\nX,1,60\n");
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].mixes().empty());
  EXPECT_DOUBLE_EQ(traces[0].at(1), 60.0);
}

TEST(TraceIo, MissingColumnsThrow) {
  EXPECT_THROW(read_traces_csv("zone,intensity_g_kwh\nX,50\n"), std::runtime_error);
}

TEST(TraceIo, NonContiguousHoursThrow) {
  EXPECT_THROW(read_traces_csv("zone,hour,intensity_g_kwh\nX,0,50\nX,2,60\n"),
               std::runtime_error);
}

TEST(TraceIo, NegativeIntensityThrows) {
  EXPECT_THROW(read_traces_csv("zone,hour,intensity_g_kwh\nX,0,-5\n"), std::runtime_error);
}

// what() of the error read_traces_csv raises for `text`, or "" if none.
std::string parse_error(const std::string& text) {
  try {
    (void)read_traces_csv(text);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return "";
}

TEST(TraceIo, ParseErrorsReportTheOffendingLine) {
  // Header is line 1; the bad row below is line 3.
  const std::string error =
      parse_error("zone,hour,intensity_g_kwh\nX,0,50\nX,1,oops\n");
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("oops"), std::string::npos) << error;

  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\nX,zero,50\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\nX,0,50\nX,3,60\n").find("line 3"),
            std::string::npos);  // non-contiguous hours
  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\nX,0,-5\n").find("line 2"),
            std::string::npos);  // negative intensity
}

TEST(TraceIo, RejectsNonFiniteAndTrailingGarbageValues) {
  // NaN/inf intensities would silently poison every downstream mean.
  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\nX,0,nan\n").find("non-finite"),
            std::string::npos);
  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\nX,0,inf\n").find("non-finite"),
            std::string::npos);
  // Partial numeric parses ("12abc") are data errors, not value 12.
  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\nX,0,12abc\n").find("invalid intensity"),
            std::string::npos);
  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\nX,0x1,50\n").find("invalid hour"),
            std::string::npos);
  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\nX,0,\n").find("invalid intensity"),
            std::string::npos);
}

TEST(TraceIo, RejectsBadMixShares) {
  const std::string header =
      "zone,hour,intensity_g_kwh,hydro,solar,wind,nuclear,biomass,gas,oil,coal\n";
  EXPECT_NE(parse_error(header + "X,0,50,0.5,0,0,0,0,nan,0,0.5\n").find("non-finite"),
            std::string::npos);
  EXPECT_NE(parse_error(header + "X,0,50,-0.5,0,0,0,0,0.5,0,1\n").find("negative mix share"),
            std::string::npos);
  EXPECT_NE(parse_error(header + "X,0,50,bad,0,0,0,0,0.5,0,0.5\n").find("line 2"),
            std::string::npos);
}

TEST(TraceIo, RejectsEmptyZoneNames) {
  EXPECT_NE(parse_error("zone,hour,intensity_g_kwh\n,0,50\n").find("empty zone"),
            std::string::npos);
}

TEST(TraceIo, SyntheticYearRoundTripsThroughFile) {
  const auto& db = geo::CityDatabase::builtin();
  const TraceSynthesizer synthesizer;
  const CarbonTrace original =
      synthesizer.synthesize(ZoneCatalog::builtin().spec_for(db.require("Graz")));
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "carbonedge_trace_io_test.csv";
  save_traces(path, {original});
  const auto loaded = load_traces(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].hours(), original.hours());
  for (HourIndex h = 0; h < original.hours(); h += 517) {
    EXPECT_NEAR(loaded[0].at(h), original.at(h), 1e-3);
  }
  EXPECT_NEAR(loaded[0].yearly_mean(), original.yearly_mean(), 0.01);
}

TEST(TraceIo, UnreadablePathThrows) {
  EXPECT_THROW(load_traces("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(TraceIo, ZoneOrderPreserved) {
  const auto traces = read_traces_csv(
      "zone,hour,intensity_g_kwh\nZed,0,1\nAnna,0,2\nZed,1,3\nAnna,1,4\n");
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].zone(), "Zed");  // first appearance wins, not alphabetical
  EXPECT_DOUBLE_EQ(traces[0].at(1), 3.0);
}

}  // namespace
}  // namespace carbonedge::carbon
