#include "carbon/forecast.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "carbon/synthesizer.hpp"
#include "carbon/zone.hpp"
#include "geo/city.hpp"

namespace carbonedge::carbon {
namespace {

CarbonTrace sine_trace() {
  std::vector<double> values;
  values.reserve(kHoursPerYear);
  for (std::uint32_t h = 0; h < kHoursPerYear; ++h) {
    values.push_back(300.0 + 100.0 * std::sin(2.0 * 3.14159265 * (h % 24) / 24.0));
  }
  return CarbonTrace("sine", std::move(values));
}

CarbonTrace real_trace() {
  const auto& db = geo::CityDatabase::builtin();
  return TraceSynthesizer().synthesize(ZoneCatalog::builtin().spec_for(db.require("Flagstaff")));
}

TEST(Oracle, ReplaysTraceExactly) {
  const CarbonTrace trace = sine_trace();
  const OracleForecaster oracle;
  const auto f = oracle.forecast(trace, 100, 24);
  ASSERT_EQ(f.size(), 24u);
  for (std::uint32_t i = 0; i < 24; ++i) EXPECT_DOUBLE_EQ(f[i], trace.at(100 + i));
  EXPECT_DOUBLE_EQ(forecast_mape(oracle, trace, 0, 500, 6), 0.0);
}

TEST(Persistence, HoldsLastObservation) {
  const CarbonTrace trace = sine_trace();
  const PersistenceForecaster persistence;
  const auto f = persistence.forecast(trace, 50, 4);
  for (const double v : f) EXPECT_DOUBLE_EQ(v, trace.at(49));
}

TEST(Persistence, AtTimeZeroUsesFirstValue) {
  const CarbonTrace trace = sine_trace();
  const PersistenceForecaster persistence;
  EXPECT_DOUBLE_EQ(persistence.forecast(trace, 0, 1)[0], trace.at(0));
}

TEST(MovingAverage, AveragesTrailingWindow) {
  const CarbonTrace trace("t", {10.0, 20.0, 30.0, 40.0, 50.0});
  const MovingAverageForecaster ma(3);
  const auto f = ma.forecast(trace, 4, 2);
  // trailing 3 of hours {1,2,3} = (20+30+40)/3 = 30.
  EXPECT_DOUBLE_EQ(f[0], 30.0);
  EXPECT_DOUBLE_EQ(f[1], 30.0);
}

TEST(MovingAverage, TruncatesAtHistoryStart) {
  const CarbonTrace trace("t", {10.0, 20.0, 30.0});
  const MovingAverageForecaster ma(24);
  EXPECT_DOUBLE_EQ(ma.forecast(trace, 2, 1)[0], 15.0);  // mean of {10, 20}
  EXPECT_DOUBLE_EQ(ma.forecast(trace, 0, 1)[0], 10.0);  // no history: first value
}

TEST(Diurnal, LearnsPerfectlyPeriodicSignal) {
  const CarbonTrace trace = sine_trace();
  const DiurnalForecaster diurnal(7);
  // After a week of history, a 24h-periodic signal is predicted exactly.
  const auto f = diurnal.forecast(trace, 24 * 10, 24);
  for (std::uint32_t i = 0; i < 24; ++i) EXPECT_NEAR(f[i], trace.at(24 * 10 + i), 1e-9);
}

TEST(Diurnal, CausalBeforeFirstDay) {
  const CarbonTrace trace = sine_trace();
  const DiurnalForecaster diurnal(7);
  const auto f = diurnal.forecast(trace, 0, 2);
  ASSERT_EQ(f.size(), 2u);  // falls back to first value, stays finite
  for (const double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(ForecastAccuracy, DiurnalBeatsPersistenceOnSolarZone) {
  // A zone with strong diurnal solar (Flagstaff) is predicted much better
  // by hour-of-day climatology than by flat persistence at 24h horizons.
  const CarbonTrace trace = real_trace();
  const DiurnalForecaster diurnal(7);
  const PersistenceForecaster persistence;
  const double mape_diurnal = forecast_mape(diurnal, trace, 24 * 14, 24 * 44, 24);
  const double mape_persistence = forecast_mape(persistence, trace, 24 * 14, 24 * 44, 24);
  EXPECT_LT(mape_diurnal, mape_persistence);
}

TEST(MeanForecast, MatchesWindowAverage) {
  const CarbonTrace trace("t", {10.0, 20.0, 30.0, 40.0});
  const OracleForecaster oracle;
  EXPECT_DOUBLE_EQ(oracle.mean_forecast(trace, 1, 2), 25.0);
  EXPECT_DOUBLE_EQ(oracle.mean_forecast(trace, 0, 0), 10.0);  // degenerate horizon
}

TEST(Factory, MakesAllKnownForecasters) {
  EXPECT_EQ(make_forecaster("oracle")->name(), "oracle");
  EXPECT_EQ(make_forecaster("persistence")->name(), "persistence");
  EXPECT_NE(make_forecaster("moving_average")->name().find("moving_average"), std::string::npos);
  EXPECT_NE(make_forecaster("diurnal")->name().find("diurnal"), std::string::npos);
  EXPECT_THROW(make_forecaster("lstm"), std::invalid_argument);
}


TEST(HoltWinters, ConstantSignalConverges) {
  const CarbonTrace trace("c", std::vector<double>(kHoursPerYear, 250.0));
  const HoltWintersForecaster hw;
  const auto f = hw.forecast(trace, 24 * 30, 24);
  for (const double v : f) EXPECT_NEAR(v, 250.0, 1e-6);
}

TEST(HoltWinters, LearnsDiurnalShape) {
  const CarbonTrace trace = sine_trace();
  const HoltWintersForecaster hw;
  const auto f = hw.forecast(trace, 24 * 30, 24);
  for (std::uint32_t i = 0; i < 24; ++i) {
    EXPECT_NEAR(f[i], trace.at(24 * 30 + i), 12.0) << i;
  }
}

TEST(HoltWinters, BeatsPersistenceOnSolarZone) {
  const CarbonTrace trace = real_trace();
  const HoltWintersForecaster hw;
  const PersistenceForecaster persistence;
  EXPECT_LT(forecast_mape(hw, trace, 24 * 14, 24 * 44, 24),
            forecast_mape(persistence, trace, 24 * 14, 24 * 44, 24));
}

TEST(HoltWinters, NonNegativeForecasts) {
  const CarbonTrace trace("near_zero", std::vector<double>(kHoursPerYear, 0.5));
  const HoltWintersForecaster hw;
  for (const double v : hw.forecast(trace, 1000, 24)) EXPECT_GE(v, 0.0);
}

TEST(HoltWinters, InvalidSmoothingThrows) {
  EXPECT_THROW(HoltWintersForecaster(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(HoltWintersForecaster(0.2, 1.5), std::invalid_argument);
}

TEST(HoltWinters, TimeZeroFallsBackToFirstValue) {
  const CarbonTrace trace = sine_trace();
  const HoltWintersForecaster hw;
  const auto f = hw.forecast(trace, 0, 3);
  for (const double v : f) EXPECT_DOUBLE_EQ(v, trace.at(0));
}

TEST(Factory, MakesHoltWinters) {
  EXPECT_EQ(make_forecaster("holt_winters")->name(), "holt_winters");
}

TEST(ForecastAccuracy, MapeZeroOnDegenerateRanges) {
  const CarbonTrace trace = sine_trace();
  const OracleForecaster oracle;
  EXPECT_DOUBLE_EQ(forecast_mape(oracle, trace, 10, 10, 4), 0.0);
  EXPECT_DOUBLE_EQ(forecast_mape(oracle, trace, 10, 20, 0), 0.0);
}

}  // namespace
}  // namespace carbonedge::carbon
