#include "core/orchestrator.hpp"
#include "core/power_manager.hpp"

#include <gtest/gtest.h>

namespace carbonedge::core {
namespace {

sim::EdgeCluster two_server_cluster() {
  return sim::make_uniform_cluster(geo::florida_region(), 2, sim::DeviceType::kA2);
}

TEST(PowerManager, DisabledIsNoop) {
  sim::EdgeCluster cluster = two_server_cluster();
  PowerManager manager;  // disabled by default
  EXPECT_EQ(manager.sweep(cluster), 0u);
  for (auto& site : cluster.sites()) {
    for (auto& server : site.servers()) EXPECT_TRUE(server.powered_on());
  }
}

TEST(PowerManager, PowersOffIdleServersAboveFloor) {
  sim::EdgeCluster cluster = two_server_cluster();
  PowerManagerConfig config;
  config.enabled = true;
  config.min_on_per_site = 1;
  PowerManager manager(config);
  const std::size_t off = manager.sweep(cluster);
  EXPECT_EQ(off, cluster.size());  // one of two per site
  for (auto& site : cluster.sites()) {
    std::size_t on = 0;
    for (auto& server : site.servers()) on += server.powered_on();
    EXPECT_EQ(on, 1u);
  }
}

TEST(PowerManager, NeverPowersOffBusyServers) {
  sim::EdgeCluster cluster = two_server_cluster();
  for (auto& site : cluster.sites()) {
    for (auto& server : site.servers()) {
      server.host({server.id() + 1000, sim::ModelType::kResNet50, 1.0});
    }
  }
  PowerManagerConfig config;
  config.enabled = true;
  config.min_on_per_site = 0;
  PowerManager manager(config);
  EXPECT_EQ(manager.sweep(cluster), 0u);
}

TEST(PowerManager, FloorOfZeroAllowsFullShutdownOfIdleSites) {
  sim::EdgeCluster cluster = two_server_cluster();
  PowerManagerConfig config;
  config.enabled = true;
  config.min_on_per_site = 0;
  PowerManager manager(config);
  EXPECT_EQ(manager.sweep(cluster), cluster.size() * 2);
}

PlacementResult fake_placement(std::size_t count) {
  PlacementResult result;
  for (std::size_t i = 0; i < count; ++i) {
    PlacementDecision d;
    d.app = i;
    d.site = i % 3;
    d.server = 0;
    d.rtt_ms = 4.0;
    result.decisions.push_back(d);
  }
  return result;
}

TEST(Orchestrator, DeploysEveryDecision) {
  Orchestrator orchestrator;
  const auto deployments = orchestrator.deploy(fake_placement(5));
  ASSERT_EQ(deployments.size(), 5u);
  for (const Deployment& d : deployments) {
    EXPECT_EQ(d.phase, DeployPhase::kRouted);
    EXPECT_GT(d.latency_ms, 0.0);
  }
  EXPECT_EQ(orchestrator.total_deployed(), 5u);
}

TEST(Orchestrator, DeployLatencyIsAboutOneSecond) {
  // Section 6.5 reports ~1.01 s to initiate an application deployment.
  Orchestrator orchestrator;
  orchestrator.deploy(fake_placement(50));
  EXPECT_GT(orchestrator.mean_deploy_ms(), 600.0);
  EXPECT_LT(orchestrator.mean_deploy_ms(), 1600.0);
}

TEST(Orchestrator, LatencyIncludesNetworkRtt) {
  OrchestratorConfig config;
  config.recipe_ms = 0.0;
  config.image_pull_ms = 0.0;
  config.start_ms = 0.0;
  config.route_ms = 0.0;
  Orchestrator orchestrator(config);
  PlacementResult result = fake_placement(1);
  result.decisions[0].rtt_ms = 12.5;
  const auto deployments = orchestrator.deploy(result);
  EXPECT_DOUBLE_EQ(deployments[0].latency_ms, 12.5);
}

TEST(Orchestrator, EmptyResultMeansNoDeployments) {
  Orchestrator orchestrator;
  EXPECT_TRUE(orchestrator.deploy(PlacementResult{}).empty());
  EXPECT_DOUBLE_EQ(orchestrator.mean_deploy_ms(), 0.0);
}

TEST(Orchestrator, PhaseNames) {
  EXPECT_STREQ(to_string(DeployPhase::kPending), "pending");
  EXPECT_STREQ(to_string(DeployPhase::kRouted), "routed");
  EXPECT_STREQ(to_string(DeployPhase::kFailed), "failed");
}

}  // namespace
}  // namespace carbonedge::core
