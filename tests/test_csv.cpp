#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace carbonedge::util {
namespace {

TEST(CsvParse, SimpleDocument) {
  const auto doc = parse_csv("zone,ci\nMiami,243\nTampa,611\n");
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "zone");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][0], "Tampa");
  EXPECT_EQ(doc.rows[1][1], "611");
}

TEST(CsvParse, ColumnLookup) {
  const auto doc = parse_csv("a,b,c\n1,2,3\n");
  EXPECT_EQ(doc.column("b"), 1u);
  EXPECT_EQ(doc.column("missing"), CsvDocument::npos);
}

TEST(CsvParse, QuotedCellsWithCommasAndNewlines) {
  const auto doc = parse_csv("name,notes\n\"Salt Lake City\",\"no green, nearby\"\nx,\"line1\nline2\"\n");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "no green, nearby");
  EXPECT_EQ(doc.rows[1][1], "line1\nline2");
}

TEST(CsvParse, EscapedQuotes) {
  const auto doc = parse_csv("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "he said \"hi\"");
}

TEST(CsvParse, CrLfTolerated) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvParse, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops\n"), std::runtime_error);
}

TEST(CsvParse, EmptyInput) {
  const auto doc = parse_csv("");
  EXPECT_TRUE(doc.header.empty());
  EXPECT_TRUE(doc.rows.empty());
}

TEST(CsvParse, NoHeaderMode) {
  const auto doc = parse_csv("1,2\n3,4\n", /*has_header=*/false);
  EXPECT_TRUE(doc.header.empty());
  ASSERT_EQ(doc.rows.size(), 2u);
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, RoundTripsThroughParser) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.header({"zone", "note"});
  writer.row({"Miami", "warm, humid"});
  writer.row_numeric({1.5, 2.0}, 3);
  const auto doc = parse_csv(os.str());
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "warm, humid");
  EXPECT_EQ(doc.rows[1][0], "1.5");
  EXPECT_EQ(doc.rows[1][1], "2");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5, 6), "1.5");
  EXPECT_EQ(format_double(2.0, 6), "2");
  EXPECT_EQ(format_double(0.125, 2), "0.12");  // round-half-to-even

}

TEST(CsvLoad, MissingFileThrows) {
  EXPECT_THROW(load_csv("/nonexistent/path/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace carbonedge::util
