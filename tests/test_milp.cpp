#include "solver/milp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace carbonedge::solver {
namespace {

TEST(Milp, SolvesBinaryKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  ->  {a, c} = 17.
  LinearProgram lp;
  const int a = lp.add_variable(-10.0, 0.0, 1.0);
  const int b = lp.add_variable(-13.0, 0.0, 1.0);
  const int c = lp.add_variable(-7.0, 0.0, 1.0);
  lp.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::kLessEqual, 6.0);
  const MilpSolution sol = solve_milp(lp, {a, b, c});
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -20.0, 1e-6);  // {b, c}: 13 + 7
  EXPECT_NEAR(sol.values[b], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[c], 1.0, 1e-6);
  EXPECT_NEAR(sol.values[a], 0.0, 1e-6);
}

TEST(Milp, IntegralRelaxationNeedsNoBranching) {
  LinearProgram lp;
  const int x = lp.add_variable(1.0, 0.0, 5.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 3.0);
  const MilpSolution sol = solve_milp(lp, {x});
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 3.0, 1e-6);
  EXPECT_EQ(sol.nodes_explored, 1u);
}

TEST(Milp, GeneralIntegerBranching) {
  // min -x s.t. 2x <= 7, x integer -> x = 3 (LP gives 3.5).
  LinearProgram lp;
  const int x = lp.add_variable(-1.0, 0.0, kInfinity);
  lp.add_constraint({{x, 2.0}}, Sense::kLessEqual, 7.0);
  const MilpSolution sol = solve_milp(lp, {x});
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.values[x], 3.0, 1e-6);
}

TEST(Milp, DetectsInfeasible) {
  // 0.4 <= x <= 0.6 with x binary has no integer point.
  LinearProgram lp;
  const int x = lp.add_variable(1.0, 0.0, 1.0);
  lp.add_constraint({{x, 1.0}}, Sense::kGreaterEqual, 0.4);
  lp.add_constraint({{x, 1.0}}, Sense::kLessEqual, 0.6);
  EXPECT_EQ(solve_milp(lp, {x}).status, MilpStatus::kInfeasible);
}

TEST(Milp, DetectsUnbounded) {
  LinearProgram lp;
  const int x = lp.add_variable(-1.0);
  EXPECT_EQ(solve_milp(lp, {x}).status, MilpStatus::kUnbounded);
}

TEST(Milp, WarmStartDoesNotChangeOptimum) {
  LinearProgram lp;
  const int a = lp.add_variable(-2.0, 0.0, 1.0);
  const int b = lp.add_variable(-3.0, 0.0, 1.0);
  lp.add_constraint({{a, 1.0}, {b, 1.0}}, Sense::kLessEqual, 1.0);
  const MilpSolution cold = solve_milp(lp, {a, b});
  const MilpSolution warm = solve_milp(lp, {a, b}, {}, std::vector<double>{1.0, 0.0});
  ASSERT_EQ(cold.status, MilpStatus::kOptimal);
  ASSERT_EQ(warm.status, MilpStatus::kOptimal);
  EXPECT_NEAR(cold.objective, warm.objective, 1e-9);
  EXPECT_NEAR(warm.objective, -3.0, 1e-6);
}

TEST(Milp, NodeLimitReturnsIncumbent) {
  // A problem with an obvious feasible warm start but tiny node budget.
  LinearProgram lp;
  std::vector<int> vars;
  for (int i = 0; i < 12; ++i) vars.push_back(lp.add_variable(-(1.0 + 0.1 * i), 0.0, 1.0));
  std::vector<std::pair<int, double>> terms;
  for (const int v : vars) terms.emplace_back(v, 1.0 + 0.01 * v);
  lp.add_constraint(std::move(terms), Sense::kLessEqual, 5.5);
  MilpOptions options;
  options.max_nodes = 1;
  const MilpSolution sol =
      solve_milp(lp, vars, options, std::vector<double>(vars.size(), 0.0));
  EXPECT_EQ(sol.status, MilpStatus::kFeasible);
}

TEST(Milp, MixedContinuousAndInteger) {
  // min x + y, x binary, y continuous, x + y >= 1.5 -> x=1, y=0.5.
  LinearProgram lp;
  const int x = lp.add_variable(1.0, 0.0, 1.0);
  const int y = lp.add_variable(1.0, 0.0, kInfinity);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kGreaterEqual, 1.5);
  const MilpSolution sol = solve_milp(lp, {x});
  ASSERT_EQ(sol.status, MilpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.5, 1e-6);
  const double xv = sol.values[x];
  EXPECT_NEAR(xv, std::round(xv), 1e-6);
}

// Property suite: random binary MILPs (<= 10 vars) vs exhaustive search.
class RandomMilp : public ::testing::TestWithParam<int> {};

TEST_P(RandomMilp, MatchesExhaustiveEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6271 + 11);
  const std::size_t n = 4 + rng.uniform_index(6);
  LinearProgram lp;
  std::vector<int> vars;
  std::vector<double> costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    costs[i] = rng.uniform(-4.0, 4.0);
    vars.push_back(lp.add_variable(costs[i], 0.0, 1.0));
  }
  struct Row {
    std::vector<double> coeffs;
    double rhs;
  };
  std::vector<Row> rows;
  const std::size_t num_rows = 1 + rng.uniform_index(3);
  for (std::size_t r = 0; r < num_rows; ++r) {
    Row row;
    row.coeffs.resize(n);
    std::vector<std::pair<int, double>> terms;
    for (std::size_t i = 0; i < n; ++i) {
      row.coeffs[i] = rng.uniform(-1.0, 2.0);
      terms.emplace_back(static_cast<int>(i), row.coeffs[i]);
    }
    row.rhs = rng.uniform(0.5, static_cast<double>(n));
    rows.push_back(row);
    lp.add_constraint(std::move(terms), Sense::kLessEqual, rows.back().rhs);
  }

  double best = kInfinity;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool ok = true;
    for (const Row& row : rows) {
      double lhs = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) lhs += row.coeffs[i];
      }
      if (lhs > row.rhs + 1e-9) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    double obj = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) obj += costs[i];
    }
    best = std::min(best, obj);
  }

  const MilpSolution sol = solve_milp(lp, vars);
  if (best == kInfinity) {
    EXPECT_EQ(sol.status, MilpStatus::kInfeasible);
  } else {
    ASSERT_EQ(sol.status, MilpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(sol.objective, best, 1e-5) << "seed " << GetParam();
    for (const int v : vars) {
      const double value = sol.values[static_cast<std::size_t>(v)];
      EXPECT_NEAR(value, std::round(value), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomMilp, ::testing::Range(0, 50));

}  // namespace
}  // namespace carbonedge::solver
