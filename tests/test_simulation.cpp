#include "core/simulation.hpp"

#include <gtest/gtest.h>

namespace carbonedge::core {
namespace {

carbon::CarbonIntensityService make_service(const geo::Region& region) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  return service;
}

SimulationConfig testbed_config(std::uint32_t epochs = 24) {
  SimulationConfig config;
  config.epochs = epochs;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};  // ResNet50
  config.workload.latency_limit_rtt_ms = 25.0;
  return config;
}

TEST(Simulation, MissingZoneTraceThrows) {
  carbon::CarbonIntensityService empty;
  auto cluster = sim::make_uniform_cluster(geo::florida_region(), 1, sim::DeviceType::kA2);
  EXPECT_THROW(EdgeSimulation(std::move(cluster), empty), std::invalid_argument);
}

TEST(Simulation, RunProducesOneRecordPerEpoch) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const SimulationResult result = simulation.run(testbed_config(24));
  EXPECT_EQ(result.telemetry.size(), 24u);
  EXPECT_EQ(result.apps_placed, 5u);
  EXPECT_EQ(result.apps_rejected, 0u);
}

TEST(Simulation, RunsAreIndependentAndRepeatable) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const SimulationResult a = simulation.run(testbed_config());
  const SimulationResult b = simulation.run(testbed_config());
  EXPECT_DOUBLE_EQ(a.telemetry.total_carbon_g(), b.telemetry.total_carbon_g());
  EXPECT_DOUBLE_EQ(a.telemetry.mean_rtt_ms(), b.telemetry.mean_rtt_ms());
}

TEST(Simulation, CarbonEdgeBeatsLatencyAwareOnCarbon) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const auto results = run_policies(simulation, testbed_config(),
                                    {PolicyConfig::latency_aware(), PolicyConfig::carbon_edge()});
  EXPECT_GT(carbon_saving(results[0], results[1]), 0.15);
  // ... at a bounded latency price (mesoscale distances).
  EXPECT_LT(latency_increase_ms(results[0], results[1]), 15.0);
  EXPECT_GE(latency_increase_ms(results[0], results[1]), 0.0);
}

TEST(Simulation, DeparturesFreeCapacity) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config;
  config.epochs = 10;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 2;
  config.workload.initial_lifetime_epochs = 3;  // all depart after 3 epochs
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  const SimulationResult result = simulation.run(config);
  const auto& last = result.telemetry.epochs().back();
  std::uint32_t hosted = 0;
  for (const auto& site : last.sites) hosted += site.apps_hosted;
  EXPECT_EQ(hosted, 0u);
  // Early epochs did host the apps.
  const auto& first = result.telemetry.epochs().front();
  std::uint32_t initial_hosted = 0;
  for (const auto& site : first.sites) initial_hosted += site.apps_hosted;
  EXPECT_EQ(initial_hosted, 10u);
}

TEST(Simulation, ReoptimizationMigratesApps) {
  // Two zones alternate which is greener every 12 hours; 12-hourly
  // re-optimization must chase the green zone (Figure 13's migration story).
  const auto region = geo::florida_region();
  carbon::CarbonIntensityService service;
  const auto cities = region.resolve();
  for (std::size_t i = 0; i < cities.size(); ++i) {
    std::vector<double> values(carbon::kHoursPerYear, 600.0);
    if (i < 2) {
      for (carbon::HourIndex h = 0; h < values.size(); ++h) {
        const bool first_half = (h / 12) % 2 == 0;
        values[h] = (i == 0) == first_half ? 50.0 : 550.0;
      }
    }
    service.add_trace(carbon::CarbonTrace(cities[i].name, std::move(values)));
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config = testbed_config(48);
  config.workload.latency_limit_rtt_ms = 30.0;
  config.reoptimize_every = 12;
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.migrations, 0u);
  EXPECT_GT(result.migration_carbon_g, 0.0);
  EXPECT_EQ(result.apps_rejected, 0u);
}

TEST(Simulation, BasePowerAccountingIncreasesEnergy) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig dynamic_only = testbed_config();
  SimulationConfig with_base = testbed_config();
  with_base.account_base_power = true;
  const SimulationResult lean = simulation.run(dynamic_only);
  const SimulationResult full = simulation.run(with_base);
  EXPECT_GT(full.telemetry.total_energy_wh(), lean.telemetry.total_energy_wh() * 1.5);
}

TEST(Simulation, PowerManagementReducesBasePowerFootprint) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 2, sim::DeviceType::kA2), service);
  SimulationConfig all_on = testbed_config();
  all_on.account_base_power = true;
  SimulationConfig managed = all_on;
  managed.power.enabled = true;
  managed.power.min_on_per_site = 0;
  const SimulationResult on = simulation.run(all_on);
  const SimulationResult swept = simulation.run(managed);
  EXPECT_LT(swept.telemetry.total_energy_wh(), on.telemetry.total_energy_wh());
}

TEST(Simulation, SolveTimeAccounted) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const SimulationResult result = simulation.run(testbed_config());
  EXPECT_GT(result.total_solve_ms, 0.0);
  EXPECT_GT(result.mean_deploy_ms, 0.0);
}

TEST(Simulation, StartHourShiftsCarbonAccounting) {
  const auto region = geo::west_us_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig january = testbed_config();
  SimulationConfig july = testbed_config();
  july.start_hour = carbon::month_start_hour(6);
  const SimulationResult winter = simulation.run(january);
  const SimulationResult summer = simulation.run(july);
  EXPECT_NE(winter.telemetry.total_carbon_g(), summer.telemetry.total_carbon_g());
}

TEST(Simulation, LoadNeverExceedsCapacityThroughoutRun) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  auto cluster = sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2);
  EdgeSimulation simulation(std::move(cluster), service);
  SimulationConfig config;
  config.epochs = 40;
  config.workload.arrivals_per_site = 3.0;  // heavy churn
  config.workload.mean_lifetime_epochs = 6.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  const SimulationResult result = simulation.run(config);
  // The run completes, places most arrivals, and rejects only under
  // genuine saturation.
  EXPECT_GT(result.apps_placed, 0u);
  EXPECT_EQ(result.telemetry.size(), 40u);
}

}  // namespace
}  // namespace carbonedge::core
