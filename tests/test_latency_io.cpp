#include "geo/latency_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "geo/region.hpp"

namespace carbonedge::geo {
namespace {

std::vector<City> florida_cities() { return florida_region().resolve(); }

TEST(LatencyIo, RoundTripsThroughCsv) {
  const auto cities = florida_cities();
  const LatencyModel model;
  std::ostringstream out;
  write_latency_csv(out, cities, model);
  const LatencyMatrix matrix = read_latency_csv(out.str(), cities);
  ASSERT_EQ(matrix.size(), cities.size());
  for (std::size_t i = 0; i < cities.size(); ++i) {
    for (std::size_t j = 0; j < cities.size(); ++j) {
      EXPECT_NEAR(matrix.one_way_ms(i, j), model.one_way_ms(cities[i], cities[j]), 1e-3);
    }
  }
}

TEST(LatencyIo, DirectionDoesNotMatter) {
  const auto cities = florida_cities();
  // Swap from/to in hand-written rows.
  std::string csv = "from,to,one_way_ms\n";
  for (std::size_t i = 0; i < cities.size(); ++i) {
    for (std::size_t j = i + 1; j < cities.size(); ++j) {
      csv += cities[j].name + "," + cities[i].name + ",5.5\n";  // reversed
    }
  }
  const LatencyMatrix matrix = read_latency_csv(csv, cities);
  EXPECT_DOUBLE_EQ(matrix.one_way_ms(0, 1), 5.5);
  EXPECT_DOUBLE_EQ(matrix.one_way_ms(1, 0), 5.5);
  EXPECT_DOUBLE_EQ(matrix.one_way_ms(2, 2), 0.0);
}

TEST(LatencyIo, MissingPairThrows) {
  const auto cities = florida_cities();
  EXPECT_THROW(read_latency_csv("from,to,one_way_ms\nMiami,Tampa,3\n", cities),
               std::runtime_error);
}

TEST(LatencyIo, MissingColumnsThrow) {
  const auto cities = florida_cities();
  EXPECT_THROW(read_latency_csv("from,to,rtt_ms\nMiami,Tampa,3\n", cities), std::runtime_error);
}

TEST(LatencyIo, NegativeLatencyThrows) {
  const auto cities = florida_cities();
  std::string csv = "from,to,one_way_ms\n";
  for (std::size_t i = 0; i < cities.size(); ++i) {
    for (std::size_t j = i + 1; j < cities.size(); ++j) {
      csv += cities[i].name + "," + cities[j].name + ",-1\n";
    }
  }
  EXPECT_THROW(read_latency_csv(csv, cities), std::runtime_error);
}

TEST(LatencyIo, FileRoundTrip) {
  const auto cities = florida_cities();
  const LatencyModel model;
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "carbonedge_latency_io_test.csv";
  save_latency(path, cities, model);
  const LatencyMatrix matrix = load_latency(path, cities);
  std::filesystem::remove(path);
  EXPECT_NEAR(matrix.one_way_ms(0, 1), model.one_way_ms(cities[0], cities[1]), 1e-3);
}

TEST(LatencyIo, UnreadablePathThrows) {
  const auto cities = florida_cities();
  EXPECT_THROW(load_latency("/nonexistent/latency.csv", cities), std::runtime_error);
}

TEST(LatencyMatrix, RawConstructorValidatesShape) {
  EXPECT_THROW(LatencyMatrix(3, std::vector<double>(8, 0.0)), std::invalid_argument);
  const LatencyMatrix ok(2, {0.0, 1.5, 1.5, 0.0});
  EXPECT_DOUBLE_EQ(ok.one_way_ms(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(ok.rtt_ms(0, 1), 3.0);
}

}  // namespace
}  // namespace carbonedge::geo
