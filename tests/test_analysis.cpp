#include "analysis/mesoscale.hpp"

#include <gtest/gtest.h>

namespace carbonedge::analysis {
namespace {

carbon::CarbonIntensityService service_for(const geo::Region& region) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  return service;
}

TEST(ZoneStats, FlatTraceHasNoVariation) {
  const carbon::CarbonTrace flat("flat",
                                 std::vector<double>(carbon::kHoursPerYear, 321.0));
  const ZoneStats stats = zone_stats(flat);
  EXPECT_DOUBLE_EQ(stats.mean_g_kwh, 321.0);
  EXPECT_DOUBLE_EQ(stats.mean_daily_swing, 0.0);
  EXPECT_DOUBLE_EQ(stats.seasonal_range, 0.0);
  EXPECT_DOUBLE_EQ(stats.low_carbon_share, 0.0);  // no mixes attached
}

TEST(ZoneStats, DiurnalSignalYieldsSwing) {
  std::vector<double> values(carbon::kHoursPerYear);
  for (std::uint32_t h = 0; h < carbon::kHoursPerYear; ++h) {
    values[h] = 400.0 + (carbon::hour_of_day(h) == 12 ? -100.0 : 0.0);
  }
  const ZoneStats stats = zone_stats(carbon::CarbonTrace("d", std::move(values)));
  EXPECT_NEAR(stats.mean_daily_swing, 100.0, 1e-6);
}

TEST(RegionSummary, ReproducesFigure3Spreads) {
  const geo::Region region = geo::central_eu_region();
  const auto service = service_for(region);
  const RegionSummary summary = summarize_region(region, service);
  EXPECT_EQ(summary.zones.size(), 5u);
  EXPECT_GT(summary.yearly_spread, 6.0);   // paper: 10.8x
  EXPECT_LT(summary.yearly_spread, 20.0);
  EXPECT_GT(summary.snapshot_spread, 1.0);
  EXPECT_GT(summary.width_km, 300.0);
}

TEST(RegionSummary, ZoneOrderMatchesRegion) {
  const geo::Region region = geo::florida_region();
  const auto service = service_for(region);
  const RegionSummary summary = summarize_region(region, service);
  EXPECT_EQ(summary.zones[0].zone, "Jacksonville");
  EXPECT_EQ(summary.zones[1].zone, "Miami");
}

TEST(BestPartner, FindsGreenerNeighborWithinBudget) {
  const geo::Region region = geo::central_eu_region();
  const auto cities = region.resolve();
  const std::vector<double> means = yearly_means(cities);
  const geo::LatencyModel latency;
  // Munich (dirtiest zone) should find a much greener partner.
  const geo::City& munich = geo::CityDatabase::builtin().require("Munich");
  const auto partner = best_partner(munich, cities, means, latency, 15.0);
  ASSERT_TRUE(partner.has_value());
  EXPECT_GT(partner->saving_fraction, 0.5);
  EXPECT_LE(partner->one_way_ms, 15.0);
}

TEST(BestPartner, NoneWhenBudgetTooTight) {
  const geo::Region region = geo::central_eu_region();
  const auto cities = region.resolve();
  const std::vector<double> means = yearly_means(cities);
  const geo::LatencyModel latency;
  const geo::City& munich = geo::CityDatabase::builtin().require("Munich");
  EXPECT_FALSE(best_partner(munich, cities, means, latency, 0.5).has_value());
}

TEST(BestPartner, GreenestZoneHasNoImprovingPartner) {
  const geo::Region region = geo::central_eu_region();
  const auto cities = region.resolve();
  const std::vector<double> means = yearly_means(cities);
  const geo::LatencyModel latency;
  // Lyon is the calibrated greenest zone; nothing nearby improves on it.
  const geo::City& lyon = geo::CityDatabase::builtin().require("Lyon");
  EXPECT_FALSE(best_partner(lyon, cities, means, latency, 20.0).has_value());
}

TEST(RadiusStudy, OpportunityGrowsWithRadius) {
  // Figure 5's monotonicity: larger radii expose at least as much saving.
  const geo::Region us = geo::cdn_region(geo::Continent::kNorthAmerica);
  const auto cities = us.resolve();
  const std::vector<double> means = yearly_means(cities);
  const geo::LatencyModel latency;
  double previous_above20 = -1.0;
  double previous_latency = -1.0;
  for (const double radius : {200.0, 500.0, 1000.0}) {
    const RadiusStudy study = radius_study(cities, means, latency, radius);
    EXPECT_GE(study.fraction_above_20, previous_above20);
    EXPECT_GE(study.median_latency_ms, previous_latency);
    EXPECT_GE(study.fraction_above_20, study.fraction_above_40);
    previous_above20 = study.fraction_above_20;
    previous_latency = study.median_latency_ms;
  }
  // At 1000 km a majority of US sites see >20% (paper: 78% combined US+EU).
  const RadiusStudy wide = radius_study(cities, means, latency, 1000.0);
  EXPECT_GT(wide.fraction_above_20, 0.4);
}

TEST(RadiusStudy, ZeroRadiusHasNoOpportunity) {
  const geo::Region region = geo::florida_region();
  const auto cities = region.resolve();
  const std::vector<double> means = yearly_means(cities);
  const RadiusStudy study = radius_study(cities, means, geo::LatencyModel{}, 1.0);
  EXPECT_DOUBLE_EQ(study.fraction_above_20, 0.0);
  EXPECT_DOUBLE_EQ(study.median_saving, 0.0);
}

TEST(YearlyMeans, MatchesDirectSynthesis) {
  const geo::Region region = geo::west_us_region();
  const auto cities = region.resolve();
  const std::vector<double> means = yearly_means(cities);
  ASSERT_EQ(means.size(), cities.size());
  const carbon::TraceSynthesizer synthesizer;
  const auto& catalog = carbon::ZoneCatalog::builtin();
  for (std::size_t i = 0; i < cities.size(); ++i) {
    EXPECT_NEAR(means[i], synthesizer.synthesize(catalog.spec_for(cities[i])).yearly_mean(),
                1e-9);
  }
}

}  // namespace
}  // namespace carbonedge::analysis
