#include "geo/region.hpp"

#include <gtest/gtest.h>

namespace carbonedge::geo {
namespace {

TEST(Region, FloridaMatchesFigure2a) {
  const Region fl = florida_region();
  EXPECT_EQ(fl.name, "Florida");
  ASSERT_EQ(fl.cities.size(), 5u);
  const auto cities = fl.resolve();
  EXPECT_EQ(cities[0].name, "Jacksonville");
  EXPECT_EQ(cities[4].name, "Tallahassee");
}

TEST(Region, AllMesoscaleRegionsHaveFiveZones) {
  for (const Region& region : mesoscale_regions()) {
    EXPECT_EQ(region.cities.size(), 5u) << region.name;
  }
}

TEST(Region, CentralEuSharesMilanWithItaly) {
  const auto italy = italy_region().resolve();
  const auto eu = central_eu_region().resolve();
  const auto has_milan = [](const std::vector<City>& cities) {
    for (const City& c : cities) {
      if (c.name == "Milan") return true;
    }
    return false;
  };
  EXPECT_TRUE(has_milan(italy));
  EXPECT_TRUE(has_milan(eu));
}

TEST(Region, BoundsAreMesoscale) {
  // Figure 2 annotates regions of roughly 650-1400 km extent.
  for (const Region& region : mesoscale_regions()) {
    const BoundingBox box = region.bounds();
    EXPECT_GT(box.width_km() + box.height_km(), 300.0) << region.name;
    EXPECT_LT(box.width_km(), 1600.0) << region.name;
    EXPECT_LT(box.height_km(), 1600.0) << region.name;
  }
}

TEST(Region, MacroRegionSpansFigure1Zones) {
  const auto cities = macro_region().resolve();
  ASSERT_EQ(cities.size(), 4u);
  EXPECT_EQ(cities[0].name, "Toronto");
  EXPECT_EQ(cities[3].name, "Warsaw");
}

TEST(CdnRegion, UsExcludesCanadaAndIsPopulationSorted) {
  const Region us = cdn_region(Continent::kNorthAmerica);
  const auto cities = us.resolve();
  ASSERT_GT(cities.size(), 30u);
  for (const City& c : cities) EXPECT_EQ(c.country, "US") << c.name;
  for (std::size_t i = 1; i < cities.size(); ++i) {
    EXPECT_GE(cities[i - 1].population_k, cities[i].population_k);
  }
}

TEST(CdnRegion, EuropeIncludesMultipleCountries) {
  const Region eu = cdn_region(Continent::kEurope);
  const auto cities = eu.resolve();
  ASSERT_GT(cities.size(), 30u);
  bool has_no = false;
  bool has_pl = false;
  for (const City& c : cities) {
    has_no |= c.country == "NO";
    has_pl |= c.country == "PL";
  }
  EXPECT_TRUE(has_no);
  EXPECT_TRUE(has_pl);
}

TEST(CdnRegion, MaxSitesTruncatesByPopulation) {
  const Region top10 = cdn_region(Continent::kEurope, 10);
  ASSERT_EQ(top10.cities.size(), 10u);
  const Region all = cdn_region(Continent::kEurope);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(top10.cities[i], all.cities[i]);
}

TEST(CdnRegion, ZeroMeansAllSites) {
  const Region all = cdn_region(Continent::kNorthAmerica, 0);
  const Region capped = cdn_region(Continent::kNorthAmerica, 10'000);
  EXPECT_EQ(all.cities.size(), capped.cities.size());
}

}  // namespace
}  // namespace carbonedge::geo
