#include "sim/app_model.hpp"
#include "sim/device.hpp"

#include <gtest/gtest.h>

namespace carbonedge::sim {
namespace {

TEST(Device, ProfilesArePhysical) {
  for (const DeviceType d : kAllDevices) {
    const DeviceProfile& p = device_profile(d);
    EXPECT_GT(p.idle_power_w, 0.0);
    EXPECT_GT(p.max_power_w, p.idle_power_w);
    EXPECT_GT(p.memory_mb, 0.0);
    EXPECT_GE(p.concurrency, 1.0);
    EXPECT_FALSE(p.name.empty());
  }
}

TEST(Device, PowerOrderingMatchesPaper) {
  // Orin Nano << A2 << GTX 1080 in power draw (Section 6.1.2 specs).
  EXPECT_LT(device_profile(DeviceType::kOrinNano).max_power_w,
            device_profile(DeviceType::kA2).max_power_w);
  EXPECT_LT(device_profile(DeviceType::kA2).max_power_w,
            device_profile(DeviceType::kGtx1080).max_power_w);
}

TEST(AppModel, GpuModelsRunOnAllGpus) {
  for (const ModelType m : kGpuModels) {
    for (const DeviceType d : {DeviceType::kOrinNano, DeviceType::kA2, DeviceType::kGtx1080}) {
      EXPECT_TRUE(profile_of(m, d).supported) << to_string(m) << " on " << to_string(d);
    }
  }
}

TEST(AppModel, CrossDomainPairsUnsupported) {
  EXPECT_FALSE(profile_of(ModelType::kSciCpu, DeviceType::kA2).supported);
  EXPECT_FALSE(profile_of(ModelType::kResNet50, DeviceType::kXeonCpu).supported);
  EXPECT_THROW((void)require_profile(ModelType::kYoloV4, DeviceType::kXeonCpu), std::invalid_argument);
}

TEST(AppModel, Figure7aEnergySpansModels) {
  // ~45x energy spread across models on the same device.
  for (const DeviceType d : {DeviceType::kOrinNano, DeviceType::kA2, DeviceType::kGtx1080}) {
    const double lo = require_profile(ModelType::kEfficientNetB0, d).energy_j;
    const double hi = require_profile(ModelType::kYoloV4, d).energy_j;
    EXPECT_GT(hi / lo, 30.0) << to_string(d);
    EXPECT_LT(hi / lo, 70.0) << to_string(d);
  }
}

TEST(AppModel, Figure7aEnergySpansDevices) {
  // ~2x energy spread across devices for the same model.
  for (const ModelType m : kGpuModels) {
    const double lo = require_profile(m, DeviceType::kOrinNano).energy_j;
    const double hi = require_profile(m, DeviceType::kGtx1080).energy_j;
    EXPECT_GT(hi / lo, 1.5) << to_string(m);
    EXPECT_LT(hi / lo, 3.0) << to_string(m);
  }
}

TEST(AppModel, Figure7bMemoryGrowsWithModelSize) {
  for (const DeviceType d : {DeviceType::kOrinNano, DeviceType::kA2, DeviceType::kGtx1080}) {
    EXPECT_LT(require_profile(ModelType::kEfficientNetB0, d).memory_mb,
              require_profile(ModelType::kResNet50, d).memory_mb);
    EXPECT_LT(require_profile(ModelType::kResNet50, d).memory_mb,
              require_profile(ModelType::kYoloV4, d).memory_mb);
    EXPECT_LE(require_profile(ModelType::kYoloV4, d).memory_mb, 560.0);
  }
}

TEST(AppModel, Figure7cFasterDevicesHaveLowerInferenceTime) {
  for (const ModelType m : kGpuModels) {
    EXPECT_GT(require_profile(m, DeviceType::kOrinNano).inference_ms,
              require_profile(m, DeviceType::kA2).inference_ms);
    EXPECT_GT(require_profile(m, DeviceType::kA2).inference_ms,
              require_profile(m, DeviceType::kGtx1080).inference_ms);
  }
  EXPECT_LE(require_profile(ModelType::kYoloV4, DeviceType::kOrinNano).inference_ms, 45.0);
}

TEST(AppModel, ComputeDemandScalesWithRateAndSpeed) {
  const double a2 = compute_demand_per_rps(ModelType::kResNet50, DeviceType::kA2);
  const double gtx = compute_demand_per_rps(ModelType::kResNet50, DeviceType::kGtx1080);
  EXPECT_GT(a2, 0.0);
  // The GTX is both faster per request and has more streams -> much lower
  // busy-fraction per rps.
  EXPECT_LT(gtx, a2);
}

TEST(AppModel, Names) {
  EXPECT_EQ(to_string(ModelType::kEfficientNetB0), "EfficientNetB0");
  EXPECT_EQ(to_string(ModelType::kSciCpu), "Sci");
}

}  // namespace
}  // namespace carbonedge::sim
