#include "runner/scenario_runner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/policy.hpp"
#include "geo/region.hpp"

namespace carbonedge::runner {
namespace {

core::SimulationConfig small_config() {
  core::SimulationConfig config;
  config.epochs = 6;
  config.workload.arrivals_per_site = 0.5;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 25.0;
  config.workload.seed = 7;
  return config;
}

TEST(ScenarioGrid, DefaultGridHasExactlyOneDefaultCell) {
  const ScenarioGrid grid;
  EXPECT_EQ(grid.size(), 1u);
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].index, 0u);
  EXPECT_EQ(scenarios[0].label, "default");
  EXPECT_FALSE(scenarios[0].region.cities.empty());
  EXPECT_FALSE(scenarios[0].mix.devices.empty());
}

TEST(ScenarioGrid, SizeIsProductOfAxisCardinalities) {
  ScenarioGrid grid(small_config());
  grid.with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()})
      .with_epochs({4, 6, 8})
      .with_workload_seeds({1, 2, 3, 4});
  EXPECT_EQ(grid.size(), 2u * 3u * 4u);
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), grid.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].index, i);
  }
}

TEST(ScenarioGrid, ExpansionIsRowMajorWithSeedsInnermost) {
  ScenarioGrid grid(small_config());
  grid.with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()})
      .with_workload_seeds({11, 22});
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].config.policy.kind, core::PolicyKind::kLatencyAware);
  EXPECT_EQ(scenarios[0].config.workload.seed, 11u);
  EXPECT_EQ(scenarios[1].config.policy.kind, core::PolicyKind::kLatencyAware);
  EXPECT_EQ(scenarios[1].config.workload.seed, 22u);
  EXPECT_EQ(scenarios[2].config.policy.kind, core::PolicyKind::kCarbonEdge);
  EXPECT_EQ(scenarios[2].config.workload.seed, 11u);
  EXPECT_EQ(scenarios[3].config.policy.kind, core::PolicyKind::kCarbonEdge);
  EXPECT_EQ(scenarios[3].config.workload.seed, 22u);
}

TEST(ScenarioGrid, AxesOverrideBaseConfigAndUnsetAxesInheritIt) {
  core::SimulationConfig base = small_config();
  base.epochs = 24;
  base.reoptimize_every = 3;
  ScenarioGrid grid(base);
  grid.with_epochs({5});
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].config.epochs, 5u);             // overridden by the axis
  EXPECT_EQ(scenarios[0].config.reoptimize_every, 3u);   // inherited from base
  EXPECT_EQ(scenarios[0].config.workload.seed, 7u);
}

TEST(ScenarioGrid, LabelsNameEverySetAxisAndAreUnique) {
  ScenarioGrid grid(small_config());
  grid.with_regions({geo::florida_region(), geo::italy_region()})
      .with_policies({core::PolicyConfig::carbon_edge()});
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_NE(scenarios[0].label.find("region="), std::string::npos);
  EXPECT_NE(scenarios[0].label.find("policy="), std::string::npos);
  EXPECT_NE(scenarios[0].label, scenarios[1].label);
}

TEST(ScenarioRunner, DistinctRegionsSharingANameGetTheirOwnCarbonService) {
  // cdn_region truncations share the display name but differ in city list;
  // the runner must not collapse them onto one service (the larger region's
  // extra zones would be missing and the sweep would throw).
  ScenarioGrid grid(small_config());
  grid.with_regions({geo::cdn_region(geo::Continent::kEurope, 3),
                     geo::cdn_region(geo::Continent::kEurope, 6)});
  const auto outcomes = ScenarioRunner(ScenarioRunnerOptions{2}).run(grid);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].result.telemetry.size(), outcomes[0].scenario.config.epochs);
  EXPECT_EQ(outcomes[1].result.telemetry.size(), outcomes[1].scenario.config.epochs);
  // Labels must stay distinguishable too (site count disambiguates).
  EXPECT_NE(outcomes[0].scenario.label, outcomes[1].scenario.label);
}

TEST(ScenarioRunner, EmptyScenarioListIsANoOp) {
  const ScenarioRunner runner;
  const auto outcomes = runner.run(std::vector<Scenario>{});
  EXPECT_TRUE(outcomes.empty());
  const util::Table table = ScenarioRunner::summarize(outcomes);
  EXPECT_EQ(table.rows(), 0u);
}

TEST(ScenarioRunner, RunsEveryCellAndPreservesGridOrder) {
  ScenarioGrid grid(small_config());
  grid.with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()})
      .with_workload_seeds({1, 2});
  const ScenarioRunner runner(ScenarioRunnerOptions{2});
  const auto outcomes = runner.run(grid);
  ASSERT_EQ(outcomes.size(), grid.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].scenario.index, i);
    EXPECT_EQ(outcomes[i].result.telemetry.size(), outcomes[i].scenario.config.epochs);
  }
}

TEST(ScenarioRunner, DeterministicAcrossThreadCounts) {
  ScenarioGrid grid(small_config());
  grid.with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::energy_aware(),
                      core::PolicyConfig::carbon_edge()})
      .with_workload_seeds({3, 9});

  const auto serial = ScenarioRunner(ScenarioRunnerOptions{1}).run(grid);
  const auto parallel = ScenarioRunner(ScenarioRunnerOptions{4}).run(grid);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scenario.label, parallel[i].scenario.label);
    // Bit-identical results, not just approximately equal: each cell is
    // fully self-contained, so the schedule cannot perturb the arithmetic.
    EXPECT_EQ(serial[i].result.telemetry.total_carbon_g(),
              parallel[i].result.telemetry.total_carbon_g());
    EXPECT_EQ(serial[i].result.telemetry.total_energy_wh(),
              parallel[i].result.telemetry.total_energy_wh());
    EXPECT_EQ(serial[i].result.telemetry.mean_rtt_ms(),
              parallel[i].result.telemetry.mean_rtt_ms());
    EXPECT_EQ(serial[i].result.apps_placed, parallel[i].result.apps_placed);
    EXPECT_EQ(serial[i].result.apps_rejected, parallel[i].result.apps_rejected);
    EXPECT_EQ(serial[i].result.migrations, parallel[i].result.migrations);
  }
  EXPECT_EQ(ScenarioRunner::summarize(serial).to_string(),
            ScenarioRunner::summarize(parallel).to_string());
}

TEST(ScenarioGrid, WorkloadAxesOverrideBaseConfig) {
  ScenarioGrid grid(small_config());
  grid.with_rtt_limits({5.0, 30.0})
      .with_arrival_rates({0.25})
      .with_defer_epochs({12})
      .with_forecasters({"persistence"});
  EXPECT_EQ(grid.size(), 2u);
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_DOUBLE_EQ(scenarios[0].config.workload.latency_limit_rtt_ms, 5.0);
  EXPECT_DOUBLE_EQ(scenarios[1].config.workload.latency_limit_rtt_ms, 30.0);
  for (const Scenario& scenario : scenarios) {
    EXPECT_DOUBLE_EQ(scenario.config.workload.arrivals_per_site, 0.25);
    EXPECT_EQ(scenario.config.workload.max_defer_epochs, 12u);
    EXPECT_EQ(scenario.forecaster, "persistence");
  }
  EXPECT_NE(scenarios[0].label.find("rtt=5"), std::string::npos);
  EXPECT_NE(scenarios[0].label.find("arrivals=0.25"), std::string::npos);
  EXPECT_NE(scenarios[0].label.find("defer=12"), std::string::npos);
  EXPECT_NE(scenarios[0].label.find("forecast=persistence"), std::string::npos);
}

TEST(ScenarioRunner, ForecasterAxisChangesPlacementAndServiceDedup) {
  // Distinct forecasters over one region must not collapse onto a single
  // carbon service; West US zone rankings are volatile enough that a lagging
  // moving average places differently than the oracle within two days.
  core::SimulationConfig config = small_config();
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = 48;
  config.forecast_horizon_hours = 6;
  ScenarioGrid grid(config);
  grid.with_regions({geo::west_us_region()}).with_forecasters({"oracle", "moving_average"});
  const auto outcomes = ScenarioRunner(ScenarioRunnerOptions{2}).run(grid);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_NE(outcomes[0].scenario.label, outcomes[1].scenario.label);
  EXPECT_EQ(outcomes[0].result.telemetry.size(), 48u);
  EXPECT_EQ(outcomes[1].result.telemetry.size(), 48u);
  // If the runner collapsed both cells onto one service (dropping the
  // forecaster from the dedup key), the results would be identical.
  EXPECT_NE(outcomes[0].result.telemetry.total_carbon_g(),
            outcomes[1].result.telemetry.total_carbon_g());
}

TEST(ScenarioRunner, PopulationMixBuildsPopulationProportionalCluster) {
  DeviceMix population;
  population.name = "A2 (population)";
  population.total_servers = 12;
  ScenarioGrid grid(small_config());
  grid.with_regions({geo::florida_region()}).with_device_mixes({population});
  const auto outcomes = ScenarioRunner(ScenarioRunnerOptions{1}).run(grid);
  ASSERT_EQ(outcomes.size(), 1u);
  // Every site exists in the telemetry, and the apportionment matches the
  // direct builder.
  const auto cluster =
      sim::make_population_cluster(geo::florida_region(), 12, sim::DeviceType::kA2);
  ASSERT_FALSE(outcomes[0].result.telemetry.epochs().empty());
  const auto& sites = outcomes[0].result.telemetry.epochs().front().sites;
  EXPECT_EQ(sites.size(), cluster.size());
}

TEST(ScenarioRunner, InitiallyOffServersStartCold) {
  // With every server initially off and power management disabled, nothing
  // hosts until placement activates a server; the activation ablation
  // relies on this starting state.
  DeviceMix cold;
  cold.name = "cold";
  cold.servers_per_site = 2;
  cold.initially_off_per_site = 1;
  core::SimulationConfig config = small_config();
  config.account_base_power = true;
  ScenarioGrid cold_grid(config);
  cold_grid.with_device_mixes({cold});
  DeviceMix warm = cold;
  warm.name = "warm";
  warm.initially_off_per_site = 0;
  ScenarioGrid warm_grid(config);
  warm_grid.with_device_mixes({warm});
  const ScenarioRunner runner(ScenarioRunnerOptions{2});
  const auto cold_outcome = runner.run(cold_grid);
  const auto warm_outcome = runner.run(warm_grid);
  // Half the fleet starting powered off must show up as less base energy.
  EXPECT_LT(cold_outcome[0].result.telemetry.total_energy_wh(),
            warm_outcome[0].result.telemetry.total_energy_wh());
}

TEST(ScenarioRunner, GridDispatchMatchesHandRolledSerialLoop) {
  // The ported benches promise byte-identical tables to their former serial
  // loops: a grid cell must be indistinguishable from constructing the
  // service, cluster, and simulation by hand.
  core::SimulationConfig config = small_config();
  config.epochs = 12;
  const std::vector<core::PolicyConfig> policies = {core::PolicyConfig::latency_aware(),
                                                    core::PolicyConfig::carbon_edge()};
  const geo::Region region = geo::central_eu_region();

  ScenarioGrid grid(config);
  grid.with_regions({region}).with_policies(policies);
  const auto outcomes = ScenarioRunner().run(grid);
  ASSERT_EQ(outcomes.size(), policies.size());

  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const auto serial = core::run_policies(simulation, config, policies);
  ASSERT_EQ(serial.size(), outcomes.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].telemetry.total_carbon_g(),
              outcomes[i].result.telemetry.total_carbon_g());
    EXPECT_EQ(serial[i].telemetry.total_energy_wh(),
              outcomes[i].result.telemetry.total_energy_wh());
    EXPECT_EQ(serial[i].telemetry.mean_rtt_ms(), outcomes[i].result.telemetry.mean_rtt_ms());
    EXPECT_EQ(serial[i].apps_placed, outcomes[i].result.apps_placed);
    EXPECT_EQ(serial[i].apps_rejected, outcomes[i].result.apps_rejected);
    EXPECT_EQ(serial[i].apps_expired_deferred, outcomes[i].result.apps_expired_deferred);
    EXPECT_EQ(serial[i].migrations, outcomes[i].result.migrations);
    EXPECT_EQ(serial[i].migrations_skipped, outcomes[i].result.migrations_skipped);
  }
}

TEST(ScenarioRunner, SummaryReportsExpiredDeferredColumn) {
  const ScenarioGrid grid(small_config());
  const auto outcomes = ScenarioRunner(ScenarioRunnerOptions{1}).run(grid);
  const util::Table table = ScenarioRunner::summarize(outcomes);
  EXPECT_NE(table.to_string().find("ExpiredDef"), std::string::npos);
}

TEST(ScenarioRunner, SummaryReportsDowntimeColumn) {
  const ScenarioGrid grid(small_config());
  const auto outcomes = ScenarioRunner(ScenarioRunnerOptions{1}).run(grid);
  const util::Table table = ScenarioRunner::summarize(outcomes);
  EXPECT_NE(table.to_string().find("Downtime"), std::string::npos);
}

TEST(ScenarioRunner, SummaryHasOneRowPerScenarioInOrder) {
  ScenarioGrid grid(small_config());
  grid.with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()});
  const auto outcomes = ScenarioRunner(ScenarioRunnerOptions{2}).run(grid);
  const util::Table table = ScenarioRunner::summarize(outcomes);
  EXPECT_EQ(table.rows(), outcomes.size());
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("policy="), std::string::npos);
}

}  // namespace
}  // namespace carbonedge::runner
