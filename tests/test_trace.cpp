#include "carbon/trace.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace carbonedge::carbon {
namespace {

CarbonTrace ramp_trace(std::size_t hours) {
  std::vector<double> values(hours);
  std::iota(values.begin(), values.end(), 0.0);
  return CarbonTrace("ramp", std::move(values));
}

TEST(CarbonTrace, ConstructionValidates) {
  EXPECT_THROW(CarbonTrace("empty", {}), std::invalid_argument);
  EXPECT_THROW(CarbonTrace("neg", {1.0, -2.0}), std::invalid_argument);
  EXPECT_NO_THROW(CarbonTrace("ok", {0.0, 1.0}));
}

TEST(CarbonTrace, AtWrapsCyclically) {
  const CarbonTrace trace("t", {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(trace.at(0), 10.0);
  EXPECT_DOUBLE_EQ(trace.at(2), 30.0);
  EXPECT_DOUBLE_EQ(trace.at(3), 10.0);
  EXPECT_DOUBLE_EQ(trace.at(7), 20.0);
}

TEST(CarbonTrace, MeanOverWindow) {
  const CarbonTrace trace("t", {10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(trace.mean_over(0, 4), 25.0);
  EXPECT_DOUBLE_EQ(trace.mean_over(1, 2), 25.0);
  EXPECT_DOUBLE_EQ(trace.mean_over(3, 2), 25.0);  // wraps: 40, 10
  EXPECT_DOUBLE_EQ(trace.mean_over(0, 0), 0.0);
}

TEST(CarbonTrace, YearlyStatsOnFullTrace) {
  const CarbonTrace trace = ramp_trace(kHoursPerYear);
  EXPECT_DOUBLE_EQ(trace.yearly_min(), 0.0);
  EXPECT_DOUBLE_EQ(trace.yearly_max(), kHoursPerYear - 1.0);
  EXPECT_NEAR(trace.yearly_mean(), (kHoursPerYear - 1.0) / 2.0, 1e-6);
}

TEST(CarbonTrace, MonthlyMeansPartitionYearlyMean) {
  const CarbonTrace trace = ramp_trace(kHoursPerYear);
  double weighted = 0.0;
  for (std::uint32_t m = 0; m < kMonthsPerYear; ++m) {
    weighted += trace.monthly_mean(m) * days_in_month(m) * kHoursPerDay;
  }
  EXPECT_NEAR(weighted / kHoursPerYear, trace.yearly_mean(), 1e-6);
}

TEST(CarbonTrace, MonthlyMeanOfRampIncreases) {
  const CarbonTrace trace = ramp_trace(kHoursPerYear);
  for (std::uint32_t m = 1; m < kMonthsPerYear; ++m) {
    EXPECT_GT(trace.monthly_mean(m), trace.monthly_mean(m - 1));
  }
}

TEST(CarbonTrace, MixSeriesLengthChecked) {
  CarbonTrace trace("t", {1.0, 2.0});
  EXPECT_THROW(trace.set_mixes(std::vector<GenerationMix>(3)), std::invalid_argument);
  EXPECT_NO_THROW(trace.set_mixes(std::vector<GenerationMix>(2)));
  EXPECT_EQ(trace.mixes().size(), 2u);
}

TEST(CarbonTrace, AverageMixNormalized) {
  CarbonTrace trace("t", {1.0, 2.0});
  std::vector<GenerationMix> mixes(2);
  mixes[0].set(EnergySource::kGas, 1.0);
  mixes[1].set(EnergySource::kWind, 1.0);
  trace.set_mixes(std::move(mixes));
  const GenerationMix avg = trace.average_mix();
  EXPECT_NEAR(avg.total(), 1.0, 1e-9);
  EXPECT_NEAR(avg.at(EnergySource::kGas), 0.5, 1e-9);
  EXPECT_NEAR(avg.at(EnergySource::kWind), 0.5, 1e-9);
}

TEST(CarbonTrace, AverageMixEmptyWhenNoMixes) {
  const CarbonTrace trace("t", {1.0});
  EXPECT_DOUBLE_EQ(trace.average_mix().total(), 0.0);
}

}  // namespace
}  // namespace carbonedge::carbon
