#include "carbon/mix.hpp"
#include "carbon/source.hpp"

#include <gtest/gtest.h>

namespace carbonedge::carbon {
namespace {

TEST(EnergySource, IntensitiesOrderedByCleanliness) {
  EXPECT_LT(carbon_intensity_g_per_kwh(EnergySource::kWind),
            carbon_intensity_g_per_kwh(EnergySource::kSolar));
  EXPECT_LT(carbon_intensity_g_per_kwh(EnergySource::kNuclear),
            carbon_intensity_g_per_kwh(EnergySource::kHydro));
  EXPECT_LT(carbon_intensity_g_per_kwh(EnergySource::kGas),
            carbon_intensity_g_per_kwh(EnergySource::kCoal));
  EXPECT_LT(carbon_intensity_g_per_kwh(EnergySource::kGas),
            carbon_intensity_g_per_kwh(EnergySource::kOil));
}

TEST(EnergySource, DispatchabilityClassification) {
  EXPECT_TRUE(is_dispatchable(EnergySource::kGas));
  EXPECT_TRUE(is_dispatchable(EnergySource::kCoal));
  EXPECT_TRUE(is_dispatchable(EnergySource::kOil));
  EXPECT_TRUE(is_dispatchable(EnergySource::kBiomass));
  EXPECT_FALSE(is_dispatchable(EnergySource::kSolar));
  EXPECT_FALSE(is_dispatchable(EnergySource::kWind));
  EXPECT_FALSE(is_dispatchable(EnergySource::kHydro));
  EXPECT_FALSE(is_dispatchable(EnergySource::kNuclear));
}

TEST(EnergySource, NamesRoundTrip) {
  for (const EnergySource s : kAllSources) {
    EXPECT_NE(to_string(s), "?");
  }
}

TEST(GenerationMix, DefaultIsEmpty) {
  const GenerationMix mix;
  EXPECT_DOUBLE_EQ(mix.total(), 0.0);
  EXPECT_DOUBLE_EQ(mix.carbon_intensity(), 0.0);
  EXPECT_DOUBLE_EQ(mix.low_carbon_share(), 0.0);
}

TEST(GenerationMix, SetAndAddAccumulate) {
  GenerationMix mix;
  mix.set(EnergySource::kGas, 0.4);
  mix.add(EnergySource::kGas, 0.1);
  EXPECT_DOUBLE_EQ(mix.at(EnergySource::kGas), 0.5);
}

TEST(GenerationMix, NegativeValuesClampToZero) {
  GenerationMix mix;
  mix.set(EnergySource::kCoal, -3.0);
  EXPECT_DOUBLE_EQ(mix.at(EnergySource::kCoal), 0.0);
}

TEST(GenerationMix, NormalizeSumsToOne) {
  GenerationMix mix = make_mix({{EnergySource::kGas, 2.0}, {EnergySource::kWind, 2.0}});
  mix.normalize();
  EXPECT_DOUBLE_EQ(mix.total(), 1.0);
  EXPECT_DOUBLE_EQ(mix.at(EnergySource::kGas), 0.5);
}

TEST(GenerationMix, NormalizeEmptyIsNoop) {
  GenerationMix mix;
  mix.normalize();
  EXPECT_DOUBLE_EQ(mix.total(), 0.0);
}

TEST(GenerationMix, CarbonIntensityIsWeightedAverage) {
  const GenerationMix mix =
      make_mix({{EnergySource::kCoal, 0.5}, {EnergySource::kWind, 0.5}});
  const double expected = 0.5 * 820.0 + 0.5 * 11.0;
  EXPECT_NEAR(mix.carbon_intensity(), expected, 1e-9);
}

TEST(GenerationMix, CarbonIntensityScaleInvariant) {
  const GenerationMix small =
      make_mix({{EnergySource::kGas, 0.2}, {EnergySource::kHydro, 0.3}});
  const GenerationMix large =
      make_mix({{EnergySource::kGas, 2.0}, {EnergySource::kHydro, 3.0}});
  EXPECT_NEAR(small.carbon_intensity(), large.carbon_intensity(), 1e-9);
}

TEST(GenerationMix, PureSourceBounds) {
  for (const EnergySource s : kAllSources) {
    const GenerationMix mix = make_mix({{s, 1.0}});
    EXPECT_DOUBLE_EQ(mix.carbon_intensity(), carbon_intensity_g_per_kwh(s));
  }
}

TEST(GenerationMix, LowCarbonShare) {
  const GenerationMix mix = make_mix({{EnergySource::kHydro, 0.3},
                                      {EnergySource::kNuclear, 0.3},
                                      {EnergySource::kCoal, 0.4}});
  EXPECT_NEAR(mix.low_carbon_share(), 0.6, 1e-9);
}

TEST(GenerationMix, EqualityComparesShares) {
  const GenerationMix a = make_mix({{EnergySource::kGas, 0.5}});
  const GenerationMix b = make_mix({{EnergySource::kGas, 0.5}});
  const GenerationMix c = make_mix({{EnergySource::kGas, 0.6}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace carbonedge::carbon
