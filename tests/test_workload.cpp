#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include "geo/region.hpp"

namespace carbonedge::sim {
namespace {

EdgeCluster florida_cluster() {
  return make_uniform_cluster(geo::florida_region(), 1, DeviceType::kA2);
}

TEST(Workload, EmptyClusterThrows) {
  geo::Region empty;
  empty.name = "empty";
  EdgeCluster cluster(empty);
  EXPECT_THROW(WorkloadGenerator(WorkloadParams{}, cluster), std::invalid_argument);
}

TEST(Workload, DeterministicForSameSeed) {
  EdgeCluster cluster = florida_cluster();
  WorkloadParams params;
  params.seed = 123;
  WorkloadGenerator a(params, cluster);
  WorkloadGenerator b(params, cluster);
  for (std::uint32_t e = 0; e < 5; ++e) {
    const auto x = a.arrivals(e);
    const auto y = b.arrivals(e);
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x[i].model, y[i].model);
      EXPECT_EQ(x[i].origin_site, y[i].origin_site);
      EXPECT_DOUBLE_EQ(x[i].rps, y[i].rps);
    }
  }
}

TEST(Workload, AppIdsAreUnique) {
  EdgeCluster cluster = florida_cluster();
  WorkloadGenerator gen(WorkloadParams{}, cluster);
  std::set<AppId> ids;
  for (std::uint32_t e = 0; e < 20; ++e) {
    for (const Application& app : gen.arrivals(e)) {
      EXPECT_TRUE(ids.insert(app.id).second);
    }
  }
}

TEST(Workload, ArrivalVolumeMatchesRate) {
  EdgeCluster cluster = florida_cluster();
  WorkloadParams params;
  params.arrivals_per_site = 3.0;
  WorkloadGenerator gen(params, cluster);
  double total = 0.0;
  const int epochs = 400;
  for (int e = 0; e < epochs; ++e) total += static_cast<double>(gen.arrivals(e).size());
  const double per_epoch = total / epochs;
  EXPECT_NEAR(per_epoch, 3.0 * 5.0, 1.5);
}

TEST(Workload, FieldsWithinConfiguredRanges) {
  EdgeCluster cluster = florida_cluster();
  WorkloadParams params;
  params.min_rps = 2.0;
  params.max_rps = 4.0;
  params.latency_limit_rtt_ms = 15.0;
  params.model_weights = {1.0, 1.0, 0.0, 0.0};
  WorkloadGenerator gen(params, cluster);
  for (std::uint32_t e = 0; e < 50; ++e) {
    for (const Application& app : gen.arrivals(e)) {
      EXPECT_GE(app.rps, 2.0);
      EXPECT_LT(app.rps, 4.0);
      EXPECT_DOUBLE_EQ(app.latency_limit_rtt_ms, 15.0);
      EXPECT_TRUE(app.model == ModelType::kEfficientNetB0 || app.model == ModelType::kResNet50);
      EXPECT_LT(app.origin_site, cluster.size());
      EXPECT_GE(app.remaining_epochs, 1u);
    }
  }
}

TEST(Workload, PopulationDemandSkewsTowardLargeMetros) {
  EdgeCluster cluster = florida_cluster();
  WorkloadParams params;
  params.demand = DemandDistribution::kPopulation;
  params.arrivals_per_site = 2.0;
  WorkloadGenerator gen(params, cluster);
  std::vector<double> per_site(cluster.size(), 0.0);
  for (std::uint32_t e = 0; e < 500; ++e) {
    for (const Application& app : gen.arrivals(e)) per_site[app.origin_site] += 1.0;
  }
  // Site 1 is Miami (6.1M), site 4 Tallahassee (0.39M).
  EXPECT_GT(per_site[1], 5.0 * per_site[4]);
}

TEST(Workload, PopulationDemandPreservesTotalVolume) {
  EdgeCluster cluster = florida_cluster();
  WorkloadParams uniform;
  uniform.arrivals_per_site = 2.0;
  WorkloadParams population = uniform;
  population.demand = DemandDistribution::kPopulation;
  WorkloadGenerator gu(uniform, cluster);
  WorkloadGenerator gp(population, cluster);
  double total_u = 0.0;
  double total_p = 0.0;
  for (std::uint32_t e = 0; e < 600; ++e) {
    total_u += static_cast<double>(gu.arrivals(e).size());
    total_p += static_cast<double>(gp.arrivals(e).size());
  }
  EXPECT_NEAR(total_p / total_u, 1.0, 0.1);
}

TEST(Workload, InitialAppsInjectedAtEpochZeroOnly) {
  EdgeCluster cluster = florida_cluster();
  WorkloadParams params;
  params.arrivals_per_site = 0.0;
  params.initial_per_site = 2;
  WorkloadGenerator gen(params, cluster);
  const auto first = gen.arrivals(0);
  EXPECT_EQ(first.size(), 2u * cluster.size());
  for (const Application& app : first) {
    EXPECT_GE(app.remaining_epochs, 1000000u);  // long-lived
  }
  EXPECT_TRUE(gen.arrivals(1).empty());
}

TEST(Workload, BatchProducesExactCount) {
  EdgeCluster cluster = florida_cluster();
  WorkloadGenerator gen(WorkloadParams{}, cluster);
  const auto batch = gen.batch(37);
  EXPECT_EQ(batch.size(), 37u);
}

TEST(Workload, LifetimeMeanApproximatesConfig) {
  EdgeCluster cluster = florida_cluster();
  WorkloadParams params;
  params.mean_lifetime_epochs = 10.0;
  WorkloadGenerator gen(params, cluster);
  double total = 0.0;
  const auto batch = gen.batch(4000);
  for (const Application& app : batch) total += static_cast<double>(app.remaining_epochs);
  EXPECT_NEAR(total / 4000.0, 10.0, 1.0);
}

}  // namespace
}  // namespace carbonedge::sim
