#include "geo/latency.hpp"

#include <gtest/gtest.h>

#include "geo/region.hpp"

namespace carbonedge::geo {
namespace {

const CityDatabase& db() { return CityDatabase::builtin(); }

TEST(LatencyModel, ZeroForSameCity) {
  const LatencyModel model;
  const City& miami = db().require("Miami");
  EXPECT_DOUBLE_EQ(model.one_way_ms(miami, miami), 0.0);
}

TEST(LatencyModel, SymmetricAcrossArgumentOrder) {
  const LatencyModel model;
  const City& a = db().require("Miami");
  const City& b = db().require("Tampa");
  EXPECT_DOUBLE_EQ(model.one_way_ms(a, b), model.one_way_ms(b, a));
}

TEST(LatencyModel, DeterministicAcrossInstances) {
  const LatencyModel m1;
  const LatencyModel m2;
  const City& a = db().require("Bern");
  const City& b = db().require("Graz");
  EXPECT_DOUBLE_EQ(m1.one_way_ms(a, b), m2.one_way_ms(a, b));
}

TEST(LatencyModel, RttIsTwiceOneWay) {
  const LatencyModel model;
  const City& a = db().require("Lyon");
  const City& b = db().require("Munich");
  EXPECT_DOUBLE_EQ(model.rtt_ms(a, b), 2.0 * model.one_way_ms(a, b));
}

TEST(LatencyModel, AboveSpeedOfLightFloor) {
  const LatencyModel model;
  const auto cities = db().all();
  for (std::size_t i = 0; i < cities.size(); i += 7) {
    for (std::size_t j = i + 1; j < cities.size(); j += 11) {
      const double km = haversine_km(cities[i].location, cities[j].location);
      const double floor_ms = km / 204.0;
      EXPECT_GT(model.one_way_ms(cities[i], cities[j]), floor_ms)
          << cities[i].name << " - " << cities[j].name;
    }
  }
}

TEST(LatencyModel, CalibratedToTable1Florida) {
  // Paper Table 1a: Florida one-way latencies between 1.86 and 7.2 ms.
  const LatencyModel model;
  const auto cities = florida_region().resolve();
  for (std::size_t i = 0; i < cities.size(); ++i) {
    for (std::size_t j = i + 1; j < cities.size(); ++j) {
      const double ms = model.one_way_ms(cities[i], cities[j]);
      EXPECT_GT(ms, 1.0) << cities[i].name << "-" << cities[j].name;
      EXPECT_LT(ms, 9.0) << cities[i].name << "-" << cities[j].name;
    }
  }
}

TEST(LatencyModel, CalibratedToTable1CentralEu) {
  // Paper Table 1b: Central-EU one-way latencies between ~4 and ~16.2 ms.
  const LatencyModel model;
  const auto cities = central_eu_region().resolve();
  for (std::size_t i = 0; i < cities.size(); ++i) {
    for (std::size_t j = i + 1; j < cities.size(); ++j) {
      const double ms = model.one_way_ms(cities[i], cities[j]);
      EXPECT_GT(ms, 2.0);
      EXPECT_LT(ms, 18.0);
    }
  }
}

TEST(LatencyModel, CrossBorderPairsPayPenalty) {
  // Same distance, but a cross-border pair should generally exceed a
  // domestic pair of similar length; verify the penalty enters the model by
  // comparing parameterizations directly.
  LatencyModelParams with_penalty;
  LatencyModelParams without_penalty = with_penalty;
  without_penalty.cross_border_penalty = 0.0;
  const LatencyModel penalized(with_penalty);
  const LatencyModel flat(without_penalty);
  const City& bern = db().require("Bern");
  const City& munich = db().require("Munich");  // CH - DE crossing
  EXPECT_GT(penalized.one_way_ms(bern, munich), flat.one_way_ms(bern, munich));
  const City& tampa = db().require("Tampa");
  const City& orlando = db().require("Orlando");  // domestic
  EXPECT_DOUBLE_EQ(penalized.one_way_ms(tampa, orlando), flat.one_way_ms(tampa, orlando));
}

TEST(LatencyMatrix, MatchesModelAndIsSymmetric) {
  const LatencyModel model;
  const auto cities = florida_region().resolve();
  const LatencyMatrix matrix(model, cities);
  ASSERT_EQ(matrix.size(), cities.size());
  for (std::size_t i = 0; i < cities.size(); ++i) {
    EXPECT_DOUBLE_EQ(matrix.one_way_ms(i, i), 0.0);
    for (std::size_t j = 0; j < cities.size(); ++j) {
      EXPECT_DOUBLE_EQ(matrix.one_way_ms(i, j), matrix.one_way_ms(j, i));
      EXPECT_DOUBLE_EQ(matrix.one_way_ms(i, j), model.one_way_ms(cities[i], cities[j]));
      EXPECT_DOUBLE_EQ(matrix.rtt_ms(i, j), 2.0 * matrix.one_way_ms(i, j));
    }
  }
}

TEST(LatencyModel, LongerDistanceCostsMoreOnAverage) {
  const LatencyModel model;
  const City& miami = db().require("Miami");
  const City& orlando = db().require("Orlando");      // ~330 km
  const City& seattle = db().require("Seattle");      // ~4400 km
  EXPECT_LT(model.one_way_ms(miami, orlando), model.one_way_ms(miami, seattle));
}

}  // namespace
}  // namespace carbonedge::geo
