// Tests for the extension features: data-movement (migration) costs — the
// paper's Section 9 future work — and crash-failure injection with
// redeployment (Figure 6 step 1).
#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace carbonedge::core {
namespace {

carbon::CarbonIntensityService make_service(const geo::Region& region) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  return service;
}

SimulationConfig base_config() {
  SimulationConfig config;
  config.epochs = 48;
  config.workload.arrivals_per_site = 0.5;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.mean_lifetime_epochs = 20.0;
  config.workload.latency_limit_rtt_ms = 25.0;
  return config;
}

TEST(Migration, NoReoptimizationMeansNoMigrationCost) {
  const auto region = geo::central_eu_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const SimulationResult result = simulation.run(base_config());
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_DOUBLE_EQ(result.migration_energy_wh, 0.0);
  EXPECT_DOUBLE_EQ(result.migration_carbon_g, 0.0);
}

TEST(Migration, ReoptimizationChargesDataMovement) {
  const auto region = geo::central_eu_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config = base_config();
  config.reoptimize_every = 12;
  // Diurnal intensity shifts re-rank zones over the day, so 12-hourly
  // re-optimization produces genuine moves to charge for.
  config.policy = PolicyConfig::carbon_edge();
  const SimulationResult result = simulation.run(config);
  if (result.migrations > 0) {
    EXPECT_GT(result.migration_energy_wh, 0.0);
    EXPECT_GT(result.migration_carbon_g, 0.0);
    // The telemetry totals include the migration overhead.
    double site_carbon = 0.0;
    for (const auto& record : result.telemetry.epochs()) {
      for (const auto& site : record.sites) site_carbon += site.carbon_g;
    }
    EXPECT_NEAR(result.telemetry.total_carbon_g(),
                site_carbon + result.migration_carbon_g, 1e-6);
  }
}

TEST(Migration, CostAwareFilterSkipsUnprofitableMoves) {
  const auto region = geo::central_eu_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig naive = base_config();
  naive.reoptimize_every = 6;
  SimulationConfig aware = naive;
  aware.migration.cost_aware = true;
  aware.migration.network_energy_wh_per_gb = 5000.0;  // make moving very expensive
  const SimulationResult naive_result = simulation.run(naive);
  const SimulationResult aware_result = simulation.run(aware);
  EXPECT_LE(aware_result.migrations, naive_result.migrations);
  EXPECT_GT(aware_result.migrations_skipped, 0u);
}

TEST(Migration, ExpensiveTransfersRaiseTotalCarbonUnderNaiveReopt) {
  const auto region = geo::central_eu_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig cheap = base_config();
  cheap.reoptimize_every = 6;
  cheap.migration.network_energy_wh_per_gb = 1.0;
  SimulationConfig pricey = cheap;
  pricey.migration.network_energy_wh_per_gb = 500.0;
  const SimulationResult cheap_result = simulation.run(cheap);
  const SimulationResult pricey_result = simulation.run(pricey);
  if (cheap_result.migrations > 0) {
    EXPECT_GT(pricey_result.migration_carbon_g, cheap_result.migration_carbon_g);
    EXPECT_GE(pricey_result.telemetry.total_carbon_g(),
              cheap_result.telemetry.total_carbon_g());
  }
}

TEST(Failures, DisabledByDefault) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const SimulationResult result = simulation.run(base_config());
  EXPECT_EQ(result.server_failures, 0u);
  EXPECT_EQ(result.apps_redeployed, 0u);
}

TEST(Failures, RateRoughlyMatchesMtbf) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 2, sim::DeviceType::kA2), service);
  SimulationConfig config = base_config();
  config.epochs = 200;
  config.failures.mtbf_epochs = 50.0;
  config.failures.repair_epochs = 1;
  const SimulationResult result = simulation.run(config);
  // 10 servers x 200 epochs / 50 MTBF ~ 40 expected failures (repairs keep
  // nearly the whole fleet exposed).
  EXPECT_GT(result.server_failures, 10u);
  EXPECT_LT(result.server_failures, 90u);
}

TEST(Failures, CrashedAppsAreRedeployedElsewhere) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config = base_config();
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;   // 5 long-lived apps
  config.epochs = 60;
  config.failures.mtbf_epochs = 20.0;
  config.failures.repair_epochs = 4;
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.server_failures, 0u);
  EXPECT_GT(result.apps_redeployed, 0u);
  // Long-lived apps stay hosted: the final epoch still serves all 5 unless
  // every server happens to be down (not the case with 5 sites, short MTTR).
  const auto& last = result.telemetry.epochs().back();
  std::uint32_t hosted = 0;
  for (const auto& site : last.sites) hosted += site.apps_hosted;
  EXPECT_GE(hosted, 4u);
}

TEST(Failures, FailedServersRefuseLoadUntilRepaired) {
  sim::EdgeServer server(0, sim::ServerConfig{.name = "s", .device = sim::DeviceType::kA2});
  server.host({1, sim::ModelType::kResNet50, 2.0});
  server.set_failed(true);
  EXPECT_TRUE(server.failed());
  EXPECT_FALSE(server.powered_on());
  EXPECT_EQ(server.app_count(), 0u);  // crash dropped hosted state
  EXPECT_FALSE(server.can_host(sim::ModelType::kResNet50, 1.0));
  EXPECT_THROW(server.set_powered_on(true), std::runtime_error);
  server.set_failed(false);
  server.set_powered_on(true);
  EXPECT_TRUE(server.can_host(sim::ModelType::kResNet50, 1.0));
}

TEST(Failures, DeterministicForSameSeed) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config = base_config();
  config.failures.mtbf_epochs = 30.0;
  const SimulationResult a = simulation.run(config);
  const SimulationResult b = simulation.run(config);
  EXPECT_EQ(a.server_failures, b.server_failures);
  EXPECT_EQ(a.apps_redeployed, b.apps_redeployed);
  EXPECT_DOUBLE_EQ(a.telemetry.total_carbon_g(), b.telemetry.total_carbon_g());
}


TEST(TemporalShifting, DisabledByDefaultPlacesImmediately) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  const SimulationResult result = simulation.run(base_config());
  EXPECT_EQ(result.apps_deferred, 0u);
}

TEST(TemporalShifting, DeferredAppsEventuallyStart) {
  const auto region = geo::florida_region();
  const auto service = make_service(region);
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config = base_config();
  config.epochs = 72;
  config.workload.arrivals_per_site = 0.5;
  config.workload.max_defer_epochs = 12;
  const SimulationResult result = simulation.run(config);
  EXPECT_GT(result.apps_deferred, 0u);
  // Everything that arrived early enough must have started (defer budget
  // is 12 epochs; the run is 72): placed + rejected covers the arrivals
  // except at most the tail still waiting.
  EXPECT_GT(result.apps_placed, result.apps_deferred / 2);
}

TEST(TemporalShifting, StartsAtLowIntensityHours) {
  // A zone whose intensity is 50 only at hours 10-14 and 600 otherwise:
  // deferrable apps must start overwhelmingly inside the green window.
  const auto region = geo::florida_region();
  carbon::CarbonIntensityService service;
  for (const geo::City& city : region.resolve()) {
    std::vector<double> values(carbon::kHoursPerYear, 600.0);
    for (carbon::HourIndex h = 0; h < values.size(); ++h) {
      const auto hod = carbon::hour_of_day(h);
      if (hod >= 10 && hod < 14) values[h] = 50.0;
    }
    service.add_trace(carbon::CarbonTrace(city.name, std::move(values)));
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config = base_config();
  config.epochs = 96;
  config.workload.arrivals_per_site = 0.4;
  config.workload.max_defer_epochs = 24;
  config.workload.mean_lifetime_epochs = 2.0;  // short jobs: timing matters
  const SimulationResult deferred = simulation.run(config);
  SimulationConfig immediate = config;
  immediate.workload.max_defer_epochs = 0;
  const SimulationResult baseline = simulation.run(immediate);
  // Same policy (CarbonEdge by default), same spatial options; temporal
  // flexibility must cut emissions.
  EXPECT_LT(deferred.telemetry.total_carbon_g(),
            baseline.telemetry.total_carbon_g() * 0.8);
}

TEST(TemporalShifting, FlatTraceGainsNothing) {
  const auto region = geo::florida_region();
  carbon::CarbonIntensityService service;
  for (const geo::City& city : region.resolve()) {
    service.add_trace(carbon::CarbonTrace(
        city.name, std::vector<double>(carbon::kHoursPerYear, 300.0)));
  }
  EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  SimulationConfig config = base_config();
  config.epochs = 48;
  config.workload.max_defer_epochs = 12;
  config.workload.mean_lifetime_epochs = 4.0;
  const SimulationResult deferred = simulation.run(config);
  SimulationConfig immediate = config;
  immediate.workload.max_defer_epochs = 0;
  const SimulationResult baseline = simulation.run(immediate);
  // On a flat trace the wait-awhile rule fires immediately (now <= future
  // min), so behavior matches immediate starts.
  EXPECT_NEAR(deferred.telemetry.total_carbon_g(),
              baseline.telemetry.total_carbon_g(),
              baseline.telemetry.total_carbon_g() * 0.05 + 1e-9);
}

}  // namespace
}  // namespace carbonedge::core
