// Catalog-wide property sweeps: every built-in city must synthesize a
// physically sane trace, and placement must respect its invariants on
// randomized epochs across arbitrary clusters. Parameterized over the whole
// city database / random seeds (TEST_P).
#include <gtest/gtest.h>

#include "carbon/synthesizer.hpp"
#include "core/simulation.hpp"
#include "util/random.hpp"

namespace carbonedge {
namespace {

class CitySweep : public ::testing::TestWithParam<int> {};

TEST_P(CitySweep, SynthesizedTraceIsPhysical) {
  const auto& db = geo::CityDatabase::builtin();
  const auto index = static_cast<std::size_t>(GetParam());
  if (index >= db.size()) GTEST_SKIP();
  const geo::City& city = db.by_id(static_cast<geo::CityId>(index));
  const carbon::ZoneSpec spec = carbon::ZoneCatalog::builtin().spec_for(city);
  carbon::SynthesizerParams params;
  params.hours = 24 * 60;  // two months is enough for the invariants
  const carbon::CarbonTrace trace = carbon::TraceSynthesizer(params).synthesize(spec);

  // Intensity bounded by the physical extremes of the source table, with
  // headroom for the import blend.
  for (const double v : trace.values()) {
    EXPECT_GE(v, 10.0) << city.name;   // cleaner than pure wind everywhere
    EXPECT_LE(v, 850.0) << city.name;  // dirtier than pure coal never
  }
  // Hourly mixes normalized.
  for (std::size_t h = 0; h < trace.hours(); h += 173) {
    EXPECT_NEAR(trace.mixes()[h].total(), 1.0, 1e-9) << city.name;
  }
  // The trace mean is correlated with the static capacity-mix intensity:
  // fossil-heavy specs must not produce clean traces and vice versa.
  const double static_ci = spec.capacity.carbon_intensity();
  if (static_ci < 100.0) {
    EXPECT_LT(trace.mean_over(0, params.hours), 320.0) << city.name;
  }
  if (static_ci > 500.0) {
    EXPECT_GT(trace.mean_over(0, params.hours), 300.0) << city.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCities, CitySweep, ::testing::Range(0, 240));

class PlacementSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacementSweep, InvariantsHoldOnRandomizedEpochs) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 13);
  const std::vector<geo::Region> regions = geo::mesoscale_regions();
  const geo::Region region = regions[rng.uniform_index(regions.size())];
  carbon::CarbonIntensityService service;
  service.add_region(region);

  const std::vector<sim::DeviceType> pools[] = {
      {sim::DeviceType::kA2},
      {sim::DeviceType::kOrinNano, sim::DeviceType::kGtx1080},
      {sim::DeviceType::kOrinNano, sim::DeviceType::kA2, sim::DeviceType::kGtx1080},
  };
  core::EdgeSimulation simulation(
      sim::make_hetero_cluster(region, 1 + rng.uniform_index(3),
                               pools[rng.uniform_index(3)]),
      service);

  core::SimulationConfig config;
  config.epochs = 12;
  config.start_hour = static_cast<carbon::HourIndex>(rng.uniform_index(8000));
  config.workload.arrivals_per_site = rng.uniform(0.2, 3.0);
  config.workload.model_weights = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                                   rng.uniform(0.0, 1.0), 0.0};
  config.workload.mean_lifetime_epochs = rng.uniform(2.0, 20.0);
  config.workload.latency_limit_rtt_ms = rng.uniform(5.0, 30.0);
  config.workload.seed = rng();
  const core::PolicyConfig policies[] = {
      core::PolicyConfig::latency_aware(), core::PolicyConfig::energy_aware(),
      core::PolicyConfig::intensity_aware(), core::PolicyConfig::carbon_edge(),
      core::PolicyConfig::multi_objective(rng.uniform(0.0, 1.0))};
  config.policy = policies[rng.uniform_index(5)];

  const core::SimulationResult result = simulation.run(config);

  // Conservation: every arrival is placed or rejected; telemetry counters
  // match the run-level totals.
  EXPECT_EQ(result.telemetry.total_placed(), result.apps_placed);
  EXPECT_EQ(result.telemetry.total_rejected(), result.apps_rejected);
  // Physicality: non-negative energy/carbon per site-epoch, latency SLO
  // respected by the mean (no single app may exceed it by construction).
  for (const auto& record : result.telemetry.epochs()) {
    for (const auto& site : record.sites) {
      EXPECT_GE(site.energy_wh, 0.0);
      EXPECT_GE(site.carbon_g, 0.0);
    }
    EXPECT_LE(record.mean_rtt_ms(), config.workload.latency_limit_rtt_ms + 1e-6);
  }
  // Response-time histogram saw every hosted app-epoch.
  if (result.apps_placed > 0) {
    EXPECT_GT(result.telemetry.response_histogram().count(), 0u);
    EXPECT_GE(result.telemetry.response_percentile(99.0),
              result.telemetry.response_percentile(50.0) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, PlacementSweep, ::testing::Range(0, 30));

}  // namespace
}  // namespace carbonedge
