// util::env shim contract: every environment read in the tree funnels
// through one audited call point (lint rule D5), and each variable is read
// from the host environment at most once per process — the first lookup
// snapshots the value; later setenv() calls are invisible. host_reads()
// counts distinct host reads so the at-most-once contract is assertable.
#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace carbonedge {
namespace {

// Each test uses a distinct variable name: the shim's cache is process-wide
// by design, so a name consulted once is pinned for every later test.

TEST(EnvShim, ReadsEachVariableAtMostOncePerProcess) {
  ASSERT_EQ(setenv("CARBONEDGE_TEST_ONCE", "first", 1), 0);
  const std::size_t before = util::env::host_reads();

  const auto first = util::env::get("CARBONEDGE_TEST_ONCE");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "first");
  EXPECT_EQ(util::env::host_reads(), before + 1);

  // A later setenv is invisible: the cached snapshot answers, and the host
  // environment is not consulted again.
  ASSERT_EQ(setenv("CARBONEDGE_TEST_ONCE", "second", 1), 0);
  for (int i = 0; i < 5; ++i) {
    const auto again = util::env::get("CARBONEDGE_TEST_ONCE");
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, "first");
  }
  EXPECT_EQ(util::env::host_reads(), before + 1);
}

TEST(EnvShim, UnsetVariablesAreCachedAsUnset) {
  ASSERT_EQ(unsetenv("CARBONEDGE_TEST_ABSENT"), 0);
  const std::size_t before = util::env::host_reads();

  EXPECT_FALSE(util::env::get("CARBONEDGE_TEST_ABSENT").has_value());
  EXPECT_EQ(util::env::host_reads(), before + 1);

  // Negative results are snapshots too: setting the variable afterwards
  // does not resurrect it, and costs no further host reads.
  ASSERT_EQ(setenv("CARBONEDGE_TEST_ABSENT", "late", 1), 0);
  EXPECT_FALSE(util::env::get("CARBONEDGE_TEST_ABSENT").has_value());
  EXPECT_EQ(util::env::host_reads(), before + 1);
}

TEST(EnvShim, GetOrFallsBackOnlyWhenUnset) {
  ASSERT_EQ(unsetenv("CARBONEDGE_TEST_MISSING"), 0);
  EXPECT_EQ(util::env::get_or("CARBONEDGE_TEST_MISSING", "fallback"), "fallback");

  ASSERT_EQ(setenv("CARBONEDGE_TEST_SET", "value", 1), 0);
  EXPECT_EQ(util::env::get_or("CARBONEDGE_TEST_SET", "fallback"), "value");

  // Empty-but-set is a real value, not an absence.
  ASSERT_EQ(setenv("CARBONEDGE_TEST_EMPTY", "", 1), 0);
  EXPECT_EQ(util::env::get_or("CARBONEDGE_TEST_EMPTY", "fallback"), "");
}

TEST(EnvShim, DistinctVariablesCostOneHostReadEach) {
  ASSERT_EQ(setenv("CARBONEDGE_TEST_A", "a", 1), 0);
  ASSERT_EQ(setenv("CARBONEDGE_TEST_B", "b", 1), 0);
  const std::size_t before = util::env::host_reads();
  EXPECT_EQ(util::env::get_or("CARBONEDGE_TEST_A", ""), "a");
  EXPECT_EQ(util::env::get_or("CARBONEDGE_TEST_B", ""), "b");
  EXPECT_EQ(util::env::get_or("CARBONEDGE_TEST_A", ""), "a");
  EXPECT_EQ(util::env::host_reads(), before + 2);
}

TEST(EnvShim, ConcurrentFirstLookupsStillReadTheHostOnce) {
  ASSERT_EQ(setenv("CARBONEDGE_TEST_RACE", "shared", 1), 0);
  const std::size_t before = util::env::host_reads();
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        const auto value = util::env::get("CARBONEDGE_TEST_RACE");
        ASSERT_TRUE(value.has_value());
        EXPECT_EQ(*value, "shared");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(util::env::host_reads(), before + 1);
}

}  // namespace
}  // namespace carbonedge
