#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.hpp"

namespace carbonedge::util {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(variance(empty), 0.0);
  EXPECT_EQ(min_value(empty), 0.0);
  EXPECT_EQ(max_value(empty), 0.0);
  EXPECT_EQ(percentile(empty, 50.0), 0.0);
}

TEST(Stats, MinMaxSum) {
  const std::vector<double> v = {3.0, -1.0, 7.5};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.5);
  EXPECT_DOUBLE_EQ(sum(v), 9.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(v), 25.0);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 250.0), 2.0);
}

TEST(Stats, MinMaxNormalize) {
  EXPECT_DOUBLE_EQ(minmax_normalize(5.0, 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(minmax_normalize(-1.0, 0.0, 10.0), 0.0);  // clamps
  EXPECT_DOUBLE_EQ(minmax_normalize(11.0, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(minmax_normalize(5.0, 3.0, 3.0), 0.0);  // degenerate range
}

TEST(Stats, SummarizeReportsAllFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
}

TEST(EmpiricalCdf, StepValuesAndQuantiles) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(EmpiricalCdf, EmptyIsSafe) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.curve(10).empty());
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal(10.0, 2.0));
  EmpiricalCdf cdf(std::move(sample));
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  Rng rng(3);
  std::vector<double> values;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    values.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(values), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(values), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(values));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(values));
}

TEST(RunningStats, MergeEquivalentToConcatenation) {
  Rng rng(4);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    if (i % 2 == 0) a.add(x); else b.add(x);
    all.add(x);
  }
  RunningStats merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

}  // namespace
}  // namespace carbonedge::util
