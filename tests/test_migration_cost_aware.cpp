// MigrationConfig::cost_aware hysteresis (core/simulation.hpp): periodic
// re-optimization only moves an application when its projected carbon
// saving over the benefit horizon repays the transfer emissions times the
// hysteresis factor; vetoed candidates are counted in migrations_skipped.
#include "core/simulation.hpp"

#include <gtest/gtest.h>

namespace carbonedge::core {
namespace {

carbon::CarbonIntensityService make_service(const geo::Region& region) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  return service;
}

/// Long-lived testbed apps plus periodic re-optimization, so every epoch
/// multiple of 4 evaluates each hosted app as a migration candidate.
SimulationConfig reopt_config(bool cost_aware, double wh_per_gb) {
  SimulationConfig config;
  config.policy = PolicyConfig::carbon_edge();
  config.epochs = 24;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};  // ResNet50
  config.workload.latency_limit_rtt_ms = 60.0;  // wide SLO: moves feasible
  config.reoptimize_every = 4;
  config.migration.cost_aware = cost_aware;
  config.migration.network_energy_wh_per_gb = wh_per_gb;
  return config;
}

class MigrationCostAwareTest : public ::testing::Test {
 protected:
  MigrationCostAwareTest()
      : region_(geo::florida_region()),
        service_(make_service(region_)),
        simulation_(sim::make_uniform_cluster(region_, 1, sim::DeviceType::kA2), service_) {}

  geo::Region region_;
  carbon::CarbonIntensityService service_;
  EdgeSimulation simulation_;
};

TEST_F(MigrationCostAwareTest, NaiveReoptimizationNeverSkips) {
  const SimulationResult result = simulation_.run(reopt_config(false, 60.0));
  EXPECT_EQ(result.migrations_skipped, 0u);
}

TEST_F(MigrationCostAwareTest, ProhibitiveTransferCostVetoesEveryMove) {
  // At 1 MWh/GB no plausible intensity delta repays the transfer, so the
  // filter must veto every candidate: no moves, no transfer emissions, and
  // one skip per hosted app per re-optimization epoch.
  const SimulationResult result = simulation_.run(reopt_config(true, 1e6));
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_EQ(result.migration_carbon_g, 0.0);
  EXPECT_EQ(result.migration_energy_wh, 0.0);
  // 5 long-lived apps x re-optimization at epochs 4, 8, 12, 16, 20.
  EXPECT_EQ(result.migrations_skipped, 25u);
}

TEST_F(MigrationCostAwareTest, FreeTransfersDisableTheVeto) {
  // With a zero-cost network the projected benefit (>= 0 by construction:
  // the current site is always a candidate) always clears the threshold, so
  // the cost-aware run degenerates to the naive one.
  const SimulationResult naive = simulation_.run(reopt_config(false, 0.0));
  const SimulationResult aware = simulation_.run(reopt_config(true, 0.0));
  EXPECT_EQ(aware.migrations_skipped, 0u);
  EXPECT_EQ(aware.migrations, naive.migrations);
  EXPECT_EQ(aware.telemetry.total_carbon_g(), naive.telemetry.total_carbon_g());
}

TEST_F(MigrationCostAwareTest, ModerateCostSitsBetweenStickyAndNaive) {
  const SimulationResult aware = simulation_.run(reopt_config(true, 60.0));
  const SimulationResult naive = simulation_.run(reopt_config(false, 60.0));
  // The filter partitions every candidate into applied-or-skipped; it can
  // only remove moves relative to the naive run.
  EXPECT_LE(aware.migrations, naive.migrations);
  EXPECT_LE(aware.migration_carbon_g, naive.migration_carbon_g);
  // Applied + vetoed evaluations cannot exceed the naive candidate count
  // (naive moves only count site changes, so compare per-candidate skips).
  EXPECT_LE(aware.migrations_skipped, 25u);
}

TEST_F(MigrationCostAwareTest, HysteresisTightensTheFilter) {
  SimulationConfig loose = reopt_config(true, 60.0);
  loose.migration.hysteresis = 0.0;  // any positive benefit clears the bar
  SimulationConfig tight = reopt_config(true, 60.0);
  tight.migration.hysteresis = 50.0;  // benefit must dwarf the transfer cost
  const SimulationResult loose_result = simulation_.run(loose);
  const SimulationResult tight_result = simulation_.run(tight);
  EXPECT_LE(tight_result.migrations, loose_result.migrations);
  EXPECT_GE(tight_result.migrations_skipped, loose_result.migrations_skipped);
}

TEST_F(MigrationCostAwareTest, RunsAreDeterministic) {
  const SimulationResult a = simulation_.run(reopt_config(true, 60.0));
  const SimulationResult b = simulation_.run(reopt_config(true, 60.0));
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.migrations_skipped, b.migrations_skipped);
  EXPECT_EQ(a.telemetry.total_carbon_g(), b.telemetry.total_carbon_g());
}

}  // namespace
}  // namespace carbonedge::core
