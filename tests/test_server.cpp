#include "sim/server.hpp"

#include <gtest/gtest.h>

namespace carbonedge::sim {
namespace {

ServerConfig a2_config() {
  ServerConfig config;
  config.name = "test/a2";
  config.device = DeviceType::kA2;
  return config;
}

TEST(Server, DefaultBasePowerDerivedFromDevice) {
  const EdgeServer server(0, a2_config());
  EXPECT_GT(server.config().base_power_w, device_profile(DeviceType::kA2).idle_power_w);
}

TEST(Server, InvalidUtilizationThrows) {
  ServerConfig config = a2_config();
  config.max_utilization = 0.0;
  EXPECT_THROW(EdgeServer(0, config), std::invalid_argument);
  config.max_utilization = 1.5;
  EXPECT_THROW(EdgeServer(0, config), std::invalid_argument);
}

TEST(Server, HostUpdatesCapacities) {
  EdgeServer server(0, a2_config());
  const double mem_before = server.memory_free_mb();
  const double cpu_before = server.compute_free();
  server.host({1, ModelType::kResNet50, 5.0});
  EXPECT_LT(server.memory_free_mb(), mem_before);
  EXPECT_LT(server.compute_free(), cpu_before);
  EXPECT_EQ(server.app_count(), 1u);
}

TEST(Server, EvictRestoresCapacities) {
  EdgeServer server(0, a2_config());
  server.host({1, ModelType::kResNet50, 5.0});
  server.host({2, ModelType::kYoloV4, 2.0});
  EXPECT_TRUE(server.evict(1));
  EXPECT_FALSE(server.evict(1));  // already gone
  EXPECT_EQ(server.app_count(), 1u);
  server.evict(2);
  EXPECT_NEAR(server.memory_used_mb(), 0.0, 1e-9);
  EXPECT_NEAR(server.compute_used(), 0.0, 1e-9);
}

TEST(Server, CanHostRespectsMemory) {
  EdgeServer server(0, a2_config());
  // Fill memory with YOLOv4 instances (498 MB each on A2, 16 GB total),
  // at negligible compute load.
  int hosted = 0;
  while (server.can_host(ModelType::kYoloV4, 0.1)) {
    server.host({static_cast<AppId>(hosted), ModelType::kYoloV4, 0.1});
    ++hosted;
  }
  EXPECT_GT(hosted, 5);
  EXPECT_LT(server.memory_free_mb(),
            require_profile(ModelType::kYoloV4, DeviceType::kA2).memory_mb);
}

TEST(Server, CanHostRespectsCompute) {
  EdgeServer server(0, a2_config());
  // One huge-rate app saturates compute long before memory.
  EXPECT_FALSE(server.can_host(ModelType::kYoloV4, 1e6));
  EXPECT_TRUE(server.can_host(ModelType::kYoloV4, 1.0));
}

TEST(Server, CanHostRejectsUnsupportedModel) {
  const EdgeServer server(0, a2_config());
  EXPECT_FALSE(server.can_host(ModelType::kSciCpu, 1.0));
}

TEST(Server, HostWhenFullThrows) {
  EdgeServer server(0, a2_config());
  EXPECT_THROW(server.host({1, ModelType::kYoloV4, 1e6}), std::runtime_error);
}

TEST(Server, PowerStateRules) {
  EdgeServer server(0, a2_config());
  server.host({1, ModelType::kResNet50, 2.0});
  EXPECT_THROW(server.set_powered_on(false), std::runtime_error);  // hosted apps
  server.evict(1);
  server.set_powered_on(false);
  EXPECT_FALSE(server.powered_on());
  EXPECT_DOUBLE_EQ(server.power_draw_w(), 0.0);
  EXPECT_THROW(server.host({2, ModelType::kResNet50, 2.0}), std::runtime_error);
  server.set_powered_on(true);
  EXPECT_NO_THROW(server.host({2, ModelType::kResNet50, 2.0}));
}

TEST(Server, PowerModelIsBasePlusDynamic) {
  EdgeServer server(0, a2_config());
  const double base = server.power_draw_w();
  EXPECT_DOUBLE_EQ(base, server.config().base_power_w);
  server.host({1, ModelType::kResNet50, 10.0});
  const double expected_dynamic =
      require_profile(ModelType::kResNet50, DeviceType::kA2).energy_j * 10.0;
  EXPECT_NEAR(server.power_draw_w(), base + expected_dynamic, 1e-9);
  EXPECT_NEAR(server.dynamic_power_w(), expected_dynamic, 1e-9);
}

TEST(Server, EnergyScalesWithTime) {
  EdgeServer server(0, a2_config());
  server.host({1, ModelType::kEfficientNetB0, 4.0});
  EXPECT_NEAR(server.energy_wh(2.0), 2.0 * server.power_draw_w(), 1e-9);
}

TEST(Server, ServiceLatencyGrowsWithLoad) {
  EdgeServer server(0, a2_config());
  const double idle_ms = server.mean_service_ms(ModelType::kResNet50);
  EXPECT_NEAR(idle_ms, require_profile(ModelType::kResNet50, DeviceType::kA2).inference_ms,
              1e-9);
  server.host({1, ModelType::kResNet50, 60.0});
  EXPECT_GT(server.mean_service_ms(ModelType::kResNet50), idle_ms);
}

}  // namespace
}  // namespace carbonedge::sim
