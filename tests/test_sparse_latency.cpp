// BandedLatencyMatrix vs the dense LatencyMatrix: bit-identical on the
// shared support, +infinity outside the band, neighborhoods ascending.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "geo/city.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "geo/sparse_latency.hpp"

namespace carbonedge::geo {
namespace {

TEST(BandedLatency, MatchesDenseBitExactlyWithinTheBand) {
  const std::vector<City> cities = cdn_region(Continent::kNorthAmerica).resolve();
  const LatencyModel model;
  const LatencyMatrix dense(model, cities);
  const double band_ms = 8.0;
  const BandedLatencyMatrix banded(model, cities, band_ms);
  ASSERT_EQ(banded.size(), dense.size());
  EXPECT_EQ(banded.band_one_way_ms(), band_ms);

  std::size_t in_band = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    for (std::size_t j = 0; j < dense.size(); ++j) {
      const double dense_ms = dense.one_way_ms(i, j);
      if (dense_ms <= band_ms) {
        // Exact equality: the band scores candidates with the same model.
        EXPECT_EQ(banded.one_way_ms(i, j), dense_ms) << i << "," << j;
        ++in_band;
      } else {
        EXPECT_TRUE(std::isinf(banded.one_way_ms(i, j))) << i << "," << j;
      }
    }
  }
  EXPECT_EQ(banded.stored_entries(), in_band);
  // The band must actually be sparse on a continental geography.
  EXPECT_LT(banded.stored_entries(), dense.size() * dense.size());
}

TEST(BandedLatency, NeighborhoodsAreAscendingAndMirrorTheSupport) {
  const std::vector<City> cities = cdn_region(Continent::kEurope).resolve();
  const LatencyModel model;
  const BandedLatencyMatrix banded(model, cities, 6.0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < banded.size(); ++i) {
    const auto row = banded.neighbors(i);
    total += row.size();
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (k > 0) {
        EXPECT_LT(row[k - 1], row[k]);  // strictly ascending
      }
      EXPECT_TRUE(std::isfinite(banded.one_way_ms(i, row[k])));
      // Symmetry: j in neighbors(i) <=> i in neighbors(j) (the model is
      // exactly symmetric, so band membership is too).
      EXPECT_EQ(banded.one_way_ms(row[k], i), banded.one_way_ms(i, row[k]));
    }
    // The diagonal is always in band (0 ms).
    EXPECT_EQ(banded.one_way_ms(i, i), 0.0);
  }
  EXPECT_EQ(total, banded.stored_entries());
}

TEST(BandedLatency, DenseProviderAdvertisesUnconstrainedNeighbors) {
  const std::vector<City> cities = florida_region().resolve();
  const LatencyMatrix dense(LatencyModel{}, cities);
  const LatencyProvider& provider = dense;
  // Empty span = "scan everything": the contract the simulation's fallback
  // paths rely on.
  EXPECT_TRUE(provider.neighbors(0).empty());
  EXPECT_EQ(provider.rtt_ms(0, 1), 2.0 * provider.one_way_ms(0, 1));
}

TEST(BandedLatency, BandBelowBaseLatencyThrows) {
  const std::vector<City> cities = florida_region().resolve();
  const LatencyModel model;
  EXPECT_THROW(BandedLatencyMatrix(model, cities, model.params().base_ms),
               std::invalid_argument);
  EXPECT_THROW(BandedLatencyMatrix(model, cities, 0.0), std::invalid_argument);
}

TEST(BandedLatency, WideBandDegeneratesToTheDenseMatrix) {
  const std::vector<City> cities = central_eu_region().resolve();
  const LatencyModel model;
  const LatencyMatrix dense(model, cities);
  const BandedLatencyMatrix banded(model, cities, 1e6);
  EXPECT_EQ(banded.stored_entries(), cities.size() * cities.size());
  for (std::size_t i = 0; i < cities.size(); ++i) {
    for (std::size_t j = 0; j < cities.size(); ++j) {
      EXPECT_EQ(banded.one_way_ms(i, j), dense.one_way_ms(i, j));
    }
  }
}

}  // namespace
}  // namespace carbonedge::geo
