#include "store/artifact_store.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "carbon/synthesizer.hpp"
#include "carbon/zone.hpp"
#include "geo/region.hpp"
#include "store/codecs.hpp"
#include "store_test_util.hpp"
#include "util/fs.hpp"
#include "util/hash.hpp"

namespace carbonedge::store {
namespace {

struct TempStoreDir : testutil::TempStoreDir {
  TempStoreDir() : testutil::TempStoreDir("carbonedge_store_test") {}
};

carbon::CarbonTrace synthetic_trace() {
  const auto cities = geo::central_eu_region().resolve();
  return carbon::TraceSynthesizer().synthesize(
      carbon::ZoneCatalog::builtin().spec_for(cities.front()));
}

TEST(Fingerprint, IsDeterministicAndFieldSensitive) {
  util::Fingerprint a;
  a.mix("hello").mix(std::uint64_t{42}).mix(1.5);
  util::Fingerprint b;
  b.mix("hello").mix(std::uint64_t{42}).mix(1.5);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest().hex().size(), 32u);

  util::Fingerprint c;
  c.mix("hello").mix(std::uint64_t{43}).mix(1.5);
  EXPECT_NE(a.digest(), c.digest());
  // Length framing: {"ab","c"} != {"a","bc"}.
  util::Fingerprint ab_c;
  ab_c.mix("ab").mix("c");
  util::Fingerprint a_bc;
  a_bc.mix("a").mix("bc");
  EXPECT_NE(ab_c.digest(), a_bc.digest());
  // -0.0 hashes like +0.0 (they compare equal, so they must key equally).
  util::Fingerprint pos;
  pos.mix(0.0);
  util::Fingerprint neg;
  neg.mix(-0.0);
  EXPECT_EQ(pos.digest(), neg.digest());
}

TEST(AtomicWrite, PublishesWholeFilesAndFlagsTempNames) {
  TempStoreDir tmp;
  std::filesystem::create_directories(tmp.dir);
  const std::filesystem::path path = tmp.dir / "data.bin";
  util::write_file_atomic(path, "payload-bytes");
  EXPECT_EQ(util::read_file(path), "payload-bytes");
  util::write_file_atomic(path, "second");
  EXPECT_EQ(util::read_file(path), "second");
  EXPECT_TRUE(util::is_atomic_temp_name("data.bin.tmp-123-0"));
  EXPECT_FALSE(util::is_atomic_temp_name("data.bin"));
}

TEST(FileView, MapsAndReadsBytes) {
  TempStoreDir tmp;
  std::filesystem::create_directories(tmp.dir);
  const std::filesystem::path path = tmp.dir / "view.bin";
  util::write_file_atomic(path, "0123456789");
  const util::FileView view(path);
  EXPECT_EQ(view.bytes(), "0123456789");
}

TEST(FileLock, ExcludesAConcurrentAcquirer) {
  TempStoreDir tmp;
  std::filesystem::create_directories(tmp.dir);
  const std::filesystem::path lock_path = tmp.dir / "entry.lock";
  std::atomic<bool> second_acquired{false};
  std::thread contender;
  {
    const util::FileLock held(lock_path);
    if (!held.held()) GTEST_SKIP() << "advisory locks unavailable on this platform";
    contender = std::thread([&] {
      // flock excludes per open-file-description, so even an in-process
      // second acquirer blocks until the first lock is released.
      const util::FileLock other(lock_path);
      second_acquired.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(second_acquired.load());  // still excluded while we hold it
  }  // release
  contender.join();
  EXPECT_TRUE(second_acquired.load());
}

TEST(ArtifactFormat, TraceRoundTripsBitExact) {
  TempStoreDir tmp;
  std::filesystem::create_directories(tmp.dir);
  const carbon::CarbonTrace original = synthetic_trace();
  const std::filesystem::path path = tmp.dir / ("trace" + std::string(kArtifactExtension));
  write_artifact_file(path, ArtifactKind::kCarbonTrace, encode_trace(original));

  const Artifact artifact = read_artifact_file(path);
  EXPECT_EQ(artifact.kind, ArtifactKind::kCarbonTrace);
  const carbon::CarbonTrace loaded = decode_trace(artifact.payload);
  EXPECT_EQ(loaded.zone(), original.zone());
  ASSERT_EQ(loaded.hours(), original.hours());
  ASSERT_EQ(loaded.mixes().size(), original.mixes().size());
  for (std::size_t h = 0; h < original.hours(); ++h) {
    // Bit-exact, not approximately equal: the store's tables must be
    // byte-identical to freshly synthesized ones.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.values()[h]),
              std::bit_cast<std::uint64_t>(original.values()[h]));
    EXPECT_EQ(loaded.mixes()[h], original.mixes()[h]);
  }
}

TEST(ArtifactFormat, IntensityOnlyTraceRoundTrips) {
  const carbon::CarbonTrace original("NoMix", {10.0, 20.5, 30.25});
  const carbon::CarbonTrace loaded = decode_trace(encode_trace(original));
  EXPECT_EQ(loaded.zone(), "NoMix");
  ASSERT_EQ(loaded.hours(), 3u);
  EXPECT_TRUE(loaded.mixes().empty());
  EXPECT_DOUBLE_EQ(loaded.at(1), 20.5);
}

TEST(ArtifactFormat, LatencyMatrixRoundTripsBitExact) {
  const auto cities = geo::florida_region().resolve();
  const geo::LatencyMatrix original(geo::LatencyModel{}, cities);
  const geo::LatencyMatrix loaded = decode_latency_matrix(encode_latency_matrix(original));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t j = 0; j < original.size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.one_way_ms(i, j)),
                std::bit_cast<std::uint64_t>(original.one_way_ms(i, j)));
    }
  }
}

TEST(ArtifactFormat, CorruptionIsDetected) {
  TempStoreDir tmp;
  std::filesystem::create_directories(tmp.dir);
  const std::filesystem::path path = tmp.dir / ("t" + std::string(kArtifactExtension));
  write_artifact_file(path, ArtifactKind::kCarbonTrace,
                      encode_trace(carbon::CarbonTrace("Z", {1.0, 2.0})));
  ASSERT_TRUE(inspect_artifact_file(path).intact);

  // Flip one payload byte in place: the checksum must catch it.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(-1, std::ios::end);
    file.put('\xff');
  }
  EXPECT_FALSE(inspect_artifact_file(path).intact);
  EXPECT_THROW((void)read_artifact_file(path), std::runtime_error);

  // Truncation and garbage headers are caught too.
  util::write_file_atomic(path, "not an artifact");
  EXPECT_FALSE(inspect_artifact_file(path).intact);
  EXPECT_THROW((void)read_artifact_file(path), std::runtime_error);
}

TEST(ArtifactStore, SaveLoadListAndCorruptEntriesCountAsMisses) {
  TempStoreDir tmp;
  const ArtifactStore store(tmp.dir);
  EXPECT_FALSE(store.contains(ArtifactKind::kCarbonTrace, "k1"));
  EXPECT_EQ(store.load(ArtifactKind::kCarbonTrace, "k1"), std::nullopt);

  store.save(ArtifactKind::kCarbonTrace, "k1", "payload-one");
  store.save(ArtifactKind::kLatencyMatrix, "k2", "payload-two");
  EXPECT_TRUE(store.contains(ArtifactKind::kCarbonTrace, "k1"));
  EXPECT_EQ(store.load(ArtifactKind::kCarbonTrace, "k1"), "payload-one");
  // A key is namespaced by kind.
  EXPECT_FALSE(store.contains(ArtifactKind::kSweepOutcome, "k1"));

  const auto entries = store.list(/*verify=*/true);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].kind, ArtifactKind::kCarbonTrace);
  EXPECT_EQ(entries[0].key, "k1");
  EXPECT_TRUE(entries[0].intact);

  // Corrupt k1: load() treats it as a miss and counts it.
  {
    std::ofstream file(store.entry_path(ArtifactKind::kCarbonTrace, "k1"),
                       std::ios::binary | std::ios::trunc);
    file << "garbage";
  }
  EXPECT_EQ(store.load(ArtifactKind::kCarbonTrace, "k1"), std::nullopt);
  EXPECT_EQ(store.corrupt_reads(), 1u);
}

TEST(ArtifactStore, GcSweepsTempLeftoversAndCorruptEntries) {
  TempStoreDir tmp;
  const ArtifactStore store(tmp.dir);
  store.save(ArtifactKind::kCarbonTrace, "good", "payload");
  const std::filesystem::path stale_tmp = tmp.dir / "traces" / "orphan.ceaf.tmp-999-0";
  const std::filesystem::path fresh_tmp = tmp.dir / "traces" / "inflight.ceaf.tmp-998-0";
  const std::filesystem::path stale_lock = tmp.dir / "locks" / "traces-dead.lock";
  const std::filesystem::path fresh_lock = tmp.dir / "locks" / "traces-live.lock";
  {  // a corrupt entry, a crashed writer's leftover, a live publish, and locks
    std::ofstream(store.entry_path(ArtifactKind::kCarbonTrace, "bad")) << "junk";
    std::ofstream(stale_tmp) << "partial";
    std::ofstream(fresh_tmp) << "in flight";
    std::ofstream(stale_lock).flush();
    std::ofstream(fresh_lock).flush();
  }
  // Backdate past the grace period; the fresh files play a concurrent
  // writer mid-publish and must survive the sweep.
  const auto stale_time = std::filesystem::file_time_type::clock::now() - std::chrono::hours(1);
  std::filesystem::last_write_time(stale_tmp, stale_time);
  std::filesystem::last_write_time(stale_lock, stale_time);

  const ArtifactStore::GcReport report = store.gc();
  EXPECT_EQ(report.removed_files, 3u);  // corrupt entry + stale temp + stale lock
  EXPECT_TRUE(store.contains(ArtifactKind::kCarbonTrace, "good"));
  EXPECT_FALSE(store.contains(ArtifactKind::kCarbonTrace, "bad"));
  EXPECT_FALSE(std::filesystem::exists(stale_tmp));
  EXPECT_TRUE(std::filesystem::exists(fresh_tmp));
  EXPECT_FALSE(std::filesystem::exists(stale_lock));
  EXPECT_TRUE(std::filesystem::exists(fresh_lock));
  EXPECT_EQ(store.list().size(), 1u);
}

// Backdate both atime and mtime (gc's LRU clock is the newer of the two).
void backdate(const std::filesystem::path& path, std::chrono::seconds age) {
  const auto stamp =
      std::chrono::system_clock::now().time_since_epoch() - age;
  ::timespec times[2];
  times[0].tv_sec = times[1].tv_sec =
      std::chrono::duration_cast<std::chrono::seconds>(stamp).count();
  times[0].tv_nsec = times[1].tv_nsec = 0;
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
}

TEST(ArtifactStore, GcMaxBytesEvictsLeastRecentlyUsedFirst) {
  TempStoreDir tmp;
  const ArtifactStore store(tmp.dir);
  store.save(ArtifactKind::kCarbonTrace, "oldest", std::string(64, 'a'));
  store.save(ArtifactKind::kSweepOutcome, "middle", std::string(64, 'b'));
  store.save(ArtifactKind::kCarbonTrace, "newest", std::string(64, 'c'));
  backdate(store.entry_path(ArtifactKind::kCarbonTrace, "oldest"), std::chrono::hours(3));
  backdate(store.entry_path(ArtifactKind::kSweepOutcome, "middle"), std::chrono::hours(2));
  backdate(store.entry_path(ArtifactKind::kCarbonTrace, "newest"), std::chrono::hours(1));
  const std::uintmax_t entry_bytes =
      std::filesystem::file_size(store.entry_path(ArtifactKind::kCarbonTrace, "oldest"));

  // Without a cap nothing intact is touched.
  const ArtifactStore::GcReport uncapped = store.gc();
  EXPECT_EQ(uncapped.evicted_files, 0u);
  EXPECT_EQ(store.list().size(), 3u);

  // The uncapped pass's integrity reads refresh atimes on strict-atime
  // mounts; restore the recency ordering under test.
  backdate(store.entry_path(ArtifactKind::kCarbonTrace, "oldest"), std::chrono::hours(3));
  backdate(store.entry_path(ArtifactKind::kSweepOutcome, "middle"), std::chrono::hours(2));
  backdate(store.entry_path(ArtifactKind::kCarbonTrace, "newest"), std::chrono::hours(1));

  // Capping at two entries' worth drops exactly the least recently used.
  const ArtifactStore::GcReport capped = store.gc(2 * entry_bytes);
  EXPECT_EQ(capped.evicted_files, 1u);
  EXPECT_EQ(capped.evicted_bytes, entry_bytes);
  EXPECT_FALSE(store.contains(ArtifactKind::kCarbonTrace, "oldest"));
  EXPECT_TRUE(store.contains(ArtifactKind::kSweepOutcome, "middle"));
  EXPECT_TRUE(store.contains(ArtifactKind::kCarbonTrace, "newest"));

  // A touched entry's LRU position refreshes (a load() does this through
  // atime on mounts that track it; force it portably): with a one-entry
  // cap "middle" survives and "newest" is evicted instead.
  backdate(store.entry_path(ArtifactKind::kCarbonTrace, "newest"), std::chrono::hours(1));
  EXPECT_TRUE(store.load(ArtifactKind::kSweepOutcome, "middle").has_value());
  backdate(store.entry_path(ArtifactKind::kSweepOutcome, "middle"), std::chrono::seconds(0));
  const ArtifactStore::GcReport tight = store.gc(entry_bytes);
  EXPECT_EQ(tight.evicted_files, 1u);
  EXPECT_TRUE(store.contains(ArtifactKind::kSweepOutcome, "middle"));
  EXPECT_FALSE(store.contains(ArtifactKind::kCarbonTrace, "newest"));
}

TEST(ArtifactStore, GcMaxBytesNeverEvictsInFlightEntries) {
  TempStoreDir tmp;
  const ArtifactStore store(tmp.dir);
  store.save(ArtifactKind::kCarbonTrace, "busy", std::string(64, 'a'));
  store.save(ArtifactKind::kCarbonTrace, "idle", std::string(64, 'b'));
  backdate(store.entry_path(ArtifactKind::kCarbonTrace, "busy"), std::chrono::hours(4));
  backdate(store.entry_path(ArtifactKind::kCarbonTrace, "idle"), std::chrono::hours(1));

  // "busy" is the LRU candidate, but a held entry lock marks it in flight;
  // eviction must fall through to the next-oldest entry instead.
  const util::FileLock in_flight = store.lock_entry(ArtifactKind::kCarbonTrace, "busy");
  if (!in_flight.held()) GTEST_SKIP() << "advisory locks unavailable on this platform";
  const ArtifactStore::GcReport report = store.gc(1);
  EXPECT_EQ(report.evicted_files, 1u);
  EXPECT_TRUE(store.contains(ArtifactKind::kCarbonTrace, "busy"));
  EXPECT_FALSE(store.contains(ArtifactKind::kCarbonTrace, "idle"));
}

TEST(ArtifactStore, OpenFromEnvRequiresTheVariable) {
  // The variable may or may not be set in the ambient environment (CI sets
  // it to exercise the L2 tier); both outcomes are valid — just verify the
  // unset case returns null rather than inventing a directory.
  const char* ambient = std::getenv("CARBONEDGE_STORE_DIR");
  if (ambient == nullptr || *ambient == '\0') {
    EXPECT_EQ(ArtifactStore::open_from_env(), nullptr);
  } else {
    EXPECT_NE(ArtifactStore::open_from_env(), nullptr);
  }
}

}  // namespace
}  // namespace carbonedge::store
