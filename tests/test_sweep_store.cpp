#include "store/sweep_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "runner/scenario_runner.hpp"
#include "store/codecs.hpp"
#include "store_test_util.hpp"

namespace carbonedge::store {
namespace {

struct TempStoreDir : testutil::TempStoreDir {
  TempStoreDir() : testutil::TempStoreDir("carbonedge_sweep_test") {}
};

// Small but non-trivial grid: 2 policies x 2 epoch horizons over Florida,
// with arrivals/migration so the counters are non-zero.
runner::ScenarioGrid small_grid() {
  core::SimulationConfig base;
  base.workload.arrivals_per_site = 1.0;
  base.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  runner::ScenarioGrid grid(base);
  grid.with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()})
      .with_epochs({6, 12});
  return grid;
}

std::string table_bytes(const std::vector<runner::ScenarioOutcome>& outcomes) {
  std::ostringstream out;
  runner::ScenarioRunner::summarize(outcomes).print(out);
  return out.str();
}

TEST(SweepStore, FingerprintIgnoresCosmeticFieldsButTracksConfig) {
  const auto scenarios = small_grid().expand();
  ASSERT_EQ(scenarios.size(), 4u);

  runner::Scenario relabeled = scenarios[0];
  relabeled.index = 99;
  relabeled.label = "something else";
  relabeled.region.name = "Renamed";  // display name, not identity
  relabeled.mix.name = "renamed-mix";
  EXPECT_EQ(SweepStore::fingerprint(relabeled), SweepStore::fingerprint(scenarios[0]));

  // Every axis coordinate yields a distinct fingerprint.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    for (std::size_t j = i + 1; j < scenarios.size(); ++j) {
      EXPECT_NE(SweepStore::fingerprint(scenarios[i]), SweepStore::fingerprint(scenarios[j]));
    }
  }

  runner::Scenario different = scenarios[0];
  different.config.workload.seed ^= 1;
  EXPECT_NE(SweepStore::fingerprint(different), SweepStore::fingerprint(scenarios[0]));
  different = scenarios[0];
  different.region.cities.pop_back();
  EXPECT_NE(SweepStore::fingerprint(different), SweepStore::fingerprint(scenarios[0]));
  different = scenarios[0];
  different.forecaster = "persistence";
  EXPECT_NE(SweepStore::fingerprint(different), SweepStore::fingerprint(scenarios[0]));
}

TEST(SweepStore, OutcomeRoundTripsThroughTheStore) {
  TempStoreDir tmp;
  SweepStore store(std::make_shared<ArtifactStore>(tmp.dir));
  const auto scenarios = small_grid().expand();
  const auto outcomes = runner::ScenarioRunner().run({scenarios[0]});
  ASSERT_EQ(outcomes.size(), 1u);

  EXPECT_EQ(store.load(scenarios[0]), std::nullopt);
  EXPECT_EQ(store.misses(), 1u);
  store.save(scenarios[0], outcomes[0].result);
  const auto loaded = store.load(scenarios[0]);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(store.hits(), 1u);

  const core::SimulationResult& a = outcomes[0].result;
  const core::SimulationResult& b = *loaded;
  EXPECT_EQ(a.apps_placed, b.apps_placed);
  EXPECT_EQ(a.apps_rejected, b.apps_rejected);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.app_downtime_epochs, b.app_downtime_epochs);
  EXPECT_EQ(a.telemetry.size(), b.telemetry.size());
  // Bit-exact doubles, including derived aggregates.
  EXPECT_EQ(a.telemetry.total_carbon_g(), b.telemetry.total_carbon_g());
  EXPECT_EQ(a.telemetry.total_energy_wh(), b.telemetry.total_energy_wh());
  EXPECT_EQ(a.telemetry.mean_rtt_ms(), b.telemetry.mean_rtt_ms());
  EXPECT_EQ(a.telemetry.response_percentile(99.0), b.telemetry.response_percentile(99.0));
  EXPECT_EQ(a.telemetry.load_intensity_sample(), b.telemetry.load_intensity_sample());
}

TEST(SweepStore, InterruptedSweepResumesByteIdentical) {
  // The acceptance check: a sweep that dies mid-grid and resumes must
  // produce a summary table byte-identical to an uninterrupted cold run.
  const runner::ScenarioGrid grid = small_grid();
  const std::string cold_table = table_bytes(runner::ScenarioRunner().run(grid));

  TempStoreDir tmp;
  // "Kill a sweep mid-grid": run only the first half of the expansion with
  // the store attached, as an interrupted process would have.
  {
    auto store = std::make_shared<SweepStore>(std::make_shared<ArtifactStore>(tmp.dir));
    auto scenarios = grid.expand();
    scenarios.resize(2);
    const auto partial = runner::ScenarioRunner(
                             runner::ScenarioRunnerOptions{.threads = 0, .sweep_store = store})
                             .run(std::move(scenarios));
    EXPECT_EQ(partial.size(), 2u);
    EXPECT_EQ(store->stores(), 2u);
  }

  // Resume in a "new process" (fresh SweepStore over the same directory):
  // the two completed cells load from disk, the rest compute.
  auto resumed_store = std::make_shared<SweepStore>(std::make_shared<ArtifactStore>(tmp.dir));
  const auto resumed = runner::ScenarioRunner(runner::ScenarioRunnerOptions{
                                                  .threads = 0, .sweep_store = resumed_store})
                           .run(grid);
  EXPECT_EQ(resumed_store->hits(), 2u);
  EXPECT_EQ(resumed_store->stores(), 2u);  // only the missing half computed
  EXPECT_EQ(table_bytes(resumed), cold_table);

  // A third, fully-warm run: zero computation, still byte-identical.
  auto warm_store = std::make_shared<SweepStore>(std::make_shared<ArtifactStore>(tmp.dir));
  const auto warm = runner::ScenarioRunner(
                        runner::ScenarioRunnerOptions{.threads = 0, .sweep_store = warm_store})
                        .run(grid);
  EXPECT_EQ(warm_store->hits(), 4u);
  EXPECT_EQ(warm_store->stores(), 0u);
  EXPECT_EQ(table_bytes(warm), cold_table);
}

TEST(SweepStore, ExtendedGridReusesTheOverlap) {
  TempStoreDir tmp;
  auto first_store = std::make_shared<SweepStore>(std::make_shared<ArtifactStore>(tmp.dir));
  core::SimulationConfig base;
  base.workload.arrivals_per_site = 1.0;
  runner::ScenarioGrid narrow(base);
  narrow.with_policies({core::PolicyConfig::carbon_edge()}).with_epochs({6});
  (void)runner::ScenarioRunner(
      runner::ScenarioRunnerOptions{.threads = 0, .sweep_store = first_store})
      .run(narrow);
  ASSERT_EQ(first_store->stores(), 1u);

  // Widening the policy axis keeps the already-computed cell: the labels
  // change ("policy=..." joins the label) but the fingerprint does not.
  runner::ScenarioGrid wide(base);
  wide.with_policies({core::PolicyConfig::carbon_edge(), core::PolicyConfig::energy_aware()})
      .with_epochs({6});
  auto second_store = std::make_shared<SweepStore>(std::make_shared<ArtifactStore>(tmp.dir));
  const auto outcomes = runner::ScenarioRunner(runner::ScenarioRunnerOptions{
                                                   .threads = 0, .sweep_store = second_store})
                            .run(wide);
  EXPECT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(second_store->hits(), 1u);    // the overlapping CarbonEdge cell
  EXPECT_EQ(second_store->stores(), 1u);  // only the new Energy-aware cell ran
}

}  // namespace
}  // namespace carbonedge::store
