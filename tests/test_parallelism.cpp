// The process worker-budget arbiter and the intra-simulation sharding it
// feeds: leases never exceed the configured lane count even when the
// runner, the simulations, and the solver all draw at once — and however
// many lanes a run is granted, its results are bit-identical to the fully
// serial engine.
#include "util/parallelism.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "carbon/service.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "runner/scenario_runner.hpp"
#include "sim/datacenter.hpp"
#include "util/random.hpp"

namespace carbonedge {
namespace {

using util::ParallelismBudget;

TEST(ConfiguredThreadCount, ParsePositiveIntegerWins) {
  // configured_thread_count() reads CARBONEDGE_THREADS through the util::env
  // shim, which snapshots the variable once per process — so the parsing
  // seam is exercised directly (tests/test_env.cpp covers the snapshotting).
  EXPECT_EQ(util::parse_thread_count("7"), 7u);
  EXPECT_EQ(util::parse_thread_count("1"), 1u);
  EXPECT_EQ(util::parse_thread_count("64"), 64u);
}

TEST(ConfiguredThreadCount, FallsBackOnGarbageZeroAndUnset) {
  EXPECT_GE(util::parse_thread_count(nullptr), 1u);
  EXPECT_GE(util::parse_thread_count(""), 1u);
  EXPECT_GE(util::parse_thread_count("0"), 1u);
  EXPECT_GE(util::parse_thread_count("lots"), 1u);
  EXPECT_NE(util::parse_thread_count("3extra"), 3u);  // trailing junk rejected
  EXPECT_NE(util::parse_thread_count("-2"), 0u);
  // The fallback is hardware concurrency, identical across spellings.
  EXPECT_EQ(util::parse_thread_count(nullptr), util::parse_thread_count("garbage"));
  // And the env-backed entry point always lands on something usable.
  EXPECT_GE(util::configured_thread_count(), 1u);
}

TEST(ParallelismBudget, GrantsWantedLanesUpToTotal) {
  ParallelismBudget budget(4);
  EXPECT_EQ(budget.total(), 4u);
  EXPECT_EQ(budget.available(), 3u);

  const auto lease = budget.acquire(3);
  EXPECT_EQ(lease.lanes(), 3u);
  EXPECT_EQ(budget.available(), 1u);

  // Asking for more than remains degrades, it never blocks or overdraws.
  const auto rest = budget.acquire(16);
  EXPECT_EQ(rest.lanes(), 2u);
  EXPECT_EQ(budget.available(), 0u);
  const auto dry = budget.acquire(16);
  EXPECT_EQ(dry.lanes(), 1u);
}

TEST(ParallelismBudget, LeaseReleaseRestoresAvailability) {
  ParallelismBudget budget(4);
  {
    const auto lease = budget.acquire(4);
    EXPECT_EQ(lease.lanes(), 4u);
    EXPECT_EQ(budget.available(), 0u);
  }
  EXPECT_EQ(budget.available(), 3u);
  EXPECT_EQ(budget.peak_lanes(), 4u);
}

TEST(ParallelismBudget, MoveTransfersTheGrant) {
  ParallelismBudget budget(3);
  auto lease = budget.acquire(3);
  EXPECT_EQ(budget.available(), 0u);
  ParallelismBudget::Lease moved = std::move(lease);
  EXPECT_EQ(moved.lanes(), 3u);
  EXPECT_EQ(budget.available(), 0u);  // single outstanding grant, not two
  moved = ParallelismBudget::Lease();
  EXPECT_EQ(budget.available(), 2u);
}

TEST(ParallelismBudget, SingleLaneBudgetIsAlwaysSerial) {
  ParallelismBudget budget(1);
  EXPECT_EQ(budget.acquire(64).lanes(), 1u);
  EXPECT_EQ(budget.peak_lanes(), 1u);
}

TEST(ParallelismBudget, ConcurrentHammeringNeverOverGrants) {
  constexpr std::size_t kTotal = 5;
  ParallelismBudget budget(kTotal);
  std::atomic<std::size_t> extras_out{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(0xBADCAFE + t);
      for (int i = 0; i < 2000; ++i) {
        const auto lease = budget.acquire(1 + rng.uniform_index(8));
        const std::size_t extras = lease.lanes() - 1;
        if (extras_out.fetch_add(extras) + extras > kTotal - 1) violated.store(true);
        extras_out.fetch_sub(extras);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(budget.available(), kTotal - 1);
  EXPECT_LE(budget.peak_lanes(), kTotal);
}

// ------------------------------------------------------- nested layers --

core::SimulationConfig busy_config(std::uint64_t seed) {
  core::SimulationConfig config;
  config.epochs = 48;
  config.workload.arrivals_per_site = 1.5;
  config.workload.mean_lifetime_epochs = 12.0;
  config.workload.max_defer_epochs = 6;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.seed = seed;
  config.reoptimize_every = 8;
  config.migration.cost_aware = true;
  config.failures.mtbf_epochs = 200.0;
  return config;
}

TEST(ParallelismBudget, NestedRunnerSimSolverLoadStaysWithinBudget) {
  // Eight cells of re-optimizing, failure-injecting simulations on a
  // three-lane budget: the sweep, every simulation's shard sections, and
  // the solver's component dispatch all lease from the same arbiter, so
  // the high-water lane count must never exceed the configured total.
  ParallelismBudget budget(3);
  runner::ScenarioGrid grid(busy_config(21));
  grid.with_regions({geo::florida_region()})
      .with_policies({core::PolicyConfig::carbon_edge()})
      .with_workload_seeds({1, 2, 3, 4, 5, 6, 7, 8});
  const auto outcomes =
      runner::ScenarioRunner(runner::ScenarioRunnerOptions{.budget = &budget}).run(grid);
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_LE(budget.peak_lanes(), budget.total());
  EXPECT_EQ(budget.available(), budget.total() - 1);  // every lease returned
}

TEST(ParallelismBudget, NarrowGridHandsLeftoverLanesToCells) {
  // Two cells on a six-lane budget: the sweep needs only two lanes, and
  // each cell's simulation should pick up a share of the leftover for its
  // intra-epoch shard pool rather than leaving four lanes idle.
  ParallelismBudget budget(6);
  runner::ScenarioGrid grid(busy_config(22));
  grid.with_regions({geo::florida_region()})
      .with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()});
  const auto outcomes =
      runner::ScenarioRunner(runner::ScenarioRunnerOptions{.budget = &budget}).run(grid);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_LE(budget.peak_lanes(), budget.total());
  // The sweep's two lanes plus at least one cell's leftover share were in
  // flight together at some point.
  EXPECT_GT(budget.peak_lanes(), 2u);
  EXPECT_EQ(budget.available(), budget.total() - 1);
}

// ------------------------------------------- cross-lane-count identity --

void expect_bit_identical(const core::SimulationResult& a, const core::SimulationResult& b) {
  EXPECT_EQ(a.apps_placed, b.apps_placed);
  EXPECT_EQ(a.apps_rejected, b.apps_rejected);
  EXPECT_EQ(a.apps_deferred, b.apps_deferred);
  EXPECT_EQ(a.apps_expired_deferred, b.apps_expired_deferred);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.migrations_skipped, b.migrations_skipped);
  EXPECT_EQ(a.migration_energy_wh, b.migration_energy_wh);
  EXPECT_EQ(a.migration_carbon_g, b.migration_carbon_g);
  EXPECT_EQ(a.server_failures, b.server_failures);
  EXPECT_EQ(a.apps_redeployed, b.apps_redeployed);
  EXPECT_EQ(a.app_downtime_epochs, b.app_downtime_epochs);
  ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
  for (std::size_t e = 0; e < a.telemetry.size(); ++e) {
    const sim::EpochRecord& ra = a.telemetry.epochs()[e];
    const sim::EpochRecord& rb = b.telemetry.epochs()[e];
    EXPECT_EQ(ra.rtt_weighted_sum_ms, rb.rtt_weighted_sum_ms);
    EXPECT_EQ(ra.response_weighted_sum_ms, rb.response_weighted_sum_ms);
    EXPECT_EQ(ra.rps_total, rb.rps_total);
    EXPECT_EQ(ra.apps_placed, rb.apps_placed);
    EXPECT_EQ(ra.apps_rejected, rb.apps_rejected);
    EXPECT_EQ(ra.migrations, rb.migrations);
    EXPECT_EQ(ra.failures, rb.failures);
    ASSERT_EQ(ra.sites.size(), rb.sites.size());
    for (std::size_t s = 0; s < ra.sites.size(); ++s) {
      EXPECT_EQ(ra.sites[s].energy_wh, rb.sites[s].energy_wh);
      EXPECT_EQ(ra.sites[s].carbon_g, rb.sites[s].carbon_g);
      EXPECT_EQ(ra.sites[s].intensity_g_kwh, rb.sites[s].intensity_g_kwh);
      EXPECT_EQ(ra.sites[s].apps_hosted, rb.sites[s].apps_hosted);
      EXPECT_EQ(ra.sites[s].rps_hosted, rb.sites[s].rps_hosted);
    }
  }
  EXPECT_EQ(a.telemetry.response_percentile(50.0), b.telemetry.response_percentile(50.0));
  EXPECT_EQ(a.telemetry.response_percentile(99.0), b.telemetry.response_percentile(99.0));
  EXPECT_EQ(a.telemetry.load_intensity_sample(), b.telemetry.load_intensity_sample());
}

TEST(ParallelismDeterminism, ShardedRunsAreBitIdenticalToSerialOnRandomizedScenarios) {
  // Randomized scenario set: arrival intensity, deferral budget, cadence,
  // cost-awareness, failures, and policy all drawn per scenario. Every
  // scenario is big enough (40-site CDN region, heavy arrivals) that the
  // epoch sections really dispatch onto the shard pool, and each one must
  // come back bit-identical to the single-lane run.
  const geo::Region region = geo::cdn_region(geo::Continent::kNorthAmerica, 40);
  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 2, sim::DeviceType::kA2), service);

  util::Rng seeder(0x5EED5);
  for (int round = 0; round < 4; ++round) {
    util::Rng rng = seeder.fork(round);  // per-scenario stream
    core::SimulationConfig config;
    config.epochs = 36;
    config.workload.arrivals_per_site = 1.0 + rng.uniform(0.0, 1.5);
    config.workload.mean_lifetime_epochs = 8.0 + rng.uniform(0.0, 8.0);
    config.workload.max_defer_epochs = static_cast<std::uint32_t>(rng.uniform_index(8));
    config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
    config.workload.seed = rng();
    config.policy = rng.bernoulli(0.5) ? core::PolicyConfig::carbon_edge()
                                       : core::PolicyConfig::latency_aware();
    config.reoptimize_every = 6 + static_cast<std::uint32_t>(rng.uniform_index(6));
    config.migration.cost_aware = rng.bernoulli(0.5);
    config.failures.mtbf_epochs = rng.bernoulli(0.5) ? 150.0 : 0.0;
    config.failures.seed = rng();

    ParallelismBudget serial(1);
    simulation.set_parallelism_budget(&serial);
    const core::SimulationResult one = simulation.run(config);

    ParallelismBudget wide(8);
    simulation.set_parallelism_budget(&wide);
    const core::SimulationResult eight = simulation.run(config);
    EXPECT_GT(wide.peak_lanes(), 1u);  // the shard pool really engaged

    SCOPED_TRACE("randomized scenario round " + std::to_string(round));
    expect_bit_identical(one, eight);
  }
}

TEST(ParallelismDeterminism, RngForkIsReproducibleAndLeavesParentUntouched) {
  // Same parent state + same stream index => same child sequence.
  util::Rng a = util::Rng(123).fork(5);
  util::Rng b = util::Rng(123).fork(5);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a(), b());
  // Distinct stream indices diverge immediately.
  util::Rng c = util::Rng(123).fork(6);
  EXPECT_NE(util::Rng(123).fork(5)(), c());
  // Taking forks never consumes from the parent's own sequence, and forks
  // taken after the parent advanced come from the new state.
  util::Rng p1(123);
  util::Rng p2(123);
  (void)p2.fork(9);
  (void)p2.fork(10);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p1(), p2());
  EXPECT_NE(p1.fork(5)(), util::Rng(123).fork(5)());
}

}  // namespace
}  // namespace carbonedge
