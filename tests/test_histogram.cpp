#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace carbonedge::util {
namespace {

TEST(Histogram, EmptyIsZero) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, InvalidRangeThrows) {
  EXPECT_THROW(Histogram(10.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 5.0, 5), std::invalid_argument);
}

TEST(Histogram, MeanMinMaxTracked) {
  Histogram h(0.0, 100.0, 100);
  h.add(10.0);
  h.add(30.0);
  h.add(50.0);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, WeightsCountProportionally) {
  Histogram h(0.0, 100.0, 100);
  h.add(10.0, 3.0);
  h.add(90.0, 1.0);
  EXPECT_DOUBLE_EQ(h.mean(), (3.0 * 10.0 + 90.0) / 4.0);
  // 3/4 of the mass is at 10 -> median lands in the 10 bin.
  EXPECT_NEAR(h.quantile(0.5), 10.0, 2.0);
}

TEST(Histogram, ZeroOrNegativeWeightIgnored) {
  Histogram h;
  h.add(5.0, 0.0);
  h.add(5.0, -1.0);
  EXPECT_TRUE(h.empty());
}

TEST(Histogram, QuantilesMatchExactStatsOnUniformSample) {
  Rng rng(17);
  Histogram h(0.0, 100.0, 1000);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    h.add(v);
    sample.push_back(v);
  }
  for (const double p : {10.0, 50.0, 95.0}) {
    EXPECT_NEAR(h.quantile(p / 100.0), percentile(sample, p), 0.5) << p;
  }
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(25.0);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
  // Quantiles clamp to observed min/max.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 25.0);
}

TEST(Histogram, MergeEqualsCombinedStream) {
  Rng rng(23);
  Histogram a(0.0, 50.0, 200);
  Histogram b(0.0, 50.0, 200);
  Histogram both(0.0, 50.0, 200);
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.uniform(0.0, 50.0);
    (i % 2 == 0 ? a : b).add(v);
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), both.quantile(0.5));
}

TEST(Histogram, MergeRequiresSameBinning) {
  Histogram a(0.0, 50.0, 200);
  Histogram b(0.0, 60.0, 200);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace carbonedge::util
