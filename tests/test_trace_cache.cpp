#include "carbon/trace_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "carbon/service.hpp"
#include "geo/region.hpp"

namespace carbonedge::carbon {
namespace {

ZoneSpec spec_of(const geo::Region& region, std::size_t index = 0) {
  const auto cities = region.resolve();
  return ZoneCatalog::builtin().spec_for(cities.at(index));
}

TEST(TraceCache, SameKeyReturnsSameSharedTrace) {
  TraceCache cache;
  const ZoneSpec zone = spec_of(geo::florida_region());
  const SynthesizerParams params;
  const auto first = cache.get(zone, params);
  const auto second = cache.get(zone, params);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // shared, not equal-by-value
  EXPECT_EQ(cache.syntheses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCache, CachedTraceMatchesDirectSynthesis) {
  TraceCache cache;
  const ZoneSpec zone = spec_of(geo::central_eu_region());
  const SynthesizerParams params;
  const CarbonTrace direct = TraceSynthesizer(params).synthesize(zone);
  const auto cached = cache.get(zone, params);
  ASSERT_EQ(cached->hours(), direct.hours());
  for (HourIndex h = 0; h < 48; ++h) {
    EXPECT_DOUBLE_EQ(cached->at(h), direct.at(h));
  }
}

TEST(TraceCache, DifferentParamsSynthesizeDistinctTraces) {
  TraceCache cache;
  const ZoneSpec zone = spec_of(geo::florida_region());
  SynthesizerParams a;
  SynthesizerParams b;
  b.seed = a.seed + 1;
  const auto trace_a = cache.get(zone, a);
  const auto trace_b = cache.get(zone, b);
  EXPECT_NE(trace_a.get(), trace_b.get());
  EXPECT_EQ(cache.syntheses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TraceCache, DifferentZonesSynthesizeDistinctTraces) {
  TraceCache cache;
  const geo::Region region = geo::florida_region();
  const auto trace_a = cache.get(spec_of(region, 0));
  const auto trace_b = cache.get(spec_of(region, 1));
  EXPECT_NE(trace_a.get(), trace_b.get());
  EXPECT_NE(trace_a->zone(), trace_b->zone());
  EXPECT_EQ(cache.syntheses(), 2u);
}

TEST(TraceCache, ConcurrentLookupsSynthesizeOncePerKey) {
  TraceCache cache;
  const geo::Region region = geo::florida_region();
  const std::vector<ZoneSpec> zones = {spec_of(region, 0), spec_of(region, 1),
                                       spec_of(region, 2)};
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 32;
  std::vector<std::vector<std::shared_ptr<const CarbonTrace>>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        seen[t].push_back(cache.get(zones[i % zones.size()]));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactly one synthesis per distinct zone, no matter the interleaving...
  EXPECT_EQ(cache.syntheses(), zones.size());
  EXPECT_EQ(cache.size(), zones.size());
  // ... and every thread observed the same shared instance per zone.
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kIterations; ++i) {
      EXPECT_EQ(seen[t][i].get(), seen[0][i % zones.size()].get());
    }
  }
}

TEST(TraceCache, ClearDropsEntriesButKeepsHandlesAlive) {
  TraceCache cache;
  const ZoneSpec zone = spec_of(geo::florida_region());
  const auto held = cache.get(zone);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.syntheses(), 0u);
  EXPECT_GT(held->hours(), 0u);  // the handle survives the eviction
  const auto fresh = cache.get(zone);
  EXPECT_NE(fresh.get(), held.get());  // re-synthesized after clear
}

TEST(TraceCache, ServicesOverTheSameRegionShareTraces) {
  // The tentpole guarantee: constructing many services over one region
  // synthesizes each zone's year-long series at most once per process and
  // shares the immutable trace between them.
  const geo::Region region = geo::italy_region();
  CarbonIntensityService first;
  first.add_region(region);
  const std::uint64_t syntheses_after_first = TraceCache::global().syntheses();
  CarbonIntensityService second;
  second.add_region(region);
  EXPECT_EQ(TraceCache::global().syntheses(), syntheses_after_first);  // all hits
  for (const geo::City& city : region.resolve()) {
    EXPECT_EQ(first.shared_trace(city.name).get(), second.shared_trace(city.name).get());
  }
}

TEST(TraceCache, ManuallyAddedTracesBypassTheCache) {
  // add_trace(CarbonTrace) registers ad-hoc series (tests, CSV loads)
  // without touching the process-wide cache.
  const std::uint64_t syntheses_before = TraceCache::global().syntheses();
  CarbonIntensityService service;
  service.add_trace(CarbonTrace("custom-zone", {100.0, 200.0}));
  EXPECT_EQ(TraceCache::global().syntheses(), syntheses_before);
  EXPECT_DOUBLE_EQ(service.intensity("custom-zone", 1), 200.0);
}

}  // namespace
}  // namespace carbonedge::carbon
