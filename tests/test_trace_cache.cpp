#include "carbon/trace_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "carbon/service.hpp"
#include "geo/region.hpp"
#include "store/artifact_store.hpp"
#include "store/trace_tier.hpp"
#include "store_test_util.hpp"

namespace carbonedge::carbon {
namespace {

struct TempStoreDir : testutil::TempStoreDir {
  TempStoreDir() : testutil::TempStoreDir("carbonedge_trace_cache_test") {}
};

ZoneSpec spec_of(const geo::Region& region, std::size_t index = 0) {
  const auto cities = region.resolve();
  return ZoneCatalog::builtin().spec_for(cities.at(index));
}

TEST(TraceCache, SameKeyReturnsSameSharedTrace) {
  TraceCache cache;
  const ZoneSpec zone = spec_of(geo::florida_region());
  const SynthesizerParams params;
  const auto first = cache.get(zone, params);
  const auto second = cache.get(zone, params);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // shared, not equal-by-value
  EXPECT_EQ(cache.syntheses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCache, CachedTraceMatchesDirectSynthesis) {
  TraceCache cache;
  const ZoneSpec zone = spec_of(geo::central_eu_region());
  const SynthesizerParams params;
  const CarbonTrace direct = TraceSynthesizer(params).synthesize(zone);
  const auto cached = cache.get(zone, params);
  ASSERT_EQ(cached->hours(), direct.hours());
  for (HourIndex h = 0; h < 48; ++h) {
    EXPECT_DOUBLE_EQ(cached->at(h), direct.at(h));
  }
}

TEST(TraceCache, DifferentParamsSynthesizeDistinctTraces) {
  TraceCache cache;
  const ZoneSpec zone = spec_of(geo::florida_region());
  SynthesizerParams a;
  SynthesizerParams b;
  b.seed = a.seed + 1;
  const auto trace_a = cache.get(zone, a);
  const auto trace_b = cache.get(zone, b);
  EXPECT_NE(trace_a.get(), trace_b.get());
  EXPECT_EQ(cache.syntheses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TraceCache, DifferentZonesSynthesizeDistinctTraces) {
  TraceCache cache;
  const geo::Region region = geo::florida_region();
  const auto trace_a = cache.get(spec_of(region, 0));
  const auto trace_b = cache.get(spec_of(region, 1));
  EXPECT_NE(trace_a.get(), trace_b.get());
  EXPECT_NE(trace_a->zone(), trace_b->zone());
  EXPECT_EQ(cache.syntheses(), 2u);
}

TEST(TraceCache, ConcurrentLookupsSynthesizeOncePerKey) {
  TraceCache cache;
  const geo::Region region = geo::florida_region();
  const std::vector<ZoneSpec> zones = {spec_of(region, 0), spec_of(region, 1),
                                       spec_of(region, 2)};
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 32;
  std::vector<std::vector<std::shared_ptr<const CarbonTrace>>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        seen[t].push_back(cache.get(zones[i % zones.size()]));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactly one synthesis per distinct zone, no matter the interleaving...
  EXPECT_EQ(cache.syntheses(), zones.size());
  EXPECT_EQ(cache.size(), zones.size());
  // ... and every thread observed the same shared instance per zone.
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kIterations; ++i) {
      EXPECT_EQ(seen[t][i].get(), seen[0][i % zones.size()].get());
    }
  }
}

TEST(TraceCache, ClearDropsEntriesButKeepsHandlesAlive) {
  TraceCache cache;
  const ZoneSpec zone = spec_of(geo::florida_region());
  const auto held = cache.get(zone);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.syntheses(), 0u);
  EXPECT_GT(held->hours(), 0u);  // the handle survives the eviction
  const auto fresh = cache.get(zone);
  EXPECT_NE(fresh.get(), held.get());  // re-synthesized after clear
}

TEST(TraceCache, ServicesOverTheSameRegionShareTraces) {
  // The tentpole guarantee: constructing many services over one region
  // synthesizes each zone's year-long series at most once per process and
  // shares the immutable trace between them.
  const geo::Region region = geo::italy_region();
  CarbonIntensityService first;
  first.add_region(region);
  const std::uint64_t syntheses_after_first = TraceCache::global().syntheses();
  CarbonIntensityService second;
  second.add_region(region);
  EXPECT_EQ(TraceCache::global().syntheses(), syntheses_after_first);  // all hits
  for (const geo::City& city : region.resolve()) {
    EXPECT_EQ(first.shared_trace(city.name).get(), second.shared_trace(city.name).get());
  }
}

TEST(TraceCache, AdHocSpecsSharingACatalogNameGetDistinctEntries) {
  // The old cache keyed on the bare zone name, so an ad-hoc spec reusing a
  // catalog name silently aliased the catalog trace. Content-hash keying
  // removes that invariant: same name, different mix => distinct entries.
  TraceCache cache;
  const ZoneSpec catalog_spec = spec_of(geo::florida_region());
  ZoneSpec adhoc = catalog_spec;
  adhoc.capacity = make_mix({{EnergySource::kCoal, 1.0}});
  const auto from_catalog = cache.get(catalog_spec);
  const auto from_adhoc = cache.get(adhoc);
  EXPECT_NE(from_catalog.get(), from_adhoc.get());
  EXPECT_EQ(cache.syntheses(), 2u);
  EXPECT_NE(from_catalog->yearly_mean(), from_adhoc->yearly_mean());
  // Equal content still shares, wherever the spec object came from.
  const ZoneSpec copy = catalog_spec;
  EXPECT_EQ(cache.get(copy).get(), from_catalog.get());
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(TraceCache, KeyOfCoversEveryField) {
  const ZoneSpec spec = spec_of(geo::florida_region());
  const SynthesizerParams params;
  const std::string base = TraceCache::key_of(spec, params);
  EXPECT_EQ(base.size(), 32u);
  EXPECT_EQ(TraceCache::key_of(spec, params), base);  // deterministic

  ZoneSpec changed = spec;
  changed.demand_peak += 0.01;
  EXPECT_NE(TraceCache::key_of(changed, params), base);
  changed = spec;
  changed.latitude_deg += 1.0;
  EXPECT_NE(TraceCache::key_of(changed, params), base);
  SynthesizerParams p2 = params;
  p2.grid_import_fraction += 0.01;
  EXPECT_NE(TraceCache::key_of(spec, p2), base);
}

TEST(TraceCache, TwoCachesShareOneStoreDirectory) {
  // The cross-process contract, exercised with two cache instances over one
  // store directory: the second "process" performs zero syntheses.
  TempStoreDir tmp;
  const ZoneSpec zone_a = spec_of(geo::italy_region(), 0);
  const ZoneSpec zone_b = spec_of(geo::italy_region(), 1);

  TraceCache first;
  first.set_store(store::make_trace_tier(std::make_shared<store::ArtifactStore>(tmp.dir)));
  const auto synthesized_a = first.get(zone_a);
  const auto synthesized_b = first.get(zone_b);
  EXPECT_EQ(first.syntheses(), 2u);
  EXPECT_EQ(first.disk_hits(), 0u);

  TraceCache second;
  second.set_store(store::make_trace_tier(std::make_shared<store::ArtifactStore>(tmp.dir)));
  const auto loaded_a = second.get(zone_a);
  const auto loaded_b = second.get(zone_b);
  EXPECT_EQ(second.syntheses(), 0u);  // exactly one synthesis per key, ever
  EXPECT_EQ(second.disk_hits(), 2u);
  // Repeat lookups stay in memory (L1), not the disk tier.
  (void)second.get(zone_a);
  EXPECT_EQ(second.hits(), 1u);
  EXPECT_EQ(second.disk_hits(), 2u);

  // Loaded series are bit-identical to the synthesized ones, mixes included.
  ASSERT_EQ(loaded_a->hours(), synthesized_a->hours());
  for (std::size_t h = 0; h < loaded_a->hours(); ++h) {
    EXPECT_EQ(loaded_a->values()[h], synthesized_a->values()[h]);
  }
  ASSERT_EQ(loaded_b->mixes().size(), synthesized_b->mixes().size());
  for (std::size_t h = 0; h < loaded_b->mixes().size(); ++h) {
    EXPECT_EQ(loaded_b->mixes()[h], synthesized_b->mixes()[h]);
  }
}

TEST(TraceCache, CorruptStoreEntryIsResynthesizedAndHealed) {
  TempStoreDir tmp;
  const ZoneSpec zone = spec_of(geo::west_us_region());
  const std::string key = TraceCache::key_of(zone, {});
  auto artifacts = std::make_shared<store::ArtifactStore>(tmp.dir);

  TraceCache first;
  first.set_store(store::make_trace_tier(artifacts));
  (void)first.get(zone);
  // Scribble over the entry: the next cache must notice, re-synthesize,
  // and publish a fresh intact copy.
  artifacts->save(store::ArtifactKind::kCarbonTrace, key, "definitely not a trace payload");
  std::filesystem::resize_file(artifacts->entry_path(store::ArtifactKind::kCarbonTrace, key),
                               10);

  TraceCache second;
  second.set_store(store::make_trace_tier(artifacts));
  const auto healed = second.get(zone);
  EXPECT_EQ(second.syntheses(), 1u);
  EXPECT_EQ(second.disk_hits(), 0u);
  EXPECT_GT(healed->hours(), 0u);

  TraceCache third;
  third.set_store(store::make_trace_tier(artifacts));
  (void)third.get(zone);
  EXPECT_EQ(third.disk_hits(), 1u);  // healed entry reads back intact
}

TEST(TraceCache, ManuallyAddedTracesBypassTheCache) {
  // add_trace(CarbonTrace) registers ad-hoc series (tests, CSV loads)
  // without touching the process-wide cache.
  const std::uint64_t syntheses_before = TraceCache::global().syntheses();
  CarbonIntensityService service;
  service.add_trace(CarbonTrace("custom-zone", {100.0, 200.0}));
  EXPECT_EQ(TraceCache::global().syntheses(), syntheses_before);
  EXPECT_DOUBLE_EQ(service.intensity("custom-zone", 1), 200.0);
}

}  // namespace
}  // namespace carbonedge::carbon
