#include "sim/telemetry.hpp"

#include <algorithm>

#include "sim/datacenter.hpp"
#include "sim/server.hpp"

namespace carbonedge::sim {

SiteEpochRecord make_site_epoch_record(const EdgeDataCenter& site, double intensity_g_kwh,
                                       double epoch_hours, bool account_base_power) {
  SiteEpochRecord record;
  const double watts = account_base_power ? site.power_draw_w() : site.dynamic_power_w();
  record.energy_wh = watts * epoch_hours;
  record.intensity_g_kwh = intensity_g_kwh;
  record.carbon_g = record.energy_wh / 1000.0 * record.intensity_g_kwh;
  record.apps_hosted = static_cast<std::uint32_t>(site.app_count());
  for (const EdgeServer& server : site.servers()) {
    for (const AppInstance& instance : server.apps()) record.rps_hosted += instance.rps;
  }
  return record;
}

double EpochRecord::energy_wh() const noexcept {
  double total = migration_energy_wh;
  for (const SiteEpochRecord& s : sites) total += s.energy_wh;
  return total;
}

double EpochRecord::carbon_g() const noexcept {
  double total = migration_carbon_g;
  for (const SiteEpochRecord& s : sites) total += s.carbon_g;
  return total;
}

double EpochRecord::mean_rtt_ms() const noexcept {
  return rps_total > 0.0 ? rtt_weighted_sum_ms / rps_total : 0.0;
}

double EpochRecord::mean_response_ms() const noexcept {
  return rps_total > 0.0 ? response_weighted_sum_ms / rps_total : 0.0;
}

void Telemetry::record(EpochRecord record) { epochs_.push_back(std::move(record)); }

void Telemetry::fold_app_samples(EpochRecord& record,
                                 std::span<const AppEpochSample> samples) {
  for (const AppEpochSample& sample : samples) {
    record.rtt_weighted_sum_ms += sample.rtt_ms * sample.rps;
    record.response_weighted_sum_ms += sample.response_ms * sample.rps;
    record.rps_total += sample.rps;
    add_response_sample(sample.response_ms, sample.rps);
  }
}

double Telemetry::total_energy_wh() const noexcept {
  double total = 0.0;
  for (const EpochRecord& e : epochs_) total += e.energy_wh();
  return total;
}

double Telemetry::total_carbon_g() const noexcept {
  double total = 0.0;
  for (const EpochRecord& e : epochs_) total += e.carbon_g();
  return total;
}

double Telemetry::mean_rtt_ms() const noexcept {
  double weighted = 0.0;
  double rps = 0.0;
  for (const EpochRecord& e : epochs_) {
    weighted += e.rtt_weighted_sum_ms;
    rps += e.rps_total;
  }
  return rps > 0.0 ? weighted / rps : 0.0;
}

double Telemetry::mean_response_ms() const noexcept {
  double weighted = 0.0;
  double rps = 0.0;
  for (const EpochRecord& e : epochs_) {
    weighted += e.response_weighted_sum_ms;
    rps += e.rps_total;
  }
  return rps > 0.0 ? weighted / rps : 0.0;
}

std::uint64_t Telemetry::total_placed() const noexcept {
  std::uint64_t total = 0;
  for (const EpochRecord& e : epochs_) total += e.apps_placed;
  return total;
}

std::uint64_t Telemetry::total_rejected() const noexcept {
  std::uint64_t total = 0;
  for (const EpochRecord& e : epochs_) total += e.apps_rejected;
  return total;
}

std::vector<double> Telemetry::carbon_by_site(std::size_t first, std::size_t last) const {
  std::vector<double> totals;
  last = std::min(last, epochs_.size());
  for (std::size_t e = first; e < last; ++e) {
    const EpochRecord& record = epochs_[e];
    if (totals.size() < record.sites.size()) totals.resize(record.sites.size(), 0.0);
    for (std::size_t s = 0; s < record.sites.size(); ++s) totals[s] += record.sites[s].carbon_g;
  }
  return totals;
}

std::vector<double> Telemetry::carbon_by_site() const {
  return carbon_by_site(0, epochs_.size());
}

std::vector<double> Telemetry::apps_by_site(std::size_t first, std::size_t last) const {
  std::vector<double> totals;
  last = std::min(last, epochs_.size());
  const std::size_t window = last > first ? last - first : 1;
  for (std::size_t e = first; e < last; ++e) {
    const EpochRecord& record = epochs_[e];
    if (totals.size() < record.sites.size()) totals.resize(record.sites.size(), 0.0);
    for (std::size_t s = 0; s < record.sites.size(); ++s) {
      totals[s] += static_cast<double>(record.sites[s].apps_hosted);
    }
  }
  for (double& t : totals) t /= static_cast<double>(window);
  return totals;
}

std::vector<double> Telemetry::load_intensity_sample() const {
  std::vector<double> sample;
  for (const EpochRecord& e : epochs_) {
    for (const SiteEpochRecord& s : e.sites) {
      if (s.rps_hosted > 0.0) {
        // One sample per site-epoch, weighted by whole units of rps so the
        // CDF reflects where load actually ran.
        const auto units = static_cast<std::size_t>(s.rps_hosted + 0.5);
        for (std::size_t u = 0; u < std::max<std::size_t>(1, units); ++u) {
          sample.push_back(s.intensity_g_kwh);
        }
      }
    }
  }
  return sample;
}

}  // namespace carbonedge::sim
