// Edge servers: capacity accounting and the power model.
//
// A server hosts application instances subject to two resource dimensions
// (Eq. 1's multi-dimensional capacities): device memory (MB) and compute
// busy-fraction. Power follows the standard base + proportional model the
// paper uses (base power B_j emitted while powered on; dynamic energy from
// per-inference profiles, measured via RAPL/DCGM in the prototype).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/app_model.hpp"
#include "sim/device.hpp"

namespace carbonedge::sim {

using AppId = std::uint64_t;
inline constexpr AppId kNoApp = static_cast<AppId>(-1);

/// A placed application instance: a model served at a sustained rate.
struct AppInstance {
  AppId id = kNoApp;
  ModelType model = ModelType::kEfficientNetB0;
  double rps = 0.0;  // sustained request rate
};

struct ServerConfig {
  std::string name;
  DeviceType device = DeviceType::kA2;
  /// Base (idle) power B_j drawn whenever powered on; defaults to the
  /// device idle power plus host overhead.
  double base_power_w = 0.0;
  /// Cap on compute busy-fraction to preserve tail latency.
  double max_utilization = 0.85;
  bool initially_on = true;
};

class EdgeServer {
 public:
  EdgeServer(std::uint32_t id, ServerConfig config);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] DeviceType device() const noexcept { return config_.device; }

  [[nodiscard]] bool powered_on() const noexcept { return powered_on_; }
  void set_powered_on(bool on);

  /// Failure state (crash injection): a failed server hosts nothing, draws
  /// no power, and cannot be activated until repaired. Failing a server
  /// evicts nothing — the simulation engine is responsible for redeploying
  /// its applications (Figure 6 step 1: "applications to be redeployed when
  /// an edge server fails").
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  void set_failed(bool failed);

  /// True if the model runs on this device and the remaining memory and
  /// compute headroom admit `rps` of sustained load.
  [[nodiscard]] bool can_host(ModelType model, double rps) const noexcept;

  /// Place an instance; throws std::runtime_error if it does not fit or the
  /// server is powered off.
  void host(const AppInstance& app);

  /// Remove an instance by id; returns false if not present.
  bool evict(AppId id) noexcept;

  [[nodiscard]] const std::vector<AppInstance>& apps() const noexcept { return apps_; }
  [[nodiscard]] std::size_t app_count() const noexcept { return apps_.size(); }

  // Remaining capacities (resource dimensions for the optimizer).
  [[nodiscard]] double memory_capacity_mb() const noexcept;
  [[nodiscard]] double memory_used_mb() const noexcept { return memory_used_mb_; }
  [[nodiscard]] double memory_free_mb() const noexcept;
  [[nodiscard]] double compute_capacity() const noexcept { return config_.max_utilization; }
  [[nodiscard]] double compute_used() const noexcept { return compute_used_; }
  [[nodiscard]] double compute_free() const noexcept;

  /// Instantaneous draw: base power while on plus dynamic per-inference
  /// energy at the hosted request rates (J/s == W).
  [[nodiscard]] double power_draw_w() const noexcept;
  /// Dynamic-only draw (no base power).
  [[nodiscard]] double dynamic_power_w() const noexcept;
  /// Energy over an interval, watt-hours.
  [[nodiscard]] double energy_wh(double hours) const noexcept { return power_draw_w() * hours; }

  /// M/M/1-style mean service latency for a model at the current load:
  /// service_time / (1 - utilization). Used by the response-time model.
  [[nodiscard]] double mean_service_ms(ModelType model) const;

 private:
  std::uint32_t id_;
  ServerConfig config_;
  bool powered_on_;
  bool failed_ = false;
  std::vector<AppInstance> apps_;
  double memory_used_mb_ = 0.0;
  double compute_used_ = 0.0;
};

}  // namespace carbonedge::sim
