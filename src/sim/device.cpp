#include "sim/device.hpp"

namespace carbonedge::sim {
namespace {

constexpr std::array<DeviceProfile, kDeviceCount> kProfiles = {{
    // name       idle W  max W  memory MB  compute  concurrency
    {"Orin Nano", 5.0, 15.0, 8192.0, 0.45, 1.0},
    {"A2", 8.0, 60.0, 16384.0, 1.0, 2.0},
    {"GTX 1080", 10.0, 180.0, 8192.0, 1.8, 4.0},
    {"Xeon CPU", 95.0, 250.0, 262144.0, 0.6, 16.0},
}};

}  // namespace

const DeviceProfile& device_profile(DeviceType device) noexcept {
  return kProfiles[static_cast<std::size_t>(device)];
}

std::string_view to_string(DeviceType device) noexcept {
  return device_profile(device).name;
}

}  // namespace carbonedge::sim
