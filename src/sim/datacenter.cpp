#include "sim/datacenter.hpp"

#include <algorithm>
#include <cmath>

namespace carbonedge::sim {

EdgeDataCenter::EdgeDataCenter(std::uint32_t id, geo::City city)
    : id_(id), city_(std::move(city)) {}

EdgeServer& EdgeDataCenter::add_server(ServerConfig config) {
  if (config.name.empty()) {
    config.name = city_.name + "/s" + std::to_string(next_server_id_);
  }
  servers_.emplace_back(next_server_id_++, std::move(config));
  return servers_.back();
}

std::size_t EdgeDataCenter::app_count() const noexcept {
  std::size_t count = 0;
  for (const EdgeServer& s : servers_) count += s.app_count();
  return count;
}

double EdgeDataCenter::power_draw_w() const noexcept {
  double watts = 0.0;
  for (const EdgeServer& s : servers_) watts += s.power_draw_w();
  return watts;
}

double EdgeDataCenter::dynamic_power_w() const noexcept {
  double watts = 0.0;
  for (const EdgeServer& s : servers_) watts += s.dynamic_power_w();
  return watts;
}

EdgeCluster::EdgeCluster(const geo::Region& region) : name_(region.name) {
  std::uint32_t id = 0;
  for (const geo::City& city : region.resolve()) {
    sites_.emplace_back(id++, city);
  }
}

std::vector<geo::City> EdgeCluster::cities() const {
  std::vector<geo::City> out;
  out.reserve(sites_.size());
  for (const EdgeDataCenter& dc : sites_) out.push_back(dc.city());
  return out;
}

std::vector<EdgeCluster::ServerRef> EdgeCluster::all_servers() {
  std::vector<ServerRef> refs;
  for (std::size_t site = 0; site < sites_.size(); ++site) {
    for (EdgeServer& server : sites_[site].servers()) {
      refs.push_back(ServerRef{site, &server});
    }
  }
  return refs;
}

EdgeCluster make_uniform_cluster(const geo::Region& region, std::size_t servers_per_site,
                                 DeviceType device) {
  EdgeCluster cluster(region);
  for (EdgeDataCenter& dc : cluster.sites()) {
    for (std::size_t s = 0; s < servers_per_site; ++s) {
      ServerConfig config;
      config.device = device;
      dc.add_server(std::move(config));
    }
  }
  return cluster;
}

EdgeCluster make_population_cluster(const geo::Region& region, std::size_t total_servers,
                                    DeviceType device) {
  EdgeCluster cluster(region);
  if (cluster.size() == 0) return cluster;
  double total_pop = 0.0;
  for (const EdgeDataCenter& dc : cluster.sites()) total_pop += dc.city().population_k;
  // Largest-remainder apportionment with a floor of one server per site.
  const std::size_t sites = cluster.size();
  const std::size_t assignable = total_servers > sites ? total_servers - sites : 0;
  std::vector<std::size_t> extra(sites, 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < sites; ++i) {
    const double share =
        total_pop > 0.0 ? cluster.sites()[i].city().population_k / total_pop : 1.0 / static_cast<double>(sites);
    const double exact = share * static_cast<double>(assignable);
    extra[i] = static_cast<std::size_t>(exact);
    assigned += extra[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t r = 0; r < remainders.size() && assigned < assignable; ++r, ++assigned) {
    ++extra[remainders[r].second];
  }
  for (std::size_t i = 0; i < sites; ++i) {
    for (std::size_t s = 0; s < 1 + extra[i]; ++s) {
      ServerConfig config;
      config.device = device;
      cluster.sites()[i].add_server(std::move(config));
    }
  }
  return cluster;
}

EdgeCluster make_hetero_cluster(const geo::Region& region, std::size_t servers_per_site,
                                const std::vector<DeviceType>& devices) {
  EdgeCluster cluster(region);
  if (devices.empty()) return cluster;
  std::size_t cursor = 0;
  for (EdgeDataCenter& dc : cluster.sites()) {
    for (std::size_t s = 0; s < servers_per_site; ++s) {
      ServerConfig config;
      config.device = devices[cursor++ % devices.size()];
      dc.add_server(std::move(config));
    }
  }
  return cluster;
}

}  // namespace carbonedge::sim
