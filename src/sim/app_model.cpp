#include "sim/app_model.hpp"

#include <stdexcept>
#include <string>

namespace carbonedge::sim {
namespace {

// Rows follow Figure 7 (energy in J, memory in MB, inference in ms).
// Devices: Orin Nano, A2, GTX 1080 for GPU models; Xeon for SciCpu.
struct ProfileRow {
  ModelType model;
  DeviceType device;
  WorkloadProfile profile;
};

constexpr ProfileRow kProfiles[] = {
    {ModelType::kEfficientNetB0, DeviceType::kOrinNano, {0.016, 128.0, 8.2}},
    {ModelType::kEfficientNetB0, DeviceType::kA2, {0.024, 150.0, 4.8}},
    {ModelType::kEfficientNetB0, DeviceType::kGtx1080, {0.031, 176.0, 2.6}},
    {ModelType::kResNet50, DeviceType::kOrinNano, {0.082, 246.0, 24.5}},
    {ModelType::kResNet50, DeviceType::kA2, {0.118, 288.0, 11.8}},
    {ModelType::kResNet50, DeviceType::kGtx1080, {0.158, 330.0, 5.9}},
    {ModelType::kYoloV4, DeviceType::kOrinNano, {0.71, 452.0, 39.6}},
    {ModelType::kYoloV4, DeviceType::kA2, {1.05, 498.0, 21.7}},
    {ModelType::kYoloV4, DeviceType::kGtx1080, {1.38, 540.0, 10.8}},
    {ModelType::kSciCpu, DeviceType::kXeonCpu, {2.1, 512.0, 48.0}},
};

}  // namespace

ProfileResult profile_of(ModelType model, DeviceType device) noexcept {
  for (const ProfileRow& row : kProfiles) {
    if (row.model == model && row.device == device) return {true, row.profile};
  }
  return {};
}

WorkloadProfile require_profile(ModelType model, DeviceType device) {
  const ProfileResult result = profile_of(model, device);
  if (!result.supported) {
    throw std::invalid_argument(std::string(to_string(model)) + " is not supported on " +
                                std::string(to_string(device)));
  }
  return result.profile;
}

std::string_view to_string(ModelType model) noexcept {
  switch (model) {
    case ModelType::kEfficientNetB0: return "EfficientNetB0";
    case ModelType::kResNet50: return "ResNet50";
    case ModelType::kYoloV4: return "YOLOv4";
    case ModelType::kSciCpu: return "Sci";
    case ModelType::kCount_: break;
  }
  return "?";
}

double compute_demand_per_rps(ModelType model, DeviceType device) {
  const WorkloadProfile profile = require_profile(model, device);
  // Busy-fraction of the device per request/second: service time per
  // request spread over the device's independent execution streams (cores
  // for the Xeon, SM partitions for the GPUs). The per-device inference_ms
  // table already embeds single-stream speed differences.
  return profile.inference_ms / 1000.0 / device_profile(device).concurrency;
}

}  // namespace carbonedge::sim
