// Edge data centers: a city-anchored group of servers inside one carbon
// zone, plus cluster builders for the paper's deployment scenarios.
#pragma once

#include <string>
#include <vector>

#include "geo/region.hpp"
#include "geo/site.hpp"
#include "sim/device.hpp"
#include "sim/server.hpp"

namespace carbonedge::sim {

class EdgeDataCenter {
 public:
  EdgeDataCenter(std::uint32_t id, geo::City city);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const geo::City& city() const noexcept { return city_; }
  /// Carbon zone name (== city name; one zone per site in our catalog).
  [[nodiscard]] const std::string& zone() const noexcept { return city_.name; }

  EdgeServer& add_server(ServerConfig config);
  [[nodiscard]] std::vector<EdgeServer>& servers() noexcept { return servers_; }
  [[nodiscard]] const std::vector<EdgeServer>& servers() const noexcept { return servers_; }

  [[nodiscard]] std::size_t app_count() const noexcept;
  [[nodiscard]] double power_draw_w() const noexcept;
  [[nodiscard]] double dynamic_power_w() const noexcept;

 private:
  std::uint32_t id_;
  geo::City city_;
  std::vector<EdgeServer> servers_;
  std::uint32_t next_server_id_ = 0;
};

/// An edge cluster: the data centers of one region, indexable by site.
class EdgeCluster {
 public:
  explicit EdgeCluster(const geo::Region& region);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::vector<EdgeDataCenter>& sites() noexcept { return sites_; }
  [[nodiscard]] const std::vector<EdgeDataCenter>& sites() const noexcept { return sites_; }
  [[nodiscard]] std::size_t size() const noexcept { return sites_.size(); }

  /// All cities in site order (for latency matrices).
  [[nodiscard]] std::vector<geo::City> cities() const;

  /// Flat list of (site index, server pointer) across all sites, the server
  /// ordering used by placement problems.
  struct ServerRef {
    std::size_t site = 0;
    EdgeServer* server = nullptr;
  };
  [[nodiscard]] std::vector<ServerRef> all_servers();

 private:
  std::string name_;
  std::vector<EdgeDataCenter> sites_;
};

/// Cluster builders for the paper's scenarios.
///
/// `servers_per_site` homogeneous servers of `device` at every site
/// (Section 6.2's testbed: one server per site; Section 6.3's CDN:
/// capacity optionally proportional to population).
[[nodiscard]] EdgeCluster make_uniform_cluster(const geo::Region& region,
                                               std::size_t servers_per_site, DeviceType device);

/// Capacity proportional to metro population: every site gets at least one
/// server, larger metros more (Section 6.3.4's "Capacity" scenario).
[[nodiscard]] EdgeCluster make_population_cluster(const geo::Region& region,
                                                  std::size_t total_servers, DeviceType device);

/// Heterogeneous cluster: sites cycle deterministically through the given
/// device list (Section 6.3.5's "Hetero" scenario).
[[nodiscard]] EdgeCluster make_hetero_cluster(const geo::Region& region,
                                              std::size_t servers_per_site,
                                              const std::vector<DeviceType>& devices);

}  // namespace carbonedge::sim
