// Edge workload generation.
//
// Applications (offloaded IoT/mobile services, Figure 6 step 1) arrive at
// edge sites over time, each with a model type, sustained request rate,
// origin site, round-trip latency SLO, and a lifetime after which it
// departs. Arrival volume per site is either uniform or population-
// proportional (Section 6.3.4's "Demand" scenario).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/app_model.hpp"
#include "sim/datacenter.hpp"
#include "sim/server.hpp"
#include "util/random.hpp"

namespace carbonedge::sim {

/// An application awaiting (or holding) placement.
struct Application {
  AppId id = kNoApp;
  ModelType model = ModelType::kEfficientNetB0;
  std::size_t origin_site = 0;     // site index within the cluster
  double rps = 0.0;                // sustained request rate
  double latency_limit_rtt_ms = 20.0;  // SLO on network round-trip (Eq. 2)
  std::uint32_t remaining_epochs = 1;  // departs when this reaches zero
  /// Container image + model weights + working state that must move when
  /// the application migrates between sites (the data-movement cost the
  /// paper defers to future work; see core/simulation.hpp).
  double state_size_mb = 400.0;
  /// Temporal flexibility: the application may wait up to this many epochs
  /// before starting (0 = interactive, must start immediately). Used by the
  /// temporal-shifting baseline (paper Section 2.2); latency-critical edge
  /// workloads normally have none.
  std::uint32_t max_defer_epochs = 0;
};

enum class DemandDistribution : std::uint8_t {
  kUniform,     // every site sources the same expected load
  kPopulation,  // load proportional to metro population
};

struct WorkloadParams {
  /// Expected new applications per site per epoch (scaled by the demand
  /// distribution weights; the total over sites is preserved).
  double arrivals_per_site = 2.0;
  DemandDistribution demand = DemandDistribution::kUniform;
  /// Model mix weights, indexed by ModelType (zero = never generated).
  std::array<double, kModelCount> model_weights = {1.0, 1.0, 1.0, 0.0};
  double min_rps = 2.0;
  double max_rps = 10.0;
  /// Transferable application state (uniform range, MB).
  double min_state_mb = 200.0;
  double max_state_mb = 900.0;
  /// Temporal flexibility granted to every generated application.
  std::uint32_t max_defer_epochs = 0;
  double latency_limit_rtt_ms = 20.0;  // default SLO (~500 km, Section 6.1.1)
  double mean_lifetime_epochs = 12.0;  // geometric lifetime
  /// Testbed mode (Sections 6.2/6.5): this many long-lived applications per
  /// site are injected at epoch 0 (in addition to Poisson arrivals).
  std::uint32_t initial_per_site = 0;
  /// Lifetime of the epoch-0 initial applications (effectively "the whole
  /// experiment" by default).
  std::uint32_t initial_lifetime_epochs = 0x7FFFFFFF;
  std::uint64_t seed = 0xED6E10ADULL;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadParams params, const EdgeCluster& cluster);

  /// Applications arriving in one epoch (Poisson per site).
  [[nodiscard]] std::vector<Application> arrivals(std::uint32_t epoch);

  /// A fixed-size batch, origins drawn from the demand distribution
  /// (used by scalability and overhead benches).
  [[nodiscard]] std::vector<Application> batch(std::size_t count);

  [[nodiscard]] const WorkloadParams& params() const noexcept { return params_; }

 private:
  [[nodiscard]] Application make_app(std::size_t origin_site);

  WorkloadParams params_;
  std::vector<double> site_weights_;  // normalized arrival weights per site
  util::Rng rng_;
  AppId next_id_ = 0;
};

}  // namespace carbonedge::sim
