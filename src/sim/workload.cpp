#include "sim/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace carbonedge::sim {

WorkloadGenerator::WorkloadGenerator(WorkloadParams params, const EdgeCluster& cluster)
    : params_(params), rng_(params.seed) {
  if (cluster.size() == 0) throw std::invalid_argument("workload: empty cluster");
  site_weights_.reserve(cluster.size());
  double total = 0.0;
  for (const EdgeDataCenter& dc : cluster.sites()) {
    const double w =
        params_.demand == DemandDistribution::kPopulation ? dc.city().population_k : 1.0;
    site_weights_.push_back(w);
    total += w;
  }
  // Normalize so the expected total arrival volume matches the uniform case
  // regardless of the distribution (the paper varies the *shape* of demand,
  // not its magnitude).
  const double scale = total > 0.0 ? static_cast<double>(cluster.size()) / total : 0.0;
  for (double& w : site_weights_) w *= scale;
}

Application WorkloadGenerator::make_app(std::size_t origin_site) {
  Application app;
  app.id = next_id_++;
  const std::size_t model_index =
      rng_.weighted_index(params_.model_weights.data(), params_.model_weights.size());
  app.model = model_index < kModelCount ? static_cast<ModelType>(model_index)
                                        : ModelType::kEfficientNetB0;
  app.origin_site = origin_site;
  app.rps = rng_.uniform(params_.min_rps, params_.max_rps);
  app.latency_limit_rtt_ms = params_.latency_limit_rtt_ms;
  app.state_size_mb = rng_.uniform(params_.min_state_mb, params_.max_state_mb);
  app.max_defer_epochs = params_.max_defer_epochs;
  // Geometric lifetime with the configured mean, at least one epoch.
  const double mean = std::max(1.0, params_.mean_lifetime_epochs);
  app.remaining_epochs = 1 + static_cast<std::uint32_t>(rng_.exponential(1.0 / (mean - 1.0 + 1e-9)));
  return app;
}

std::vector<Application> WorkloadGenerator::arrivals(std::uint32_t epoch) {
  std::vector<Application> apps;
  if (epoch == 0) {
    for (std::size_t site = 0; site < site_weights_.size(); ++site) {
      for (std::uint32_t n = 0; n < params_.initial_per_site; ++n) {
        Application app = make_app(site);
        app.remaining_epochs = params_.initial_lifetime_epochs;
        apps.push_back(app);
      }
    }
  }
  for (std::size_t site = 0; site < site_weights_.size(); ++site) {
    const double mean = params_.arrivals_per_site * site_weights_[site];
    const std::uint64_t count = rng_.poisson(mean);
    for (std::uint64_t c = 0; c < count; ++c) apps.push_back(make_app(site));
  }
  return apps;
}

std::vector<Application> WorkloadGenerator::batch(std::size_t count) {
  std::vector<Application> apps;
  apps.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t site = rng_.weighted_index(site_weights_.data(), site_weights_.size());
    apps.push_back(make_app(site < site_weights_.size() ? site : 0));
  }
  return apps;
}

}  // namespace carbonedge::sim
