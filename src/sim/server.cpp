#include "sim/server.hpp"

#include <algorithm>
#include <stdexcept>

namespace carbonedge::sim {

EdgeServer::EdgeServer(std::uint32_t id, ServerConfig config)
    : id_(id), config_(std::move(config)), powered_on_(config_.initially_on) {
  if (config_.base_power_w <= 0.0) {
    // Device idle draw plus host platform overhead (NIC, fans, host CPU for
    // accelerator cards). The Xeon profile already is a whole server.
    const DeviceProfile& dev = device_profile(config_.device);
    config_.base_power_w =
        config_.device == DeviceType::kXeonCpu ? dev.idle_power_w : dev.idle_power_w + 12.0;
  }
  if (config_.max_utilization <= 0.0 || config_.max_utilization > 1.0) {
    throw std::invalid_argument("server max_utilization must be in (0, 1]");
  }
}

void EdgeServer::set_powered_on(bool on) {
  if (!on && !apps_.empty()) {
    throw std::runtime_error("cannot power off a server with hosted applications");
  }
  if (on && failed_) {
    throw std::runtime_error("cannot power on a failed server before repair");
  }
  powered_on_ = on;
}

void EdgeServer::set_failed(bool failed) {
  failed_ = failed;
  if (failed) {
    // A crash drops all hosted state; the engine re-places the apps.
    apps_.clear();
    memory_used_mb_ = 0.0;
    compute_used_ = 0.0;
    powered_on_ = false;
  }
}

double EdgeServer::memory_capacity_mb() const noexcept {
  return device_profile(config_.device).memory_mb;
}

double EdgeServer::memory_free_mb() const noexcept {
  return std::max(0.0, memory_capacity_mb() - memory_used_mb_);
}

double EdgeServer::compute_free() const noexcept {
  return std::max(0.0, compute_capacity() - compute_used_);
}

bool EdgeServer::can_host(ModelType model, double rps) const noexcept {
  if (failed_) return false;
  const ProfileResult result = profile_of(model, config_.device);
  if (!result.supported) return false;
  if (result.profile.memory_mb > memory_free_mb() + 1e-9) return false;
  const double demand = compute_demand_per_rps(model, config_.device) * rps;
  return demand <= compute_free() + 1e-9;
}

void EdgeServer::host(const AppInstance& app) {
  if (!powered_on_) throw std::runtime_error("cannot host on a powered-off server");
  if (!can_host(app.model, app.rps)) {
    throw std::runtime_error("application does not fit on server " + config_.name);
  }
  const WorkloadProfile profile = require_profile(app.model, config_.device);
  apps_.push_back(app);
  memory_used_mb_ += profile.memory_mb;
  compute_used_ += compute_demand_per_rps(app.model, config_.device) * app.rps;
}

bool EdgeServer::evict(AppId id) noexcept {
  const auto it = std::find_if(apps_.begin(), apps_.end(),
                               [id](const AppInstance& a) { return a.id == id; });
  if (it == apps_.end()) return false;
  const WorkloadProfile profile = require_profile(it->model, config_.device);
  memory_used_mb_ = std::max(0.0, memory_used_mb_ - profile.memory_mb);
  compute_used_ =
      std::max(0.0, compute_used_ - compute_demand_per_rps(it->model, config_.device) * it->rps);
  apps_.erase(it);
  return true;
}

double EdgeServer::dynamic_power_w() const noexcept {
  double watts = 0.0;
  for (const AppInstance& app : apps_) {
    const ProfileResult result = profile_of(app.model, config_.device);
    if (result.supported) watts += result.profile.energy_j * app.rps;
  }
  return watts;
}

double EdgeServer::power_draw_w() const noexcept {
  if (!powered_on_) return 0.0;
  return config_.base_power_w + dynamic_power_w();
}

double EdgeServer::mean_service_ms(ModelType model) const {
  const WorkloadProfile profile = require_profile(model, config_.device);
  const double utilization = std::min(compute_used_, 0.99);
  return profile.inference_ms / (1.0 - utilization);
}

}  // namespace carbonedge::sim
