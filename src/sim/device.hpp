// Edge accelerator/server device profiles.
//
// The paper profiles its workloads on NVIDIA Jetson Orin Nano, NVIDIA A2,
// and NVIDIA GTX 1080 GPUs (Section 6.1.2), plus a 40-core Xeon E5-2660v3
// server (the testbed's Dell PowerEdge R630) for the CPU-based "Sci"
// application. Power figures are the devices' published idle/max draws; the
// heterogeneity experiments (Figure 15) depend on their relative ordering.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace carbonedge::sim {

enum class DeviceType : std::uint8_t {
  kOrinNano = 0,
  kA2,
  kGtx1080,
  kXeonCpu,
  kCount_,
};

inline constexpr std::size_t kDeviceCount = static_cast<std::size_t>(DeviceType::kCount_);

inline constexpr std::array<DeviceType, kDeviceCount> kAllDevices = {
    DeviceType::kOrinNano, DeviceType::kA2, DeviceType::kGtx1080, DeviceType::kXeonCpu};

struct DeviceProfile {
  std::string_view name;
  double idle_power_w;    // draw when powered on but idle (part of base power)
  double max_power_w;     // board/TDP limit
  double memory_mb;       // device memory available to applications
  double compute_units;   // relative throughput capacity (A2 == 1.0)
  double concurrency;     // independent execution streams (cores / SM groups)
};

[[nodiscard]] const DeviceProfile& device_profile(DeviceType device) noexcept;
[[nodiscard]] std::string_view to_string(DeviceType device) noexcept;

}  // namespace carbonedge::sim
