// Application models and their per-device profiles (paper Figure 7).
//
// Substitutes for the paper's profiling service (Section 5.1): per
// (model, device) we tabulate energy per inference, device memory, and
// inference latency, transcribed from Figure 7's reported magnitudes —
// energy spans ~45x across models on one device and ~2x across devices for
// one model; inference times reach ~40 ms; YOLOv4 uses ~500 MB.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/device.hpp"

namespace carbonedge::sim {

enum class ModelType : std::uint8_t {
  kEfficientNetB0 = 0,
  kResNet50,
  kYoloV4,
  kSciCpu,  // the CPU-based sensor-processing application ("Sci" in Fig. 10)
  kCount_,
};

inline constexpr std::size_t kModelCount = static_cast<std::size_t>(ModelType::kCount_);

inline constexpr std::array<ModelType, kModelCount> kAllModels = {
    ModelType::kEfficientNetB0, ModelType::kResNet50, ModelType::kYoloV4, ModelType::kSciCpu};

/// The three GPU inference models used by the heterogeneity experiments.
inline constexpr std::array<ModelType, 3> kGpuModels = {
    ModelType::kEfficientNetB0, ModelType::kResNet50, ModelType::kYoloV4};

struct WorkloadProfile {
  double energy_j = 0.0;      // dynamic energy per inference, joules
  double memory_mb = 0.0;     // resident device memory
  double inference_ms = 0.0;  // single-request service time
};

/// Profile of `model` on `device`. Models that cannot run on a device
/// (GPU models on the CPU and vice versa) return `supported == false`.
struct ProfileResult {
  bool supported = false;
  WorkloadProfile profile;
};

[[nodiscard]] ProfileResult profile_of(ModelType model, DeviceType device) noexcept;

/// Profile that throws std::invalid_argument when unsupported.
[[nodiscard]] WorkloadProfile require_profile(ModelType model, DeviceType device);

[[nodiscard]] std::string_view to_string(ModelType model) noexcept;

/// Fraction of a device's compute a model consumes per request/second of
/// sustained load: inference_ms/1000 normalized by the device's relative
/// compute units. Determines how many concurrent streams a device hosts.
[[nodiscard]] double compute_demand_per_rps(ModelType model, DeviceType device);

}  // namespace carbonedge::sim
