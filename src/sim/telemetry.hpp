// Telemetry service (Section 5.1 component 1/3/4): per-epoch energy,
// carbon, latency, and placement accounting, aggregated per site and in
// total. Every evaluation metric in Section 6 (carbon savings %, latency
// increase ms, energy) is computed from these records.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/histogram.hpp"

namespace carbonedge::sim {

class EdgeDataCenter;

/// One site's accounting for one epoch.
struct SiteEpochRecord {
  double energy_wh = 0.0;       // total site energy (base + dynamic)
  double carbon_g = 0.0;        // energy x zone carbon intensity
  double intensity_g_kwh = 0.0; // zone carbon intensity this epoch
  std::uint32_t apps_hosted = 0;
  double rps_hosted = 0.0;
};

/// One site's full epoch accounting from its current server states — a pure
/// function of (site, intensity), so the simulation engine computes it
/// shard-parallel across sites into disjoint EpochRecord::sites slots.
[[nodiscard]] SiteEpochRecord make_site_epoch_record(const EdgeDataCenter& site,
                                                     double intensity_g_kwh,
                                                     double epoch_hours,
                                                     bool account_base_power);

/// One hosted application's latency/load contribution for one epoch. These
/// are the engine's per-shard accumulators at their finest grain: computed
/// in parallel into per-app slots, then folded serially in a fixed order
/// (Telemetry::fold_app_samples) so floating-point sums are byte-identical
/// for every thread count.
struct AppEpochSample {
  double rtt_ms = 0.0;
  double response_ms = 0.0;
  double rps = 0.0;
};

/// Cluster-wide accounting for one epoch.
struct EpochRecord {
  std::uint32_t epoch = 0;
  std::vector<SiteEpochRecord> sites;
  double rtt_weighted_sum_ms = 0.0;  // sum over apps of rtt * rps
  double response_weighted_sum_ms = 0.0;  // network rtt + service time
  double rps_total = 0.0;
  std::uint32_t apps_placed = 0;    // new placements this epoch
  std::uint32_t apps_rejected = 0;  // arrivals with no feasible server
  // Data-movement overhead of migrations performed this epoch (charged on
  // top of the per-site operational energy/carbon).
  double migration_energy_wh = 0.0;
  double migration_carbon_g = 0.0;
  std::uint32_t migrations = 0;
  std::uint32_t failures = 0;       // servers crashed this epoch

  [[nodiscard]] double energy_wh() const noexcept;   // sites + migration
  [[nodiscard]] double carbon_g() const noexcept;    // sites + migration
  [[nodiscard]] double mean_rtt_ms() const noexcept;
  [[nodiscard]] double mean_response_ms() const noexcept;
};

/// Collected series over a simulation run.
class Telemetry {
 public:
  void record(EpochRecord record);

  /// Accumulate per-app samples into `record`'s request-weighted sums and
  /// this telemetry's response histogram, in sample index order. The single
  /// ordered reduction point for the engine's sharded per-app computation.
  void fold_app_samples(EpochRecord& record, std::span<const AppEpochSample> samples);

  [[nodiscard]] const std::vector<EpochRecord>& epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::size_t size() const noexcept { return epochs_.size(); }

  // Run-level aggregates.
  [[nodiscard]] double total_energy_wh() const noexcept;
  [[nodiscard]] double total_carbon_g() const noexcept;
  [[nodiscard]] double total_carbon_kg() const noexcept { return total_carbon_g() / 1e3; }
  [[nodiscard]] double mean_rtt_ms() const noexcept;          // request-weighted
  [[nodiscard]] double mean_response_ms() const noexcept;     // request-weighted
  [[nodiscard]] std::uint64_t total_placed() const noexcept;
  [[nodiscard]] std::uint64_t total_rejected() const noexcept;

  /// Carbon per site summed over a [first, last) epoch window.
  [[nodiscard]] std::vector<double> carbon_by_site(std::size_t first, std::size_t last) const;
  [[nodiscard]] std::vector<double> carbon_by_site() const;
  /// Hosted-app count per site averaged over a window (Fig. 13d).
  [[nodiscard]] std::vector<double> apps_by_site(std::size_t first, std::size_t last) const;

  /// Sample of per-epoch, per-site carbon intensity weighted by hosted rps —
  /// the "load distribution" CDF of Figure 11c (each unit of served load
  /// contributes its zone's intensity).
  [[nodiscard]] std::vector<double> load_intensity_sample() const;

  /// Request-weighted end-to-end response-time distribution across the run
  /// (network RTT + service time). Fed by the simulation engine.
  [[nodiscard]] const util::Histogram& response_histogram() const noexcept {
    return response_hist_;
  }
  void add_response_sample(double response_ms, double rps_weight) noexcept {
    response_hist_.add(response_ms, rps_weight);
    if (window_sink_ != nullptr) window_sink_->add(response_ms, rps_weight);
  }
  /// Secondary histogram fed the same response samples as the run-level one
  /// (the serving mode's per-window p50/p99 view; the owner resets it at
  /// window boundaries). Never read by this class and never affects the
  /// run-level accounting; nullptr detaches. The sink must outlive its
  /// attachment.
  void set_window_sink(util::Histogram* sink) noexcept { window_sink_ = sink; }
  /// Replace the response histogram wholesale (the store's deserialization
  /// path, store/codecs.hpp; not used by the simulation engine).
  void set_response_histogram(util::Histogram histogram) noexcept {
    response_hist_ = std::move(histogram);
  }
  [[nodiscard]] double response_percentile(double p) const noexcept {
    return response_hist_.quantile(p / 100.0);
  }

 private:
  std::vector<EpochRecord> epochs_;
  util::Histogram response_hist_{0.0, 500.0, 1000};
  util::Histogram* window_sink_ = nullptr;  // not owned
};

}  // namespace carbonedge::sim
