#include "carbon/service.hpp"

#include <stdexcept>

#include "carbon/trace_cache.hpp"
#include "carbon/zone.hpp"
#include "geo/site.hpp"

namespace carbonedge::carbon {

CarbonIntensityService::CarbonIntensityService()
    : forecaster_(std::make_unique<OracleForecaster>()) {}

CarbonIntensityService::CarbonIntensityService(std::unique_ptr<Forecaster> forecaster)
    : forecaster_(std::move(forecaster)) {
  if (!forecaster_) throw std::invalid_argument("forecaster must be non-null");
}

void CarbonIntensityService::add_trace(CarbonTrace trace) {
  add_trace(std::make_shared<const CarbonTrace>(std::move(trace)));
}

void CarbonIntensityService::add_trace(std::shared_ptr<const CarbonTrace> trace) {
  if (!trace) throw std::invalid_argument("trace must be non-null");
  const std::string name = trace->zone();
  traces_.insert_or_assign(name, std::move(trace));
}

std::vector<std::string> CarbonIntensityService::add_region(const geo::Region& region,
                                                            const SynthesizerParams& params) {
  const auto& catalog = ZoneCatalog::builtin();
  std::vector<std::string> names;
  names.reserve(region.cities.size());
  for (const geo::City& city : region.resolve()) {
    add_trace(TraceCache::global().get(catalog.spec_for(city), params));
    names.push_back(city.name);
  }
  return names;
}

bool CarbonIntensityService::has_zone(const std::string& zone) const noexcept {
  return traces_.contains(zone);
}

const CarbonTrace& CarbonIntensityService::trace(const std::string& zone) const {
  return *shared_trace(zone);
}

std::shared_ptr<const CarbonTrace> CarbonIntensityService::shared_trace(
    const std::string& zone) const {
  const auto it = traces_.find(zone);
  if (it == traces_.end()) throw std::out_of_range("unknown carbon zone: " + zone);
  return it->second;
}

double CarbonIntensityService::intensity(const std::string& zone, HourIndex hour) const {
  return trace(zone).at(hour);
}

double CarbonIntensityService::mean_forecast(const std::string& zone, HourIndex now,
                                             std::uint32_t horizon) const {
  return forecaster_->mean_forecast(trace(zone), now, horizon);
}

std::vector<double> CarbonIntensityService::forecast(const std::string& zone, HourIndex now,
                                                     std::uint32_t horizon) const {
  return forecaster_->forecast(trace(zone), now, horizon);
}

void CarbonIntensityService::set_forecaster(std::unique_ptr<Forecaster> forecaster) {
  if (!forecaster) throw std::invalid_argument("forecaster must be non-null");
  forecaster_ = std::move(forecaster);
}

}  // namespace carbonedge::carbon
