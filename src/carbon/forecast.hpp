// Carbon-intensity forecasting.
//
// CarbonEdge's placement objective uses the *mean forecast* intensity Ī_j
// over the upcoming placement epoch (Table 2 / Eq. 6). The prototype's
// carbon-intensity service "provides real-time and forecast carbon
// intensity" (Section 5.1); these forecasters reproduce that service.
// All forecasters are causal: they may only read trace hours < `now`
// (except the oracle, which models a perfect forecast the way the paper's
// trace replay does).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "carbon/caltime.hpp"
#include "carbon/trace.hpp"

namespace carbonedge::carbon {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Predict intensities for hours [now, now + horizon).
  [[nodiscard]] virtual std::vector<double> forecast(const CarbonTrace& trace, HourIndex now,
                                                     std::uint32_t horizon) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Mean of the forecast window — the Ī_j consumed by the optimizer.
  [[nodiscard]] double mean_forecast(const CarbonTrace& trace, HourIndex now,
                                     std::uint32_t horizon) const;
};

/// Perfect foresight (replays the trace). Matches the paper's evaluation,
/// which replays historical traces through the carbon service.
class OracleForecaster final : public Forecaster {
 public:
  [[nodiscard]] std::vector<double> forecast(const CarbonTrace& trace, HourIndex now,
                                             std::uint32_t horizon) const override;
  [[nodiscard]] std::string name() const override { return "oracle"; }
};

/// Flat persistence: every future hour equals the last observed hour.
class PersistenceForecaster final : public Forecaster {
 public:
  [[nodiscard]] std::vector<double> forecast(const CarbonTrace& trace, HourIndex now,
                                             std::uint32_t horizon) const override;
  [[nodiscard]] std::string name() const override { return "persistence"; }
};

/// Mean of the trailing `window` hours, held flat.
class MovingAverageForecaster final : public Forecaster {
 public:
  explicit MovingAverageForecaster(std::uint32_t window = 24);
  [[nodiscard]] std::vector<double> forecast(const CarbonTrace& trace, HourIndex now,
                                             std::uint32_t horizon) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::uint32_t window_;
};

/// Hour-of-day climatology: predicts each future hour as the average of the
/// same hour over the trailing `days` days — captures the diurnal solar
/// shape that persistence misses.
class DiurnalForecaster final : public Forecaster {
 public:
  explicit DiurnalForecaster(std::uint32_t days = 7);
  [[nodiscard]] std::vector<double> forecast(const CarbonTrace& trace, HourIndex now,
                                             std::uint32_t horizon) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::uint32_t days_;
};

/// Holt-Winters additive seasonal smoothing with a 24-hour season: level
/// and per-hour seasonal components are updated online over the observed
/// history, then extrapolated. Captures both the diurnal shape and slow
/// drifts (e.g. seasonal mix changes) that pure climatology misses.
class HoltWintersForecaster final : public Forecaster {
 public:
  explicit HoltWintersForecaster(double level_alpha = 0.2, double season_gamma = 0.15);
  [[nodiscard]] std::vector<double> forecast(const CarbonTrace& trace, HourIndex now,
                                             std::uint32_t horizon) const override;
  [[nodiscard]] std::string name() const override { return "holt_winters"; }

 private:
  double level_alpha_;
  double season_gamma_;
};

/// Forecast accuracy: mean absolute percentage error of `forecaster` against
/// the trace over [start, end) with the given horizon, evaluated each epoch.
[[nodiscard]] double forecast_mape(const Forecaster& forecaster, const CarbonTrace& trace,
                                   HourIndex start, HourIndex end, std::uint32_t horizon);

/// Factory for the named forecaster ("oracle", "persistence",
/// "moving_average", "diurnal"); throws std::invalid_argument otherwise.
[[nodiscard]] std::unique_ptr<Forecaster> make_forecaster(const std::string& name);

}  // namespace carbonedge::carbon
