// Calendar arithmetic over the simulated trace year.
//
// Traces are hourly series over a non-leap year (the paper uses calendar
// year 2023). Hour 0 is January 1st, 00:00 local time; the model treats
// each zone in its own local time, which is what matters for diurnal solar
// and demand shapes.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace carbonedge::carbon {

inline constexpr std::uint32_t kHoursPerDay = 24;
inline constexpr std::uint32_t kDaysPerYear = 365;
inline constexpr std::uint32_t kHoursPerYear = kHoursPerDay * kDaysPerYear;
inline constexpr std::uint32_t kMonthsPerYear = 12;

using HourIndex = std::uint32_t;  // hour offset within the trace year

[[nodiscard]] constexpr std::uint32_t hour_of_day(HourIndex h) noexcept {
  return h % kHoursPerDay;
}
[[nodiscard]] constexpr std::uint32_t day_of_year(HourIndex h) noexcept {
  return (h / kHoursPerDay) % kDaysPerYear;
}

/// Month (0-11) containing a day of year.
[[nodiscard]] std::uint32_t month_of_day(std::uint32_t day_of_year) noexcept;

/// Month (0-11) containing an hour index.
[[nodiscard]] std::uint32_t month_of_hour(HourIndex h) noexcept;

/// Days in month m (non-leap year).
[[nodiscard]] std::uint32_t days_in_month(std::uint32_t month) noexcept;

/// First hour index of month m.
[[nodiscard]] HourIndex month_start_hour(std::uint32_t month) noexcept;

/// Abbreviated month name ("Jan" ... "Dec").
[[nodiscard]] std::string_view month_name(std::uint32_t month) noexcept;

}  // namespace carbonedge::carbon
