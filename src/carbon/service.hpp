// Carbon-intensity service (Section 5.1, component 2 of the prototype):
// holds per-zone traces, answers real-time intensity queries, and provides
// the mean forecast Ī_j used by the placement optimizer (step 0 in Fig. 6).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "carbon/caltime.hpp"
#include "carbon/forecast.hpp"
#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "geo/region.hpp"

namespace carbonedge::carbon {

class CarbonIntensityService {
 public:
  /// Service with an oracle forecaster (matches the paper's trace replay).
  CarbonIntensityService();
  explicit CarbonIntensityService(std::unique_ptr<Forecaster> forecaster);

  /// Register a trace for a zone; replaces any existing trace of that name.
  void add_trace(CarbonTrace trace);
  /// Register an already-shared trace (e.g. from the TraceCache) without
  /// copying its year-long series.
  void add_trace(std::shared_ptr<const CarbonTrace> trace);

  /// Register traces for every city of a region, sharing them through the
  /// process-wide TraceCache (synthesis happens at most once per
  /// (zone, params) per process). Returns the zone names in region order.
  std::vector<std::string> add_region(const geo::Region& region,
                                      const SynthesizerParams& params = {});

  [[nodiscard]] bool has_zone(const std::string& zone) const noexcept;
  [[nodiscard]] std::size_t zone_count() const noexcept { return traces_.size(); }

  /// Real-time intensity of a zone at an hour.
  [[nodiscard]] double intensity(const std::string& zone, HourIndex hour) const;

  /// Mean forecast intensity over [now, now + horizon) — Ī_j in Table 2.
  [[nodiscard]] double mean_forecast(const std::string& zone, HourIndex now,
                                     std::uint32_t horizon) const;

  /// Full forecast series (for telemetry dashboards / tests).
  [[nodiscard]] std::vector<double> forecast(const std::string& zone, HourIndex now,
                                             std::uint32_t horizon) const;

  [[nodiscard]] const CarbonTrace& trace(const std::string& zone) const;
  /// Shared handle to a zone's trace — lets callers hold (or re-register in
  /// another service) the immutable series without copying it.
  [[nodiscard]] std::shared_ptr<const CarbonTrace> shared_trace(const std::string& zone) const;
  [[nodiscard]] const Forecaster& forecaster() const noexcept { return *forecaster_; }
  void set_forecaster(std::unique_ptr<Forecaster> forecaster);

 private:
  // Traces are immutable and shared: services over the same region point at
  // the same year-long series (via the TraceCache), so constructing or
  // copying wide-sweep services does not duplicate 8760-hour vectors.
  std::unordered_map<std::string, std::shared_ptr<const CarbonTrace>> traces_;
  std::unique_ptr<Forecaster> forecaster_;
};

}  // namespace carbonedge::carbon
