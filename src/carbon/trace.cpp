#include "carbon/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace carbonedge::carbon {

CarbonTrace::CarbonTrace(std::string zone_name, std::vector<double> intensity)
    : zone_(std::move(zone_name)), intensity_(std::move(intensity)) {
  if (intensity_.empty()) throw std::invalid_argument("carbon trace must be non-empty");
  for (const double v : intensity_) {
    if (v < 0.0) throw std::invalid_argument("carbon intensity must be non-negative");
  }
}

double CarbonTrace::at(HourIndex hour) const noexcept {
  return intensity_[hour % intensity_.size()];
}

double CarbonTrace::mean_over(HourIndex start, std::uint32_t count) const noexcept {
  if (count == 0 || intensity_.empty()) return 0.0;
  double total = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) total += at(start + i);
  return total / static_cast<double>(count);
}

double CarbonTrace::monthly_mean(std::uint32_t month) const noexcept {
  const HourIndex start = month_start_hour(month);
  return mean_over(start, days_in_month(month) * kHoursPerDay);
}

double CarbonTrace::yearly_mean() const noexcept {
  return mean_over(0, static_cast<std::uint32_t>(intensity_.size()));
}

double CarbonTrace::yearly_min() const noexcept {
  return intensity_.empty() ? 0.0 : *std::min_element(intensity_.begin(), intensity_.end());
}

double CarbonTrace::yearly_max() const noexcept {
  return intensity_.empty() ? 0.0 : *std::max_element(intensity_.begin(), intensity_.end());
}

void CarbonTrace::set_mixes(std::vector<GenerationMix> mixes) {
  if (mixes.size() != intensity_.size()) {
    throw std::invalid_argument("mix series length must match intensity series");
  }
  mixes_ = std::move(mixes);
}

GenerationMix CarbonTrace::average_mix() const noexcept {
  GenerationMix avg;
  if (mixes_.empty()) return avg;
  for (const GenerationMix& m : mixes_) {
    for (const EnergySource s : kAllSources) avg.add(s, m.at(s));
  }
  avg.normalize();
  return avg;
}

}  // namespace carbonedge::carbon
