#include "carbon/synthesizer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/random.hpp"

namespace carbonedge::carbon {
namespace {

constexpr double kPi = std::numbers::pi;

double clamp01(double x) noexcept { return std::clamp(x, 0.0, 1.0); }

/// Solar declination (degrees) for a day of year — standard approximation.
double declination_deg(std::uint32_t day_of_year) noexcept {
  return 23.44 * std::sin(2.0 * kPi * (284.0 + static_cast<double>(day_of_year) + 1.0) / 365.0);
}

/// Day length in hours at a latitude for a day of year.
double day_length_hours(double latitude_deg, std::uint32_t day) noexcept {
  const double lat = latitude_deg * kPi / 180.0;
  const double dec = declination_deg(day) * kPi / 180.0;
  const double cos_ha = -std::tan(lat) * std::tan(dec);
  if (cos_ha <= -1.0) return 24.0;  // midnight sun
  if (cos_ha >= 1.0) return 0.0;    // polar night
  return 2.0 * std::acos(cos_ha) * 12.0 / kPi;
}

/// Seasonal wind factor: windier winters in both hemispheres we model.
double wind_season(std::uint32_t day) noexcept {
  return 1.0 + 0.18 * std::cos(2.0 * kPi * (static_cast<double>(day) - 15.0) / 365.0);
}

/// Seasonal hydro factor: spring-melt bump.
double hydro_season(std::uint32_t day) noexcept {
  return 1.0 + 0.12 * std::sin(2.0 * kPi * (static_cast<double>(day) - 60.0) / 365.0);
}

}  // namespace

double TraceSynthesizer::clear_sky(double latitude_deg, std::uint32_t hour,
                                   std::uint32_t day) noexcept {
  const double len = day_length_hours(latitude_deg, day);
  if (len <= 0.0) return 0.0;
  const double sunrise = 12.0 - len / 2.0;
  const double sunset = 12.0 + len / 2.0;
  const double h = static_cast<double>(hour) + 0.5;  // mid-hour
  if (h <= sunrise || h >= sunset) return 0.0;
  // Half-sine across the daylight window; peak amplitude scales with the
  // noon solar elevation (shorter winter days also have a lower sun). The
  // super-linear exponent reflects that winter sun is both shorter and
  // lower, compounding into a strongly seasonal yield.
  const double amplitude = std::pow(std::clamp(len / 14.0, 0.0, 1.0), 1.8);
  return amplitude * std::sin(kPi * (h - sunrise) / len);
}

double TraceSynthesizer::demand_shape(const ZoneSpec& zone, std::uint32_t hour,
                                      std::uint32_t day) noexcept {
  // Diurnal: trough ~04:00, morning ramp, evening peak ~19:00.
  const double h = static_cast<double>(hour);
  const double diurnal =
      0.5 - 0.5 * std::cos(2.0 * kPi * (h - 4.0) / 24.0) +
      0.22 * std::exp(-0.5 * std::pow((h - 19.0) / 2.5, 2.0));
  const double diurnal_norm = clamp01(diurnal / 1.2);

  // Seasonal: heating (winter peak) at high latitude, cooling (summer peak)
  // at low latitude; blend across the 33-45 degree band.
  const double d = static_cast<double>(day);
  const double winter = std::cos(2.0 * kPi * (d - 15.0) / 365.0);
  const double summer = std::cos(2.0 * kPi * (d - 197.0) / 365.0);
  const double abs_lat = std::abs(zone.latitude_deg);
  const double blend = clamp01((abs_lat - 33.0) / 12.0);  // 0 = hot, 1 = cold climate
  const double seasonal = 1.0 + 0.10 * (blend * winter + (1.0 - blend) * summer);

  const double base = zone.demand_base;
  const double peak = zone.demand_peak;
  return (base + (peak - base) * diurnal_norm) * seasonal;
}

CarbonTrace TraceSynthesizer::synthesize(const ZoneSpec& zone) const {
  util::Rng rng(util::mix64(params_.seed ^ util::fnv1a(zone.name)));

  const GenerationMix& cap = zone.capacity;
  std::vector<double> intensity;
  std::vector<GenerationMix> mixes;
  intensity.reserve(params_.hours);
  mixes.reserve(params_.hours);

  // AR(1) states, started at their stationary means.
  double cloud = 0.75;  // transmission factor in [0.35, 1]
  double wind = 0.38;   // capacity factor in [0.05, 0.95]

  for (std::uint32_t t = 0; t < params_.hours; ++t) {
    const std::uint32_t hour = hour_of_day(t);
    const std::uint32_t day = day_of_year(t);

    cloud = params_.cloud_persistence * cloud +
            (1.0 - params_.cloud_persistence) * 0.75 + params_.cloud_noise * rng.normal();
    cloud = std::clamp(cloud, 0.35, 1.0);
    const double wind_mean = 0.38 * wind_season(day);
    wind = params_.wind_persistence * wind +
           (1.0 - params_.wind_persistence) * wind_mean + params_.wind_noise * rng.normal();
    wind = std::clamp(wind, 0.05, 0.95);

    double demand = demand_shape(zone, hour, day) * (1.0 + params_.demand_noise * rng.normal());
    demand = std::max(demand, 0.05);

    // Must-run availability.
    const double nuclear =
        cap.at(EnergySource::kNuclear) * params_.nuclear_capacity_factor;
    const double hydro =
        cap.at(EnergySource::kHydro) * params_.hydro_capacity_factor * hydro_season(day);
    const double solar =
        cap.at(EnergySource::kSolar) * clear_sky(zone.latitude_deg, hour, day) * cloud;
    const double wind_gen = cap.at(EnergySource::kWind) * wind;

    GenerationMix gen;
    double remaining = demand;
    // Must-run in curtailment-priority order: nuclear and hydro are the
    // least flexible, variable renewables are curtailed last-in.
    for (const auto& [source, avail] :
         {std::pair{EnergySource::kNuclear, nuclear}, {EnergySource::kHydro, hydro},
          {EnergySource::kWind, wind_gen}, {EnergySource::kSolar, solar}}) {
      const double used = std::min(avail, remaining);
      gen.set(source, used);
      remaining -= used;
      if (remaining <= 0.0) {
        remaining = 0.0;
      }
    }
    // Dispatchable thermal, merit order coal -> gas -> biomass -> oil.
    for (const EnergySource source :
         {EnergySource::kCoal, EnergySource::kGas, EnergySource::kBiomass,
          EnergySource::kOil}) {
      if (remaining <= 0.0) break;
      const double used = std::min(cap.at(source), remaining);
      gen.set(source, used);
      remaining -= used;
    }

    double served = gen.total();
    double weighted = 0.0;
    for (const EnergySource s : kAllSources) {
      weighted += gen.at(s) * carbon_intensity_g_per_kwh(s);
    }
    if (remaining > 1e-12) {  // shortfall met by imports
      weighted += remaining * kImportIntensity;
      served += remaining;
    }
    double ci = served > 0.0 ? weighted / served : 0.0;
    // Interconnection blending: a slice of consumption is imported.
    const double f = std::clamp(params_.grid_import_fraction, 0.0, 1.0);
    ci = (1.0 - f) * ci + f * kImportIntensity;
    intensity.push_back(ci);
    gen.normalize();
    mixes.push_back(gen);
  }

  CarbonTrace trace(zone.name, std::move(intensity));
  trace.set_mixes(std::move(mixes));
  return trace;
}

std::vector<CarbonTrace> TraceSynthesizer::synthesize(
    const std::vector<ZoneSpec>& zones) const {
  std::vector<CarbonTrace> traces;
  traces.reserve(zones.size());
  for (const ZoneSpec& zone : zones) traces.push_back(synthesize(zone));
  return traces;
}

}  // namespace carbonedge::carbon
