// Carbon trace import/export in an Electricity-Maps-style CSV schema:
//
//   zone,hour,intensity_g_kwh[,hydro,solar,wind,nuclear,biomass,gas,oil,coal]
//
// The prototype's carbon-intensity service "replays historical traces from
// Electricity Maps" (Section 5.1); this module lets users replay their own
// licensed exports through the same CarbonIntensityService, and lets every
// bench dump the synthetic traces it ran against for archival.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "carbon/trace.hpp"

namespace carbonedge::carbon {

/// Serialize one trace as CSV rows (with mix columns when present).
void write_trace_csv(std::ostream& out, const CarbonTrace& trace);

/// Serialize several traces into one document (rows grouped by zone).
void write_traces_csv(std::ostream& out, const std::vector<CarbonTrace>& traces);

/// Parse traces from CSV text. Hours must be contiguous from 0 per zone.
/// Throws std::runtime_error on schema violations.
[[nodiscard]] std::vector<CarbonTrace> read_traces_csv(const std::string& text);

/// File conveniences.
void save_traces(const std::filesystem::path& path, const std::vector<CarbonTrace>& traces);
[[nodiscard]] std::vector<CarbonTrace> load_traces(const std::filesystem::path& path);

}  // namespace carbonedge::carbon
