#include "carbon/mix.hpp"

namespace carbonedge::carbon {

void GenerationMix::normalize() noexcept {
  const double sum = total();
  if (sum <= 0.0) return;
  for (double& v : shares_) v /= sum;
}

double GenerationMix::carbon_intensity() const noexcept {
  const double sum = total();
  if (sum <= 0.0) return 0.0;
  double weighted = 0.0;
  for (const EnergySource s : kAllSources) {
    weighted += at(s) * carbon_intensity_g_per_kwh(s);
  }
  return weighted / sum;
}

double GenerationMix::low_carbon_share() const noexcept {
  const double sum = total();
  if (sum <= 0.0) return 0.0;
  const double low = at(EnergySource::kHydro) + at(EnergySource::kSolar) +
                     at(EnergySource::kWind) + at(EnergySource::kNuclear);
  return low / sum;
}

GenerationMix make_mix(std::initializer_list<std::pair<EnergySource, double>> shares) {
  GenerationMix mix;
  for (const auto& [source, share] : shares) mix.add(source, share);
  return mix;
}

}  // namespace carbonedge::carbon
