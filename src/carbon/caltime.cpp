#include "carbon/caltime.hpp"

namespace carbonedge::carbon {
namespace {

constexpr std::array<std::uint32_t, kMonthsPerYear> kDaysInMonth = {
    31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

constexpr std::array<std::string_view, kMonthsPerYear> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

}  // namespace

std::uint32_t month_of_day(std::uint32_t day) noexcept {
  day %= kDaysPerYear;
  std::uint32_t month = 0;
  while (month < kMonthsPerYear - 1 && day >= kDaysInMonth[month]) {
    day -= kDaysInMonth[month];
    ++month;
  }
  return month;
}

std::uint32_t month_of_hour(HourIndex h) noexcept { return month_of_day(day_of_year(h)); }

std::uint32_t days_in_month(std::uint32_t month) noexcept {
  return kDaysInMonth[month % kMonthsPerYear];
}

HourIndex month_start_hour(std::uint32_t month) noexcept {
  HourIndex hour = 0;
  for (std::uint32_t m = 0; m < month % kMonthsPerYear; ++m) {
    hour += kDaysInMonth[m] * kHoursPerDay;
  }
  return hour;
}

std::string_view month_name(std::uint32_t month) noexcept {
  return kMonthNames[month % kMonthsPerYear];
}

}  // namespace carbonedge::carbon
