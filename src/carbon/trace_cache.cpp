#include "carbon/trace_cache.hpp"

#include <bit>
#include <functional>

namespace carbonedge::carbon {

namespace {

void hash_mix(std::size_t& h, std::uint64_t v) noexcept {
  h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

void hash_mix(std::size_t& h, double v) noexcept {
  // Normalize -0.0 so equal params always hash equally.
  hash_mix(h, std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
}

}  // namespace

std::size_t TraceCache::KeyHash::operator()(const Key& key) const noexcept {
  std::size_t h = std::hash<std::string>{}(key.zone);
  const SynthesizerParams& p = key.params;
  hash_mix(h, p.seed);
  hash_mix(h, static_cast<std::uint64_t>(p.hours));
  hash_mix(h, p.cloud_persistence);
  hash_mix(h, p.cloud_noise);
  hash_mix(h, p.wind_persistence);
  hash_mix(h, p.wind_noise);
  hash_mix(h, p.demand_noise);
  hash_mix(h, p.nuclear_capacity_factor);
  hash_mix(h, p.hydro_capacity_factor);
  hash_mix(h, p.grid_import_fraction);
  return h;
}

TraceCache& TraceCache::global() {
  static TraceCache cache;
  return cache;
}

std::shared_ptr<const CarbonTrace> TraceCache::get(const ZoneSpec& zone,
                                                   const SynthesizerParams& params) {
  Key key{zone.name, params};
  // The lock spans the synthesis so a key is synthesized exactly once even
  // under concurrent first requests. Synthesis is ~ms per zone and sweeps
  // warm the cache before fan-out, so the serialization is immaterial.
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++syntheses_;
  auto trace =
      std::make_shared<const CarbonTrace>(TraceSynthesizer(params).synthesize(zone));
  entries_.emplace(std::move(key), trace);
  return trace;
}

std::size_t TraceCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t TraceCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t TraceCache::syntheses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return syntheses_;
}

void TraceCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  syntheses_ = 0;
}

}  // namespace carbonedge::carbon
