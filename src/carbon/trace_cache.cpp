#include "carbon/trace_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/fs.hpp"
#include "util/hash.hpp"

namespace carbonedge::carbon {

namespace {

// Process-wide mirrors of the per-instance counters (dual-write): the
// instance accessors keep their exact semantics for tests and the --store
// stats line, while `carbonedge_cli metrics` enumerates the same numbers
// through the registry. All four are pure functions of the request stream,
// hence deterministic view.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& disk_hits;
  obs::Counter& syntheses;
  obs::Counter& lock_failures;
};

CacheMetrics& cache_metrics() {
  obs::Registry& registry = obs::Registry::global();
  static CacheMetrics metrics{
      registry.counter("carbon.trace_cache.hits", "trace lookups answered from memory (L1)",
                       obs::View::kDeterministic),
      registry.counter("carbon.trace_cache.disk_hits",
                       "trace lookups answered from the artifact store (L2)",
                       obs::View::kDeterministic),
      registry.counter("carbon.trace_cache.syntheses", "synthesizer runs (true misses)",
                       obs::View::kDeterministic),
      registry.counter("carbon.trace_cache.lock_failures",
                       "cross-process entry locks that could not be acquired",
                       obs::View::kDeterministic)};
  return metrics;
}

obs::Phase& synthesize_phase() {
  static obs::Phase phase("carbon.synthesize");
  return phase;
}

}  // namespace

std::string TraceCache::key_of(const ZoneSpec& zone, const SynthesizerParams& params) {
  util::Fingerprint fp;
  fp.mix("carbonedge/trace/v1");  // schema salt: invalidates keys if the field list changes
  fp.mix(zone.name);
  fp.mix(static_cast<std::uint64_t>(zone.city));
  fp.mix(zone.latitude_deg);
  for (const double share : zone.capacity.shares()) fp.mix(share);
  fp.mix(zone.demand_peak);
  fp.mix(zone.demand_base);
  fp.mix(params.seed);
  fp.mix(params.hours);
  fp.mix(params.cloud_persistence);
  fp.mix(params.cloud_noise);
  fp.mix(params.wind_persistence);
  fp.mix(params.wind_noise);
  fp.mix(params.demand_noise);
  fp.mix(params.nuclear_capacity_factor);
  fp.mix(params.hydro_capacity_factor);
  fp.mix(params.grid_import_fraction);
  return fp.digest().hex();
}

// TraceCache::global() is defined in src/store/trace_tier.cpp: its first-use
// attach of the CARBONEDGE_STORE_DIR store is store-layer policy, and
// defining it there keeps this translation unit free of store includes.

void TraceCache::set_store(std::shared_ptr<TraceStore> store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = std::move(store);
}

std::shared_ptr<TraceStore> TraceCache::store() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

std::shared_ptr<const CarbonTrace> TraceCache::get(const ZoneSpec& zone,
                                                   const SynthesizerParams& params) {
  const std::string key = key_of(zone, params);
  // The lock spans the load/synthesis so a key is materialized exactly once
  // per process even under concurrent first requests. Synthesis is ~ms per
  // zone and sweeps warm the cache before fan-out, so the serialization is
  // immaterial.
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    cache_metrics().hits.add();
    return it->second;
  }

  // Decode failures (schema drift, tampering) surface from the adapter as a
  // plain nullptr miss, so a corrupt entry is re-synthesized and overwritten.
  std::shared_ptr<const CarbonTrace> trace;
  if (store_ != nullptr) {
    trace = store_->load(key);
    if (trace != nullptr) {
      ++disk_hits_;
      cache_metrics().disk_hits.add();
    } else {
      // Cross-process synthesize-once: take the entry lock, re-check (the
      // lock holder before us may have published), then compute + publish.
      // An unacquirable lock (unwritable locks/ dir) degrades to
      // at-least-once synthesis — counted, never fatal.
      const util::FileLock entry_lock = store_->lock_entry(key);
      if (!entry_lock.held()) {
        ++lock_failures_;
        cache_metrics().lock_failures.add();
      }
      trace = store_->load(key);
      if (trace != nullptr) {
        ++disk_hits_;
        cache_metrics().disk_hits.add();
      } else {
        {
          const obs::Span span(synthesize_phase());
          trace =
              std::make_shared<const CarbonTrace>(TraceSynthesizer(params).synthesize(zone));
        }
        ++syntheses_;
        cache_metrics().syntheses.add();
        // The store is a cache tier: a publish failure (disk full, lost
        // permissions) degrades this key to memory-only — the adapter
        // swallows it, it must not abort the computation that succeeded.
        store_->save(key, *trace);
      }
    }
  } else {
    {
      const obs::Span span(synthesize_phase());
      trace = std::make_shared<const CarbonTrace>(TraceSynthesizer(params).synthesize(zone));
    }
    ++syntheses_;
    cache_metrics().syntheses.add();
  }
  entries_.emplace(key, trace);
  return trace;
}

std::size_t TraceCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t TraceCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t TraceCache::disk_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_hits_;
}

std::uint64_t TraceCache::syntheses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return syntheses_;
}

std::uint64_t TraceCache::lock_failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lock_failures_;
}

void TraceCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  disk_hits_ = 0;
  syntheses_ = 0;
  lock_failures_ = 0;
}

}  // namespace carbonedge::carbon
