#include "carbon/trace_cache.hpp"

#include "store/artifact_store.hpp"
#include "store/codecs.hpp"
#include "util/hash.hpp"

namespace carbonedge::carbon {

std::string TraceCache::key_of(const ZoneSpec& zone, const SynthesizerParams& params) {
  util::Fingerprint fp;
  fp.mix("carbonedge/trace/v1");  // schema salt: invalidates keys if the field list changes
  fp.mix(zone.name);
  fp.mix(static_cast<std::uint64_t>(zone.city));
  fp.mix(zone.latitude_deg);
  for (const double share : zone.capacity.shares()) fp.mix(share);
  fp.mix(zone.demand_peak);
  fp.mix(zone.demand_base);
  fp.mix(params.seed);
  fp.mix(params.hours);
  fp.mix(params.cloud_persistence);
  fp.mix(params.cloud_noise);
  fp.mix(params.wind_persistence);
  fp.mix(params.wind_noise);
  fp.mix(params.demand_noise);
  fp.mix(params.nuclear_capacity_factor);
  fp.mix(params.hydro_capacity_factor);
  fp.mix(params.grid_import_fraction);
  return fp.digest().hex();
}

TraceCache& TraceCache::global() {
  static TraceCache* cache = [] {
    auto* instance = new TraceCache();
    instance->set_store(store::ArtifactStore::open_from_env());
    return instance;
  }();
  return *cache;
}

void TraceCache::set_store(std::shared_ptr<store::ArtifactStore> store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = std::move(store);
}

std::shared_ptr<store::ArtifactStore> TraceCache::store() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_;
}

std::shared_ptr<const CarbonTrace> TraceCache::get(const ZoneSpec& zone,
                                                   const SynthesizerParams& params) {
  const std::string key = key_of(zone, params);
  // The lock spans the load/synthesis so a key is materialized exactly once
  // per process even under concurrent first requests. Synthesis is ~ms per
  // zone and sweeps warm the cache before fan-out, so the serialization is
  // immaterial.
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }

  // A payload that passes the container checksum but fails to decode
  // (schema drift, tampering) is treated like a corrupt entry: miss, then
  // re-synthesize and overwrite.
  const auto try_decode = [](const std::string& payload) -> std::shared_ptr<const CarbonTrace> {
    try {
      return std::make_shared<const CarbonTrace>(store::decode_trace(payload));
    } catch (const std::exception&) {
      return nullptr;
    }
  };

  std::shared_ptr<const CarbonTrace> trace;
  if (store_ != nullptr) {
    if (auto payload = store_->load(store::ArtifactKind::kCarbonTrace, key)) {
      trace = try_decode(*payload);
    }
    if (trace != nullptr) {
      ++disk_hits_;
    } else {
      // Cross-process synthesize-once: take the entry lock, re-check (the
      // lock holder before us may have published), then compute + publish.
      // An unacquirable lock (unwritable locks/ dir) degrades to
      // at-least-once synthesis — counted, never fatal.
      const util::FileLock entry_lock =
          store_->lock_entry(store::ArtifactKind::kCarbonTrace, key);
      if (!entry_lock.held()) ++lock_failures_;
      if (auto raced = store_->load(store::ArtifactKind::kCarbonTrace, key)) {
        trace = try_decode(*raced);
      }
      if (trace != nullptr) {
        ++disk_hits_;
      } else {
        trace = std::make_shared<const CarbonTrace>(TraceSynthesizer(params).synthesize(zone));
        ++syntheses_;
        try {
          store_->save(store::ArtifactKind::kCarbonTrace, key, store::encode_trace(*trace));
        } catch (const std::exception&) {
          // The store is a cache tier: a publish failure (disk full, lost
          // permissions) degrades this key to memory-only, it must not
          // abort the computation that already succeeded.
        }
      }
    }
  } else {
    trace = std::make_shared<const CarbonTrace>(TraceSynthesizer(params).synthesize(zone));
    ++syntheses_;
  }
  entries_.emplace(key, trace);
  return trace;
}

std::size_t TraceCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t TraceCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t TraceCache::disk_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_hits_;
}

std::uint64_t TraceCache::syntheses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return syntheses_;
}

std::uint64_t TraceCache::lock_failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lock_failures_;
}

void TraceCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  disk_hits_ = 0;
  syntheses_ = 0;
  lock_failures_ = 0;
}

}  // namespace carbonedge::carbon
