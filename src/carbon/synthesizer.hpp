// Grid-dispatch trace synthesizer.
//
// Substitutes for the proprietary Electricity Maps dataset (see DESIGN.md).
// For each zone we simulate one year of hourly grid operation:
//
//   demand(t)   diurnal shape (overnight trough, morning ramp, evening
//               peak) x seasonal shape (winter heating at high latitudes,
//               summer cooling at low) x small AR(1) noise
//   solar(t)    capacity x clear-sky irradiance (day-length follows the
//               zone's latitude and the season) x cloud AR(1)
//   wind(t)     capacity x AR(1) around a seasonal mean (windier winters)
//   hydro(t)    run-of-river, mildly seasonal (spring melt)
//   nuclear(t)  flat baseload at a high capacity factor
//
// Must-run generation (nuclear + renewables) is taken first (curtailed if it
// exceeds demand); the residual is served by dispatchable thermal plants in
// merit order coal -> gas -> biomass -> oil; any remaining shortfall is
// imported at kImportIntensity. The hourly carbon intensity is the
// generation-weighted average of source intensities — exactly the quantity
// the paper's Figure 1b/2/3/4 traces report.
#pragma once

#include <cstdint>
#include <vector>

#include "carbon/caltime.hpp"
#include "carbon/trace.hpp"
#include "carbon/zone.hpp"

namespace carbonedge::carbon {

struct SynthesizerParams {
  std::uint64_t seed = 0xCA4B0Full;  // global seed; per-zone streams derive from it
  std::uint32_t hours = kHoursPerYear;
  double cloud_persistence = 0.92;   // AR(1) coefficient for cloud cover
  double cloud_noise = 0.10;
  double wind_persistence = 0.94;
  double wind_noise = 0.08;
  double demand_noise = 0.015;
  double nuclear_capacity_factor = 0.93;
  double hydro_capacity_factor = 0.80;
  /// Fraction of consumption served by imports from unmodeled neighbors at
  /// kImportIntensity. Raises the intensity floor of very clean zones the
  /// way real interconnection does (keeps e.g. nuclear France near ~50
  /// g/kWh rather than the plant-level ~15).
  double grid_import_fraction = 0.06;

  /// Memberwise equality: two parameter sets synthesize identical traces
  /// exactly when they compare equal (the TraceCache memoization key).
  [[nodiscard]] bool operator==(const SynthesizerParams&) const noexcept = default;
};

/// Deterministic synthesizer: the same (zone, params) always yields the
/// same trace, independent of generation order across zones.
class TraceSynthesizer {
 public:
  explicit TraceSynthesizer(SynthesizerParams params = {}) : params_(params) {}

  /// Synthesize the hourly trace for one zone.
  [[nodiscard]] CarbonTrace synthesize(const ZoneSpec& zone) const;

  /// Synthesize traces for several zones (order preserved).
  [[nodiscard]] std::vector<CarbonTrace> synthesize(const std::vector<ZoneSpec>& zones) const;

  [[nodiscard]] const SynthesizerParams& params() const noexcept { return params_; }

  /// Clear-sky irradiance factor in [0,1] for a latitude/hour/day — exposed
  /// for testing the astronomical model in isolation.
  [[nodiscard]] static double clear_sky(double latitude_deg, std::uint32_t hour_of_day,
                                        std::uint32_t day_of_year) noexcept;

  /// Normalized demand (fraction of installed capacity) before noise.
  [[nodiscard]] static double demand_shape(const ZoneSpec& zone, std::uint32_t hour_of_day,
                                           std::uint32_t day_of_year) noexcept;

 private:
  SynthesizerParams params_;
};

}  // namespace carbonedge::carbon
