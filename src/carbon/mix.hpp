// Generation mixes: per-source shares of a zone's installed capacity or of
// its realized hourly generation.
#pragma once

#include <array>

#include "carbon/source.hpp"

namespace carbonedge::carbon {

/// Non-negative per-source weights. When normalized they sum to 1 and can be
/// read either as capacity shares (zone specification) or generation shares
/// (dispatch output, Figure 1a).
class GenerationMix {
 public:
  constexpr GenerationMix() = default;

  [[nodiscard]] constexpr double at(EnergySource s) const noexcept {
    return shares_[index_of(s)];
  }
  constexpr void set(EnergySource s, double value) noexcept {
    shares_[index_of(s)] = value < 0.0 ? 0.0 : value;
  }
  constexpr void add(EnergySource s, double value) noexcept {
    set(s, at(s) + value);
  }

  [[nodiscard]] constexpr double total() const noexcept {
    double sum = 0.0;
    for (const double v : shares_) sum += v;
    return sum;
  }

  /// Scale so shares sum to 1 (no-op on an all-zero mix).
  void normalize() noexcept;

  /// Generation-weighted average carbon intensity, g CO2-eq / kWh.
  /// Zero for an all-zero mix.
  [[nodiscard]] double carbon_intensity() const noexcept;

  /// Fraction of the mix from low-carbon sources (hydro/solar/wind/nuclear).
  [[nodiscard]] double low_carbon_share() const noexcept;

  [[nodiscard]] constexpr const std::array<double, kSourceCount>& shares() const noexcept {
    return shares_;
  }

  friend constexpr bool operator==(const GenerationMix&, const GenerationMix&) = default;

 private:
  std::array<double, kSourceCount> shares_{};
};

/// Build a mix from (source, share) pairs; unmentioned sources get zero.
[[nodiscard]] GenerationMix make_mix(
    std::initializer_list<std::pair<EnergySource, double>> shares);

}  // namespace carbonedge::carbon
