#include "carbon/zone.hpp"

#include <string_view>
#include <utility>

#include "util/random.hpp"

namespace carbonedge::carbon {
namespace {

using S = EnergySource;

struct MixRow {
  std::string_view key;  // city name (overrides) or ISO country code (defaults)
  std::initializer_list<std::pair<S, double>> shares;
};

// -------- Hand-calibrated zones named in the paper --------
//
// Calibration targets (from the paper):
//  * Florida (Fig 2a, Fig 8): ~2.5x snapshot spread, Miami greenest.
//  * West US (Fig 2b, Fig 3a, Fig 4): ~2.7x yearly spread, Kingman dirtiest
//    with strong solar seasonality, San Diego cleanest.
//  * Italy (Fig 2c): ~2.2x spread.
//  * Central EU (Fig 2d, Fig 3b): ~10.8x yearly spread, hydro-heavy Bern /
//    nuclear Lyon vs fossil Munich.
//  * Macro (Fig 1): Ontario nuclear+hydro, Poland coal.
constexpr MixRow kCityOverrides[] = {
    // Florida
    {"Miami", {{S::kNuclear, 0.34}, {S::kGas, 0.42}, {S::kSolar, 0.22}, {S::kOil, 0.02}}},
    {"Orlando", {{S::kGas, 0.72}, {S::kSolar, 0.16}, {S::kCoal, 0.08}, {S::kBiomass, 0.04}}},
    {"Tampa", {{S::kGas, 0.60}, {S::kCoal, 0.28}, {S::kSolar, 0.12}}},
    {"Tallahassee", {{S::kGas, 0.86}, {S::kSolar, 0.12}, {S::kOil, 0.02}}},
    {"Jacksonville", {{S::kCoal, 0.42}, {S::kGas, 0.48}, {S::kSolar, 0.08}, {S::kOil, 0.02}}},
    // West US
    {"San Diego", {{S::kGas, 0.34}, {S::kSolar, 0.30}, {S::kNuclear, 0.18}, {S::kWind, 0.18}}},
    {"Phoenix", {{S::kNuclear, 0.34}, {S::kGas, 0.36}, {S::kSolar, 0.22}, {S::kCoal, 0.08}}},
    {"Las Vegas", {{S::kGas, 0.58}, {S::kSolar, 0.30}, {S::kHydro, 0.12}}},
    {"Flagstaff", {{S::kCoal, 0.36}, {S::kGas, 0.30}, {S::kSolar, 0.26}, {S::kWind, 0.08}}},
    {"Kingman", {{S::kCoal, 0.50}, {S::kGas, 0.18}, {S::kSolar, 0.32}}},
    // Italy
    {"Milan", {{S::kGas, 0.66}, {S::kHydro, 0.16}, {S::kSolar, 0.12}, {S::kOil, 0.06}}},
    {"Rome", {{S::kGas, 0.58}, {S::kSolar, 0.20}, {S::kWind, 0.10}, {S::kHydro, 0.12}}},
    {"Cagliari", {{S::kCoal, 0.46}, {S::kGas, 0.28}, {S::kWind, 0.16}, {S::kSolar, 0.10}}},
    {"Palermo", {{S::kGas, 0.64}, {S::kOil, 0.12}, {S::kWind, 0.14}, {S::kSolar, 0.10}}},
    {"Arezzo", {{S::kHydro, 0.24}, {S::kGas, 0.44}, {S::kSolar, 0.16}, {S::kBiomass, 0.16}}},
    // Central EU
    {"Bern", {{S::kHydro, 0.56}, {S::kNuclear, 0.32}, {S::kSolar, 0.08}, {S::kGas, 0.04}}},
    {"Lyon", {{S::kNuclear, 0.72}, {S::kHydro, 0.14}, {S::kGas, 0.08}, {S::kWind, 0.06}}},
    {"Munich", {{S::kCoal, 0.26}, {S::kGas, 0.34}, {S::kSolar, 0.20}, {S::kWind, 0.14},
                {S::kBiomass, 0.06}}},
    {"Graz", {{S::kHydro, 0.48}, {S::kGas, 0.34}, {S::kWind, 0.10}, {S::kSolar, 0.08}}},
    // Macro comparison (Figure 1)
    {"Toronto", {{S::kNuclear, 0.56}, {S::kHydro, 0.26}, {S::kGas, 0.13}, {S::kWind, 0.05}}},
    {"Los Angeles",
     {{S::kGas, 0.40}, {S::kSolar, 0.28}, {S::kHydro, 0.10}, {S::kWind, 0.12},
      {S::kNuclear, 0.10}}},
    {"New York",
     {{S::kGas, 0.46}, {S::kHydro, 0.18}, {S::kNuclear, 0.24}, {S::kWind, 0.06},
      {S::kSolar, 0.06}}},
    {"Warsaw", {{S::kCoal, 0.70}, {S::kGas, 0.14}, {S::kWind, 0.11}, {S::kSolar, 0.05}}},
    // Section 6.3.3 seasonality call-outs
    {"Oslo", {{S::kHydro, 0.92}, {S::kWind, 0.06}, {S::kGas, 0.02}}},
    {"Paris", {{S::kNuclear, 0.68}, {S::kGas, 0.10}, {S::kHydro, 0.10}, {S::kWind, 0.08},
               {S::kSolar, 0.04}}},
    {"Vienna", {{S::kHydro, 0.40}, {S::kGas, 0.36}, {S::kWind, 0.16}, {S::kSolar, 0.08}}},
    {"Zagreb", {{S::kHydro, 0.42}, {S::kGas, 0.34}, {S::kOil, 0.08}, {S::kWind, 0.16}}},
    // US regional texture referenced implicitly by the CDN analysis
    {"Salt Lake City", {{S::kCoal, 0.56}, {S::kGas, 0.28}, {S::kSolar, 0.12}, {S::kWind, 0.04}}},
    {"Seattle", {{S::kHydro, 0.68}, {S::kGas, 0.16}, {S::kWind, 0.12}, {S::kNuclear, 0.04}}},
    {"Portland", {{S::kHydro, 0.58}, {S::kGas, 0.24}, {S::kWind, 0.18}}},
    {"Spokane", {{S::kHydro, 0.72}, {S::kGas, 0.16}, {S::kWind, 0.12}}},
    {"Boise", {{S::kHydro, 0.48}, {S::kGas, 0.30}, {S::kWind, 0.14}, {S::kSolar, 0.08}}},
    {"Denver", {{S::kCoal, 0.38}, {S::kGas, 0.28}, {S::kWind, 0.24}, {S::kSolar, 0.10}}},
    {"Cheyenne", {{S::kCoal, 0.48}, {S::kWind, 0.38}, {S::kGas, 0.14}}},
    {"Billings", {{S::kCoal, 0.44}, {S::kHydro, 0.34}, {S::kWind, 0.16}, {S::kGas, 0.06}}},
    {"Buffalo", {{S::kHydro, 0.55}, {S::kGas, 0.30}, {S::kWind, 0.10}, {S::kNuclear, 0.05}}},
    {"Chicago", {{S::kNuclear, 0.48}, {S::kGas, 0.24}, {S::kCoal, 0.16}, {S::kWind, 0.12}}},
    {"Vancouver", {{S::kHydro, 0.90}, {S::kGas, 0.08}, {S::kWind, 0.02}}},
    {"Montreal", {{S::kHydro, 0.94}, {S::kWind, 0.05}, {S::kGas, 0.01}}},
};

// -------- Per-country archetypes for non-override cities --------
constexpr MixRow kCountryDefaults[] = {
    {"US", {{S::kGas, 0.42}, {S::kCoal, 0.18}, {S::kNuclear, 0.18}, {S::kWind, 0.10},
            {S::kSolar, 0.08}, {S::kHydro, 0.04}}},
    {"CA", {{S::kHydro, 0.60}, {S::kNuclear, 0.14}, {S::kGas, 0.18}, {S::kWind, 0.08}}},
    {"NO", {{S::kHydro, 0.90}, {S::kWind, 0.08}, {S::kGas, 0.02}}},
    {"SE", {{S::kHydro, 0.44}, {S::kNuclear, 0.30}, {S::kWind, 0.20}, {S::kBiomass, 0.06}}},
    {"FI", {{S::kNuclear, 0.38}, {S::kHydro, 0.22}, {S::kWind, 0.18}, {S::kBiomass, 0.14},
            {S::kGas, 0.08}}},
    {"FR", {{S::kNuclear, 0.66}, {S::kHydro, 0.12}, {S::kGas, 0.08}, {S::kWind, 0.09},
            {S::kSolar, 0.05}}},
    {"CH", {{S::kHydro, 0.58}, {S::kNuclear, 0.30}, {S::kSolar, 0.08}, {S::kGas, 0.04}}},
    {"AT", {{S::kHydro, 0.56}, {S::kGas, 0.22}, {S::kWind, 0.13}, {S::kSolar, 0.09}}},
    {"DE", {{S::kCoal, 0.28}, {S::kGas, 0.18}, {S::kWind, 0.28}, {S::kSolar, 0.18},
            {S::kBiomass, 0.08}}},
    {"PL", {{S::kCoal, 0.66}, {S::kGas, 0.14}, {S::kWind, 0.13}, {S::kSolar, 0.07}}},
    {"CZ", {{S::kCoal, 0.42}, {S::kNuclear, 0.38}, {S::kGas, 0.10}, {S::kSolar, 0.10}}},
    {"GB", {{S::kGas, 0.38}, {S::kWind, 0.32}, {S::kNuclear, 0.16}, {S::kSolar, 0.08},
            {S::kBiomass, 0.06}}},
    {"IE", {{S::kGas, 0.48}, {S::kWind, 0.38}, {S::kHydro, 0.06}, {S::kCoal, 0.08}}},
    {"ES", {{S::kSolar, 0.22}, {S::kWind, 0.26}, {S::kNuclear, 0.20}, {S::kGas, 0.24},
            {S::kHydro, 0.08}}},
    {"PT", {{S::kWind, 0.30}, {S::kHydro, 0.26}, {S::kGas, 0.28}, {S::kSolar, 0.16}}},
    {"IT", {{S::kGas, 0.58}, {S::kHydro, 0.16}, {S::kSolar, 0.14}, {S::kWind, 0.08},
            {S::kOil, 0.04}}},
    {"NL", {{S::kGas, 0.46}, {S::kWind, 0.28}, {S::kSolar, 0.16}, {S::kCoal, 0.10}}},
    {"BE", {{S::kNuclear, 0.42}, {S::kGas, 0.32}, {S::kWind, 0.16}, {S::kSolar, 0.10}}},
    {"DK", {{S::kWind, 0.56}, {S::kBiomass, 0.22}, {S::kGas, 0.12}, {S::kSolar, 0.10}}},
    {"EE", {{S::kOil, 0.56}, {S::kWind, 0.24}, {S::kBiomass, 0.12}, {S::kSolar, 0.08}}},
    {"LV", {{S::kHydro, 0.48}, {S::kGas, 0.38}, {S::kWind, 0.14}}},
    {"LT", {{S::kGas, 0.38}, {S::kWind, 0.34}, {S::kHydro, 0.16}, {S::kSolar, 0.12}}},
    {"HU", {{S::kNuclear, 0.46}, {S::kGas, 0.32}, {S::kSolar, 0.16}, {S::kCoal, 0.06}}},
    {"RO", {{S::kHydro, 0.28}, {S::kNuclear, 0.20}, {S::kGas, 0.24}, {S::kCoal, 0.18},
            {S::kWind, 0.10}}},
    {"BG", {{S::kCoal, 0.40}, {S::kNuclear, 0.34}, {S::kHydro, 0.12}, {S::kSolar, 0.14}}},
    {"GR", {{S::kGas, 0.38}, {S::kCoal, 0.14}, {S::kSolar, 0.22}, {S::kWind, 0.20},
            {S::kHydro, 0.06}}},
    {"HR", {{S::kHydro, 0.46}, {S::kGas, 0.30}, {S::kWind, 0.18}, {S::kSolar, 0.06}}},
    {"SI", {{S::kNuclear, 0.36}, {S::kHydro, 0.30}, {S::kCoal, 0.24}, {S::kSolar, 0.10}}},
    {"SK", {{S::kNuclear, 0.58}, {S::kHydro, 0.22}, {S::kGas, 0.14}, {S::kSolar, 0.06}}},
};

// US regional archetypes for cities without a hand-calibrated override.
// The US grid is operated as regional interconnects with very different
// mixes; a single national default would erase exactly the mesoscale
// contrast the paper measures. Buckets follow NERC-region geography.
const MixRow* us_regional_default(const geo::City& city) {
  static constexpr MixRow kPacificNw = {
      "US-PNW", {{S::kHydro, 0.58}, {S::kGas, 0.20}, {S::kWind, 0.18}, {S::kNuclear, 0.04}}};
  static constexpr MixRow kCalifornia = {
      "US-CAL", {{S::kSolar, 0.28}, {S::kGas, 0.40}, {S::kWind, 0.12}, {S::kHydro, 0.12},
                 {S::kNuclear, 0.08}}};
  static constexpr MixRow kMountain = {
      "US-MTN", {{S::kCoal, 0.42}, {S::kGas, 0.26}, {S::kWind, 0.18}, {S::kSolar, 0.14}}};
  static constexpr MixRow kPlains = {
      "US-PLN", {{S::kWind, 0.36}, {S::kGas, 0.30}, {S::kCoal, 0.24}, {S::kNuclear, 0.10}}};
  static constexpr MixRow kTexas = {
      "US-TEX", {{S::kGas, 0.44}, {S::kWind, 0.26}, {S::kCoal, 0.14}, {S::kSolar, 0.10},
                 {S::kNuclear, 0.06}}};
  static constexpr MixRow kMidwest = {
      "US-MID", {{S::kCoal, 0.40}, {S::kGas, 0.26}, {S::kNuclear, 0.20}, {S::kWind, 0.14}}};
  static constexpr MixRow kSoutheast = {
      "US-SE", {{S::kGas, 0.44}, {S::kNuclear, 0.28}, {S::kCoal, 0.16}, {S::kSolar, 0.08},
                {S::kHydro, 0.04}}};
  static constexpr MixRow kNortheast = {
      "US-NE", {{S::kGas, 0.44}, {S::kNuclear, 0.26}, {S::kHydro, 0.18}, {S::kWind, 0.07},
                {S::kSolar, 0.05}}};

  const double lat = city.location.lat_deg;
  const double lon = city.location.lon_deg;
  if (lon < -115.0) return lat >= 41.0 ? &kPacificNw : &kCalifornia;
  if (lon < -102.0) return &kMountain;
  if (lon < -93.0) return lat < 37.0 ? &kTexas : &kPlains;
  if (lon < -81.5) return lat >= 37.5 ? &kMidwest : &kSoutheast;
  return lat >= 38.5 ? &kNortheast : &kSoutheast;
}

GenerationMix mix_from_row(const MixRow& row) {
  GenerationMix mix;
  for (const auto& [source, share] : row.shares) mix.add(source, share);
  mix.normalize();
  return mix;
}

const MixRow* find_row(std::span<const MixRow> rows, std::string_view key) noexcept {
  for (const MixRow& row : rows) {
    if (row.key == key) return &row;
  }
  return nullptr;
}

// Deterministic per-city perturbation of a country archetype: each share is
// scaled by a factor in [0.8, 1.2] drawn from a hash of the city name, then
// renormalized. Keeps country character while making every zone distinct —
// the paper's point is precisely that neighboring zones differ.
GenerationMix perturb(const GenerationMix& base, std::string_view city_name) {
  GenerationMix out;
  std::uint64_t h = util::fnv1a(city_name);
  for (const S s : kAllSources) {
    const double share = base.at(s);
    if (share <= 0.0) continue;
    h = util::mix64(h ^ static_cast<std::uint64_t>(index_of(s) + 1));
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
    out.set(s, share * (0.8 + 0.4 * unit));
  }
  out.normalize();
  return out;
}

}  // namespace

const ZoneCatalog& ZoneCatalog::builtin() {
  static const ZoneCatalog catalog;
  return catalog;
}

bool ZoneCatalog::has_override(const geo::City& city) const noexcept {
  return find_row(kCityOverrides, city.name) != nullptr;
}

ZoneSpec ZoneCatalog::spec_for(const geo::City& city) const {
  ZoneSpec spec;
  spec.name = city.name;
  spec.city = city.id;
  spec.latitude_deg = city.location.lat_deg;
  if (const MixRow* row = find_row(kCityOverrides, city.name)) {
    spec.capacity = mix_from_row(*row);
  } else if (city.country == "US") {
    spec.capacity = perturb(mix_from_row(*us_regional_default(city)), city.name);
  } else if (const MixRow* country = find_row(kCountryDefaults, city.country)) {
    spec.capacity = perturb(mix_from_row(*country), city.name);
  } else {
    // Unknown country: generic fossil-leaning grid.
    spec.capacity = make_mix({{S::kGas, 0.5}, {S::kCoal, 0.2}, {S::kHydro, 0.1},
                              {S::kWind, 0.1}, {S::kSolar, 0.1}});
  }
  return spec;
}

std::vector<ZoneSpec> ZoneCatalog::specs_for(const std::vector<geo::City>& cities) const {
  std::vector<ZoneSpec> specs;
  specs.reserve(cities.size());
  for (const geo::City& city : cities) specs.push_back(spec_for(city));
  return specs;
}

}  // namespace carbonedge::carbon
