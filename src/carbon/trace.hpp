// Hourly carbon-intensity traces (one value per hour of the trace year),
// plus the realized generation mix behind each hour — the same information
// Electricity Maps exposes per zone.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "carbon/caltime.hpp"
#include "carbon/mix.hpp"

namespace carbonedge::carbon {

/// A year of hourly carbon intensity for one zone.
class CarbonTrace {
 public:
  CarbonTrace() = default;
  CarbonTrace(std::string zone_name, std::vector<double> intensity_g_per_kwh);

  [[nodiscard]] const std::string& zone() const noexcept { return zone_; }
  [[nodiscard]] std::size_t hours() const noexcept { return intensity_.size(); }
  [[nodiscard]] bool empty() const noexcept { return intensity_.empty(); }

  /// Intensity at an hour; indices wrap modulo the trace length, so multi-
  /// year simulations replay the trace cyclically (as the prototype's trace
  /// replayer does).
  [[nodiscard]] double at(HourIndex hour) const noexcept;

  [[nodiscard]] std::span<const double> values() const noexcept { return intensity_; }

  /// Mean over [start, start+count) with wrapping.
  [[nodiscard]] double mean_over(HourIndex start, std::uint32_t count) const noexcept;

  /// Mean for a calendar month (0-11). Requires a full-year trace.
  [[nodiscard]] double monthly_mean(std::uint32_t month) const noexcept;

  /// Yearly mean / min / max.
  [[nodiscard]] double yearly_mean() const noexcept;
  [[nodiscard]] double yearly_min() const noexcept;
  [[nodiscard]] double yearly_max() const noexcept;

  /// Optional per-hour realized generation mixes (set by the synthesizer);
  /// empty if the trace was loaded from plain CSV.
  [[nodiscard]] std::span<const GenerationMix> mixes() const noexcept { return mixes_; }
  void set_mixes(std::vector<GenerationMix> mixes);

  /// Average realized generation shares over the whole trace (Figure 1a).
  [[nodiscard]] GenerationMix average_mix() const noexcept;

 private:
  std::string zone_;
  std::vector<double> intensity_;
  std::vector<GenerationMix> mixes_;
};

}  // namespace carbonedge::carbon
