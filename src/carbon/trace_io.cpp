#include "carbon/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace carbonedge::carbon {
namespace {

std::vector<std::string> header_row(bool with_mix) {
  std::vector<std::string> header = {"zone", "hour", "intensity_g_kwh"};
  if (with_mix) {
    for (const EnergySource s : kAllSources) header.emplace_back(to_string(s));
  }
  return header;
}

void write_rows(util::CsvWriter& writer, const CarbonTrace& trace, bool with_mix) {
  for (std::size_t h = 0; h < trace.hours(); ++h) {
    std::vector<std::string> row = {trace.zone(), std::to_string(h),
                                    util::format_double(trace.at(static_cast<HourIndex>(h)), 4)};
    if (with_mix) {
      for (const EnergySource s : kAllSources) {
        row.push_back(util::format_double(trace.mixes()[h].at(s), 6));
      }
    }
    writer.row(row);
  }
}

// Data row r (0-based) sits on this 1-based text line: line 1 is the
// header. (Quoted cells with embedded newlines would shift this, but no
// trace exporter emits them.)
std::size_t line_of(std::size_t row) { return row + 2; }

[[noreturn]] void parse_fail(std::size_t row, const std::string& what) {
  throw std::runtime_error("trace csv line " + std::to_string(line_of(row)) + ": " + what);
}

// Strict full-cell numeric parses: trailing garbage ("12abc"), empty cells,
// and out-of-range values all fail with the offending line and cell.
std::size_t parse_hour(const std::string& cell, std::size_t row) {
  try {
    std::size_t consumed = 0;
    const unsigned long value = std::stoul(cell, &consumed);
    if (consumed != cell.size()) throw std::invalid_argument("trailing characters");
    return static_cast<std::size_t>(value);
  } catch (const std::exception&) {
    parse_fail(row, "invalid hour '" + cell + "'");
  }
}

double parse_value(const std::string& cell, std::size_t row, const char* column) {
  double value = 0.0;
  try {
    std::size_t consumed = 0;
    value = std::stod(cell, &consumed);
    if (consumed != cell.size()) throw std::invalid_argument("trailing characters");
  } catch (const std::exception&) {
    parse_fail(row, std::string("invalid ") + column + " '" + cell + "'");
  }
  // NaN/inf would silently poison every mean/forecast downstream, and a
  // negative intensity or generation share is physically meaningless —
  // reject them at the door instead of ingesting them.
  if (!std::isfinite(value)) parse_fail(row, std::string("non-finite ") + column + " '" + cell + "'");
  if (value < 0.0) parse_fail(row, std::string("negative ") + column + " '" + cell + "'");
  return value;
}

}  // namespace

void write_trace_csv(std::ostream& out, const CarbonTrace& trace) {
  util::CsvWriter writer(out);
  const bool with_mix = !trace.mixes().empty();
  writer.header(header_row(with_mix));
  write_rows(writer, trace, with_mix);
}

void write_traces_csv(std::ostream& out, const std::vector<CarbonTrace>& traces) {
  util::CsvWriter writer(out);
  bool with_mix = !traces.empty();
  for (const CarbonTrace& trace : traces) with_mix = with_mix && !trace.mixes().empty();
  writer.header(header_row(with_mix));
  for (const CarbonTrace& trace : traces) write_rows(writer, trace, with_mix);
}

std::vector<CarbonTrace> read_traces_csv(const std::string& text) {
  const util::CsvDocument doc = util::parse_csv(text);
  const std::size_t zone_col = doc.column("zone");
  const std::size_t hour_col = doc.column("hour");
  const std::size_t ci_col = doc.column("intensity_g_kwh");
  if (zone_col == util::CsvDocument::npos || hour_col == util::CsvDocument::npos ||
      ci_col == util::CsvDocument::npos) {
    throw std::runtime_error("trace csv: missing zone/hour/intensity_g_kwh columns");
  }
  std::array<std::size_t, kSourceCount> mix_cols{};
  bool with_mix = true;
  for (const EnergySource s : kAllSources) {
    mix_cols[index_of(s)] = doc.column(to_string(s));
    with_mix = with_mix && mix_cols[index_of(s)] != util::CsvDocument::npos;
  }

  // Preserve first-appearance order of zones.
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> intensity;
  std::map<std::string, std::vector<GenerationMix>> mixes;
  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    const std::string& zone = row[zone_col];
    if (zone.empty()) parse_fail(r, "empty zone name");
    auto [it, inserted] = intensity.try_emplace(zone);
    if (inserted) order.push_back(zone);
    const std::size_t hour = parse_hour(row[hour_col], r);
    if (hour != it->second.size()) {
      parse_fail(r, "non-contiguous hours for zone " + zone + " (expected " +
                        std::to_string(it->second.size()) + ", got " + std::to_string(hour) +
                        ")");
    }
    it->second.push_back(parse_value(row[ci_col], r, "intensity"));
    if (with_mix) {
      GenerationMix mix;
      for (const EnergySource s : kAllSources) {
        mix.set(s, parse_value(row[mix_cols[index_of(s)]], r, "mix share"));
      }
      mixes[zone].push_back(mix);
    }
  }

  std::vector<CarbonTrace> traces;
  traces.reserve(order.size());
  for (const std::string& zone : order) {
    CarbonTrace trace(zone, std::move(intensity.at(zone)));
    if (with_mix) trace.set_mixes(std::move(mixes.at(zone)));
    traces.push_back(std::move(trace));
  }
  return traces;
}

void save_traces(const std::filesystem::path& path, const std::vector<CarbonTrace>& traces) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("trace csv: cannot write " + path.string());
  write_traces_csv(file, traces);
}

std::vector<CarbonTrace> load_traces(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("trace csv: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return read_traces_csv(buffer.str());
}

}  // namespace carbonedge::carbon
