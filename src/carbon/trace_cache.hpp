// Process-wide immutable carbon-trace cache.
//
// Synthesizing a zone's year-long hourly trace is the dominant startup cost
// of wide scenario sweeps, and before this cache every CarbonIntensityService
// construction re-ran the synthesizer for every zone of its region. The
// cache memoizes TraceSynthesizer output keyed on (zone name,
// SynthesizerParams) and hands out shared_ptr<const CarbonTrace>, so
// synthesis happens exactly once per (zone, params) per process and every
// service/simulation thereafter shares one immutable year-long series.
//
// Invariant: a zone name identifies its ZoneSpec. This holds for the
// built-in catalog (specs are a pure function of the city), which is the
// only spec source in the tree; callers synthesizing ad-hoc specs that
// reuse a catalog name must bypass the cache and add_trace() directly.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "carbon/zone.hpp"

namespace carbonedge::carbon {

class TraceCache {
 public:
  TraceCache() = default;
  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  /// The process-wide instance used by CarbonIntensityService::add_region.
  [[nodiscard]] static TraceCache& global();

  /// The trace for (zone.name, params), synthesizing it on first request.
  /// Thread-safe; concurrent requests for the same key synthesize once.
  [[nodiscard]] std::shared_ptr<const CarbonTrace> get(const ZoneSpec& zone,
                                                       const SynthesizerParams& params = {});

  /// Number of distinct (zone, params) entries currently cached.
  [[nodiscard]] std::size_t size() const;
  /// Lookups answered from the cache without synthesizing.
  [[nodiscard]] std::uint64_t hits() const;
  /// Synthesizer runs (== cache misses); the "once per (zone, params) per
  /// process" guarantee is `syntheses() == size()` at all times.
  [[nodiscard]] std::uint64_t syntheses() const;

  /// Drop all entries and reset counters (tests; shared_ptrs handed out
  /// earlier stay valid).
  void clear();

 private:
  struct Key {
    std::string zone;
    SynthesizerParams params;
    [[nodiscard]] bool operator==(const Key&) const noexcept = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& key) const noexcept;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const CarbonTrace>, KeyHash> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t syntheses_ = 0;
};

}  // namespace carbonedge::carbon
