// Two-tier immutable carbon-trace cache.
//
// Synthesizing a zone's year-long hourly trace is the dominant startup cost
// of wide scenario sweeps. The cache memoizes TraceSynthesizer output at two
// levels:
//
//   L1 (memory)  per-process map keyed on a content hash of the full
//                (ZoneSpec, SynthesizerParams) pair, handing out
//                shared_ptr<const CarbonTrace> — synthesis happens at most
//                once per key per process and every service/simulation
//                thereafter shares one immutable year-long series.
//   L2 (disk)    optional store::ArtifactStore shared across processes
//                (attach via set_store(), or CARBONEDGE_STORE_DIR for the
//                global instance). An L1 miss first tries the store; a true
//                miss synthesizes under an advisory file lock and publishes
//                the trace, so N concurrent sweep processes over the same
//                zones synthesize each trace exactly once between them.
//
// The key is the content of the spec, not the zone name: two different
// ZoneSpecs that happen to share a name get distinct entries (ad-hoc specs
// can no longer silently alias a catalog zone), and equal specs share one
// entry regardless of where they came from.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "carbon/zone.hpp"
#include "util/fs.hpp"

namespace carbonedge::carbon {

/// Persistence seam for the L2 disk tier. The carbon layer sits below the
/// store layer in the module DAG, so the cache cannot name
/// store::ArtifactStore directly; instead it talks to this interface and the
/// store layer provides the adapter (store::ArtifactTraceStore), which also
/// owns the codec round-trip — a payload that fails to decode is reported
/// here as a plain miss.
class TraceStore {
 public:
  virtual ~TraceStore() = default;
  /// The stored trace for `key`, or nullptr on a miss (including a corrupt
  /// or undecodable entry).
  [[nodiscard]] virtual std::shared_ptr<const CarbonTrace> load(const std::string& key) = 0;
  /// Best-effort publish; failures (disk full, read-only store) must degrade
  /// silently — the computed trace is already good in memory.
  virtual void save(const std::string& key, const CarbonTrace& trace) = 0;
  /// Cross-process advisory entry lock. held()==false degrades the
  /// synthesize-once guarantee to at-least-once for this key (counted by the
  /// cache, never fatal).
  [[nodiscard]] virtual util::FileLock lock_entry(const std::string& key) = 0;
};

class TraceCache {
 public:
  TraceCache() = default;
  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  /// The process-wide instance used by CarbonIntensityService::add_region.
  /// On first use it attaches the CARBONEDGE_STORE_DIR store, if set.
  /// Defined in src/store/trace_tier.cpp: attaching the on-disk tier is
  /// store-layer policy, and keeping the definition there lets the carbon
  /// layer stay free of store includes (the layer DAG enforced by
  /// carbonedge_lint rule A1).
  [[nodiscard]] static TraceCache& global();

  /// The trace for (zone, params), loading it from the attached store or
  /// synthesizing it on first request. Thread-safe; concurrent requests for
  /// the same key synthesize once (across processes too, when a store is
  /// attached).
  [[nodiscard]] std::shared_ptr<const CarbonTrace> get(const ZoneSpec& zone,
                                                       const SynthesizerParams& params = {});

  /// Attach (or with nullptr detach) the L2 on-disk tier. The store layer's
  /// adapter is store::ArtifactTraceStore.
  void set_store(std::shared_ptr<TraceStore> store);
  [[nodiscard]] std::shared_ptr<TraceStore> store() const;

  /// Content key of a (zone, params) pair: hex digest over every field of
  /// both structs. Also the entry's on-disk name in the artifact store.
  [[nodiscard]] static std::string key_of(const ZoneSpec& zone,
                                          const SynthesizerParams& params);

  /// Number of distinct keys currently cached in memory.
  [[nodiscard]] std::size_t size() const;
  /// Lookups answered from memory (L1 hits).
  [[nodiscard]] std::uint64_t hits() const;
  /// Lookups answered by loading the on-disk store (L2 hits — another
  /// process, or an earlier run, synthesized the trace).
  [[nodiscard]] std::uint64_t disk_hits() const;
  /// Synthesizer runs (true misses). Without a store,
  /// `syntheses() == size()` at all times; with a warm store a run can
  /// satisfy every request with zero syntheses.
  [[nodiscard]] std::uint64_t syntheses() const;
  /// Times the cross-process entry lock could not be acquired (e.g. an
  /// unwritable locks/ directory). Synthesis still proceeds — the
  /// "exactly once across processes" guarantee degrades to at-least-once
  /// for those keys, and this counter is the diagnostic.
  [[nodiscard]] std::uint64_t lock_failures() const;

  /// Drop all in-memory entries and reset counters (tests; shared_ptrs
  /// handed out earlier stay valid, and the on-disk tier is untouched).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const CarbonTrace>> entries_;
  std::shared_ptr<TraceStore> store_;
  std::uint64_t hits_ = 0;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t syntheses_ = 0;
  std::uint64_t lock_failures_ = 0;
};

}  // namespace carbonedge::carbon
