#include "carbon/forecast.hpp"

#include <cmath>
#include <stdexcept>

namespace carbonedge::carbon {

double Forecaster::mean_forecast(const CarbonTrace& trace, HourIndex now,
                                 std::uint32_t horizon) const {
  if (horizon == 0) return trace.at(now);
  const std::vector<double> values = forecast(trace, now, horizon);
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

std::vector<double> OracleForecaster::forecast(const CarbonTrace& trace, HourIndex now,
                                               std::uint32_t horizon) const {
  std::vector<double> out;
  out.reserve(horizon);
  for (std::uint32_t i = 0; i < horizon; ++i) out.push_back(trace.at(now + i));
  return out;
}

std::vector<double> PersistenceForecaster::forecast(const CarbonTrace& trace, HourIndex now,
                                                    std::uint32_t horizon) const {
  const double last = now == 0 ? trace.at(0) : trace.at(now - 1);
  return std::vector<double>(horizon, last);
}

MovingAverageForecaster::MovingAverageForecaster(std::uint32_t window)
    : window_(window == 0 ? 1 : window) {}

std::vector<double> MovingAverageForecaster::forecast(const CarbonTrace& trace, HourIndex now,
                                                      std::uint32_t horizon) const {
  const std::uint32_t available = std::min<std::uint32_t>(window_, now);
  double value = 0.0;
  if (available == 0) {
    value = trace.at(0);
  } else {
    for (std::uint32_t i = 1; i <= available; ++i) value += trace.at(now - i);
    value /= static_cast<double>(available);
  }
  return std::vector<double>(horizon, value);
}

std::string MovingAverageForecaster::name() const {
  return "moving_average(" + std::to_string(window_) + "h)";
}

DiurnalForecaster::DiurnalForecaster(std::uint32_t days) : days_(days == 0 ? 1 : days) {}

std::vector<double> DiurnalForecaster::forecast(const CarbonTrace& trace, HourIndex now,
                                                std::uint32_t horizon) const {
  std::vector<double> out;
  out.reserve(horizon);
  for (std::uint32_t i = 0; i < horizon; ++i) {
    const HourIndex target = now + i;
    double total = 0.0;
    std::uint32_t samples = 0;
    for (std::uint32_t d = 1; d <= days_; ++d) {
      const std::uint32_t back = d * kHoursPerDay;
      if (back > target) break;  // causal: stay within observed history
      total += trace.at(target - back);
      ++samples;
    }
    out.push_back(samples > 0 ? total / static_cast<double>(samples) : trace.at(0));
  }
  return out;
}

std::string DiurnalForecaster::name() const {
  return "diurnal(" + std::to_string(days_) + "d)";
}

HoltWintersForecaster::HoltWintersForecaster(double level_alpha, double season_gamma)
    : level_alpha_(level_alpha), season_gamma_(season_gamma) {
  if (level_alpha <= 0.0 || level_alpha > 1.0 || season_gamma < 0.0 || season_gamma > 1.0) {
    throw std::invalid_argument("holt-winters smoothing factors must be in (0,1]");
  }
}

std::vector<double> HoltWintersForecaster::forecast(const CarbonTrace& trace, HourIndex now,
                                                    std::uint32_t horizon) const {
  // Replay history [0, now) through the online updates. A warm-up of at
  // least one season is needed for meaningful components; before that, fall
  // back to the trace start value.
  if (now == 0) return std::vector<double>(horizon, trace.at(0));
  const std::uint32_t season_len = kHoursPerDay;

  double level = 0.0;
  std::array<double, kHoursPerDay> season{};
  const std::uint32_t init = std::min(now, season_len);
  for (std::uint32_t h = 0; h < init; ++h) level += trace.at(h);
  level /= static_cast<double>(init);
  for (std::uint32_t h = 0; h < season_len; ++h) {
    season[h] = h < init ? trace.at(h) - level : 0.0;
  }
  for (HourIndex t = init; t < now; ++t) {
    const std::uint32_t slot = hour_of_day(t);
    const double observed = trace.at(t);
    const double previous_level = level;
    level = level_alpha_ * (observed - season[slot]) + (1.0 - level_alpha_) * level;
    season[slot] =
        season_gamma_ * (observed - previous_level) + (1.0 - season_gamma_) * season[slot];
  }

  std::vector<double> out;
  out.reserve(horizon);
  for (std::uint32_t i = 0; i < horizon; ++i) {
    out.push_back(std::max(0.0, level + season[hour_of_day(now + i)]));
  }
  return out;
}

double forecast_mape(const Forecaster& forecaster, const CarbonTrace& trace, HourIndex start,
                     HourIndex end, std::uint32_t horizon) {
  if (start >= end || horizon == 0) return 0.0;
  double total_ape = 0.0;
  std::size_t samples = 0;
  for (HourIndex now = start; now < end; now += horizon) {
    const std::vector<double> predicted = forecaster.forecast(trace, now, horizon);
    for (std::uint32_t i = 0; i < horizon; ++i) {
      const double actual = trace.at(now + i);
      if (actual <= 0.0) continue;
      total_ape += std::abs(predicted[i] - actual) / actual;
      ++samples;
    }
  }
  return samples == 0 ? 0.0 : total_ape / static_cast<double>(samples);
}

std::unique_ptr<Forecaster> make_forecaster(const std::string& name) {
  if (name == "oracle") return std::make_unique<OracleForecaster>();
  if (name == "persistence") return std::make_unique<PersistenceForecaster>();
  if (name == "moving_average") return std::make_unique<MovingAverageForecaster>();
  if (name == "diurnal") return std::make_unique<DiurnalForecaster>();
  if (name == "holt_winters") return std::make_unique<HoltWintersForecaster>();
  throw std::invalid_argument("unknown forecaster: " + name);
}

}  // namespace carbonedge::carbon
