// Energy generation sources and their life-cycle carbon intensities.
//
// The carbon intensity of a zone's electricity is the generation-weighted
// average of per-source intensities (Section 2.1 of the paper). We use the
// IPCC AR5 median life-cycle values (g CO2-eq per kWh), the same basis
// Electricity Maps uses for its published zone intensities.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace carbonedge::carbon {

enum class EnergySource : std::uint8_t {
  kHydro = 0,
  kSolar,
  kWind,
  kNuclear,
  kBiomass,
  kGas,
  kOil,
  kCoal,
  kCount_,
};

inline constexpr std::size_t kSourceCount = static_cast<std::size_t>(EnergySource::kCount_);

/// All sources, in enum order (iteration helper).
inline constexpr std::array<EnergySource, kSourceCount> kAllSources = {
    EnergySource::kHydro, EnergySource::kSolar,   EnergySource::kWind,
    EnergySource::kNuclear, EnergySource::kBiomass, EnergySource::kGas,
    EnergySource::kOil,   EnergySource::kCoal,
};

[[nodiscard]] constexpr std::size_t index_of(EnergySource s) noexcept {
  return static_cast<std::size_t>(s);
}

/// Life-cycle carbon intensity, g CO2-eq / kWh (IPCC AR5 medians).
[[nodiscard]] constexpr double carbon_intensity_g_per_kwh(EnergySource s) noexcept {
  constexpr std::array<double, kSourceCount> kIntensity = {
      24.0,   // hydro
      45.0,   // solar PV (utility)
      11.0,   // wind (onshore)
      12.0,   // nuclear
      230.0,  // biomass
      490.0,  // gas (combined cycle)
      650.0,  // oil
      820.0,  // coal
  };
  return kIntensity[index_of(s)];
}

/// True for sources that are dispatched on demand (fossil thermal); false
/// for must-run / variable sources (renewables, nuclear baseload).
[[nodiscard]] constexpr bool is_dispatchable(EnergySource s) noexcept {
  switch (s) {
    case EnergySource::kGas:
    case EnergySource::kOil:
    case EnergySource::kCoal:
    case EnergySource::kBiomass:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] std::string_view to_string(EnergySource s) noexcept;

/// Carbon intensity assigned to unserved residual demand (grid imports from
/// an unmodeled neighbor); a mid-fossil value.
inline constexpr double kImportIntensity = 500.0;

}  // namespace carbonedge::carbon
