// Carbon zones: the geographic unit for which grid carbon intensity is
// known (Section 3.1 of the paper; Electricity Maps zones).
//
// Each zone is described by its installed-capacity generation mix. The
// catalog below substitutes for the proprietary Electricity Maps dataset:
// the zones the paper names (Figures 1-4) carry hand-calibrated mixes that
// reproduce the paper's reported contrasts (Central-EU ~10.8x yearly spread,
// West-US ~2.7x, Poland coal-heavy, Ontario nuclear/hydro, ...); every other
// city falls back to a per-country archetype with deterministic per-city
// variation.
#pragma once

#include <string>
#include <vector>

#include "carbon/mix.hpp"
#include "geo/site.hpp"

namespace carbonedge::carbon {

/// Static description of one carbon zone.
struct ZoneSpec {
  std::string name;            // zone name == city name (one zone per site)
  geo::CityId city = 0;        // anchor city
  double latitude_deg = 0.0;   // drives solar day-length seasonality
  GenerationMix capacity;      // installed-capacity shares, normalized
  double demand_peak = 0.82;   // peak demand as fraction of total capacity
  double demand_base = 0.52;   // overnight trough as fraction of capacity
};

/// Zone catalog: maps cities to zone specifications.
class ZoneCatalog {
 public:
  /// Catalog with the built-in calibrated dataset.
  [[nodiscard]] static const ZoneCatalog& builtin();

  /// Zone spec for a city (calibrated override, else country archetype with
  /// deterministic per-city variation).
  [[nodiscard]] ZoneSpec spec_for(const geo::City& city) const;

  /// Specs for every city of a region, in region order.
  [[nodiscard]] std::vector<ZoneSpec> specs_for(const std::vector<geo::City>& cities) const;

  /// True if `city` has a hand-calibrated (paper-named) mix.
  [[nodiscard]] bool has_override(const geo::City& city) const noexcept;

 private:
  ZoneCatalog() = default;
};

}  // namespace carbonedge::carbon
