#include "carbon/source.hpp"

namespace carbonedge::carbon {

std::string_view to_string(EnergySource s) noexcept {
  switch (s) {
    case EnergySource::kHydro: return "hydro";
    case EnergySource::kSolar: return "solar";
    case EnergySource::kWind: return "wind";
    case EnergySource::kNuclear: return "nuclear";
    case EnergySource::kBiomass: return "biomass";
    case EnergySource::kGas: return "gas";
    case EnergySource::kOil: return "oil";
    case EnergySource::kCoal: return "coal";
    case EnergySource::kCount_: break;
  }
  return "?";
}

}  // namespace carbonedge::carbon
