#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace carbonedge::obs {

void Gauge::add(double d) noexcept {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + d),
      std::memory_order_relaxed)) {
  }
}

void Gauge::set_max(double v) noexcept {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(expected) < v &&
         !bits_.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(v),
                                      std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(double v) noexcept {
  // First bound with v <= bound; past the last bound lands in the overflow
  // bucket (index bounds_.size()).
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + v),
      std::memory_order_relaxed)) {
  }
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name, std::string_view help, View view) {
  const std::scoped_lock lock(mutex_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kCounter) {
      throw std::logic_error("obs: metric '" + std::string(name) +
                             "' already registered with a different kind");
    }
    return *it->second.counter;
  }
  Counter& handle = counters_.emplace_back();
  Entry entry;
  entry.kind = MetricKind::kCounter;
  entry.view = view;
  entry.help = std::string(help);
  entry.counter = &handle;
  metrics_.emplace(std::string(name), std::move(entry));
  return handle;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help, View view) {
  const std::scoped_lock lock(mutex_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kGauge) {
      throw std::logic_error("obs: metric '" + std::string(name) +
                             "' already registered with a different kind");
    }
    return *it->second.gauge;
  }
  Gauge& handle = gauges_.emplace_back();
  Entry entry;
  entry.kind = MetricKind::kGauge;
  entry.view = view;
  entry.help = std::string(help);
  entry.gauge = &handle;
  metrics_.emplace(std::string(name), std::move(entry));
  return handle;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help, View view,
                               std::vector<double> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::logic_error("obs: histogram '" + std::string(name) +
                           "' needs non-empty strictly increasing bounds");
  }
  const std::scoped_lock lock(mutex_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kHistogram ||
        it->second.histogram->bounds() != bounds) {
      throw std::logic_error("obs: metric '" + std::string(name) +
                             "' already registered with a different kind or bounds");
    }
    return *it->second.histogram;
  }
  Histogram& handle =
      *histograms_.emplace_back(std::unique_ptr<Histogram>(new Histogram(std::move(bounds))));
  Entry entry;
  entry.kind = MetricKind::kHistogram;
  entry.view = view;
  entry.help = std::string(help);
  entry.histogram = &handle;
  metrics_.emplace(std::string(name), std::move(entry));
  return handle;
}

void Registry::visit(const std::function<void(const MetricRef&)>& fn) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, entry] : metrics_) {
    MetricRef ref;
    ref.name = name;
    ref.help = entry.help;
    ref.view = entry.view;
    ref.kind = entry.kind;
    ref.counter = entry.counter;
    ref.gauge = entry.gauge;
    ref.histogram = entry.histogram;
    fn(ref);
  }
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(mutex_);
  return metrics_.size();
}

}  // namespace carbonedge::obs
