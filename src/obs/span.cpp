#include "obs/span.hpp"

#include <string>

#include "obs/clock.hpp"

namespace carbonedge::obs {

namespace {

// Innermost open span on this thread (nullptr at top level). Thread-local
// by design: nesting and self-time attribution are per-thread notions, so
// worker-lane spans are simply roots on their own lane.
Span*& current_span() {
  thread_local Span* current = nullptr;
  return current;
}

}  // namespace

Phase::Phase(std::string_view name, Registry& registry) {
  const std::string base = "span." + std::string(name);
  calls_ = &registry.counter(base + ".calls", "times the phase ran", View::kDeterministic);
  total_ns_ = &registry.counter(base + ".total_ns",
                                "wall nanoseconds inside the phase, children included",
                                View::kTiming);
  self_ns_ = &registry.counter(base + ".self_ns",
                               "wall nanoseconds inside the phase, minus nested spans",
                               View::kTiming);
}

Span::Span(const Phase& phase)
    : phase_(&phase), parent_(current_span()), start_ns_(now_ns()) {
  current_span() = this;
}

Span::~Span() {
  const std::uint64_t end = now_ns();
  // A fake clock may legally run backwards between injections; clamp so
  // counters (monotone by contract) never wrap.
  const std::uint64_t total = end >= start_ns_ ? end - start_ns_ : 0;
  const std::uint64_t self = total >= child_ns_ ? total - child_ns_ : 0;
  phase_->calls().add(1);
  phase_->total_ns().add(total);
  phase_->self_ns().add(self);
  if (parent_ != nullptr) parent_->child_ns_ += total;
  current_span() = parent_;
}

}  // namespace carbonedge::obs
