// RAII phase-span tracer over the metrics registry.
//
// A Phase names one recurring unit of work (epoch step, placement solve,
// B&B, trace synthesis, store read/write/gc, window flush, ingest) and owns
// three registry handles:
//
//   span.<name>.calls      counter, deterministic view — invocation counts
//                          are pure functions of the workload
//   span.<name>.total_ns   counter, timing view — wall time inside the
//                          span, children included
//   span.<name>.self_ns    counter, timing view — total minus time spent
//                          in nested spans on the same thread
//
// Span is the RAII guard: construction reads obs::now_ns() and pushes onto
// a thread-local stack; destruction records the duration, attributes it to
// the parent's child time, and bumps the counters. Nesting is per thread —
// a span opened on a worker lane is a root there, so self-time math never
// crosses threads. Cost per span: two clock reads + three relaxed atomics.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"

namespace carbonedge::obs {

/// One named phase; construct once (function-local static at the call
/// site) and wrap each occurrence in a Span. Registers its metrics in
/// `registry` (the process-wide registry by default).
class Phase {
 public:
  explicit Phase(std::string_view name, Registry& registry = Registry::global());

  [[nodiscard]] Counter& calls() const noexcept { return *calls_; }
  [[nodiscard]] Counter& total_ns() const noexcept { return *total_ns_; }
  [[nodiscard]] Counter& self_ns() const noexcept { return *self_ns_; }

 private:
  Counter* calls_;
  Counter* total_ns_;
  Counter* self_ns_;
};

class Span {
 public:
  explicit Span(const Phase& phase);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  const Phase* phase_;
  Span* parent_;             // enclosing span on this thread, if any
  std::uint64_t start_ns_;
  std::uint64_t child_ns_ = 0;  // time spent in directly nested spans
};

}  // namespace carbonedge::obs
