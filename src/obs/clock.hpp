// Sanctioned monotonic-clock shim — the only place in src/ allowed to read
// a real clock (lint rule D1).
//
// Wall/steady time must never influence simulation output, so D1 bans
// `*_clock::now()` across the tree. Observability still needs durations:
// phase spans (obs/span.hpp) and solve-latency telemetry are timing-view
// data, explicitly excluded from the determinism contract. Those reads are
// funneled through this shim — one audited call point with a single
// allowlist entry (the util::env pattern) — and tests can swap in a fake
// ClockSource to make span math exact and reproducible.
#pragma once

#include <cstdint>

namespace carbonedge::obs {

/// Injectable time source. now_ns() must be monotone non-decreasing per
/// source; absolute origin is unspecified (durations only).
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() = 0;
};

/// Nanoseconds on the current source: the injected ClockSource if one is
/// set, otherwise the process steady clock (the one allowlisted D1 read).
/// Results are timing-view only — they may never feed back into accounting
/// or any simulation decision.
[[nodiscard]] std::uint64_t now_ns();

/// Install `source` as the process clock (nullptr restores the steady
/// clock). Returns the previously installed source so tests can nest and
/// restore. Not synchronized with concurrent now_ns() callers beyond the
/// pointer swap itself — install fakes before spinning up timed work.
ClockSource* exchange_clock_source(ClockSource* source) noexcept;

}  // namespace carbonedge::obs
