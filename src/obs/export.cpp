#include "obs/export.hpp"

#include <cstdio>
#include <vector>

#include "util/env.hpp"
#include "util/parallelism.hpp"

namespace carbonedge::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_value(const MetricRef& metric) {
  switch (metric.kind) {
    case MetricKind::kCounter:
      return std::to_string(metric.counter->value());
    case MetricKind::kGauge:
      return format_double(metric.gauge->value());
    case MetricKind::kHistogram: {
      const Histogram& h = *metric.histogram;
      std::string out = "{\"count\":" + std::to_string(h.count()) +
                        ",\"sum\":" + format_double(h.sum()) + ",\"buckets\":[";
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(h.bucket(i));
      }
      out += "],\"bounds\":[";
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        if (i > 0) out += ',';
        out += format_double(h.bounds()[i]);
      }
      out += "]}";
      return out;
    }
  }
  return "null";
}

std::string view_json(const Registry& registry, View view) {
  std::string out = "{";
  bool first = true;
  registry.visit([&](const MetricRef& metric) {
    if (metric.view != view) return;
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(metric.name) + "\":" + json_value(metric);
  });
  out += '}';
  return out;
}

/// `carbonedge_` + name with every non-[a-zA-Z0-9_] character replaced by
/// '_' (dots become underscores; the result is a valid Prometheus name).
std::string prometheus_name(std::string_view name) {
  std::string out = "carbonedge_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string prometheus_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void maybe_collect(const Registry& registry) {
  if (&registry == &Registry::global()) collect_process_gauges();
}

}  // namespace

void collect_process_gauges() {
  Registry& registry = Registry::global();
  // Lane counts follow CARBONEDGE_THREADS — execution shape, never part of
  // the deterministic view.
  static Gauge& total_lanes = registry.gauge(
      "process.budget.total_lanes", "worker lanes in the process budget", View::kTiming);
  static Gauge& peak_lanes = registry.gauge(
      "process.budget.peak_lanes", "high-water mark of concurrently leased lanes",
      View::kTiming);
  static Gauge& host_reads = registry.gauge(
      "process.env.host_reads", "distinct host environment reads through util::env",
      View::kDeterministic);
  const util::ParallelismBudget& budget = util::global_budget();
  total_lanes.set(static_cast<double>(budget.total()));
  peak_lanes.set(static_cast<double>(budget.peak_lanes()));
  host_reads.set(static_cast<double>(util::env::host_reads()));
}

std::string snapshot_json(const Registry& registry, bool include_timing) {
  maybe_collect(registry);
  std::string out = "{\"deterministic\":" + view_json(registry, View::kDeterministic);
  if (include_timing) out += ",\"timing\":" + view_json(registry, View::kTiming);
  out += '}';
  return out;
}

std::string deterministic_json(const Registry& registry) {
  maybe_collect(registry);
  return view_json(registry, View::kDeterministic);
}

std::string snapshot_prometheus(const Registry& registry) {
  maybe_collect(registry);
  std::string out;
  registry.visit([&](const MetricRef& metric) {
    const std::string name = prometheus_name(metric.name);
    const std::string view_label =
        metric.view == View::kDeterministic ? "deterministic" : "timing";
    out += "# HELP " + name + ' ' + prometheus_help(metric.help) + '\n';
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + "{view=\"" + view_label + "\"} " +
               std::to_string(metric.counter->value()) + '\n';
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + "{view=\"" + view_label + "\"} " +
               format_double(metric.gauge->value()) + '\n';
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *metric.histogram;
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket(i);
          out += name + "_bucket{view=\"" + view_label + "\",le=\"" +
                 format_double(h.bounds()[i]) + "\"} " + std::to_string(cumulative) + '\n';
        }
        out += name + "_bucket{view=\"" + view_label + "\",le=\"+Inf\"} " +
               std::to_string(h.count()) + '\n';
        out += name + "_sum{view=\"" + view_label + "\"} " + format_double(h.sum()) + '\n';
        out += name + "_count{view=\"" + view_label + "\"} " + std::to_string(h.count()) +
               '\n';
        break;
      }
    }
  });
  return out;
}

}  // namespace carbonedge::obs
