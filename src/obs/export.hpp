// Metrics exporters: JSON snapshot and Prometheus text exposition.
//
// Both render one Registry in name order (deterministic by construction).
// The JSON snapshot is split at the top level into the two views —
//
//   {"deterministic":{...},"timing":{...}}
//
// — so consumers (the CI determinism gate, the serve export stream) can
// diff the deterministic object across thread counts and ignore the rest.
// The Prometheus format carries the same split as a `view` label.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace carbonedge::obs {

/// Refresh the process-level gauges that are sampled rather than pushed:
/// worker-budget lane counts (timing view — they follow CARBONEDGE_THREADS)
/// and the env shim's host-read count (deterministic). Registers them on
/// first call; snapshot_json/snapshot_prometheus call this automatically
/// when rendering the global registry.
void collect_process_gauges();

/// The whole registry as one JSON document. include_timing=false drops the
/// "timing" object entirely (the per-window serve rows use this: every byte
/// they emit stays under the determinism contract).
[[nodiscard]] std::string snapshot_json(const Registry& registry = Registry::global(),
                                        bool include_timing = true);

/// Only the deterministic view's JSON object (the value of the
/// "deterministic" key) — what the determinism gate diffs.
[[nodiscard]] std::string deterministic_json(const Registry& registry = Registry::global());

/// Prometheus text exposition format (# HELP/# TYPE, escaped help strings,
/// cumulative histogram buckets, `view` label on every sample).
[[nodiscard]] std::string snapshot_prometheus(const Registry& registry = Registry::global());

}  // namespace carbonedge::obs
