#include "obs/clock.hpp"

#include <atomic>
#include <chrono>

namespace carbonedge::obs {

namespace {

std::atomic<ClockSource*>& source_slot() {
  static std::atomic<ClockSource*> source{nullptr};
  return source;
}

}  // namespace

std::uint64_t now_ns() {
  ClockSource* source = source_slot().load(std::memory_order_acquire);
  if (source != nullptr) return source->now_ns();
  // The one sanctioned monotonic-clock read in src/ (allowlisted for lint
  // rule D1): timing-view telemetry only, never an input to accounting.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ClockSource* exchange_clock_source(ClockSource* source) noexcept {
  return source_slot().exchange(source, std::memory_order_acq_rel);
}

}  // namespace carbonedge::obs
