// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, registered once and updated through cached handles.
//
// Hot paths never touch the registry map — they hold a `Counter&` (one
// relaxed fetch_add per update) obtained at first use and kept in a
// function-local static or a member. Registration and enumeration are
// mutex-serialized; enumeration order is the name order of a std::map, so
// exports are deterministic by construction.
//
// Every metric declares a View:
//
//   kDeterministic  counts, bytes, invocations — pure functions of the
//                   workload, byte-identical across CARBONEDGE_THREADS.
//                   The CI determinism gate diffs this view across thread
//                   counts, so only put values here that are genuinely
//                   execution-shape independent (integer counts, or exact
//                   commutative sums; never wall time, never lane counts).
//   kTiming         durations, rates, execution-shape values (lane
//                   high-water marks) — explicitly excluded from the
//                   determinism contract.
//
// The hard split exists so observability can never feed back into
// accounting: exporters read the registry, nothing in src/ reads it back.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace carbonedge::obs {

enum class View : std::uint8_t {
  kDeterministic,  // byte-identical across thread counts; gate-diffed
  kTiming,         // durations/rates; excluded from determinism checks
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Monotone integer count. add() is one relaxed fetch_add — safe and cheap
/// from any thread, including parallel-section workers.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double. add()/set_max() are CAS loops over the bit pattern
/// (portable lock-free atomic double). set_max is commutative, so a gauge
/// updated only through it stays deterministic even from worker lanes;
/// plain set() from concurrent writers is last-write-wins and belongs in
/// the timing view.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  void add(double d) noexcept;
  void set_max(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed upper-bound histogram (Prometheus `le` semantics: bucket i counts
/// observations <= bounds[i]; one extra overflow bucket past the last
/// bound). Observation is a binary search plus two relaxed increments and a
/// CAS sum update. A deterministic-view histogram must only observe values
/// whose multiset is thread-count independent, and its sum is only exact/
/// commutative for integer-valued observations — durations go in kTiming.
class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Non-cumulative count of bucket `i`; `i == bounds().size()` is the
  /// overflow bucket.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }

 private:
  friend class Registry;
  /// Bounds must be strictly increasing and non-empty (Registry validates).
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// One registered metric as seen by an exporter: exactly one of the three
/// pointers is non-null, matching `kind`.
struct MetricRef {
  std::string_view name;
  std::string_view help;
  View view = View::kDeterministic;
  MetricKind kind = MetricKind::kCounter;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide instance every src/ call site registers into.
  [[nodiscard]] static Registry& global();

  /// Register-or-fetch: the first call under `name` creates the metric
  /// (help/view recorded then); later calls return the same handle so call
  /// sites can cache `Counter&` in a local static. Registering an existing
  /// name as a different kind (or a histogram with different bounds)
  /// throws std::logic_error — silent aliasing would corrupt both series.
  [[nodiscard]] Counter& counter(std::string_view name, std::string_view help, View view);
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view help, View view);
  [[nodiscard]] Histogram& histogram(std::string_view name, std::string_view help, View view,
                                     std::vector<double> bounds);

  /// Enumerate every metric in name order (std::map order — deterministic).
  /// The registry lock is held for the duration; values read during the
  /// visit are individually atomic but not a consistent cross-metric cut.
  void visit(const std::function<void(const MetricRef&)>& fn) const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    View view = View::kDeterministic;
    std::string help;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;
  // Deques give out stable addresses for the lifetime of the registry, so
  // cached handles survive any number of later registrations (histograms
  // are heap-held because their constructor is Registry-private).
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace carbonedge::obs
