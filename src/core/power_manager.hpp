// Power manager: CarbonEdge "manages the power states of edge servers to
// reduce emissions from idle servers" (Section 4.1). Between placement
// epochs, idle servers may be powered down; Eq. 4 forbids powering off
// servers with hosted applications.
#pragma once

#include "sim/datacenter.hpp"

namespace carbonedge::core {

struct PowerManagerConfig {
  /// Keep at least this many servers on per site (so every site can absorb
  /// a burst without an activation round-trip).
  std::size_t min_on_per_site = 1;
  /// When false the manager is a no-op (all-on operation, the CDN setting).
  bool enabled = false;
};

class PowerManager {
 public:
  explicit PowerManager(PowerManagerConfig config = {}) : config_(config) {}

  /// Power off idle servers beyond the per-site floor. Returns the number
  /// of servers powered down.
  std::size_t sweep(sim::EdgeCluster& cluster) const;

  [[nodiscard]] const PowerManagerConfig& config() const noexcept { return config_; }

 private:
  PowerManagerConfig config_;
};

}  // namespace carbonedge::core
