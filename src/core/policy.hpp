// Placement policies (Section 6.1.3 baselines + CarbonEdge, Eq. 7/8).
//
//  * Latency-aware   — nearest feasible site (the conventional edge policy).
//  * Energy-aware    — minimize energy usage under latency/resource limits.
//  * Intensity-aware — greedily choose the lowest-carbon-intensity feasible
//                      site, ignoring energy-efficiency differences.
//  * CarbonEdge      — minimize carbon = energy x intensity, including the
//                      server-activation term (Eq. 6/7).
//  * Multi-objective — alpha x normalized energy + (1 - alpha) x normalized
//                      carbon (Eq. 8, Section 6.4). alpha = 0 is CarbonEdge,
//                      alpha = 1 is Energy-aware.
#pragma once

#include <cstdint>
#include <string>

namespace carbonedge::core {

enum class PolicyKind : std::uint8_t {
  kLatencyAware = 0,
  kEnergyAware,
  kIntensityAware,
  kCarbonEdge,
  kMultiObjective,
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kCarbonEdge;
  /// Eq. 8 weighting factor; only used by kMultiObjective.
  double alpha = 0.0;

  [[nodiscard]] static PolicyConfig latency_aware() { return {PolicyKind::kLatencyAware, 0.0}; }
  [[nodiscard]] static PolicyConfig energy_aware() { return {PolicyKind::kEnergyAware, 0.0}; }
  [[nodiscard]] static PolicyConfig intensity_aware() {
    return {PolicyKind::kIntensityAware, 0.0};
  }
  [[nodiscard]] static PolicyConfig carbon_edge() { return {PolicyKind::kCarbonEdge, 0.0}; }
  [[nodiscard]] static PolicyConfig multi_objective(double alpha) {
    return {PolicyKind::kMultiObjective, alpha};
  }
};

[[nodiscard]] const char* to_string(PolicyKind kind) noexcept;
[[nodiscard]] std::string describe(const PolicyConfig& config);

}  // namespace carbonedge::core
