// Placement problem construction: turns cluster state + carbon forecasts +
// latency matrix + a policy into a solver::AssignmentProblem (the Eq. 1-7
// model after Algorithm 1's latency pre-filtering).
#pragma once

#include <vector>

#include "carbon/caltime.hpp"
#include "carbon/service.hpp"
#include "core/policy.hpp"
#include "geo/latency.hpp"
#include "sim/datacenter.hpp"
#include "sim/workload.hpp"
#include "solver/assignment.hpp"

namespace carbonedge::core {

/// Inputs shared by every placement call of one epoch.
struct PlacementInput {
  sim::EdgeCluster* cluster = nullptr;
  const geo::LatencyProvider* latency = nullptr;      // site x site one-way ms
  const carbon::CarbonIntensityService* carbon = nullptr;
  carbon::HourIndex now = 0;
  std::uint32_t forecast_horizon_hours = 1;  // window for the mean forecast Ī_j
  double epoch_hours = 1.0;                  // energy integration window
};

/// The built problem plus the physical matrices behind the policy costs,
/// kept for accounting and for the multi-objective normalization.
struct BuiltProblem {
  solver::AssignmentProblem problem{0, 0, 1};
  std::vector<sim::EdgeCluster::ServerRef> servers;  // column order
  // Row-major [app x server] physical quantities (kInfinity where
  // infeasible): per-epoch dynamic energy (Wh), operational carbon (g), and
  // network round-trip (ms).
  std::vector<double> energy_wh;
  std::vector<double> carbon_g;
  std::vector<double> rtt_ms;
  // Per-server (column) activation quantities for initially-off servers.
  std::vector<double> activation_energy_wh;
  std::vector<double> activation_carbon_g;
  std::vector<double> mean_intensity;  // Ī per server column

  [[nodiscard]] std::size_t index(std::size_t app, std::size_t server) const noexcept {
    return app * servers.size() + server;
  }
};

/// Build the assignment problem for a batch of applications under `policy`.
/// Resource dimensions: device memory (MB) and compute busy-fraction, taken
/// from each server's *remaining* capacity (incremental placement).
[[nodiscard]] BuiltProblem build_problem(const PlacementInput& input,
                                         std::span<const sim::Application> apps,
                                         const PolicyConfig& policy);

}  // namespace carbonedge::core
