#include "core/placement_service.hpp"

#include <stdexcept>

namespace carbonedge::core {

PlacementService::PlacementService(PolicyConfig policy, solver::AssignmentOptions options)
    : policy_(policy), options_(options) {}

PlacementResult PlacementService::place(const PlacementInput& input,
                                        std::span<const sim::Application> apps) {
  PlacementResult result;
  if (apps.empty()) return result;

  // lint: nondeterminism-ok(telemetry-only solve timing; feeds solve_time_ms, never a decision)
  const auto t0 = std::chrono::steady_clock::now();
  BuiltProblem built = build_problem(input, apps, policy_);
  const solver::AssignmentSolution solution = solver::solve_auto(built.problem, options_);
  // lint: nondeterminism-ok(telemetry-only solve timing; feeds solve_time_ms, never a decision)
  const auto t1 = std::chrono::steady_clock::now();
  result.solve_time_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.objective = solution.total_cost;
  result.solver_stats = solution.stats;
  result.used_exact_solver = solution.stats.heuristic_shards == 0;

  // Commit: power on activated servers first (Eq. 5), then host.
  for (std::size_t j = 0; j < built.servers.size(); ++j) {
    sim::EdgeServer& server = *built.servers[j].server;
    if (!server.powered_on() && !solution.powered_on.empty() && solution.powered_on[j]) {
      // Only power on servers that actually received load.
      bool used = false;
      for (std::size_t i = 0; i < apps.size(); ++i) {
        if (solution.assignment[i] == j) {
          used = true;
          break;
        }
      }
      if (used) {
        server.set_powered_on(true);
        result.activated.push_back(j);
      }
    }
  }

  for (std::size_t i = 0; i < apps.size(); ++i) {
    const std::size_t j = solution.assignment[i];
    if (j == solver::kUnassigned) {
      result.rejected.push_back(apps[i].id);
      continue;
    }
    const auto& ref = built.servers[j];
    if (!ref.server->can_host(apps[i].model, apps[i].rps)) {
      // Defense in depth: heuristic solutions are validated upstream, but a
      // placement that no longer fits (e.g. float-boundary drift) is
      // rejected rather than corrupting server state.
      result.rejected.push_back(apps[i].id);
      continue;
    }
    ref.server->host(sim::AppInstance{apps[i].id, apps[i].model, apps[i].rps});
    PlacementDecision decision;
    decision.app = apps[i].id;
    decision.site = ref.site;
    decision.server = ref.server->id();
    const std::size_t cell = built.index(i, j);
    decision.rtt_ms = built.rtt_ms[cell];
    decision.energy_wh = built.energy_wh[cell];
    decision.carbon_g = built.carbon_g[cell];
    result.decisions.push_back(decision);
  }
  return result;
}

}  // namespace carbonedge::core
