#include "core/placement_service.hpp"

#include <stdexcept>

#include "obs/clock.hpp"
#include "obs/span.hpp"

namespace carbonedge::core {

namespace {

obs::Phase& place_phase() {
  static obs::Phase phase("core.place");
  return phase;
}

}  // namespace

PlacementService::PlacementService(PolicyConfig policy, solver::AssignmentOptions options)
    : policy_(policy), options_(options) {}

PlacementResult PlacementService::place(const PlacementInput& input,
                                        std::span<const sim::Application> apps) {
  PlacementResult result;
  if (apps.empty()) return result;

  const obs::Span span(place_phase());
  // Solve timing through the sanctioned obs::Clock shim: telemetry only —
  // it feeds solve_time_ms and the span counters, never a decision.
  const std::uint64_t t0_ns = obs::now_ns();
  BuiltProblem built = build_problem(input, apps, policy_);
  const solver::AssignmentSolution solution = solver::solve_auto(built.problem, options_);
  const std::uint64_t t1_ns = obs::now_ns();
  result.solve_time_ms = static_cast<double>(t1_ns - t0_ns) / 1e6;
  result.objective = solution.total_cost;
  result.solver_stats = solution.stats;
  result.used_exact_solver = solution.stats.heuristic_shards == 0;

  // Commit: power on activated servers first (Eq. 5), then host.
  for (std::size_t j = 0; j < built.servers.size(); ++j) {
    sim::EdgeServer& server = *built.servers[j].server;
    if (!server.powered_on() && !solution.powered_on.empty() && solution.powered_on[j]) {
      // Only power on servers that actually received load.
      bool used = false;
      for (std::size_t i = 0; i < apps.size(); ++i) {
        if (solution.assignment[i] == j) {
          used = true;
          break;
        }
      }
      if (used) {
        server.set_powered_on(true);
        result.activated.push_back(j);
      }
    }
  }

  for (std::size_t i = 0; i < apps.size(); ++i) {
    const std::size_t j = solution.assignment[i];
    if (j == solver::kUnassigned) {
      result.rejected.push_back(apps[i].id);
      continue;
    }
    const auto& ref = built.servers[j];
    if (!ref.server->can_host(apps[i].model, apps[i].rps)) {
      // Defense in depth: heuristic solutions are validated upstream, but a
      // placement that no longer fits (e.g. float-boundary drift) is
      // rejected rather than corrupting server state.
      result.rejected.push_back(apps[i].id);
      continue;
    }
    ref.server->host(sim::AppInstance{apps[i].id, apps[i].model, apps[i].rps});
    PlacementDecision decision;
    decision.app = apps[i].id;
    decision.site = ref.site;
    decision.server = ref.server->id();
    const std::size_t cell = built.index(i, j);
    decision.rtt_ms = built.rtt_ms[cell];
    decision.energy_wh = built.energy_wh[cell];
    decision.carbon_g = built.carbon_g[cell];
    result.decisions.push_back(decision);
  }
  return result;
}

}  // namespace carbonedge::core
