// Placement service — Algorithm 1 (CarbonEdge incremental placement).
//
// Per batch of arriving applications: compute application-server latencies,
// filter infeasible servers, read server telemetry (capacity, power state,
// base power) and the mean forecast intensity Ī, solve the Eq. 7
// optimization, and commit placements + power-state transitions.
#pragma once

#include "core/policy.hpp"
#include "core/problem.hpp"
#include "sim/server.hpp"
#include "sim/workload.hpp"
#include "solver/assignment.hpp"

namespace carbonedge::core {

struct PlacementDecision {
  sim::AppId app = sim::kNoApp;
  std::size_t site = 0;
  std::uint32_t server = 0;  // server id within the site
  double rtt_ms = 0.0;
  double energy_wh = 0.0;  // expected per-epoch dynamic energy
  double carbon_g = 0.0;   // expected per-epoch operational carbon (Ī-based)
};

struct PlacementResult {
  std::vector<PlacementDecision> decisions;
  std::vector<sim::AppId> rejected;     // no feasible server
  std::vector<std::size_t> activated;   // flat server columns powered on
  double objective = 0.0;
  double solve_time_ms = 0.0;           // Section 6.5 decision latency
  /// Per-shard solve telemetry: how many connected components the batch
  /// split into and which path (exact MILP / flow / heuristic) solved each.
  solver::SolveStats solver_stats;
  /// Every shard was answered by an exact method (MILP or min-cost flow);
  /// false as soon as any component fell through to greedy + local search.
  bool used_exact_solver = false;
};

class PlacementService {
 public:
  explicit PlacementService(PolicyConfig policy, solver::AssignmentOptions options = {});

  /// Run Algorithm 1 on one batch and commit the outcome to the cluster
  /// (hosts the applications, powers on activated servers).
  PlacementResult place(const PlacementInput& input, std::span<const sim::Application> apps);

  [[nodiscard]] const PolicyConfig& policy() const noexcept { return policy_; }
  void set_policy(PolicyConfig policy) noexcept { policy_ = policy; }

 private:
  PolicyConfig policy_;
  solver::AssignmentOptions options_;
};

}  // namespace carbonedge::core
