// Trace-driven edge simulation engine (the paper's CarbonEdge simulator,
// Section 5.2): drives a cluster through placement epochs against carbon
// and latency traces, with application arrivals/departures, optional
// periodic re-optimization (migration), power management, and telemetry.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>

#include "carbon/caltime.hpp"
#include "carbon/service.hpp"
#include "core/orchestrator.hpp"
#include "core/placement_service.hpp"
#include "core/policy.hpp"
#include "core/power_manager.hpp"
#include "geo/latency.hpp"
#include "sim/datacenter.hpp"
#include "sim/server.hpp"
#include "sim/telemetry.hpp"
#include "sim/workload.hpp"
#include "solver/assignment.hpp"
#include "util/parallelism.hpp"
#include "util/random.hpp"

namespace carbonedge::util {
class ThreadPool;
}

namespace carbonedge::core {

/// Data-movement cost model for migrations (the paper's Section 9 future
/// work): moving an application transfers its state_size_mb across the
/// network at an energy cost per gigabyte; the resulting emissions are
/// charged to the epoch at the origin zone's intensity.
struct MigrationConfig {
  /// End-to-end network+storage energy per GB moved (NICs, switches,
  /// transit; literature values run 20-140 Wh/GB for WAN paths).
  double network_energy_wh_per_gb = 60.0;
  /// When true, re-optimization only moves an application if its predicted
  /// carbon saving over `benefit_horizon_epochs` exceeds the migration
  /// emissions by `hysteresis` (guards against churn).
  bool cost_aware = false;
  double benefit_horizon_epochs = 24.0;
  double hysteresis = 1.2;
};

/// Crash-failure injection: each powered-on server fails independently per
/// epoch with probability 1/mtbf_epochs, drops its applications (the engine
/// redeploys them through the placement service, Figure 6 step 1), and
/// returns to service after repair_epochs.
struct FailureConfig {
  double mtbf_epochs = 0.0;  // 0 disables failure injection
  std::uint32_t repair_epochs = 8;
  std::uint64_t seed = 0xFA11ED5EULL;
};

struct SimulationConfig {
  PolicyConfig policy;
  carbon::HourIndex start_hour = 0;
  std::uint32_t epochs = 24;
  double epoch_hours = 1.0;
  sim::WorkloadParams workload;
  std::uint32_t forecast_horizon_hours = 1;
  PowerManagerConfig power;
  /// Re-place every live application every N epochs (0 = placements are
  /// sticky for an app's lifetime). The seasonality experiments migrate
  /// monthly.
  std::uint32_t reoptimize_every = 0;
  /// Re-optimize at the first epoch of each calendar month instead of a
  /// fixed cadence (aligned with carbon::month_start_hour/days_in_month, so
  /// migration windows match the monthly reporting windows; a fixed
  /// "31 * 8 epochs" cadence drifts off-calendar from February onward).
  /// Takes precedence over reoptimize_every when set.
  bool reoptimize_monthly = false;
  MigrationConfig migration;
  FailureConfig failures;
  solver::AssignmentOptions solver_options;
  /// When true, site energy includes base power of powered-on servers; when
  /// false, accounting is application-attributable (dynamic energy plus
  /// activation), matching the paper's per-application emission reporting.
  bool account_base_power = false;
};

struct SimulationResult {
  sim::Telemetry telemetry;
  double total_solve_ms = 0.0;
  double mean_solve_ms = 0.0;
  double mean_deploy_ms = 0.0;
  std::uint64_t apps_placed = 0;
  std::uint64_t apps_rejected = 0;
  std::uint64_t migrations = 0;           // re-optimization moves applied
  std::uint64_t migrations_skipped = 0;   // vetoed by the cost-aware filter
  double migration_energy_wh = 0.0;       // data-movement energy
  double migration_carbon_g = 0.0;        // data-movement emissions
  std::uint64_t server_failures = 0;
  std::uint64_t apps_redeployed = 0;      // re-placed after a crash
  std::uint64_t apps_deferred = 0;        // temporally shifted arrivals
  /// Deferred arrivals whose start was still pending when the simulated
  /// horizon ran out — never placed nor rejected, and without this counter
  /// placed+rejected totals would not reconcile with arrivals. Excludes
  /// displaced live apps awaiting re-placement (already in apps_placed).
  std::uint64_t apps_expired_deferred = 0;
  /// Epochs of downtime served by displaced live applications: a rejected
  /// migrant or crash victim that found no server this epoch survives in
  /// the retry queue, but it hosts no requests until it lands again. Each
  /// epoch spent parked adds one.
  std::uint64_t app_downtime_epochs = 0;
};

/// An externally injected server crash (the serving mode's failure events).
/// Applied ahead of the engine's own MTBF sampling, through the same
/// displacement/repair path as a drawn failure.
struct ServerFailureEvent {
  std::size_t site = 0;
  std::uint32_t server_id = 0;
};

/// The epoch state machine extracted from EdgeSimulation::run: one instance
/// holds a run's full mutable state (cluster, hosted/deferred/displaced
/// queues, failure stream, telemetry) and advances one epoch per step().
///
/// Two drivers exist: EdgeSimulation::run feeds it WorkloadGenerator
/// arrivals on a fixed horizon (the batch engine), and serve::EventLoop
/// feeds it event-stream arrivals bucketed into epoch-aligned windows (the
/// streaming engine). Both run the *same* epoch body, which is what makes
/// the serve replay oracle exact: an epoch-aligned replay of the same
/// arrival stream reproduces the batch counters bit for bit.
///
/// Threading matches EdgeSimulation::run (see its class comment): the
/// engine leases lanes at construction and shards pure per-item work, all
/// RNG draws and state mutation on the stepping thread.
class SimulationEngine {
 public:
  /// `cluster` is the initial state (a pristine copy, never shared).
  /// `latency` and `carbon` must outlive the engine.
  SimulationEngine(sim::EdgeCluster cluster, const carbon::CarbonIntensityService& carbon,
                   const geo::LatencyProvider& latency, const SimulationConfig& config,
                   util::ParallelismBudget* budget = nullptr, std::size_t lane_cap = 0);
  ~SimulationEngine();
  SimulationEngine(const SimulationEngine&) = delete;
  SimulationEngine& operator=(const SimulationEngine&) = delete;

  struct StepOptions {
    /// Overrides the config's re-optimization cadence for this epoch when
    /// set (the serving mode's event-driven trigger); unset keeps the
    /// calendar/fixed-period decision. Epoch 0 never migrates either way.
    std::optional<bool> migrate;
    /// Crashes injected from the event stream, applied in span order.
    std::span<const ServerFailureEvent> failures;
  };

  /// Advance one epoch with the given arrival batch (the epoch's index is
  /// next_epoch()). Throws std::logic_error once the configured horizon is
  /// exhausted.
  void step(std::vector<sim::Application> arrivals, const StepOptions& options = {});

  /// Epoch index the next step() will run (== steps taken so far).
  [[nodiscard]] std::uint32_t next_epoch() const noexcept { return epoch_; }
  [[nodiscard]] carbon::HourIndex hour_of(std::uint32_t epoch) const noexcept;
  [[nodiscard]] const SimulationConfig& config() const noexcept { return config_; }
  [[nodiscard]] const sim::EdgeCluster& cluster() const noexcept { return cluster_; }
  /// Running counters and telemetry (one EpochRecord per completed step).
  [[nodiscard]] const SimulationResult& partial() const noexcept { return result_; }
  /// Mutable telemetry access (the serve loop attaches its per-window
  /// response-histogram sink here; never needed by the batch driver).
  [[nodiscard]] sim::Telemetry& telemetry() noexcept { return result_.telemetry; }

  /// Final accounting (expired-deferred reconciliation, solve/deploy
  /// means). The engine is spent afterwards — step() must not be called.
  [[nodiscard]] SimulationResult finish();

 private:
  struct HostedApp {
    sim::Application app;
    std::size_t site = 0;
    std::uint32_t server = 0;
  };

  template <typename Body>
  void parallel_items(std::size_t count, const Body& body);
  [[nodiscard]] sim::EdgeServer& find_server(std::size_t site, std::uint32_t server_id);
  /// Crash one server: displace its apps into `batch`, mark it failed, and
  /// schedule the repair. Shared by drawn and injected failures.
  void crash_server(std::size_t site, sim::EdgeServer& server, std::uint32_t epoch,
                    std::vector<sim::Application>& batch, std::uint32_t& epoch_failures);
  void snapshot_hosted();

  SimulationConfig config_;
  sim::EdgeCluster cluster_;
  const carbon::CarbonIntensityService* carbon_;
  const geo::LatencyProvider* latency_;
  util::ParallelismBudget::Lease lease_;
  std::size_t lanes_ = 1;
  std::unique_ptr<util::ThreadPool> shard_pool_;
  PlacementService service_;
  PowerManager power_manager_;
  Orchestrator orchestrator_;
  util::Rng failure_rng_;
  SimulationResult result_;
  std::uint32_t epoch_ = 0;
  bool finished_ = false;

  std::unordered_map<sim::AppId, HostedApp> hosted_;
  // (site, server id) -> epoch at which the server comes back.
  std::map<std::pair<std::size_t, std::uint32_t>, std::uint32_t> under_repair_;
  // Temporally flexible applications waiting for a low-intensity start.
  std::vector<sim::Application> deferred_;
  // Formerly-hosted applications that lost their server — bumped by a
  // rejected re-optimization or orphaned by a crash — awaiting re-placement;
  // they retry through the deferral queue and must never be counted as
  // fresh rejections. Maps the app to the site it last ran on, for
  // migration accounting when it lands again; kNoAccountedSite marks crash
  // victims, whose redeployment is not a data-movement migration.
  std::unordered_map<sim::AppId, std::size_t> displaced_from_;

  // Reused shard buffers (allocated once, cleared per epoch). The hosted
  // snapshot materializes the map's iteration order — identical for every
  // lane count because all map mutations happen on the stepping thread —
  // so sharded per-app work can index it and serial folds can replay it.
  std::vector<std::pair<sim::AppId, const HostedApp*>> hosted_snapshot_;
  std::vector<std::vector<std::uint8_t>> failure_draws_;
  std::vector<std::uint8_t> defer_start_;
  std::vector<std::uint8_t> migration_veto_;
  std::vector<sim::AppEpochSample> app_samples_;
};

/// Owns a pristine cluster copy; every run() starts from that state, so the
/// same simulation object can evaluate multiple policies on identical
/// workloads (the workload stream depends only on the config seed).
///
/// Threading: run() shards the embarrassingly parallel per-site work of
/// every epoch — failure-stream sampling, deferral forecast evaluation,
/// the cost-aware migration scan, per-server energy/carbon accounting, and
/// telemetry accumulation — across worker lanes leased from the process
/// ParallelismBudget (CARBONEDGE_THREADS), and lends those lanes to the
/// placement solver's component dispatch. Every sharded section computes
/// pure per-item values into disjoint slots and reduces them serially in a
/// fixed order, with all RNG draws and state mutation on the coordinating
/// thread, so a run's result is byte-identical for every thread count —
/// including the fully serial engine.
class EdgeSimulation {
 public:
  /// `latency_band_one_way_ms == 0` builds the dense LatencyMatrix over the
  /// cluster's sites; a positive band builds the sparse BandedLatencyMatrix
  /// instead (pairs beyond the band are never-feasible), which is what lets
  /// 1000+-site geographies skip the n^2 materialization. The band is a
  /// construction-time property of the geography, not a per-run config
  /// knob, because the serving mode builds engines from latency() directly.
  EdgeSimulation(sim::EdgeCluster cluster, const carbon::CarbonIntensityService& carbon,
                 geo::LatencyModel latency_model = geo::LatencyModel{},
                 double latency_band_one_way_ms = 0.0);

  [[nodiscard]] SimulationResult run(const SimulationConfig& config);

  /// Lease intra-run worker lanes from `budget` instead of the process-wide
  /// util::global_budget() (test injection; nullptr restores the default).
  void set_parallelism_budget(util::ParallelismBudget* budget) noexcept { budget_ = budget; }
  /// Cap the lanes one run() may lease (0 = whatever the budget can give).
  /// ScenarioRunner sets this to the budget's fair per-cell share so a
  /// narrow grid splits leftover workers across cells instead of letting
  /// the first cell monopolize them.
  void set_lane_cap(std::size_t lanes) noexcept { lane_cap_ = lanes; }

  [[nodiscard]] const geo::LatencyProvider& latency() const noexcept { return *latency_; }
  [[nodiscard]] const sim::EdgeCluster& pristine_cluster() const noexcept { return pristine_; }
  [[nodiscard]] const carbon::CarbonIntensityService& carbon_service() const noexcept {
    return *carbon_;
  }

 private:
  struct HostedApp {
    sim::Application app;
    std::size_t site = 0;
    std::uint32_t server = 0;
  };

  sim::EdgeCluster pristine_;
  const carbon::CarbonIntensityService* carbon_;
  std::unique_ptr<const geo::LatencyProvider> latency_;
  util::ParallelismBudget* budget_ = nullptr;  // nullptr = util::global_budget()
  std::size_t lane_cap_ = 0;
};

/// Convenience: run one config for each policy on identical workloads and
/// return results in the same order.
[[nodiscard]] std::vector<SimulationResult> run_policies(
    EdgeSimulation& simulation, const SimulationConfig& base_config,
    const std::vector<PolicyConfig>& policies);

/// Carbon saving of `candidate` relative to `baseline` (fraction in [0,1],
/// negative if the candidate emits more).
[[nodiscard]] double carbon_saving(const SimulationResult& baseline,
                                   const SimulationResult& candidate);

/// Request-weighted mean RTT increase of `candidate` over `baseline` (ms).
[[nodiscard]] double latency_increase_ms(const SimulationResult& baseline,
                                         const SimulationResult& candidate);

}  // namespace carbonedge::core
