#include "core/power_manager.hpp"

namespace carbonedge::core {

std::size_t PowerManager::sweep(sim::EdgeCluster& cluster) const {
  if (!config_.enabled) return 0;
  std::size_t powered_off = 0;
  for (sim::EdgeDataCenter& site : cluster.sites()) {
    std::size_t on_count = 0;
    for (const sim::EdgeServer& server : site.servers()) {
      if (server.powered_on()) ++on_count;
    }
    for (sim::EdgeServer& server : site.servers()) {
      if (on_count <= config_.min_on_per_site) break;
      if (server.powered_on() && server.app_count() == 0) {
        server.set_powered_on(false);
        --on_count;
        ++powered_off;
      }
    }
  }
  return powered_off;
}

}  // namespace carbonedge::core
