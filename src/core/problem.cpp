#include "core/problem.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace carbonedge::core {
namespace {

using solver::kInfinity;

/// Min/max over finite entries of a matrix (for Eq. 8 normalization).
std::pair<double, double> finite_range(const std::vector<double>& values) {
  double lo = kInfinity;
  double hi = -kInfinity;
  for (const double v : values) {
    if (v >= kInfinity) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo > hi) return {0.0, 0.0};
  return {lo, hi};
}

}  // namespace

BuiltProblem build_problem(const PlacementInput& input, std::span<const sim::Application> apps,
                           const PolicyConfig& policy) {
  if (input.cluster == nullptr || input.latency == nullptr || input.carbon == nullptr) {
    throw std::invalid_argument("placement input must supply cluster, latency, and carbon");
  }

  BuiltProblem built;
  built.servers = input.cluster->all_servers();
  const std::size_t num_apps = apps.size();
  const std::size_t num_servers = built.servers.size();
  const std::size_t cells = num_apps * num_servers;

  built.energy_wh.assign(cells, kInfinity);
  built.carbon_g.assign(cells, kInfinity);
  built.rtt_ms.assign(cells, kInfinity);
  built.activation_energy_wh.assign(num_servers, 0.0);
  built.activation_carbon_g.assign(num_servers, 0.0);
  built.mean_intensity.assign(num_servers, 0.0);

  // Per-column mean forecast intensity Ī_j and activation terms.
  for (std::size_t j = 0; j < num_servers; ++j) {
    const auto& ref = built.servers[j];
    const sim::EdgeDataCenter& site = input.cluster->sites()[ref.site];
    const double intensity =
        input.carbon->mean_forecast(site.zone(), input.now, input.forecast_horizon_hours);
    built.mean_intensity[j] = intensity;
    if (!ref.server->powered_on()) {
      const double energy = ref.server->config().base_power_w * input.epoch_hours;  // Wh
      built.activation_energy_wh[j] = energy;
      built.activation_carbon_g[j] = energy / 1000.0 * intensity;
    }
  }

  // Physical matrices over feasible (latency + model-support + fit) pairs.
  // Per-app site RTTs are gathered once ahead of the server loop: a banded
  // provider enumerates only the origin's neighborhood (every other site is
  // +inf, exactly what the Eq. 2 filter drops), so the inner loop does an
  // array lookup instead of a provider query per server — and the build
  // stops scaling with n^2 site pairs under sparse geographies.
  const std::size_t num_sites = input.cluster->sites().size();
  std::vector<double> site_rtt(num_sites, kInfinity);
  for (std::size_t i = 0; i < num_apps; ++i) {
    const sim::Application& app = apps[i];
    const std::span<const std::uint32_t> near = input.latency->neighbors(app.origin_site);
    if (near.empty()) {
      for (std::size_t s = 0; s < num_sites; ++s) {
        site_rtt[s] = 2.0 * input.latency->one_way_ms(app.origin_site, s);
      }
    } else {
      std::fill(site_rtt.begin(), site_rtt.end(), kInfinity);
      for (const std::uint32_t s : near) {
        site_rtt[s] = 2.0 * input.latency->one_way_ms(app.origin_site, s);
      }
    }
    for (std::size_t j = 0; j < num_servers; ++j) {
      const auto& ref = built.servers[j];
      if (ref.server->failed()) continue;  // crashed servers take no load
      const double rtt = site_rtt[ref.site];
      if (rtt > app.latency_limit_rtt_ms + 1e-9) continue;  // Eq. 2 filter
      const sim::ProfileResult prof = sim::profile_of(app.model, ref.server->device());
      if (!prof.supported) continue;
      const std::size_t cell = built.index(i, j);
      const double watts = prof.profile.energy_j * app.rps;  // dynamic draw
      const double energy = watts * input.epoch_hours;       // Wh over the epoch
      built.energy_wh[cell] = energy;
      built.carbon_g[cell] = energy / 1000.0 * built.mean_intensity[j];
      built.rtt_ms[cell] = rtt;
    }
  }

  // Assemble the assignment problem: 2 resources (memory MB, compute).
  solver::AssignmentProblem problem(num_apps, num_servers, 2);
  for (std::size_t j = 0; j < num_servers; ++j) {
    const sim::EdgeServer& server = *built.servers[j].server;
    problem.set_capacity(j, 0, server.memory_free_mb());
    problem.set_capacity(j, 1, server.compute_free());
    problem.set_initially_on(j, server.powered_on());
  }
  for (std::size_t i = 0; i < num_apps; ++i) {
    const sim::Application& app = apps[i];
    for (std::size_t j = 0; j < num_servers; ++j) {
      if (built.rtt_ms[built.index(i, j)] >= kInfinity) continue;
      const sim::EdgeServer& server = *built.servers[j].server;
      const sim::WorkloadProfile prof = sim::require_profile(app.model, server.device());
      problem.set_demand(i, j, 0, prof.memory_mb);
      problem.set_demand(i, j, 1, sim::compute_demand_per_rps(app.model, server.device()) * app.rps);
    }
  }

  // Policy-specific objective.
  const auto [energy_lo, energy_hi] = finite_range(built.energy_wh);
  const auto [carbon_lo, carbon_hi] = finite_range(built.carbon_g);
  for (std::size_t i = 0; i < num_apps; ++i) {
    for (std::size_t j = 0; j < num_servers; ++j) {
      const std::size_t cell = built.index(i, j);
      if (built.rtt_ms[cell] >= kInfinity) continue;
      double cost = 0.0;
      switch (policy.kind) {
        case PolicyKind::kLatencyAware:
          cost = built.rtt_ms[cell];
          break;
        case PolicyKind::kEnergyAware:
          cost = built.energy_wh[cell];
          break;
        case PolicyKind::kIntensityAware:
          cost = built.mean_intensity[j];
          break;
        case PolicyKind::kCarbonEdge:
          cost = built.carbon_g[cell];
          break;
        case PolicyKind::kMultiObjective: {
          const double e = util::minmax_normalize(built.energy_wh[cell], energy_lo, energy_hi);
          const double c = util::minmax_normalize(built.carbon_g[cell], carbon_lo, carbon_hi);
          cost = policy.alpha * e + (1.0 - policy.alpha) * c;
          break;
        }
      }
      problem.set_cost(i, j, cost);
    }
  }
  // Activation costs in the policy's own units (Eq. 6's second term for
  // CarbonEdge; energy for Energy-aware; normalized blend for Eq. 8).
  for (std::size_t j = 0; j < num_servers; ++j) {
    double activation = 0.0;
    switch (policy.kind) {
      case PolicyKind::kLatencyAware:
        activation = 0.0;  // latency policy is indifferent to power state
        break;
      case PolicyKind::kEnergyAware:
        activation = built.activation_energy_wh[j];
        break;
      case PolicyKind::kIntensityAware:
        activation = 0.0;  // greedy on intensity only
        break;
      case PolicyKind::kCarbonEdge:
        activation = built.activation_carbon_g[j];
        break;
      case PolicyKind::kMultiObjective: {
        const double e =
            util::minmax_normalize(built.activation_energy_wh[j], energy_lo, energy_hi);
        const double c =
            util::minmax_normalize(built.activation_carbon_g[j], carbon_lo, carbon_hi);
        activation = policy.alpha * e + (1.0 - policy.alpha) * c;
        break;
      }
    }
    problem.set_activation_cost(j, activation);
  }

  built.problem = std::move(problem);
  return built;
}

}  // namespace carbonedge::core
