// Edge orchestrator: the deployment path of the prototype (Section 5.1's
// Sinfonia integration). After the placement service decides, the
// orchestrator executes a deployment "recipe" per application — generate
// manifests, transfer, start, route — and reports the end-to-end deployment
// latency the paper measures in Section 6.5 (~1 s per application).
//
// This is a faithful state machine over simulated step latencies rather
// than a Kubernetes client (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/placement_service.hpp"
#include "sim/server.hpp"
#include "util/random.hpp"

namespace carbonedge::core {

enum class DeployPhase : std::uint8_t {
  kPending = 0,
  kRecipeGenerated,   // Kubernetes manifests + helm values rendered
  kImagesPulled,      // container layers present on the target
  kStarted,           // pods running
  kRouted,            // client informed of the destination address
  kFailed,
};

[[nodiscard]] const char* to_string(DeployPhase phase) noexcept;

struct Deployment {
  sim::AppId app = sim::kNoApp;
  std::size_t site = 0;
  std::uint32_t server = 0;
  DeployPhase phase = DeployPhase::kPending;
  double latency_ms = 0.0;  // cumulative time spent in the pipeline
};

struct OrchestratorConfig {
  // Mean simulated step latencies (ms); jitter is +/-20% deterministic.
  double recipe_ms = 45.0;
  double image_pull_ms = 520.0;  // warm registry cache
  double start_ms = 380.0;
  double route_ms = 60.0;
  std::uint64_t seed = 0x0Bc4e57aULL;
};

class Orchestrator {
 public:
  explicit Orchestrator(OrchestratorConfig config = {});

  /// Run the deployment pipeline for every decision of a placement round.
  /// Returns per-application deployment records.
  std::vector<Deployment> deploy(const PlacementResult& result);

  /// Mean end-to-end deployment latency across everything deployed so far.
  [[nodiscard]] double mean_deploy_ms() const noexcept;
  [[nodiscard]] std::uint64_t total_deployed() const noexcept { return total_deployed_; }

 private:
  OrchestratorConfig config_;
  util::Rng rng_;
  double total_latency_ms_ = 0.0;
  std::uint64_t total_deployed_ = 0;
};

}  // namespace carbonedge::core
