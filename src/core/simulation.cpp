#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "carbon/caltime.hpp"
#include "util/random.hpp"

namespace carbonedge::core {

EdgeSimulation::EdgeSimulation(sim::EdgeCluster cluster,
                               const carbon::CarbonIntensityService& carbon,
                               geo::LatencyModel latency_model)
    : pristine_(std::move(cluster)), carbon_(&carbon) {
  const std::vector<geo::City> cities = pristine_.cities();
  latency_ = geo::LatencyMatrix(latency_model, cities);
  for (const geo::City& city : cities) {
    if (!carbon_->has_zone(city.name)) {
      throw std::invalid_argument("carbon service has no trace for zone " + city.name);
    }
  }
}

SimulationResult EdgeSimulation::run(const SimulationConfig& config) {
  sim::EdgeCluster cluster = pristine_;  // fresh state per run
  sim::WorkloadGenerator generator(config.workload, cluster);
  PlacementService service(config.policy, config.solver_options);
  PowerManager power_manager(config.power);
  Orchestrator orchestrator;
  util::Rng failure_rng(config.failures.seed);

  SimulationResult result;
  std::unordered_map<sim::AppId, HostedApp> hosted;
  // (site, server id) -> epoch at which the server comes back.
  std::map<std::pair<std::size_t, std::uint32_t>, std::uint32_t> under_repair;
  // Temporally flexible applications waiting for a low-intensity start.
  std::vector<sim::Application> deferred;
  // Formerly-hosted applications that lost their server — bumped by a
  // rejected re-optimization or orphaned by a crash — awaiting re-placement;
  // they retry through the deferral queue and must never be counted as
  // fresh rejections. Maps the app to the site it last ran on, for
  // migration accounting when it lands again; kNoAccountedSite marks crash
  // victims, whose redeployment is not a data-movement migration.
  constexpr std::size_t kNoAccountedSite = static_cast<std::size_t>(-1);
  std::unordered_map<sim::AppId, std::size_t> displaced_from;

  const auto find_server = [&](std::size_t site, std::uint32_t server_id) -> sim::EdgeServer& {
    for (sim::EdgeServer& server : cluster.sites()[site].servers()) {
      if (server.id() == server_id) return server;
    }
    throw std::logic_error("hosted app references unknown server");
  };

  // Expected per-epoch operational carbon of `app` on `server` at `hour`.
  const auto carbon_rate_g = [&](const sim::Application& app, const sim::EdgeServer& server,
                                 const std::string& zone, carbon::HourIndex hour) {
    const sim::ProfileResult prof = sim::profile_of(app.model, server.device());
    if (!prof.supported) return -1.0;
    const double energy_wh = prof.profile.energy_j * app.rps * config.epoch_hours;
    return energy_wh / 1000.0 *
           carbon_->mean_forecast(zone, hour, config.forecast_horizon_hours);
  };

  // Migration data-movement cost of moving `app` out of `zone` at `hour`.
  const auto migration_cost = [&](const sim::Application& app, const std::string& zone,
                                  carbon::HourIndex hour) {
    const double energy_wh =
        app.state_size_mb / 1024.0 * config.migration.network_energy_wh_per_gb;
    const double carbon_g =
        energy_wh / 1000.0 *
        carbon_->mean_forecast(zone, hour, config.forecast_horizon_hours);
    return std::pair{energy_wh, carbon_g};
  };

  const auto hour_at = [&](std::uint32_t epoch) {
    return static_cast<carbon::HourIndex>(
        config.start_hour + static_cast<carbon::HourIndex>(
                                std::floor(static_cast<double>(epoch) * config.epoch_hours)));
  };

  for (std::uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    const carbon::HourIndex hour = hour_at(epoch);

    std::uint32_t epoch_failures = 0;
    std::uint32_t epoch_migrations = 0;
    double epoch_migration_energy = 0.0;
    double epoch_migration_carbon = 0.0;
    std::vector<sim::Application> batch;

    // 1. Repairs, then fresh failures.
    for (auto it = under_repair.begin(); it != under_repair.end();) {
      if (epoch >= it->second) {
        sim::EdgeServer& server = find_server(it->first.first, it->first.second);
        server.set_failed(false);
        server.set_powered_on(true);
        it = under_repair.erase(it);
      } else {
        ++it;
      }
    }
    if (config.failures.mtbf_epochs > 0.0) {
      const double fail_p = 1.0 / config.failures.mtbf_epochs;
      for (std::size_t site = 0; site < cluster.size(); ++site) {
        for (sim::EdgeServer& server : cluster.sites()[site].servers()) {
          if (!server.powered_on() || server.failed()) continue;
          if (!failure_rng.bernoulli(fail_p)) continue;
          // Re-batch the apps that were on the crashed server. Marking them
          // displaced keeps them alive (retried, never counted as fresh
          // rejections) if the shrunken cluster cannot re-place them at once.
          for (auto it = hosted.begin(); it != hosted.end();) {
            if (it->second.site == site && it->second.server == server.id()) {
              displaced_from.insert_or_assign(it->first, kNoAccountedSite);
              batch.push_back(it->second.app);
              ++result.apps_redeployed;
              it = hosted.erase(it);
            } else {
              ++it;
            }
          }
          server.set_failed(true);
          under_repair[{site, server.id()}] = epoch + config.failures.repair_epochs;
          ++result.server_failures;
          ++epoch_failures;
        }
      }
    }

    // 2. Departures. Guarded decrement: an application admitted with
    // remaining_epochs == 0 departs immediately instead of underflowing to
    // ~4B epochs and becoming immortal.
    for (auto it = hosted.begin(); it != hosted.end();) {
      if (it->second.app.remaining_epochs <= 1) {
        find_server(it->second.site, it->second.server).evict(it->first);
        it = hosted.erase(it);
      } else {
        --it->second.app.remaining_epochs;
        ++it;
      }
    }

    // 3. Arrivals — immediately placeable or deferred (temporal shifting,
    //    paper Section 2.2) — plus periodic re-optimization of live apps.
    for (sim::Application& app : generator.arrivals(epoch)) {
      if (app.max_defer_epochs > 0) {
        ++result.apps_deferred;
        deferred.push_back(std::move(app));
      } else {
        batch.push_back(std::move(app));
      }
    }
    // Release deferred applications at low-intensity hours: start when the
    // origin zone's current intensity is no worse than anything the
    // remaining defer budget could buy (the "wait awhile" heuristic), or
    // when the budget runs out.
    for (auto it = deferred.begin(); it != deferred.end();) {
      const std::string& zone = cluster.sites()[it->origin_site].zone();
      bool start = it->max_defer_epochs == 0;
      if (!start) {
        const double now_ci = carbon_->intensity(zone, hour);
        const auto window = static_cast<std::uint32_t>(
            std::ceil(static_cast<double>(it->max_defer_epochs) * config.epoch_hours));
        double future_min = now_ci;
        for (const double v : carbon_->forecast(zone, hour + 1, window)) {
          future_min = std::min(future_min, v);
        }
        start = now_ci <= future_min * 1.02;
      }
      if (start) {
        batch.push_back(std::move(*it));
        it = deferred.erase(it);
      } else {
        --it->max_defer_epochs;
        ++it;
      }
    }
    // Re-optimization cadence: calendar-month boundaries (the epoch whose
    // hour enters a new month) or a fixed epoch period.
    bool migrate = false;
    if (epoch != 0) {
      if (config.reoptimize_monthly) {
        migrate = carbon::month_of_hour(hour) != carbon::month_of_hour(hour_at(epoch - 1));
      } else {
        migrate = config.reoptimize_every != 0 && epoch % config.reoptimize_every == 0;
      }
    }
    // Where each re-optimization candidate was hosted before being evicted
    // into the batch — for data-movement accounting on moves, and to restore
    // the app if the solver rejects it.
    struct PreviousPlacement {
      std::size_t site = 0;
      std::uint32_t server = 0;
    };
    std::unordered_map<sim::AppId, PreviousPlacement> previous_placement;
    if (migrate) {
      std::vector<sim::AppId> to_move;
      for (const auto& [id, entry] : hosted) {
        if (config.migration.cost_aware) {
          // Veto moves whose projected benefit cannot repay the transfer.
          const sim::EdgeServer& current = find_server(entry.site, entry.server);
          const std::string& zone = cluster.sites()[entry.site].zone();
          const double current_rate = carbon_rate_g(entry.app, current, zone, hour);
          double best_rate = current_rate;
          for (std::size_t site = 0; site < cluster.size(); ++site) {
            const double rtt = 2.0 * latency_.one_way_ms(entry.app.origin_site, site);
            if (rtt > entry.app.latency_limit_rtt_ms + 1e-9) continue;
            for (const sim::EdgeServer& server : cluster.sites()[site].servers()) {
              if (!server.can_host(entry.app.model, entry.app.rps)) continue;
              const double rate =
                  carbon_rate_g(entry.app, server, cluster.sites()[site].zone(), hour);
              if (rate >= 0.0) best_rate = std::min(best_rate, rate);
            }
          }
          const double lifetime = std::min<double>(config.migration.benefit_horizon_epochs,
                                                   entry.app.remaining_epochs);
          const double benefit = (current_rate - best_rate) * lifetime;
          const auto [move_energy, move_carbon] = migration_cost(entry.app, zone, hour);
          if (benefit < move_carbon * config.migration.hysteresis) {
            ++result.migrations_skipped;
            continue;
          }
        }
        to_move.push_back(id);
      }
      for (const sim::AppId id : to_move) {
        auto& entry = hosted.at(id);
        find_server(entry.site, entry.server).evict(id);
        previous_placement.emplace(id, PreviousPlacement{entry.site, entry.server});
        batch.push_back(entry.app);
        hosted.erase(id);
      }
    }

    // 4. Placement (Algorithm 1) + deployment.
    PlacementInput input;
    input.cluster = &cluster;
    input.latency = &latency_;
    input.carbon = carbon_;
    input.now = hour;
    input.forecast_horizon_hours = config.forecast_horizon_hours;
    input.epoch_hours = config.epoch_hours;
    const PlacementResult placement = service.place(input, batch);
    result.total_solve_ms += placement.solve_time_ms;
    orchestrator.deploy(placement);

    std::unordered_map<sim::AppId, const sim::Application*> by_id;
    by_id.reserve(batch.size());
    for (const sim::Application& app : batch) by_id.emplace(app.id, &app);
    // Charge the data movement of an app that left `from_site` this epoch.
    const auto account_move = [&](const sim::Application& app, std::size_t from_site) {
      const auto [move_energy, move_carbon] =
          migration_cost(app, cluster.sites()[from_site].zone(), hour);
      epoch_migration_energy += move_energy;
      epoch_migration_carbon += move_carbon;
      ++epoch_migrations;
      ++result.migrations;
    };
    for (const PlacementDecision& decision : placement.decisions) {
      hosted.emplace(decision.app,
                     HostedApp{*by_id.at(decision.app), decision.site, decision.server});
      // Account data movement for re-optimized (or earlier-displaced) apps
      // that changed site.
      const auto prev = previous_placement.find(decision.app);
      const auto limbo = displaced_from.find(decision.app);
      if (prev != previous_placement.end()) {
        if (prev->second.site != decision.site) {
          account_move(*by_id.at(decision.app), prev->second.site);
        }
      } else if (limbo != displaced_from.end()) {
        if (limbo->second != kNoAccountedSite && limbo->second != decision.site) {
          account_move(*by_id.at(decision.app), limbo->second);
        }
        displaced_from.erase(limbo);
      }
    }

    // A live application must never be lost to a re-optimization attempt:
    // if the solver rejected an evicted migrant (e.g. capacity shrank after
    // a failure), put it back on its previous server — the evict freed that
    // capacity, so it is normally reclaimable — and count the non-move as a
    // skipped migration, not a rejection. Only fresh arrivals can be
    // genuinely rejected.
    std::uint32_t fresh_rejected = 0;
    for (const sim::AppId id : placement.rejected) {
      const auto prev = previous_placement.find(id);
      const auto limbo = displaced_from.find(id);
      if (prev == previous_placement.end() && limbo == displaced_from.end()) {
        ++fresh_rejected;
        continue;
      }
      const sim::Application& app = *by_id.at(id);
      const std::size_t home_site =
          prev != previous_placement.end() ? prev->second.site : limbo->second;
      sim::EdgeServer* target = nullptr;
      std::size_t target_site = home_site;
      if (prev != previous_placement.end()) {
        sim::EdgeServer& old_server = find_server(prev->second.site, prev->second.server);
        if (old_server.powered_on() && old_server.can_host(app.model, app.rps)) {
          target = &old_server;
        }
      }
      if (target == nullptr) {
        // The slot is gone (taken by a competing batch member, or the app
        // has been in limbo since an earlier epoch); fall back to the first
        // powered-on latency-feasible server with headroom. can_host() does
        // not cover power state, and activating a cold server here would
        // bypass the optimizer's Eq. 5 activation decision, so off servers
        // are skipped.
        for (std::size_t site = 0; site < cluster.size() && target == nullptr; ++site) {
          if (2.0 * latency_.one_way_ms(app.origin_site, site) >
              app.latency_limit_rtt_ms + 1e-9) {
            continue;
          }
          for (sim::EdgeServer& server : cluster.sites()[site].servers()) {
            if (server.powered_on() && server.can_host(app.model, app.rps)) {
              target = &server;
              target_site = site;
              break;
            }
          }
        }
      }
      if (prev != previous_placement.end() &&
          (target == nullptr || target_site == home_site)) {
        // The optimizer's intended migration did not happen and the app
        // stayed (or parked) at home; landing on another site is instead a
        // real move, charged below.
        ++result.migrations_skipped;
      }
      if (target != nullptr) {
        target->host(sim::AppInstance{id, app.model, app.rps});
        hosted.emplace(id, HostedApp{app, target_site, target->id()});
        // Landing away from the app's previous site is a real (forced)
        // move and pays the transfer emissions like any other migration —
        // except for crash victims, whose old server is gone.
        if (home_site != kNoAccountedSite && target_site != home_site) {
          account_move(app, home_site);
        }
        if (limbo != displaced_from.end()) displaced_from.erase(limbo);
      } else {
        // No capacity anywhere this epoch (another app took the freed slot
        // and the cluster is saturated): keep the app alive and retry at the
        // next epoch via the deferral queue rather than dropping it. The
        // epoch it sits out is real downtime for a live app — account it.
        displaced_from.insert_or_assign(id, home_site);
        ++result.app_downtime_epochs;
        sim::Application retry = app;
        retry.max_defer_epochs = 0;
        deferred.push_back(std::move(retry));
      }
    }
    result.apps_placed += placement.decisions.size();
    result.apps_rejected += fresh_rejected;
    result.migration_energy_wh += epoch_migration_energy;
    result.migration_carbon_g += epoch_migration_carbon;

    // 5. Accounting.
    sim::EpochRecord record;
    record.epoch = epoch;
    record.apps_placed = static_cast<std::uint32_t>(placement.decisions.size());
    record.apps_rejected = fresh_rejected;
    record.migration_energy_wh = epoch_migration_energy;
    record.migration_carbon_g = epoch_migration_carbon;
    record.migrations = epoch_migrations;
    record.failures = epoch_failures;
    record.sites.resize(cluster.size());
    for (std::size_t s = 0; s < cluster.size(); ++s) {
      const sim::EdgeDataCenter& site = cluster.sites()[s];
      sim::SiteEpochRecord& sr = record.sites[s];
      const double watts =
          config.account_base_power ? site.power_draw_w() : site.dynamic_power_w();
      sr.energy_wh = watts * config.epoch_hours;
      sr.intensity_g_kwh = carbon_->intensity(site.zone(), hour);
      sr.carbon_g = sr.energy_wh / 1000.0 * sr.intensity_g_kwh;
      sr.apps_hosted = static_cast<std::uint32_t>(site.app_count());
      for (const sim::EdgeServer& server : site.servers()) {
        for (const sim::AppInstance& instance : server.apps()) sr.rps_hosted += instance.rps;
      }
    }
    for (const auto& [id, entry] : hosted) {
      const double rtt = 2.0 * latency_.one_way_ms(entry.app.origin_site, entry.site);
      const sim::EdgeServer& server = find_server(entry.site, entry.server);
      const double response = rtt + server.mean_service_ms(entry.app.model);
      record.rtt_weighted_sum_ms += rtt * entry.app.rps;
      record.response_weighted_sum_ms += response * entry.app.rps;
      record.rps_total += entry.app.rps;
      result.telemetry.add_response_sample(response, entry.app.rps);
    }
    result.telemetry.record(std::move(record));

    // 6. Power management between epochs.
    power_manager.sweep(cluster);
  }

  // Deferred applications whose start never came before the horizon ran out
  // are accounted explicitly so placed + rejected + expired reconcile.
  // Displaced retries parked in the same queue were already counted in
  // apps_placed at admission, so they are excluded.
  for (const sim::Application& app : deferred) {
    if (!displaced_from.contains(app.id)) ++result.apps_expired_deferred;
  }

  result.mean_solve_ms =
      config.epochs > 0 ? result.total_solve_ms / static_cast<double>(config.epochs) : 0.0;
  result.mean_deploy_ms = orchestrator.mean_deploy_ms();
  return result;
}

std::vector<SimulationResult> run_policies(EdgeSimulation& simulation,
                                           const SimulationConfig& base_config,
                                           const std::vector<PolicyConfig>& policies) {
  std::vector<SimulationResult> results;
  results.reserve(policies.size());
  for (const PolicyConfig& policy : policies) {
    SimulationConfig config = base_config;
    config.policy = policy;
    results.push_back(simulation.run(config));
  }
  return results;
}

double carbon_saving(const SimulationResult& baseline, const SimulationResult& candidate) {
  const double base = baseline.telemetry.total_carbon_g();
  if (base <= 0.0) return 0.0;
  return (base - candidate.telemetry.total_carbon_g()) / base;
}

double latency_increase_ms(const SimulationResult& baseline, const SimulationResult& candidate) {
  return candidate.telemetry.mean_rtt_ms() - baseline.telemetry.mean_rtt_ms();
}

}  // namespace carbonedge::core
