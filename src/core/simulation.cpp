#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <utility>

#include "carbon/caltime.hpp"
#include "geo/site.hpp"
#include "geo/sparse_latency.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/thread_pool.hpp"

namespace carbonedge::core {

namespace {

obs::Phase& epoch_phase() {
  static obs::Phase phase("core.epoch_step");
  return phase;
}

// Run-level result counters mirrored into the registry once per finished
// engine (batch cells and serve runs alike). Each is a sum of per-cell
// integers, so the process totals are byte-identical across thread counts
// — deterministic view.
struct SimMetrics {
  obs::Counter& runs;
  obs::Counter& epochs;
  obs::Counter& apps_placed;
  obs::Counter& apps_rejected;
  obs::Counter& apps_deferred;
  obs::Counter& apps_expired_deferred;
  obs::Counter& apps_redeployed;
  obs::Counter& migrations;
  obs::Counter& migrations_skipped;
  obs::Counter& server_failures;
  obs::Counter& app_downtime_epochs;
};

SimMetrics& sim_metrics() {
  obs::Registry& registry = obs::Registry::global();
  static SimMetrics metrics{
      registry.counter("sim.runs", "simulation engines finished",
                       obs::View::kDeterministic),
      registry.counter("sim.epochs", "epochs stepped across all finished runs",
                       obs::View::kDeterministic),
      registry.counter("sim.apps_placed", "applications placed",
                       obs::View::kDeterministic),
      registry.counter("sim.apps_rejected", "applications rejected",
                       obs::View::kDeterministic),
      registry.counter("sim.apps_deferred", "arrivals temporally shifted",
                       obs::View::kDeterministic),
      registry.counter("sim.apps_expired_deferred",
                       "deferred arrivals that expired before the horizon",
                       obs::View::kDeterministic),
      registry.counter("sim.apps_redeployed", "applications re-placed after a crash",
                       obs::View::kDeterministic),
      registry.counter("sim.migrations", "re-optimization moves applied",
                       obs::View::kDeterministic),
      registry.counter("sim.migrations_skipped", "moves vetoed by the cost-aware filter",
                       obs::View::kDeterministic),
      registry.counter("sim.server_failures", "server crashes (drawn + injected)",
                       obs::View::kDeterministic),
      registry.counter("sim.app_downtime_epochs", "epochs displaced apps spent parked",
                       obs::View::kDeterministic)};
  return metrics;
}

/// Below this many items a sharded epoch section runs inline: the per-item
/// work (a forecast scan, a server lookup) is microseconds, so dispatching
/// a handful of items would cost more than it saves. The threshold depends
/// only on the item count — never on thread count — so the inline and
/// sharded paths are taken identically everywhere (and produce identical
/// bytes either way; this is purely a dispatch-overhead gate).
constexpr std::size_t kMinItemsPerShard = 32;

/// Displaced-app sentinel: crash victims whose redeployment is not a
/// data-movement migration.
constexpr std::size_t kNoAccountedSite = static_cast<std::size_t>(-1);

}  // namespace

SimulationEngine::SimulationEngine(sim::EdgeCluster cluster,
                                   const carbon::CarbonIntensityService& carbon,
                                   const geo::LatencyProvider& latency,
                                   const SimulationConfig& config,
                                   util::ParallelismBudget* budget, std::size_t lane_cap)
    : config_(config),
      cluster_(std::move(cluster)),
      carbon_(&carbon),
      latency_(&latency),
      service_(config.policy, config.solver_options),
      power_manager_(config.power),
      failure_rng_(config.failures.seed),
      failure_draws_(cluster_.size()) {
  // Intra-run parallelism: lease worker lanes from the budget for the whole
  // run and spin up a private shard pool when more than one was granted.
  // Workers only ever execute pure per-item computations into disjoint
  // slots; the stepping thread does every RNG draw, every reduction, and
  // every state mutation, which is what keeps the result byte-identical
  // for every lane count (see the class comment).
  //
  // Scale gate first: a run whose epoch sections can never reach the
  // dispatch threshold skips the lease and pool outright, so small cells
  // (most test scenarios, the narrow cells of a wide sweep) stay
  // zero-overhead serial and leave their lanes to concurrent cells. The
  // predicate reads only the config and cluster — never thread counts —
  // so the execution shape is deterministic.
  const double apps_per_site =
      static_cast<double>(config_.workload.initial_per_site) +
      config_.workload.arrivals_per_site * std::max(1.0, config_.workload.mean_lifetime_epochs);
  const double steady_state_apps = apps_per_site * static_cast<double>(cluster_.size());
  const bool may_shard = cluster_.size() >= 2 * kMinItemsPerShard ||
                         steady_state_apps >= static_cast<double>(2 * kMinItemsPerShard);
  util::ParallelismBudget& arbiter = budget != nullptr ? *budget : util::global_budget();
  if (may_shard) {
    const std::size_t want_lanes =
        lane_cap > 0 ? std::min(lane_cap, arbiter.total()) : arbiter.total();
    lease_ = arbiter.acquire(want_lanes);
  }
  lanes_ = lease_.lanes();
  if (lanes_ > 1) shard_pool_ = std::make_unique<util::ThreadPool>(lanes_);

  // Lend the run's shard pool to the placement solver: component dispatch
  // reuses lanes this simulation already leased (they idle during the
  // solve phase) instead of drawing the budget down further every epoch.
  solver::AssignmentOptions solver_options = config_.solver_options;
  if (shard_pool_ != nullptr && solver_options.shard_threads == 0 &&
      solver_options.shard_pool == nullptr) {
    solver_options.shard_pool = shard_pool_.get();
  }
  // Forward the (possibly injected) budget so a serial-capped run keeps
  // the solver's default dispatch serial too, instead of it leasing from
  // the process-global budget behind the injection's back.
  if (solver_options.budget == nullptr) solver_options.budget = &arbiter;
  service_ = PlacementService(config_.policy, solver_options);
}

SimulationEngine::~SimulationEngine() = default;

carbon::HourIndex SimulationEngine::hour_of(std::uint32_t epoch) const noexcept {
  return static_cast<carbon::HourIndex>(
      config_.start_hour + static_cast<carbon::HourIndex>(std::floor(
                               static_cast<double>(epoch) * config_.epoch_hours)));
}

template <typename Body>
void SimulationEngine::parallel_items(std::size_t count, const Body& body) {
  // Run body(k) for k in [0, count), sharded across the leased lanes when
  // the item count can amortize the dispatch. body(k) must write only to
  // its own slot k. Generic so the (common) inline path pays no
  // std::function indirection.
  if (shard_pool_ == nullptr || count < 2 * kMinItemsPerShard) {
    for (std::size_t k = 0; k < count; ++k) body(k);
    return;
  }
  const std::size_t shards =
      std::max<std::size_t>(1, std::min(lanes_, count / kMinItemsPerShard));
  util::parallel_for(*shard_pool_, 0, count, body, (count + shards - 1) / shards);
}

sim::EdgeServer& SimulationEngine::find_server(std::size_t site, std::uint32_t server_id) {
  for (sim::EdgeServer& server : cluster_.sites()[site].servers()) {
    if (server.id() == server_id) return server;
  }
  throw std::logic_error("hosted app references unknown server");
}

void SimulationEngine::snapshot_hosted() {
  hosted_snapshot_.clear();
  hosted_snapshot_.reserve(hosted_.size());
  // lint: unordered-iteration-ok(this IS the serial snapshot: all hosted_ mutations happen on the stepping thread, so bucket order is a pure function of the deterministic insert/erase history — identical for every lane count)
  for (const auto& [id, entry] : hosted_) hosted_snapshot_.emplace_back(id, &entry);
}

void SimulationEngine::crash_server(std::size_t site, sim::EdgeServer& server,
                                    std::uint32_t epoch, std::vector<sim::Application>& batch,
                                    std::uint32_t& epoch_failures) {
  // Re-batch the apps that were on the crashed server. Marking them
  // displaced keeps them alive (retried, never counted as fresh
  // rejections) if the shrunken cluster cannot re-place them at once.
  // lint: unordered-iteration-ok(coordinator-only erase walk; bucket order determines batch order, which is itself a deterministic function of the insert/erase history — no fp accumulation here)
  for (auto it = hosted_.begin(); it != hosted_.end();) {
    if (it->second.site == site && it->second.server == server.id()) {
      displaced_from_.insert_or_assign(it->first, kNoAccountedSite);
      batch.push_back(it->second.app);
      ++result_.apps_redeployed;
      it = hosted_.erase(it);
    } else {
      ++it;
    }
  }
  server.set_failed(true);
  under_repair_[{site, server.id()}] = epoch + config_.failures.repair_epochs;
  ++result_.server_failures;
  ++epoch_failures;
}

void SimulationEngine::step(std::vector<sim::Application> arrivals,
                            const StepOptions& options) {
  if (finished_) throw std::logic_error("SimulationEngine::step after finish()");
  if (epoch_ >= config_.epochs) {
    throw std::logic_error("SimulationEngine::step beyond configured horizon");
  }
  const obs::Span span(epoch_phase());
  const std::uint32_t epoch = epoch_;
  const carbon::HourIndex hour = hour_of(epoch);

  // Expected per-epoch operational carbon of `app` on `server` at `hour`.
  const auto carbon_rate_g = [&](const sim::Application& app, const sim::EdgeServer& server,
                                 const std::string& zone) {
    const sim::ProfileResult prof = sim::profile_of(app.model, server.device());
    if (!prof.supported) return -1.0;
    const double energy_wh = prof.profile.energy_j * app.rps * config_.epoch_hours;
    return energy_wh / 1000.0 *
           carbon_->mean_forecast(zone, hour, config_.forecast_horizon_hours);
  };

  // Migration data-movement cost of moving `app` out of `zone` at `hour`.
  const auto migration_cost = [&](const sim::Application& app, const std::string& zone) {
    const double energy_wh =
        app.state_size_mb / 1024.0 * config_.migration.network_energy_wh_per_gb;
    const double carbon_g =
        energy_wh / 1000.0 *
        carbon_->mean_forecast(zone, hour, config_.forecast_horizon_hours);
    return std::pair{energy_wh, carbon_g};
  };

  std::uint32_t epoch_failures = 0;
  std::uint32_t epoch_migrations = 0;
  double epoch_migration_energy = 0.0;
  double epoch_migration_carbon = 0.0;
  std::vector<sim::Application> batch;

  // 1. Repairs, then injected failures, then fresh drawn failures.
  for (auto it = under_repair_.begin(); it != under_repair_.end();) {
    if (epoch >= it->second) {
      sim::EdgeServer& server = find_server(it->first.first, it->first.second);
      server.set_failed(false);
      server.set_powered_on(true);
      it = under_repair_.erase(it);
    } else {
      ++it;
    }
  }
  // Event-stream crashes first, in stream order: a server the feed reports
  // dead must not also consume a Bernoulli draw below (it is no longer
  // eligible), and with an empty span this block is a no-op — the drawn
  // failure stream is untouched, which the replay oracle relies on.
  for (const ServerFailureEvent& event : options.failures) {
    if (event.site >= cluster_.size()) {
      throw std::invalid_argument("failure event: site out of range");
    }
    sim::EdgeServer& server = find_server(event.site, event.server_id);
    if (server.failed()) continue;  // already down: repair timer keeps running
    crash_server(event.site, server, epoch, batch, epoch_failures);
  }
  if (config_.failures.mtbf_epochs > 0.0) {
    const double fail_p = 1.0 / config_.failures.mtbf_epochs;
    // Pre-draw the epoch's failure streams into per-site buffers, one
    // Bernoulli per eligible (powered-on, healthy) server in site/server
    // order — exactly the serial engine's consumption. Materializing the
    // draws up front decouples them from however the sharded sections
    // interleave later: draw order can never depend on thread count.
    // Eligibility is stable across this pass (marking one server failed
    // never changes another's power or failure state), so the application
    // loop below replays the same predicate to index the stream.
    for (std::size_t site = 0; site < cluster_.size(); ++site) {
      std::vector<std::uint8_t>& draws = failure_draws_[site];
      draws.clear();
      for (const sim::EdgeServer& server : cluster_.sites()[site].servers()) {
        if (!server.powered_on() || server.failed()) continue;
        draws.push_back(failure_rng_.bernoulli(fail_p) ? 1 : 0);
      }
    }
    for (std::size_t site = 0; site < cluster_.size(); ++site) {
      std::size_t draw_index = 0;
      for (sim::EdgeServer& server : cluster_.sites()[site].servers()) {
        if (!server.powered_on() || server.failed()) continue;
        if (draw_index >= failure_draws_[site].size()) {
          // The eligibility predicate diverged between the draw pass and
          // this replay (a failure side effect must have changed another
          // server's power/failure state) — that desynchronizes the
          // stream, so fail loudly rather than consume wrong draws.
          throw std::logic_error("failure stream desynchronized from eligibility replay");
        }
        if (!failure_draws_[site][draw_index++]) continue;
        crash_server(site, server, epoch, batch, epoch_failures);
      }
    }
  }

  // 2. Departures. Guarded decrement: an application admitted with
  // remaining_epochs == 0 departs immediately instead of underflowing to
  // ~4B epochs and becoming immortal.
  // lint: unordered-iteration-ok(coordinator-only erase walk over deterministic bucket order; evictions commute and nothing is accumulated in fp)
  for (auto it = hosted_.begin(); it != hosted_.end();) {
    if (it->second.app.remaining_epochs <= 1) {
      find_server(it->second.site, it->second.server).evict(it->first);
      it = hosted_.erase(it);
    } else {
      --it->second.app.remaining_epochs;
      ++it;
    }
  }

  // 3. Arrivals — immediately placeable or deferred (temporal shifting,
  //    paper Section 2.2) — plus periodic re-optimization of live apps.
  for (sim::Application& app : arrivals) {
    if (app.max_defer_epochs > 0) {
      ++result_.apps_deferred;
      deferred_.push_back(std::move(app));
    } else {
      batch.push_back(std::move(app));
    }
  }
  // Release deferred applications at low-intensity hours: start when the
  // origin zone's current intensity is no worse than anything the
  // remaining defer budget could buy (the "wait awhile" heuristic), or
  // when the budget runs out. The per-app forecast scans are the epoch's
  // heaviest pure reads (a window of forecaster evaluations each), so
  // they shard across lanes into per-app slots; the queue itself is then
  // updated serially in queue order.
  defer_start_.assign(deferred_.size(), 0);
  parallel_items(deferred_.size(), [&](std::size_t k) {
    const sim::Application& app = deferred_[k];
    bool start = app.max_defer_epochs == 0;
    if (!start) {
      const std::string& zone = cluster_.sites()[app.origin_site].zone();
      const double now_ci = carbon_->intensity(zone, hour);
      const auto window = static_cast<std::uint32_t>(
          std::ceil(static_cast<double>(app.max_defer_epochs) * config_.epoch_hours));
      double future_min = now_ci;
      for (const double v : carbon_->forecast(zone, hour + 1, window)) {
        future_min = std::min(future_min, v);
      }
      start = now_ci <= future_min * 1.02;
    }
    defer_start_[k] = start ? 1 : 0;
  });
  {
    // Starters join the batch, the rest spend one epoch of budget; the
    // stable in-place compaction preserves the old erase-as-you-go order.
    std::size_t keep = 0;
    for (std::size_t k = 0; k < deferred_.size(); ++k) {
      if (defer_start_[k]) {
        batch.push_back(std::move(deferred_[k]));
      } else {
        --deferred_[k].max_defer_epochs;
        if (keep != k) deferred_[keep] = std::move(deferred_[k]);
        ++keep;
      }
    }
    deferred_.resize(keep);
  }
  // Re-optimization cadence: an explicit per-step override (the serving
  // mode's event-driven trigger), calendar-month boundaries (the epoch
  // whose hour enters a new month), or a fixed epoch period.
  bool migrate = false;
  if (epoch != 0) {
    if (options.migrate.has_value()) {
      migrate = *options.migrate;
    } else if (config_.reoptimize_monthly) {
      migrate = carbon::month_of_hour(hour) != carbon::month_of_hour(hour_of(epoch - 1));
    } else {
      migrate = config_.reoptimize_every != 0 && epoch % config_.reoptimize_every == 0;
    }
  }
  // Where each re-optimization candidate was hosted before being evicted
  // into the batch — for data-movement accounting on moves, and to restore
  // the app if the solver rejects it.
  struct PreviousPlacement {
    std::size_t site = 0;
    std::uint32_t server = 0;
  };
  std::unordered_map<sim::AppId, PreviousPlacement> previous_placement;
  if (migrate) {
    std::vector<sim::AppId> to_move;
    snapshot_hosted();
    if (config_.migration.cost_aware) {
      // Veto moves whose projected benefit cannot repay the transfer.
      // Each app's veto scans every feasible server — the quadratic bulk
      // of a re-optimization epoch — so the scans shard across lanes;
      // the verdicts are then folded in snapshot order, preserving the
      // serial engine's to_move order (and thus the solver's input).
      migration_veto_.assign(hosted_snapshot_.size(), 0);
      parallel_items(hosted_snapshot_.size(), [&](std::size_t k) {
        const HostedApp& entry = *hosted_snapshot_[k].second;
        const sim::EdgeServer& current = find_server(entry.site, entry.server);
        const std::string& zone = cluster_.sites()[entry.site].zone();
        const double current_rate = carbon_rate_g(entry.app, current, zone);
        double best_rate = current_rate;
        // A banded provider narrows the scan to the origin's neighborhood;
        // sites it skips are +inf RTT, i.e. exactly the ones the filter
        // below would drop, and best_rate is an order-independent min — so
        // the verdicts match the dense scan bit for bit.
        const std::span<const std::uint32_t> near =
            latency_->neighbors(entry.app.origin_site);
        const std::size_t candidates = near.empty() ? cluster_.size() : near.size();
        for (std::size_t n = 0; n < candidates; ++n) {
          const std::size_t site = near.empty() ? n : near[n];
          const double rtt = 2.0 * latency_->one_way_ms(entry.app.origin_site, site);
          if (rtt > entry.app.latency_limit_rtt_ms + 1e-9) continue;
          for (const sim::EdgeServer& server : cluster_.sites()[site].servers()) {
            if (!server.can_host(entry.app.model, entry.app.rps)) continue;
            const double rate =
                carbon_rate_g(entry.app, server, cluster_.sites()[site].zone());
            if (rate >= 0.0) best_rate = std::min(best_rate, rate);
          }
        }
        const double lifetime = std::min<double>(config_.migration.benefit_horizon_epochs,
                                                 entry.app.remaining_epochs);
        const double benefit = (current_rate - best_rate) * lifetime;
        const auto [move_energy, move_carbon] = migration_cost(entry.app, zone);
        migration_veto_[k] = benefit < move_carbon * config_.migration.hysteresis ? 1 : 0;
      });
      for (std::size_t k = 0; k < hosted_snapshot_.size(); ++k) {
        if (migration_veto_[k]) {
          ++result_.migrations_skipped;
        } else {
          to_move.push_back(hosted_snapshot_[k].first);
        }
      }
    } else {
      for (const auto& [id, entry] : hosted_snapshot_) to_move.push_back(id);
    }
    for (const sim::AppId id : to_move) {
      auto& entry = hosted_.at(id);
      find_server(entry.site, entry.server).evict(id);
      previous_placement.emplace(id, PreviousPlacement{entry.site, entry.server});
      batch.push_back(entry.app);
      hosted_.erase(id);
    }
  }

  // 4. Placement (Algorithm 1) + deployment.
  PlacementInput input;
  input.cluster = &cluster_;
  input.latency = latency_;
  input.carbon = carbon_;
  input.now = hour;
  input.forecast_horizon_hours = config_.forecast_horizon_hours;
  input.epoch_hours = config_.epoch_hours;
  const PlacementResult placement = service_.place(input, batch);
  result_.total_solve_ms += placement.solve_time_ms;
  orchestrator_.deploy(placement);

  std::unordered_map<sim::AppId, const sim::Application*> by_id;
  by_id.reserve(batch.size());
  for (const sim::Application& app : batch) by_id.emplace(app.id, &app);
  // Charge the data movement of an app that left `from_site` this epoch.
  const auto account_move = [&](const sim::Application& app, std::size_t from_site) {
    const auto [move_energy, move_carbon] =
        migration_cost(app, cluster_.sites()[from_site].zone());
    epoch_migration_energy += move_energy;
    epoch_migration_carbon += move_carbon;
    ++epoch_migrations;
    ++result_.migrations;
  };
  for (const PlacementDecision& decision : placement.decisions) {
    hosted_.emplace(decision.app,
                    HostedApp{*by_id.at(decision.app), decision.site, decision.server});
    // Account data movement for re-optimized (or earlier-displaced) apps
    // that changed site.
    const auto prev = previous_placement.find(decision.app);
    const auto limbo = displaced_from_.find(decision.app);
    if (prev != previous_placement.end()) {
      if (prev->second.site != decision.site) {
        account_move(*by_id.at(decision.app), prev->second.site);
      }
    } else if (limbo != displaced_from_.end()) {
      if (limbo->second != kNoAccountedSite && limbo->second != decision.site) {
        account_move(*by_id.at(decision.app), limbo->second);
      }
      displaced_from_.erase(limbo);
    }
  }

  // A live application must never be lost to a re-optimization attempt:
  // if the solver rejected an evicted migrant (e.g. capacity shrank after
  // a failure), put it back on its previous server — the evict freed that
  // capacity, so it is normally reclaimable — and count the non-move as a
  // skipped migration, not a rejection. Only fresh arrivals can be
  // genuinely rejected.
  std::uint32_t fresh_rejected = 0;
  for (const sim::AppId id : placement.rejected) {
    const auto prev = previous_placement.find(id);
    const auto limbo = displaced_from_.find(id);
    if (prev == previous_placement.end() && limbo == displaced_from_.end()) {
      ++fresh_rejected;
      continue;
    }
    const sim::Application& app = *by_id.at(id);
    const std::size_t home_site =
        prev != previous_placement.end() ? prev->second.site : limbo->second;
    sim::EdgeServer* target = nullptr;
    std::size_t target_site = home_site;
    if (prev != previous_placement.end()) {
      sim::EdgeServer& old_server = find_server(prev->second.site, prev->second.server);
      if (old_server.powered_on() && old_server.can_host(app.model, app.rps)) {
        target = &old_server;
      }
    }
    if (target == nullptr) {
      // The slot is gone (taken by a competing batch member, or the app
      // has been in limbo since an earlier epoch); fall back to the first
      // powered-on latency-feasible server with headroom. can_host() does
      // not cover power state, and activating a cold server here would
      // bypass the optimizer's Eq. 5 activation decision, so off servers
      // are skipped.
      // Neighbor prefilter as in the veto scan: candidates stay in
      // ascending site order, so "first feasible" is the same server.
      const std::span<const std::uint32_t> near = latency_->neighbors(app.origin_site);
      const std::size_t candidates = near.empty() ? cluster_.size() : near.size();
      for (std::size_t n = 0; n < candidates && target == nullptr; ++n) {
        const std::size_t site = near.empty() ? n : near[n];
        if (2.0 * latency_->one_way_ms(app.origin_site, site) >
            app.latency_limit_rtt_ms + 1e-9) {
          continue;
        }
        for (sim::EdgeServer& server : cluster_.sites()[site].servers()) {
          if (server.powered_on() && server.can_host(app.model, app.rps)) {
            target = &server;
            target_site = site;
            break;
          }
        }
      }
    }
    if (prev != previous_placement.end() &&
        (target == nullptr || target_site == home_site)) {
      // The optimizer's intended migration did not happen and the app
      // stayed (or parked) at home; landing on another site is instead a
      // real move, charged below.
      ++result_.migrations_skipped;
    }
    if (target != nullptr) {
      target->host(sim::AppInstance{id, app.model, app.rps});
      hosted_.emplace(id, HostedApp{app, target_site, target->id()});
      // Landing away from the app's previous site is a real (forced)
      // move and pays the transfer emissions like any other migration —
      // except for crash victims, whose old server is gone.
      if (home_site != kNoAccountedSite && target_site != home_site) {
        account_move(app, home_site);
      }
      if (limbo != displaced_from_.end()) displaced_from_.erase(limbo);
    } else {
      // No capacity anywhere this epoch (another app took the freed slot
      // and the cluster is saturated): keep the app alive and retry at the
      // next epoch via the deferral queue rather than dropping it. The
      // epoch it sits out is real downtime for a live app — account it.
      displaced_from_.insert_or_assign(id, home_site);
      ++result_.app_downtime_epochs;
      sim::Application retry = app;
      retry.max_defer_epochs = 0;
      deferred_.push_back(std::move(retry));
    }
  }
  result_.apps_placed += placement.decisions.size();
  result_.apps_rejected += fresh_rejected;
  result_.migration_energy_wh += epoch_migration_energy;
  result_.migration_carbon_g += epoch_migration_carbon;

  // 5. Accounting.
  sim::EpochRecord record;
  record.epoch = epoch;
  record.apps_placed = static_cast<std::uint32_t>(placement.decisions.size());
  record.apps_rejected = fresh_rejected;
  record.migration_energy_wh = epoch_migration_energy;
  record.migration_carbon_g = epoch_migration_carbon;
  record.migrations = epoch_migrations;
  record.failures = epoch_failures;
  // Per-site records are pure functions of (site, zone intensity) into
  // disjoint slots; per-app latency samples are computed shard-parallel
  // into per-app slots and folded into the epoch sums and the response
  // histogram in snapshot order — the same floating-point order as the
  // serial engine, for every lane count.
  record.sites.resize(cluster_.size());
  parallel_items(cluster_.size(), [&](std::size_t s) {
    const sim::EdgeDataCenter& site = cluster_.sites()[s];
    record.sites[s] = sim::make_site_epoch_record(site, carbon_->intensity(site.zone(), hour),
                                                  config_.epoch_hours,
                                                  config_.account_base_power);
  });
  snapshot_hosted();
  app_samples_.resize(hosted_snapshot_.size());
  parallel_items(hosted_snapshot_.size(), [&](std::size_t k) {
    const HostedApp& entry = *hosted_snapshot_[k].second;
    const double rtt = 2.0 * latency_->one_way_ms(entry.app.origin_site, entry.site);
    const sim::EdgeServer& server = find_server(entry.site, entry.server);
    app_samples_[k] = sim::AppEpochSample{rtt, rtt + server.mean_service_ms(entry.app.model),
                                          entry.app.rps};
  });
  result_.telemetry.fold_app_samples(record, app_samples_);
  result_.telemetry.record(std::move(record));

  // 6. Power management between epochs.
  power_manager_.sweep(cluster_);

  epoch_ = epoch + 1;
}

SimulationResult SimulationEngine::finish() {
  if (finished_) throw std::logic_error("SimulationEngine::finish called twice");
  finished_ = true;

  // Deferred applications whose start never came before the horizon ran out
  // are accounted explicitly so placed + rejected + expired reconcile.
  // Displaced retries parked in the same queue were already counted in
  // apps_placed at admission, so they are excluded.
  for (const sim::Application& app : deferred_) {
    if (!displaced_from_.contains(app.id)) ++result_.apps_expired_deferred;
  }

  result_.mean_solve_ms =
      config_.epochs > 0 ? result_.total_solve_ms / static_cast<double>(config_.epochs) : 0.0;
  result_.mean_deploy_ms = orchestrator_.mean_deploy_ms();

  // Mirror the run's counters into the process registry (integer sums over
  // cells commute, so the totals are thread-count independent even when
  // engines finish on worker lanes in arbitrary order).
  SimMetrics& metrics = sim_metrics();
  metrics.runs.add();
  metrics.epochs.add(epoch_);
  metrics.apps_placed.add(result_.apps_placed);
  metrics.apps_rejected.add(result_.apps_rejected);
  metrics.apps_deferred.add(result_.apps_deferred);
  metrics.apps_expired_deferred.add(result_.apps_expired_deferred);
  metrics.apps_redeployed.add(result_.apps_redeployed);
  metrics.migrations.add(result_.migrations);
  metrics.migrations_skipped.add(result_.migrations_skipped);
  metrics.server_failures.add(result_.server_failures);
  metrics.app_downtime_epochs.add(result_.app_downtime_epochs);
  return std::move(result_);
}

EdgeSimulation::EdgeSimulation(sim::EdgeCluster cluster,
                               const carbon::CarbonIntensityService& carbon,
                               geo::LatencyModel latency_model,
                               double latency_band_one_way_ms)
    : pristine_(std::move(cluster)), carbon_(&carbon) {
  const std::vector<geo::City> cities = pristine_.cities();
  if (latency_band_one_way_ms > 0.0) {
    latency_ = std::make_unique<geo::BandedLatencyMatrix>(
        latency_model, cities, latency_band_one_way_ms);
  } else {
    latency_ = std::make_unique<geo::LatencyMatrix>(latency_model, cities);
  }
  for (const geo::City& city : cities) {
    if (!carbon_->has_zone(city.name)) {
      throw std::invalid_argument("carbon service has no trace for zone " + city.name);
    }
  }
}

SimulationResult EdgeSimulation::run(const SimulationConfig& config) {
  // Fresh state per run: the engine starts from a pristine cluster copy and
  // the workload stream depends only on the config seed.
  SimulationEngine engine(pristine_, *carbon_, *latency_, config, budget_, lane_cap_);
  sim::WorkloadGenerator generator(config.workload, engine.cluster());
  for (std::uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    engine.step(generator.arrivals(epoch));
  }
  return engine.finish();
}

std::vector<SimulationResult> run_policies(EdgeSimulation& simulation,
                                           const SimulationConfig& base_config,
                                           const std::vector<PolicyConfig>& policies) {
  std::vector<SimulationResult> results;
  results.reserve(policies.size());
  for (const PolicyConfig& policy : policies) {
    SimulationConfig config = base_config;
    config.policy = policy;
    results.push_back(simulation.run(config));
  }
  return results;
}

double carbon_saving(const SimulationResult& baseline, const SimulationResult& candidate) {
  const double base = baseline.telemetry.total_carbon_g();
  if (base <= 0.0) return 0.0;
  return (base - candidate.telemetry.total_carbon_g()) / base;
}

double latency_increase_ms(const SimulationResult& baseline, const SimulationResult& candidate) {
  return candidate.telemetry.mean_rtt_ms() - baseline.telemetry.mean_rtt_ms();
}

}  // namespace carbonedge::core
