#include "core/orchestrator.hpp"

namespace carbonedge::core {

const char* to_string(DeployPhase phase) noexcept {
  switch (phase) {
    case DeployPhase::kPending: return "pending";
    case DeployPhase::kRecipeGenerated: return "recipe";
    case DeployPhase::kImagesPulled: return "images";
    case DeployPhase::kStarted: return "started";
    case DeployPhase::kRouted: return "routed";
    case DeployPhase::kFailed: return "failed";
  }
  return "?";
}

Orchestrator::Orchestrator(OrchestratorConfig config)
    : config_(config), rng_(config.seed) {}

std::vector<Deployment> Orchestrator::deploy(const PlacementResult& result) {
  std::vector<Deployment> deployments;
  deployments.reserve(result.decisions.size());
  for (const PlacementDecision& decision : result.decisions) {
    Deployment d;
    d.app = decision.app;
    d.site = decision.site;
    d.server = decision.server;
    const auto step = [&](double mean_ms, DeployPhase next) {
      d.latency_ms += mean_ms * rng_.uniform(0.8, 1.2);
      d.phase = next;
    };
    step(config_.recipe_ms, DeployPhase::kRecipeGenerated);
    step(config_.image_pull_ms, DeployPhase::kImagesPulled);
    step(config_.start_ms, DeployPhase::kStarted);
    // Routing also pays one network round trip to the client.
    d.latency_ms += decision.rtt_ms;
    step(config_.route_ms, DeployPhase::kRouted);
    total_latency_ms_ += d.latency_ms;
    ++total_deployed_;
    deployments.push_back(d);
  }
  return deployments;
}

double Orchestrator::mean_deploy_ms() const noexcept {
  return total_deployed_ > 0 ? total_latency_ms_ / static_cast<double>(total_deployed_) : 0.0;
}

}  // namespace carbonedge::core
