#include "core/policy.hpp"

#include "util/table.hpp"

namespace carbonedge::core {

const char* to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kLatencyAware: return "Latency-aware";
    case PolicyKind::kEnergyAware: return "Energy-aware";
    case PolicyKind::kIntensityAware: return "Intensity-aware";
    case PolicyKind::kCarbonEdge: return "CarbonEdge";
    case PolicyKind::kMultiObjective: return "Multi-objective";
  }
  return "?";
}

std::string describe(const PolicyConfig& config) {
  std::string name = to_string(config.kind);
  if (config.kind == PolicyKind::kMultiObjective) {
    name += "(alpha=" + util::format_fixed(config.alpha, 2) + ")";
  }
  return name;
}

}  // namespace carbonedge::core
