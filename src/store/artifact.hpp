// Artifact container format ("CEAF"): the on-disk envelope of the
// persistent store.
//
// Every artifact file is
//
//   magic[8] "CEAF\r\n\x1a\0" | version u32 | kind u32 |
//   payload_bytes u64 | payload_checksum u64 (FNV-1a) | payload bytes
//
// with all integers and doubles little-endian (static_assert'ed below; the
// supported toolchains are all little-endian). The payload is a
// kind-specific columnar serialization (store/codecs.hpp). Readers validate
// magic, version, declared size, and checksum before handing the payload
// out, so torn or corrupted files are detected instead of decoded; writers
// publish via util::write_file_atomic so a partially-written file is never
// visible under the final name. Files load through util::FileView — mmap
// where available, buffered read otherwise.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>

namespace carbonedge::store {

static_assert(std::endian::native == std::endian::little,
              "CEAF artifacts are little-endian on disk");

/// What an artifact's payload encodes (part of the on-disk header).
enum class ArtifactKind : std::uint32_t {
  kCarbonTrace = 1,    // hourly intensity series + optional generation mixes
  kLatencyMatrix = 2,  // dense one-way latency matrix
  kSweepOutcome = 3,   // one scenario cell's SimulationResult
  kSiteCatalog = 4,    // compiled site catalog (columnar city table)
};

[[nodiscard]] const char* to_string(ArtifactKind kind) noexcept;

inline constexpr std::uint32_t kFormatVersion = 1;
/// File extension of store entries.
inline constexpr std::string_view kArtifactExtension = ".ceaf";

/// Little-endian payload serializer. Append-only; take() surrenders the
/// buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  /// Doubles are stored as raw IEEE-754 bits: round-trips are bit-exact,
  /// which is what makes warmed sweeps byte-identical to cold ones.
  void f64(double v) { raw(&v, sizeof v); }
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s.data(), s.size());
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void raw(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  std::string out_;
};

/// Bounds-checked payload deserializer over a borrowed byte view. Every
/// read throws std::runtime_error("artifact: truncated payload") past the
/// end, so a wrong-length payload cannot read out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : cur_(bytes.data()), end_(cur_ + bytes.size()) {}

  [[nodiscard]] std::uint8_t u8() { return static_cast<std::uint8_t>(*take(1)); }
  [[nodiscard]] std::uint32_t u32() { return read_as<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_as<std::uint64_t>(); }
  [[nodiscard]] double f64() { return read_as<double>(); }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    const char* p = take(n);
    return std::string(p, n);
  }
  [[nodiscard]] bool exhausted() const noexcept { return cur_ == end_; }
  /// Throws unless every payload byte was consumed (catches schema drift).
  void expect_exhausted() const;

 private:
  template <typename T>
  [[nodiscard]] T read_as() {
    T value;
    std::memcpy(&value, take(sizeof(T)), sizeof(T));
    return value;
  }
  const char* take(std::uint64_t n);

  const char* cur_;
  const char* end_;
};

/// Frame `payload` into a CEAF container and publish it atomically.
void write_artifact_file(const std::filesystem::path& path, ArtifactKind kind,
                         std::string_view payload);

struct Artifact {
  ArtifactKind kind{};
  std::string payload;
};

/// Load and fully validate an artifact. Throws std::runtime_error naming
/// the file on missing/bad magic, unsupported version, size mismatch, or
/// checksum failure.
[[nodiscard]] Artifact read_artifact_file(const std::filesystem::path& path);

/// Header + checksum probe without decoding (store ls/verify).
struct ArtifactInfo {
  ArtifactKind kind{};
  std::uint64_t payload_bytes = 0;
  bool intact = false;  // header valid and checksum matches
};
[[nodiscard]] ArtifactInfo inspect_artifact_file(const std::filesystem::path& path) noexcept;

}  // namespace carbonedge::store
