#include "store/trace_tier.hpp"

#include <stdexcept>

#include "carbon/trace.hpp"
#include "store/artifact.hpp"
#include "store/codecs.hpp"

namespace carbonedge::store {

ArtifactTraceStore::ArtifactTraceStore(std::shared_ptr<ArtifactStore> artifacts)
    : artifacts_(std::move(artifacts)) {
  if (artifacts_ == nullptr) {
    throw std::invalid_argument("ArtifactTraceStore: null artifact store");
  }
}

std::shared_ptr<const carbon::CarbonTrace> ArtifactTraceStore::load(const std::string& key) {
  const auto payload = artifacts_->load(ArtifactKind::kCarbonTrace, key);
  if (!payload.has_value()) return nullptr;
  try {
    return std::make_shared<const carbon::CarbonTrace>(decode_trace(*payload));
  } catch (const std::exception&) {
    // Decodes past the container checksum but not past the codec: treat as
    // a corrupt entry — miss, so the cache re-synthesizes and overwrites.
    return nullptr;
  }
}

void ArtifactTraceStore::save(const std::string& key, const carbon::CarbonTrace& trace) {
  try {
    artifacts_->save(ArtifactKind::kCarbonTrace, key, encode_trace(trace));
  } catch (const std::exception&) {
    // Best-effort tier: a publish failure degrades this key to memory-only.
  }
}

util::FileLock ArtifactTraceStore::lock_entry(const std::string& key) {
  return artifacts_->lock_entry(ArtifactKind::kCarbonTrace, key);
}

std::shared_ptr<ArtifactTraceStore> make_trace_tier(std::shared_ptr<ArtifactStore> artifacts) {
  if (artifacts == nullptr) return nullptr;
  return std::make_shared<ArtifactTraceStore>(std::move(artifacts));
}

}  // namespace carbonedge::store

namespace carbonedge::carbon {

// Defined here rather than in carbon/trace_cache.cpp: the global instance's
// first-use attach of the CARBONEDGE_STORE_DIR store is store-layer policy
// (and referencing open_from_env from the carbon layer would invert the
// module DAG). Any caller of global() links this object file in, so the
// environment attach behaves exactly as it always has.
TraceCache& TraceCache::global() {
  static TraceCache* cache = [] {
    auto* instance = new TraceCache();
    instance->set_store(store::make_trace_tier(store::ArtifactStore::open_from_env()));
    return instance;
  }();
  return *cache;
}

}  // namespace carbonedge::carbon
