#include "store/sweep_store.hpp"

#include <stdexcept>

#include "carbon/synthesizer.hpp"
#include "carbon/trace_cache.hpp"
#include "carbon/zone.hpp"
#include "core/simulation.hpp"
#include "geo/site.hpp"
#include "sim/device.hpp"
#include "sim/workload.hpp"
#include "obs/metrics.hpp"
#include "solver/assignment.hpp"
#include "store/codecs.hpp"
#include "util/hash.hpp"

namespace carbonedge::store {

namespace {

// Registry mirrors of the per-instance atomics (dual-write): deterministic
// view — for a fixed on-disk state the hit/miss/store/failure pattern is a
// pure function of the grid.
struct SweepMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& stores;
  obs::Counter& write_failures;
};

SweepMetrics& sweep_metrics() {
  obs::Registry& registry = obs::Registry::global();
  static SweepMetrics metrics{
      registry.counter("store.sweep.hits", "sweep cells resumed from disk",
                       obs::View::kDeterministic),
      registry.counter("store.sweep.misses", "sweep-cell lookups that missed",
                       obs::View::kDeterministic),
      registry.counter("store.sweep.stores", "freshly computed cells persisted",
                       obs::View::kDeterministic),
      registry.counter("store.sweep.write_failures",
                       "cell persists that failed (store degraded to memory-only)",
                       obs::View::kDeterministic)};
  return metrics;
}

}  // namespace

namespace {

void mix_workload(util::Fingerprint& fp, const sim::WorkloadParams& w) {
  fp.mix(w.arrivals_per_site);
  fp.mix(static_cast<std::uint64_t>(w.demand));
  for (const double weight : w.model_weights) fp.mix(weight);
  fp.mix(w.min_rps);
  fp.mix(w.max_rps);
  fp.mix(w.min_state_mb);
  fp.mix(w.max_state_mb);
  fp.mix(w.max_defer_epochs);
  fp.mix(w.latency_limit_rtt_ms);
  fp.mix(w.mean_lifetime_epochs);
  fp.mix(static_cast<std::uint64_t>(w.initial_per_site));
  fp.mix(w.initial_lifetime_epochs);
  fp.mix(w.seed);
}

void mix_solver(util::Fingerprint& fp, const solver::AssignmentOptions& s) {
  fp.mix(s.milp.lp.max_iterations);
  fp.mix(s.milp.lp.pivot_tolerance);
  fp.mix(s.milp.lp.feasibility_tolerance);
  fp.mix(s.milp.max_nodes);
  fp.mix(s.milp.integrality_tolerance);
  fp.mix(s.milp.gap_tolerance);
  fp.mix(static_cast<std::uint64_t>(s.local_search_rounds));
  fp.mix(static_cast<std::uint64_t>(s.exact_size_limit));
  fp.mix(s.shard);
  // shard_threads and shard_pool are excluded: the decomposition contract
  // guarantees bit-identical answers for every thread count, and the pool
  // is an execution vehicle, not an input.
}

void mix_config(util::Fingerprint& fp, const core::SimulationConfig& c) {
  fp.mix(static_cast<std::uint64_t>(c.policy.kind));
  fp.mix(c.policy.alpha);
  fp.mix(static_cast<std::uint64_t>(c.start_hour));
  fp.mix(c.epochs);
  fp.mix(c.epoch_hours);
  mix_workload(fp, c.workload);
  fp.mix(c.forecast_horizon_hours);
  fp.mix(static_cast<std::uint64_t>(c.power.min_on_per_site));
  fp.mix(c.power.enabled);
  fp.mix(c.reoptimize_every);
  fp.mix(c.reoptimize_monthly);
  fp.mix(c.migration.network_energy_wh_per_gb);
  fp.mix(c.migration.cost_aware);
  fp.mix(c.migration.benefit_horizon_epochs);
  fp.mix(c.migration.hysteresis);
  fp.mix(c.failures.mtbf_epochs);
  fp.mix(c.failures.repair_epochs);
  fp.mix(c.failures.seed);
  mix_solver(fp, c.solver_options);
  fp.mix(c.account_base_power);
}

}  // namespace

SweepStore::SweepStore(std::shared_ptr<ArtifactStore> artifacts)
    : artifacts_(std::move(artifacts)) {
  if (artifacts_ == nullptr) {
    throw std::invalid_argument("sweep store: artifact store must be non-null");
  }
}

std::string SweepStore::fingerprint(const runner::Scenario& scenario) {
  util::Fingerprint fp;
  fp.mix("carbonedge/sweep/v2");  // schema salt: bump when the field list changes
  // Region identity is its resolved site list. SiteIds are only stable
  // within one catalog, so the fingerprint mixes each site's full physical
  // identity (name, country, location, population) rather than trusting the
  // id — two regions over different compiled catalogs never collide even
  // when their id lists match. Each city's zone-spec content joins too,
  // exactly as the runner's service will resolve it (catalog spec, default
  // synthesizer params): without this, a recalibration of the built-in
  // carbon dataset or the synthesizer would silently resume stale cells.
  const auto& catalog = carbon::ZoneCatalog::builtin();
  const std::vector<geo::City> cities = scenario.region.resolve();
  fp.mix(static_cast<std::uint64_t>(cities.size()));
  for (const geo::City& city : cities) {
    fp.mix(static_cast<std::uint64_t>(city.id));
    fp.mix(city.name);
    fp.mix(city.country);
    fp.mix(static_cast<std::uint64_t>(city.continent));
    fp.mix(city.location.lat_deg);
    fp.mix(city.location.lon_deg);
    fp.mix(city.population_k);
    fp.mix(carbon::TraceCache::key_of(catalog.spec_for(city), carbon::SynthesizerParams{}));
  }
  // The latency band changes the feasible-pair geography, so banded and
  // dense runs of the same cell are distinct outcomes.
  fp.mix(scenario.latency_band_ms);
  const runner::DeviceMix& mix = scenario.mix;
  fp.mix(static_cast<std::uint64_t>(mix.devices.size()));
  for (const sim::DeviceType device : mix.devices) {
    fp.mix(static_cast<std::uint64_t>(device));
  }
  fp.mix(static_cast<std::uint64_t>(mix.servers_per_site));
  fp.mix(static_cast<std::uint64_t>(mix.total_servers));
  fp.mix(static_cast<std::uint64_t>(mix.initially_off_per_site));
  fp.mix(scenario.forecaster);
  mix_config(fp, scenario.config);
  return fp.digest().hex();
}

std::optional<core::SimulationResult> SweepStore::load(const runner::Scenario& scenario) {
  auto payload = artifacts_->load(ArtifactKind::kSweepOutcome, fingerprint(scenario));
  if (payload) {
    try {
      core::SimulationResult result = decode_outcome(*payload);
      hits_.fetch_add(1, std::memory_order_relaxed);
      sweep_metrics().hits.add();
      return result;
    } catch (const std::exception&) {
      // Checksum-valid but undecodable (schema drift): recompute the cell;
      // the fresh save overwrites the stale entry.
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  sweep_metrics().misses.add();
  return std::nullopt;
}

void SweepStore::save(const runner::Scenario& scenario, const core::SimulationResult& result) {
  try {
    artifacts_->save(ArtifactKind::kSweepOutcome, fingerprint(scenario),
                     encode_outcome(result));
  } catch (const std::exception&) {
    // Persisting is best-effort: a full or read-only store must not kill a
    // sweep whose cell already computed — the cell just won't resume warm.
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    sweep_metrics().write_failures.add();
    return;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  sweep_metrics().stores.add();
}

}  // namespace carbonedge::store
