// Compiled site catalogs in the artifact store.
//
// `carbonedge_cli catalog build` turns a GeoNames-style TSV dump
// (geo/catalog_io.hpp) into a validated, checksummed CEAF blob under
// <store>/catalogs/<key>.ceaf. The key is a content fingerprint of the
// *canonical encoded payload*, so two dumps that differ only in formatting
// (comments, blank lines, number spelling) compile to the same entry, and
// any process holding the key loads bit-identical site data.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geo/catalog.hpp"
#include "store/artifact_store.hpp"

namespace carbonedge::store {

/// Parse + validate `tsv_text`, encode the catalog, and publish it under
/// its content key. Returns the key. Throws std::runtime_error (with the
/// offending line number) on malformed input.
std::string build_site_catalog(const ArtifactStore& store, std::string_view tsv_text);

/// Load a compiled catalog by key. Absent or corrupt entries (container
/// checksum, payload schema, or catalog-invariant failures) come back as
/// nullopt — compiled catalogs are rebuildable from their dump, so every
/// failure mode is a cache miss, never a crash.
[[nodiscard]] std::optional<geo::CompiledSiteCatalog> load_site_catalog(
    const ArtifactStore& store, std::string_view key);

}  // namespace carbonedge::store
