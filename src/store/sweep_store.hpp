// Persistent sweep-cell cache: ScenarioOutcome rows keyed by a canonical
// Scenario fingerprint.
//
// A sweep cell is a pure function of its Scenario (the simulation is
// deterministic given the config), so its SimulationResult can be persisted
// and replayed. SweepStore fingerprints every result-determining field of a
// Scenario — region cities, device mix, forecaster, and the full
// SimulationConfig — and stores the cell's complete SimulationResult
// (counters + telemetry + histogram, bit-exact doubles) in the artifact
// store. ScenarioRunner consults it before dispatch: an interrupted or
// extended grid resumes incrementally, and because cached results
// round-trip bit-exactly, the final summary table is byte-identical to a
// cold one-shot run.
//
// Cosmetic fields (Scenario::index, Scenario::label, region/mix display
// names) are deliberately excluded from the fingerprint: they do not affect
// the simulation, and the runner re-derives them from the live grid
// expansion, so relabeled grids still share cached cells.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/simulation.hpp"
#include "runner/scenario_grid.hpp"
#include "runner/scenario_runner.hpp"
#include "store/artifact_store.hpp"

namespace carbonedge::store {

class SweepStore final : public runner::CellCache {
 public:
  /// Throws std::invalid_argument on a null store.
  explicit SweepStore(std::shared_ptr<ArtifactStore> artifacts);

  /// Canonical content fingerprint (hex digest) of a scenario — the entry's
  /// on-disk name.
  [[nodiscard]] static std::string fingerprint(const runner::Scenario& scenario);

  /// The persisted result for `scenario`, or nullopt on a miss. Bumps
  /// hits()/misses().
  [[nodiscard]] std::optional<core::SimulationResult> load(
      const runner::Scenario& scenario) override;

  /// Persist a computed cell (atomic publish; safe from concurrent sweep
  /// workers and processes). Best-effort: an unwritable store counts a
  /// write_failure instead of throwing — the sweep's in-memory result is
  /// already good, it just won't resume warm.
  void save(const runner::Scenario& scenario, const core::SimulationResult& result) override;

  /// Degradation counters for ScenarioRunner::summarize's Store column: a
  /// nonzero write_failures means this sweep ran memory-only for some
  /// cells and will not resume warm.
  [[nodiscard]] runner::CellCacheHealth health() const override {
    return {stores(), write_failures()};
  }

  [[nodiscard]] const std::shared_ptr<ArtifactStore>& artifacts() const noexcept {
    return artifacts_;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stores() const noexcept {
    return stores_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t write_failures() const noexcept {
    return write_failures_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<ArtifactStore> artifacts_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> write_failures_{0};
};

}  // namespace carbonedge::store
