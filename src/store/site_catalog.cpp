#include "store/site_catalog.hpp"

#include <exception>
#include <utility>
#include <vector>

#include "geo/catalog.hpp"
#include "geo/catalog_io.hpp"
#include "geo/site.hpp"
#include "store/codecs.hpp"
#include "util/hash.hpp"

namespace carbonedge::store {

std::string build_site_catalog(const ArtifactStore& store, std::string_view tsv_text) {
  std::vector<geo::City> sites = geo::parse_sites_tsv(tsv_text);
  const geo::CompiledSiteCatalog catalog(std::move(sites));
  const std::string payload = encode_site_catalog(catalog);

  util::Fingerprint fp;
  fp.mix("carbonedge/site-catalog/v1");
  fp.mix(payload);
  const std::string key = fp.digest().hex();

  // Content addressing makes the publish idempotent: an existing entry
  // under this key already holds byte-identical data.
  if (!store.contains(ArtifactKind::kSiteCatalog, key)) {
    store.save(ArtifactKind::kSiteCatalog, key, payload);
  }
  return key;
}

std::optional<geo::CompiledSiteCatalog> load_site_catalog(const ArtifactStore& store,
                                                          std::string_view key) {
  const std::optional<std::string> payload = store.load(ArtifactKind::kSiteCatalog, key);
  if (!payload) return std::nullopt;
  try {
    return decode_site_catalog(*payload);
  } catch (const std::exception&) {
    // Checksum-valid but undecodable (schema drift) or invariant-breaking:
    // treat as a miss, exactly like the container-level corrupt path.
    return std::nullopt;
  }
}

}  // namespace carbonedge::store
