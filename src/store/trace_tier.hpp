// The store-layer side of the carbon::TraceStore seam.
//
// carbon::TraceCache (the L1 in-memory tier) sits below the store layer in
// the module DAG, so it talks to an abstract carbon::TraceStore instead of
// naming store::ArtifactStore. ArtifactTraceStore is that adapter: it owns
// the CEAF codec round-trip (encode_trace/decode_trace) and maps the cache's
// key-only protocol onto ArtifactKind::kCarbonTrace entries. A payload that
// fails to decode — schema drift, tampering past the container checksum —
// comes back as a plain nullptr miss, and publish failures (disk full,
// read-only store) are swallowed: the store is a cache tier, never a
// correctness dependency.
#pragma once

#include <memory>
#include <string>

#include "carbon/trace.hpp"
#include "carbon/trace_cache.hpp"
#include "store/artifact_store.hpp"
#include "util/fs.hpp"

namespace carbonedge::store {

class ArtifactTraceStore final : public carbon::TraceStore {
 public:
  /// Throws std::invalid_argument on a null store.
  explicit ArtifactTraceStore(std::shared_ptr<ArtifactStore> artifacts);

  [[nodiscard]] std::shared_ptr<const carbon::CarbonTrace> load(
      const std::string& key) override;
  void save(const std::string& key, const carbon::CarbonTrace& trace) override;
  [[nodiscard]] util::FileLock lock_entry(const std::string& key) override;

  [[nodiscard]] const std::shared_ptr<ArtifactStore>& artifacts() const noexcept {
    return artifacts_;
  }

 private:
  std::shared_ptr<ArtifactStore> artifacts_;
};

/// Wraps `artifacts` for carbon::TraceCache::set_store, passing a null
/// pointer through (detach stays detach).
[[nodiscard]] std::shared_ptr<ArtifactTraceStore> make_trace_tier(
    std::shared_ptr<ArtifactStore> artifacts);

}  // namespace carbonedge::store
