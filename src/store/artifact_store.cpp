#include "store/artifact_store.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/env.hpp"

namespace carbonedge::store {

namespace {

// Registry mirrors (dual-write next to the per-instance corrupt_reads_):
// reads/hits/writes are pure functions of the request stream against a
// given on-disk state, so they sit in the deterministic view.
struct ArtifactMetrics {
  obs::Counter& reads;
  obs::Counter& read_hits;
  obs::Counter& corrupt_reads;
  obs::Counter& writes;
};

ArtifactMetrics& artifact_metrics() {
  obs::Registry& registry = obs::Registry::global();
  static ArtifactMetrics metrics{
      registry.counter("store.artifact.reads", "artifact load attempts",
                       obs::View::kDeterministic),
      registry.counter("store.artifact.read_hits", "artifact loads that returned a payload",
                       obs::View::kDeterministic),
      registry.counter("store.artifact.corrupt_reads",
                       "reads that found a corrupt entry (treated as misses)",
                       obs::View::kDeterministic),
      registry.counter("store.artifact.writes", "artifact publishes attempted",
                       obs::View::kDeterministic)};
  return metrics;
}

obs::Phase& read_phase() {
  static obs::Phase phase("store.read");
  return phase;
}

obs::Phase& write_phase() {
  static obs::Phase phase("store.write");
  return phase;
}

obs::Phase& gc_phase() {
  static obs::Phase phase("store.gc");
  return phase;
}

constexpr ArtifactKind kAllKinds[] = {ArtifactKind::kCarbonTrace, ArtifactKind::kLatencyMatrix,
                                      ArtifactKind::kSweepOutcome, ArtifactKind::kSiteCatalog};

const char* dir_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kCarbonTrace: return "traces";
    case ArtifactKind::kLatencyMatrix: return "latency";
    case ArtifactKind::kSweepOutcome: return "sweeps";
    case ArtifactKind::kSiteCatalog: return "catalogs";
  }
  throw std::invalid_argument("artifact store: unknown kind");
}

}  // namespace

ArtifactStore::ArtifactStore(std::filesystem::path root) : root_(std::move(root)) {
  std::error_code ec;
  for (const ArtifactKind kind : kAllKinds) {
    std::filesystem::create_directories(root_ / dir_name(kind), ec);
    if (ec) {
      throw std::runtime_error("artifact store: cannot create " +
                               (root_ / dir_name(kind)).string() + ": " + ec.message());
    }
  }
  std::filesystem::create_directories(root_ / "locks", ec);
  if (ec) {
    throw std::runtime_error("artifact store: cannot create " + (root_ / "locks").string() +
                             ": " + ec.message());
  }
}

std::shared_ptr<ArtifactStore> ArtifactStore::open_from_env() {
  const std::string dir = util::env::get_or("CARBONEDGE_STORE_DIR", "");
  if (dir.empty()) return nullptr;
  return std::make_shared<ArtifactStore>(std::filesystem::path(dir));
}

std::filesystem::path ArtifactStore::kind_dir(ArtifactKind kind) const {
  return root_ / dir_name(kind);
}

std::filesystem::path ArtifactStore::entry_path(ArtifactKind kind,
                                                std::string_view key) const {
  return kind_dir(kind) / (std::string(key) + std::string(kArtifactExtension));
}

bool ArtifactStore::contains(ArtifactKind kind, std::string_view key) const {
  std::error_code ec;
  return std::filesystem::exists(entry_path(kind, key), ec) && !ec;
}

std::optional<std::string> ArtifactStore::load(ArtifactKind kind, std::string_view key) const {
  const obs::Span span(read_phase());
  artifact_metrics().reads.add();
  const std::filesystem::path path = entry_path(kind, key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  try {
    Artifact artifact = read_artifact_file(path);
    if (artifact.kind != kind) throw std::runtime_error("kind mismatch");
    artifact_metrics().read_hits.add();
    return std::move(artifact.payload);
  } catch (const std::exception&) {
    // Torn by a crashed writer, bit rot, or a foreign file under our name:
    // report a miss so the caller regenerates and overwrites it.
    corrupt_reads_.fetch_add(1, std::memory_order_relaxed);
    artifact_metrics().corrupt_reads.add();
    return std::nullopt;
  }
}

void ArtifactStore::save(ArtifactKind kind, std::string_view key,
                         std::string_view payload) const {
  const obs::Span span(write_phase());
  artifact_metrics().writes.add();
  write_artifact_file(entry_path(kind, key), kind, payload);
}

std::filesystem::path ArtifactStore::lock_path(ArtifactKind kind, std::string_view key) const {
  return root_ / "locks" / (std::string(dir_name(kind)) + "-" + std::string(key) + ".lock");
}

util::FileLock ArtifactStore::lock_entry(ArtifactKind kind, std::string_view key) const {
  return util::FileLock(lock_path(kind, key));
}

std::vector<ArtifactStore::Entry> ArtifactStore::list(bool verify) const {
  std::vector<Entry> entries;
  for (const ArtifactKind kind : kAllKinds) {
    std::error_code ec;
    for (const auto& file : std::filesystem::directory_iterator(kind_dir(kind), ec)) {
      if (!file.is_regular_file() || file.path().extension() != kArtifactExtension) continue;
      Entry entry;
      entry.kind = kind;
      entry.key = file.path().stem().string();
      std::error_code size_ec;
      const std::uintmax_t size = file.file_size(size_ec);
      // Deleted between iteration and stat (concurrent gc): report 0, not
      // the uintmax_t(-1) error sentinel, which would wreck ls totals.
      entry.file_bytes = size_ec || size == static_cast<std::uintmax_t>(-1) ? 0 : size;
      if (verify) {
        const ArtifactInfo info = inspect_artifact_file(file.path());
        entry.intact = info.intact && info.kind == kind;
      }
      entries.push_back(std::move(entry));
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.kind != b.kind ? a.kind < b.kind : a.key < b.key;
  });
  return entries;
}

namespace {

/// Last use of an entry for LRU eviction: the newer of atime and mtime
/// (reads refresh atime — on relatime mounts lazily, but still monotone
/// enough for a cache — and rewrites refresh mtime). A failed stat reports
/// the maximum so racing entries sort as freshest and are never evicted.
std::int64_t last_use_ns(const std::filesystem::path& path) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::numeric_limits<std::int64_t>::max();
  const auto to_ns = [](const ::timespec& ts) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 +
           static_cast<std::int64_t>(ts.tv_nsec);
  };
  return std::max(to_ns(st.st_atim), to_ns(st.st_mtim));
}

}  // namespace

ArtifactStore::GcReport ArtifactStore::gc(std::uintmax_t max_bytes) const {
  const obs::Span span(gc_phase());
  GcReport report;
  // Snapshot LRU candidates before anything below opens entry contents:
  // the integrity sweep's reads would refresh every entry's atime and
  // erase the very recency signal eviction orders by.
  struct Candidate {
    std::filesystem::path path;
    ArtifactKind kind{};
    std::string key;
    std::uintmax_t bytes = 0;
    std::int64_t last_use = 0;
  };
  std::vector<Candidate> candidates;
  if (max_bytes > 0) {
    for (const ArtifactKind kind : kAllKinds) {
      std::error_code ec;
      for (const auto& file : std::filesystem::directory_iterator(kind_dir(kind), ec)) {
        if (!file.is_regular_file() || file.path().extension() != kArtifactExtension) continue;
        std::error_code size_ec;
        const std::uintmax_t size = file.file_size(size_ec);
        if (size_ec || size == static_cast<std::uintmax_t>(-1)) continue;
        candidates.push_back(Candidate{file.path(), kind, file.path().stem().string(), size,
                                       last_use_ns(file.path())});
      }
    }
  }
  const auto remove_file = [&report](const std::filesystem::path& path) {
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, ec);
    if (std::filesystem::remove(path, ec) && !ec) {
      ++report.removed_files;
      report.reclaimed_bytes += bytes == static_cast<std::uintmax_t>(-1) ? 0 : bytes;
    }
  };
  // A temp file younger than this belongs to a live writer between write
  // and rename, not a crashed one — deleting it would make that writer's
  // rename fail. Atomic publishes take milliseconds, so minutes of slack is
  // generous.
  constexpr auto kTempGraceLimit = std::chrono::minutes(10);
  // lint: nondeterminism-ok(gc grace period is wall-clock by design; never touches simulation output)
  const auto now = std::filesystem::file_time_type::clock::now();
  for (const ArtifactKind kind : kAllKinds) {
    std::error_code ec;
    for (const auto& file : std::filesystem::directory_iterator(kind_dir(kind), ec)) {
      if (!file.is_regular_file()) continue;
      const std::string name = file.path().filename().string();
      if (util::is_atomic_temp_name(name)) {
        std::error_code time_ec;
        const auto written = std::filesystem::last_write_time(file.path(), time_ec);
        if (!time_ec && now - written > kTempGraceLimit) remove_file(file.path());
        continue;
      }
      if (file.path().extension() != kArtifactExtension) continue;
      const ArtifactInfo info = inspect_artifact_file(file.path());
      if (!info.intact || info.kind != kind) remove_file(file.path());
    }
  }
  // Lock files are one-per-key and otherwise accumulate forever on a
  // long-lived store. Only reap ones that are past the grace period AND
  // currently unheld (non-blocking probe) — unlinking a held lock could
  // split future waiters across two inodes, whose only consequence here
  // would be a duplicate synthesis, but there is no reason to risk it.
  {
    std::error_code ec;
    for (const auto& file : std::filesystem::directory_iterator(root_ / "locks", ec)) {
      if (!file.is_regular_file()) continue;
      std::error_code time_ec;
      const auto written = std::filesystem::last_write_time(file.path(), time_ec);
      if (time_ec || now - written <= kTempGraceLimit) continue;
      const util::FileLock probe(file.path(), util::FileLock::Mode::kTry);
      if (probe.held()) remove_file(file.path());
    }
  }
  // Size cap: evict least-recently-used intact entries until the store
  // fits. Runs after the corrupt/temp sweep (junk never crowds out live
  // entries — candidates it removed are skipped below), over the snapshot
  // taken up top.
  if (max_bytes > 0) {
    std::uintmax_t total = 0;
    std::error_code ec;
    std::erase_if(candidates, [&](const Candidate& candidate) {
      return !std::filesystem::exists(candidate.path, ec) || ec;
    });
    for (const Candidate& candidate : candidates) total += candidate.bytes;
    std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
      return a.last_use != b.last_use ? a.last_use < b.last_use
                                      : a.path.native() < b.path.native();
    });
    for (const Candidate& candidate : candidates) {
      if (total <= max_bytes) break;
      // In-flight entries (another process computing or reading under the
      // entry lock) are never evicted; holding the probe lock across the
      // removal keeps a new computation from racing the unlink.
      const util::FileLock probe(lock_path(candidate.kind, candidate.key),
                                 util::FileLock::Mode::kTry);
      if (!probe.held()) continue;
      std::error_code remove_ec;
      if (std::filesystem::remove(candidate.path, remove_ec) && !remove_ec) {
        ++report.evicted_files;
        report.evicted_bytes += candidate.bytes;
        total -= candidate.bytes;
      }
    }
  }
  return report;
}

}  // namespace carbonedge::store
