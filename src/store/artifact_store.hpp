// Content-addressed persistent artifact store, shared across processes.
//
// Layout under one root directory (CARBONEDGE_STORE_DIR):
//
//   <root>/traces/<key>.ceaf     synthesized carbon traces (L2 tier of
//                                carbon::TraceCache)
//   <root>/latency/<key>.ceaf    latency matrices
//   <root>/sweeps/<key>.ceaf     per-scenario SimulationResults (SweepStore)
//   <root>/locks/<kind>-<key>.lock   advisory cross-process locks
//
// Keys are caller-supplied content hashes (util::Fingerprint hex digests),
// so equal inputs land on the same file from any process. Writers publish
// entries via write-then-atomic-rename, so readers never see a torn file;
// every read validates the container checksum and treats a corrupt entry
// as absent (it will be regenerated and rewritten). lock_entry() gives
// cooperating processes a synthesize-once guarantee per key: take the
// lock, re-check load(), and only compute on a confirmed miss.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/artifact.hpp"
#include "util/fs.hpp"

namespace carbonedge::store {

class ArtifactStore {
 public:
  /// Opens (creating directories as needed) a store rooted at `root`.
  /// Throws std::runtime_error if the directories cannot be created.
  explicit ArtifactStore(std::filesystem::path root);

  /// Store named by the CARBONEDGE_STORE_DIR environment variable, or
  /// nullptr when the variable is unset/empty.
  [[nodiscard]] static std::shared_ptr<ArtifactStore> open_from_env();

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  [[nodiscard]] std::filesystem::path entry_path(ArtifactKind kind,
                                                 std::string_view key) const;
  [[nodiscard]] bool contains(ArtifactKind kind, std::string_view key) const;

  /// The entry's payload, or nullopt when absent. A present-but-corrupt
  /// entry (bad header/checksum) counts as absent and bumps
  /// corrupt_reads() — callers regenerate and overwrite it.
  [[nodiscard]] std::optional<std::string> load(ArtifactKind kind,
                                               std::string_view key) const;

  /// Frame `payload` and publish it atomically under (kind, key).
  void save(ArtifactKind kind, std::string_view key, std::string_view payload) const;

  /// Blocking exclusive advisory lock scoped to (kind, key). Hold it across
  /// the load-recheck + compute + save sequence to guarantee at most one
  /// process computes a given artifact.
  [[nodiscard]] util::FileLock lock_entry(ArtifactKind kind, std::string_view key) const;

  struct Entry {
    ArtifactKind kind{};
    std::string key;
    std::uintmax_t file_bytes = 0;
    bool intact = true;  // only meaningful when listed with verify=true
  };
  /// All entries, sorted by (kind dir, key). With verify, each entry's
  /// checksum is validated and reported in `intact`.
  [[nodiscard]] std::vector<Entry> list(bool verify = false) const;

  struct GcReport {
    std::size_t removed_files = 0;       // temp leftovers + corrupt entries
    std::uintmax_t reclaimed_bytes = 0;  // bytes freed by those removals
    std::size_t evicted_files = 0;       // intact entries evicted by the cap
    std::uintmax_t evicted_bytes = 0;
  };
  /// Remove crashed writers' temp leftovers and corrupt entries. Temp
  /// files younger than a grace period are presumed to belong to a live
  /// writer mid-publish and are kept, so gc is safe to run concurrently
  /// with active sweeps.
  ///
  /// With `max_bytes > 0`, additionally bound the store: while the intact
  /// entries total more than `max_bytes`, evict least-recently-used first
  /// (the newer of access and modification time, so both reads and
  /// rewrites refresh an entry; recency is snapshotted before this call's
  /// own integrity reads). On noatime mounts — or after a separate
  /// verify/gc pass flattened atimes — recency degrades gracefully toward
  /// modification time with a deterministic path tie-break. Entries whose
  /// advisory lock is held are in flight — another process is computing or
  /// reading them — and are never evicted; an evicted entry is only ever a
  /// cache miss, to be regenerated on next use.
  GcReport gc(std::uintmax_t max_bytes = 0) const;

  /// Reads that found a corrupt entry (treated as misses) on this instance.
  [[nodiscard]] std::uint64_t corrupt_reads() const noexcept {
    return corrupt_reads_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::filesystem::path kind_dir(ArtifactKind kind) const;
  [[nodiscard]] std::filesystem::path lock_path(ArtifactKind kind, std::string_view key) const;

  std::filesystem::path root_;
  mutable std::atomic<std::uint64_t> corrupt_reads_{0};
};

}  // namespace carbonedge::store
