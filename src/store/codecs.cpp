#include "store/codecs.hpp"

#include <span>
#include <stdexcept>

#include "geo/coord.hpp"
#include "geo/site.hpp"
#include "store/artifact.hpp"

namespace carbonedge::store {

namespace {

// Per-kind payload schemas; bump when a codec's field list changes.
constexpr std::uint32_t kTraceSchema = 1;
constexpr std::uint32_t kLatencySchema = 1;
constexpr std::uint32_t kOutcomeSchema = 1;
constexpr std::uint32_t kSiteCatalogSchema = 1;

void require_schema(std::uint32_t got, std::uint32_t want, const char* what) {
  if (got != want) {
    throw std::runtime_error(std::string("artifact: unsupported ") + what + " schema " +
                             std::to_string(got));
  }
}

}  // namespace

std::string encode_trace(const carbon::CarbonTrace& trace) {
  ByteWriter w;
  w.u32(kTraceSchema);
  w.str(trace.zone());
  w.u64(trace.hours());
  const bool with_mix = !trace.mixes().empty();
  w.u8(with_mix ? 1 : 0);
  for (const double v : trace.values()) w.f64(v);
  if (with_mix) {
    // Column per source: friendlier to per-source scans than row-major.
    for (const carbon::EnergySource s : carbon::kAllSources) {
      for (const carbon::GenerationMix& mix : trace.mixes()) w.f64(mix.at(s));
    }
  }
  return w.take();
}

carbon::CarbonTrace decode_trace(std::string_view payload) {
  ByteReader r(payload);
  require_schema(r.u32(), kTraceSchema, "trace");
  std::string zone = r.str();
  const std::uint64_t hours = r.u64();
  const bool with_mix = r.u8() != 0;
  std::vector<double> intensity;
  intensity.reserve(hours);
  for (std::uint64_t h = 0; h < hours; ++h) intensity.push_back(r.f64());
  carbon::CarbonTrace trace(std::move(zone), std::move(intensity));
  if (with_mix) {
    std::vector<carbon::GenerationMix> mixes(hours);
    for (const carbon::EnergySource s : carbon::kAllSources) {
      for (std::uint64_t h = 0; h < hours; ++h) mixes[h].set(s, r.f64());
    }
    trace.set_mixes(std::move(mixes));
  }
  r.expect_exhausted();
  return trace;
}

std::string encode_site_catalog(const geo::SiteCatalog& catalog) {
  const std::span<const geo::City> sites = catalog.all();
  ByteWriter w;
  w.u32(kSiteCatalogSchema);
  w.u64(sites.size());
  // Variable-width string rows first, then the fixed-width numeric columns
  // (friendlier to whole-column scans than interleaving).
  for (const geo::City& city : sites) w.str(city.name);
  for (const geo::City& city : sites) w.str(city.country);
  for (const geo::City& city : sites) w.u8(static_cast<std::uint8_t>(city.continent));
  for (const geo::City& city : sites) w.f64(city.location.lat_deg);
  for (const geo::City& city : sites) w.f64(city.location.lon_deg);
  for (const geo::City& city : sites) w.f64(city.population_k);
  return w.take();
}

geo::CompiledSiteCatalog decode_site_catalog(std::string_view payload) {
  ByteReader r(payload);
  require_schema(r.u32(), kSiteCatalogSchema, "site catalog");
  const std::uint64_t count = r.u64();
  // Same wrap guard as the latency codec: a checksum-valid but hostile count
  // must not drive the reserve/loop arithmetic below.
  if (count > (std::uint64_t{1} << 24)) {
    throw std::runtime_error("artifact: implausible site catalog size");
  }
  std::vector<geo::City> sites(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    sites[i].id = static_cast<geo::SiteId>(i);
    sites[i].name = r.str();
  }
  for (std::uint64_t i = 0; i < count; ++i) sites[i].country = r.str();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(geo::Continent::kEurope)) {
      throw std::runtime_error("artifact: unknown continent in site catalog");
    }
    sites[i].continent = static_cast<geo::Continent>(raw);
  }
  for (std::uint64_t i = 0; i < count; ++i) sites[i].location.lat_deg = r.f64();
  for (std::uint64_t i = 0; i < count; ++i) sites[i].location.lon_deg = r.f64();
  for (std::uint64_t i = 0; i < count; ++i) sites[i].population_k = r.f64();
  r.expect_exhausted();
  // CompiledSiteCatalog's constructor re-validates (dense ids, unique
  // names, coordinate ranges) — decode shares the ingest-time invariants.
  return geo::CompiledSiteCatalog(std::move(sites));
}

std::string encode_latency_matrix(const geo::LatencyMatrix& matrix) {
  ByteWriter w;
  w.u32(kLatencySchema);
  w.u64(matrix.size());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    for (std::size_t j = 0; j < matrix.size(); ++j) w.f64(matrix.one_way_ms(i, j));
  }
  return w.take();
}

geo::LatencyMatrix decode_latency_matrix(std::string_view payload) {
  ByteReader r(payload);
  require_schema(r.u32(), kLatencySchema, "latency");
  const std::uint64_t count = r.u64();
  // Guard the count*count arithmetic below: a hostile (yet checksum-valid)
  // payload could otherwise wrap it to a small number and desynchronize
  // the size the LatencyMatrix constructor checks against.
  if (count > (std::uint64_t{1} << 24)) {
    throw std::runtime_error("artifact: implausible latency matrix size");
  }
  std::vector<double> values;
  values.reserve(count * count);
  for (std::uint64_t i = 0; i < count * count; ++i) values.push_back(r.f64());
  r.expect_exhausted();
  return geo::LatencyMatrix(count, std::move(values));
}

std::string encode_outcome(const core::SimulationResult& result) {
  ByteWriter w;
  w.u32(kOutcomeSchema);
  w.f64(result.total_solve_ms);
  w.f64(result.mean_solve_ms);
  w.f64(result.mean_deploy_ms);
  w.u64(result.apps_placed);
  w.u64(result.apps_rejected);
  w.u64(result.migrations);
  w.u64(result.migrations_skipped);
  w.f64(result.migration_energy_wh);
  w.f64(result.migration_carbon_g);
  w.u64(result.server_failures);
  w.u64(result.apps_redeployed);
  w.u64(result.apps_deferred);
  w.u64(result.apps_expired_deferred);
  w.u64(result.app_downtime_epochs);

  const auto& epochs = result.telemetry.epochs();
  w.u64(epochs.size());
  for (const sim::EpochRecord& e : epochs) {
    w.u32(e.epoch);
    w.f64(e.rtt_weighted_sum_ms);
    w.f64(e.response_weighted_sum_ms);
    w.f64(e.rps_total);
    w.u32(e.apps_placed);
    w.u32(e.apps_rejected);
    w.f64(e.migration_energy_wh);
    w.f64(e.migration_carbon_g);
    w.u32(e.migrations);
    w.u32(e.failures);
    w.u64(e.sites.size());
    for (const sim::SiteEpochRecord& s : e.sites) {
      w.f64(s.energy_wh);
      w.f64(s.carbon_g);
      w.f64(s.intensity_g_kwh);
      w.u32(s.apps_hosted);
      w.f64(s.rps_hosted);
    }
  }

  const util::Histogram& hist = result.telemetry.response_histogram();
  w.f64(hist.bin_lo());
  w.f64(hist.bin_hi());
  w.u64(hist.bins().size());
  for (const double b : hist.bins()) w.f64(b);
  w.f64(hist.total_weight());
  w.f64(hist.weighted_sum());
  w.u64(hist.count());
  w.f64(hist.min());
  w.f64(hist.max());
  return w.take();
}

core::SimulationResult decode_outcome(std::string_view payload) {
  ByteReader r(payload);
  require_schema(r.u32(), kOutcomeSchema, "outcome");
  core::SimulationResult result;
  result.total_solve_ms = r.f64();
  result.mean_solve_ms = r.f64();
  result.mean_deploy_ms = r.f64();
  result.apps_placed = r.u64();
  result.apps_rejected = r.u64();
  result.migrations = r.u64();
  result.migrations_skipped = r.u64();
  result.migration_energy_wh = r.f64();
  result.migration_carbon_g = r.f64();
  result.server_failures = r.u64();
  result.apps_redeployed = r.u64();
  result.apps_deferred = r.u64();
  result.apps_expired_deferred = r.u64();
  result.app_downtime_epochs = r.u64();

  const std::uint64_t epoch_count = r.u64();
  for (std::uint64_t i = 0; i < epoch_count; ++i) {
    sim::EpochRecord e;
    e.epoch = r.u32();
    e.rtt_weighted_sum_ms = r.f64();
    e.response_weighted_sum_ms = r.f64();
    e.rps_total = r.f64();
    e.apps_placed = r.u32();
    e.apps_rejected = r.u32();
    e.migration_energy_wh = r.f64();
    e.migration_carbon_g = r.f64();
    e.migrations = r.u32();
    e.failures = r.u32();
    const std::uint64_t site_count = r.u64();
    e.sites.reserve(site_count);
    for (std::uint64_t s = 0; s < site_count; ++s) {
      sim::SiteEpochRecord site;
      site.energy_wh = r.f64();
      site.carbon_g = r.f64();
      site.intensity_g_kwh = r.f64();
      site.apps_hosted = r.u32();
      site.rps_hosted = r.f64();
      e.sites.push_back(site);
    }
    result.telemetry.record(std::move(e));
  }

  const double lo = r.f64();
  const double hi = r.f64();
  const std::uint64_t bin_count = r.u64();
  std::vector<double> bins;
  bins.reserve(bin_count);
  for (std::uint64_t b = 0; b < bin_count; ++b) bins.push_back(r.f64());
  const double total_weight = r.f64();
  const double weighted_sum = r.f64();
  const std::uint64_t count = r.u64();
  const double min = r.f64();
  const double max = r.f64();
  result.telemetry.set_response_histogram(
      util::Histogram::restore(lo, hi, std::move(bins), total_weight, weighted_sum, count,
                               min, max));
  r.expect_exhausted();
  return result;
}

}  // namespace carbonedge::store
