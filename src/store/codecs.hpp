// Payload codecs for the artifact container (store/artifact.hpp): columnar
// binary serializations of the artifact kinds.
//
// Doubles are stored as raw IEEE-754 bits, so every codec round-trips
// bit-exactly — a value decoded from the store is indistinguishable from
// the value that was encoded, which is what lets warmed benches and resumed
// sweeps render byte-identical tables. Each payload starts with a
// kind-schema version so payloads can evolve independently of the
// container format.
#pragma once

#include <string>
#include <string_view>

#include "carbon/trace.hpp"
#include "core/simulation.hpp"
#include "geo/catalog.hpp"
#include "geo/latency.hpp"

namespace carbonedge::store {

/// Carbon trace: zone name, then the intensity column, then (optionally)
/// one column per energy source of the realized generation mix.
[[nodiscard]] std::string encode_trace(const carbon::CarbonTrace& trace);
[[nodiscard]] carbon::CarbonTrace decode_trace(std::string_view payload);

/// Compiled site catalog: name/country/continent rows, then columnar
/// lat/lon/population doubles. The decoder re-runs CompiledSiteCatalog's
/// constructor validation, so a checksum-valid but semantically broken
/// payload (duplicate names, out-of-range coordinates) still throws.
[[nodiscard]] std::string encode_site_catalog(const geo::SiteCatalog& catalog);
[[nodiscard]] geo::CompiledSiteCatalog decode_site_catalog(std::string_view payload);

/// Dense one-way latency matrix (row-major column of doubles).
[[nodiscard]] std::string encode_latency_matrix(const geo::LatencyMatrix& matrix);
[[nodiscard]] geo::LatencyMatrix decode_latency_matrix(std::string_view payload);

/// One sweep cell's full SimulationResult: run-level counters, the complete
/// per-epoch/per-site telemetry series, and the response-time histogram —
/// enough that a store-resumed outcome is a perfect stand-in for a computed
/// one (benches that read telemetry stay byte-identical too).
[[nodiscard]] std::string encode_outcome(const core::SimulationResult& result);
[[nodiscard]] core::SimulationResult decode_outcome(std::string_view payload);

}  // namespace carbonedge::store
