#include "store/artifact.hpp"

#include <cstring>
#include <stdexcept>

#include "util/fs.hpp"
#include "util/hash.hpp"

namespace carbonedge::store {

namespace {

// "CEAF" + CRLF + ^Z + NUL: like the PNG magic, the tail bytes catch text-
// mode transfer mangling and stop accidental `cat` spew at the ^Z.
constexpr char kMagic[8] = {'C', 'E', 'A', 'F', '\r', '\n', '\x1a', '\0'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

struct Header {
  std::uint32_t version = 0;
  std::uint32_t kind = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

// Parses and validates the fixed header against the file's actual size.
// Returns false (with no exception) on any structural problem.
bool parse_header(std::string_view bytes, Header& header) noexcept {
  if (bytes.size() < kHeaderBytes) return false;
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) return false;
  std::memcpy(&header.version, bytes.data() + 8, 4);
  std::memcpy(&header.kind, bytes.data() + 12, 4);
  std::memcpy(&header.payload_bytes, bytes.data() + 16, 8);
  std::memcpy(&header.checksum, bytes.data() + 24, 8);
  if (header.version != kFormatVersion) return false;
  if (bytes.size() - kHeaderBytes != header.payload_bytes) return false;
  return true;
}

}  // namespace

const char* to_string(ArtifactKind kind) noexcept {
  switch (kind) {
    case ArtifactKind::kCarbonTrace: return "trace";
    case ArtifactKind::kLatencyMatrix: return "latency";
    case ArtifactKind::kSweepOutcome: return "sweep";
    case ArtifactKind::kSiteCatalog: return "catalog";
  }
  return "unknown";
}

void ByteReader::expect_exhausted() const {
  if (!exhausted()) throw std::runtime_error("artifact: trailing bytes in payload");
}

const char* ByteReader::take(std::uint64_t n) {
  if (n > static_cast<std::uint64_t>(end_ - cur_)) {
    throw std::runtime_error("artifact: truncated payload");
  }
  const char* p = cur_;
  cur_ += n;
  return p;
}

void write_artifact_file(const std::filesystem::path& path, ArtifactKind kind,
                         std::string_view payload) {
  std::string bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  bytes.append(kMagic, sizeof kMagic);
  const std::uint32_t version = kFormatVersion;
  const auto kind_raw = static_cast<std::uint32_t>(kind);
  const std::uint64_t payload_bytes = payload.size();
  const std::uint64_t checksum = util::fnv1a64(payload);
  bytes.append(reinterpret_cast<const char*>(&version), 4);
  bytes.append(reinterpret_cast<const char*>(&kind_raw), 4);
  bytes.append(reinterpret_cast<const char*>(&payload_bytes), 8);
  bytes.append(reinterpret_cast<const char*>(&checksum), 8);
  bytes.append(payload.data(), payload.size());
  util::write_file_atomic(path, bytes);
}

Artifact read_artifact_file(const std::filesystem::path& path) {
  const util::FileView view(path);
  Header header;
  if (!parse_header(view.bytes(), header)) {
    throw std::runtime_error("artifact: bad header in " + path.string());
  }
  const std::string_view payload = view.bytes().substr(kHeaderBytes);
  if (util::fnv1a64(payload) != header.checksum) {
    throw std::runtime_error("artifact: checksum mismatch in " + path.string());
  }
  return Artifact{static_cast<ArtifactKind>(header.kind), std::string(payload)};
}

ArtifactInfo inspect_artifact_file(const std::filesystem::path& path) noexcept {
  ArtifactInfo info;
  try {
    const util::FileView view(path);
    Header header;
    if (!parse_header(view.bytes(), header)) return info;
    info.kind = static_cast<ArtifactKind>(header.kind);
    info.payload_bytes = header.payload_bytes;
    info.intact = util::fnv1a64(view.bytes().substr(kHeaderBytes)) == header.checksum;
  } catch (...) {
    // unreadable file == not intact
  }
  return info;
}

}  // namespace carbonedge::store
