// Built-in city database.
//
// Substitutes for the WonderNetwork city list and the Akamai CDN site list
// (both proprietary): ~130 US/Canadian and European cities with WGS-84
// coordinates and metro populations. Every city named in the paper
// (Figures 1-4, Table 1, Section 6.3.3) is present so the regional
// experiments run against the paper's own geography.
//
// CityDatabase is the paper-exact SiteCatalog implementation: any API that
// takes `const SiteCatalog&` accepts `CityDatabase::builtin()` directly, and
// the lookup helpers (by_id/find/require/by_continent/nearest) are inherited
// from the catalog interface unchanged.
#pragma once

#include <span>
#include <vector>

#include "geo/catalog.hpp"
#include "geo/site.hpp"

namespace carbonedge::geo {

/// Read-only view over the built-in city set with name/id lookup.
class CityDatabase final : public SiteCatalog {
 public:
  /// The singleton built-in database.
  [[nodiscard]] static const CityDatabase& builtin();

  [[nodiscard]] std::span<const City> all() const noexcept override {
    return cities_;
  }

 private:
  CityDatabase();
  std::vector<City> cities_;
};

}  // namespace carbonedge::geo
