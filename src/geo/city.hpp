// Built-in city database.
//
// Substitutes for the WonderNetwork city list and the Akamai CDN site list
// (both proprietary): ~130 US/Canadian and European cities with WGS-84
// coordinates and metro populations. Every city named in the paper
// (Figures 1-4, Table 1, Section 6.3.3) is present so the regional
// experiments run against the paper's own geography.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/coord.hpp"

namespace carbonedge::geo {

/// Identifier of a city within the built-in database (stable across runs).
using CityId = std::uint32_t;

struct City {
  CityId id = 0;
  std::string name;
  std::string country;  // ISO-3166 alpha-2
  Continent continent = Continent::kNorthAmerica;
  GeoPoint location;
  double population_k = 0.0;  // metro population, thousands
};

/// Read-only view over the built-in city set with name/id lookup.
class CityDatabase {
 public:
  /// The singleton built-in database.
  [[nodiscard]] static const CityDatabase& builtin();

  [[nodiscard]] std::span<const City> all() const noexcept { return cities_; }
  [[nodiscard]] const City& by_id(CityId id) const;
  [[nodiscard]] std::optional<CityId> find(std::string_view name) const noexcept;

  /// Lookup that throws std::out_of_range with the name on miss — regional
  /// builders use this so a typo fails loudly.
  [[nodiscard]] const City& require(std::string_view name) const;

  /// All cities on a continent, ordered by descending population.
  [[nodiscard]] std::vector<CityId> by_continent(Continent continent) const;

  /// Nearest city to a point (linear scan; the DB is small).
  [[nodiscard]] CityId nearest(const GeoPoint& point) const;

  [[nodiscard]] std::size_t size() const noexcept { return cities_.size(); }

 private:
  CityDatabase();
  std::vector<City> cities_;
};

}  // namespace carbonedge::geo
