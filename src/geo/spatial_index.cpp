#include "geo/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "geo/catalog.hpp"
#include "geo/coord.hpp"
#include "geo/site.hpp"

namespace carbonedge::geo {
namespace {

constexpr double kEarthRadiusKm = 6371.0088;
constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

constexpr double radians(double degrees) noexcept {
  return degrees * std::numbers::pi / 180.0;
}

constexpr double degrees(double rad) noexcept {
  return rad * 180.0 / std::numbers::pi;
}

/// Normalizes a longitude to [-180, 180).
double norm_lon(double lon_deg) noexcept {
  return lon_deg - 360.0 * std::floor((lon_deg + 180.0) / 360.0);
}

/// Euclidean chord length (on the unit-vector sphere scaled to Earth radius
/// 1) equivalent to a surface distance in km; +inf stays +inf.
double chord_of_km(double km) noexcept {
  if (!std::isfinite(km)) return std::numeric_limits<double>::infinity();
  const double theta = km / kEarthRadiusKm;
  if (theta >= std::numbers::pi) return 2.0;
  return 2.0 * std::sin(theta / 2.0);
}

}  // namespace

SpatialIndex::SpatialIndex(const SiteCatalog& catalog, Params params)
    : SpatialIndex(catalog.all(), params) {}

SpatialIndex::SpatialIndex(std::span<const City> sites, Params params)
    : params_(params), sites_(sites) {
  rows_ = static_cast<std::size_t>(
      std::max(1.0, std::ceil(180.0 / params_.cell_deg)));
  cols_ = static_cast<std::size_t>(
      std::max(1.0, std::ceil(360.0 / params_.cell_deg)));

  // Grid buckets: counting sort keeps per-cell member lists ascending.
  cell_start_.assign(rows_ * cols_ + 1, 0);
  for (const City& c : sites_) {
    const std::size_t cell =
        row_of(c.location.lat_deg) * cols_ + col_of(c.location.lon_deg);
    ++cell_start_[cell + 1];
  }
  for (std::size_t cell = 0; cell < rows_ * cols_; ++cell) {
    cell_start_[cell + 1] += cell_start_[cell];
  }
  cell_members_.resize(sites_.size());
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const std::size_t cell = row_of(sites_[i].location.lat_deg) * cols_ +
                             col_of(sites_[i].location.lon_deg);
    cell_members_[cursor[cell]++] = static_cast<std::uint32_t>(i);
  }

  // K-d tree over unit vectors (polar fallback).
  unit_xyz_.resize(sites_.size() * 3);
  kd_order_.resize(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const double lat = radians(sites_[i].location.lat_deg);
    const double lon = radians(sites_[i].location.lon_deg);
    unit_xyz_[i * 3 + 0] = std::cos(lat) * std::cos(lon);
    unit_xyz_[i * 3 + 1] = std::cos(lat) * std::sin(lon);
    unit_xyz_[i * 3 + 2] = std::sin(lat);
    kd_order_[i] = static_cast<std::uint32_t>(i);
  }
  if (!sites_.empty()) {
    kd_root_ = build_kd(0, static_cast<std::uint32_t>(sites_.size()), 0);
  }
}

std::size_t SpatialIndex::row_of(double lat_deg) const noexcept {
  const double lat = std::clamp(lat_deg, -90.0, 90.0);
  const auto row = static_cast<std::ptrdiff_t>(
      std::floor((lat + 90.0) / params_.cell_deg));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(row, 0,
                                 static_cast<std::ptrdiff_t>(rows_) - 1));
}

std::size_t SpatialIndex::col_of(double lon_deg) const noexcept {
  const double lon = norm_lon(lon_deg);
  const auto col = static_cast<std::ptrdiff_t>(
      std::floor((lon + 180.0) / params_.cell_deg));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(col, 0,
                                 static_cast<std::ptrdiff_t>(cols_) - 1));
}

void SpatialIndex::scan_cell(std::size_t row, std::size_t col,
                             const GeoPoint& point, Best& best) const {
  const std::size_t cell = row * cols_ + col;
  for (std::size_t k = cell_start_[cell]; k < cell_start_[cell + 1]; ++k) {
    const std::uint32_t i = cell_members_[k];
    const double km = haversine_km(point, sites_[i].location);
    if (km < best.km || (km == best.km && i < best.index)) {
      best = {km, i};
    }
  }
}

SpatialIndex::Best SpatialIndex::grid_nearest(const GeoPoint& point) const {
  Best best{std::numeric_limits<double>::infinity(), kInvalidIndex};
  const auto r0 = static_cast<std::ptrdiff_t>(row_of(point.lat_deg));
  const auto c0 = static_cast<std::ptrdiff_t>(col_of(point.lon_deg));
  const auto rows = static_cast<std::ptrdiff_t>(rows_);
  const auto cols = static_cast<std::ptrdiff_t>(cols_);

  for (std::ptrdiff_t ring = 0; ring <= rows + cols; ++ring) {
    if (best.index != kInvalidIndex && ring > 0) {
      // Conservative lower bound on the distance to any still-unvisited cell
      // (Chebyshev cell distance >= ring). Cells that are >= ring rows away
      // are at least (ring-1) full cell-heights of latitude away; cells that
      // are >= ring columns away (only possible while the grid has such a
      // column in the wrap metric) are at least (ring-1) cell-widths of
      // longitude away at a latitude no farther poleward than
      // |lat| + ring cells.
      const double cell = params_.cell_deg;
      double lower = radians((static_cast<double>(ring) - 1.0) * cell) *
                     kEarthRadiusKm;
      if (2 * ring <= cols) {
        const double dlon_deg = (static_cast<double>(ring) - 1.0) * cell;
        const double phi_max = std::min(
            90.0, std::abs(point.lat_deg) + static_cast<double>(ring) * cell);
        const double lon_lower =
            dlon_deg >= 180.0
                ? std::numeric_limits<double>::infinity()
                : 2.0 * kEarthRadiusKm *
                      std::asin(std::cos(radians(phi_max)) *
                                std::sin(radians(dlon_deg) / 2.0));
        lower = std::min(lower, lon_lower);
      }
      // 1e-6 km absolute slack dwarfs fp rounding while staying far below
      // the bound's built-in full-cell conservatism.
      if (lower - 1e-6 > best.km) break;
    }
    for (std::ptrdiff_t dr = -ring; dr <= ring; ++dr) {
      const std::ptrdiff_t r = r0 + dr;
      if (r < 0 || r >= rows) continue;
      if (std::abs(dr) == ring) {
        // Edge row of the ring: the full column span. Once the span wraps
        // all the way around, visit each column exactly once.
        if (2 * ring + 1 >= cols) {
          for (std::ptrdiff_t c = 0; c < cols; ++c) {
            scan_cell(static_cast<std::size_t>(r), static_cast<std::size_t>(c),
                      point, best);
          }
        } else {
          for (std::ptrdiff_t dc = -ring; dc <= ring; ++dc) {
            const std::ptrdiff_t c = ((c0 + dc) % cols + cols) % cols;
            scan_cell(static_cast<std::size_t>(r), static_cast<std::size_t>(c),
                      point, best);
          }
        }
      } else if (2 * ring <= cols) {
        // Interior rows add only the two side columns; when 2*ring > cols
        // those wrap onto columns this row already visited in earlier rings.
        // (At 2*ring == cols both sides wrap to the same, unvisited, column;
        // the duplicate scan is an idempotent min.)
        for (const std::ptrdiff_t dc : {-ring, ring}) {
          const std::ptrdiff_t c = ((c0 + dc) % cols + cols) % cols;
          scan_cell(static_cast<std::size_t>(r), static_cast<std::size_t>(c),
                    point, best);
        }
      }
    }
  }
  return best;
}

std::uint32_t SpatialIndex::build_kd(std::uint32_t begin, std::uint32_t end,
                                     std::uint32_t depth) {
  KdNode node;
  node.begin = begin;
  node.end = end;
  if (end - begin <= params_.kd_leaf) {
    // Leaf member order never affects results (exact-distance scan), but
    // sort anyway so the structure itself is input-order independent.
    std::sort(kd_order_.begin() + begin, kd_order_.begin() + end);
    kd_nodes_.push_back(node);
    return static_cast<std::uint32_t>(kd_nodes_.size() - 1);
  }
  const std::uint32_t axis = depth % 3;
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(kd_order_.begin() + begin, kd_order_.begin() + mid,
                   kd_order_.begin() + end,
                   [this, axis](std::uint32_t a, std::uint32_t b) {
                     const double ca = unit_xyz_[a * 3 + axis];
                     const double cb = unit_xyz_[b * 3 + axis];
                     // (coordinate, index) total order: deterministic tree
                     // shape even with duplicate coordinates.
                     return ca < cb || (ca == cb && a < b);
                   });
  node.axis = axis;
  node.split = unit_xyz_[kd_order_[mid] * 3 + axis];
  const std::uint32_t self = static_cast<std::uint32_t>(kd_nodes_.size());
  kd_nodes_.push_back(node);
  const std::uint32_t left = build_kd(begin, mid, depth + 1);
  const std::uint32_t right = build_kd(mid, end, depth + 1);
  kd_nodes_[self].left = left;
  kd_nodes_[self].right = right;
  return self;
}

void SpatialIndex::kd_search(std::uint32_t node_id, const GeoPoint& point,
                             Best& best, double& best_chord) const {
  const KdNode& node = kd_nodes_[node_id];
  if (node.left == kNoChild) {
    for (std::uint32_t k = node.begin; k < node.end; ++k) {
      const std::uint32_t i = kd_order_[k];
      const double km = haversine_km(point, sites_[i].location);
      if (km < best.km || (km == best.km && i < best.index)) {
        best = {km, i};
        best_chord = chord_of_km(km);
      }
    }
    return;
  }
  const double lat = radians(point.lat_deg);
  const double lon = radians(point.lon_deg);
  const double q[3] = {std::cos(lat) * std::cos(lon),
                       std::cos(lat) * std::sin(lon), std::sin(lat)};
  const double axis_delta = q[node.axis] - node.split;
  const std::uint32_t near = axis_delta <= 0.0 ? node.left : node.right;
  const std::uint32_t far = axis_delta <= 0.0 ? node.right : node.left;
  kd_search(near, point, best, best_chord);
  // The split plane separates the far subtree by at least |axis_delta| of
  // Euclidean (chord) distance; prune only when that provably exceeds the
  // best chord (margin keeps equal-distance ties reachable).
  if (std::abs(axis_delta) <= best_chord * (1.0 + 1e-12) + 1e-12) {
    kd_search(far, point, best, best_chord);
  }
}

SpatialIndex::Best SpatialIndex::kd_nearest(const GeoPoint& point) const {
  Best best{std::numeric_limits<double>::infinity(), kInvalidIndex};
  double best_chord = std::numeric_limits<double>::infinity();
  if (kd_root_ != kNoChild) kd_search(kd_root_, point, best, best_chord);
  return best;
}

std::optional<std::uint32_t> SpatialIndex::nearest(
    const GeoPoint& point) const {
  if (sites_.empty()) return std::nullopt;
  const Best best = std::abs(point.lat_deg) > params_.polar_lat_deg
                        ? kd_nearest(point)
                        : grid_nearest(point);
  if (best.index == kInvalidIndex) return std::nullopt;
  return best.index;
}

std::vector<std::uint32_t> SpatialIndex::within_radius(
    const GeoPoint& point, double radius_km) const {
  std::vector<std::uint32_t> result;
  if (sites_.empty() || radius_km < 0.0) return result;

  // Candidate cell box; margins only widen it — membership is decided by the
  // exact haversine predicate below, so the result is oracle-identical.
  const double radius_ang = radius_km / kEarthRadiusKm;
  const double dr_deg = degrees(radius_ang) * (1.0 + 1e-12) + 1e-9;
  const double lat_lo = point.lat_deg - dr_deg;
  const double lat_hi = point.lat_deg + dr_deg;
  const std::size_t r_lo = row_of(lat_lo);
  const std::size_t r_hi = row_of(lat_hi);

  bool all_cols = lat_lo <= -90.0 || lat_hi >= 90.0;
  std::size_t c_first = 0;
  std::size_t n_cols = cols_;
  if (!all_cols) {
    // Max longitude deviation of a spherical disc: sin(dlon) = sin(r)/cos(lat).
    const double cos_lat = std::cos(radians(point.lat_deg));
    const double s = std::sin(radius_ang) / cos_lat;
    if (radius_ang + radians(std::abs(point.lat_deg)) >=
            std::numbers::pi / 2.0 ||
        s >= 1.0) {
      all_cols = true;
    } else {
      const double dlon_deg = degrees(std::asin(s)) * (1.0 + 1e-12) + 1e-9;
      const std::size_t c_lo = col_of(point.lon_deg - dlon_deg);
      const std::size_t c_hi = col_of(point.lon_deg + dlon_deg);
      c_first = c_lo;
      n_cols = c_hi >= c_lo ? c_hi - c_lo + 1 : cols_ - c_lo + c_hi + 1;
      if (n_cols >= cols_) all_cols = true;
    }
  }
  if (all_cols) {
    c_first = 0;
    n_cols = cols_;
  }

  for (std::size_t r = r_lo; r <= r_hi; ++r) {
    for (std::size_t k = 0; k < n_cols; ++k) {
      const std::size_t c = (c_first + k) % cols_;
      const std::size_t cell = r * cols_ + c;
      for (std::size_t m = cell_start_[cell]; m < cell_start_[cell + 1]; ++m) {
        const std::uint32_t i = cell_members_[m];
        if (haversine_km(point, sites_[i].location) <= radius_km) {
          result.push_back(i);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace carbonedge::geo
