// Network latency model.
//
// Substitutes for the WonderNetwork ping matrix: one-way latency between two
// cities is modeled as
//
//   one_way_ms = base + distance_km / fiber_km_per_ms * inflation(pair)
//
// where `inflation` captures fiber routing indirectness. It is drawn
// deterministically per (unordered) city pair from a hash of the city names,
// plus a penalty when the pair crosses a country border (inter-AS routing
// detours). Calibrated against Table 1 of the paper: Florida pairs land in
// 1.9-7.2 ms one-way, Central-EU pairs in 4-16 ms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/site.hpp"

namespace carbonedge::geo {

struct LatencyModelParams {
  double base_ms = 0.4;              // per-link fixed overhead (switching, last hop)
  double fiber_km_per_ms = 204.0;    // speed of light in fiber, one-way
  double inflation_min = 1.3;        // best-case routing indirectness
  double inflation_span = 1.7;       // hash-distributed extra indirectness
  double cross_border_penalty = 0.8; // added inflation across country borders
  std::uint64_t seed = 0x1eaf5eedULL;
};

/// Deterministic city-to-city latency oracle.
class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelParams params = {}) : params_(params) {}

  /// One-way latency in milliseconds between two cities. Symmetric.
  [[nodiscard]] double one_way_ms(const City& a, const City& b) const noexcept;

  /// Round-trip latency (2x one-way).
  [[nodiscard]] double rtt_ms(const City& a, const City& b) const noexcept {
    return 2.0 * one_way_ms(a, b);
  }

  [[nodiscard]] const LatencyModelParams& params() const noexcept { return params_; }

 private:
  LatencyModelParams params_;
};

/// Site-indexed latency oracle: what placement and the simulation engine
/// consume (L_ij in Table 2). Implementations are either dense
/// (LatencyMatrix) or banded-sparse (BandedLatencyMatrix in
/// sparse_latency.hpp); out-of-band pairs report +infinity one-way, which
/// the RTT feasibility filters treat as "never feasible".
class LatencyProvider {
 public:
  virtual ~LatencyProvider() = default;

  /// Number of sites the provider covers (indices are [0, size())).
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// One-way latency in ms between site indices; +infinity when the pair is
  /// outside the provider's band.
  [[nodiscard]] virtual double one_way_ms(std::size_t i,
                                          std::size_t j) const noexcept = 0;

  /// Round-trip latency (2x one-way).
  [[nodiscard]] double rtt_ms(std::size_t i, std::size_t j) const noexcept {
    return 2.0 * one_way_ms(i, j);
  }

  /// Candidate sites with finite latency from site `i`, indices ascending.
  /// An empty span means "unconstrained": every site may be finite (the
  /// dense provider), and callers must fall back to scanning all sites.
  /// This is a prefilter only — entries may still be infeasible for a given
  /// RTT limit; it exists so feasibility loops over thousands of sites skip
  /// the out-of-band majority.
  [[nodiscard]] virtual std::span<const std::uint32_t> neighbors(
      std::size_t /*i*/) const noexcept {
    return {};
  }

 protected:
  LatencyProvider() = default;
  LatencyProvider(const LatencyProvider&) = default;
  LatencyProvider& operator=(const LatencyProvider&) = default;
};

/// Dense symmetric one-way latency matrix over an ordered set of cities.
class LatencyMatrix final : public LatencyProvider {
 public:
  LatencyMatrix() = default;
  LatencyMatrix(const LatencyModel& model, std::span<const City> cities);
  /// From raw row-major one-way values (count x count); used by the CSV
  /// replay path (latency_io.hpp). Throws on size mismatch.
  LatencyMatrix(std::size_t count, std::vector<double> one_way_values);

  [[nodiscard]] double one_way_ms(std::size_t i,
                                  std::size_t j) const noexcept override {
    return values_[i * count_ + j];
  }
  [[nodiscard]] std::size_t size() const noexcept override { return count_; }

 private:
  std::size_t count_ = 0;
  std::vector<double> values_;
};

}  // namespace carbonedge::geo
