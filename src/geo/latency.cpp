#include "geo/latency.hpp"

#include <stdexcept>

#include "util/random.hpp"

namespace carbonedge::geo {
namespace {

// Symmetric hash of a city pair: order-independent so L(a,b) == L(b,a).
std::uint64_t pair_hash(const City& a, const City& b, std::uint64_t seed) noexcept {
  const std::uint64_t ha = util::fnv1a(a.name);
  const std::uint64_t hb = util::fnv1a(b.name);
  const std::uint64_t lo = ha < hb ? ha : hb;
  const std::uint64_t hi = ha < hb ? hb : ha;
  return util::mix64(lo ^ util::mix64(hi ^ seed));
}

double unit_from_hash(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

double LatencyModel::one_way_ms(const City& a, const City& b) const noexcept {
  if (a.id == b.id) return 0.0;
  const double km = haversine_km(a.location, b.location);
  double inflation =
      params_.inflation_min +
      params_.inflation_span * unit_from_hash(pair_hash(a, b, params_.seed));
  if (a.country != b.country) inflation += params_.cross_border_penalty;
  return params_.base_ms + km / params_.fiber_km_per_ms * inflation;
}

LatencyMatrix::LatencyMatrix(std::size_t count, std::vector<double> one_way_values)
    : count_(count), values_(std::move(one_way_values)) {
  if (values_.size() != count_ * count_) {
    throw std::invalid_argument("latency matrix: values size must be count^2");
  }
}

LatencyMatrix::LatencyMatrix(const LatencyModel& model, std::span<const City> cities)
    : count_(cities.size()), values_(cities.size() * cities.size(), 0.0) {
  for (std::size_t i = 0; i < count_; ++i) {
    for (std::size_t j = i + 1; j < count_; ++j) {
      const double ms = model.one_way_ms(cities[i], cities[j]);
      values_[i * count_ + j] = ms;
      values_[j * count_ + i] = ms;
    }
  }
}

}  // namespace carbonedge::geo
