#include "geo/catalog_io.hpp"

#include <charconv>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace carbonedge::geo {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("sites tsv line " + std::to_string(line_no) + ": " +
                           what);
}

double parse_double(std::string_view field, std::size_t line_no,
                    const char* label) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    fail(line_no, std::string("malformed ") + label + " '" +
                      std::string(field) + "'");
  }
  return value;
}

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

std::vector<City> parse_sites_tsv(std::string_view text) {
  std::vector<City> sites;
  // deterministic: only membership queries, never iterated
  std::unordered_set<std::string> seen_names;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    const std::vector<std::string_view> fields = split_tabs(line);
    if (fields.size() != 6) {
      fail(line_no, "expected 6 tab-separated columns, got " +
                        std::to_string(fields.size()));
    }
    City c;
    c.id = static_cast<SiteId>(sites.size());
    c.name = std::string(fields[0]);
    c.country = std::string(fields[1]);
    if (c.name.empty()) fail(line_no, "empty site name");
    if (c.country.size() != 2) {
      fail(line_no, "country must be ISO-3166 alpha-2, got '" +
                        std::string(fields[1]) + "'");
    }
    if (fields[2] == "NA") {
      c.continent = Continent::kNorthAmerica;
    } else if (fields[2] == "EU") {
      c.continent = Continent::kEurope;
    } else {
      fail(line_no,
           "unknown continent '" + std::string(fields[2]) + "' (want NA|EU)");
    }
    c.location.lat_deg = parse_double(fields[3], line_no, "latitude");
    c.location.lon_deg = parse_double(fields[4], line_no, "longitude");
    c.population_k = parse_double(fields[5], line_no, "population");
    if (c.location.lat_deg < -90.0 || c.location.lat_deg > 90.0) {
      fail(line_no, "latitude out of range [-90, 90]");
    }
    if (c.location.lon_deg < -180.0 || c.location.lon_deg > 180.0) {
      fail(line_no, "longitude out of range [-180, 180]");
    }
    if (c.population_k < 0.0) fail(line_no, "negative population");
    if (!seen_names.insert(c.name).second) {
      fail(line_no, "duplicate site name '" + c.name + "'");
    }
    sites.push_back(std::move(c));
  }
  return sites;
}

}  // namespace carbonedge::geo
