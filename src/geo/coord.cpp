#include "geo/coord.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace carbonedge::geo {
namespace {

constexpr double kEarthRadiusKm = 6371.0088;

constexpr double radians(double degrees) noexcept {
  return degrees * std::numbers::pi / 180.0;
}

}  // namespace

const char* to_string(Continent continent) noexcept {
  switch (continent) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kEurope: return "Europe";
  }
  return "?";
}

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = radians(a.lat_deg);
  const double lat2 = radians(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = radians(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

void BoundingBox::extend(const GeoPoint& p) noexcept {
  min.lat_deg = std::min(min.lat_deg, p.lat_deg);
  min.lon_deg = std::min(min.lon_deg, p.lon_deg);
  max.lat_deg = std::max(max.lat_deg, p.lat_deg);
  max.lon_deg = std::max(max.lon_deg, p.lon_deg);
}

double BoundingBox::width_km() const noexcept {
  if (max.lat_deg < min.lat_deg) return 0.0;
  const double mid_lat = (min.lat_deg + max.lat_deg) / 2.0;
  return haversine_km({mid_lat, min.lon_deg}, {mid_lat, max.lon_deg});
}

double BoundingBox::height_km() const noexcept {
  if (max.lat_deg < min.lat_deg) return 0.0;
  const double mid_lon = (min.lon_deg + max.lon_deg) / 2.0;
  return haversine_km({min.lat_deg, mid_lon}, {max.lat_deg, mid_lon});
}

}  // namespace carbonedge::geo
