#include "geo/coord.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace carbonedge::geo {
namespace {

constexpr double kEarthRadiusKm = 6371.0088;

constexpr double radians(double degrees) noexcept {
  return degrees * std::numbers::pi / 180.0;
}

/// Normalizes a longitude to [-180, 180).
double norm_lon(double lon_deg) noexcept {
  return lon_deg - 360.0 * std::floor((lon_deg + 180.0) / 360.0);
}

}  // namespace

const char* to_string(Continent continent) noexcept {
  switch (continent) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kEurope: return "Europe";
  }
  return "?";
}

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = radians(a.lat_deg);
  const double lat2 = radians(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = radians(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

void BoundingBox::extend(const GeoPoint& p) noexcept {
  min.lat_deg = std::min(min.lat_deg, p.lat_deg);
  min.lon_deg = std::min(min.lon_deg, p.lon_deg);
  max.lat_deg = std::max(max.lat_deg, p.lat_deg);
  max.lon_deg = std::max(max.lon_deg, p.lon_deg);
}

double BoundingBox::lon_span_deg() const noexcept {
  if (max.lat_deg < min.lat_deg) return 0.0;  // empty box
  const double span = max.lon_deg - min.lon_deg;
  return span >= 0.0 ? span : span + 360.0;
}

double BoundingBox::width_km() const noexcept {
  if (max.lat_deg < min.lat_deg) return 0.0;
  const double mid_lat = (min.lat_deg + max.lat_deg) / 2.0;
  if (min.lon_deg <= max.lon_deg) {
    return haversine_km({mid_lat, min.lon_deg}, {mid_lat, max.lon_deg});
  }
  // Wrapped (antimeridian-crossing) interval: measure the true span. Up to
  // a half turn the haversine between the interval's ends matches the
  // unwrapped formula for an equal-width box; beyond it the great circle
  // would cut the short way round, so use the arc along the parallel.
  const double span = lon_span_deg();
  if (span <= 180.0) {
    return haversine_km({mid_lat, 0.0}, {mid_lat, span});
  }
  return radians(span) * kEarthRadiusKm * std::cos(radians(mid_lat));
}

BoundingBox bounding_box(std::span<const GeoPoint> points) {
  BoundingBox box;
  if (points.empty()) return box;
  std::vector<double> lons;
  lons.reserve(points.size());
  for (const GeoPoint& p : points) {
    box.min.lat_deg = std::min(box.min.lat_deg, p.lat_deg);
    box.max.lat_deg = std::max(box.max.lat_deg, p.lat_deg);
    lons.push_back(norm_lon(p.lon_deg));
  }
  std::sort(lons.begin(), lons.end());
  // The tightest covering interval is the circle minus the largest gap
  // between adjacent longitudes. Seeding with the wraparound gap (east end
  // around to west end) makes non-straddling point sets reproduce the naive
  // extend() box bit for bit; ties keep that seed.
  double best_gap = (lons.front() + 360.0) - lons.back();
  std::size_t gap_after = lons.size() - 1;
  for (std::size_t i = 0; i + 1 < lons.size(); ++i) {
    const double gap = lons[i + 1] - lons[i];
    if (gap > best_gap) {
      best_gap = gap;
      gap_after = i;
    }
  }
  box.min.lon_deg = lons[(gap_after + 1) % lons.size()];
  box.max.lon_deg = lons[gap_after];
  return box;
}

double BoundingBox::height_km() const noexcept {
  if (max.lat_deg < min.lat_deg) return 0.0;
  const double mid_lon = (min.lon_deg + max.lon_deg) / 2.0;
  return haversine_km({min.lat_deg, mid_lon}, {max.lat_deg, mid_lon});
}

}  // namespace carbonedge::geo
