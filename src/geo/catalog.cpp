#include "geo/catalog.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace carbonedge::geo {
namespace {

char lower(char c) noexcept {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool iequal(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

// Case-insensitive Levenshtein distance, capped: returns cap+1 as soon as the
// distance provably exceeds `cap` (keeps require()'s miss path O(n·|name|)).
std::size_t edit_distance_capped(std::string_view a, std::string_view b,
                                 std::size_t cap) {
  const std::size_t la = a.size();
  const std::size_t lb = b.size();
  const std::size_t diff = la > lb ? la - lb : lb - la;
  if (diff > cap) return cap + 1;
  std::vector<std::size_t> prev(lb + 1);
  std::vector<std::size_t> cur(lb + 1);
  for (std::size_t j = 0; j <= lb; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= la; ++i) {
    cur[0] = i;
    std::size_t row_min = cur[0];
    for (std::size_t j = 1; j <= lb; ++j) {
      const std::size_t sub = lower(a[i - 1]) == lower(b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub});
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > cap) return cap + 1;
    std::swap(prev, cur);
  }
  return prev[lb];
}

}  // namespace

std::optional<SiteId> SiteCatalog::find(std::string_view name) const noexcept {
  for (const City& c : all()) {
    if (c.name == name) return c.id;
  }
  return std::nullopt;
}

const City& SiteCatalog::by_id(SiteId id) const {
  const std::span<const City> sites = all();
  if (id >= sites.size()) throw std::out_of_range("city id out of range");
  return sites[id];
}

const City& SiteCatalog::require(std::string_view name) const {
  if (const auto id = find(name)) return by_id(*id);
  // Rank candidates: exact-but-for-case first, then small typos.
  constexpr std::size_t kMaxTypoDistance = 2;
  std::vector<std::pair<std::size_t, SiteId>> near;
  for (const City& c : all()) {
    std::size_t distance;
    if (iequal(c.name, name)) {
      distance = 0;
    } else {
      distance = edit_distance_capped(c.name, name, kMaxTypoDistance);
      if (distance > kMaxTypoDistance) continue;
    }
    near.emplace_back(distance, c.id);
  }
  std::sort(near.begin(), near.end());
  std::string message = "unknown city: " + std::string(name);
  if (!near.empty()) {
    message += " (did you mean";
    const std::size_t shown = std::min<std::size_t>(near.size(), 3);
    for (std::size_t i = 0; i < shown; ++i) {
      message += i == 0 ? " " : ", ";
      message += by_id(near[i].second).name;
    }
    message += "?)";
  }
  throw std::out_of_range(message);
}

std::vector<SiteId> SiteCatalog::by_continent(Continent continent) const {
  const std::span<const City> sites = all();
  std::vector<SiteId> ids;
  for (const City& c : sites) {
    if (c.continent == continent) ids.push_back(c.id);
  }
  std::sort(ids.begin(), ids.end(), [sites](SiteId a, SiteId b) {
    return sites[a].population_k > sites[b].population_k;
  });
  return ids;
}

SiteId SiteCatalog::nearest(const GeoPoint& point) const {
  SiteId best = 0;
  double best_km = std::numeric_limits<double>::infinity();
  for (const City& c : all()) {
    const double km = haversine_km(point, c.location);
    if (km < best_km) {
      best_km = km;
      best = c.id;
    }
  }
  return best;
}

CompiledSiteCatalog::CompiledSiteCatalog(std::vector<City> sites)
    : sites_(std::move(sites)) {
  by_name_.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const City& c = sites_[i];
    if (c.id != i) {
      throw std::invalid_argument("site catalog: ids must be dense in-order");
    }
    if (c.name.empty()) {
      throw std::invalid_argument("site catalog: empty site name");
    }
    if (c.location.lat_deg < -90.0 || c.location.lat_deg > 90.0 ||
        c.location.lon_deg < -180.0 || c.location.lon_deg > 180.0) {
      throw std::invalid_argument("site catalog: coordinate out of range for " +
                                  c.name);
    }
    if (c.population_k < 0.0) {
      throw std::invalid_argument("site catalog: negative population for " +
                                  c.name);
    }
    by_name_.push_back(static_cast<SiteId>(i));
  }
  std::sort(by_name_.begin(), by_name_.end(), [this](SiteId a, SiteId b) {
    return sites_[a].name < sites_[b].name;
  });
  for (std::size_t i = 1; i < by_name_.size(); ++i) {
    if (sites_[by_name_[i - 1]].name == sites_[by_name_[i]].name) {
      throw std::invalid_argument("site catalog: duplicate site name " +
                                  sites_[by_name_[i]].name);
    }
  }
}

std::optional<SiteId> CompiledSiteCatalog::find(
    std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      by_name_.begin(), by_name_.end(), name,
      [this](SiteId id, std::string_view key) { return sites_[id].name < key; });
  if (it == by_name_.end() || sites_[*it].name != name) return std::nullopt;
  return *it;
}

}  // namespace carbonedge::geo
