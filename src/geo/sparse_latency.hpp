// Threshold-banded sparse latency: the O(n^2)-killer for planet-scale site
// sets.
//
// Placement only ever asks "is this pair within the app's RTT budget" — for
// a mesoscale or CDN geography almost every cross-continent pair fails that
// test, yet the dense matrix materializes (and the feasibility loops scan)
// all n^2 of them. BandedLatencyMatrix stores only pairs whose modeled
// one-way latency is within `band_one_way_ms` (CSR, diagonal always
// present) and reports +infinity for the rest, so both memory and the
// feasible-pair enumeration scale with the neighborhood size instead of n^2.
//
// Candidate pairs come from a SpatialIndex radius query with the
// conservative inversion of the latency model: one_way = base + km/fiber *
// inflation with inflation >= inflation_min, so any pair within the band
// satisfies km <= (band - base) * fiber / inflation_min. Every candidate is
// then scored with the exact model, making stored values bit-identical to
// the dense matrix on the shared support.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geo/latency.hpp"
#include "geo/site.hpp"

namespace carbonedge::geo {

class BandedLatencyMatrix final : public LatencyProvider {
 public:
  BandedLatencyMatrix() = default;
  /// Builds the band over `cities` (indices into this span). Throws
  /// std::invalid_argument when the band cannot even hold the zero-distance
  /// base latency.
  BandedLatencyMatrix(const LatencyModel& model, std::span<const City> cities,
                      double band_one_way_ms);

  [[nodiscard]] std::size_t size() const noexcept override {
    return row_start_.empty() ? 0 : row_start_.size() - 1;
  }
  [[nodiscard]] double one_way_ms(std::size_t i,
                                  std::size_t j) const noexcept override;
  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::size_t i) const noexcept override;

  [[nodiscard]] double band_one_way_ms() const noexcept { return band_ms_; }
  /// Stored (directed) entries, diagonal included — the measure of how far
  /// below n^2 the band stays.
  [[nodiscard]] std::size_t stored_entries() const noexcept {
    return cols_.size();
  }

 private:
  double band_ms_ = 0.0;
  std::vector<std::size_t> row_start_;
  std::vector<std::uint32_t> cols_;  // ascending within each row
  std::vector<double> values_;
};

}  // namespace carbonedge::geo
