// Deterministic spatial index over a site set: nearest-site and radius
// queries without the O(n) scan per lookup.
//
// Structure: fixed-size lat/lon grid buckets (cells of `cell_deg` degrees,
// longitude wrapping at the antimeridian) answer mid-latitude queries by
// expanding cell rings outward until the ring's conservative lower-bound
// distance exceeds the best hit. Near the poles the lon/lat metric
// degenerates (every meridian converges), so polar queries fall back to a
// k-d tree over 3D unit vectors with chord-distance pruning.
//
// Determinism contract: both paths only ever *narrow candidates*; the final
// answer is always the exact (haversine_km, index) minimum over a provable
// superset of candidates, so results are bit-identical to the brute-force
// scan regardless of traversal order — the oracle tests assert exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/coord.hpp"
#include "geo/site.hpp"

namespace carbonedge::geo {

class SiteCatalog;

struct SpatialIndexParams {
  double cell_deg = 4.0;        // grid cell edge, degrees
  double polar_lat_deg = 66.0;  // |lat| beyond which nearest() uses the k-d tree
  std::size_t kd_leaf = 8;      // max sites per k-d leaf
};

class SpatialIndex {
 public:
  using Params = SpatialIndexParams;

  /// Indexes `sites` (non-owning: the span must outlive the index). Query
  /// results are indices into this span; when the span is a catalog's
  /// all(), an index IS the SiteId.
  explicit SpatialIndex(std::span<const City> sites, Params params = {});
  explicit SpatialIndex(const SiteCatalog& catalog, Params params = {});

  [[nodiscard]] std::size_t size() const noexcept { return sites_.size(); }

  /// Index of the nearest site by (haversine_km, index); nullopt only when
  /// the index is empty.
  [[nodiscard]] std::optional<std::uint32_t> nearest(
      const GeoPoint& point) const;

  /// Indices of all sites with haversine_km(point, site) <= radius_km,
  /// ascending.
  [[nodiscard]] std::vector<std::uint32_t> within_radius(
      const GeoPoint& point, double radius_km) const;

 private:
  struct Best {
    double km;
    std::uint32_t index;
  };

  [[nodiscard]] std::size_t row_of(double lat_deg) const noexcept;
  [[nodiscard]] std::size_t col_of(double lon_deg) const noexcept;
  void scan_cell(std::size_t row, std::size_t col, const GeoPoint& point,
                 Best& best) const;
  [[nodiscard]] Best grid_nearest(const GeoPoint& point) const;
  [[nodiscard]] Best kd_nearest(const GeoPoint& point) const;
  std::uint32_t build_kd(std::uint32_t begin, std::uint32_t end,
                         std::uint32_t depth);
  void kd_search(std::uint32_t node, const GeoPoint& point, Best& best,
                 double& best_chord) const;

  Params params_;
  std::span<const City> sites_;

  // Grid: CSR buckets, row-major (rows x cols), member indices ascending.
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> cell_start_;
  std::vector<std::uint32_t> cell_members_;

  // K-d tree over 3D unit vectors of the site locations.
  struct KdNode {
    std::uint32_t begin = 0;  // leaf: [begin, end) into kd_order_
    std::uint32_t end = 0;
    std::uint32_t left = kNoChild;
    std::uint32_t right = kNoChild;
    std::uint32_t axis = 0;
    double split = 0.0;
  };
  static constexpr std::uint32_t kNoChild = 0xffffffffu;
  std::vector<std::uint32_t> kd_order_;
  std::vector<KdNode> kd_nodes_;
  std::uint32_t kd_root_ = kNoChild;
  std::vector<double> unit_xyz_;  // 3 doubles per site
};

}  // namespace carbonedge::geo
