// SiteCatalog: the read-only geography interface consumed by every layer
// above geo.
//
// Regions, demand synthesis, latency providers, and the CLI all take a
// `const SiteCatalog&` instead of reaching for the builtin city singleton.
// Two implementations exist: CityDatabase (city.hpp) wraps the paper-exact
// builtin set, and CompiledSiteCatalog holds a catalog ingested from a
// GeoNames-style dump (catalog_io.hpp) or decoded from a CEAF blob in the
// artifact store (store/site_catalog.hpp).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "geo/coord.hpp"
#include "geo/site.hpp"

namespace carbonedge::geo {

/// Read-only, id-dense site set with name lookup. Implementations guarantee
/// `all()[id].id == id` for every id in [0, size()); the non-virtual helpers
/// rely on that contract.
class SiteCatalog {
 public:
  virtual ~SiteCatalog() = default;

  /// Every site, ordered by SiteId.
  [[nodiscard]] virtual std::span<const City> all() const noexcept = 0;

  /// Exact-name lookup. The default scans linearly; indexed implementations
  /// override it. Must agree with a linear scan (names are unique).
  [[nodiscard]] virtual std::optional<SiteId> find(
      std::string_view name) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return all().size(); }

  /// Throws std::out_of_range when `id >= size()`.
  [[nodiscard]] const City& by_id(SiteId id) const;

  /// Lookup that throws std::out_of_range on miss, listing near-miss
  /// candidates (case mismatches, small typos) — regional builders resolve
  /// names exactly once, so a typo fails loudly and helpfully.
  [[nodiscard]] const City& require(std::string_view name) const;

  /// All sites on a continent, ordered by descending population.
  [[nodiscard]] std::vector<SiteId> by_continent(Continent continent) const;

  /// Nearest site to a point (linear scan; SpatialIndex serves the same
  /// query in sublinear time and is bit-identical to this).
  [[nodiscard]] SiteId nearest(const GeoPoint& point) const;

 protected:
  SiteCatalog() = default;
  SiteCatalog(const SiteCatalog&) = default;
  SiteCatalog& operator=(const SiteCatalog&) = default;
};

/// A catalog materialized from an ingested dump: owns its rows and keeps a
/// name-sorted index so find() is a binary search.
class CompiledSiteCatalog final : public SiteCatalog {
 public:
  CompiledSiteCatalog() = default;
  /// Takes ownership of a site list. Throws std::invalid_argument when ids
  /// are not dense in-order, a name is empty or duplicated, or a coordinate
  /// is outside WGS-84 range.
  explicit CompiledSiteCatalog(std::vector<City> sites);

  [[nodiscard]] std::span<const City> all() const noexcept override {
    return sites_;
  }
  [[nodiscard]] std::optional<SiteId> find(
      std::string_view name) const noexcept override;

 private:
  std::vector<City> sites_;
  std::vector<SiteId> by_name_;  // ids ordered by site name
};

}  // namespace carbonedge::geo
