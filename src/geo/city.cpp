#include "geo/city.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace carbonedge::geo {
namespace {

struct CityRow {
  const char* name;
  const char* country;
  Continent continent;
  double lat;
  double lon;
  double population_k;
};

constexpr Continent kNA = Continent::kNorthAmerica;
constexpr Continent kEU = Continent::kEurope;

// Coordinates are city centers (2 decimal places, ~1 km accuracy — far below
// the mesoscale distances of interest). Populations are metro-area estimates
// in thousands, used only as demand/capacity weights (Section 6.3.4).
constexpr CityRow kCities[] = {
    // --- United States: paper regions (Figures 2-4, Table 1) ---
    {"Jacksonville", "US", kNA, 30.33, -81.66, 1600},
    {"Miami", "US", kNA, 25.76, -80.19, 6100},
    {"Tampa", "US", kNA, 27.95, -82.46, 3200},
    {"Orlando", "US", kNA, 28.54, -81.38, 2700},
    {"Tallahassee", "US", kNA, 30.44, -84.28, 390},
    {"Las Vegas", "US", kNA, 36.17, -115.14, 2300},
    {"Kingman", "US", kNA, 35.19, -114.05, 33},
    {"San Diego", "US", kNA, 32.72, -117.16, 3300},
    {"Phoenix", "US", kNA, 33.45, -112.07, 4900},
    {"Flagstaff", "US", kNA, 35.20, -111.65, 77},
    // --- United States: CDN sites ---
    {"New York", "US", kNA, 40.71, -74.01, 19500},
    {"Los Angeles", "US", kNA, 34.05, -118.24, 13200},
    {"Chicago", "US", kNA, 41.88, -87.63, 9500},
    {"Dallas", "US", kNA, 32.78, -96.80, 7600},
    {"Houston", "US", kNA, 29.76, -95.37, 7100},
    {"Washington", "US", kNA, 38.91, -77.04, 6300},
    {"Philadelphia", "US", kNA, 39.95, -75.17, 6200},
    {"Atlanta", "US", kNA, 33.75, -84.39, 6000},
    {"Boston", "US", kNA, 42.36, -71.06, 4900},
    {"San Francisco", "US", kNA, 37.77, -122.42, 4700},
    {"Seattle", "US", kNA, 47.61, -122.33, 4000},
    {"Detroit", "US", kNA, 42.33, -83.05, 4300},
    {"Minneapolis", "US", kNA, 44.98, -93.27, 3600},
    {"Denver", "US", kNA, 39.74, -104.99, 3000},
    {"St. Louis", "US", kNA, 38.63, -90.20, 2800},
    {"Baltimore", "US", kNA, 39.29, -76.61, 2800},
    {"Charlotte", "US", kNA, 35.23, -80.84, 2700},
    {"San Antonio", "US", kNA, 29.42, -98.49, 2600},
    {"Portland", "US", kNA, 45.52, -122.68, 2500},
    {"Sacramento", "US", kNA, 38.58, -121.49, 2400},
    {"Austin", "US", kNA, 30.27, -97.74, 2300},
    {"Pittsburgh", "US", kNA, 40.44, -79.99, 2300},
    {"Cincinnati", "US", kNA, 39.10, -84.51, 2300},
    {"Kansas City", "US", kNA, 39.10, -94.58, 2200},
    {"Columbus", "US", kNA, 39.96, -83.00, 2100},
    {"Indianapolis", "US", kNA, 39.77, -86.16, 2100},
    {"Cleveland", "US", kNA, 41.50, -81.69, 2000},
    {"Nashville", "US", kNA, 36.16, -86.78, 2000},
    {"Milwaukee", "US", kNA, 43.04, -87.91, 1600},
    {"Oklahoma City", "US", kNA, 35.47, -97.52, 1400},
    {"Raleigh", "US", kNA, 35.78, -78.64, 1400},
    {"Memphis", "US", kNA, 35.15, -90.05, 1300},
    {"Louisville", "US", kNA, 38.25, -85.76, 1300},
    {"Richmond", "US", kNA, 37.54, -77.44, 1300},
    {"New Orleans", "US", kNA, 29.95, -90.07, 1300},
    {"Salt Lake City", "US", kNA, 40.76, -111.89, 1300},
    {"Hartford", "US", kNA, 41.77, -72.67, 1200},
    {"Buffalo", "US", kNA, 42.89, -78.88, 1100},
    {"Tucson", "US", kNA, 32.22, -110.97, 1000},
    {"Fresno", "US", kNA, 36.74, -119.79, 1000},
    {"Omaha", "US", kNA, 41.26, -95.93, 970},
    {"Albuquerque", "US", kNA, 35.08, -106.65, 920},
    {"El Paso", "US", kNA, 31.76, -106.49, 870},
    {"Boise", "US", kNA, 43.62, -116.20, 760},
    {"Little Rock", "US", kNA, 34.75, -92.29, 750},
    {"Des Moines", "US", kNA, 41.59, -93.62, 700},
    {"Spokane", "US", kNA, 47.66, -117.43, 570},
    {"Billings", "US", kNA, 45.78, -108.50, 180},
    {"Cheyenne", "US", kNA, 41.14, -104.82, 100},
    {"Reno", "US", kNA, 39.53, -119.81, 490},
    {"Jackson", "US", kNA, 32.30, -90.18, 590},
    {"Birmingham AL", "US", kNA, 33.52, -86.80, 1100},
    {"Knoxville", "US", kNA, 35.96, -83.92, 900},
    {"Greenville", "US", kNA, 34.85, -82.40, 940},
    {"Columbia", "US", kNA, 34.00, -81.03, 840},
    {"Savannah", "US", kNA, 32.08, -81.09, 400},
    {"Charleston", "US", kNA, 32.78, -79.93, 800},
    {"Norfolk", "US", kNA, 36.85, -76.29, 1800},
    {"Rochester", "US", kNA, 43.16, -77.61, 1100},
    {"Syracuse", "US", kNA, 43.05, -76.15, 660},
    {"Albany", "US", kNA, 42.65, -73.75, 900},
    {"Portland ME", "US", kNA, 43.66, -70.26, 550},
    {"Providence", "US", kNA, 41.82, -71.41, 1600},
    {"Grand Rapids", "US", kNA, 42.96, -85.66, 1100},
    {"Madison", "US", kNA, 43.07, -89.40, 680},
    {"Toledo", "US", kNA, 41.65, -83.54, 640},
    {"Dayton", "US", kNA, 39.76, -84.19, 810},
    {"Lexington", "US", kNA, 38.04, -84.50, 520},
    {"Wichita", "US", kNA, 37.69, -97.34, 650},
    {"Tulsa", "US", kNA, 36.15, -95.99, 1000},
    {"Springfield MO", "US", kNA, 37.21, -93.29, 480},
    {"Fargo", "US", kNA, 46.88, -96.79, 250},
    {"Sioux Falls", "US", kNA, 43.54, -96.73, 280},
    {"Lincoln", "US", kNA, 40.81, -96.70, 340},
    {"Colorado Springs", "US", kNA, 38.83, -104.82, 760},
    {"Santa Fe", "US", kNA, 35.69, -105.94, 150},
    {"Bakersfield", "US", kNA, 35.37, -119.02, 910},
    {"San Jose", "US", kNA, 37.34, -121.89, 2000},
    {"Eugene", "US", kNA, 44.05, -123.09, 380},
    {"Tacoma", "US", kNA, 47.25, -122.44, 920},
    {"Missoula", "US", kNA, 46.87, -113.99, 120},
    {"Baton Rouge", "US", kNA, 30.45, -91.19, 870},
    {"Mobile", "US", kNA, 30.69, -88.04, 430},
    {"Shreveport", "US", kNA, 32.52, -93.75, 390},
    {"Corpus Christi", "US", kNA, 27.80, -97.40, 440},
    {"Lubbock", "US", kNA, 33.58, -101.86, 330},
    {"Amarillo", "US", kNA, 35.19, -101.85, 270},
    // --- Canada (Figure 1 macro comparison) ---
    {"Toronto", "CA", kNA, 43.65, -79.38, 6200},
    {"Montreal", "CA", kNA, 45.50, -73.57, 4300},
    {"Vancouver", "CA", kNA, 49.28, -123.12, 2600},
    // --- Europe: paper regions (Figures 2-4, Table 1, Section 6.3.3) ---
    {"Milan", "IT", kEU, 45.46, 9.19, 4300},
    {"Rome", "IT", kEU, 41.90, 12.50, 4300},
    {"Cagliari", "IT", kEU, 39.22, 9.11, 430},
    {"Palermo", "IT", kEU, 38.12, 13.36, 850},
    {"Arezzo", "IT", kEU, 43.46, 11.88, 100},
    {"Bern", "CH", kEU, 46.95, 7.45, 420},
    {"Munich", "DE", kEU, 48.14, 11.58, 2900},
    {"Lyon", "FR", kEU, 45.76, 4.84, 2300},
    {"Graz", "AT", kEU, 47.07, 15.44, 450},
    {"Paris", "FR", kEU, 48.86, 2.35, 12800},
    {"Oslo", "NO", kEU, 59.91, 10.75, 1050},
    {"Vienna", "AT", kEU, 48.21, 16.37, 2900},
    {"Zagreb", "HR", kEU, 45.81, 15.98, 800},
    // --- Europe: CDN sites ---
    {"London", "GB", kEU, 51.51, -0.13, 14300},
    {"Madrid", "ES", kEU, 40.42, -3.70, 6700},
    {"Barcelona", "ES", kEU, 41.39, 2.17, 5600},
    {"Berlin", "DE", kEU, 52.52, 13.40, 6100},
    {"Hamburg", "DE", kEU, 53.55, 9.99, 3300},
    {"Frankfurt", "DE", kEU, 50.11, 8.68, 2700},
    {"Cologne", "DE", kEU, 50.94, 6.96, 2000},
    {"Stuttgart", "DE", kEU, 48.78, 9.18, 2800},
    {"Dusseldorf", "DE", kEU, 51.23, 6.77, 1500},
    {"Leipzig", "DE", kEU, 51.34, 12.37, 600},
    {"Dresden", "DE", kEU, 51.05, 13.74, 560},
    {"Nuremberg", "DE", kEU, 49.45, 11.08, 500},
    {"Hannover", "DE", kEU, 52.37, 9.73, 540},
    {"Naples", "IT", kEU, 40.85, 14.27, 3100},
    {"Turin", "IT", kEU, 45.07, 7.69, 1700},
    {"Bologna", "IT", kEU, 44.49, 11.34, 1000},
    {"Florence", "IT", kEU, 43.77, 11.26, 1000},
    {"Venice", "IT", kEU, 45.44, 12.32, 850},
    {"Genoa", "IT", kEU, 44.41, 8.93, 850},
    {"Amsterdam", "NL", kEU, 52.37, 4.90, 2500},
    {"Rotterdam", "NL", kEU, 51.92, 4.48, 1000},
    {"Brussels", "BE", kEU, 50.85, 4.35, 2100},
    {"Zurich", "CH", kEU, 47.37, 8.54, 1400},
    {"Geneva", "CH", kEU, 46.20, 6.15, 600},
    {"Marseille", "FR", kEU, 43.30, 5.37, 1800},
    {"Toulouse", "FR", kEU, 43.60, 1.44, 1400},
    {"Bordeaux", "FR", kEU, 44.84, -0.58, 1200},
    {"Lille", "FR", kEU, 50.63, 3.07, 1200},
    {"Nice", "FR", kEU, 43.70, 7.27, 1000},
    {"Lisbon", "PT", kEU, 38.72, -9.14, 2900},
    {"Porto", "PT", kEU, 41.15, -8.61, 1700},
    {"Dublin", "IE", kEU, 53.35, -6.26, 1900},
    {"Manchester", "GB", kEU, 53.48, -2.24, 2800},
    {"Birmingham", "GB", kEU, 52.49, -1.89, 2900},
    {"Glasgow", "GB", kEU, 55.86, -4.25, 1700},
    {"Edinburgh", "GB", kEU, 55.95, -3.19, 900},
    {"Copenhagen", "DK", kEU, 55.68, 12.57, 2000},
    {"Aarhus", "DK", kEU, 56.16, 10.20, 350},
    {"Stockholm", "SE", kEU, 59.33, 18.07, 2400},
    {"Gothenburg", "SE", kEU, 57.71, 11.97, 1000},
    {"Malmo", "SE", kEU, 55.60, 13.00, 740},
    {"Bergen", "NO", kEU, 60.39, 5.32, 420},
    {"Helsinki", "FI", kEU, 60.17, 24.94, 1500},
    {"Warsaw", "PL", kEU, 52.23, 21.01, 3100},
    {"Krakow", "PL", kEU, 50.06, 19.94, 1400},
    {"Wroclaw", "PL", kEU, 51.11, 17.03, 1250},
    {"Gdansk", "PL", kEU, 54.35, 18.65, 1100},
    {"Prague", "CZ", kEU, 50.08, 14.44, 2700},
    {"Brno", "CZ", kEU, 49.20, 16.61, 700},
    {"Budapest", "HU", kEU, 47.50, 19.04, 3000},
    {"Bucharest", "RO", kEU, 44.43, 26.10, 1800},
    {"Sofia", "BG", kEU, 42.70, 23.32, 1300},
    {"Athens", "GR", kEU, 37.98, 23.73, 3600},
    {"Thessaloniki", "GR", kEU, 40.64, 22.94, 1100},
    {"Ljubljana", "SI", kEU, 46.06, 14.51, 300},
    {"Bratislava", "SK", kEU, 48.15, 17.11, 700},
    {"Linz", "AT", kEU, 48.31, 14.29, 800},
    {"Seville", "ES", kEU, 37.39, -5.99, 1500},
    {"Valencia", "ES", kEU, 39.47, -0.38, 1600},
    {"Bilbao", "ES", kEU, 43.26, -2.93, 1000},
    {"Tallinn", "EE", kEU, 59.44, 24.75, 450},
    {"Riga", "LV", kEU, 56.95, 24.11, 630},
    {"Vilnius", "LT", kEU, 54.69, 25.28, 540},
    {"Bremen", "DE", kEU, 53.08, 8.80, 680},
    {"Essen", "DE", kEU, 51.46, 7.01, 580},
    {"Mannheim", "DE", kEU, 49.49, 8.47, 870},
    {"Karlsruhe", "DE", kEU, 49.01, 8.40, 740},
    {"Nantes", "FR", kEU, 47.22, -1.55, 990},
    {"Strasbourg", "FR", kEU, 48.58, 7.75, 800},
    {"Montpellier", "FR", kEU, 43.61, 3.88, 800},
    {"Rennes", "FR", kEU, 48.11, -1.68, 750},
    {"Grenoble", "FR", kEU, 45.19, 5.72, 690},
    {"Zaragoza", "ES", kEU, 41.65, -0.88, 780},
    {"Malaga", "ES", kEU, 36.72, -4.42, 1000},
    {"Murcia", "ES", kEU, 37.99, -1.13, 670},
    {"Granada", "ES", kEU, 37.18, -3.60, 540},
    {"Bari", "IT", kEU, 41.13, 16.87, 750},
    {"Catania", "IT", kEU, 37.50, 15.09, 660},
    {"Verona", "IT", kEU, 45.44, 10.99, 710},
    {"Trieste", "IT", kEU, 45.65, 13.78, 410},
    {"Leeds", "GB", kEU, 53.80, -1.55, 1900},
    {"Sheffield", "GB", kEU, 53.38, -1.47, 1400},
    {"Newcastle", "GB", kEU, 54.98, -1.61, 1700},
    {"Bristol", "GB", kEU, 51.45, -2.59, 1100},
    {"Nottingham", "GB", kEU, 52.95, -1.15, 1300},
    {"Cardiff", "GB", kEU, 51.48, -3.18, 980},
    {"Belfast", "GB", kEU, 54.60, -5.93, 640},
    {"Cork", "IE", kEU, 51.90, -8.47, 400},
    {"Utrecht", "NL", kEU, 52.09, 5.12, 880},
    {"Eindhoven", "NL", kEU, 51.44, 5.47, 780},
    {"Groningen", "NL", kEU, 53.22, 6.57, 400},
    {"Antwerp", "BE", kEU, 51.22, 4.40, 1100},
    {"Ghent", "BE", kEU, 51.05, 3.72, 560},
    {"Liege", "BE", kEU, 50.63, 5.57, 750},
    {"Basel", "CH", kEU, 47.56, 7.59, 580},
    {"Lausanne", "CH", kEU, 46.52, 6.63, 440},
    {"Salzburg", "AT", kEU, 47.81, 13.04, 360},
    {"Innsbruck", "AT", kEU, 47.27, 11.40, 300},
    {"Poznan", "PL", kEU, 52.41, 16.93, 1000},
    {"Lodz", "PL", kEU, 51.76, 19.46, 1000},
    {"Katowice", "PL", kEU, 50.26, 19.02, 2000},
    {"Szczecin", "PL", kEU, 53.43, 14.55, 680},
    {"Ostrava", "CZ", kEU, 49.82, 18.26, 970},
    {"Plzen", "CZ", kEU, 49.75, 13.38, 330},
    {"Debrecen", "HU", kEU, 47.53, 21.64, 500},
    {"Cluj-Napoca", "RO", kEU, 46.77, 23.59, 700},
    {"Timisoara", "RO", kEU, 45.76, 21.23, 600},
    {"Plovdiv", "BG", kEU, 42.14, 24.75, 540},
    {"Varna", "BG", kEU, 43.21, 27.92, 470},
    {"Patras", "GR", kEU, 38.25, 21.73, 310},
    {"Split", "HR", kEU, 43.51, 16.44, 340},
    {"Maribor", "SI", kEU, 46.55, 15.65, 190},
    {"Kosice", "SK", kEU, 48.72, 21.26, 360},
    {"Turku", "FI", kEU, 60.45, 22.27, 330},
    {"Tampere", "FI", kEU, 61.50, 23.76, 420},
    {"Trondheim", "NO", kEU, 63.43, 10.40, 280},
    {"Stavanger", "NO", kEU, 58.97, 5.73, 360},
    {"Uppsala", "SE", kEU, 59.86, 17.64, 390},
    {"Odense", "DK", kEU, 55.40, 10.40, 290},
    {"Braga", "PT", kEU, 41.55, -8.42, 480},
    {"Coimbra", "PT", kEU, 40.21, -8.43, 330},
};

}  // namespace

CityDatabase::CityDatabase() {
  cities_.reserve(std::size(kCities));
  CityId next_id = 0;
  for (const CityRow& row : kCities) {
    City c;
    c.id = next_id++;
    c.name = row.name;
    c.country = row.country;
    c.continent = row.continent;
    c.location = {row.lat, row.lon};
    c.population_k = row.population_k;
    cities_.push_back(std::move(c));
  }
}

const CityDatabase& CityDatabase::builtin() {
  static const CityDatabase db;
  return db;
}

const City& CityDatabase::by_id(CityId id) const {
  if (id >= cities_.size()) throw std::out_of_range("city id out of range");
  return cities_[id];
}

std::optional<CityId> CityDatabase::find(std::string_view name) const noexcept {
  for (const City& c : cities_) {
    if (c.name == name) return c.id;
  }
  return std::nullopt;
}

const City& CityDatabase::require(std::string_view name) const {
  const auto id = find(name);
  if (!id) throw std::out_of_range("unknown city: " + std::string(name));
  return cities_[*id];
}

std::vector<CityId> CityDatabase::by_continent(Continent continent) const {
  std::vector<CityId> ids;
  for (const City& c : cities_) {
    if (c.continent == continent) ids.push_back(c.id);
  }
  std::sort(ids.begin(), ids.end(), [this](CityId a, CityId b) {
    return cities_[a].population_k > cities_[b].population_k;
  });
  return ids;
}

CityId CityDatabase::nearest(const GeoPoint& point) const {
  CityId best = 0;
  double best_km = std::numeric_limits<double>::infinity();
  for (const City& c : cities_) {
    const double km = haversine_km(point, c.location);
    if (km < best_km) {
      best_km = km;
      best = c.id;
    }
  }
  return best;
}

}  // namespace carbonedge::geo
