// Catalog ingest: parse a GeoNames-style places dump into site rows.
//
// The dump is tab-separated, one site per line, UTF-8, with `#` comment
// lines and blank lines ignored:
//
//   name <TAB> country <TAB> continent <TAB> lat <TAB> lon <TAB> population_k
//
// `country` is ISO-3166 alpha-2; `continent` is NA or EU; `lat`/`lon` are
// WGS-84 degrees; `population_k` is the metro population in thousands.
// SiteIds are assigned 0..n-1 in dump order, so the same dump always
// compiles to the same catalog. Parsing happens once — `carbonedge_cli
// catalog build` compiles the result into a CEAF blob in the artifact store
// (store/site_catalog.hpp) and everything downstream loads that.
#pragma once

#include <string_view>
#include <vector>

#include "geo/site.hpp"

namespace carbonedge::geo {

/// Parses a sites dump. Throws std::runtime_error naming the 1-based line on
/// any malformed row (wrong column count, bad continent tag, coordinates or
/// population out of range, empty or duplicate name).
[[nodiscard]] std::vector<City> parse_sites_tsv(std::string_view text);

}  // namespace carbonedge::geo
