#include "geo/region.hpp"

#include <initializer_list>

namespace carbonedge::geo {
namespace {

Region make_region(std::string name, std::initializer_list<const char*> names) {
  const auto& db = CityDatabase::builtin();
  Region region;
  region.name = std::move(name);
  region.cities.reserve(names.size());
  for (const char* city_name : names) region.cities.push_back(db.require(city_name).id);
  return region;
}

}  // namespace

std::vector<City> Region::resolve() const {
  const auto& db = CityDatabase::builtin();
  std::vector<City> out;
  out.reserve(cities.size());
  for (const CityId id : cities) out.push_back(db.by_id(id));
  return out;
}

BoundingBox Region::bounds() const {
  BoundingBox box;
  for (const City& c : resolve()) box.extend(c.location);
  return box;
}

Region florida_region() {
  return make_region("Florida",
                     {"Jacksonville", "Miami", "Tampa", "Orlando", "Tallahassee"});
}

Region west_us_region() {
  return make_region("West US",
                     {"Las Vegas", "Kingman", "San Diego", "Phoenix", "Flagstaff"});
}

Region italy_region() {
  return make_region("Italy", {"Milan", "Rome", "Cagliari", "Palermo", "Arezzo"});
}

Region central_eu_region() {
  return make_region("Central EU", {"Bern", "Munich", "Lyon", "Graz", "Milan"});
}

Region macro_region() {
  return make_region("Macro", {"Toronto", "Los Angeles", "New York", "Warsaw"});
}

std::vector<Region> mesoscale_regions() {
  return {florida_region(), west_us_region(), italy_region(), central_eu_region()};
}

Region cdn_region(Continent continent, std::size_t max_sites) {
  const auto& db = CityDatabase::builtin();
  Region region;
  region.name = continent == Continent::kNorthAmerica ? "CDN US" : "CDN Europe";
  std::vector<CityId> ids = db.by_continent(continent);
  if (continent == Continent::kNorthAmerica) {
    // The paper's CDN analysis covers US sites; drop Canadian metros, which
    // only participate in the Figure 1 macro comparison.
    std::erase_if(ids, [&](CityId id) { return db.by_id(id).country != "US"; });
  }
  if (max_sites != 0 && ids.size() > max_sites) ids.resize(max_sites);
  region.cities = std::move(ids);
  return region;
}

}  // namespace carbonedge::geo
