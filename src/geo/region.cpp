#include "geo/region.hpp"

#include <algorithm>
#include <initializer_list>
#include <utility>

namespace carbonedge::geo {
namespace {

/// Regions built on the builtin set carry a null catalog pointer: they stay
/// plain values (safe to serialize/compare) and resolve via the singleton.
const SiteCatalog* catalog_handle(const SiteCatalog& catalog) noexcept {
  return &catalog == &CityDatabase::builtin() ? nullptr : &catalog;
}

Region make_region(const SiteCatalog& db, std::string name,
                   std::initializer_list<const char*> names) {
  Region region;
  region.name = std::move(name);
  region.catalog = catalog_handle(db);
  region.cities.reserve(names.size());
  for (const char* city_name : names) region.cities.push_back(db.require(city_name).id);
  return region;
}

}  // namespace

const SiteCatalog& Region::site_catalog() const noexcept {
  return catalog != nullptr ? *catalog : CityDatabase::builtin();
}

std::vector<City> Region::resolve() const {
  const SiteCatalog& db = site_catalog();
  std::vector<City> out;
  out.reserve(cities.size());
  for (const SiteId id : cities) out.push_back(db.by_id(id));
  return out;
}

BoundingBox Region::bounds() const {
  std::vector<GeoPoint> points;
  points.reserve(cities.size());
  for (const City& c : resolve()) points.push_back(c.location);
  return bounding_box(points);
}

Region florida_region(const SiteCatalog& catalog) {
  return make_region(catalog, "Florida",
                     {"Jacksonville", "Miami", "Tampa", "Orlando", "Tallahassee"});
}

Region west_us_region(const SiteCatalog& catalog) {
  return make_region(catalog, "West US",
                     {"Las Vegas", "Kingman", "San Diego", "Phoenix", "Flagstaff"});
}

Region italy_region(const SiteCatalog& catalog) {
  return make_region(catalog, "Italy",
                     {"Milan", "Rome", "Cagliari", "Palermo", "Arezzo"});
}

Region central_eu_region(const SiteCatalog& catalog) {
  return make_region(catalog, "Central EU",
                     {"Bern", "Munich", "Lyon", "Graz", "Milan"});
}

Region macro_region(const SiteCatalog& catalog) {
  return make_region(catalog, "Macro",
                     {"Toronto", "Los Angeles", "New York", "Warsaw"});
}

std::vector<Region> mesoscale_regions(const SiteCatalog& catalog) {
  return {florida_region(catalog), west_us_region(catalog),
          italy_region(catalog), central_eu_region(catalog)};
}

Region cdn_region(Continent continent, std::size_t max_sites,
                  const SiteCatalog& catalog) {
  Region region;
  region.name = continent == Continent::kNorthAmerica ? "CDN US" : "CDN Europe";
  region.catalog = catalog_handle(catalog);
  std::vector<SiteId> ids = catalog.by_continent(continent);
  if (continent == Continent::kNorthAmerica) {
    // The paper's CDN analysis covers US sites; drop Canadian metros, which
    // only participate in the Figure 1 macro comparison.
    std::erase_if(ids, [&](SiteId id) { return catalog.by_id(id).country != "US"; });
  }
  if (max_sites != 0 && ids.size() > max_sites) ids.resize(max_sites);
  region.cities = std::move(ids);
  return region;
}

Region catalog_region(const SiteCatalog& catalog, std::string name,
                      std::size_t max_sites) {
  Region region;
  region.name = std::move(name);
  region.catalog = catalog_handle(catalog);
  const std::span<const City> sites = catalog.all();
  region.cities.resize(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    region.cities[i] = static_cast<SiteId>(i);
  }
  if (max_sites != 0 && region.cities.size() > max_sites) {
    std::stable_sort(region.cities.begin(), region.cities.end(),
                     [sites](SiteId a, SiteId b) {
                       return sites[a].population_k > sites[b].population_k;
                     });
    region.cities.resize(max_sites);
  }
  return region;
}

}  // namespace carbonedge::geo
