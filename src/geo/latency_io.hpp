// Latency matrix import/export in a WonderNetwork-style CSV schema:
//
//   from,to,distance_km,one_way_ms,rtt_ms
//
// Users with access to real ping datasets (the paper uses WonderNetwork's
// 246-city matrix) can replay them through the same placement pipeline; the
// export path archives the synthetic matrix each experiment ran against.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "geo/latency.hpp"
#include "geo/site.hpp"

namespace carbonedge::geo {

/// Write the pairwise latency of `cities` under `model` as CSV (upper
/// triangle only; the matrix is symmetric).
void write_latency_csv(std::ostream& out, std::span<const City> cities,
                       const LatencyModel& model);

/// Build a LatencyMatrix for `cities` from CSV text in the schema above.
/// Missing pairs throw std::runtime_error; extra pairs are ignored; the
/// direction of a pair does not matter.
[[nodiscard]] LatencyMatrix read_latency_csv(const std::string& text,
                                             std::span<const City> cities);

/// File conveniences.
void save_latency(const std::filesystem::path& path, std::span<const City> cities,
                  const LatencyModel& model);
[[nodiscard]] LatencyMatrix load_latency(const std::filesystem::path& path,
                                         std::span<const City> cities);

}  // namespace carbonedge::geo
