#include "geo/latency_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace carbonedge::geo {

void write_latency_csv(std::ostream& out, std::span<const City> cities,
                       const LatencyModel& model) {
  util::CsvWriter writer(out);
  writer.header({"from", "to", "distance_km", "one_way_ms", "rtt_ms"});
  for (std::size_t i = 0; i < cities.size(); ++i) {
    for (std::size_t j = i + 1; j < cities.size(); ++j) {
      const double one_way = model.one_way_ms(cities[i], cities[j]);
      writer.row({cities[i].name, cities[j].name,
                  util::format_double(haversine_km(cities[i].location, cities[j].location), 1),
                  util::format_double(one_way, 4), util::format_double(2.0 * one_way, 4)});
    }
  }
}

LatencyMatrix read_latency_csv(const std::string& text, std::span<const City> cities) {
  const util::CsvDocument doc = util::parse_csv(text);
  const std::size_t from_col = doc.column("from");
  const std::size_t to_col = doc.column("to");
  const std::size_t ms_col = doc.column("one_way_ms");
  if (from_col == util::CsvDocument::npos || to_col == util::CsvDocument::npos ||
      ms_col == util::CsvDocument::npos) {
    throw std::runtime_error("latency csv: missing from/to/one_way_ms columns");
  }
  std::map<std::pair<std::string, std::string>, double> pairs;
  for (const auto& row : doc.rows) {
    const double ms = std::stod(row[ms_col]);
    if (ms < 0.0) throw std::runtime_error("latency csv: negative latency");
    pairs[{std::min(row[from_col], row[to_col]), std::max(row[from_col], row[to_col])}] = ms;
  }
  std::vector<double> values(cities.size() * cities.size(), 0.0);
  for (std::size_t i = 0; i < cities.size(); ++i) {
    for (std::size_t j = i + 1; j < cities.size(); ++j) {
      const auto key = std::pair{std::min(cities[i].name, cities[j].name),
                                 std::max(cities[i].name, cities[j].name)};
      const auto it = pairs.find(key);
      if (it == pairs.end()) {
        throw std::runtime_error("latency csv: missing pair " + cities[i].name + " - " +
                                 cities[j].name);
      }
      values[i * cities.size() + j] = it->second;
      values[j * cities.size() + i] = it->second;
    }
  }
  return LatencyMatrix(cities.size(), std::move(values));
}

void save_latency(const std::filesystem::path& path, std::span<const City> cities,
                  const LatencyModel& model) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("latency csv: cannot write " + path.string());
  write_latency_csv(file, cities, model);
}

LatencyMatrix load_latency(const std::filesystem::path& path, std::span<const City> cities) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("latency csv: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return read_latency_csv(buffer.str(), cities);
}

}  // namespace carbonedge::geo
