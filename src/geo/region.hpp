// Mesoscale regions and CDN deployments.
//
// The paper studies four hand-picked mesoscale regions (Figure 2) of five
// carbon zones each, a four-zone macro comparison (Figure 1), and a
// continental CDN deployment derived from Akamai edge locations. This module
// reconstructs all of them from the built-in city database; the CDN set is
// synthesized population-weighted (see DESIGN.md substitution table).
#pragma once

#include <string>
#include <vector>

#include "geo/city.hpp"
#include "geo/coord.hpp"

namespace carbonedge::geo {

/// An ordered set of cities forming one experiment geography.
struct Region {
  std::string name;
  std::vector<CityId> cities;

  [[nodiscard]] std::vector<City> resolve() const;
  [[nodiscard]] BoundingBox bounds() const;
};

/// Figure 2a: Florida — Jacksonville, Miami, Tampa, Orlando, Tallahassee.
[[nodiscard]] Region florida_region();

/// Figure 2b: West US — Las Vegas, Kingman, San Diego, Phoenix, Flagstaff.
[[nodiscard]] Region west_us_region();

/// Figure 2c: Italy — Milan, Rome, Cagliari, Palermo, Arezzo.
[[nodiscard]] Region italy_region();

/// Figure 2d: Central Europe — Bern, Munich, Lyon, Graz, Milan.
[[nodiscard]] Region central_eu_region();

/// Figure 1: macro zones — Toronto (Ontario), Los Angeles (California),
/// New York, Warsaw (Poland).
[[nodiscard]] Region macro_region();

/// All four mesoscale regions in Figure 2 order.
[[nodiscard]] std::vector<Region> mesoscale_regions();

/// A continental CDN deployment: up to `max_sites` cities on `continent`,
/// chosen by descending metro population (mirrors how CDN operators place
/// PoPs; the paper merges multiple DCs per city, so one site per city).
/// `max_sites == 0` means "all available cities".
[[nodiscard]] Region cdn_region(Continent continent, std::size_t max_sites = 0);

}  // namespace carbonedge::geo
