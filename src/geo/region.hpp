// Mesoscale regions and CDN deployments.
//
// The paper studies four hand-picked mesoscale regions (Figure 2) of five
// carbon zones each, a four-zone macro comparison (Figure 1), and a
// continental CDN deployment derived from Akamai edge locations. This module
// reconstructs all of them from a SiteCatalog (the builtin city database by
// default); the CDN set is synthesized population-weighted (see DESIGN.md
// substitution table). catalog_region() additionally turns any compiled
// catalog into an experiment geography, which is how sweeps reach the
// 1000+-site regime.
//
// Name resolution happens exactly once, at region construction: a Region
// carries stable SiteIds plus the catalog that issued them, and everything
// downstream (clusters, latency providers, fingerprints) works on ids.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geo/catalog.hpp"
#include "geo/city.hpp"
#include "geo/coord.hpp"
#include "geo/site.hpp"

namespace carbonedge::geo {

/// An ordered set of sites forming one experiment geography. `catalog` is
/// the catalog the SiteIds refer to; null means the builtin city database.
/// The catalog must outlive the region (builders wire the builtin singleton
/// or a caller-owned compiled catalog).
struct Region {
  std::string name;
  std::vector<SiteId> cities;
  const SiteCatalog* catalog = nullptr;

  /// The catalog `cities` resolve against.
  [[nodiscard]] const SiteCatalog& site_catalog() const noexcept;
  [[nodiscard]] std::vector<City> resolve() const;
  [[nodiscard]] BoundingBox bounds() const;
};

/// Figure 2a: Florida — Jacksonville, Miami, Tampa, Orlando, Tallahassee.
[[nodiscard]] Region florida_region(
    const SiteCatalog& catalog = CityDatabase::builtin());

/// Figure 2b: West US — Las Vegas, Kingman, San Diego, Phoenix, Flagstaff.
[[nodiscard]] Region west_us_region(
    const SiteCatalog& catalog = CityDatabase::builtin());

/// Figure 2c: Italy — Milan, Rome, Cagliari, Palermo, Arezzo.
[[nodiscard]] Region italy_region(
    const SiteCatalog& catalog = CityDatabase::builtin());

/// Figure 2d: Central Europe — Bern, Munich, Lyon, Graz, Milan.
[[nodiscard]] Region central_eu_region(
    const SiteCatalog& catalog = CityDatabase::builtin());

/// Figure 1: macro zones — Toronto (Ontario), Los Angeles (California),
/// New York, Warsaw (Poland).
[[nodiscard]] Region macro_region(
    const SiteCatalog& catalog = CityDatabase::builtin());

/// All four mesoscale regions in Figure 2 order.
[[nodiscard]] std::vector<Region> mesoscale_regions(
    const SiteCatalog& catalog = CityDatabase::builtin());

/// A continental CDN deployment: up to `max_sites` cities on `continent`,
/// chosen by descending metro population (mirrors how CDN operators place
/// PoPs; the paper merges multiple DCs per city, so one site per city).
/// `max_sites == 0` means "all available cities".
[[nodiscard]] Region cdn_region(
    Continent continent, std::size_t max_sites = 0,
    const SiteCatalog& catalog = CityDatabase::builtin());

/// The whole catalog as one region — or, with `max_sites != 0`, its
/// `max_sites` most populous sites (population descending, SiteId
/// tie-break). This is the entry point for compiled-catalog sweeps.
[[nodiscard]] Region catalog_region(const SiteCatalog& catalog,
                                    std::string name,
                                    std::size_t max_sites = 0);

}  // namespace carbonedge::geo
