#include "geo/sparse_latency.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "geo/spatial_index.hpp"

namespace carbonedge::geo {

BandedLatencyMatrix::BandedLatencyMatrix(const LatencyModel& model,
                                         std::span<const City> cities,
                                         double band_one_way_ms)
    : band_ms_(band_one_way_ms) {
  const LatencyModelParams& p = model.params();
  if (band_ms_ <= p.base_ms) {
    throw std::invalid_argument(
        "banded latency: band must exceed the base one-way latency");
  }
  // Conservative model inversion: no in-band pair can be farther than this.
  const double radius_km =
      (band_ms_ - p.base_ms) * p.fiber_km_per_ms / p.inflation_min;

  const SpatialIndex index(cities);
  row_start_.assign(cities.size() + 1, 0);
  for (std::size_t i = 0; i < cities.size(); ++i) {
    // Candidates ascending; exact model decides membership, so the band is
    // symmetric and bit-identical to the dense matrix on its support.
    for (const std::uint32_t j :
         index.within_radius(cities[i].location, radius_km)) {
      const double ms = i == static_cast<std::size_t>(j)
                            ? 0.0
                            : model.one_way_ms(cities[i], cities[j]);
      if (ms <= band_ms_) {
        cols_.push_back(j);
        values_.push_back(ms);
      }
    }
    row_start_[i + 1] = cols_.size();
  }
}

double BandedLatencyMatrix::one_way_ms(std::size_t i,
                                       std::size_t j) const noexcept {
  const auto first = cols_.begin() + static_cast<std::ptrdiff_t>(row_start_[i]);
  const auto last = cols_.begin() + static_cast<std::ptrdiff_t>(row_start_[i + 1]);
  const auto it = std::lower_bound(first, last, static_cast<std::uint32_t>(j));
  if (it == last || *it != static_cast<std::uint32_t>(j)) {
    return std::numeric_limits<double>::infinity();
  }
  return values_[static_cast<std::size_t>(it - cols_.begin())];
}

std::span<const std::uint32_t> BandedLatencyMatrix::neighbors(
    std::size_t i) const noexcept {
  return std::span<const std::uint32_t>(cols_).subspan(
      row_start_[i], row_start_[i + 1] - row_start_[i]);
}

}  // namespace carbonedge::geo
