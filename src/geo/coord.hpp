// Geographic primitives: WGS-84 points and great-circle distance.
#pragma once

#include <compare>
#include <span>

namespace carbonedge::geo {

/// Continents covered by the study (the paper's data is US + Europe, with
/// Canada appearing in the Figure 1 macro comparison).
enum class Continent { kNorthAmerica, kEurope };

[[nodiscard]] const char* to_string(Continent continent) noexcept;

/// A latitude/longitude pair in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend constexpr auto operator<=>(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance between two points in kilometers (haversine,
/// mean Earth radius 6371.0088 km).
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Axis-aligned bounding box of a set of points; used to report region
/// extents like the paper's "807km x 712km" annotations in Figure 2.
///
/// The longitude interval may wrap across the antimeridian: `min.lon_deg >
/// max.lon_deg` means the box spans [min.lon, 180] U [-180, max.lon].
/// extend() alone never produces a wrapped box (it min/maxes per axis);
/// wrapped boxes come from bounding_box(), which picks the smallest
/// longitude interval covering the points.
struct BoundingBox {
  GeoPoint min{90.0, 180.0};
  GeoPoint max{-90.0, -180.0};

  void extend(const GeoPoint& p) noexcept;
  /// East-west longitude span in degrees, wrap-aware.
  [[nodiscard]] double lon_span_deg() const noexcept;
  /// Width (east-west, at the mid latitude) and height (north-south) in km.
  /// Wrap-aware: an antimeridian-spanning Aleutian box reports its true
  /// short span instead of a near-360-degree fold.
  [[nodiscard]] double width_km() const noexcept;
  [[nodiscard]] double height_km() const noexcept;
};

/// Smallest bounding box of a point set, choosing the tightest longitude
/// interval even when it crosses the antimeridian (largest-circular-gap
/// construction). For point sets that do not straddle +-180 this matches
/// extend() exactly.
[[nodiscard]] BoundingBox bounding_box(std::span<const GeoPoint> points);

}  // namespace carbonedge::geo
