// Site identity: the row type shared by every SiteCatalog implementation.
#pragma once

#include <cstdint>
#include <string>

#include "geo/coord.hpp"

namespace carbonedge::geo {

/// Identifier of a site within one catalog: ids are dense 0..size-1 and
/// stable across runs for a given catalog (builtin table order, or dump row
/// order for compiled catalogs). A SiteId is only meaningful relative to the
/// catalog that issued it.
using SiteId = std::uint32_t;

/// Alias kept for the builtin set, which predates the catalog API.
using CityId = SiteId;

struct City {
  SiteId id = 0;
  std::string name;
  std::string country;  // ISO-3166 alpha-2
  Continent continent = Continent::kNorthAmerica;
  GeoPoint location;
  double population_k = 0.0;  // metro population, thousands
};

}  // namespace carbonedge::geo
