#include "analysis/mesoscale.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace carbonedge::analysis {

ZoneStats zone_stats(const carbon::CarbonTrace& trace) {
  ZoneStats stats;
  stats.zone = trace.zone();
  stats.mean_g_kwh = trace.yearly_mean();
  stats.min_g_kwh = trace.yearly_min();
  stats.max_g_kwh = trace.yearly_max();
  if (!trace.mixes().empty()) {
    stats.low_carbon_share = trace.average_mix().low_carbon_share();
  }

  // Mean day shape -> daily swing.
  std::array<double, carbon::kHoursPerDay> shape{};
  const double days =
      static_cast<double>(trace.hours()) / static_cast<double>(carbon::kHoursPerDay);
  for (carbon::HourIndex h = 0; h < trace.hours(); ++h) {
    shape[carbon::hour_of_day(h)] += trace.at(h) / days;
  }
  stats.mean_daily_swing = *std::max_element(shape.begin(), shape.end()) -
                           *std::min_element(shape.begin(), shape.end());

  // Monthly means -> seasonal range (only meaningful on full-year traces).
  if (trace.hours() >= carbon::kHoursPerYear) {
    double lo = 1e300;
    double hi = -1e300;
    for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
      const double mean = trace.monthly_mean(m);
      lo = std::min(lo, mean);
      hi = std::max(hi, mean);
    }
    stats.seasonal_range = hi - lo;
  }
  return stats;
}

RegionSummary summarize_region(const geo::Region& region,
                               const carbon::CarbonIntensityService& service,
                               carbon::HourIndex snapshot_hour) {
  RegionSummary summary;
  summary.region = region.name;
  const geo::BoundingBox box = region.bounds();
  summary.width_km = box.width_km();
  summary.height_km = box.height_km();

  double mean_lo = 1e300;
  double mean_hi = 0.0;
  double snap_lo = 1e300;
  double snap_hi = 0.0;
  for (const geo::City& city : region.resolve()) {
    const carbon::CarbonTrace& trace = service.trace(city.name);
    summary.zones.push_back(zone_stats(trace));
    mean_lo = std::min(mean_lo, summary.zones.back().mean_g_kwh);
    mean_hi = std::max(mean_hi, summary.zones.back().mean_g_kwh);
    const double snap = trace.at(snapshot_hour);
    snap_lo = std::min(snap_lo, snap);
    snap_hi = std::max(snap_hi, snap);
  }
  summary.yearly_spread = mean_lo > 0.0 ? mean_hi / mean_lo : 0.0;
  summary.snapshot_spread = snap_lo > 0.0 ? snap_hi / snap_lo : 0.0;
  return summary;
}

std::optional<ShiftPartner> best_partner(const geo::City& from,
                                         std::span<const geo::City> sites,
                                         std::span<const double> mean_intensity,
                                         const geo::LatencyModel& latency,
                                         double budget_one_way_ms) {
  double own = 0.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].id == from.id) own = mean_intensity[i];
  }
  std::optional<ShiftPartner> best;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const geo::City& to = sites[i];
    if (to.id == from.id || to.continent != from.continent) continue;
    const double one_way = latency.one_way_ms(from, to);
    if (one_way > budget_one_way_ms) continue;
    const double saving = (own - mean_intensity[i]) / std::max(own, 1e-9);
    if (saving <= 0.0) continue;
    if (!best || saving > best->saving_fraction) {
      best = ShiftPartner{from.id, to.id, geo::haversine_km(from.location, to.location),
                          one_way, saving};
    }
  }
  return best;
}

RadiusStudy radius_study(std::span<const geo::City> sites,
                         std::span<const double> mean_intensity,
                         const geo::LatencyModel& latency, double radius_km) {
  RadiusStudy study;
  study.radius_km = radius_km;
  std::vector<double> best_saving(sites.size(), 0.0);
  std::vector<double> pair_latency;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = 0; j < sites.size(); ++j) {
      if (i == j || sites[i].continent != sites[j].continent) continue;
      const double km = geo::haversine_km(sites[i].location, sites[j].location);
      if (km > radius_km) continue;
      const double saving = (mean_intensity[i] - mean_intensity[j]) /
                            std::max(mean_intensity[i], 1e-9) * 100.0;
      best_saving[i] = std::max(best_saving[i], saving);
      if (j > i) pair_latency.push_back(latency.one_way_ms(sites[i], sites[j]));
    }
  }
  study.saving_cdf = util::EmpiricalCdf(std::move(best_saving));
  study.fraction_above_20 = 1.0 - study.saving_cdf.at(20.0);
  study.fraction_above_40 = 1.0 - study.saving_cdf.at(40.0);
  study.median_saving = study.saving_cdf.quantile(0.5);
  study.median_latency_ms = util::median(pair_latency);
  study.latency_cdf = util::EmpiricalCdf(std::move(pair_latency));
  return study;
}

std::vector<double> yearly_means(std::span<const geo::City> sites,
                                 const carbon::SynthesizerParams& params) {
  const auto& catalog = carbon::ZoneCatalog::builtin();
  std::vector<double> means(sites.size(), 0.0);
  util::parallel_for(util::global_pool(), 0, sites.size(), [&](std::size_t i) {
    const carbon::TraceSynthesizer synthesizer(params);
    means[i] = synthesizer.synthesize(catalog.spec_for(sites[i])).yearly_mean();
  });
  return means;
}

}  // namespace carbonedge::analysis
