// Mesoscale carbon analysis (paper Section 3) as a reusable library:
// per-zone trace statistics, intra-region spreads, and the radius-bounded
// best-saving study behind Figure 5.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "carbon/caltime.hpp"
#include "carbon/service.hpp"
#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "util/stats.hpp"

namespace carbonedge::analysis {

/// Per-zone descriptive statistics over a year of hourly intensity.
struct ZoneStats {
  std::string zone;
  double mean_g_kwh = 0.0;
  double min_g_kwh = 0.0;
  double max_g_kwh = 0.0;
  double low_carbon_share = 0.0;  // from realized mixes; 0 if unavailable
  double mean_daily_swing = 0.0;  // max - min of the average day shape
  double seasonal_range = 0.0;    // max - min of the monthly means
};

/// Region-level summary: zone stats plus the paper's headline ratios.
struct RegionSummary {
  std::string region;
  std::vector<ZoneStats> zones;
  double yearly_spread = 0.0;   // max/min of zone yearly means (Fig. 3)
  double snapshot_spread = 0.0; // max/min at the requested snapshot hour (Fig. 2)
  double width_km = 0.0;
  double height_km = 0.0;
};

/// Compute ZoneStats for one trace.
[[nodiscard]] ZoneStats zone_stats(const carbon::CarbonTrace& trace);

/// Summarize a region whose traces are registered with `service`.
/// `snapshot_hour` selects the Figure 2 snapshot instant.
[[nodiscard]] RegionSummary summarize_region(const geo::Region& region,
                                             const carbon::CarbonIntensityService& service,
                                             carbon::HourIndex snapshot_hour = 12);

/// A candidate spatial-shift destination for one site.
struct ShiftPartner {
  geo::CityId from = 0;
  geo::CityId to = 0;
  double distance_km = 0.0;
  double one_way_ms = 0.0;
  double saving_fraction = 0.0;  // relative drop in yearly-mean intensity
};

/// Best shift partner for `from` among `sites` subject to a one-way latency
/// budget; nullopt when no partner improves on staying put.
[[nodiscard]] std::optional<ShiftPartner> best_partner(
    const geo::City& from, std::span<const geo::City> sites,
    std::span<const double> mean_intensity, const geo::LatencyModel& latency,
    double budget_one_way_ms);

/// The Figure 5 study: for every site, the best relative saving available
/// within `radius_km` (same-continent pairs only), plus the one-way latency
/// sample of all in-radius pairs.
struct RadiusStudy {
  double radius_km = 0.0;
  util::EmpiricalCdf saving_cdf;       // percentage points, one per site
  util::EmpiricalCdf latency_cdf;      // one-way ms, one per in-radius pair
  double fraction_above_20 = 0.0;      // sites with >20% best saving
  double fraction_above_40 = 0.0;
  double median_saving = 0.0;          // percent
  double median_latency_ms = 0.0;
};

[[nodiscard]] RadiusStudy radius_study(std::span<const geo::City> sites,
                                       std::span<const double> mean_intensity,
                                       const geo::LatencyModel& latency, double radius_km);

/// Yearly-mean intensities for a site list via the default synthesizer
/// (convenience for the Figure 5 pipeline).
[[nodiscard]] std::vector<double> yearly_means(std::span<const geo::City> sites,
                                               const carbon::SynthesizerParams& params = {});

}  // namespace carbonedge::analysis
