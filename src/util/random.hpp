// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of CarbonEdge (trace synthesis, workload
// arrivals, latency jitter) draw from this engine so that every experiment
// is bit-reproducible from a single seed. We use xoshiro256** (Blackman &
// Vigna) seeded via splitmix64, which is both faster and statistically
// stronger than std::mt19937 while keeping the object trivially copyable.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace carbonedge::util {

/// splitmix64 step; used for seeding and for stateless hash-based draws.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value (for hash-derived deterministic noise).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// FNV-1a hash of a string, for deriving per-entity seeds from names.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Poisson-distributed count with given mean (Knuth for small, normal
  /// approximation for large means).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Draw an index from a discrete distribution given non-negative weights.
  /// Returns weights.size() only if every weight is zero or the span is empty.
  [[nodiscard]] std::size_t weighted_index(const double* weights, std::size_t count) noexcept;

  /// Derive an independent child stream for entity `stream` (site, shard,
  /// scenario...). The child's seed mixes the parent's *current* state with
  /// the stream index, so forks taken at different points diverge, while the
  /// parent's own sequence is left untouched — draws from a fork never
  /// perturb draws from the parent, which is what makes pre-forked per-
  /// entity streams safe to consume in any thread order.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    std::uint64_t s = state_[0] ^ rotl(state_[2], 23) ^ mix64(stream + 0x632BE59BD9B4E019ULL);
    return Rng(splitmix64(s));
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace carbonedge::util
