// Content hashing for the persistent artifact store (store/).
//
// Fingerprint is a streaming 128-bit content hasher used to derive stable
// on-disk keys from structured values (ZoneSpec + SynthesizerParams,
// Scenario configs). Keys must be identical across processes and runs, so
// the hash is fully specified here rather than delegated to std::hash
// (whose value is implementation-defined and may be seeded per process).
// Two independently-mixed 64-bit lanes make accidental collisions across
// the store's key population (thousands of entries) astronomically
// unlikely; this is not a cryptographic hash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace carbonedge::util {

/// 128-bit digest, hex-printable as a filesystem-safe key.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex characters, hi word first.
  [[nodiscard]] std::string hex() const;

  [[nodiscard]] bool operator==(const Digest128&) const noexcept = default;
};

/// Streaming hasher. Every mix() is length/type-framed (strings are
/// length-prefixed, doubles are bit-normalized), so distinct field
/// sequences cannot collide by concatenation.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t value) noexcept;
  Fingerprint& mix(std::int64_t value) noexcept {
    return mix(static_cast<std::uint64_t>(value));
  }
  Fingerprint& mix(std::uint32_t value) noexcept {
    return mix(static_cast<std::uint64_t>(value));
  }
  Fingerprint& mix(bool value) noexcept { return mix(static_cast<std::uint64_t>(value)); }
  /// Doubles hash by bit pattern with -0.0 normalized to +0.0 and every NaN
  /// collapsed to one canonical NaN, so equal values always hash equally.
  Fingerprint& mix(double value) noexcept;
  /// Length-prefixed, so {"ab","c"} and {"a","bc"} differ.
  Fingerprint& mix(std::string_view text) noexcept;
  /// String literals must not fall into the bool overload (a standard
  /// conversion, which would otherwise beat string_view's user-defined one).
  Fingerprint& mix(const char* text) noexcept { return mix(std::string_view(text)); }

  [[nodiscard]] Digest128 digest() const noexcept;

 private:
  void absorb(std::uint64_t word) noexcept;

  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t hi_ = 0x6a09e667f3bcc909ULL;  // frac(sqrt(2))
};

/// FNV-1a over a byte span: the artifact container's payload checksum.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

}  // namespace carbonedge::util
