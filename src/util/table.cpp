#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"

namespace carbonedge::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  aligns_.assign(header_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format_fixed(v, precision));
  add_row(std::move(cells));
}

void Table::add_separator() { separators_.push_back(rows_.size()); }

void Table::append_column(std::string header, const std::string& value) {
  header_.push_back(std::move(header));
  aligns_.push_back(Align::kRight);
  for (auto& row : rows_) row.push_back(value);
}

void Table::set_align(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void Table::print(std::ostream& out) const { out << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto pad = [&](const std::string& cell, std::size_t c) {
    std::string out_cell;
    const std::size_t width = widths[c];
    if (aligns_[c] == Align::kLeft) {
      out_cell = cell + std::string(width - cell.size(), ' ');
    } else {
      out_cell = std::string(width - cell.size(), ' ') + cell;
    }
    return out_cell;
  };

  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << ' ' << pad(header_[c], c) << " |";
  os << '\n';
  rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end() && r != 0) rule();
    os << '|';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) os << ' ' << pad(rows_[r][c], c) << " |";
    os << '\n';
  }
  rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.header(header_);
  for (const auto& row : rows_) writer.row(row);
  return os.str();
}

std::string format_percent(double fraction, int precision) {
  return format_fixed(fraction * 100.0, precision) + "%";
}

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string format_bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || width <= 0) return {};
  const double frac = std::clamp(value / max_value, 0.0, 1.0);
  const int filled = static_cast<int>(std::lround(frac * width));
  return std::string(static_cast<std::size_t>(filled), '#') +
         std::string(static_cast<std::size_t>(width - filled), '.');
}

}  // namespace carbonedge::util
