#include "util/fs.hpp"

#include <atomic>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define CARBONEDGE_HAVE_POSIX_FS 1
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace carbonedge::util {

namespace {

std::uint64_t process_id() noexcept {
#ifdef CARBONEDGE_HAVE_POSIX_FS
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("fs: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (!file.good() && !file.eof()) {
    throw std::runtime_error("fs: read failed for " + path.string());
  }
  return std::move(buffer).str();
}

void write_file_atomic(const std::filesystem::path& path, std::string_view bytes) {
  static std::atomic<std::uint64_t> sequence{0};
  const std::filesystem::path tmp =
      path.parent_path() /
      (path.filename().string() + ".tmp-" + std::to_string(process_id()) + "-" +
       std::to_string(sequence.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("fs: cannot write " + tmp.string());
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!file.good()) {
      file.close();
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw std::runtime_error("fs: write failed for " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw std::runtime_error("fs: rename to " + path.string() + " failed: " + ec.message());
  }
}

bool is_atomic_temp_name(std::string_view name) noexcept {
  return name.find(".tmp-") != std::string_view::npos;
}

FileView::FileView(const std::filesystem::path& path) {
#ifdef CARBONEDGE_HAVE_POSIX_FS
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      size_ = static_cast<std::size_t>(st.st_size);
      if (size_ == 0) {
        data_ = "";
        ::close(fd);
        return;
      }
      void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping outlives the descriptor
      if (map != MAP_FAILED) {
        map_ = map;
        data_ = static_cast<const char*>(map);
        return;
      }
      size_ = 0;
    } else {
      ::close(fd);
    }
  }
#endif
  buffer_ = read_file(path);
  data_ = buffer_.data();
  size_ = buffer_.size();
}

FileView::~FileView() {
#ifdef CARBONEDGE_HAVE_POSIX_FS
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

FileView::FileView(FileView&& other) noexcept
    : buffer_(std::move(other.buffer_)), data_(other.data_), size_(other.size_),
      map_(other.map_) {
  if (map_ == nullptr && size_ > 0) data_ = buffer_.data();
  other.map_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

FileLock::FileLock(const std::filesystem::path& path, Mode mode) {
#ifdef CARBONEDGE_HAVE_POSIX_FS
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  const int op = LOCK_EX | (mode == Mode::kTry ? LOCK_NB : 0);
  if (fd_ >= 0 && ::flock(fd_, op) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
#else
  (void)path;
  (void)mode;
#endif
}

FileLock::~FileLock() {
#ifdef CARBONEDGE_HAVE_POSIX_FS
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
#endif
}

FileLock::FileLock(FileLock&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

}  // namespace carbonedge::util
