#include "util/parallelism.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

#include "util/env.hpp"

namespace carbonedge::util {

std::size_t parse_thread_count(const char* value) noexcept {
  if (value != nullptr) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(value, &end, 10);
    if (end != value && *end == '\0' && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t configured_thread_count() {
  const std::optional<std::string> value = env::get("CARBONEDGE_THREADS");
  return parse_thread_count(value.has_value() ? value->c_str() : nullptr);
}

ParallelismBudget::ParallelismBudget(std::size_t total_lanes)
    : total_(total_lanes == 0 ? 1 : total_lanes) {
  extra_available_.store(total_ - 1, std::memory_order_relaxed);
}

ParallelismBudget::Lease& ParallelismBudget::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    budget_ = other.budget_;
    extra_ = other.extra_;
    other.budget_ = nullptr;
    other.extra_ = 0;
  }
  return *this;
}

void ParallelismBudget::Lease::release() noexcept {
  if (budget_ != nullptr && extra_ > 0) budget_->release_extra(extra_);
  budget_ = nullptr;
  extra_ = 0;
}

ParallelismBudget::Lease ParallelismBudget::acquire(std::size_t want_lanes) noexcept {
  const std::size_t want_extra = want_lanes > 1 ? want_lanes - 1 : 0;
  std::size_t granted = 0;
  std::size_t available = extra_available_.load(std::memory_order_relaxed);
  while (granted < want_extra && available > 0) {
    const std::size_t take = std::min(want_extra, available);
    if (extra_available_.compare_exchange_weak(available, available - take,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
      granted = take;
      break;
    }
  }
  // High-water mark of the root lane plus every extra lane out on lease.
  const std::size_t in_use = 1 + (total_ - 1 - extra_available_.load(std::memory_order_relaxed));
  std::size_t peak = peak_lanes_.load(std::memory_order_relaxed);
  while (in_use > peak &&
         !peak_lanes_.compare_exchange_weak(peak, in_use, std::memory_order_relaxed)) {
  }
  return Lease(this, granted);
}

void ParallelismBudget::release_extra(std::size_t extra) noexcept {
  extra_available_.fetch_add(extra, std::memory_order_acq_rel);
}

ParallelismBudget& global_budget() {
  static ParallelismBudget budget(configured_thread_count());
  return budget;
}

}  // namespace carbonedge::util
