#include "util/random.hpp"

#include <cmath>

namespace carbonedge::util {

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

double Rng::exponential(double rate) noexcept {
  // -log(1-U)/rate; 1-U avoids log(0).
  return -std::log1p(-uniform()) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::weighted_index(const double* weights, std::size_t count) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) total += weights[i] > 0.0 ? weights[i] : 0.0;
  if (total <= 0.0) return count;
  double target = uniform() * total;
  for (std::size_t i = 0; i < count; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return count - 1;  // numeric slack: land on the last positive bucket
}

}  // namespace carbonedge::util
