// Fixed-bin histogram with quantile queries. Telemetry uses it to track the
// response-time distribution across the whole run (Figure 9-style tail
// analysis) in O(1) memory instead of storing every sample.
#pragma once

#include <cstdint>
#include <vector>

namespace carbonedge::util {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); out-of-range samples clamp into the edge
  /// bins. Defaults suit millisecond latencies.
  explicit Histogram(double lo = 0.0, double hi = 1000.0, std::size_t bins = 500);

  void add(double value, double weight = 1.0) noexcept;
  void merge(const Histogram& other);

  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept;

  /// Weighted quantile, q in [0, 1]; linear interpolation inside the bin.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] const std::vector<double>& bins() const noexcept { return bins_; }
  [[nodiscard]] double bin_lo() const noexcept { return lo_; }
  [[nodiscard]] double bin_hi() const noexcept { return hi_; }
  /// Sum of value*weight over all samples (mean() numerator). Exposed so a
  /// histogram's full state can be serialized (store/codecs.hpp).
  [[nodiscard]] double weighted_sum() const noexcept { return weighted_sum_; }

  /// Rebuild a histogram from previously-captured state (the store's
  /// deserialization path). `bins` must be non-empty; min/max are ignored
  /// when count is zero. The result is bit-identical to the instance the
  /// state was read from.
  [[nodiscard]] static Histogram restore(double lo, double hi, std::vector<double> bins,
                                         double total_weight, double weighted_sum,
                                         std::uint64_t count, double min, double max);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> bins_;
  double total_weight_ = 0.0;
  double weighted_sum_ = 0.0;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace carbonedge::util
