#include "util/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace carbonedge::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      bins_(bins == 0 ? 1 : bins, 0.0) {
  if (hi <= lo) throw std::invalid_argument("histogram: hi must exceed lo");
}

void Histogram::add(double value, double weight) noexcept {
  if (weight <= 0.0) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  total_weight_ += weight;
  weighted_sum_ += value * weight;
  const double offset = (value - lo_) / width_;
  std::size_t index = 0;
  if (offset > 0.0) {
    index = std::min(bins_.size() - 1, static_cast<std::size_t>(offset));
  }
  bins_[index] += weight;
}

void Histogram::merge(const Histogram& other) {
  if (other.bins_.size() != bins_.size() || other.lo_ != lo_ || other.hi_ != hi_) {
    throw std::invalid_argument("histogram: merge requires identical binning");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_weight_ += other.total_weight_;
  weighted_sum_ += other.weighted_sum_;
  count_ += other.count_;
}

Histogram Histogram::restore(double lo, double hi, std::vector<double> bins,
                             double total_weight, double weighted_sum, std::uint64_t count,
                             double min, double max) {
  Histogram h(lo, hi, bins.size());
  if (bins.size() != h.bins_.size()) {
    throw std::invalid_argument("histogram: restore requires at least one bin");
  }
  h.bins_ = std::move(bins);
  h.total_weight_ = total_weight;
  h.weighted_sum_ = weighted_sum;
  h.count_ = count;
  if (count > 0) {
    h.min_ = min;
    h.max_ = max;
  }
  return h;
}

double Histogram::mean() const noexcept {
  return total_weight_ > 0.0 ? weighted_sum_ / total_weight_ : 0.0;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const double target = q * total_weight_;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (cumulative + bins_[i] >= target) {
      const double within = bins_[i] > 0.0 ? (target - cumulative) / bins_[i] : 0.0;
      const double value = lo_ + (static_cast<double>(i) + within) * width_;
      return std::clamp(value, min_, max_);
    }
    cumulative += bins_[i];
  }
  return max_;
}

}  // namespace carbonedge::util
