// Central environment-variable shim — the only place in the tree allowed to
// call std::getenv (lint rule D5).
//
// Environment variables are process inputs that can silently change behavior
// (CARBONEDGE_THREADS sizes the worker budget, CARBONEDGE_STORE_DIR attaches
// the persistent store), so every read is funneled through here: one audited
// call point, and each variable is read from the host environment at most
// once per process. The first lookup snapshots the value; later setenv()
// calls are invisible, which pins a run's configuration at the moment it is
// first consulted — a value that mutates mid-run could otherwise make two
// halves of one simulation disagree about their own configuration.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace carbonedge::util::env {

/// The value of `name` as of its first lookup in this process (cached
/// thereafter; at most one host read per variable). nullopt when unset.
/// Thread-safe.
[[nodiscard]] std::optional<std::string> get(std::string_view name);

/// get(name) with a fallback for unset. Note: an empty-but-set variable
/// returns the empty string, not the fallback.
[[nodiscard]] std::string get_or(std::string_view name, std::string_view fallback);

/// Number of distinct host environment reads performed so far — the
/// "at most once per variable" contract is asserted against this in tests.
[[nodiscard]] std::size_t host_reads() noexcept;

}  // namespace carbonedge::util::env
