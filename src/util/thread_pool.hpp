// Fixed-size work-queue thread pool with a parallel_for convenience.
//
// The year-long CDN simulations and the radius-CDF sweeps are embarrassingly
// parallel across epochs/sites; this pool lets the benches exploit however
// many cores are available while staying deterministic (tasks own disjoint
// output slots, merged at join — no locks on hot paths).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace carbonedge::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True when called from one of this pool's worker threads. parallel_for
  /// uses this to run nested submissions inline instead of deadlocking
  /// (every worker blocked waiting on tasks no free worker can run).
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Block until every queued/running task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Run body(i) for i in [begin, end) across the pool, blocking until done.
/// Work is chunked to amortize dispatch overhead. Exceptions from tasks are
/// rethrown (first one wins).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t chunk = 0);

/// Process-wide default pool (lazily constructed).
[[nodiscard]] ThreadPool& global_pool();

}  // namespace carbonedge::util
