#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace carbonedge::util {
namespace {

std::vector<std::vector<std::string>> tokenize(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> current_row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_cell = [&] {
    current_row.push_back(std::move(cell));
    cell.clear();
  };
  const auto end_row = [&] {
    if (row_has_content || !current_row.empty()) {
      end_cell();
      rows.push_back(std::move(current_row));
      current_row.clear();
    }
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        cell.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted cell");
  end_row();
  return rows;
}

}  // namespace

std::size_t CsvDocument::column(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

CsvDocument parse_csv(std::string_view text, bool has_header) {
  CsvDocument doc;
  auto rows = tokenize(text);
  if (rows.empty()) return doc;
  std::size_t start = 0;
  if (has_header) {
    doc.header = std::move(rows.front());
    start = 1;
  }
  const std::size_t arity = has_header ? doc.header.size() : rows.front().size();
  for (std::size_t r = start; r < rows.size(); ++r) {
    if (rows[r].size() != arity) {
      throw std::runtime_error("csv: ragged row " + std::to_string(r) + " (expected " +
                               std::to_string(arity) + " cells, got " +
                               std::to_string(rows[r].size()) + ")");
    }
    doc.rows.push_back(std::move(rows[r]));
  }
  return doc;
}

CsvDocument load_csv(const std::filesystem::path& path, bool has_header) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("csv: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(buffer.str(), has_header);
}

std::string csv_escape(std::string_view cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

void CsvWriter::header(const std::vector<std::string>& names) { write_cells(names); }

void CsvWriter::row(const std::vector<std::string>& cells) { write_cells(cells); }

void CsvWriter::row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(format_double(v, precision));
  write_cells(formatted);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(cells[i]);
  }
  *out_ << '\n';
}

}  // namespace carbonedge::util
