// Filesystem primitives for the persistent artifact store (store/):
// whole-file reads (mmap when available), atomic write-then-rename
// publication, and advisory cross-process file locks.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace carbonedge::util {

/// Read a whole file into memory (binary). Throws std::runtime_error if the
/// file cannot be opened or read.
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

/// Publish `bytes` at `path` atomically: write a uniquely-named sibling temp
/// file ("<name>.tmp-<pid>-<seq>") and rename it into place. Readers never
/// observe a partially-written file; concurrent writers of the same path
/// race benignly (last rename wins, both contents are complete). Throws
/// std::runtime_error on I/O failure.
void write_file_atomic(const std::filesystem::path& path, std::string_view bytes);

/// True if `name` matches the temp-file pattern write_file_atomic uses
/// (leftovers of a crashed writer; the store's gc sweeps them).
[[nodiscard]] bool is_atomic_temp_name(std::string_view name) noexcept;

/// Read-only view of a file's bytes: memory-mapped where the platform
/// supports it, buffered read otherwise. The view stays valid for the
/// object's lifetime.
class FileView {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  explicit FileView(const std::filesystem::path& path);
  ~FileView();
  FileView(FileView&& other) noexcept;
  FileView& operator=(FileView&&) = delete;
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;

  [[nodiscard]] std::string_view bytes() const noexcept { return {data_, size_}; }
  [[nodiscard]] bool mapped() const noexcept { return map_ != nullptr; }

 private:
  std::string buffer_;          // backing storage on the buffered-read path
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_ = nullptr;         // mmap base (non-null only when mapped)
};

/// RAII advisory exclusive lock on a lock file (created if absent). Blocks
/// until acquired; released on destruction. Advisory only: every
/// cooperating process must take the same lock. On platforms without flock
/// this degrades to a no-op (single-process semantics are unaffected —
/// in-process callers serialize through their own mutexes).
class FileLock {
 public:
  enum class Mode {
    kBlocking,  // wait for the holder (the default)
    kTry,       // LOCK_NB: held() is false if someone else holds it
  };

  explicit FileLock(const std::filesystem::path& path, Mode mode = Mode::kBlocking);
  ~FileLock();
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&&) = delete;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace carbonedge::util
