// Process-wide worker-budget arbiter for nested parallelism.
//
// CarbonEdge now parallelizes at three nested layers: ScenarioRunner fans
// out across grid cells, EdgeSimulation shards per-site work inside one
// cell, and solve_sharded dispatches placement components. Each layer sized
// for the whole machine would oversubscribe multiplicatively (cells x sim
// shards x solver shards); each layer sized for the worst case would leave
// cores idle whenever the grid is narrower than the machine. Instead every
// layer leases lanes from one ParallelismBudget: the sweep takes what its
// cell count can use, and whatever is left flows down to the simulations
// and solvers it spawns (first come, first served).
//
// The budget arbitrates *throughput only*. Every parallel loop in the
// project computes per-item values into disjoint slots and reduces them in
// a fixed order, so results are byte-identical no matter how many lanes a
// lease happens to grant — CARBONEDGE_THREADS=1 and =64 produce the same
// tables (asserted by tests/test_parallelism.cpp and the determinism-gate
// CI job).
#pragma once

#include <atomic>
#include <cstddef>

namespace carbonedge::util {

/// Parses a CARBONEDGE_THREADS-style value: a positive integer wins,
/// anything else (null, empty, zero, garbage, trailing junk) falls back to
/// hardware concurrency (at least 1).
[[nodiscard]] std::size_t parse_thread_count(const char* value) noexcept;

/// Total worker lanes the process should use: parse_thread_count applied to
/// the CARBONEDGE_THREADS environment variable, read once per process via
/// the util::env shim.
[[nodiscard]] std::size_t configured_thread_count();

class ParallelismBudget {
 public:
  /// A budget of `total_lanes` concurrent execution lanes (>= 1). One lane
  /// is implicitly owned by whichever thread enters a parallel layer first,
  /// so `total_lanes - 1` extra lanes are grantable.
  explicit ParallelismBudget(std::size_t total_lanes);

  ParallelismBudget(const ParallelismBudget&) = delete;
  ParallelismBudget& operator=(const ParallelismBudget&) = delete;

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Extra lanes a call to acquire() could be granted right now.
  [[nodiscard]] std::size_t available() const noexcept {
    return extra_available_.load(std::memory_order_relaxed);
  }
  /// High-water mark of concurrent lanes: the root caller's own lane plus
  /// every extra lane out on lease at the same moment. A nested lease's
  /// lanes() == 1 adds nothing — it runs on a lane its parent already
  /// holds. Never exceeds total() (the invariant the nested-load test
  /// asserts), assuming one top-level entry thread.
  [[nodiscard]] std::size_t peak_lanes() const noexcept {
    return peak_lanes_.load(std::memory_order_relaxed);
  }

  /// RAII grant of execution lanes. lanes() >= 1 always: the caller's own
  /// thread is a lane no budget can refuse, so a depleted budget degrades a
  /// layer to serial inline execution rather than blocking it.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept : budget_(other.budget_), extra_(other.extra_) {
      other.budget_ = nullptr;
      other.extra_ = 0;
    }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { release(); }

    /// Concurrent lanes this lease permits (1 = run serial inline).
    [[nodiscard]] std::size_t lanes() const noexcept { return 1 + extra_; }

   private:
    friend class ParallelismBudget;
    Lease(ParallelismBudget* budget, std::size_t extra) : budget_(budget), extra_(extra) {}
    void release() noexcept;

    ParallelismBudget* budget_ = nullptr;
    std::size_t extra_ = 0;
  };

  /// Lease up to `want_lanes` concurrent lanes: the caller's own lane plus
  /// as many of the remaining `want_lanes - 1` as are available. Never
  /// blocks and never grants zero — exhaustion means lanes() == 1.
  [[nodiscard]] Lease acquire(std::size_t want_lanes) noexcept;

 private:
  void release_extra(std::size_t extra) noexcept;

  std::size_t total_ = 1;
  std::atomic<std::size_t> extra_available_{0};
  std::atomic<std::size_t> peak_lanes_{0};
};

/// The process-wide budget every layer leases from by default; sized by
/// configured_thread_count() on first use.
[[nodiscard]] ParallelismBudget& global_budget();

}  // namespace carbonedge::util
