#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace carbonedge::util {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double mu = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) noexcept { return std::sqrt(variance(values)); }

double min_value(std::span<const double> values) noexcept {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) noexcept {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

double sum(std::span<const double> values) noexcept {
  double total = 0.0;
  for (const double v : values) total += v;
  return total;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double minmax_normalize(double value, double lo, double hi) noexcept {
  if (hi <= lo) return 0.0;
  return std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = min_value(values);
  s.max = max_value(values);
  s.p25 = percentile(values, 25.0);
  s.median = percentile(values, 50.0);
  s.p75 = percentile(values, 75.0);
  s.p95 = percentile(values, 95.0);
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted_.size());
  std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  index = std::min(index, sorted_.size() - 1);
  return sorted_[index];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace carbonedge::util
