// Descriptive statistics and empirical distributions used throughout the
// evaluation harness (CDFs of carbon savings, latency percentiles, min-max
// normalization for the multi-objective policy, ...).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace carbonedge::util {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Population variance; 0 for spans shorter than 2.
[[nodiscard]] double variance(std::span<const double> values) noexcept;

/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const double> values) noexcept;

/// Minimum / maximum; 0 for empty spans.
[[nodiscard]] double min_value(std::span<const double> values) noexcept;
[[nodiscard]] double max_value(std::span<const double> values) noexcept;

/// Sum of all values.
[[nodiscard]] double sum(std::span<const double> values) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. 0 for empty spans.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> values);

/// Min-max normalization of `value` into [0,1] given observed bounds.
/// Degenerate ranges (hi <= lo) normalize to 0.
[[nodiscard]] double minmax_normalize(double value, double lo, double hi) noexcept;

/// Summary of a sample, convenient for bench output rows.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

/// Empirical cumulative distribution function over a sample.
///
/// Built once from a sample; queries are O(log n). Used for the Figure 5
/// radius-saving CDFs and the Figure 11 load-distribution CDFs.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> sample);

  /// Fraction of sample values <= x, in [0, 1].
  [[nodiscard]] double at(double x) const noexcept;

  /// Inverse CDF: smallest sample value v with CDF(v) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted_sample() const noexcept { return sorted_; }

  /// Evaluate the CDF at `points` evenly spaced x positions spanning the
  /// sample range; returns (x, F(x)) pairs — handy for printing curves.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Streaming accumulator (Welford) for single-pass mean/variance with
/// min/max tracking; used by telemetry counters.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept { return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0; }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace carbonedge::util
