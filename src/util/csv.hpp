// Minimal CSV reading/writing used by the trace replayers and the bench
// harness (every bench can dump its rows as CSV next to the ASCII table).
// RFC-4180-style quoting is supported on both paths.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace carbonedge::util {

/// A parsed CSV document: a header row plus data rows of equal arity.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column, or npos if absent.
  [[nodiscard]] std::size_t column(std::string_view name) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Parse CSV text. Throws std::runtime_error on ragged rows or unterminated
/// quotes. An empty input yields an empty document.
[[nodiscard]] CsvDocument parse_csv(std::string_view text, bool has_header = true);

/// Load and parse a CSV file. Throws std::runtime_error if unreadable.
[[nodiscard]] CsvDocument load_csv(const std::filesystem::path& path, bool has_header = true);

/// Incremental CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& cells);

  /// Convenience: format doubles with fixed precision.
  void row_numeric(const std::vector<double>& cells, int precision = 6);

 private:
  void write_cells(const std::vector<std::string>& cells);
  std::ostream* out_;
};

/// Quote a cell if it contains separators, quotes, or newlines.
[[nodiscard]] std::string csv_escape(std::string_view cell);

/// Format a double with fixed precision, trimming trailing zeros.
[[nodiscard]] std::string format_double(double value, int precision = 6);

}  // namespace carbonedge::util
