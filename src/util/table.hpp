// ASCII table rendering for the benchmark harness. Every bench prints the
// rows/series the paper's tables and figures report; this keeps the output
// aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace carbonedge::util {

/// Column alignment for rendered tables.
enum class Align { kLeft, kRight };

/// A simple column-aligned ASCII table.
///
///   Table t({"Zone", "gCO2/kWh"});
///   t.add_row({"Miami", "112.4"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest are numbers.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 2);

  /// Insert a horizontal separator after the current last row.
  void add_separator();

  /// Append one column filled with `value` in every existing row (rows
  /// added later size themselves to the widened header).
  void append_column(std::string header, const std::string& value);

  void set_align(std::size_t column, Align align);
  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  /// Render the same content as CSV (used with --csv bench flag).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices after which to draw a rule
  std::vector<Align> aligns_;
};

/// Format helper: "12.3%" style percentage.
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);

/// Format helper: fixed-precision number.
[[nodiscard]] std::string format_fixed(double value, int precision = 2);

/// Tiny horizontal bar (unicode-free) for inline sparkline-ish output.
[[nodiscard]] std::string format_bar(double value, double max_value, int width = 24);

}  // namespace carbonedge::util
