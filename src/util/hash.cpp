#include "util/hash.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace carbonedge::util {

namespace {

constexpr std::uint64_t kLane1Mul = 0x9e3779b97f4a7c15ULL;  // golden ratio
constexpr std::uint64_t kLane2Mul = 0xc2b2ae3d27d4eb4fULL;  // xxhash prime 2

// splitmix64 finalizer: full-avalanche 64-bit mix.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

void Fingerprint::absorb(std::uint64_t word) noexcept {
  lo_ = mix64(lo_ ^ (word * kLane1Mul));
  hi_ = mix64(hi_ ^ (word * kLane2Mul)) + kLane1Mul;
}

Fingerprint& Fingerprint::mix(std::uint64_t value) noexcept {
  absorb(value);
  return *this;
}

Fingerprint& Fingerprint::mix(double value) noexcept {
  if (value == 0.0) value = 0.0;  // collapse -0.0
  if (std::isnan(value)) value = std::numeric_limits<double>::quiet_NaN();
  return mix(std::bit_cast<std::uint64_t>(value));
}

Fingerprint& Fingerprint::mix(std::string_view text) noexcept {
  absorb(text.size());
  std::size_t offset = 0;
  while (offset < text.size()) {
    std::uint64_t word = 0;
    const std::size_t chunk = std::min<std::size_t>(8, text.size() - offset);
    std::memcpy(&word, text.data() + offset, chunk);  // zero-padded final word
    absorb(word);
    offset += chunk;
  }
  return *this;
}

Digest128 Fingerprint::digest() const noexcept {
  // Final cross-mix so the lanes cannot be independently extended.
  return Digest128{mix64(hi_ ^ (lo_ * kLane2Mul)), mix64(lo_ ^ (hi_ * kLane1Mul))};
}

std::string Digest128::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const auto byte = static_cast<unsigned>((word >> shift) & 0xff);
    out[2 * static_cast<std::size_t>(i)] = kHex[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = kHex[byte & 0xf];
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace carbonedge::util
