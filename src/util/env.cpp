#include "util/env.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace carbonedge::util::env {

namespace {

struct Cache {
  std::mutex mutex;
  std::map<std::string, std::optional<std::string>, std::less<>> values;
};

Cache& cache() {
  static Cache instance;
  return instance;
}

std::atomic<std::size_t>& read_counter() {
  static std::atomic<std::size_t> count{0};
  return count;
}

}  // namespace

std::optional<std::string> get(std::string_view name) {
  Cache& c = cache();
  const std::scoped_lock lock(c.mutex);
  const auto it = c.values.find(name);
  if (it != c.values.end()) return it->second;
  // The one sanctioned host-environment read (allowlisted for lint rule D5);
  // serialized by the cache mutex, and never concurrent with setenv — the
  // project itself only calls setenv in tests, before the variable's first
  // lookup. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* raw = std::getenv(std::string(name).c_str());
  read_counter().fetch_add(1, std::memory_order_relaxed);
  std::optional<std::string> value;
  if (raw != nullptr) value = std::string(raw);
  c.values.emplace(std::string(name), value);
  return value;
}

std::string get_or(std::string_view name, std::string_view fallback) {
  std::optional<std::string> value = get(name);
  return value.has_value() ? *std::move(value) : std::string(fallback);
}

std::size_t host_reads() noexcept {
  return read_counter().load(std::memory_order_relaxed);
}

}  // namespace carbonedge::util::env
