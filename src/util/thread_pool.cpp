#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/parallelism.hpp"

namespace carbonedge::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  // lint: nondeterminism-ok(membership test for nested-submit deadlock avoidance; ids are compared, never ordered or emitted)
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& worker : workers_) {
    if (worker.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body, std::size_t chunk) {
  if (begin >= end) return;
  if (pool.on_worker_thread()) {
    // Nested use from inside the same pool: blocking on futures here would
    // deadlock once all workers are occupied by outer tasks. Degrade to
    // inline execution — same results, no added parallelism.
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t total = end - begin;
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, total / (pool.size() * 4));
  }
  std::vector<std::future<void>> futures;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t start = begin; start < end; start += chunk) {
    const std::size_t stop = std::min(end, start + chunk);
    futures.push_back(pool.submit([&, start, stop] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        for (std::size_t i = start; i < stop; ++i) body(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }));
  }
  for (auto& future : futures) future.wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  // Sized by the process worker budget (CARBONEDGE_THREADS), not raw
  // hardware concurrency, so a serial run really is serial end to end.
  static ThreadPool pool(configured_thread_count());
  return pool;
}

}  // namespace carbonedge::util
