// Fixed-window aggregation and EMA-threshold triggers for the serving loop.
//
// The xenoeye idiom: a high-rate feed is aggregated into fixed time windows
// (counts, tails, totals per window), exponential moving averages smooth
// the per-window signals, and threshold crossings — with hysteresis, so a
// noisy signal hovering at the line cannot fire a re-trigger storm — drive
// actions. Here the action is event-driven re-optimization through the
// placement service, replacing the batch engine's fixed calendar cadence.
#pragma once

#include <cstdint>
#include <vector>

namespace carbonedge::serve {

/// Telemetry of one closed aggregation window (window_epochs engine epochs).
struct WindowStats {
  std::uint32_t window = 0;        // index, 0-based
  double start_hours = 0.0;
  double end_hours = 0.0;
  std::uint32_t epochs = 0;        // engine epochs folded into this window

  std::uint64_t arrivals = 0;      // arrival events ingested
  std::uint32_t apps_placed = 0;
  std::uint32_t apps_rejected = 0;
  std::uint32_t migrations = 0;
  std::uint32_t failures = 0;

  double energy_wh = 0.0;          // sites + migration, summed over epochs
  double carbon_g = 0.0;
  double rps_total = 0.0;          // sum of per-epoch hosted rps
  double mean_rtt_ms = 0.0;        // request-weighted within the window
  double p50_response_ms = 0.0;    // window response-time distribution
  double p99_response_ms = 0.0;

  double ema_intensity_g_kwh = 0.0;  // EMA of rps-weighted carbon intensity
  double ema_response_ms = 0.0;      // EMA of window mean response time
  double ema_load_rps = 0.0;         // EMA of per-epoch hosted rps

  bool reopt_fired = false;        // EMA trigger crossed at this window close
  std::uint64_t ingest_dropped = 0;  // cumulative ingest drops at close
  std::uint64_t export_dropped = 0;  // cumulative export drops at close
};

/// Exponential moving average: value' = alpha * x + (1 - alpha) * value,
/// seeded with the first observation.
class Ema {
 public:
  explicit Ema(double alpha);

  double update(double x) noexcept;
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Hysteresis threshold: fires exactly once when the signal crosses above
/// `fire`, then stays disarmed until the signal falls below `rearm`
/// (rearm <= fire). A sustained excursion above the line is one fire, not
/// one per window — the no-trigger-storm guarantee the burst tests assert.
class ThresholdTrigger {
 public:
  ThresholdTrigger(double fire, double rearm);

  /// Feed one observation; true exactly when an armed crossing happened.
  bool update(double value) noexcept;

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] std::uint64_t fires() const noexcept { return fires_; }

 private:
  double fire_;
  double rearm_;
  bool armed_ = true;
  std::uint64_t fires_ = 0;
};

}  // namespace carbonedge::serve
