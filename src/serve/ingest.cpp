#include "serve/ingest.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace carbonedge::serve {

namespace {

// Registry mirrors of IngestStats (dual-write; deterministic view — what
// the queue did to a given event stream does not depend on lane counts).
struct IngestMetrics {
  obs::Counter& accepted;
  obs::Counter& dropped_overflow;
  obs::Counter& dropped_stale;
  obs::Counter& clamped_stale;
};

IngestMetrics& ingest_metrics() {
  obs::Registry& registry = obs::Registry::global();
  static IngestMetrics metrics{
      registry.counter("serve.ingest.accepted", "events enqueued",
                       obs::View::kDeterministic),
      registry.counter("serve.ingest.dropped_overflow", "events dropped on a full queue",
                       obs::View::kDeterministic),
      registry.counter("serve.ingest.dropped_stale",
                       "events behind the watermark dropped (policy kDrop)",
                       obs::View::kDeterministic),
      registry.counter("serve.ingest.clamped_stale",
                       "events behind the watermark clamped forward (policy kClamp)",
                       obs::View::kDeterministic)};
  return metrics;
}

}  // namespace

IngestQueue::IngestQueue(std::size_t capacity, OutOfOrderPolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity_ == 0) throw std::invalid_argument("ingest queue: zero capacity");
}

bool IngestQueue::push(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (event.time_hours < watermark_) {
    if (policy_ == OutOfOrderPolicy::kDrop) {
      ++stats_.dropped_stale;
      ingest_metrics().dropped_stale.add();
      return false;
    }
    event.time_hours = watermark_;
    ++stats_.clamped_stale;
    ingest_metrics().clamped_stale.add();
  }
  if (events_.size() >= capacity_) {
    ++stats_.dropped_overflow;
    ingest_metrics().dropped_overflow.add();
    return false;
  }
  events_.push_back(std::move(event));
  ++stats_.accepted;
  ingest_metrics().accepted.add();
  return true;
}

std::optional<Event> IngestQueue::pop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.empty()) return std::nullopt;
  Event event = std::move(events_.front());
  events_.pop_front();
  return event;
}

void IngestQueue::set_watermark(double hours) {
  const std::lock_guard<std::mutex> lock(mutex_);
  watermark_ = hours;
}

std::size_t IngestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

IngestStats IngestQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace carbonedge::serve
