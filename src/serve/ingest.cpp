#include "serve/ingest.hpp"

#include <stdexcept>

namespace carbonedge::serve {

IngestQueue::IngestQueue(std::size_t capacity, OutOfOrderPolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity_ == 0) throw std::invalid_argument("ingest queue: zero capacity");
}

bool IngestQueue::push(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (event.time_hours < watermark_) {
    if (policy_ == OutOfOrderPolicy::kDrop) {
      ++stats_.dropped_stale;
      return false;
    }
    event.time_hours = watermark_;
    ++stats_.clamped_stale;
  }
  if (events_.size() >= capacity_) {
    ++stats_.dropped_overflow;
    return false;
  }
  events_.push_back(std::move(event));
  ++stats_.accepted;
  return true;
}

std::optional<Event> IngestQueue::pop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.empty()) return std::nullopt;
  Event event = std::move(events_.front());
  events_.pop_front();
  return event;
}

void IngestQueue::set_watermark(double hours) {
  const std::lock_guard<std::mutex> lock(mutex_);
  watermark_ = hours;
}

std::size_t IngestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

IngestStats IngestQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace carbonedge::serve
