// Streaming serving mode — the event vocabulary.
//
// The serving loop (serve/event_loop.hpp) consumes a time-ordered stream of
// events instead of a fixed batch horizon: application arrivals (offload
// requests entering the system) and server failures (crash reports from the
// fleet). Event time is continuous simulated hours; the loop buckets events
// into the engine epoch containing their timestamp.
#pragma once

#include <cstdint>

#include "core/simulation.hpp"
#include "sim/workload.hpp"

namespace carbonedge::serve {

enum class EventType : std::uint8_t {
  kArrival,  // an application requesting placement
  kFailure,  // a server crash reported by the fleet
};

struct Event {
  double time_hours = 0.0;
  EventType type = EventType::kArrival;
  sim::Application app;               // valid when type == kArrival
  core::ServerFailureEvent failure;   // valid when type == kFailure
};

[[nodiscard]] inline Event make_arrival(double time_hours, sim::Application app) {
  Event event;
  event.time_hours = time_hours;
  event.type = EventType::kArrival;
  event.app = app;
  return event;
}

[[nodiscard]] inline Event make_failure(double time_hours, std::size_t site,
                                        std::uint32_t server_id) {
  Event event;
  event.time_hours = time_hours;
  event.type = EventType::kFailure;
  event.failure = core::ServerFailureEvent{site, server_id};
  return event;
}

}  // namespace carbonedge::serve
