#include "serve/export.hpp"

#include <algorithm>
#include <ostream>

#include "util/csv.hpp"

namespace carbonedge::serve {

bool OstreamSink::write(std::string_view line) {
  if (!out_->good()) return false;
  (*out_) << line;
  out_->flush();
  return out_->good();
}

WindowCsvExporter::WindowCsvExporter(ByteSink& sink, std::size_t max_buffered)
    : sink_(&sink), max_buffered_(max_buffered) {}

std::string WindowCsvExporter::header_line() {
  return "window,start_hours,end_hours,epochs,arrivals,placed,rejected,migrations,"
         "failures,energy_wh,carbon_g,rps_total,mean_rtt_ms,p50_response_ms,"
         "p99_response_ms,ema_intensity_g_kwh,ema_response_ms,ema_load_rps,"
         "reopt_fired,ingest_dropped,export_dropped\n";
}

std::string WindowCsvExporter::format_row(const WindowStats& w) {
  std::string row;
  row += std::to_string(w.window);
  row += ',' + util::format_double(w.start_hours, 3);
  row += ',' + util::format_double(w.end_hours, 3);
  row += ',' + std::to_string(w.epochs);
  row += ',' + std::to_string(w.arrivals);
  row += ',' + std::to_string(w.apps_placed);
  row += ',' + std::to_string(w.apps_rejected);
  row += ',' + std::to_string(w.migrations);
  row += ',' + std::to_string(w.failures);
  row += ',' + util::format_double(w.energy_wh, 4);
  row += ',' + util::format_double(w.carbon_g, 4);
  row += ',' + util::format_double(w.rps_total, 3);
  row += ',' + util::format_double(w.mean_rtt_ms, 4);
  row += ',' + util::format_double(w.p50_response_ms, 4);
  row += ',' + util::format_double(w.p99_response_ms, 4);
  row += ',' + util::format_double(w.ema_intensity_g_kwh, 4);
  row += ',' + util::format_double(w.ema_response_ms, 4);
  row += ',' + util::format_double(w.ema_load_rps, 3);
  row += ',';
  row += w.reopt_fired ? '1' : '0';
  row += ',' + std::to_string(w.ingest_dropped);
  row += ',' + std::to_string(w.export_dropped);
  row += '\n';
  return row;
}

void WindowCsvExporter::offer(std::string line) {
  // Deliver in order: anything already buffered goes first. One refusal
  // stops the drain — the sink said "stalled", so the rest stays queued.
  while (!buffered_.empty()) {
    if (!sink_->write(buffered_.front())) break;
    ++stats_.lines_written;
    buffered_.pop_front();
  }
  if (buffered_.empty() && sink_->write(line)) {
    ++stats_.lines_written;
  } else if (buffered_.size() < max_buffered_) {
    buffered_.push_back(std::move(line));
    stats_.buffered_peak = std::max<std::uint64_t>(stats_.buffered_peak, buffered_.size());
  } else {
    ++stats_.lines_dropped;
  }
  stats_.currently_buffered = buffered_.size();
}

void WindowCsvExporter::export_window(const WindowStats& window) {
  if (header_pending_) {
    header_pending_ = false;
    offer(header_line());
  }
  offer(format_row(window));
}

void WindowCsvExporter::export_line(std::string line) { offer(std::move(line)); }

void WindowCsvExporter::flush() {
  while (!buffered_.empty()) {
    if (!sink_->write(buffered_.front())) break;
    ++stats_.lines_written;
    buffered_.pop_front();
  }
  stats_.currently_buffered = buffered_.size();
}

}  // namespace carbonedge::serve
