#include "serve/window.hpp"

#include <stdexcept>

namespace carbonedge::serve {

Ema::Ema(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("ema: alpha must be in (0, 1]");
  }
}

double Ema::update(double x) noexcept {
  value_ = primed_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
  primed_ = true;
  return value_;
}

ThresholdTrigger::ThresholdTrigger(double fire, double rearm) : fire_(fire), rearm_(rearm) {
  if (rearm > fire) {
    throw std::invalid_argument("threshold trigger: rearm must not exceed fire");
  }
}

bool ThresholdTrigger::update(double value) noexcept {
  if (armed_) {
    if (value > fire_) {
      armed_ = false;
      ++fires_;
      return true;
    }
    return false;
  }
  if (value < rearm_) armed_ = true;
  return false;
}

}  // namespace carbonedge::serve
