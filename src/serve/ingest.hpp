// Bounded, non-blocking event ingest with explicit backpressure counters.
//
// The serving loop must never let a slow consumer stall its producers (the
// xenoeye worker-over-packetized-feed rule): push() takes a lock only long
// enough to enqueue or refuse, and a full queue *drops* the event and
// counts it instead of blocking. Late events (older than the consumer's
// watermark — the open window's start) are handled per policy: dropped, or
// clamped forward into the open window; both outcomes are counted so the
// telemetry always shows what the ingest layer did.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/event.hpp"

namespace carbonedge::serve {

enum class OutOfOrderPolicy : std::uint8_t {
  kDrop,   // reject events older than the watermark
  kClamp,  // pull them forward into the open window
};

struct IngestStats {
  std::uint64_t accepted = 0;
  std::uint64_t dropped_overflow = 0;  // queue was full
  std::uint64_t dropped_stale = 0;     // behind the watermark, policy kDrop
  std::uint64_t clamped_stale = 0;     // behind the watermark, policy kClamp
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_overflow + dropped_stale;
  }
};

class IngestQueue {
 public:
  explicit IngestQueue(std::size_t capacity,
                       OutOfOrderPolicy policy = OutOfOrderPolicy::kClamp);

  /// Enqueue one event. Returns false — without ever blocking — when the
  /// event was dropped (queue full, or stale under kDrop); every outcome
  /// is counted in stats(). Thread-safe against a concurrent consumer.
  bool push(Event event);

  /// Dequeue the oldest event, or nullopt when empty. Never blocks.
  [[nodiscard]] std::optional<Event> pop();

  /// Advance the consumer's time horizon: events stamped before this are
  /// out of order and subject to the policy.
  void set_watermark(double hours);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] IngestStats stats() const;

 private:
  const std::size_t capacity_;
  const OutOfOrderPolicy policy_;
  mutable std::mutex mutex_;
  std::deque<Event> events_;
  double watermark_ = 0.0;
  IngestStats stats_;
};

}  // namespace carbonedge::serve
