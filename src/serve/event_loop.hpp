// The streaming serving loop.
//
// A long-running driver over core::SimulationEngine (the same epoch state
// machine the batch engine runs — that shared core is what makes the
// replay oracle exact): events are pulled from an EventSource through a
// bounded IngestQueue, bucketed into the engine epoch containing their
// timestamp, and stepped through placement. Epochs aggregate into fixed
// windows of `window_epochs`; each window close updates exponential moving
// averages over carbon intensity, response time, and hosted load, feeds
// the hysteresis triggers, and (best-effort) exports one CSV telemetry
// row. When the EMA re-optimization config is enabled, trigger crossings
// — not the batch engine's calendar cadence — decide when live
// applications are re-placed: the crossing observed at a window close
// re-optimizes at the first epoch of the next window.
#pragma once

#include <cstdint>
#include <vector>

#include "core/simulation.hpp"
#include "serve/event_source.hpp"
#include "serve/export.hpp"
#include "serve/ingest.hpp"
#include "serve/window.hpp"

namespace carbonedge::serve {

/// One EMA-threshold pair; disabled triggers never fire.
struct EmaTrigger {
  bool enabled = false;
  double fire = 0.0;   // crossing above fires (once, armed)
  double rearm = 0.0;  // falling below re-arms; must be <= fire
};

struct EmaReoptConfig {
  /// When true, event-driven triggers fully replace the batch cadence
  /// (reoptimize_monthly / reoptimize_every are ignored): an epoch
  /// re-optimizes iff a trigger fired at the previous window close.
  bool enabled = false;
  double alpha = 0.25;       // EMA smoothing for all three signals
  EmaTrigger intensity;      // rps-weighted carbon intensity, g/kWh
  EmaTrigger response_ms;    // window mean response time
  EmaTrigger load_rps;       // mean per-epoch hosted rps
};

struct ServeConfig {
  core::SimulationConfig sim;      // horizon, workload knobs, policy, solver
  std::uint32_t window_epochs = 1; // engine epochs per aggregation window
  std::size_t queue_capacity = 65536;
  OutOfOrderPolicy out_of_order = OutOfOrderPolicy::kClamp;
  EmaReoptConfig ema_reopt;
  /// Periodic metrics flush: after each window's CSV row, export one
  /// `#metrics,<window>,<json>` comment line holding the registry's
  /// deterministic view as of that window close. Deterministic-view-only
  /// by construction, so the rows are byte-identical across thread counts
  /// and safe inside the determinism gate's diffed output.
  bool metrics_rows = false;
};

struct ServeResult {
  /// The engine's run result — on an epoch-aligned replay of the same
  /// scenario, bit-identical to EdgeSimulation::run (the differential
  /// oracle tests/test_serve_replay.cpp enforces).
  core::SimulationResult sim;
  std::vector<WindowStats> windows;
  IngestStats ingest;
  ExportStats exports;             // zero-valued when no exporter was given
  std::uint64_t reopt_fires = 0;   // EMA trigger crossings
};

class EventLoop {
 public:
  /// Serve against `simulation`'s cluster/carbon/latency state. The
  /// EdgeSimulation must outlive the loop; its pristine cluster is copied
  /// per run() like any batch run.
  EventLoop(const core::EdgeSimulation& simulation, ServeConfig config);

  /// Drain `source` to completion at maximum speed (replay mode doubles as
  /// the throughput bench). `exporter`, when given, receives one CSV row
  /// per closed window, best-effort.
  [[nodiscard]] ServeResult run(EventSource& source, WindowCsvExporter* exporter = nullptr);

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

 private:
  const core::EdgeSimulation* simulation_;
  ServeConfig config_;
};

}  // namespace carbonedge::serve
