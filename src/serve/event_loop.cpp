#include "serve/event_loop.hpp"

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/export.hpp"
#include "obs/span.hpp"
#include "util/histogram.hpp"

namespace carbonedge::serve {
namespace {

std::optional<ThresholdTrigger> make_trigger(const EmaTrigger& trigger) {
  if (!trigger.enabled) return std::nullopt;
  return ThresholdTrigger(trigger.fire, trigger.rearm);
}

obs::Phase& ingest_phase() {
  static obs::Phase phase("serve.ingest");
  return phase;
}

obs::Phase& window_flush_phase() {
  static obs::Phase phase("serve.window_flush");
  return phase;
}

}  // namespace

EventLoop::EventLoop(const core::EdgeSimulation& simulation, ServeConfig config)
    : simulation_(&simulation), config_(std::move(config)) {
  if (config_.sim.epochs == 0) {
    throw std::invalid_argument("serve: config.sim.epochs must be positive");
  }
  if (config_.window_epochs == 0) {
    throw std::invalid_argument("serve: window_epochs must be positive");
  }
  if (!(config_.sim.epoch_hours > 0.0)) {
    throw std::invalid_argument("serve: epoch_hours must be positive");
  }
}

ServeResult EventLoop::run(EventSource& source, WindowCsvExporter* exporter) {
  core::SimulationEngine engine(simulation_->pristine_cluster(), simulation_->carbon_service(),
                                simulation_->latency(), config_.sim);
  // Secondary response histogram, reset at every window close; the engine's
  // run-level histogram (and with it the replay oracle) is untouched.
  util::Histogram window_hist{0.0, 500.0, 1000};
  engine.telemetry().set_window_sink(&window_hist);

  IngestQueue queue(config_.queue_capacity, config_.out_of_order);
  Ema ema_intensity(config_.ema_reopt.alpha);
  Ema ema_response(config_.ema_reopt.alpha);
  Ema ema_load(config_.ema_reopt.alpha);
  auto trigger_intensity = make_trigger(config_.ema_reopt.intensity);
  auto trigger_response = make_trigger(config_.ema_reopt.response_ms);
  auto trigger_load = make_trigger(config_.ema_reopt.load_rps);

  ServeResult result;
  const double epoch_hours = config_.sim.epoch_hours;
  const std::uint32_t epochs = config_.sim.epochs;

  std::optional<Event> carry;  // first event at or beyond the epoch boundary
  bool source_done = false;
  bool migrate_next = false;  // an EMA trigger fired at the last window close

  std::uint32_t window_index = 0;
  std::uint32_t window_start_epoch = 0;
  std::uint64_t window_arrivals = 0;

  std::vector<sim::Application> arrivals;
  std::vector<core::ServerFailureEvent> failures;

  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    const double epoch_start = epoch * epoch_hours;
    const double epoch_end = (epoch + 1) * epoch_hours;

    // Anything older than the epoch being stepped is late by definition.
    queue.set_watermark(epoch_start);

    // Pump the source up to the epoch boundary. The source is time-ordered,
    // so the first event at or past the boundary ends the epoch's intake
    // and carries over. push() never blocks: overflow and stale drops are
    // counted in the queue's stats, the producer always makes progress.
    {
      const obs::Span span(ingest_phase());
      while (!source_done) {
        if (!carry) {
          carry = source.next();
          if (!carry) {
            source_done = true;
            break;
          }
        }
        if (carry->time_hours >= epoch_end) break;
        queue.push(std::move(*carry));
        carry.reset();
      }

      arrivals.clear();
      failures.clear();
      while (auto event = queue.pop()) {
        if (event->type == EventType::kArrival) {
          arrivals.push_back(std::move(event->app));
          ++window_arrivals;
        } else {
          failures.push_back(event->failure);
        }
      }
    }

    core::SimulationEngine::StepOptions options;
    if (config_.ema_reopt.enabled) {
      // Event-driven mode: the trigger decision from the previous window
      // close fully replaces the calendar cadence.
      options.migrate = migrate_next;
      migrate_next = false;
    }
    options.failures = failures;
    engine.step(std::move(arrivals), options);

    const bool window_full = epoch + 1 - window_start_epoch >= config_.window_epochs;
    if (!window_full && epoch + 1 != epochs) continue;

    // Spans the rest of this iteration: the whole window-close fold + export.
    const obs::Span window_span(window_flush_phase());

    // Close the window: fold the engine's per-epoch records in range.
    const auto& records = engine.partial().telemetry.epochs();
    WindowStats w;
    w.window = window_index;
    w.start_hours = window_start_epoch * epoch_hours;
    w.end_hours = (epoch + 1) * epoch_hours;
    w.epochs = epoch + 1 - window_start_epoch;
    w.arrivals = window_arrivals;
    double rtt_weighted_ms = 0.0;
    double response_weighted_ms = 0.0;
    double intensity_weighted = 0.0;
    double intensity_rps = 0.0;
    double intensity_sum = 0.0;
    std::size_t intensity_cells = 0;
    for (std::size_t i = window_start_epoch; i < records.size() && i <= epoch; ++i) {
      const auto& r = records[i];
      w.apps_placed += r.apps_placed;
      w.apps_rejected += r.apps_rejected;
      w.migrations += r.migrations;
      w.failures += r.failures;
      w.energy_wh += r.energy_wh();
      w.carbon_g += r.carbon_g();
      w.rps_total += r.rps_total;
      rtt_weighted_ms += r.rtt_weighted_sum_ms;
      response_weighted_ms += r.response_weighted_sum_ms;
      for (const auto& site : r.sites) {
        intensity_weighted += site.intensity_g_kwh * site.rps_hosted;
        intensity_rps += site.rps_hosted;
        intensity_sum += site.intensity_g_kwh;
        ++intensity_cells;
      }
    }
    if (w.rps_total > 0.0) w.mean_rtt_ms = rtt_weighted_ms / w.rps_total;
    w.p50_response_ms = window_hist.quantile(0.5);
    w.p99_response_ms = window_hist.quantile(0.99);

    const double mean_response_ms =
        w.rps_total > 0.0 ? response_weighted_ms / w.rps_total : 0.0;
    // Each unit of served load contributes its zone's intensity; an idle
    // window falls back to the plain mean over sites.
    const double intensity_g_kwh =
        intensity_rps > 0.0          ? intensity_weighted / intensity_rps
        : intensity_cells > 0        ? intensity_sum / static_cast<double>(intensity_cells)
                                     : 0.0;
    w.ema_intensity_g_kwh = ema_intensity.update(intensity_g_kwh);
    w.ema_response_ms = ema_response.update(mean_response_ms);
    w.ema_load_rps = ema_load.update(w.rps_total / w.epochs);

    // Feed every enabled trigger (no short-circuit: each keeps its own
    // hysteresis state); any armed crossing schedules one re-optimization
    // at the next epoch.
    bool fired = false;
    if (trigger_intensity) fired |= trigger_intensity->update(w.ema_intensity_g_kwh);
    if (trigger_response) fired |= trigger_response->update(w.ema_response_ms);
    if (trigger_load) fired |= trigger_load->update(w.ema_load_rps);
    w.reopt_fired = fired;
    if (fired) {
      migrate_next = true;
      ++result.reopt_fires;
    }

    // Cumulative drop counters as of this close (before this row's own
    // export attempt, which cannot have resolved yet).
    w.ingest_dropped = queue.stats().dropped();
    w.export_dropped = exporter != nullptr ? exporter->stats().lines_dropped : 0;

    if (exporter != nullptr) {
      exporter->export_window(w);
      if (config_.metrics_rows) {
        // Periodic metrics flush into the export stream: deterministic view
        // only, so the row is itself under the byte-identical contract.
        exporter->export_line("#metrics," + std::to_string(w.window) + ',' +
                              obs::deterministic_json() + '\n');
      }
    }
    result.windows.push_back(w);

    window_hist = util::Histogram{0.0, 500.0, 1000};
    ++window_index;
    window_start_epoch = epoch + 1;
    window_arrivals = 0;
  }

  if (exporter != nullptr) {
    exporter->flush();
    result.exports = exporter->stats();
  }
  result.ingest = queue.stats();
  engine.telemetry().set_window_sink(nullptr);
  result.sim = engine.finish();
  return result;
}

}  // namespace carbonedge::serve
