// Event sources for the serving loop: where the request stream comes from.
//
// Three producers cover the workload families the ROADMAP names:
//   - TraceReplaySource adapts the batch engine's workload synthesis into a
//     stream (epoch e's arrivals stamped at the epoch's start time), so a
//     year-long scenario replays through the serving path — the replay
//     differential oracle and the throughput bench both ride on it.
//   - CsvEventSource parses line-delimited CSV from any std::istream (a
//     file, a pipe, stdin) for live feeds, with read_traces_csv-grade
//     hardening: malformed lines are rejected with their line number, or
//     skipped-and-counted under ErrorPolicy::kSkip.
//   - BurstSource synthesizes flash-crowd arrival profiles (a base rate
//     plus step/spike phases) for EMA-trigger and backpressure scenarios.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "serve/event.hpp"
#include "sim/datacenter.hpp"
#include "sim/server.hpp"
#include "sim/workload.hpp"

namespace carbonedge::serve {

/// A pull-based producer of events in non-decreasing time order. next()
/// returns nullopt at end of stream.
class EventSource {
 public:
  virtual ~EventSource() = default;
  [[nodiscard]] virtual std::optional<Event> next() = 0;
};

/// Replays the batch engine's synthesized workload as an event stream: the
/// arrivals WorkloadGenerator would hand epoch e are emitted as individual
/// events stamped at the epoch's start time (e * epoch_hours). Feeding them
/// through an epoch-aligned serving loop therefore reconstructs the exact
/// per-epoch batches of EdgeSimulation::run — the differential oracle's
/// arrival side.
class TraceReplaySource final : public EventSource {
 public:
  TraceReplaySource(const sim::WorkloadParams& params, const sim::EdgeCluster& cluster,
                    std::uint32_t epochs, double epoch_hours);

  [[nodiscard]] std::optional<Event> next() override;

 private:
  sim::WorkloadGenerator generator_;
  std::uint32_t epochs_;
  double epoch_hours_;
  std::uint32_t epoch_ = 0;
  std::vector<sim::Application> pending_;
  std::size_t cursor_ = 0;
};

/// Line-delimited CSV events for live feeds. The first line must be the
/// exact header (see kCsvHeader); each data line is either an arrival or a
/// failure:
///
///   time_hours,type,origin_site,model,rps,latency_limit_rtt_ms,
///       lifetime_epochs,state_mb,max_defer_epochs,site,server
///   0.0,arrival,2,ResNet50,4.5,25,12,400,0,,
///   5.0,failure,,,,,,,,1,0
///
/// Arrival app ids are assigned sequentially by the source. Malformed lines
/// (wrong arity, bad numbers, unknown model/type, negative or non-finite
/// values) throw std::runtime_error naming the 1-based line — or, under
/// ErrorPolicy::kSkip, are dropped and counted so one bad producer cannot
/// kill a long-running loop.
class CsvEventSource final : public EventSource {
 public:
  enum class ErrorPolicy : std::uint8_t { kThrow, kSkip };

  static constexpr const char* kCsvHeader =
      "time_hours,type,origin_site,model,rps,latency_limit_rtt_ms,lifetime_epochs,"
      "state_mb,max_defer_epochs,site,server";

  explicit CsvEventSource(std::istream& in, ErrorPolicy policy = ErrorPolicy::kThrow);

  [[nodiscard]] std::optional<Event> next() override;

  /// Lines dropped under ErrorPolicy::kSkip, and the last rejection.
  [[nodiscard]] std::uint64_t rejected_lines() const noexcept { return rejected_; }
  [[nodiscard]] const std::string& last_error() const noexcept { return last_error_; }

 private:
  [[nodiscard]] std::optional<Event> parse_line(const std::string& line);

  std::istream* in_;
  ErrorPolicy policy_;
  std::size_t line_number_ = 0;  // 1-based, counting the header
  bool header_checked_ = false;
  std::uint64_t rejected_ = 0;
  std::string last_error_;
  sim::AppId next_id_ = 0;
};

/// One phase of elevated arrival volume. A step profile is one long phase;
/// a spike train is several short ones.
struct BurstPhase {
  std::uint32_t start_epoch = 0;
  std::uint32_t length_epochs = 1;
  double arrivals_per_epoch = 0.0;  // added on top of the base rate
};

/// Deterministic flash-crowd arrivals: `base_per_epoch` applications every
/// epoch, plus each active phase's rate. Origins cycle the sites; rps,
/// lifetime, and SLO come from the template app, so the load signal is
/// fully controlled — exactly what the EMA-threshold tests need.
class BurstSource final : public EventSource {
 public:
  BurstSource(std::size_t sites, std::uint32_t epochs, double epoch_hours,
              double base_per_epoch, std::vector<BurstPhase> phases,
              sim::Application app_template);

  [[nodiscard]] std::optional<Event> next() override;

 private:
  std::size_t sites_;
  std::uint32_t epochs_;
  double epoch_hours_;
  double base_per_epoch_;
  std::vector<BurstPhase> phases_;
  sim::Application template_;
  std::uint32_t epoch_ = 0;
  std::uint32_t emitted_this_epoch_ = 0;
  std::uint32_t count_this_epoch_ = 0;
  sim::AppId next_id_ = 0;
  std::size_t next_site_ = 0;
};

}  // namespace carbonedge::serve
