#include "serve/event_source.hpp"

#include <cmath>
#include <istream>
#include <stdexcept>

namespace carbonedge::serve {

// ---------------------------------------------------- TraceReplaySource --

TraceReplaySource::TraceReplaySource(const sim::WorkloadParams& params,
                                     const sim::EdgeCluster& cluster, std::uint32_t epochs,
                                     double epoch_hours)
    : generator_(params, cluster), epochs_(epochs), epoch_hours_(epoch_hours) {}

std::optional<Event> TraceReplaySource::next() {
  while (cursor_ >= pending_.size()) {
    if (epoch_ >= epochs_) return std::nullopt;
    // One generator call per epoch, in epoch order — the identical RNG
    // consumption as the batch driver's generator.arrivals(epoch) loop.
    pending_ = generator_.arrivals(epoch_);
    cursor_ = 0;
    ++epoch_;
  }
  const double time = static_cast<double>(epoch_ - 1) * epoch_hours_;
  return make_arrival(time, pending_[cursor_++]);
}

// ------------------------------------------------------- CsvEventSource --

namespace {

[[noreturn]] void line_fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("serve events line " + std::to_string(line) + ": " + what);
}

std::vector<std::string> split_cells(const std::string& line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      break;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

// Strict full-cell numeric parses, mirroring carbon/trace_io.cpp: trailing
// garbage, empty cells, and non-finite or negative values are rejected with
// the offending line and cell.
double parse_number(const std::string& cell, std::size_t line, const char* column) {
  double value = 0.0;
  try {
    std::size_t consumed = 0;
    value = std::stod(cell, &consumed);
    if (consumed != cell.size()) throw std::invalid_argument("trailing characters");
  } catch (const std::exception&) {
    line_fail(line, std::string("invalid ") + column + " '" + cell + "'");
  }
  if (!std::isfinite(value)) {
    line_fail(line, std::string("non-finite ") + column + " '" + cell + "'");
  }
  if (value < 0.0) line_fail(line, std::string("negative ") + column + " '" + cell + "'");
  return value;
}

std::uint64_t parse_unsigned(const std::string& cell, std::size_t line, const char* column) {
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(cell, &consumed);
    if (consumed != cell.size() || cell.find('-') != std::string::npos) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    line_fail(line, std::string("invalid ") + column + " '" + cell + "'");
  }
}

sim::ModelType parse_model(const std::string& cell, std::size_t line) {
  for (const sim::ModelType model : sim::kAllModels) {
    if (cell == sim::to_string(model)) return model;
  }
  line_fail(line, "unknown model '" + cell + "'");
}

}  // namespace

CsvEventSource::CsvEventSource(std::istream& in, ErrorPolicy policy)
    : in_(&in), policy_(policy) {}

std::optional<Event> CsvEventSource::parse_line(const std::string& line) {
  const std::vector<std::string> cells = split_cells(line);
  if (cells.size() != 11) {
    line_fail(line_number_, "expected 11 cells, got " + std::to_string(cells.size()));
  }
  const double time_hours = parse_number(cells[0], line_number_, "time_hours");
  const std::string& type = cells[1];
  if (type == "arrival") {
    sim::Application app;
    app.id = next_id_++;
    app.origin_site =
        static_cast<std::size_t>(parse_unsigned(cells[2], line_number_, "origin_site"));
    app.model = parse_model(cells[3], line_number_);
    app.rps = parse_number(cells[4], line_number_, "rps");
    if (app.rps <= 0.0) line_fail(line_number_, "rps must be positive");
    app.latency_limit_rtt_ms = parse_number(cells[5], line_number_, "latency_limit_rtt_ms");
    app.remaining_epochs =
        static_cast<std::uint32_t>(parse_unsigned(cells[6], line_number_, "lifetime_epochs"));
    app.state_size_mb = parse_number(cells[7], line_number_, "state_mb");
    app.max_defer_epochs =
        static_cast<std::uint32_t>(parse_unsigned(cells[8], line_number_, "max_defer_epochs"));
    return make_arrival(time_hours, app);
  }
  if (type == "failure") {
    const auto site = static_cast<std::size_t>(parse_unsigned(cells[9], line_number_, "site"));
    const auto server =
        static_cast<std::uint32_t>(parse_unsigned(cells[10], line_number_, "server"));
    return make_failure(time_hours, site, server);
  }
  line_fail(line_number_, "unknown event type '" + type + "'");
}

std::optional<Event> CsvEventSource::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF feeds
    if (!header_checked_) {
      header_checked_ = true;
      if (line != kCsvHeader) line_fail(line_number_, "bad or missing header");
      continue;
    }
    if (line.empty()) continue;
    if (policy_ == ErrorPolicy::kThrow) return parse_line(line);
    try {
      return parse_line(line);
    } catch (const std::runtime_error& error) {
      ++rejected_;
      last_error_ = error.what();
    }
  }
  if (!header_checked_) {
    // An empty feed has no header either; treat as an empty stream.
    header_checked_ = true;
  }
  return std::nullopt;
}

// ---------------------------------------------------------- BurstSource --

BurstSource::BurstSource(std::size_t sites, std::uint32_t epochs, double epoch_hours,
                         double base_per_epoch, std::vector<BurstPhase> phases,
                         sim::Application app_template)
    : sites_(sites),
      epochs_(epochs),
      epoch_hours_(epoch_hours),
      base_per_epoch_(base_per_epoch),
      phases_(std::move(phases)),
      template_(app_template) {
  if (sites_ == 0) throw std::invalid_argument("burst source: no sites");
}

std::optional<Event> BurstSource::next() {
  while (emitted_this_epoch_ >= count_this_epoch_) {
    if (epoch_ >= epochs_) return std::nullopt;
    double rate = base_per_epoch_;
    for (const BurstPhase& phase : phases_) {
      if (epoch_ >= phase.start_epoch && epoch_ < phase.start_epoch + phase.length_epochs) {
        rate += phase.arrivals_per_epoch;
      }
    }
    count_this_epoch_ = static_cast<std::uint32_t>(std::llround(rate));
    emitted_this_epoch_ = 0;
    ++epoch_;
  }
  ++emitted_this_epoch_;
  sim::Application app = template_;
  app.id = next_id_++;
  app.origin_site = next_site_;
  next_site_ = (next_site_ + 1) % sites_;
  const double time = static_cast<double>(epoch_ - 1) * epoch_hours_;
  return make_arrival(time, app);
}

}  // namespace carbonedge::serve
