// Best-effort windowed-telemetry CSV export.
//
// A serving loop's downstream sink (a file on a full disk, a pipe to a
// dead collector, a database outage) must never stall serving or corrupt
// window accounting. The exporter formats each closed window as one CSV
// row and hands it to a ByteSink; refused rows are buffered (bounded) and
// retried in order on the next write, and rows beyond the buffer cap are
// dropped with a counter. Losing export rows loses *visibility*, never
// *accounting* — the WindowStats records themselves are untouched.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "serve/window.hpp"

namespace carbonedge::serve {

/// Destination for export lines. write() returns false when the line was
/// not accepted (downstream stalled); the exporter treats that as
/// backpressure, not an error.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  [[nodiscard]] virtual bool write(std::string_view line) = 0;
};

/// Sink over any std::ostream; a failed stream refuses writes.
class OstreamSink final : public ByteSink {
 public:
  explicit OstreamSink(std::ostream& out) : out_(&out) {}
  [[nodiscard]] bool write(std::string_view line) override;

 private:
  std::ostream* out_;
};

struct ExportStats {
  std::uint64_t lines_written = 0;
  std::uint64_t lines_dropped = 0;    // buffer was full while the sink stalled
  std::uint64_t buffered_peak = 0;    // high-water mark of the stall buffer
  std::uint64_t currently_buffered = 0;
};

class WindowCsvExporter {
 public:
  explicit WindowCsvExporter(ByteSink& sink, std::size_t max_buffered = 1024);

  /// Export one closed window: retry anything buffered first (rows must
  /// arrive downstream in window order), then this row. Never blocks and
  /// never throws on sink refusal.
  void export_window(const WindowStats& window);

  /// Export one out-of-band line verbatim (the serving loop's per-window
  /// `#metrics` snapshot rows — `#`-prefixed so CSV consumers treat them
  /// as comments). Buffered, ordered, and dropped exactly like window
  /// rows; the caller supplies the trailing newline.
  void export_line(std::string line);

  /// Retry buffered rows (e.g. after the downstream recovered).
  void flush();

  [[nodiscard]] const ExportStats& stats() const noexcept { return stats_; }

  /// The CSV schema, one column per WindowStats field (documented in the
  /// README's serving-mode section).
  [[nodiscard]] static std::string header_line();
  [[nodiscard]] static std::string format_row(const WindowStats& window);

 private:
  void offer(std::string line);

  ByteSink* sink_;
  std::size_t max_buffered_;
  bool header_pending_ = true;
  std::deque<std::string> buffered_;
  ExportStats stats_;
};

}  // namespace carbonedge::serve
