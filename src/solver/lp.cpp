#include "solver/lp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace carbonedge::solver {

int LinearProgram::add_variable(double objective, double lower, double upper) {
  if (lower > upper) throw std::invalid_argument("lp: lower bound exceeds upper bound");
  if (!std::isfinite(lower)) throw std::invalid_argument("lp: lower bound must be finite");
  objective_.push_back(objective);
  lower_.push_back(lower);
  upper_.push_back(upper);
  return static_cast<int>(objective_.size()) - 1;
}

void LinearProgram::add_constraint(std::vector<std::pair<int, double>> terms, Sense sense,
                                   double rhs) {
  for (const auto& [var, coeff] : terms) {
    (void)coeff;
    if (var < 0 || static_cast<std::size_t>(var) >= objective_.size()) {
      throw std::out_of_range("lp: constraint references unknown variable");
    }
  }
  rows_.push_back(Row{std::move(terms), sense, rhs});
}

void LinearProgram::set_bounds(int var, double lower, double upper) {
  if (lower > upper) throw std::invalid_argument("lp: lower bound exceeds upper bound");
  lower_.at(var) = lower;
  upper_.at(var) = upper;
}

void LinearProgram::set_objective_coeff(int var, double coeff) { objective_.at(var) = coeff; }

double LinearProgram::evaluate(const std::vector<double>& x) const {
  double total = 0.0;
  for (std::size_t i = 0; i < objective_.size(); ++i) total += objective_[i] * x.at(i);
  return total;
}

bool LinearProgram::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != objective_.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lower_[i] - tol || x[i] > upper_[i] + tol) return false;
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.terms) lhs += coeff * x[var];
    switch (row.sense) {
      case Sense::kLessEqual:
        if (lhs > row.rhs + tol) return false;
        break;
      case Sense::kGreaterEqual:
        if (lhs < row.rhs - tol) return false;
        break;
      case Sense::kEqual:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

const char* to_string(LpStatus status) noexcept {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration_limit";
  }
  return "?";
}

namespace {

/// Dense simplex tableau solver over the standardized problem.
class SimplexTableau {
 public:
  SimplexTableau(const LinearProgram& lp, const LpOptions& options)
      : lp_(lp), options_(options) {}

  LpSolution solve();

 private:
  // Standardized data: minimize cost.z over A z = b, z >= 0, where z holds
  // the shifted structural variables followed by slack/surplus/artificials.
  void standardize();
  bool phase(bool phase_one);
  void pivot(std::size_t row, std::size_t col);
  void price_out_objective(const std::vector<double>& cost);
  [[nodiscard]] std::size_t choose_entering(bool bland) const;
  [[nodiscard]] std::size_t choose_leaving(std::size_t col) const;

  const LinearProgram& lp_;
  LpOptions options_;

  std::size_t num_struct_ = 0;   // structural (shifted) variables
  std::size_t num_total_ = 0;    // structural + slack + artificial
  std::size_t first_artificial_ = 0;
  std::size_t rows_ = 0;
  // tableau_[r] has num_total_ + 1 entries (last = rhs); obj_ mirrors the
  // reduced-cost row with obj_rhs_ = -objective value.
  std::vector<std::vector<double>> tableau_;
  std::vector<double> obj_;
  double obj_rhs_ = 0.0;
  std::vector<std::size_t> basis_;      // basis_[r] = column basic in row r
  std::vector<double> struct_cost_;     // phase-2 costs over all columns
  double shift_constant_ = 0.0;         // objective offset from bound shifting
  std::size_t entering_limit_ = 0;      // columns eligible to enter the basis
  std::size_t iterations_ = 0;
  static constexpr std::size_t kNoCol = static_cast<std::size_t>(-1);
};

void SimplexTableau::standardize() {
  const std::size_t n = lp_.num_variables();
  num_struct_ = n;

  // Shift x = z + lb so structural z >= 0; finite upper bounds become rows.
  shift_constant_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    shift_constant_ += lp_.objective_coeff(static_cast<int>(i)) * lp_.lower_bound(static_cast<int>(i));
  }

  struct Stdrow {
    std::vector<double> coeffs;  // dense over structural vars
    Sense sense;
    double rhs;
  };
  std::vector<Stdrow> stdrows;
  stdrows.reserve(lp_.num_constraints() + n);

  for (const LinearProgram::Row& row : lp_.rows()) {
    Stdrow sr{std::vector<double>(n, 0.0), row.sense, row.rhs};
    for (const auto& [var, coeff] : row.terms) {
      sr.coeffs[static_cast<std::size_t>(var)] += coeff;
      sr.rhs -= coeff * lp_.lower_bound(var);
    }
    stdrows.push_back(std::move(sr));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double ub = lp_.upper_bound(static_cast<int>(i));
    if (std::isfinite(ub)) {
      Stdrow sr{std::vector<double>(n, 0.0), Sense::kLessEqual,
                ub - lp_.lower_bound(static_cast<int>(i))};
      sr.coeffs[i] = 1.0;
      stdrows.push_back(std::move(sr));
    }
  }

  // Flip rows to make rhs non-negative.
  for (Stdrow& sr : stdrows) {
    if (sr.rhs < 0.0) {
      for (double& c : sr.coeffs) c = -c;
      sr.rhs = -sr.rhs;
      if (sr.sense == Sense::kLessEqual) {
        sr.sense = Sense::kGreaterEqual;
      } else if (sr.sense == Sense::kGreaterEqual) {
        sr.sense = Sense::kLessEqual;
      }
    }
  }

  rows_ = stdrows.size();
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const Stdrow& sr : stdrows) {
    if (sr.sense != Sense::kEqual) ++num_slack;
    if (sr.sense != Sense::kLessEqual) ++num_artificial;
  }
  first_artificial_ = num_struct_ + num_slack;
  num_total_ = first_artificial_ + num_artificial;

  tableau_.assign(rows_, std::vector<double>(num_total_ + 1, 0.0));
  basis_.assign(rows_, kNoCol);

  std::size_t slack_col = num_struct_;
  std::size_t art_col = first_artificial_;
  for (std::size_t r = 0; r < rows_; ++r) {
    const Stdrow& sr = stdrows[r];
    for (std::size_t i = 0; i < n; ++i) tableau_[r][i] = sr.coeffs[i];
    tableau_[r][num_total_] = sr.rhs;
    switch (sr.sense) {
      case Sense::kLessEqual:
        tableau_[r][slack_col] = 1.0;
        basis_[r] = slack_col++;
        break;
      case Sense::kGreaterEqual:
        tableau_[r][slack_col] = -1.0;
        ++slack_col;
        tableau_[r][art_col] = 1.0;
        basis_[r] = art_col++;
        break;
      case Sense::kEqual:
        tableau_[r][art_col] = 1.0;
        basis_[r] = art_col++;
        break;
    }
  }

  struct_cost_.assign(num_total_, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    struct_cost_[i] = lp_.objective_coeff(static_cast<int>(i));
  }
}

void SimplexTableau::price_out_objective(const std::vector<double>& cost) {
  obj_.assign(num_total_, 0.0);
  obj_rhs_ = 0.0;
  for (std::size_t j = 0; j < num_total_; ++j) obj_[j] = cost[j];
  for (std::size_t r = 0; r < rows_; ++r) {
    const double cb = cost[basis_[r]];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j < num_total_; ++j) obj_[j] -= cb * tableau_[r][j];
    obj_rhs_ -= cb * tableau_[r][num_total_];
  }
}

std::size_t SimplexTableau::choose_entering(bool bland) const {
  // entering_limit_ excludes artificial columns during phase 2: once driven
  // out they must never re-enter, or the equality constraints they stand in
  // for silently relax.
  const double tol = options_.pivot_tolerance;
  if (bland) {
    for (std::size_t j = 0; j < entering_limit_; ++j) {
      if (obj_[j] < -tol) return j;
    }
    return kNoCol;
  }
  std::size_t best = kNoCol;
  double best_value = -tol;
  for (std::size_t j = 0; j < entering_limit_; ++j) {
    if (obj_[j] < best_value) {
      best_value = obj_[j];
      best = j;
    }
  }
  return best;
}

std::size_t SimplexTableau::choose_leaving(std::size_t col) const {
  const double tol = options_.pivot_tolerance;
  std::size_t best_row = kNoCol;
  double best_ratio = kInfinity;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double a = tableau_[r][col];
    if (a <= tol) continue;
    const double ratio = tableau_[r][num_total_] / a;
    // Bland tie-break on the basic column index for anti-cycling.
    if (ratio < best_ratio - 1e-12 ||
        (ratio < best_ratio + 1e-12 && best_row != kNoCol && basis_[r] < basis_[best_row])) {
      best_ratio = ratio;
      best_row = r;
    }
  }
  return best_row;
}

void SimplexTableau::pivot(std::size_t row, std::size_t col) {
  std::vector<double>& prow = tableau_[row];
  const double inv = 1.0 / prow[col];
  for (double& v : prow) v *= inv;
  prow[col] = 1.0;  // exact

  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == row) continue;
    const double factor = tableau_[r][col];
    if (factor == 0.0) continue;
    std::vector<double>& target = tableau_[r];
    for (std::size_t j = 0; j <= num_total_; ++j) target[j] -= factor * prow[j];
    target[col] = 0.0;
  }
  const double ofactor = obj_[col];
  if (ofactor != 0.0) {
    for (std::size_t j = 0; j < num_total_; ++j) obj_[j] -= ofactor * prow[j];
    obj_rhs_ -= ofactor * prow[num_total_];
    obj_[col] = 0.0;
  }
  basis_[row] = col;
}

bool SimplexTableau::phase(bool phase_one) {
  // Returns false on unboundedness (phase 2 only) or iteration limit.
  std::size_t stall = 0;
  for (;;) {
    if (++iterations_ > options_.max_iterations) return false;
    const bool bland = stall > rows_ + num_total_;  // switch after long stall
    const std::size_t col = choose_entering(bland);
    if (col == kNoCol) return true;  // optimal for this phase
    const std::size_t row = choose_leaving(col);
    if (row == kNoCol) {
      if (phase_one) return true;  // phase-1 objective bounded below by 0
      return false;                // genuine unboundedness
    }
    const double before = obj_rhs_;
    pivot(row, col);
    stall = std::abs(obj_rhs_ - before) < 1e-12 ? stall + 1 : 0;
  }
}

LpSolution SimplexTableau::solve() {
  standardize();
  LpSolution solution;

  if (rows_ == 0) {
    // No constraints and no finite upper bounds: each variable sits at its
    // lower bound unless its cost is negative, which means unboundedness.
    for (std::size_t i = 0; i < num_struct_; ++i) {
      if (lp_.objective_coeff(static_cast<int>(i)) < 0.0) {
        solution.status = LpStatus::kUnbounded;
        return solution;
      }
    }
  }

  if (rows_ > 0) {
    // Phase 1: minimize sum of artificials.
    entering_limit_ = num_total_;
    std::vector<double> phase1_cost(num_total_, 0.0);
    for (std::size_t j = first_artificial_; j < num_total_; ++j) phase1_cost[j] = 1.0;
    price_out_objective(phase1_cost);
    if (!phase(/*phase_one=*/true)) {
      solution.status = LpStatus::kIterationLimit;
      return solution;
    }
    if (-obj_rhs_ > options_.feasibility_tolerance) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive any remaining artificial out of the basis where possible.
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < first_artificial_) continue;
      std::size_t col = kNoCol;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(tableau_[r][j]) > options_.pivot_tolerance) {
          col = j;
          break;
        }
      }
      if (col != kNoCol) pivot(r, col);
      // else: redundant row with zero rhs; it stays basic in an artificial
      // at value 0, harmless for phase 2 since its cost is 0 there.
    }
    // Phase 2: original objective; artificial columns are frozen out.
    entering_limit_ = first_artificial_;
    price_out_objective(struct_cost_);
    if (!phase(/*phase_one=*/false)) {
      solution.status =
          iterations_ > options_.max_iterations ? LpStatus::kIterationLimit : LpStatus::kUnbounded;
      return solution;
    }
  }

  solution.status = LpStatus::kOptimal;
  solution.values.assign(lp_.num_variables(), 0.0);
  std::vector<double> z(num_total_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) z[basis_[r]] = tableau_[r][num_total_];
  for (std::size_t i = 0; i < num_struct_; ++i) {
    solution.values[i] = z[i] + lp_.lower_bound(static_cast<int>(i));
  }
  solution.objective = lp_.evaluate(solution.values);
  return solution;
}

}  // namespace

LpSolution solve_lp(const LinearProgram& lp, const LpOptions& options) {
  if (lp.num_variables() == 0) {
    LpSolution trivial;
    trivial.status = LpStatus::kOptimal;
    trivial.objective = 0.0;
    return trivial;
  }
  SimplexTableau tableau(lp, options);
  return tableau.solve();
}

}  // namespace carbonedge::solver
