// Linear programming: model container and a dense two-phase primal simplex.
//
// Substitutes for Google OR-Tools (unavailable offline). Sized for the
// paper's placement instances: the testbed-scale MILPs relaxed here have a
// few hundred rows/columns; CDN-scale instances take the flow/heuristic
// paths instead (see assignment.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace carbonedge::solver {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense : std::uint8_t { kLessEqual, kGreaterEqual, kEqual };

/// A linear program: minimize c.x subject to row constraints and variable
/// bounds lb <= x <= ub (lb defaults to 0).
class LinearProgram {
 public:
  /// Adds a variable; returns its index.
  int add_variable(double objective, double lower = 0.0, double upper = kInfinity);

  /// Adds a constraint sum(coeff_k * x_{var_k}) sense rhs.
  void add_constraint(std::vector<std::pair<int, double>> terms, Sense sense, double rhs);

  [[nodiscard]] std::size_t num_variables() const noexcept { return objective_.size(); }
  [[nodiscard]] std::size_t num_constraints() const noexcept { return rows_.size(); }

  [[nodiscard]] double objective_coeff(int var) const { return objective_.at(var); }
  [[nodiscard]] double lower_bound(int var) const { return lower_.at(var); }
  [[nodiscard]] double upper_bound(int var) const { return upper_.at(var); }
  void set_bounds(int var, double lower, double upper);
  void set_objective_coeff(int var, double coeff);

  struct Row {
    std::vector<std::pair<int, double>> terms;
    Sense sense = Sense::kLessEqual;
    double rhs = 0.0;
  };
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  /// Objective value of a candidate point.
  [[nodiscard]] double evaluate(const std::vector<double>& x) const;

  /// True if x satisfies all constraints and bounds within `tol`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Row> rows_;
};

enum class LpStatus : std::uint8_t { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

[[nodiscard]] const char* to_string(LpStatus status) noexcept;

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;  // one per variable, empty unless kOptimal
};

struct LpOptions {
  std::size_t max_iterations = 50'000;
  double pivot_tolerance = 1e-9;
  double feasibility_tolerance = 1e-7;
};

/// Solve with the dense two-phase primal simplex (Dantzig pricing with a
/// Bland fallback for anti-cycling). Finite variable bounds are handled by
/// shifting lower bounds to zero and emitting upper-bound rows.
[[nodiscard]] LpSolution solve_lp(const LinearProgram& lp, const LpOptions& options = {});

}  // namespace carbonedge::solver
