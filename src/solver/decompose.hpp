// Placement-instance sharding: connected-component decomposition of the
// feasible-pair bipartite graph.
//
// Eq. 2 latency pre-filtering makes real placement batches block-diagonal:
// an application in one metro cannot land on another metro's servers, so
// the AssignmentProblem almost always splits into independent components
// (union-find over apps ∪ servers joined by feasible pairs). Costs,
// demands, capacities, and activation costs never couple two components —
// every server belongs to at most one — so solving each component
// separately and stitching the sub-solutions back is exact: the stitched
// cost equals the monolithic optimum whenever every component is solved
// exactly. Components are dispatched onto util::ThreadPool with disjoint
// result slots (bit-identical across thread counts, like ScenarioRunner),
// and solve_auto applies exact_size_limit per component, so batches that
// were heuristic-only as monoliths become exactly solvable shard by shard.
#pragma once

#include <cstddef>
#include <vector>

#include "solver/assignment.hpp"

namespace carbonedge::solver {

/// One connected component of the feasible-pair graph: parent-problem app
/// and server indices, each in increasing order (extraction preserves
/// relative order, so per-component solves are deterministic).
struct Component {
  std::vector<std::size_t> apps;
  std::vector<std::size_t> servers;
};

/// Connected components, ordered by smallest app index. Every component has
/// at least one app; an app with no feasible server forms an app-only
/// singleton (empty server list). Servers with no feasible app belong to no
/// component — they cannot receive load and keep their initial power state.
[[nodiscard]] std::vector<Component> connected_components(const AssignmentProblem& problem);

/// The sub-problem induced by `component`: row/column `k` of the result is
/// app `component.apps[k]` / server `component.servers[k]` of `problem`.
[[nodiscard]] AssignmentProblem extract_component(const AssignmentProblem& problem,
                                                  const Component& component);

/// Solve by decomposition: each component goes through solve_unsharded
/// (exact_size_limit applies per component) on `options.shard_threads` pool
/// workers with disjoint result slots, and the sub-solutions are stitched
/// back. Exact whenever every component is solved exactly; the returned
/// stats report the decomposition shape and per-shard paths.
[[nodiscard]] AssignmentSolution solve_sharded(const AssignmentProblem& problem,
                                               const AssignmentOptions& options = {});

}  // namespace carbonedge::solver
