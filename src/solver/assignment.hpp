// The placement-shaped optimization problem (paper Eq. 1-7 after latency
// filtering) and its solution paths.
//
// An AssignmentProblem has `num_apps` applications to place on
// `num_servers` servers with multi-dimensional capacities. cost(i,j) is the
// objective contribution of placing app i on server j (the policies encode
// E_ij * Ī_j, energy, or blended objectives here); +infinity marks a
// latency-infeasible pair (Eq. 2 pre-filtered). Servers that are initially
// off incur activation_cost(j) once if they receive any application
// (Eq. 6's second term; Eq. 4-5 power-state constraints).
//
// Three solution paths, cross-validated in tests:
//  * solve_exact   — branch-and-bound MILP; exact, testbed scale.
//  * solve_flow    — min-cost flow; exact for unit-slot single-resource
//                    instances with no activation costs (the CDN case).
//  * solve_greedy + improve_local_search — regret greedy with relocate/swap
//                    improvement; any scale, near-optimal in practice.
// solve_auto first shards the instance into connected components of the
// feasible-pair graph (see decompose.hpp — latency pre-filtering makes real
// batches block-diagonal, and the decomposition is exact) and then picks the
// cheapest exact path that applies per component, else the heuristic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "solver/lp.hpp"
#include "solver/milp.hpp"

namespace carbonedge::util {
class ParallelismBudget;
class ThreadPool;
}

namespace carbonedge::solver {

inline constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

class AssignmentProblem {
 public:
  AssignmentProblem(std::size_t num_apps, std::size_t num_servers, std::size_t num_resources = 1);

  [[nodiscard]] std::size_t num_apps() const noexcept { return num_apps_; }
  [[nodiscard]] std::size_t num_servers() const noexcept { return num_servers_; }
  [[nodiscard]] std::size_t num_resources() const noexcept { return num_resources_; }

  void set_cost(std::size_t app, std::size_t server, double cost);
  [[nodiscard]] double cost(std::size_t app, std::size_t server) const noexcept {
    return cost_[app * num_servers_ + server];
  }
  [[nodiscard]] bool feasible_pair(std::size_t app, std::size_t server) const noexcept {
    return cost(app, server) < kInfinity;
  }

  void set_demand(std::size_t app, std::size_t server, std::size_t resource, double demand);
  [[nodiscard]] double demand(std::size_t app, std::size_t server,
                              std::size_t resource) const noexcept {
    return demand_[(app * num_servers_ + server) * num_resources_ + resource];
  }

  void set_capacity(std::size_t server, std::size_t resource, double capacity);
  [[nodiscard]] double capacity(std::size_t server, std::size_t resource) const noexcept {
    return capacity_[server * num_resources_ + resource];
  }

  void set_activation_cost(std::size_t server, double cost);
  [[nodiscard]] double activation_cost(std::size_t server) const noexcept {
    return activation_cost_[server];
  }
  void set_initially_on(std::size_t server, bool on);
  [[nodiscard]] bool initially_on(std::size_t server) const noexcept {
    return initially_on_[server] != 0;
  }

  /// True if the flow path applies: one resource, every feasible pair has
  /// demand exactly 1, integral capacities, and no activation cost on any
  /// initially-off server that has a feasible pair.
  [[nodiscard]] bool is_unit_slot() const noexcept;

 private:
  std::size_t num_apps_;
  std::size_t num_servers_;
  std::size_t num_resources_;
  std::vector<double> cost_;
  std::vector<double> demand_;
  std::vector<double> capacity_;
  std::vector<double> activation_cost_;
  std::vector<std::uint8_t> initially_on_;
};

/// Row-compressed snapshot of the feasible-pair graph: per app, the
/// ascending list of servers with finite cost. Built in one pass over the
/// cost matrix and shared by consumers that would otherwise re-scan all
/// apps x servers cells per question (component decomposition, feasibility
/// probes) — with a banded latency geography the row lists are short, so
/// everything downstream of the build scales with the feasible support
/// instead of n^2.
struct FeasiblePairs {
  std::vector<std::size_t> row_start;  // apps + 1 offsets into `servers`
  std::vector<std::uint32_t> servers;  // concatenated per-app server lists

  [[nodiscard]] std::span<const std::uint32_t> of(std::size_t app) const noexcept {
    return std::span<const std::uint32_t>(servers).subspan(
        row_start[app], row_start[app + 1] - row_start[app]);
  }
};

[[nodiscard]] FeasiblePairs enumerate_feasible_pairs(const AssignmentProblem& problem);

/// How a solver call answered: the decomposition shape and the path that
/// solved each shard. Solvers fill this in on the solutions they return;
/// evaluate() leaves it zeroed (a hand-built solution has no solve path).
struct SolveStats {
  std::size_t components = 0;       // connected components (1 = monolithic)
  std::size_t exact_shards = 0;     // components solved by the MILP
  std::size_t flow_shards = 0;      // components solved by min-cost flow
  std::size_t heuristic_shards = 0; // components solved by greedy + local search
  std::size_t unplaceable_apps = 0; // apps with no feasible server at all
  std::size_t milp_nodes = 0;       // total B&B nodes across exact shards
  std::size_t largest_shard_apps = 0;
};

struct AssignmentSolution {
  bool feasible = false;
  std::vector<std::size_t> assignment;    // app -> server, kUnassigned if unplaced
  std::vector<std::uint8_t> powered_on;   // final y_j
  double total_cost = 0.0;                // placement + activation of new servers
  std::size_t unassigned_count = 0;
  SolveStats stats;                       // telemetry; not part of the answer
};

/// Recompute cost/power state/feasibility of an assignment vector.
[[nodiscard]] AssignmentSolution evaluate(const AssignmentProblem& problem,
                                          const std::vector<std::size_t>& assignment);

/// Check all Eq. 1-5 analogues: capacities respected, only feasible pairs
/// used, power states consistent.
[[nodiscard]] bool validate(const AssignmentProblem& problem, const AssignmentSolution& solution,
                            double tol = 1e-6);

struct AssignmentOptions {
  MilpOptions milp;
  std::size_t local_search_rounds = 20;
  /// Use the exact MILP when num_apps*num_servers is at most this (testbed
  /// scale); larger instances take the flow or greedy + local-search path.
  /// With sharding the limit applies per connected component, so large
  /// batches that decompose into testbed-scale shards still solve exactly.
  std::size_t exact_size_limit = 64;
  /// Decompose into connected components of the feasible-pair graph before
  /// solving (exact — see decompose.hpp). Disable to force the monolithic
  /// paths. Unit-slot instances always stay monolithic: min-cost flow is
  /// already exact and near-linear, so sharding them buys nothing.
  bool shard = true;
  /// Worker threads for component dispatch. The result is bit-identical for
  /// every thread count. 0 defers to `shard_pool` when set, and otherwise
  /// to the process worker budget (util::ParallelismBudget — components run
  /// on leased lanes, inline when the budget is spent).
  std::size_t shard_threads = 0;
  /// Borrowed pool for component dispatch (non-owning; only read when
  /// shard_threads == 0). EdgeSimulation lends its per-run shard pool here
  /// so the placement solve reuses lanes the simulation already leased
  /// instead of drawing the budget down further every epoch.
  util::ThreadPool* shard_pool = nullptr;
  /// Budget the default dispatch path leases from when no pool was lent
  /// (non-owning; nullptr = util::global_budget()). EdgeSimulation forwards
  /// its injected budget here so a 1-lane budget keeps the solver serial
  /// too. Like shard_pool/shard_threads, an execution vehicle — never part
  /// of a result fingerprint.
  util::ParallelismBudget* budget = nullptr;
};

[[nodiscard]] AssignmentSolution solve_exact(const AssignmentProblem& problem,
                                             const MilpOptions& options = {});
[[nodiscard]] AssignmentSolution solve_flow(const AssignmentProblem& problem);
[[nodiscard]] AssignmentSolution solve_greedy(const AssignmentProblem& problem);

/// Relocate/swap improvement; returns the number of improving moves applied.
std::size_t improve_local_search(const AssignmentProblem& problem, AssignmentSolution& solution,
                                 std::size_t max_rounds = 20);

/// Pick a path for one (assumed connected) instance without decomposing:
/// flow when unit-slot (falling back to greedy + local search when any app
/// comes back unassigned, keeping the better of the two partial answers),
/// exact MILP when within exact_size_limit (falling back to its greedy
/// incumbent on MILP failure), else greedy + local search.
[[nodiscard]] AssignmentSolution solve_unsharded(const AssignmentProblem& problem,
                                                 const AssignmentOptions& options = {});

/// Pick a path: monolithic flow when unit-slot, otherwise shard into
/// connected components (exact) and route each through solve_unsharded.
[[nodiscard]] AssignmentSolution solve_auto(const AssignmentProblem& problem,
                                            const AssignmentOptions& options = {});

}  // namespace carbonedge::solver
