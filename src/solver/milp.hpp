// Mixed-integer linear programming via LP-relaxation branch-and-bound.
//
// Handles the paper's Eq. 7 placement MILPs at testbed scale exactly (the
// decision variables x_ij and y_j are binary). Branching is depth-first on
// the most fractional integer variable with incumbent pruning; a caller-
// supplied warm start (e.g. the regret-greedy placement) seeds the
// incumbent so pruning bites early.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "solver/lp.hpp"

namespace carbonedge::solver {

struct MilpOptions {
  LpOptions lp;
  /// Node budget: each node solves a dense-simplex LP, so this bounds the
  /// worst-case latency of an exact solve; past it the warm-start incumbent
  /// is returned (status kFeasible).
  std::size_t max_nodes = 5'000;
  double integrality_tolerance = 1e-6;
  /// Relative optimality gap at which search stops (0 = prove optimality).
  double gap_tolerance = 1e-9;
};

enum class MilpStatus : std::uint8_t {
  kOptimal,
  kFeasible,     // node/iteration limit hit; best incumbent returned
  kInfeasible,
  kUnbounded,
};

[[nodiscard]] const char* to_string(MilpStatus status) noexcept;

struct MilpSolution {
  MilpStatus status = MilpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t nodes_explored = 0;
};

/// Minimize the LP's objective with the listed variables restricted to
/// integers (bounds come from the LP). `warm_start`, if given, must be an
/// integer-feasible point; it seeds the incumbent.
[[nodiscard]] MilpSolution solve_milp(const LinearProgram& lp,
                                      const std::vector<int>& integer_vars,
                                      const MilpOptions& options = {},
                                      const std::optional<std::vector<double>>& warm_start =
                                          std::nullopt);

}  // namespace carbonedge::solver
