#include "solver/milp.hpp"

#include <algorithm>
#include <cmath>

namespace carbonedge::solver {

const char* to_string(MilpStatus status) noexcept {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
  }
  return "?";
}

namespace {

struct Node {
  // Variable bound overrides accumulated along the branch.
  std::vector<std::pair<int, std::pair<double, double>>> bounds;
  double parent_bound = -kInfinity;  // LP bound of the parent, for ordering
};

bool is_integral(double v, double tol) noexcept {
  return std::abs(v - std::round(v)) <= tol;
}

}  // namespace

MilpSolution solve_milp(const LinearProgram& lp, const std::vector<int>& integer_vars,
                        const MilpOptions& options,
                        const std::optional<std::vector<double>>& warm_start) {
  MilpSolution result;

  double incumbent = kInfinity;
  std::vector<double> incumbent_values;
  if (warm_start && lp.is_feasible(*warm_start)) {
    bool integral = true;
    for (const int var : integer_vars) {
      if (!is_integral((*warm_start)[static_cast<std::size_t>(var)],
                       options.integrality_tolerance)) {
        integral = false;
        break;
      }
    }
    if (integral) {
      incumbent = lp.evaluate(*warm_start);
      incumbent_values = *warm_start;
    }
  }

  // Depth-first stack; mutable copy of the LP for bound overrides.
  LinearProgram working = lp;
  std::vector<Node> stack;
  stack.push_back(Node{});
  bool limit_hit = false;

  while (!stack.empty()) {
    if (result.nodes_explored >= options.max_nodes) {
      limit_hit = true;
      break;
    }
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    // Apply node bounds on top of the original ones.
    std::vector<std::pair<int, std::pair<double, double>>> saved;
    saved.reserve(node.bounds.size());
    bool bounds_ok = true;
    for (const auto& [var, bounds] : node.bounds) {
      saved.emplace_back(var, std::make_pair(working.lower_bound(var), working.upper_bound(var)));
      const double lo = std::max(bounds.first, working.lower_bound(var));
      const double hi = std::min(bounds.second, working.upper_bound(var));
      if (lo > hi) {
        bounds_ok = false;
        break;
      }
      working.set_bounds(var, lo, hi);
    }

    if (bounds_ok) {
      const LpSolution relaxed = solve_lp(working, options.lp);
      if (relaxed.status == LpStatus::kUnbounded && incumbent == kInfinity) {
        // Restore bounds before returning.
        for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
          working.set_bounds(it->first, it->second.first, it->second.second);
        }
        result.status = MilpStatus::kUnbounded;
        return result;
      }
      // Cutoff guard: with no incumbent yet, every optimal node is explored.
      const double cutoff =
          std::isfinite(incumbent)
              ? incumbent - options.gap_tolerance * (1.0 + std::abs(incumbent))
              : kInfinity;
      if (relaxed.status == LpStatus::kOptimal && relaxed.objective < cutoff) {
        // Find the most fractional integer variable.
        int branch_var = -1;
        double branch_frac = options.integrality_tolerance;
        for (const int var : integer_vars) {
          const double v = relaxed.values[static_cast<std::size_t>(var)];
          const double frac = std::abs(v - std::round(v));
          if (frac > branch_frac) {
            branch_frac = frac;
            branch_var = var;
          }
        }
        if (branch_var < 0) {
          // Integral solution improving the incumbent.
          incumbent = relaxed.objective;
          incumbent_values = relaxed.values;
          for (const int var : integer_vars) {
            incumbent_values[static_cast<std::size_t>(var)] =
                std::round(incumbent_values[static_cast<std::size_t>(var)]);
          }
        } else {
          const double v = relaxed.values[static_cast<std::size_t>(branch_var)];
          const double floor_v = std::floor(v);
          Node down;
          down.bounds = node.bounds;
          down.bounds.emplace_back(branch_var, std::make_pair(-kInfinity, floor_v));
          down.parent_bound = relaxed.objective;
          Node up;
          up.bounds = node.bounds;
          up.bounds.emplace_back(branch_var, std::make_pair(floor_v + 1.0, kInfinity));
          up.parent_bound = relaxed.objective;
          // Explore the branch nearer the fractional value first (DFS order:
          // push the *other* branch first).
          if (v - floor_v < 0.5) {
            stack.push_back(std::move(up));
            stack.push_back(std::move(down));
          } else {
            stack.push_back(std::move(down));
            stack.push_back(std::move(up));
          }
        }
      }
      // kInfeasible / bound-dominated nodes are pruned silently.
    }

    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      working.set_bounds(it->first, it->second.first, it->second.second);
    }
  }

  if (incumbent_values.empty()) {
    result.status = MilpStatus::kInfeasible;
    return result;
  }
  result.status = limit_hit ? MilpStatus::kFeasible : MilpStatus::kOptimal;
  result.objective = incumbent;
  result.values = std::move(incumbent_values);
  return result;
}

}  // namespace carbonedge::solver
