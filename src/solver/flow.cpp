#include "solver/flow.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace carbonedge::solver {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;
}  // namespace

MinCostFlow::MinCostFlow(std::size_t num_nodes) : graph_(num_nodes) {}

std::size_t MinCostFlow::add_arc(std::size_t from, std::size_t to, std::int64_t capacity,
                                 double cost) {
  if (from >= graph_.size() || to >= graph_.size()) {
    throw std::out_of_range("flow: arc endpoint out of range");
  }
  if (capacity < 0) throw std::invalid_argument("flow: negative capacity");
  if (cost < 0.0) has_negative_costs_ = true;
  const std::size_t fwd_index = graph_[from].size();
  const std::size_t rev_index = graph_[to].size() + (from == to ? 1 : 0);
  graph_[from].push_back(Edge{to, rev_index, capacity, cost, true});
  graph_[to].push_back(Edge{from, fwd_index, 0, -cost, false});
  arc_locator_.emplace_back(from, fwd_index);
  return arc_locator_.size() - 1;
}

std::int64_t MinCostFlow::flow_on(std::size_t arc_index) const {
  const auto& [node, edge] = arc_locator_.at(arc_index);
  const Edge& fwd = graph_[node][edge];
  // Residual of the reverse edge equals shipped flow.
  return graph_[fwd.to][fwd.rev].capacity;
}

bool MinCostFlow::bellman_ford(std::size_t source) {
  potential_.assign(graph_.size(), kInf);
  potential_[source] = 0.0;
  const std::size_t n = graph_.size();
  for (std::size_t iter = 0; iter < n; ++iter) {
    bool changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (potential_[u] == kInf) continue;
      for (const Edge& e : graph_[u]) {
        if (e.capacity <= 0) continue;
        const double candidate = potential_[u] + e.cost;
        if (candidate < potential_[e.to] - kEps) {
          potential_[e.to] = candidate;
          changed = true;
          if (iter + 1 == n) return false;  // negative cycle
        }
      }
    }
    if (!changed) break;
  }
  for (double& p : potential_) {
    if (p == kInf) p = 0.0;  // unreachable: neutral potential
  }
  return true;
}

bool MinCostFlow::dijkstra(std::size_t source, std::size_t sink,
                           std::vector<std::size_t>& prev_node,
                           std::vector<std::size_t>& prev_edge) {
  const std::size_t n = graph_.size();
  dist_.assign(n, kInf);
  prev_node.assign(n, static_cast<std::size_t>(-1));
  prev_edge.assign(n, static_cast<std::size_t>(-1));
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist_[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist_[u] + kEps) continue;
    for (std::size_t i = 0; i < graph_[u].size(); ++i) {
      const Edge& e = graph_[u][i];
      if (e.capacity <= 0) continue;
      const double reduced = e.cost + potential_[u] - potential_[e.to];
      const double candidate = dist_[u] + std::max(0.0, reduced);
      if (candidate < dist_[e.to] - kEps) {
        dist_[e.to] = candidate;
        prev_node[e.to] = u;
        prev_edge[e.to] = i;
        heap.emplace(candidate, e.to);
      }
    }
  }
  return dist_[sink] < kInf;
}

MinCostFlow::Result MinCostFlow::solve(std::size_t source, std::size_t sink,
                                       std::int64_t max_flow) {
  if (source >= graph_.size() || sink >= graph_.size()) {
    throw std::out_of_range("flow: source/sink out of range");
  }
  Result result;
  if (source == sink || max_flow <= 0) return result;

  if (has_negative_costs_) {
    if (!bellman_ford(source)) {
      throw std::runtime_error("flow: negative-cost cycle in network");
    }
  } else {
    potential_.assign(graph_.size(), 0.0);
  }

  std::vector<std::size_t> prev_node;
  std::vector<std::size_t> prev_edge;
  while (result.flow < max_flow && dijkstra(source, sink, prev_node, prev_edge)) {
    // Update potentials; unreachable nodes keep their old potential.
    for (std::size_t v = 0; v < graph_.size(); ++v) {
      if (dist_[v] < kInf) potential_[v] += dist_[v];
    }
    // Bottleneck along the augmenting path.
    std::int64_t push = max_flow - result.flow;
    for (std::size_t v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, graph_[prev_node[v]][prev_edge[v]].capacity);
    }
    for (std::size_t v = sink; v != source; v = prev_node[v]) {
      Edge& e = graph_[prev_node[v]][prev_edge[v]];
      e.capacity -= push;
      graph_[v][e.rev].capacity += push;
      result.cost += e.cost * static_cast<double>(push);
    }
    result.flow += push;
  }
  return result;
}

}  // namespace carbonedge::solver
