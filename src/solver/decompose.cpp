#include "solver/decompose.hpp"

#include <algorithm>
#include <numeric>

#include "util/parallelism.hpp"
#include "util/thread_pool.hpp"

namespace carbonedge::solver {

namespace {

// Union-find with path halving; unions keep the smaller root, so component
// representatives (and therefore component order) are input-deterministic.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<Component> connected_components(const AssignmentProblem& problem) {
  const std::size_t apps = problem.num_apps();
  const std::size_t servers = problem.num_servers();
  // One pass over the cost matrix up front; the union-find then walks only
  // the feasible support (short rows under banded geographies) in the same
  // ascending order as the old dense double scan — identical components.
  const FeasiblePairs pairs = enumerate_feasible_pairs(problem);
  UnionFind uf(apps + servers);
  std::vector<std::uint8_t> server_used(servers, 0);
  for (std::size_t i = 0; i < apps; ++i) {
    for (const std::uint32_t j : pairs.of(i)) {
      uf.unite(i, apps + j);
      server_used[j] = 1;
    }
  }

  // Bucket members by root. Every component contains an app, so scanning
  // apps in index order discovers every component exactly once and fixes
  // the "ordered by smallest app index" contract.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> component_of_root(apps + servers, kNone);
  std::vector<Component> components;
  for (std::size_t i = 0; i < apps; ++i) {
    const std::size_t root = uf.find(i);
    if (component_of_root[root] == kNone) {
      component_of_root[root] = components.size();
      components.emplace_back();
    }
    components[component_of_root[root]].apps.push_back(i);
  }
  for (std::size_t j = 0; j < servers; ++j) {
    if (!server_used[j]) continue;
    components[component_of_root[uf.find(apps + j)]].servers.push_back(j);
  }
  return components;
}

AssignmentProblem extract_component(const AssignmentProblem& problem,
                                    const Component& component) {
  const std::size_t resources = problem.num_resources();
  AssignmentProblem sub(component.apps.size(), component.servers.size(), resources);
  for (std::size_t jj = 0; jj < component.servers.size(); ++jj) {
    const std::size_t j = component.servers[jj];
    for (std::size_t k = 0; k < resources; ++k) sub.set_capacity(jj, k, problem.capacity(j, k));
    sub.set_activation_cost(jj, problem.activation_cost(j));
    sub.set_initially_on(jj, problem.initially_on(j));
  }
  for (std::size_t ii = 0; ii < component.apps.size(); ++ii) {
    const std::size_t i = component.apps[ii];
    for (std::size_t jj = 0; jj < component.servers.size(); ++jj) {
      const std::size_t j = component.servers[jj];
      sub.set_cost(ii, jj, problem.cost(i, j));
      for (std::size_t k = 0; k < resources; ++k) {
        sub.set_demand(ii, jj, k, problem.demand(i, j, k));
      }
    }
  }
  return sub;
}

AssignmentSolution solve_sharded(const AssignmentProblem& problem,
                                 const AssignmentOptions& options) {
  const std::vector<Component> components = connected_components(problem);
  if (components.size() == 1 && components.front().apps.size() == problem.num_apps() &&
      components.front().servers.size() == problem.num_servers()) {
    // Nothing to shard and nothing to drop: skip the extraction copy.
    return solve_unsharded(problem, options);
  }

  // One pre-sized slot per component; each task extracts and solves its own
  // component (pure, index-disjoint), so the stitched result is bit-identical
  // no matter how many workers execute the loop.
  std::vector<AssignmentSolution> slots(components.size());
  const auto body = [&](std::size_t c) {
    const Component& component = components[c];
    if (component.servers.empty()) return;  // unplaceable app(s); stay kUnassigned
    slots[c] = solve_unsharded(extract_component(problem, component), options);
  };
  if (components.size() == 1) {
    // A lone (sub-spanning) component gains nothing from dispatch; skip the
    // pool round trip that every re-optimization epoch would otherwise pay.
    body(0);
  } else if (options.shard_threads != 0) {
    util::ThreadPool pool(options.shard_threads);
    util::parallel_for(pool, 0, components.size(), body, /*chunk=*/1);
  } else if (options.shard_pool != nullptr) {
    // Lanes the caller already leased (EdgeSimulation's per-run shard
    // pool, idle during the solve phase) — no extra budget draw.
    util::parallel_for(*options.shard_pool, 0, components.size(), body, /*chunk=*/1);
  } else {
    // Top-level solve: lease lanes from the (injectable) budget so nested
    // runner x simulation x solver load stays within CARBONEDGE_THREADS,
    // and run on the cached process pool — chunked down to the lease, so
    // concurrency honors the lanes without per-call pool construction
    // (this path runs on every re-optimization epoch of a serial-capped
    // simulation).
    util::ParallelismBudget& budget =
        options.budget != nullptr ? *options.budget : util::global_budget();
    const util::ParallelismBudget::Lease lease = budget.acquire(components.size());
    if (lease.lanes() <= 1) {
      for (std::size_t c = 0; c < components.size(); ++c) body(c);
    } else {
      const std::size_t chunk = (components.size() + lease.lanes() - 1) / lease.lanes();
      util::parallel_for(util::global_pool(), 0, components.size(), body, chunk);
    }
  }

  std::vector<std::size_t> assignment(problem.num_apps(), kUnassigned);
  SolveStats stats;
  stats.components = components.size();
  for (std::size_t c = 0; c < components.size(); ++c) {
    const Component& component = components[c];
    stats.largest_shard_apps = std::max(stats.largest_shard_apps, component.apps.size());
    if (component.servers.empty()) {
      stats.unplaceable_apps += component.apps.size();
      continue;
    }
    const AssignmentSolution& sub = slots[c];
    for (std::size_t k = 0; k < component.apps.size(); ++k) {
      const std::size_t jj = sub.assignment[k];
      if (jj != kUnassigned) assignment[component.apps[k]] = component.servers[jj];
    }
    stats.exact_shards += sub.stats.exact_shards;
    stats.flow_shards += sub.stats.flow_shards;
    stats.heuristic_shards += sub.stats.heuristic_shards;
    stats.unplaceable_apps += sub.stats.unplaceable_apps;
    stats.milp_nodes += sub.stats.milp_nodes;
  }

  // Components are server-disjoint, so re-evaluating the stitched assignment
  // against the parent problem reproduces the sum of the sub-costs
  // (placement plus activation) exactly.
  AssignmentSolution result = evaluate(problem, assignment);
  result.stats = stats;
  return result;
}

}  // namespace carbonedge::solver
