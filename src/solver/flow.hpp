// Min-cost max-flow (successive shortest paths with Johnson potentials).
//
// Exact and fast for the CDN-scale placement case: unit-slot applications
// assigned to servers with integral slot capacities and no activation costs
// reduce to a transportation problem (see assignment.hpp). Also reusable as
// a general network-flow substrate.
#pragma once

#include <cstdint>
#include <vector>

namespace carbonedge::solver {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_nodes);

  /// Adds a directed arc; returns its index (for flow readback).
  std::size_t add_arc(std::size_t from, std::size_t to, std::int64_t capacity, double cost);

  struct Result {
    std::int64_t flow = 0;   // total flow shipped
    double cost = 0.0;       // total cost of the shipped flow
  };

  /// Ship up to `max_flow` units from source to sink along successively
  /// cheapest paths. Negative arc costs are allowed (handled by an initial
  /// Bellman-Ford potential pass). Call once per instance.
  Result solve(std::size_t source, std::size_t sink,
               std::int64_t max_flow = INT64_MAX);

  /// Flow currently on arc `arc_index` (as returned by add_arc).
  [[nodiscard]] std::int64_t flow_on(std::size_t arc_index) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return graph_.size(); }

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;        // index of the reverse edge in graph_[to]
    std::int64_t capacity;  // residual capacity
    double cost;
    bool forward;
  };

  bool bellman_ford(std::size_t source);
  bool dijkstra(std::size_t source, std::size_t sink, std::vector<std::size_t>& prev_node,
                std::vector<std::size_t>& prev_edge);

  std::vector<std::vector<Edge>> graph_;
  std::vector<double> potential_;
  std::vector<double> dist_;
  std::vector<std::pair<std::size_t, std::size_t>> arc_locator_;  // node, edge idx
  bool has_negative_costs_ = false;
};

}  // namespace carbonedge::solver
