#include "solver/assignment.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "solver/decompose.hpp"
#include "solver/flow.hpp"

namespace carbonedge::solver {

namespace {

// Registry mirrors of SolveStats, aggregated at the solve_auto entry (the
// path every placement goes through). All integer counts of deterministic
// solver decisions, so deterministic view even when solves run on worker
// lanes. The size histogram observes integer values only — its sum stays
// exact and commutative, hence thread-count independent.
struct SolverMetrics {
  obs::Counter& solves;
  obs::Counter& components;
  obs::Counter& exact_shards;
  obs::Counter& flow_shards;
  obs::Counter& heuristic_shards;
  obs::Counter& unplaceable_apps;
  obs::Counter& milp_nodes;
  obs::Histogram& problem_apps;
};

SolverMetrics& solver_metrics() {
  obs::Registry& registry = obs::Registry::global();
  static SolverMetrics metrics{
      registry.counter("solver.solves", "assignment problems solved (solve_auto entries)",
                       obs::View::kDeterministic),
      registry.counter("solver.components", "connected components across all solves",
                       obs::View::kDeterministic),
      registry.counter("solver.exact_shards", "components solved by the MILP",
                       obs::View::kDeterministic),
      registry.counter("solver.flow_shards", "components solved by min-cost flow",
                       obs::View::kDeterministic),
      registry.counter("solver.heuristic_shards",
                       "components solved by greedy + local search",
                       obs::View::kDeterministic),
      registry.counter("solver.unplaceable_apps", "apps with no feasible server at all",
                       obs::View::kDeterministic),
      registry.counter("solver.milp_nodes", "B&B nodes explored across exact shards",
                       obs::View::kDeterministic),
      registry.histogram("solver.problem_apps", "apps per solved assignment problem",
                         obs::View::kDeterministic,
                         {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
                          4096.0})};
  return metrics;
}

obs::Phase& solve_phase() {
  static obs::Phase phase("solver.solve");
  return phase;
}

obs::Phase& milp_phase() {
  static obs::Phase phase("solver.milp");
  return phase;
}

}  // namespace

AssignmentProblem::AssignmentProblem(std::size_t num_apps, std::size_t num_servers,
                                     std::size_t num_resources)
    : num_apps_(num_apps),
      num_servers_(num_servers),
      num_resources_(num_resources == 0 ? 1 : num_resources),
      cost_(num_apps * num_servers, kInfinity),
      demand_(num_apps * num_servers * num_resources_, 0.0),
      capacity_(num_servers * num_resources_, 0.0),
      activation_cost_(num_servers, 0.0),
      initially_on_(num_servers, 1) {}

void AssignmentProblem::set_cost(std::size_t app, std::size_t server, double cost) {
  cost_[app * num_servers_ + server] = cost;
}

void AssignmentProblem::set_demand(std::size_t app, std::size_t server, std::size_t resource,
                                   double demand) {
  demand_[(app * num_servers_ + server) * num_resources_ + resource] = demand;
}

void AssignmentProblem::set_capacity(std::size_t server, std::size_t resource, double capacity) {
  capacity_[server * num_resources_ + resource] = capacity;
}

void AssignmentProblem::set_activation_cost(std::size_t server, double cost) {
  activation_cost_[server] = cost;
}

void AssignmentProblem::set_initially_on(std::size_t server, bool on) {
  initially_on_[server] = on ? 1 : 0;
}

bool AssignmentProblem::is_unit_slot() const noexcept {
  if (num_resources_ != 1) return false;
  for (std::size_t j = 0; j < num_servers_; ++j) {
    const double cap = capacity(j, 0);
    if (std::abs(cap - std::round(cap)) > 1e-9) return false;
    bool has_feasible = false;
    for (std::size_t i = 0; i < num_apps_; ++i) {
      if (!feasible_pair(i, j)) continue;
      has_feasible = true;
      if (std::abs(demand(i, j, 0) - 1.0) > 1e-9) return false;
    }
    if (has_feasible && !initially_on(j) && activation_cost(j) != 0.0) return false;
  }
  return true;
}

FeasiblePairs enumerate_feasible_pairs(const AssignmentProblem& problem) {
  FeasiblePairs pairs;
  pairs.row_start.assign(problem.num_apps() + 1, 0);
  for (std::size_t i = 0; i < problem.num_apps(); ++i) {
    for (std::size_t j = 0; j < problem.num_servers(); ++j) {
      if (problem.feasible_pair(i, j)) {
        pairs.servers.push_back(static_cast<std::uint32_t>(j));
      }
    }
    pairs.row_start[i + 1] = pairs.servers.size();
  }
  return pairs;
}

AssignmentSolution evaluate(const AssignmentProblem& problem,
                            const std::vector<std::size_t>& assignment) {
  AssignmentSolution solution;
  solution.assignment = assignment;
  solution.assignment.resize(problem.num_apps(), kUnassigned);
  solution.powered_on.assign(problem.num_servers(), 0);
  for (std::size_t j = 0; j < problem.num_servers(); ++j) {
    solution.powered_on[j] = problem.initially_on(j) ? 1 : 0;
  }
  double total = 0.0;
  solution.unassigned_count = 0;
  for (std::size_t i = 0; i < problem.num_apps(); ++i) {
    const std::size_t j = solution.assignment[i];
    if (j == kUnassigned) {
      ++solution.unassigned_count;
      continue;
    }
    total += problem.cost(i, j);
    if (!solution.powered_on[j]) {
      solution.powered_on[j] = 1;
      total += problem.activation_cost(j);
    }
  }
  solution.total_cost = total;
  solution.feasible = solution.unassigned_count == 0 && validate(problem, solution);
  return solution;
}

bool validate(const AssignmentProblem& problem, const AssignmentSolution& solution, double tol) {
  if (solution.assignment.size() != problem.num_apps()) return false;
  std::vector<double> load(problem.num_servers() * problem.num_resources(), 0.0);
  for (std::size_t i = 0; i < problem.num_apps(); ++i) {
    const std::size_t j = solution.assignment[i];
    if (j == kUnassigned) continue;
    if (j >= problem.num_servers()) return false;
    if (!problem.feasible_pair(i, j)) return false;  // Eq. 2 (latency) encoded as inf cost
    if (!solution.powered_on.empty() && !solution.powered_on[j]) return false;  // Eq. 5
    for (std::size_t k = 0; k < problem.num_resources(); ++k) {
      load[j * problem.num_resources() + k] += problem.demand(i, j, k);
    }
  }
  for (std::size_t j = 0; j < problem.num_servers(); ++j) {
    // Eq. 4: initially-on servers stay on.
    if (!solution.powered_on.empty() && problem.initially_on(j) && !solution.powered_on[j]) {
      return false;
    }
    for (std::size_t k = 0; k < problem.num_resources(); ++k) {
      if (load[j * problem.num_resources() + k] > problem.capacity(j, k) + tol) {
        return false;  // Eq. 1
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Exact MILP path
// ---------------------------------------------------------------------------

AssignmentSolution solve_exact(const AssignmentProblem& problem, const MilpOptions& options) {
  const obs::Span span(milp_phase());
  const std::size_t apps = problem.num_apps();
  const std::size_t servers = problem.num_servers();

  LinearProgram lp;
  std::vector<int> integer_vars;
  // Variable maps: x_var[i][j] >= 0 only for feasible pairs; y_var[j] only
  // for initially-off servers with at least one feasible pair.
  std::vector<std::vector<int>> x_var(apps, std::vector<int>(servers, -1));
  std::vector<int> y_var(servers, -1);

  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      if (!problem.feasible_pair(i, j)) continue;
      x_var[i][j] = lp.add_variable(problem.cost(i, j), 0.0, 1.0);
      integer_vars.push_back(x_var[i][j]);
    }
  }
  for (std::size_t j = 0; j < servers; ++j) {
    if (problem.initially_on(j)) continue;
    bool any = false;
    for (std::size_t i = 0; i < apps && !any; ++i) any = x_var[i][j] >= 0;
    if (!any) continue;
    y_var[j] = lp.add_variable(problem.activation_cost(j), 0.0, 1.0);
    integer_vars.push_back(y_var[j]);
  }

  // Eq. 3: each app placed exactly once.
  for (std::size_t i = 0; i < apps; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t j = 0; j < servers; ++j) {
      if (x_var[i][j] >= 0) terms.emplace_back(x_var[i][j], 1.0);
    }
    if (terms.empty()) {
      AssignmentSolution infeasible;
      infeasible.assignment.assign(apps, kUnassigned);
      infeasible.unassigned_count = apps;
      // No shard was actually solved (the MILP was never built), so
      // exact_shards stays 0. This monolithic path reports one component
      // regardless of how many apps are unplaceable; only the sharded path
      // isolates each unplaceable app as its own singleton component.
      infeasible.stats.components = 1;
      for (std::size_t a = 0; a < apps; ++a) {
        bool any = false;
        for (std::size_t j = 0; j < servers && !any; ++j) any = problem.feasible_pair(a, j);
        if (!any) ++infeasible.stats.unplaceable_apps;
      }
      return infeasible;  // some app has no feasible server at all
    }
    lp.add_constraint(std::move(terms), Sense::kEqual, 1.0);
  }
  // Eq. 1: capacity per server/resource, gated by y for off servers.
  for (std::size_t j = 0; j < servers; ++j) {
    for (std::size_t k = 0; k < problem.num_resources(); ++k) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t i = 0; i < apps; ++i) {
        if (x_var[i][j] >= 0) terms.emplace_back(x_var[i][j], problem.demand(i, j, k));
      }
      if (terms.empty()) continue;
      if (y_var[j] >= 0) {
        terms.emplace_back(y_var[j], -problem.capacity(j, k));
        lp.add_constraint(std::move(terms), Sense::kLessEqual, 0.0);
      } else {
        lp.add_constraint(std::move(terms), Sense::kLessEqual, problem.capacity(j, k));
      }
    }
    // Eq. 5 linking, per pair: x_ij <= y_j. The aggregated big-M form
    // (sum_i x_ij <= apps * y_j) admits fractional y_j = 1/apps at the
    // relaxation, so its LP bound barely reflects activation costs; the
    // per-pair rows are the tightest linear linking and make incumbent
    // pruning bite far earlier (fewer B&B nodes per exact solve).
    if (y_var[j] >= 0) {
      for (std::size_t i = 0; i < apps; ++i) {
        if (x_var[i][j] < 0) continue;
        lp.add_constraint({{x_var[i][j], 1.0}, {y_var[j], -1.0}}, Sense::kLessEqual, 0.0);
      }
    }
  }

  // Warm start from the greedy heuristic to seed the incumbent.
  std::optional<std::vector<double>> warm;
  AssignmentSolution greedy = solve_greedy(problem);
  if (greedy.feasible) {
    improve_local_search(problem, greedy);
    std::vector<double> values(lp.num_variables(), 0.0);
    for (std::size_t i = 0; i < apps; ++i) {
      const std::size_t j = greedy.assignment[i];
      if (j != kUnassigned && x_var[i][j] >= 0) values[static_cast<std::size_t>(x_var[i][j])] = 1.0;
    }
    for (std::size_t j = 0; j < servers; ++j) {
      if (y_var[j] >= 0 && greedy.powered_on[j]) values[static_cast<std::size_t>(y_var[j])] = 1.0;
    }
    if (lp.is_feasible(values)) warm = std::move(values);
  }

  const MilpSolution milp = solve_milp(lp, integer_vars, options, warm);
  if (milp.status != MilpStatus::kOptimal && milp.status != MilpStatus::kFeasible) {
    // The search came up empty (node budget exhausted before any incumbent,
    // or a numerically stranded warm start). The greedy placement is still a
    // valid answer that direct callers would otherwise lose — return it
    // instead of an all-kUnassigned shell.
    if (greedy.feasible) {
      greedy.stats.components = 1;
      greedy.stats.heuristic_shards = 1;
      greedy.stats.milp_nodes = milp.nodes_explored;
      return greedy;
    }
    AssignmentSolution infeasible;
    infeasible.assignment.assign(apps, kUnassigned);
    infeasible.unassigned_count = apps;
    infeasible.stats.components = 1;
    infeasible.stats.exact_shards = 1;
    infeasible.stats.milp_nodes = milp.nodes_explored;
    return infeasible;
  }

  std::vector<std::size_t> assignment(apps, kUnassigned);
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      if (x_var[i][j] >= 0 && milp.values[static_cast<std::size_t>(x_var[i][j])] > 0.5) {
        assignment[i] = j;
        break;
      }
    }
  }
  AssignmentSolution solution = evaluate(problem, assignment);
  solution.stats.components = 1;
  solution.stats.exact_shards = 1;
  solution.stats.milp_nodes = milp.nodes_explored;
  return solution;
}

// ---------------------------------------------------------------------------
// Min-cost-flow path (unit-slot instances)
// ---------------------------------------------------------------------------

AssignmentSolution solve_flow(const AssignmentProblem& problem) {
  const std::size_t apps = problem.num_apps();
  const std::size_t servers = problem.num_servers();
  // Node layout: 0 = source, 1..apps = apps, apps+1..apps+servers = servers,
  // apps+servers+1 = sink.
  const std::size_t source = 0;
  const std::size_t sink = apps + servers + 1;
  MinCostFlow network(sink + 1);

  for (std::size_t i = 0; i < apps; ++i) {
    network.add_arc(source, 1 + i, 1, 0.0);
  }
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> pair_arcs(apps);
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      if (!problem.feasible_pair(i, j)) continue;
      const std::size_t arc = network.add_arc(1 + i, 1 + apps + j, 1, problem.cost(i, j));
      pair_arcs[i].emplace_back(j, arc);
    }
  }
  for (std::size_t j = 0; j < servers; ++j) {
    const auto slots = static_cast<std::int64_t>(std::llround(problem.capacity(j, 0)));
    if (slots > 0) network.add_arc(1 + apps + j, sink, slots, 0.0);
  }

  network.solve(source, sink, static_cast<std::int64_t>(apps));

  std::vector<std::size_t> assignment(apps, kUnassigned);
  for (std::size_t i = 0; i < apps; ++i) {
    for (const auto& [j, arc] : pair_arcs[i]) {
      if (network.flow_on(arc) > 0) {
        assignment[i] = j;
        break;
      }
    }
  }
  AssignmentSolution solution = evaluate(problem, assignment);
  solution.stats.components = 1;
  solution.stats.flow_shards = 1;
  return solution;
}

// ---------------------------------------------------------------------------
// Regret greedy + local search
// ---------------------------------------------------------------------------

namespace {

struct GreedyState {
  std::vector<double> remaining;       // server x resource
  std::vector<std::uint8_t> planned_on;
  std::vector<std::size_t> load_count;  // apps per server

  explicit GreedyState(const AssignmentProblem& p)
      : remaining(p.num_servers() * p.num_resources()),
        planned_on(p.num_servers()),
        load_count(p.num_servers(), 0) {
    for (std::size_t j = 0; j < p.num_servers(); ++j) {
      planned_on[j] = p.initially_on(j) ? 1 : 0;
      for (std::size_t k = 0; k < p.num_resources(); ++k) {
        remaining[j * p.num_resources() + k] = p.capacity(j, k);
      }
    }
  }

  [[nodiscard]] bool fits(const AssignmentProblem& p, std::size_t i, std::size_t j) const {
    for (std::size_t k = 0; k < p.num_resources(); ++k) {
      if (p.demand(i, j, k) > remaining[j * p.num_resources() + k] + 1e-9) return false;
    }
    return true;
  }

  [[nodiscard]] double effective_cost(const AssignmentProblem& p, std::size_t i,
                                      std::size_t j) const {
    double c = p.cost(i, j);
    if (!planned_on[j]) c += p.activation_cost(j);
    return c;
  }

  void commit(const AssignmentProblem& p, std::size_t i, std::size_t j) {
    for (std::size_t k = 0; k < p.num_resources(); ++k) {
      remaining[j * p.num_resources() + k] -= p.demand(i, j, k);
    }
    planned_on[j] = 1;
    ++load_count[j];
  }
};

}  // namespace

AssignmentSolution solve_greedy(const AssignmentProblem& problem) {
  const std::size_t apps = problem.num_apps();
  const std::size_t servers = problem.num_servers();
  GreedyState state(problem);
  std::vector<std::size_t> assignment(apps, kUnassigned);
  std::vector<std::uint8_t> placed(apps, 0);

  for (std::size_t round = 0; round < apps; ++round) {
    // Pick the unplaced app with the largest regret (gap between its best
    // and second-best feasible option); ties favor the costlier best option.
    std::size_t pick = kUnassigned;
    std::size_t pick_server = kUnassigned;
    double pick_regret = -1.0;
    double pick_best_cost = -kInfinity;
    for (std::size_t i = 0; i < apps; ++i) {
      if (placed[i]) continue;
      double best = kInfinity;
      double second = kInfinity;
      std::size_t best_server = kUnassigned;
      for (std::size_t j = 0; j < servers; ++j) {
        if (!problem.feasible_pair(i, j) || !state.fits(problem, i, j)) continue;
        const double c = state.effective_cost(problem, i, j);
        if (c < best) {
          second = best;
          best = c;
          best_server = j;
        } else if (c < second) {
          second = c;
        }
      }
      if (best_server == kUnassigned) {
        // This app can no longer be placed; greedy fails over to a partial
        // answer which evaluate() marks infeasible.
        continue;
      }
      const double regret = (second == kInfinity) ? kInfinity : second - best;
      if (regret > pick_regret ||
          (regret == pick_regret && best > pick_best_cost)) {
        pick_regret = regret;
        pick_best_cost = best;
        pick = i;
        pick_server = best_server;
      }
    }
    if (pick == kUnassigned) break;  // nothing placeable remains
    assignment[pick] = pick_server;
    placed[pick] = 1;
    state.commit(problem, pick, pick_server);
  }
  AssignmentSolution solution = evaluate(problem, assignment);
  solution.stats.components = 1;
  solution.stats.heuristic_shards = 1;
  return solution;
}

std::size_t improve_local_search(const AssignmentProblem& problem, AssignmentSolution& solution,
                                 std::size_t max_rounds) {
  const std::size_t apps = problem.num_apps();
  const std::size_t servers = problem.num_servers();
  const std::size_t resources = problem.num_resources();

  std::vector<double> load(servers * resources, 0.0);
  std::vector<std::size_t> count(servers, 0);
  for (std::size_t i = 0; i < apps; ++i) {
    const std::size_t j = solution.assignment[i];
    if (j == kUnassigned) continue;
    for (std::size_t k = 0; k < resources; ++k) load[j * resources + k] += problem.demand(i, j, k);
    ++count[j];
  }

  const auto activation_delta_gain = [&](std::size_t j) {
    // Cost of powering on j if it is off and currently unused.
    return (!problem.initially_on(j) && count[j] == 0) ? problem.activation_cost(j) : 0.0;
  };
  const auto activation_delta_release = [&](std::size_t j) {
    // Saving from vacating the last app of an initially-off server.
    return (!problem.initially_on(j) && count[j] == 1) ? problem.activation_cost(j) : 0.0;
  };
  const auto fits_after = [&](std::size_t i, std::size_t to, std::size_t ignore_app) {
    for (std::size_t k = 0; k < resources; ++k) {
      double used = load[to * resources + k];
      if (ignore_app != kUnassigned && solution.assignment[ignore_app] == to) {
        used -= problem.demand(ignore_app, to, k);
      }
      if (used + problem.demand(i, to, k) > problem.capacity(to, k) + 1e-9) return false;
    }
    return true;
  };

  std::size_t improvements = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool improved = false;

    // Relocate moves. `from` is refreshed after every applied move: the app
    // now lives on its new server and further candidate targets must be
    // evaluated against that.
    for (std::size_t i = 0; i < apps; ++i) {
      std::size_t from = solution.assignment[i];
      if (from == kUnassigned) continue;
      for (std::size_t to = 0; to < servers; ++to) {
        if (to == from || !problem.feasible_pair(i, to)) continue;
        if (!fits_after(i, to, kUnassigned)) continue;
        const double delta = problem.cost(i, to) - problem.cost(i, from) +
                             activation_delta_gain(to) - activation_delta_release(from);
        if (delta < -1e-9) {
          for (std::size_t k = 0; k < resources; ++k) {
            load[from * resources + k] -= problem.demand(i, from, k);
            load[to * resources + k] += problem.demand(i, to, k);
          }
          --count[from];
          ++count[to];
          solution.assignment[i] = to;
          from = to;
          improved = true;
          ++improvements;
        }
      }
    }

    // Pairwise swaps. `sa` is refreshed after every applied swap — app a
    // moved, so later candidates must see its new server.
    for (std::size_t a = 0; a < apps; ++a) {
      std::size_t sa = solution.assignment[a];
      if (sa == kUnassigned) continue;
      for (std::size_t b = a + 1; b < apps; ++b) {
        const std::size_t sb = solution.assignment[b];
        if (sb == kUnassigned || sb == sa) continue;
        if (!problem.feasible_pair(a, sb) || !problem.feasible_pair(b, sa)) continue;
        if (!fits_after(a, sb, b) || !fits_after(b, sa, a)) continue;
        const double delta = problem.cost(a, sb) + problem.cost(b, sa) -
                             problem.cost(a, sa) - problem.cost(b, sb);
        if (delta < -1e-9) {
          for (std::size_t k = 0; k < resources; ++k) {
            load[sa * resources + k] += problem.demand(b, sa, k) - problem.demand(a, sa, k);
            load[sb * resources + k] += problem.demand(a, sb, k) - problem.demand(b, sb, k);
          }
          solution.assignment[a] = sb;
          solution.assignment[b] = sa;
          sa = sb;
          improved = true;
          ++improvements;
        }
      }
    }

    if (!improved) break;
  }

  AssignmentSolution refreshed = evaluate(problem, solution.assignment);
  refreshed.stats = solution.stats;  // improvement does not change the path taken
  solution = std::move(refreshed);
  return improvements;
}

AssignmentSolution solve_unsharded(const AssignmentProblem& problem,
                                   const AssignmentOptions& options) {
  if (problem.is_unit_slot()) {
    AssignmentSolution flow = solve_flow(problem);
    if (flow.unassigned_count == 0) return flow;
    // Some apps came back unassigned (unplaceable, or capacity-starved):
    // fall back to greedy + local search the way the exact path does, and
    // keep whichever partial answer places more apps, then costs less.
    AssignmentSolution fallback = solve_greedy(problem);
    improve_local_search(problem, fallback, options.local_search_rounds);
    if (fallback.unassigned_count < flow.unassigned_count ||
        (fallback.unassigned_count == flow.unassigned_count &&
         fallback.total_cost < flow.total_cost - 1e-9)) {
      return fallback;
    }
    return flow;
  }
  if (problem.num_apps() * problem.num_servers() <= options.exact_size_limit) {
    AssignmentSolution exact = solve_exact(problem, options.milp);
    if (exact.feasible) return exact;
  }
  AssignmentSolution solution = solve_greedy(problem);
  improve_local_search(problem, solution, options.local_search_rounds);
  return solution;
}

AssignmentSolution solve_auto(const AssignmentProblem& problem, const AssignmentOptions& options) {
  const obs::Span span(solve_phase());
  // Unit-slot instances keep the monolithic min-cost-flow path: it is
  // already exact and near-linear in the pair count, so decomposing would
  // only perturb equal-cost tie-breaking. Everything else is sharded so
  // exact_size_limit applies per connected component.
  AssignmentSolution solution = !options.shard || problem.is_unit_slot()
                                    ? solve_unsharded(problem, options)
                                    : solve_sharded(problem, options);
  SolverMetrics& metrics = solver_metrics();
  metrics.solves.add();
  metrics.components.add(solution.stats.components);
  metrics.exact_shards.add(solution.stats.exact_shards);
  metrics.flow_shards.add(solution.stats.flow_shards);
  metrics.heuristic_shards.add(solution.stats.heuristic_shards);
  metrics.unplaceable_apps.add(solution.stats.unplaceable_apps);
  metrics.milp_nodes.add(solution.stats.milp_nodes);
  metrics.problem_apps.observe(static_cast<double>(problem.num_apps()));
  return solution;
}

}  // namespace carbonedge::solver
