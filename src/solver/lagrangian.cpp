#include "solver/lagrangian.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace carbonedge::solver {

LagrangianResult lagrangian_lower_bound(const AssignmentProblem& problem,
                                        const LagrangianOptions& options) {
  LagrangianResult result;
  const std::size_t apps = problem.num_apps();
  const std::size_t servers = problem.num_servers();
  const std::size_t resources = problem.num_resources();

  // Infeasibility check: every app needs at least one feasible pair.
  for (std::size_t i = 0; i < apps; ++i) {
    bool any = false;
    for (std::size_t j = 0; j < servers && !any; ++j) any = problem.feasible_pair(i, j);
    if (!any) {
      result.feasible_instance = false;
      result.lower_bound = -kInfinity;
      return result;
    }
  }

  std::vector<double> lambda(servers * resources, 0.0);
  std::vector<std::size_t> argmin(apps, 0);

  // Evaluate L(lambda) and the subgradient of the capacity constraints.
  const auto evaluate = [&](std::vector<double>& subgradient) {
    double value = 0.0;
    for (std::size_t i = 0; i < apps; ++i) {
      double best = kInfinity;
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < servers; ++j) {
        if (!problem.feasible_pair(i, j)) continue;
        double penalized = problem.cost(i, j);
        for (std::size_t k = 0; k < resources; ++k) {
          penalized += lambda[j * resources + k] * problem.demand(i, j, k);
        }
        if (penalized < best) {
          best = penalized;
          best_j = j;
        }
      }
      value += best;
      argmin[i] = best_j;
    }
    std::fill(subgradient.begin(), subgradient.end(), 0.0);
    for (std::size_t i = 0; i < apps; ++i) {
      const std::size_t j = argmin[i];
      for (std::size_t k = 0; k < resources; ++k) {
        subgradient[j * resources + k] += problem.demand(i, j, k);
      }
    }
    for (std::size_t j = 0; j < servers; ++j) {
      for (std::size_t k = 0; k < resources; ++k) {
        const std::size_t cell = j * resources + k;
        subgradient[cell] -= problem.capacity(j, k);
        value -= lambda[cell] * problem.capacity(j, k);
      }
    }
    return value;
  };

  std::vector<double> subgradient(servers * resources, 0.0);
  double best = evaluate(subgradient);
  result.root_bound = best;

  // Upper bound for the Polyak step.
  double upper = options.upper_bound;
  if (!std::isfinite(upper)) {
    AssignmentSolution greedy = solve_greedy(problem);
    if (greedy.feasible) {
      improve_local_search(problem, greedy, 5);
      upper = greedy.total_cost;
    } else {
      // Crude fallback: sum of per-app maxima over feasible pairs.
      upper = 0.0;
      for (std::size_t i = 0; i < apps; ++i) {
        double worst = 0.0;
        for (std::size_t j = 0; j < servers; ++j) {
          if (problem.feasible_pair(i, j)) worst = std::max(worst, problem.cost(i, j));
        }
        upper += worst;
      }
    }
  }

  double theta = options.theta;
  std::size_t since_improvement = 0;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    double norm_sq = 0.0;
    for (const double g : subgradient) norm_sq += g * g;
    if (norm_sq < 1e-18) break;  // relaxed solution respects capacity: optimal

    const double gap = std::max(upper - best, 1e-12);
    const double step = theta * gap / norm_sq;
    for (std::size_t cell = 0; cell < lambda.size(); ++cell) {
      lambda[cell] = std::max(0.0, lambda[cell] + step * subgradient[cell]);
    }
    const double value = evaluate(subgradient);
    if (value > best + 1e-12) {
      best = value;
      since_improvement = 0;
    } else if (++since_improvement >= options.patience) {
      theta *= 0.5;
      since_improvement = 0;
      if (theta < 1e-4) break;
    }
  }

  result.lower_bound = best;
  return result;
}

}  // namespace carbonedge::solver
