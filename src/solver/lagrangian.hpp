// Lagrangian lower bounds for the placement problem.
//
// At CDN scale the exact MILP is out of reach and solve_auto falls back to
// regret-greedy + local search. To *certify* that heuristic's quality we
// compute a Lagrangian dual bound: relaxing the capacity constraints
// (Eq. 1) with multipliers lambda >= 0 decomposes the problem per
// application; subgradient ascent with a Polyak step (using the heuristic
// solution as the upper bound) tightens the bound. Any heuristic solution
// within a few percent of this bound is provably near-optimal.
//
// Server-activation costs are dropped from the relaxation; since they are
// non-negative this only lowers the bound, keeping it valid for the full
// objective.
#pragma once

#include "solver/assignment.hpp"
#include "solver/lp.hpp"

namespace carbonedge::solver {

struct LagrangianOptions {
  std::size_t max_iterations = 200;
  /// Initial Polyak step scale theta (halved after `patience` non-improving
  /// iterations).
  double theta = 1.0;
  std::size_t patience = 10;
  /// Optional known upper bound (e.g. greedy + local search cost). When
  /// absent, a crude bound from feasible-pair maxima is used.
  double upper_bound = kInfinity;
};

struct LagrangianResult {
  /// Valid lower bound on the optimal total cost; -infinity only if some
  /// application has no feasible server (the instance is infeasible, which
  /// is reported via `feasible_instance`).
  double lower_bound = 0.0;
  bool feasible_instance = true;
  std::size_t iterations = 0;
  /// Bound at lambda = 0 (capacity ignored): the trivial per-app minimum.
  double root_bound = 0.0;
};

[[nodiscard]] LagrangianResult lagrangian_lower_bound(const AssignmentProblem& problem,
                                                      const LagrangianOptions& options = {});

}  // namespace carbonedge::solver
