// Scenario grids: a cartesian product of SimulationConfig axes.
//
// Every evaluation in the paper is "run EdgeSimulation::run over some set of
// {policy, region, hardware mix, horizon, migration/failure knobs} cells and
// tabulate" — the benches used to hand-roll those nested loops serially.
// A ScenarioGrid declares the axes once; expand() materializes one fully-
// resolved Scenario per cell in a deterministic row-major order, ready to be
// dispatched in parallel by the ScenarioRunner (scenario_runner.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "sim/datacenter.hpp"

namespace carbonedge::runner {

/// One hardware-mix axis value: sites cycle deterministically through
/// `devices` (a single entry yields a homogeneous cluster).
struct DeviceMix {
  std::string name = "A2";
  std::vector<sim::DeviceType> devices = {sim::DeviceType::kA2};
  std::size_t servers_per_site = 1;
};

/// One migration-strategy axis value (re-optimization cadence + data-
/// movement cost model, core/simulation.hpp).
struct MigrationSpec {
  std::string name = "sticky";
  std::uint32_t reoptimize_every = 0;
  core::MigrationConfig migration{};
};

/// One failure-injection axis value.
struct FailureSpec {
  std::string name = "none";
  core::FailureConfig failures{};
};

/// A fully-materialized grid cell: everything a worker needs to build the
/// cluster, run the simulation, and label the result row.
struct Scenario {
  std::size_t index = 0;  // position in the grid's row-major expansion
  std::string label;      // human-readable axis coordinates
  geo::Region region;
  DeviceMix mix;
  core::SimulationConfig config;
};

/// Declarative cartesian grid over simulation axes. Axes left unset
/// contribute a single cell carrying the base config's value, so a default-
/// constructed grid expands to exactly one default scenario. Expansion is
/// row-major in declaration order: region (outermost), device mix, policy,
/// epochs, migration, failures, workload seed (innermost) — benches relying
/// on positional indexing (e.g. pivot tables) can count on it.
class ScenarioGrid {
 public:
  ScenarioGrid() = default;
  /// `base` seeds every cell; axes override individual fields.
  explicit ScenarioGrid(core::SimulationConfig base) : base_(std::move(base)) {}

  ScenarioGrid& with_policies(std::vector<core::PolicyConfig> policies);
  ScenarioGrid& with_regions(std::vector<geo::Region> regions);
  ScenarioGrid& with_device_mixes(std::vector<DeviceMix> mixes);
  ScenarioGrid& with_epochs(std::vector<std::uint32_t> epochs);
  ScenarioGrid& with_migrations(std::vector<MigrationSpec> migrations);
  ScenarioGrid& with_failures(std::vector<FailureSpec> failures);
  ScenarioGrid& with_workload_seeds(std::vector<std::uint64_t> seeds);

  /// Grid cardinality: the product of max(1, |axis|) over all axes.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Materialize every cell (size() scenarios, labels and indices set).
  [[nodiscard]] std::vector<Scenario> expand() const;

  [[nodiscard]] const core::SimulationConfig& base() const noexcept { return base_; }

 private:
  core::SimulationConfig base_{};
  std::vector<core::PolicyConfig> policies_;
  std::vector<geo::Region> regions_;
  std::vector<DeviceMix> mixes_;
  std::vector<std::uint32_t> epochs_;
  std::vector<MigrationSpec> migrations_;
  std::vector<FailureSpec> failures_;
  std::vector<std::uint64_t> seeds_;
};

}  // namespace carbonedge::runner
