// Scenario grids: a cartesian product of SimulationConfig axes.
//
// Every evaluation in the paper is "run EdgeSimulation::run over some set of
// {policy, region, hardware mix, horizon, migration/failure knobs} cells and
// tabulate" — the benches used to hand-roll those nested loops serially.
// A ScenarioGrid declares the axes once; expand() materializes one fully-
// resolved Scenario per cell in a deterministic row-major order, ready to be
// dispatched in parallel by the ScenarioRunner (scenario_runner.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "sim/device.hpp"

namespace carbonedge::runner {

/// One hardware-mix axis value: sites cycle deterministically through
/// `devices` (a single entry yields a homogeneous cluster).
struct DeviceMix {
  std::string name = "A2";
  std::vector<sim::DeviceType> devices = {sim::DeviceType::kA2};
  std::size_t servers_per_site = 1;
  /// Population-proportional capacity (Section 6.3.4's "Capacity" skew):
  /// when non-zero, the cluster is built as make_population_cluster(region,
  /// total_servers, devices.front()) instead of servers_per_site per site.
  std::size_t total_servers = 0;
  /// Power off the last N servers of every site at construction (the
  /// activation-term ablation starts its spare servers cold).
  std::size_t initially_off_per_site = 0;
};

/// One migration-strategy axis value (re-optimization cadence + data-
/// movement cost model, core/simulation.hpp).
struct MigrationSpec {
  std::string name = "sticky";
  std::uint32_t reoptimize_every = 0;
  /// Calendar-month-aligned re-optimization (overrides reoptimize_every).
  bool reoptimize_monthly = false;
  core::MigrationConfig migration{};
};

/// One failure-injection axis value.
struct FailureSpec {
  std::string name = "none";
  core::FailureConfig failures{};
};

/// A fully-materialized grid cell: everything a worker needs to build the
/// cluster, run the simulation, and label the result row.
struct Scenario {
  std::size_t index = 0;  // position in the grid's row-major expansion
  std::string label;      // human-readable axis coordinates
  geo::Region region;
  DeviceMix mix;
  /// Forecaster name for the cell's carbon service (carbon::make_forecaster;
  /// empty keeps the service default, the oracle).
  std::string forecaster;
  /// One-way latency band for the cell's geography (EdgeSimulation ctor);
  /// 0 keeps the dense LatencyMatrix, positive builds the sparse
  /// BandedLatencyMatrix so planet-scale regions skip the n^2 pair table.
  double latency_band_ms = 0.0;
  core::SimulationConfig config;
};

/// Declarative cartesian grid over simulation axes. Axes left unset
/// contribute a single cell carrying the base config's value, so a default-
/// constructed grid expands to exactly one default scenario. Expansion is
/// row-major in declaration order: region (outermost), device mix, policy,
/// epochs, RTT limit, latency band, arrival rate, defer budget, forecaster,
/// migration, failures, workload seed (innermost) — benches relying on
/// positional indexing (e.g. pivot tables) can count on it.
class ScenarioGrid {
 public:
  ScenarioGrid() = default;
  /// `base` seeds every cell; axes override individual fields.
  explicit ScenarioGrid(core::SimulationConfig base) : base_(std::move(base)) {}

  ScenarioGrid& with_policies(std::vector<core::PolicyConfig> policies);
  ScenarioGrid& with_regions(std::vector<geo::Region> regions);
  ScenarioGrid& with_device_mixes(std::vector<DeviceMix> mixes);
  ScenarioGrid& with_epochs(std::vector<std::uint32_t> epochs);
  /// Round-trip latency SLO sweep (workload.latency_limit_rtt_ms, Fig. 12).
  ScenarioGrid& with_rtt_limits(std::vector<double> limits);
  /// Latency-band sweep (Scenario::latency_band_ms; 0 = dense matrix).
  ScenarioGrid& with_latency_bands(std::vector<double> bands);
  /// Arrival-intensity sweep (workload.arrivals_per_site, Fig. 16's low vs
  /// high utilization).
  ScenarioGrid& with_arrival_rates(std::vector<double> rates);
  /// Temporal-flexibility sweep (workload.max_defer_epochs, Section 2.2).
  ScenarioGrid& with_defer_epochs(std::vector<std::uint32_t> defers);
  /// Forecaster sweep (carbon::make_forecaster names; the forecast ablation).
  ScenarioGrid& with_forecasters(std::vector<std::string> forecasters);
  ScenarioGrid& with_migrations(std::vector<MigrationSpec> migrations);
  ScenarioGrid& with_failures(std::vector<FailureSpec> failures);
  ScenarioGrid& with_workload_seeds(std::vector<std::uint64_t> seeds);

  /// Grid cardinality: the product of max(1, |axis|) over all axes.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Materialize every cell (size() scenarios, labels and indices set).
  [[nodiscard]] std::vector<Scenario> expand() const;

  [[nodiscard]] const core::SimulationConfig& base() const noexcept { return base_; }

 private:
  core::SimulationConfig base_{};
  std::vector<core::PolicyConfig> policies_;
  std::vector<geo::Region> regions_;
  std::vector<DeviceMix> mixes_;
  std::vector<std::uint32_t> epochs_;
  std::vector<double> rtt_limits_;
  std::vector<double> latency_bands_;
  std::vector<double> arrival_rates_;
  std::vector<std::uint32_t> defer_epochs_;
  std::vector<std::string> forecasters_;
  std::vector<MigrationSpec> migrations_;
  std::vector<FailureSpec> failures_;
  std::vector<std::uint64_t> seeds_;
};

}  // namespace carbonedge::runner
