// Parallel scenario-sweep runner.
//
// Expands a ScenarioGrid and dispatches one EdgeSimulation::run per cell
// onto a util::ThreadPool. Every task writes into its own pre-sized result
// slot (no locks, no shared mutable state: each cell builds its own cluster
// and simulation; carbon services are synthesized once per distinct region
// before dispatch and only read concurrently), so the aggregate is
// bit-identical no matter how many workers execute it — run(grid) with one
// thread and with N threads produce equal tables.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "core/simulation.hpp"
#include "runner/scenario_grid.hpp"
#include "util/parallelism.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace carbonedge::util {
class ParallelismBudget;
}

namespace carbonedge::runner {

/// One completed cell: the scenario that was run and its simulation result.
struct ScenarioOutcome {
  Scenario scenario;
  core::SimulationResult result;
};

/// Degradation counters of a CellCache. A best-effort cache never fails a
/// sweep — a full disk just means cells silently stop persisting — so these
/// are the only way a degraded-store run is distinguishable from a healthy
/// one. summarize(outcomes, cache) renders them as a Store column.
struct CellCacheHealth {
  std::uint64_t stores = 0;          // fresh cells persisted
  std::uint64_t write_failures = 0;  // persists that failed (store degraded)
};

/// Persistence seam for sweep-cell results. The runner layer sits below the
/// store layer in the module DAG, so it cannot name store::SweepStore
/// directly; the store layer implements this interface (store::SweepStore)
/// and callers inject it through ScenarioRunnerOptions. Implementations must
/// round-trip results bit-exactly: a cache hit replayed into the aggregate
/// has to leave the summary table byte-identical to a cold run.
class CellCache {
 public:
  virtual ~CellCache() = default;
  /// The persisted result for `scenario`, or nullopt on a miss.
  [[nodiscard]] virtual std::optional<core::SimulationResult> load(
      const Scenario& scenario) = 0;
  /// Best-effort persist of a computed cell; failures must not throw.
  virtual void save(const Scenario& scenario, const core::SimulationResult& result) = 0;
  /// Current degradation counters; the default (a cache with no failure
  /// modes) reports all-zero.
  [[nodiscard]] virtual CellCacheHealth health() const { return {}; }
};

struct ScenarioRunnerOptions {
  /// Worker threads for the sweep. 0 (the default) leases one lane per
  /// concurrently running cell from the process worker budget
  /// (util::ParallelismBudget, CARBONEDGE_THREADS) and hands each cell an
  /// even share of the leftover as intra-simulation shard lanes; a nonzero
  /// value forces exactly that many cell workers.
  std::size_t threads = 0;
  /// Budget to lease from instead of util::global_budget() (test
  /// injection; also forwarded to every cell's EdgeSimulation).
  util::ParallelismBudget* budget = nullptr;
  /// Persistent sweep-cell cache (store::SweepStore, via the CellCache
  /// seam). When set, cells already in the cache are loaded instead of
  /// re-simulated (their carbon services are not even built) and freshly
  /// computed cells are saved back, so an interrupted or extended grid
  /// resumes incrementally. Cached results round-trip bit-exactly: the
  /// aggregate — and summarize()'s table — is byte-identical to a cold
  /// one-shot run.
  std::shared_ptr<CellCache> sweep_store;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioRunnerOptions options = {}) : options_(options) {}

  /// Expand and run every cell of the grid; outcomes are returned in grid
  /// (row-major) order regardless of execution interleaving.
  [[nodiscard]] std::vector<ScenarioOutcome> run(const ScenarioGrid& grid) const;

  /// Run an explicit scenario list (e.g. a filtered expansion). An empty
  /// list is a no-op returning no outcomes.
  [[nodiscard]] std::vector<ScenarioOutcome> run(std::vector<Scenario> scenarios) const;

  /// Aggregate outcomes into one summary row per scenario (label, carbon,
  /// energy, latency, placement and migration/failure counters), in outcome
  /// order. Purely a function of the outcomes, so equal outcome vectors
  /// render byte-identical tables.
  [[nodiscard]] static util::Table summarize(const std::vector<ScenarioOutcome>& outcomes);

  /// summarize() plus a Store column surfacing the cell cache's health: a
  /// sweep whose store degraded to memory-only (failed persists) must not
  /// look identical to a healthy one. `cache == nullptr` renders "-"
  /// (sweep ran without a store). Still a pure function of its arguments.
  [[nodiscard]] static util::Table summarize(const std::vector<ScenarioOutcome>& outcomes,
                                             const CellCache* cache);

  [[nodiscard]] const ScenarioRunnerOptions& options() const noexcept { return options_; }

 private:
  ScenarioRunnerOptions options_;
};

}  // namespace carbonedge::runner
