#include "runner/scenario_grid.hpp"

#include <utility>

#include "core/policy.hpp"
#include "util/table.hpp"

namespace carbonedge::runner {

namespace {

// Region used when the axis is unset: the smallest mesoscale geography
// (five Florida zones), so a default grid stays cheap to run.
geo::Region default_region() { return geo::florida_region(); }

std::size_t axis_size(std::size_t n) { return n == 0 ? 1 : n; }

void append_label(std::string& label, const std::string& part) {
  if (!label.empty()) label += " | ";
  label += part;
}

// Compact axis-value rendering for doubles: up to two decimals, trailing
// zeros trimmed ("20", "0.8", "1.25").
std::string format_axis(double value) {
  std::string text = util::format_fixed(value, 2);
  while (text.back() == '0') text.pop_back();
  if (text.back() == '.') text.pop_back();
  return text;
}

}  // namespace

ScenarioGrid& ScenarioGrid::with_policies(std::vector<core::PolicyConfig> policies) {
  policies_ = std::move(policies);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_regions(std::vector<geo::Region> regions) {
  regions_ = std::move(regions);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_device_mixes(std::vector<DeviceMix> mixes) {
  mixes_ = std::move(mixes);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_epochs(std::vector<std::uint32_t> epochs) {
  epochs_ = std::move(epochs);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_rtt_limits(std::vector<double> limits) {
  rtt_limits_ = std::move(limits);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_latency_bands(std::vector<double> bands) {
  latency_bands_ = std::move(bands);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_arrival_rates(std::vector<double> rates) {
  arrival_rates_ = std::move(rates);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_defer_epochs(std::vector<std::uint32_t> defers) {
  defer_epochs_ = std::move(defers);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_forecasters(std::vector<std::string> forecasters) {
  forecasters_ = std::move(forecasters);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_migrations(std::vector<MigrationSpec> migrations) {
  migrations_ = std::move(migrations);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_failures(std::vector<FailureSpec> failures) {
  failures_ = std::move(failures);
  return *this;
}

ScenarioGrid& ScenarioGrid::with_workload_seeds(std::vector<std::uint64_t> seeds) {
  seeds_ = std::move(seeds);
  return *this;
}

std::size_t ScenarioGrid::size() const noexcept {
  return axis_size(regions_.size()) * axis_size(mixes_.size()) * axis_size(policies_.size()) *
         axis_size(epochs_.size()) * axis_size(rtt_limits_.size()) *
         axis_size(latency_bands_.size()) * axis_size(arrival_rates_.size()) *
         axis_size(defer_epochs_.size()) *
         axis_size(forecasters_.size()) * axis_size(migrations_.size()) *
         axis_size(failures_.size()) * axis_size(seeds_.size());
}

std::vector<Scenario> ScenarioGrid::expand() const {
  const std::vector<geo::Region> regions =
      regions_.empty() ? std::vector<geo::Region>{default_region()} : regions_;
  const std::vector<DeviceMix> mixes = mixes_.empty() ? std::vector<DeviceMix>{DeviceMix{}} : mixes_;

  // Distinct regions can share a display name (e.g. cdn_region truncations);
  // disambiguate their labels so summarize() rows stay distinguishable:
  // first by site count, then by axis ordinal if name and count both clash.
  std::vector<std::string> region_labels;
  region_labels.reserve(regions.size());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    std::string label = regions[r].name;
    for (std::size_t other = 0; other < regions.size(); ++other) {
      if (other != r && regions[other].name == regions[r].name) {
        label += " (" + std::to_string(regions[r].cities.size()) + " sites)";
        break;
      }
    }
    region_labels.push_back(std::move(label));
  }
  for (std::size_t r = 0; r < region_labels.size(); ++r) {
    for (std::size_t other = 0; other < r; ++other) {
      if (region_labels[other] == region_labels[r]) {
        region_labels[r] += " #" + std::to_string(r + 1);
        break;
      }
    }
  }

  std::vector<Scenario> scenarios;
  scenarios.reserve(size());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const geo::Region& region = regions[r];
    for (const DeviceMix& mix : mixes) {
      for (std::size_t p = 0; p < axis_size(policies_.size()); ++p) {
        for (std::size_t e = 0; e < axis_size(epochs_.size()); ++e) {
          for (std::size_t l = 0; l < axis_size(rtt_limits_.size()); ++l) {
            for (std::size_t b = 0; b < axis_size(latency_bands_.size()); ++b) {
            for (std::size_t a = 0; a < axis_size(arrival_rates_.size()); ++a) {
              for (std::size_t d = 0; d < axis_size(defer_epochs_.size()); ++d) {
                for (std::size_t fc = 0; fc < axis_size(forecasters_.size()); ++fc) {
                  for (std::size_t m = 0; m < axis_size(migrations_.size()); ++m) {
                    for (std::size_t f = 0; f < axis_size(failures_.size()); ++f) {
                      for (std::size_t s = 0; s < axis_size(seeds_.size()); ++s) {
                        Scenario scenario;
                        scenario.index = scenarios.size();
                        scenario.region = region;
                        scenario.mix = mix;
                        scenario.config = base_;
                        if (!policies_.empty()) scenario.config.policy = policies_[p];
                        if (!epochs_.empty()) scenario.config.epochs = epochs_[e];
                        if (!rtt_limits_.empty()) {
                          scenario.config.workload.latency_limit_rtt_ms = rtt_limits_[l];
                        }
                        if (!latency_bands_.empty()) {
                          scenario.latency_band_ms = latency_bands_[b];
                        }
                        if (!arrival_rates_.empty()) {
                          scenario.config.workload.arrivals_per_site = arrival_rates_[a];
                        }
                        if (!defer_epochs_.empty()) {
                          scenario.config.workload.max_defer_epochs = defer_epochs_[d];
                        }
                        if (!forecasters_.empty()) scenario.forecaster = forecasters_[fc];
                        if (!migrations_.empty()) {
                          scenario.config.reoptimize_every = migrations_[m].reoptimize_every;
                          scenario.config.reoptimize_monthly = migrations_[m].reoptimize_monthly;
                          scenario.config.migration = migrations_[m].migration;
                        }
                        if (!failures_.empty()) scenario.config.failures = failures_[f].failures;
                        if (!seeds_.empty()) scenario.config.workload.seed = seeds_[s];

                        std::string label;
                        if (!regions_.empty()) append_label(label, "region=" + region_labels[r]);
                        if (!mixes_.empty()) append_label(label, "mix=" + mix.name);
                        if (!policies_.empty()) {
                          append_label(label, "policy=" + core::describe(scenario.config.policy));
                        }
                        if (!epochs_.empty()) {
                          append_label(label, "epochs=" + std::to_string(scenario.config.epochs));
                        }
                        if (!rtt_limits_.empty()) {
                          append_label(label, "rtt=" + format_axis(rtt_limits_[l]));
                        }
                        if (!latency_bands_.empty()) {
                          append_label(label, "band=" + format_axis(latency_bands_[b]));
                        }
                        if (!arrival_rates_.empty()) {
                          append_label(label, "arrivals=" + format_axis(arrival_rates_[a]));
                        }
                        if (!defer_epochs_.empty()) {
                          append_label(label, "defer=" + std::to_string(defer_epochs_[d]));
                        }
                        if (!forecasters_.empty()) {
                          append_label(label, "forecast=" + forecasters_[fc]);
                        }
                        if (!migrations_.empty()) {
                          append_label(label, "migration=" + migrations_[m].name);
                        }
                        if (!failures_.empty()) append_label(label, "failures=" + failures_[f].name);
                        if (!seeds_.empty()) {
                          append_label(label,
                                       "seed=" + std::to_string(scenario.config.workload.seed));
                        }
                        if (label.empty()) label = "default";
                        scenario.label = std::move(label);
                        scenarios.push_back(std::move(scenario));
                      }
                    }
                  }
                }
              }
            }
            }
          }
        }
      }
    }
  }
  return scenarios;
}

}  // namespace carbonedge::runner
